package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

const smokeSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

func newTestServer(t *testing.T, fcfg farm.Config) (*httptest.Server, *farm.Farm) {
	t.Helper()
	if fcfg.Engine.HotThreshold == 0 {
		fcfg.Engine = cms.DefaultConfig()
	}
	f := farm.New(fcfg)
	ts := httptest.NewServer((&server{farm: f}).routes())
	t.Cleanup(func() { ts.Close(); f.Drain() })
	return ts, f
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, farm.JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v farm.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

// TestServeSmoke is the end-to-end loop: submit a job over HTTP, poll until
// it completes, check the result and the metrics endpoint.
func TestServeSmoke(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 2})

	resp, v := postJob(t, ts, `{"source":`+jsonString(smokeSource)+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if v.ID == "" || v.Status != farm.StatusQueued {
		t.Fatalf("submit view = %+v", v)
	}

	deadline := time.Now().Add(10 * time.Second)
	var got farm.JobView
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if got.Status == farm.StatusDone || got.Status == farm.StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != farm.StatusDone {
		t.Fatalf("status %s: %s", got.Status, got.Error)
	}
	if !got.Result.Halted || got.Result.Regs[0] != 60000 {
		t.Errorf("result = halted %v eax %d, want halted 60000", got.Result.Halted, got.Result.Regs[0])
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"cms_farm_jobs_done_total 1", "cms_farm_store_misses_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 1})
	if resp, _ := postJob(t, ts, `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spec: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{"workload":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d", r.StatusCode)
	}
}

// TestQueueFullIs429 fills a tiny queue and checks the overflow submission
// is refused with 429 and a Retry-After hint.
func TestQueueFullIs429(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 1, QueueDepth: 1})
	// A job long enough (~15M guest insns) that the single VM slot is still
	// busy while the later submissions arrive.
	slow := strings.Replace(smokeSource, "20000", "5000000", 1)
	src := `{"source":` + jsonString(slow) + `}`
	saw429 := false
	for i := 0; i < 8; i++ {
		resp, _ := postJob(t, ts, src)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			saw429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Error("never saw backpressure from a depth-1 queue")
	}
}

func TestListAndHealth(t *testing.T) {
	ts, f := newTestServer(t, farm.Config{MaxVMs: 1})
	if _, err := f.Submit(farm.JobSpec{Source: smokeSource}); err != nil {
		t.Fatal(err)
	}
	f.Wait()
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var views []farm.JobView
	if err := json.NewDecoder(r.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Status != farm.StatusDone {
		t.Errorf("views = %+v", views)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", h.StatusCode)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
