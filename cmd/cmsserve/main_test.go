package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

const smokeSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

func newTestServer(t *testing.T, fcfg farm.Config) (*httptest.Server, *farm.Farm) {
	t.Helper()
	if fcfg.Engine.HotThreshold == 0 {
		fcfg.Engine = cms.DefaultConfig()
	}
	f := farm.New(fcfg)
	ts := httptest.NewServer((&server{farm: f}).routes())
	t.Cleanup(func() { ts.Close(); f.Drain() })
	return ts, f
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, farm.JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v farm.JobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return resp, v
}

// TestServeSmoke is the end-to-end loop: submit a job over HTTP, poll until
// it completes, check the result and the metrics endpoint.
func TestServeSmoke(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 2})

	resp, v := postJob(t, ts, `{"source":`+jsonString(smokeSource)+`}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if v.ID == "" || v.Status != farm.StatusQueued {
		t.Fatalf("submit view = %+v", v)
	}

	deadline := time.Now().Add(10 * time.Second)
	var got farm.JobView
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if got.Status == farm.StatusDone || got.Status == farm.StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != farm.StatusDone {
		t.Fatalf("status %s: %s", got.Status, got.Error)
	}
	if !got.Result.Halted || got.Result.Regs[0] != 60000 {
		t.Errorf("result = halted %v eax %d, want halted 60000", got.Result.Halted, got.Result.Regs[0])
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"cms_farm_jobs_done_total 1", "cms_farm_store_misses_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 1})
	if resp, _ := postJob(t, ts, `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spec: %d", resp.StatusCode)
	}
	if resp, _ := postJob(t, ts, `{"workload":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload: %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/job-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d", r.StatusCode)
	}
}

// TestQueueFullIs429 fills a tiny queue and checks the overflow submission
// is refused with 429 and a Retry-After hint.
func TestQueueFullIs429(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 1, QueueDepth: 1})
	// A job long enough (~15M guest insns) that the single VM slot is still
	// busy while the later submissions arrive.
	slow := strings.Replace(smokeSource, "20000", "5000000", 1)
	src := `{"source":` + jsonString(slow) + `}`
	saw429 := false
	for i := 0; i < 8; i++ {
		resp, _ := postJob(t, ts, src)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			saw429 = true
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !saw429 {
		t.Error("never saw backpressure from a depth-1 queue")
	}
}

func TestListAndHealth(t *testing.T) {
	ts, f := newTestServer(t, farm.Config{MaxVMs: 1})
	if _, err := f.Submit(farm.JobSpec{Source: smokeSource}); err != nil {
		t.Fatal(err)
	}
	f.Wait()
	r, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var views []farm.JobView
	if err := json.NewDecoder(r.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Status != farm.StatusDone {
		t.Errorf("views = %+v", views)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", h.StatusCode)
	}
}

func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// TestErrorCodes is the API error contract, table-driven: every 4xx/5xx
// response carries a JSON body with a machine-readable "code" and a human
// "error" message, with the right status and Retry-After semantics — 429 for
// healthy backpressure, 503 for draining (terminal) and an open breaker
// (degraded, self-healing).
func TestErrorCodes(t *testing.T) {
	slow := strings.Replace(smokeSource, "20000", "5000000", 1)

	healthy := func(t *testing.T) *httptest.Server {
		ts, _ := newTestServer(t, farm.Config{MaxVMs: 1})
		return ts
	}
	drained := func(t *testing.T) *httptest.Server {
		ts, f := newTestServer(t, farm.Config{MaxVMs: 1})
		f.Drain()
		return ts
	}
	congested := func(t *testing.T) *httptest.Server {
		// One slot, queue depth 1: submit slow jobs until one is refused, so
		// the queue is provably full — and stays full, because the runner is
		// grinding on a multi-second job — when the table's POST arrives.
		ts, f := newTestServer(t, farm.Config{MaxVMs: 1, QueueDepth: 1})
		if _, err := f.Submit(farm.JobSpec{Source: slow}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for f.Stats().Active != 1 {
			if time.Now().After(deadline) {
				t.Fatal("runner never picked up the slow job")
			}
			time.Sleep(time.Millisecond)
		}
		for i := 0; ; i++ {
			_, err := f.Submit(farm.JobSpec{Source: slow})
			if errors.Is(err, farm.ErrQueueFull) {
				break
			}
			if err != nil || i > 4 {
				t.Fatalf("could not congest the farm: submit %d = %v", i, err)
			}
		}
		return ts
	}
	broken := func(t *testing.T) *httptest.Server {
		// A full window of failures opens the circuit breaker; the default
		// probe period (8) keeps the table's single request shed.
		ts, f := newTestServer(t, farm.Config{MaxVMs: 1, BreakerWindow: 2})
		for i := 0; i < 2; i++ {
			if _, err := f.Submit(farm.JobSpec{Source: "not a program"}); err != nil {
				t.Fatal(err)
			}
		}
		f.Wait()
		if !f.Stats().BreakerOpen {
			t.Fatal("breaker did not open")
		}
		return ts
	}

	cases := []struct {
		name       string
		setup      func(*testing.T) *httptest.Server
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantRetry  bool
	}{
		{"bad json", healthy, "POST", "/v1/jobs", `{`, http.StatusBadRequest, "bad_json", false},
		{"empty spec", healthy, "POST", "/v1/jobs", `{}`, http.StatusBadRequest, "bad_spec", false},
		{"unknown workload", healthy, "POST", "/v1/jobs", `{"workload":"nope"}`, http.StatusBadRequest, "bad_spec", false},
		{"workload and source", healthy, "POST", "/v1/jobs", `{"workload":"eqntott","source":"hlt"}`, http.StatusBadRequest, "bad_spec", false},
		{"missing job", healthy, "GET", "/v1/jobs/job-999999", "", http.StatusNotFound, "not_found", false},
		{"queue full", congested, "POST", "/v1/jobs", `{"workload":"eqntott"}`, http.StatusTooManyRequests, "queue_full", true},
		{"draining submit", drained, "POST", "/v1/jobs", `{"workload":"eqntott"}`, http.StatusServiceUnavailable, "draining", true},
		{"draining readyz", drained, "GET", "/readyz", "", http.StatusServiceUnavailable, "draining", true},
		{"breaker submit", broken, "POST", "/v1/jobs", `{"workload":"eqntott"}`, http.StatusServiceUnavailable, "breaker_open", true},
		{"breaker readyz", broken, "GET", "/readyz", "", http.StatusServiceUnavailable, "breaker_open", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := tc.setup(t)
			var resp *http.Response
			var err error
			switch tc.method {
			case "POST":
				resp, err = http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			default:
				resp, err = http.Get(ts.URL + tc.path)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			var body struct {
				Code  string `json:"code"`
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if body.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", body.Code, tc.wantCode)
			}
			if body.Error == "" {
				t.Error("error body has no human message")
			}
			if got := resp.Header.Get("Retry-After") != ""; got != tc.wantRetry {
				t.Errorf("Retry-After present = %v, want %v", got, tc.wantRetry)
			}
		})
	}
}

// TestReadyzHealthy pins the happy-path readiness signal.
func TestReadyzHealthy(t *testing.T) {
	ts, _ := newTestServer(t, farm.Config{MaxVMs: 1})
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("readyz on a healthy farm = %d", r.StatusCode)
	}
}
