// Command cmsserve is the serving daemon for the multi-guest farm: it runs
// N concurrent guest VMs over one shared content-addressed translation
// store and exposes a small HTTP API plus Prometheus-text metrics.
//
//	cmsserve -addr :8086 -vms 4
//
//	POST /v1/jobs        {"workload":"eqntott"} or {"source":"...", "budget":N,
//	                      "deadline_ms":N, "inject_seed":N, "chaos_panics":bool}
//	                     → 202 {job}, 400 bad spec, 429 queue full,
//	                       503 draining or circuit breaker open
//	GET  /v1/jobs        → all jobs in submission order
//	GET  /v1/jobs/{id}   → one job (includes result when done)
//	POST /v1/jobs/{id}/snapshot
//	                     → checkpoint a queued/running job at its next commit
//	                       boundary; the body is the snapshot envelope
//	                       (application/octet-stream). 409 if the job finished
//	                       first. Idempotent on checkpointed jobs.
//	POST /v1/restore     body = snapshot envelope → 202 {job} resuming it.
//	                       Query: budget, deadline_ms, inject_seed,
//	                       chaos_panics (needed when the capture ran injected).
//	POST /v1/migrate     {"job":"...","target":"http://host:port"} →
//	                       checkpoint locally, POST the envelope to the
//	                       target's /v1/restore, 200 {source, target} with
//	                       both job views. 502 if the target refuses.
//	GET  /metrics        → Prometheus text exposition
//	GET  /healthz        → 200 ok (process is up)
//	GET  /readyz         → 200 accepting work, 503 draining or breaker open
//
// Every 4xx/5xx body is JSON with a machine-readable "code" field
// ("bad_json", "bad_spec", "queue_full", "draining", "breaker_open",
// "not_found", "not_checkpointable", "migrate_failed") plus a human "error"
// message. 429 means transient backpressure on a healthy farm (retry the
// same instance soon); 503 with "draining" means this instance is going away
// (Retry-After hints when to look elsewhere); 503 with "breaker_open" means
// the farm is shedding load after a failure storm and will self-heal via
// admission probes.
//
// SIGTERM/SIGINT stops admission and drains every queued and running VM to
// completion, then exits 0. With -checkpoint-drain DIR the drain instead
// preempts in-flight jobs into snapshot envelopes written to DIR (one
// <jobid>.cmssnap each), ready to POST to another instance's /v1/restore.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

// server wires the farm to the HTTP API.
type server struct {
	farm *farm.Farm
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submitJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("POST /v1/jobs/{id}/snapshot", s.snapshotJob)
	mux.HandleFunc("POST /v1/restore", s.restoreJob)
	mux.HandleFunc("POST /v1/migrate", s.migrateJob)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.ready)
	return mux
}

// ready is the load-balancer signal: /healthz says the process is alive,
// /readyz says it will actually accept a job right now. Draining and an open
// circuit breaker both fail readiness so new traffic routes elsewhere while
// in-flight jobs finish (degraded mode).
func (s *server) ready(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.farm.Draining():
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, codeDraining, farm.ErrDraining.Error())
	case s.farm.Stats().BreakerOpen:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, codeBreakerOpen, farm.ErrBreakerOpen.Error())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Machine-readable error codes carried in every 4xx/5xx body, so clients
// branch on "code" instead of parsing human-facing messages.
const (
	codeBadJSON     = "bad_json"
	codeBadSpec     = "bad_spec"
	codeQueueFull   = "queue_full"
	codeDraining    = "draining"
	codeBreakerOpen = "breaker_open"
	codeNotFound    = "not_found"
	// codeNotCheckpointable: the job reached a terminal state before the
	// checkpoint request landed (or does not exist as a preemptible job).
	codeNotCheckpointable = "not_checkpointable"
	// codeMigrateFailed: the local checkpoint succeeded but the target
	// instance refused or failed the restore; the snapshot is still held
	// locally and retrievable via POST /v1/jobs/{id}/snapshot.
	codeMigrateFailed = "migrate_failed"
)

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]string{"code": code, "error": msg})
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec farm.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, codeBadJSON, "bad JSON: "+err.Error())
		return
	}
	v, err := s.farm.Submit(spec)
	s.writeAdmission(w, v, err)
}

// writeAdmission maps an admission outcome (Submit or SubmitRestore) to the
// HTTP response.
func (s *server) writeAdmission(w http.ResponseWriter, v farm.JobView, err error) {
	switch {
	case errors.Is(err, farm.ErrQueueFull):
		// Backpressure: the admission queue is bounded; tell the client to
		// come back rather than buffering unboundedly. 429, not 503: the
		// farm is healthy, the client is just ahead of it.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, codeQueueFull, err.Error())
	case errors.Is(err, farm.ErrDraining):
		// This instance is going away for good; point clients elsewhere.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, codeDraining, err.Error())
	case errors.Is(err, farm.ErrBreakerOpen):
		// Degraded: shedding load after a failure storm. Self-heals via
		// probes, so a short Retry-After is honest.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, codeBreakerOpen, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadSpec, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

// maxSnapshotBody bounds /v1/restore uploads. Snapshots are sparse (all-zero
// RAM pages are elided) so real envelopes are far smaller than guest RAM,
// but a hostile upload must not buffer unboundedly.
const maxSnapshotBody = 256 << 20

// snapshotJob checkpoints a queued or running job at its next commit
// boundary and streams back the self-checking envelope. The job stays on
// this farm as "checkpointed" (the blob remains retrievable — the call is
// idempotent) until the process exits.
func (s *server) snapshotJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.farm.Job(id); !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job")
		return
	}
	v, blob, err := s.farm.Checkpoint(id)
	if err != nil {
		writeError(w, http.StatusConflict, codeNotCheckpointable, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-CMS-Job", v.ID)
	_, _ = w.Write(blob)
}

// restoreSpec builds the restore-job spec from query parameters: the
// capture's fault-injection identity (mandatory when it ran injected), plus
// optional budget and deadline overrides.
func restoreSpec(r *http.Request) (farm.JobSpec, error) {
	var spec farm.JobSpec
	q := r.URL.Query()
	for key, dst := range map[string]*uint64{"budget": &spec.Budget, "inject_seed": &spec.InjectSeed} {
		if v := q.Get(key); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("bad %s: %v", key, err)
			}
			*dst = n
		}
	}
	if v := q.Get("deadline_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return spec, fmt.Errorf("bad deadline_ms: %v", err)
		}
		spec.DeadlineMs = n
	}
	spec.ChaosPanics = q.Get("chaos_panics") == "true"
	return spec, nil
}

// restoreJob admits a job that resumes an uploaded snapshot envelope —
// the receiving half of a live migration.
func (s *server) restoreJob(w http.ResponseWriter, r *http.Request) {
	spec, err := restoreSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadSpec, err.Error())
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadJSON, "reading snapshot: "+err.Error())
		return
	}
	v, err := s.farm.SubmitRestore(blob, spec)
	s.writeAdmission(w, v, err)
}

// migrateJob moves one VM to another cmsserve instance: checkpoint locally,
// hand the envelope to the target's /v1/restore, report both job views. The
// restored run retires exactly the future the local one would have — the
// target's shared store only changes how fast it gets there.
func (s *server) migrateJob(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Job    string `json:"job"`
		Target string `json:"target"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadJSON, "bad JSON: "+err.Error())
		return
	}
	if req.Job == "" || req.Target == "" {
		writeError(w, http.StatusBadRequest, codeBadSpec, "migrate needs job and target")
		return
	}
	if _, ok := s.farm.Job(req.Job); !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job")
		return
	}
	v, blob, err := s.farm.Checkpoint(req.Job)
	if err != nil {
		writeError(w, http.StatusConflict, codeNotCheckpointable, err.Error())
		return
	}
	q := url.Values{}
	if v.Spec.InjectSeed != 0 {
		q.Set("inject_seed", strconv.FormatUint(v.Spec.InjectSeed, 10))
		if v.Spec.ChaosPanics {
			q.Set("chaos_panics", "true")
		}
	}
	if v.Spec.DeadlineMs > 0 {
		q.Set("deadline_ms", strconv.FormatInt(v.Spec.DeadlineMs, 10))
	}
	target := strings.TrimSuffix(req.Target, "/") + "/v1/restore"
	if len(q) > 0 {
		target += "?" + q.Encode()
	}
	resp, err := http.Post(target, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		writeError(w, http.StatusBadGateway, codeMigrateFailed, err.Error())
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		writeError(w, http.StatusBadGateway, codeMigrateFailed,
			fmt.Sprintf("target returned %d: %s", resp.StatusCode, body))
		return
	}
	var tv farm.JobView
	if err := json.Unmarshal(body, &tv); err != nil {
		writeError(w, http.StatusBadGateway, codeMigrateFailed, "target response: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"source": v,
		"target": tv,
	})
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.farm.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.farm.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	farm.WriteMetrics(w, s.farm)
}

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	vms := flag.Int("vms", 4, "concurrent guest VMs")
	queue := flag.Int("queue", 64, "admission queue depth")
	storeAtoms := flag.Int("store-atoms", 0, "shared store budget in code atoms (0 = default)")
	pipeWorkers := flag.Int("pipeline-workers", 0, "translation pipeline workers per VM (0 = synchronous)")
	incidentDir := flag.String("incidents", "", "directory for replayable incident bundles (empty = disabled)")
	stormThreshold := flag.Uint("storm-threshold", 16, "rollback-storm quarantine threshold per shared artifact (0 = off)")
	drainDir := flag.String("checkpoint-drain", "", "on SIGTERM, checkpoint in-flight jobs into this directory instead of running them out")
	flag.Parse()

	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = *pipeWorkers
	cfg.RollbackStormThreshold = uint32(*stormThreshold)
	f := farm.New(farm.Config{
		MaxVMs:        *vms,
		QueueDepth:    *queue,
		StoreCapAtoms: *storeAtoms,
		Engine:        cfg,
		IncidentDir:   *incidentDir,
	})

	srv := &http.Server{Addr: *addr, Handler: (&server{farm: f}).routes()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		<-sig
		log.Printf("cmsserve: draining (%d queued, %d active)...",
			f.Stats().Queued, f.Stats().Active)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // stop accepting HTTP, finish in-flight requests
		if *drainDir != "" {
			// Checkpoint-drain: preempt in-flight VMs into snapshot
			// envelopes instead of running them out, so a replacement
			// instance can resume them via /v1/restore.
			_ = os.MkdirAll(*drainDir, 0o755)
			views := f.CheckpointDrain()
			saved := 0
			for _, v := range views {
				blob, ok := f.Snapshot(v.ID)
				if !ok {
					continue
				}
				path := filepath.Join(*drainDir, v.ID+".cmssnap")
				if err := os.WriteFile(path, blob, 0o644); err != nil {
					log.Printf("cmsserve: writing %s: %v", path, err)
					continue
				}
				saved++
			}
			log.Printf("cmsserve: checkpoint-drain: %d snapshots written to %s", saved, *drainDir)
		} else {
			f.Drain() // run every admitted VM to completion
		}
		close(done)
	}()

	log.Printf("cmsserve: listening on %s (%d VMs, queue %d)", *addr, *vms, *queue)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	st := f.Stats()
	log.Printf("cmsserve: drained: %d done, %d failed, %d timed out, %d checkpointed, %d incidents, dedup %.1f%%",
		st.Done, st.Failed, st.Timeouts, st.Checkpoints, st.Incidents, 100*st.Store.DedupRatio())
}
