// Command cmsserve is the serving daemon for the multi-guest farm: it runs
// N concurrent guest VMs over one shared content-addressed translation
// store and exposes a small HTTP API plus Prometheus-text metrics.
//
//	cmsserve -addr :8086 -vms 4
//
//	POST /v1/jobs        {"workload":"eqntott"} or {"source":"...", "budget":N,
//	                      "deadline_ms":N, "inject_seed":N, "chaos_panics":bool}
//	                     → 202 {job}, 400 bad spec, 429 queue full,
//	                       503 draining or circuit breaker open
//	GET  /v1/jobs        → all jobs in submission order
//	GET  /v1/jobs/{id}   → one job (includes result when done)
//	GET  /metrics        → Prometheus text exposition
//	GET  /healthz        → 200 ok (process is up)
//	GET  /readyz         → 200 accepting work, 503 draining or breaker open
//
// Every 4xx/5xx body is JSON with a machine-readable "code" field
// ("bad_json", "bad_spec", "queue_full", "draining", "breaker_open",
// "not_found") plus a human "error" message. 429 means transient
// backpressure on a healthy farm (retry the same instance soon); 503 with
// "draining" means this instance is going away (Retry-After hints when to
// look elsewhere); 503 with "breaker_open" means the farm is shedding load
// after a failure storm and will self-heal via admission probes.
//
// SIGTERM/SIGINT stops admission, drains every queued and running VM to
// completion, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

// server wires the farm to the HTTP API.
type server struct {
	farm *farm.Farm
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submitJob)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.ready)
	return mux
}

// ready is the load-balancer signal: /healthz says the process is alive,
// /readyz says it will actually accept a job right now. Draining and an open
// circuit breaker both fail readiness so new traffic routes elsewhere while
// in-flight jobs finish (degraded mode).
func (s *server) ready(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.farm.Draining():
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, codeDraining, farm.ErrDraining.Error())
	case s.farm.Stats().BreakerOpen:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, codeBreakerOpen, farm.ErrBreakerOpen.Error())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ready")
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Machine-readable error codes carried in every 4xx/5xx body, so clients
// branch on "code" instead of parsing human-facing messages.
const (
	codeBadJSON     = "bad_json"
	codeBadSpec     = "bad_spec"
	codeQueueFull   = "queue_full"
	codeDraining    = "draining"
	codeBreakerOpen = "breaker_open"
	codeNotFound    = "not_found"
)

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]string{"code": code, "error": msg})
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	var spec farm.JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, codeBadJSON, "bad JSON: "+err.Error())
		return
	}
	v, err := s.farm.Submit(spec)
	switch {
	case errors.Is(err, farm.ErrQueueFull):
		// Backpressure: the admission queue is bounded; tell the client to
		// come back rather than buffering unboundedly. 429, not 503: the
		// farm is healthy, the client is just ahead of it.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, codeQueueFull, err.Error())
	case errors.Is(err, farm.ErrDraining):
		// This instance is going away for good; point clients elsewhere.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, codeDraining, err.Error())
	case errors.Is(err, farm.ErrBreakerOpen):
		// Degraded: shedding load after a failure storm. Self-heals via
		// probes, so a short Retry-After is honest.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, codeBreakerOpen, err.Error())
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadSpec, err.Error())
	default:
		writeJSON(w, http.StatusAccepted, v)
	}
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.farm.Jobs())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	v, ok := s.farm.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	farm.WriteMetrics(w, s.farm)
}

func main() {
	addr := flag.String("addr", ":8086", "listen address")
	vms := flag.Int("vms", 4, "concurrent guest VMs")
	queue := flag.Int("queue", 64, "admission queue depth")
	storeAtoms := flag.Int("store-atoms", 0, "shared store budget in code atoms (0 = default)")
	pipeWorkers := flag.Int("pipeline-workers", 0, "translation pipeline workers per VM (0 = synchronous)")
	incidentDir := flag.String("incidents", "", "directory for replayable incident bundles (empty = disabled)")
	stormThreshold := flag.Uint("storm-threshold", 16, "rollback-storm quarantine threshold per shared artifact (0 = off)")
	flag.Parse()

	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = *pipeWorkers
	cfg.RollbackStormThreshold = uint32(*stormThreshold)
	f := farm.New(farm.Config{
		MaxVMs:        *vms,
		QueueDepth:    *queue,
		StoreCapAtoms: *storeAtoms,
		Engine:        cfg,
		IncidentDir:   *incidentDir,
	})

	srv := &http.Server{Addr: *addr, Handler: (&server{farm: f}).routes()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		<-sig
		log.Printf("cmsserve: draining (%d queued, %d active)...",
			f.Stats().Queued, f.Stats().Active)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx) // stop accepting HTTP, finish in-flight requests
		f.Drain()             // run every admitted VM to completion
		close(done)
	}()

	log.Printf("cmsserve: listening on %s (%d VMs, queue %d)", *addr, *vms, *queue)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	st := f.Stats()
	log.Printf("cmsserve: drained: %d done, %d failed, %d timed out, %d incidents, dedup %.1f%%",
		st.Done, st.Failed, st.Timeouts, st.Incidents, 100*st.Store.DedupRatio())
}
