// cmsbench regenerates the paper's evaluation: every figure and table of
// "The Transmeta Code Morphing Software" (CGO 2003) over the synthetic
// benchmark suite. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	cmsbench                 # run everything
//	cmsbench -exp fig2       # one experiment: fig2, fig3, table1,
//	                         # selfcheck, selfreval, flow, chain, faults
//	cmsbench -exp snapshot   # checkpoint/restore costs on the hot kernels:
//	                         # envelope bytes, save latency, warm vs cold
//	                         # restore latency, rehydration hit rate
//	cmsbench -exp backend    # vliw vs risc code-gen backend: Metrics-identity
//	                         # gate plus wall-clock per workload
//	cmsbench -workload NAME  # workload for flow/chain (default win98_boot)
//	cmsbench -list           # list the benchmark suite
//	cmsbench -json FILE      # write a wall-clock perf record (BENCH_*.json)
//	cmsbench -baseline BENCH_PR1.json
//	                         # measure and diff against a committed record;
//	                         # exits non-zero on a >10% wall-clock regression,
//	                         # a multicore scaling-efficiency regression,
//	                         # >2% watchdog/recover overhead on a hot kernel,
//	                         # or >1% unarmed checkpoint-support overhead
//	                         # (combine with -json FILE to also write a record)
//	cmsbench -exp farmscale -farmvms 1,4,8 -farmjobs 500
//	                         # sustained-load multicore sweep: GOMAXPROCS is
//	                         # pinned to each level's VM count; warns loudly
//	                         # when effective parallelism is 1
//	cmsbench -cpuprofile p.out -json FILE
//	                         # capture a pprof CPU profile of the measurement
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"cms/internal/bench"
	"cms/internal/workload"
)

// regressionTolerancePct is the wall-clock slack -baseline allows before it
// fails the run: perf records are best-of-N on a shared machine, so small
// jitter is expected, but a real backend regression is not.
const regressionTolerancePct = 10.0

// scalingToleranceEff is the absolute scaling-efficiency drop -baseline
// allows per VM level before it fails the run (efficiency is a 0..1 ratio;
// 0.10 absorbs scheduler jitter without waving through a lost core).
const scalingToleranceEff = 0.10

// guardTolerancePct caps what fault containment may cost a hot kernel: the
// guarded measurement (cancel hook armed, recover() wrapper — the farm
// runner's shape) must stay within this percentage of the plain run.
const guardTolerancePct = 2.0

// snapshotTolerancePct caps what checkpoint support may cost a hot kernel
// when nobody asks for a snapshot: the snap-ready measurement (watchdog AND
// checkpoint flags polled, neither firing) must stay within this percentage
// of the plain guarded run.
const snapshotTolerancePct = 1.0

// parseLevels parses a "1,4,8"-style VM-level list.
func parseLevels(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad VM level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, table1, selfcheck, selfreval, flow, chain, ablate, hostgen, faults, farm, farmscale, snapshot, backend")
	wl := flag.String("workload", "win98_boot", "workload for the flow/chain experiments")
	list := flag.Bool("list", false, "list the benchmark suite and exit")
	jsonPath := flag.String("json", "", "measure wall-clock perf over the hot kernels and write a JSON record to this file")
	runs := flag.Int("runs", 3, "runs per workload for -json (best-of)")
	baseline := flag.String("baseline", "", "committed BENCH_*.json to diff the -json measurement against; exit non-zero on regression")
	farmJobs := flag.Int("farmjobs", 0, "jobs per level for -exp farmscale (0 = default)")
	farmVMs := flag.String("farmvms", "", "comma-separated VM levels for -exp farmscale, e.g. 1,4,8 (empty = default)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	levels, err := parseLevels(*farmVMs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cmsbench: -farmvms: %v\n", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
			}
		}()
	}

	if *jsonPath != "" || *baseline != "" {
		// Open the output first: a bad path should fail before the
		// minutes-long measurement, not after.
		var f *os.File
		if *jsonPath != "" {
			var err error
			f, err = os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
		}
		if bench.SerialFarmRun() {
			bench.WarnSerialFarm(os.Stderr)
		}
		rec, err := bench.Perf(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: perf: %v\n", err)
			os.Exit(1)
		}
		if f != nil {
			if err := bench.WritePerfJSON(f, rec); err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
				os.Exit(1)
			}
		}
		for _, w := range rec.Workloads {
			fmt.Printf("%-14s %10.3f ms/run  %10.3f ms pipelined  %10.3f ms interp  %7.2f Mguest/s\n",
				w.Name, float64(w.NsPerRun)/1e6, float64(w.NsPerRunPipelined)/1e6,
				float64(w.NsPerRunInterp)/1e6, w.MguestPerSec)
		}
		fmt.Println()
		bench.WriteFarmScale(os.Stdout, rec.FarmScale)
		if *baseline != "" {
			bf, err := os.Open(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: baseline: %v\n", err)
				os.Exit(1)
			}
			base, err := bench.ReadPerfJSON(bf)
			bf.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "cmsbench: baseline: %v\n", err)
				os.Exit(1)
			}
			deltas, regressed := bench.ComparePerf(base, rec, regressionTolerancePct)
			fmt.Printf("\nvs %s:\n", *baseline)
			for _, d := range deltas {
				if d.Missing {
					fmt.Printf("%-14s %10.3f ms/run  (not in baseline)\n", d.Name, float64(d.CurNs)/1e6)
					continue
				}
				fmt.Printf("%-14s %10.3f ms -> %10.3f ms  %+7.1f%%\n",
					d.Name, float64(d.BaseNs)/1e6, float64(d.CurNs)/1e6, d.Pct)
			}
			scaleDeltas, scaleRegressed, comparable := bench.CompareScaling(base, rec, scalingToleranceEff)
			if comparable {
				for _, d := range scaleDeltas {
					mark := ""
					if d.Regressed {
						mark = "  REGRESSED"
					}
					fmt.Printf("scaling @%d VMs   %5.2fx -> %5.2fx%s\n", d.VMs, d.BaseEff, d.CurEff, mark)
				}
			} else {
				fmt.Fprintf(os.Stderr, "cmsbench: scaling-efficiency gate skipped: baseline or current record lacks a multicore farm_scale sweep\n")
			}
			guardDeltas, worst := bench.GuardOverhead(rec)
			for _, d := range guardDeltas {
				fmt.Printf("guard %-14s %10.3f ms -> %10.3f ms  %+7.2f%%\n",
					d.Name, float64(d.PlainNs)/1e6, float64(d.GuardedNs)/1e6, d.Pct)
			}
			snapDeltas, snapWorst := bench.SnapshotOverhead(rec)
			for _, d := range snapDeltas {
				fmt.Printf("snap  %-14s %10.3f ms -> %10.3f ms  %+7.2f%%\n",
					d.Name, float64(d.PlainNs)/1e6, float64(d.GuardedNs)/1e6, d.Pct)
			}
			if regressed {
				fmt.Fprintf(os.Stderr, "cmsbench: wall-clock regression beyond %.0f%% vs %s\n",
					regressionTolerancePct, *baseline)
				pprof.StopCPUProfile()
				os.Exit(2)
			}
			if scaleRegressed {
				fmt.Fprintf(os.Stderr, "cmsbench: scaling efficiency regressed beyond %.2f vs %s\n",
					scalingToleranceEff, *baseline)
				pprof.StopCPUProfile()
				os.Exit(2)
			}
			if worst > guardTolerancePct {
				fmt.Fprintf(os.Stderr, "cmsbench: watchdog/recover overhead %.2f%% exceeds %.1f%% on a hot kernel\n",
					worst, guardTolerancePct)
				pprof.StopCPUProfile()
				os.Exit(2)
			}
			if snapWorst > snapshotTolerancePct {
				fmt.Fprintf(os.Stderr, "cmsbench: unarmed checkpoint-support overhead %.2f%% exceeds %.1f%% on a hot kernel\n",
					snapWorst, snapshotTolerancePct)
				pprof.StopCPUProfile()
				os.Exit(2)
			}
		}
		return
	}

	if *list {
		fmt.Printf("%-18s %-5s %s\n", "name", "kind", "stands in for")
		for _, w := range workload.All() {
			fmt.Printf("%-18s %-5s %s\n", w.Name, w.Kind, w.Paper)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig2", func() error {
		r, err := bench.Figure2()
		if err != nil {
			return err
		}
		bench.WriteFigure(os.Stdout, r)
		return nil
	})
	run("fig3", func() error {
		r, err := bench.Figure3()
		if err != nil {
			return err
		}
		bench.WriteFigure(os.Stdout, r)
		return nil
	})
	run("table1", func() error {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		bench.WriteTable1(os.Stdout, rows)
		return nil
	})
	run("selfcheck", func() error {
		r, err := bench.SelfCheck()
		if err != nil {
			return err
		}
		bench.WriteSelfCheck(os.Stdout, r)
		return nil
	})
	run("selfreval", func() error {
		r, err := bench.SelfReval()
		if err != nil {
			return err
		}
		bench.WriteSelfReval(os.Stdout, r)
		return nil
	})
	run("flow", func() error {
		r, err := bench.Flow(*wl)
		if err != nil {
			return err
		}
		bench.WriteFlow(os.Stdout, r)
		return nil
	})
	run("chain", func() error {
		r, err := bench.Chain(*wl)
		if err != nil {
			return err
		}
		bench.WriteChain(os.Stdout, r)
		return nil
	})
	run("ablate", func() error {
		for _, f := range []func(string) (*bench.AblationResult, error){
			bench.AblateUnroll, bench.AblateHotThreshold,
			bench.AblateRegionCap, bench.AblateFaultThreshold,
		} {
			r, err := f(*wl)
			if err != nil {
				return err
			}
			bench.WriteAblation(os.Stdout, r)
			fmt.Println()
		}
		return nil
	})
	run("hostgen", func() error {
		rows, err := bench.HostGenerations()
		if err != nil {
			return err
		}
		bench.WriteHostGen(os.Stdout, rows)
		return nil
	})
	run("faults", func() error {
		r, err := bench.Faults()
		if err != nil {
			return err
		}
		bench.WriteFaults(os.Stdout, r)
		return nil
	})
	run("farm", func() error {
		if bench.SerialFarmRun() {
			bench.WarnSerialFarm(os.Stderr)
		}
		rows, err := bench.FarmThroughput()
		if err != nil {
			return err
		}
		bench.WriteFarm(os.Stdout, rows)
		return nil
	})
	run("snapshot", func() error {
		rows, err := bench.SnapshotCosts()
		if err != nil {
			return err
		}
		bench.WriteSnapshot(os.Stdout, rows)
		return nil
	})
	run("backend", func() error {
		rows, err := bench.BackendDiff(*runs)
		if err != nil {
			return err
		}
		bench.WriteBackend(os.Stdout, rows)
		return nil
	})
	run("farmscale", func() error {
		if bench.SerialFarmRun() {
			bench.WarnSerialFarm(os.Stderr)
		}
		rows, err := bench.FarmScale(levels, *farmJobs)
		if err != nil {
			return err
		}
		bench.WriteFarmScale(os.Stdout, rows)
		return nil
	})
}
