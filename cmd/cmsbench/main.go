// cmsbench regenerates the paper's evaluation: every figure and table of
// "The Transmeta Code Morphing Software" (CGO 2003) over the synthetic
// benchmark suite. See DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results.
//
// Usage:
//
//	cmsbench                 # run everything
//	cmsbench -exp fig2       # one experiment: fig2, fig3, table1,
//	                         # selfcheck, selfreval, flow, chain, faults
//	cmsbench -workload NAME  # workload for flow/chain (default win98_boot)
//	cmsbench -list           # list the benchmark suite
//	cmsbench -json FILE      # write a wall-clock perf record (BENCH_*.json)
package main

import (
	"flag"
	"fmt"
	"os"

	"cms/internal/bench"
	"cms/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2, fig3, table1, selfcheck, selfreval, flow, chain, ablate, hostgen, faults")
	wl := flag.String("workload", "win98_boot", "workload for the flow/chain experiments")
	list := flag.Bool("list", false, "list the benchmark suite and exit")
	jsonPath := flag.String("json", "", "measure wall-clock perf over the hot kernels and write a JSON record to this file")
	runs := flag.Int("runs", 3, "runs per workload for -json (best-of)")
	flag.Parse()

	if *jsonPath != "" {
		// Open the output first: a bad path should fail before the
		// minutes-long measurement, not after.
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		rec, err := bench.Perf(*runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(f, rec); err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %v\n", err)
			os.Exit(1)
		}
		for _, w := range rec.Workloads {
			fmt.Printf("%-14s %10.3f ms/run  %10.3f ms pipelined  %7.2f Mguest/s\n",
				w.Name, float64(w.NsPerRun)/1e6, float64(w.NsPerRunPipelined)/1e6, w.MguestPerSec)
		}
		return
	}

	if *list {
		fmt.Printf("%-18s %-5s %s\n", "name", "kind", "stands in for")
		for _, w := range workload.All() {
			fmt.Printf("%-18s %-5s %s\n", w.Name, w.Kind, w.Paper)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "cmsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig2", func() error {
		r, err := bench.Figure2()
		if err != nil {
			return err
		}
		bench.WriteFigure(os.Stdout, r)
		return nil
	})
	run("fig3", func() error {
		r, err := bench.Figure3()
		if err != nil {
			return err
		}
		bench.WriteFigure(os.Stdout, r)
		return nil
	})
	run("table1", func() error {
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		bench.WriteTable1(os.Stdout, rows)
		return nil
	})
	run("selfcheck", func() error {
		r, err := bench.SelfCheck()
		if err != nil {
			return err
		}
		bench.WriteSelfCheck(os.Stdout, r)
		return nil
	})
	run("selfreval", func() error {
		r, err := bench.SelfReval()
		if err != nil {
			return err
		}
		bench.WriteSelfReval(os.Stdout, r)
		return nil
	})
	run("flow", func() error {
		r, err := bench.Flow(*wl)
		if err != nil {
			return err
		}
		bench.WriteFlow(os.Stdout, r)
		return nil
	})
	run("chain", func() error {
		r, err := bench.Chain(*wl)
		if err != nil {
			return err
		}
		bench.WriteChain(os.Stdout, r)
		return nil
	})
	run("ablate", func() error {
		for _, f := range []func(string) (*bench.AblationResult, error){
			bench.AblateUnroll, bench.AblateHotThreshold,
			bench.AblateRegionCap, bench.AblateFaultThreshold,
		} {
			r, err := f(*wl)
			if err != nil {
				return err
			}
			bench.WriteAblation(os.Stdout, r)
			fmt.Println()
		}
		return nil
	})
	run("hostgen", func() error {
		rows, err := bench.HostGenerations()
		if err != nil {
			return err
		}
		bench.WriteHostGen(os.Stdout, rows)
		return nil
	})
	run("faults", func() error {
		r, err := bench.Faults()
		if err != nil {
			return err
		}
		bench.WriteFaults(os.Stdout, r)
		return nil
	})
}
