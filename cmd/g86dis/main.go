// g86dis disassembles a raw g86 binary image.
//
// Usage:
//
//	g86dis [-org 0x1000] prog.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cms/internal/guest"
)

func main() {
	orgFlag := flag.String("org", "0x1000", "load origin")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: g86dis [-org 0x1000] prog.bin")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "g86dis:", err)
		os.Exit(1)
	}
	orgStr := strings.TrimPrefix(*orgFlag, "0x")
	org64, err := strconv.ParseUint(orgStr, 16, 32)
	if err != nil {
		fmt.Fprintln(os.Stderr, "g86dis: bad -org:", err)
		os.Exit(1)
	}
	org := uint32(org64)

	for off := uint32(0); off < uint32(len(data)); {
		in, err := guest.Decode(data[off:], org+off)
		if err != nil {
			// Not decodable: print as data and resync one byte at a time.
			fmt.Printf("%08x:  .db 0x%02x\n", org+off, data[off])
			off++
			continue
		}
		raw := data[off : off+in.Len]
		fmt.Printf("%08x:  %-24x %s\n", in.Addr, raw, in)
		off += in.Len
	}
}
