// g86asm assembles g86 assembly text into a raw binary image.
//
// Usage:
//
//	g86asm [-o out.bin] prog.s
//
// The image's load origin comes from the source's .org directive; the entry
// point is the _start label (or the origin). Both are printed to stderr so
// scripts can capture them.
package main

import (
	"flag"
	"fmt"
	"os"

	"cms/internal/asm"
)

func main() {
	out := flag.String("o", "a.bin", "output image path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: g86asm [-o out.bin] prog.s\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "g86asm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "g86asm:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, prog.Image, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "g86asm:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "g86asm: %s: %d bytes, org %#x, entry %#x\n",
		*out, len(prog.Image), prog.Org, prog.Entry())
}
