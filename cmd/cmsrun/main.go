// cmsrun executes a g86 program (assembly source or raw image) under the
// Code Morphing engine and reports the run's metrics.
//
// Usage:
//
//	cmsrun [flags] prog.s
//	cmsrun [flags] -image prog.bin -org 0x1000 [-entry 0x1000]
//
// Every speculation and SMC mechanism can be toggled from the command line,
// which makes cmsrun a convenient vehicle for poking at the system:
//
//	cmsrun -noreorder prog.s         # Figure 2 conditions
//	cmsrun -noaliashw prog.s         # Figure 3 conditions
//	cmsrun -nofinegrain prog.s       # Table 1 conditions
//	cmsrun -interp prog.s            # pure interpretation
//
// Checkpoint/restore: -checkpoint FILE writes a snapshot envelope
// (internal/snapshot) when the run stops at a quiesced boundary — clean
// halt, budget exhaustion, or deadline preemption — and -restore FILE
// resumes one instead of loading a program. Restore must use the same
// engine flags the capture ran with, and defaults to the captured budget
// unless -budget is given explicitly:
//
//	cmsrun -budget 50000 -checkpoint half.snap prog.s   # exit 3, state saved
//	cmsrun -budget 100000 -restore half.snap            # finishes the run
//
// Exit codes, so scripts can tell outcomes apart:
//
//	0  the guest ran to a clean hlt
//	1  usage or tool error (bad flags, unreadable or unassemblable input,
//	   corrupt or version-skewed -restore envelope)
//	2  the guest died on an unrecoverable fault
//	3  the instruction budget ran out before the guest halted
//	4  the -deadline wall-clock watchdog preempted the run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/snapshot"
	"cms/internal/vliw"
)

// Exit codes.
const (
	exitOK      = 0
	exitUsage   = 1
	exitFault   = 2
	exitBudget  = 3
	exitTimeout = 4
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	flag := flag.NewFlagSet("cmsrun", flag.ContinueOnError)
	flag.SetOutput(stderr)
	var (
		imagePath = flag.String("image", "", "raw image file (instead of assembly source)")
		orgFlag   = flag.String("org", "0x1000", "load origin for -image")
		entryFlag = flag.String("entry", "", "entry point (default: origin / _start)")
		diskPath  = flag.String("disk", "", "disk image file")
		ram       = flag.Int("ram", 1<<21, "guest RAM bytes")
		budget    = flag.Uint64("budget", 100_000_000, "guest instruction budget")
		deadline  = flag.Int64("deadline", 0, "wall-clock deadline in ms; the run is preempted cooperatively at a commit boundary (exit 4)")

		checkpointPath = flag.String("checkpoint", "", "write a snapshot envelope here when the run halts, exhausts its budget, or hits -deadline")
		restorePath    = flag.String("restore", "", "resume a snapshot envelope instead of loading a program (same engine flags as the capture)")

		interpOnly  = flag.Bool("interp", false, "pure interpretation (no translation)")
		noReorder   = flag.Bool("noreorder", false, "suppress memory reordering (Figure 2)")
		noAliasHW   = flag.Bool("noaliashw", false, "disable alias hardware (Figure 3)")
		noHoist     = flag.Bool("nohoist", false, "no hoisting of faulting ops above branches")
		selfCheck   = flag.Bool("selfcheck", false, "force self-checking translations (§3.6.3)")
		noFineGrain = flag.Bool("nofinegrain", false, "disable fine-grain protection (Table 1)")
		noSelfReval = flag.Bool("noselfreval", false, "disable self-revalidation (§3.6.2)")
		noStylized  = flag.Bool("nostylized", false, "disable stylized SMC (§3.6.4)")
		noGroups    = flag.Bool("nogroups", false, "disable translation groups (§3.6.5)")
		noChain     = flag.Bool("nochain", false, "disable exit chaining")
		noCompile   = flag.Bool("nocompile", false, "disable the compiled (closure-threaded) backend; interpret translations")
		backend     = flag.String("backend", "vliw", "code-gen backend: vliw (closure-threaded) or risc (register IR, lazy EFLAGS)")
		hot         = flag.Uint64("hot", 0, "translation threshold (0 = default)")
		unroll      = flag.Int("unroll", 0, "region unroll factor (0 = default)")
		workers     = flag.Int("workers", 0, "translation pipeline workers (0 = synchronous)")

		showConsole = flag.Bool("console", true, "print guest console output")
		verbose     = flag.Bool("v", false, "print the full metric breakdown")
		traceN      = flag.Int("trace", 0, "record and print up to N engine events")
	)
	if err := flag.Parse(args); err != nil {
		return exitUsage
	}

	var (
		img   image
		disk  []byte
		entry uint32
	)
	if *restorePath == "" {
		var err error
		img, disk, entry, err = loadProgram(*imagePath, *orgFlag, *entryFlag, *diskPath, flag.Args())
		if err != nil {
			fmt.Fprintln(stderr, "cmsrun:", err)
			return exitUsage
		}
	} else if *imagePath != "" || len(flag.Args()) != 0 {
		fmt.Fprintln(stderr, "cmsrun: -restore takes no program; the snapshot carries the whole machine")
		return exitUsage
	}

	cfg := cms.DefaultConfig()
	cfg.NoTranslate = *interpOnly
	cfg.BasePolicy.NoReorderMem = *noReorder
	cfg.BasePolicy.NoAliasHW = *noAliasHW
	cfg.BasePolicy.NoHoistLoads = *noHoist
	cfg.BasePolicy.SelfCheck = *selfCheck
	cfg.BasePolicy.Unroll = *unroll
	cfg.EnableFineGrain = !*noFineGrain
	cfg.EnableSelfReval = !*noSelfReval
	cfg.EnableStylized = !*noStylized
	cfg.EnableGroups = !*noGroups
	cfg.EnableChaining = !*noChain
	cfg.EnableCompiledBackend = !*noCompile
	if !cms.ValidBackend(*backend) {
		fmt.Fprintf(stderr, "cmsrun: unknown backend %q (want vliw or risc)\n", *backend)
		return exitUsage
	}
	cfg.Backend = *backend
	if *hot > 0 {
		cfg.HotThreshold = *hot
	}
	cfg.PipelineWorkers = *workers
	if *deadline > 0 {
		var cancelled atomic.Bool
		cfg.Cancel = cancelled.Load
		timer := time.AfterFunc(time.Duration(*deadline)*time.Millisecond, func() { cancelled.Store(true) })
		defer timer.Stop()
	}

	var (
		e    *cms.Engine
		plat *dev.Platform
	)
	if *restorePath != "" {
		blob, err := os.ReadFile(*restorePath)
		if err != nil {
			fmt.Fprintln(stderr, "cmsrun:", err)
			return exitUsage
		}
		if e, err = snapshot.Load(blob, cfg); err != nil {
			fmt.Fprintln(stderr, "cmsrun:", err)
			return exitUsage
		}
		plat = e.Plat
		// Unless -budget was given explicitly, resume with the captured
		// budget: Run counts cumulative retirement, so the combined run
		// retires exactly what an uninterrupted one would.
		if !flagWasSet(flag, "budget") && e.Budget() > 0 {
			*budget = e.Budget()
		}
	} else {
		plat = dev.NewPlatform(uint32(*ram), disk)
		plat.Bus.WriteRaw(img.org, img.data)
		e = cms.New(plat, entry, cfg)
		e.CPU().Regs[guest.ESP] = uint32(*ram) / 2
	}
	if *traceN > 0 {
		e.Trace = cms.NewTrace(*traceN)
	}

	runErr := e.Run(*budget)

	if *checkpointPath != "" {
		switch {
		case runErr == nil, errors.Is(runErr, cms.ErrBudget), errors.Is(runErr, cms.ErrCancelled):
			blob, err := snapshot.Save(e)
			if err == nil {
				err = os.WriteFile(*checkpointPath, blob, 0o644)
			}
			if err != nil {
				fmt.Fprintln(stderr, "cmsrun: checkpoint:", err)
			} else {
				fmt.Fprintf(stdout, "checkpoint: %d bytes after %d guest insns -> %s\n",
					len(blob), e.Metrics.GuestTotal(), *checkpointPath)
			}
		default:
			// A faulted guest is dead; a snapshot of it could never resume.
			fmt.Fprintln(stderr, "cmsrun: not checkpointing a faulted run")
		}
	}

	if e.Trace != nil {
		fmt.Fprintln(stdout, "--- engine trace ---")
		e.Trace.Write(stdout)
		fmt.Fprintln(stdout, "--------------------")
	}

	if *showConsole && len(plat.Console.Output()) > 0 {
		fmt.Fprintf(stdout, "--- console ---\n%s\n---------------\n", plat.Console.OutputString())
	}
	m := &e.Metrics
	fmt.Fprintf(stdout, "guest instructions: %d (interp %d, translated %d)\n",
		m.GuestTotal(), m.GuestInterp, m.GuestTexec)
	fmt.Fprintf(stdout, "molecules:          %d (%.2f per instruction)\n", m.TotalMols(), m.MPI())
	fmt.Fprintf(stdout, "translations:       %d (%d guest insns, %d atoms)\n",
		m.Translations, m.GuestInsnsTranslated, m.CodeAtoms)
	if *verbose {
		fmt.Fprintf(stdout, "molecule breakdown: texec %d, interp %d, translate %d, prologue %d\n",
			m.MolsTexec, m.MolsInterp, m.MolsTranslate, m.MolsPrologue)
		fmt.Fprintf(stdout, "dispatch: to-tcache %d, chained %d, lookups %d, returns %d\n",
			m.DispatchToTexec, m.ChainTransfers, m.LookupTransfers, m.DispatchReturns)
		fmt.Fprintf(stdout, "indirect target cache: hits %d, misses %d\n",
			m.IndirectHits, m.IndirectMisses)
		if m.PipelineSubmits > 0 {
			fmt.Fprintf(stdout, "pipeline: submits %d, installs %d, stale %d\n",
				m.PipelineSubmits, m.PipelineInstalls, m.PipelineStale)
		}
		for c := vliw.FaultClass(1); c < 8; c++ {
			if m.Faults[c] > 0 {
				fmt.Fprintf(stdout, "faults[%s]: %d (adaptations %d)\n", c, m.Faults[c], m.Adaptations[c])
			}
		}
		fmt.Fprintf(stdout, "smc: prot-faults %d, fine-grain conversions %d, reval arms/passes/fails %d/%d/%d\n",
			m.ProtFaults, m.FineGrainConversions, m.SelfRevalArms, m.SelfRevalPasses, m.SelfRevalFails)
		fmt.Fprintf(stdout, "smc: stylized %d, group reuses %d, self-check fails %d, dma invalidations %d\n",
			m.StylizedAdopts, m.GroupReuses, m.SelfCheckFails, m.DMAInvalidations)
		fmt.Fprintf(stdout, "interrupts delivered: %d\n", m.Interrupts)
	}
	final := e.CPU()
	fmt.Fprintf(stdout, "final state: eax=%#x ebx=%#x ecx=%#x edx=%#x esi=%#x edi=%#x\n",
		final.Regs[guest.EAX], final.Regs[guest.EBX], final.Regs[guest.ECX],
		final.Regs[guest.EDX], final.Regs[guest.ESI], final.Regs[guest.EDI])
	switch {
	case errors.Is(runErr, cms.ErrCancelled):
		fmt.Fprintf(stderr, "cmsrun: %v (deadline %dms, %d guest insns retired)\n", runErr, *deadline, m.GuestTotal())
		return exitTimeout
	case errors.Is(runErr, cms.ErrBudget):
		fmt.Fprintln(stderr, "cmsrun:", runErr)
		return exitBudget
	case runErr != nil:
		fmt.Fprintln(stderr, "cmsrun:", runErr)
		return exitFault
	case !final.Halted:
		// Defensive: a nil-error, non-halted return should not happen.
		fmt.Fprintln(stderr, "cmsrun: guest stopped without halting")
		return exitBudget
	}
	return exitOK
}

type image struct {
	org  uint32
	data []byte
}

// flagWasSet reports whether a flag was given explicitly on the command line
// (Visit walks only set flags).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func loadProgram(imagePath, orgFlag, entryFlag, diskPath string, args []string) (image, []byte, uint32, error) {
	var disk []byte
	if diskPath != "" {
		d, err := os.ReadFile(diskPath)
		if err != nil {
			return image{}, nil, 0, err
		}
		disk = d
	}
	parseNum := func(s string) (uint32, error) {
		s = strings.TrimPrefix(s, "0x")
		v, err := strconv.ParseUint(s, 16, 32)
		if err != nil {
			v, err = strconv.ParseUint(s, 10, 32)
		}
		return uint32(v), err
	}
	if imagePath != "" {
		data, err := os.ReadFile(imagePath)
		if err != nil {
			return image{}, nil, 0, err
		}
		org, err := parseNum(orgFlag)
		if err != nil {
			return image{}, nil, 0, fmt.Errorf("bad -org: %v", err)
		}
		entry := org
		if entryFlag != "" {
			if entry, err = parseNum(entryFlag); err != nil {
				return image{}, nil, 0, fmt.Errorf("bad -entry: %v", err)
			}
		}
		return image{org: org, data: data}, disk, entry, nil
	}
	if len(args) != 1 {
		return image{}, nil, 0, fmt.Errorf("need an assembly source file or -image")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return image{}, nil, 0, err
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		return image{}, nil, 0, err
	}
	return image{org: prog.Org, data: prog.Image}, disk, prog.Entry(), nil
}
