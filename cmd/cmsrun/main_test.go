package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadProgramFromSource(t *testing.T) {
	src := write(t, "p.s", ".org 0x2000\n_start:\n mov eax, 1\n hlt\n")
	img, disk, entry, err := loadProgram("", "0x1000", "", "", []string{src})
	if err != nil {
		t.Fatal(err)
	}
	if img.org != 0x2000 || entry != 0x2000 || disk != nil {
		t.Errorf("org %#x entry %#x", img.org, entry)
	}
	if len(img.data) == 0 {
		t.Error("empty image")
	}
}

func TestLoadProgramFromImage(t *testing.T) {
	bin := write(t, "p.bin", "\x00\x01") // nop, hlt
	disk := write(t, "d.img", "DISKDATA")
	img, d, entry, err := loadProgram(bin, "0x4000", "0x4001", disk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.org != 0x4000 || entry != 0x4001 {
		t.Errorf("org %#x entry %#x", img.org, entry)
	}
	if string(d) != "DISKDATA" {
		t.Errorf("disk %q", d)
	}
}

func runCmsrun(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestExitCleanHalt(t *testing.T) {
	src := write(t, "p.s", ".org 0x1000\n_start:\n mov eax, 7\n hlt\n")
	code, stdout, _ := runCmsrun(t, src)
	if code != exitOK {
		t.Fatalf("exit = %d, want %d", code, exitOK)
	}
	if !strings.Contains(stdout, "eax=0x7") {
		t.Errorf("stdout missing final state: %q", stdout)
	}
}

// TestExitGuestFault is the scripting fix: a guest that dies on an
// unrecoverable fault (here an unhandled software interrupt) must be
// distinguishable to callers from a clean hlt and from tool errors.
func TestExitGuestFault(t *testing.T) {
	src := write(t, "p.s", ".org 0x1000\n_start:\n int 5\n hlt\n")
	code, _, stderr := runCmsrun(t, src)
	if code != exitFault {
		t.Fatalf("exit = %d (stderr %q), want %d", code, stderr, exitFault)
	}
	if stderr == "" {
		t.Error("fault exited silently")
	}
}

// TestExitGuestFaultInTranslatedCode faults after hot translated code ran —
// the recovery path (rollback, re-interpretation, genuine-fault delivery)
// must surface the same exit code as an interpreter-path fault.
func TestExitGuestFaultInTranslatedCode(t *testing.T) {
	src := write(t, "p.s", `
.org 0x1000
_start:
	mov ecx, 2000
loop:
	add eax, 1
	dec ecx
	jne loop
	mov ebx, [0x800000]
	hlt
`)
	code, _, _ := runCmsrun(t, "-ram", "2097152", src)
	if code != exitFault {
		t.Fatalf("exit = %d, want %d", code, exitFault)
	}
}

func TestExitBudgetExhausted(t *testing.T) {
	src := write(t, "p.s", ".org 0x1000\n_start:\n jmp _start\n")
	code, _, stderr := runCmsrun(t, "-budget", "10000", src)
	if code != exitBudget {
		t.Fatalf("exit = %d (stderr %q), want %d", code, stderr, exitBudget)
	}
	if !strings.Contains(stderr, "budget") {
		t.Errorf("stderr = %q, want budget message", stderr)
	}
}

func TestExitUsageErrors(t *testing.T) {
	if code, _, _ := runCmsrun(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCmsrun(t, "/no/such/file.s"); code != exitUsage {
		t.Errorf("missing file: exit %d, want %d", code, exitUsage)
	}
	bad := write(t, "bad.s", "not a real instruction\n")
	if code, _, _ := runCmsrun(t, bad); code != exitUsage {
		t.Errorf("bad assembly: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCmsrun(t, "-no-such-flag"); code != exitUsage {
		t.Errorf("bad flag: exit %d, want %d", code, exitUsage)
	}
}

// TestCheckpointRestoreRoundtrip splits one run across -checkpoint and
// -restore and requires the continuation to reach the same final state a
// solo run reports, with the restored budget defaulting to the capture's.
func TestCheckpointRestoreRoundtrip(t *testing.T) {
	prog := `
.org 0x1000
_start:
	mov ecx, 60000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`
	src := write(t, "p.s", prog)
	code, solo, _ := runCmsrun(t, src)
	if code != exitOK {
		t.Fatalf("solo exit = %d", code)
	}

	snap := filepath.Join(t.TempDir(), "half.snap")
	code, out, _ := runCmsrun(t, "-budget", "50000", "-checkpoint", snap, src)
	if code != exitBudget {
		t.Fatalf("capture exit = %d, want %d", code, exitBudget)
	}
	if !strings.Contains(out, "checkpoint: ") {
		t.Fatalf("no checkpoint confirmation in %q", out)
	}

	// -budget was not given: the restore must adopt the captured budget and
	// stop exactly where the capture did (still exit 3, zero extra insns).
	code, _, _ = runCmsrun(t, "-restore", snap)
	if code != exitBudget {
		t.Fatalf("same-budget restore exit = %d, want %d", code, exitBudget)
	}

	// A raised budget finishes the run; the final state must match solo.
	code, out, _ = runCmsrun(t, "-budget", "100000000", "-restore", snap)
	if code != exitOK {
		t.Fatalf("restore exit = %d", code)
	}
	want := solo[strings.Index(solo, "final state:"):]
	got := out[strings.Index(out, "final state:"):]
	if want != got {
		t.Fatalf("final state diverged:\nsolo    %q\nrestore %q", want, got)
	}

	if code, _, _ := runCmsrun(t, "-restore", snap, src); code != exitUsage {
		t.Errorf("-restore with a program: exit %d, want %d", code, exitUsage)
	}
	garbage := write(t, "bad.snap", "not a snapshot")
	if code, _, _ := runCmsrun(t, "-restore", garbage); code != exitUsage {
		t.Errorf("corrupt envelope: exit %d, want %d", code, exitUsage)
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, _, _, err := loadProgram("", "0x1000", "", "", nil); err == nil {
		t.Error("missing source must fail")
	}
	if _, _, _, err := loadProgram("", "0x1000", "", "", []string{"/nonexistent.s"}); err == nil {
		t.Error("unreadable source must fail")
	}
	bad := write(t, "bad.s", "frobnicate eax\n")
	if _, _, _, err := loadProgram("", "0x1000", "", "", []string{bad}); err == nil {
		t.Error("bad assembly must fail")
	}
	bin := write(t, "p.bin", "\x00")
	if _, _, _, err := loadProgram(bin, "zzz", "", "", nil); err == nil {
		t.Error("bad org must fail")
	}
	if _, _, _, err := loadProgram(bin, "0x1000", "zzz", "", nil); err == nil {
		t.Error("bad entry must fail")
	}
	if _, _, _, err := loadProgram(bin, "0x1000", "", "/nonexistent.img", nil); err == nil {
		t.Error("unreadable disk must fail")
	}
}
