package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadProgramFromSource(t *testing.T) {
	src := write(t, "p.s", ".org 0x2000\n_start:\n mov eax, 1\n hlt\n")
	img, disk, entry, err := loadProgram("", "0x1000", "", "", []string{src})
	if err != nil {
		t.Fatal(err)
	}
	if img.org != 0x2000 || entry != 0x2000 || disk != nil {
		t.Errorf("org %#x entry %#x", img.org, entry)
	}
	if len(img.data) == 0 {
		t.Error("empty image")
	}
}

func TestLoadProgramFromImage(t *testing.T) {
	bin := write(t, "p.bin", "\x00\x01") // nop, hlt
	disk := write(t, "d.img", "DISKDATA")
	img, d, entry, err := loadProgram(bin, "0x4000", "0x4001", disk, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.org != 0x4000 || entry != 0x4001 {
		t.Errorf("org %#x entry %#x", img.org, entry)
	}
	if string(d) != "DISKDATA" {
		t.Errorf("disk %q", d)
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, _, _, err := loadProgram("", "0x1000", "", "", nil); err == nil {
		t.Error("missing source must fail")
	}
	if _, _, _, err := loadProgram("", "0x1000", "", "", []string{"/nonexistent.s"}); err == nil {
		t.Error("unreadable source must fail")
	}
	bad := write(t, "bad.s", "frobnicate eax\n")
	if _, _, _, err := loadProgram("", "0x1000", "", "", []string{bad}); err == nil {
		t.Error("bad assembly must fail")
	}
	bin := write(t, "p.bin", "\x00")
	if _, _, _, err := loadProgram(bin, "zzz", "", "", nil); err == nil {
		t.Error("bad org must fail")
	}
	if _, _, _, err := loadProgram(bin, "0x1000", "zzz", "", nil); err == nil {
		t.Error("bad entry must fail")
	}
	if _, _, _, err := loadProgram(bin, "0x1000", "", "/nonexistent.img", nil); err == nil {
		t.Error("unreadable disk must fail")
	}
}
