// Command cmsfuzz drives the generative guest fuzzer: it sweeps seeds
// through the differential oracle (internal/fuzzer) — interpreter, xlate,
// compiled, the risc register-IR backend, pipelined, shared-store, and
// snapshot legs, plus fault-injected variants under -inject — shrinks any
// divergence to a minimal reproducer, and writes it to the corpus
// directory. It also replays reproducer files and archives individual
// seeds.
//
// -replay accepts two file formats, distinguished by content: the fuzzer's
// text reproducers (seed + shrink edits), and the farm's JSON incident
// bundles (internal/incident) — a failure captured under concurrent serving
// load, re-run solo and verified bit-exact (same panic/error/timeout
// boundary, same architectural state hash). A bundle written for a restored
// job embeds its checkpoint envelope, and replay resumes the serialized VM
// instead of booting — the failure reproduces from the last checkpoint, not
// from instruction zero (docs/SNAPSHOT.md).
//
// Exit status: 0 = all seeds passed / incident reproduced, 1 = divergence
// found (reproducer written) or incident did not reproduce, 2 = usage or
// internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"cms/internal/fuzzer"
	"cms/internal/incident"
)

func main() {
	var (
		seeds   = flag.Int("seeds", 256, "number of seeds to sweep")
		start   = flag.Uint64("start", 1, "first seed of the sweep")
		oneSeed = flag.String("seed", "", "check a single seed (decimal or 0x hex) and exit")
		inject  = flag.Bool("inject", false, "arm fault-injection schedules (rollbacks, alias faults, evictions, protection hits)")
		replay  = flag.String("replay", "", "replay a reproducer file instead of sweeping")
		corpus  = flag.String("corpus", "internal/fuzzer/testdata/corpus", "directory for shrunk reproducers")
		write   = flag.String("write", "", "with -seed: archive the program as a reproducer file")
		shrinkN = flag.Int("shrink", 200, "max shrink attempts per divergence")
		verbose = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	opts := fuzzer.CheckOptions{Inject: *inject}

	if *replay != "" {
		if incident.IsBundle(*replay) {
			b, err := incident.Load(*replay)
			if err != nil {
				fatal(err)
			}
			if err := incident.Replay(b); err != nil {
				fmt.Println(err)
				os.Exit(1)
			}
			fmt.Printf("%s: reproduced (%s %s, job %s attempt %d on %q rung)\n",
				*replay, b.Kind, b.Error, b.Job, b.Attempt, b.Rung)
			return
		}
		p, err := fuzzer.LoadReproducer(*replay)
		if err != nil {
			fatal(err)
		}
		if d := fuzzer.CheckProgram(p, opts); d != nil {
			fmt.Println(d.Error())
			os.Exit(1)
		}
		fmt.Printf("%s: ok (seed %#x, %d body insns)\n", *replay, p.Seed, p.BodyInsns)
		return
	}

	if *oneSeed != "" {
		seed, err := strconv.ParseUint(*oneSeed, 0, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -seed %q: %w", *oneSeed, err))
		}
		p, d := fuzzer.CheckSeed(seed, fuzzer.GenConfig{}, opts)
		if *write != "" {
			if err := fuzzer.WriteReproducer(*write, p, d); err != nil {
				fatal(err)
			}
			fmt.Printf("archived seed %#x to %s\n", seed, *write)
		}
		if d != nil {
			report(d, p, opts, *corpus, *shrinkN)
			os.Exit(1)
		}
		fmt.Printf("seed %#x: ok (%d body insns)\n", seed, p.BodyInsns)
		return
	}

	failures := 0
	for i := 0; i < *seeds; i++ {
		seed := *start + uint64(i)
		p, d := fuzzer.CheckSeed(seed, fuzzer.GenConfig{}, opts)
		if d != nil {
			failures++
			report(d, p, opts, *corpus, *shrinkN)
			continue
		}
		if *verbose && (i+1)%64 == 0 {
			fmt.Printf("%d/%d seeds ok\n", i+1, *seeds)
		}
	}
	if failures > 0 {
		fmt.Printf("%d of %d seeds diverged\n", failures, *seeds)
		os.Exit(1)
	}
	if *verbose || *seeds >= 64 {
		fmt.Printf("all %d seeds ok\n", *seeds)
	}
}

// report shrinks a divergent program and writes the reproducer.
func report(d *fuzzer.Divergence, p *fuzzer.Program, opts fuzzer.CheckOptions, corpus string, attempts int) {
	fmt.Println(d.Error())
	fails := func(c *fuzzer.Program) bool { return fuzzer.CheckProgram(c, opts) != nil }
	small := fuzzer.Shrink(p, fails, attempts)
	if err := os.MkdirAll(corpus, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(corpus, fmt.Sprintf("seed-%x.txt", p.Seed))
	if err := fuzzer.WriteReproducer(path, small, d); err != nil {
		fatal(err)
	}
	fmt.Printf("shrunk to %d body insns; reproducer written to %s\n", small.BodyInsns, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cmsfuzz:", err)
	os.Exit(2)
}
