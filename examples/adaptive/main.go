// adaptive demonstrates the paper's core paradigm on a single hostile loop:
// aggressive speculation, hardware-detected failure, rollback and recovery
// by interpretation, and adaptive retranslation once the failure recurs.
//
// The loop's store and load always collide through different registers, so
// the translator's speculative reordering is wrong every time. Watch the
// alias hardware catch it, and CMS retranslate conservatively.
package main

import (
	"fmt"
	"log"

	"cms"
	"cms/internal/vliw"
)

func main() {
	prog, err := cms.Assemble(`
.org 0x1000
	mov ebx, 0x8000        ; two views of the same address...
	mov edx, 0x8000        ; ...that no translator could prove equal
	mov ecx, 4000
loop:
	mov [ebx], ecx         ; store through one pointer
	mov eax, [edx]         ; load through the other: must see the store
	add esi, eax
	dec ecx
	jne loop
	hlt
`)
	if err != nil {
		log.Fatal(err)
	}

	sys := cms.NewSystem(prog, cms.SystemConfig{})
	if err := sys.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	m := sys.Metrics
	fmt.Println("the hostile loop ran to completion:")
	fmt.Printf("  esi (sum of loads):   %d (correct: %d)\n",
		sys.CPU().Regs[cms.ESI], 4000*4001/2)
	fmt.Println("\nwhat CMS went through to get there:")
	fmt.Printf("  alias faults:          %d  (speculative reordering caught by hardware)\n",
		m.Faults[vliw.FAlias])
	fmt.Printf("  rollbacks+reinterpret: every fault recovered precisely\n")
	fmt.Printf("  adaptations:           %d  (retranslated with conservative policy)\n",
		m.Adaptations[vliw.FAlias])
	fmt.Printf("  translations made:     %d\n", m.Translations)
	fmt.Printf("  final cost:            %.2f molecules/instruction\n", m.MPI())

	// For contrast: the same program with reordering suppressed from the
	// start never faults — but pays for caution everywhere else.
	cfg := cms.DefaultConfig()
	cfg.BasePolicy.NoReorderMem = true
	safe := cms.NewSystem(prog, cms.SystemConfig{Engine: &cfg})
	if err := safe.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalways-conservative run: %d alias faults, %.2f molecules/instruction\n",
		safe.Metrics.Faults[vliw.FAlias], safe.Metrics.MPI())
}
