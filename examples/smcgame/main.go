// smcgame runs the Quake Demo2 analog — a frame loop whose inner blitter is
// performance-critical self-modifying code — with and without
// self-revalidating translations, reproducing the §3.6.2 experiment ("the
// Quake Demo2 benchmark achieves a 28% higher frame rate with
// self-revalidation than without it").
package main

import (
	"fmt"
	"log"

	"cms"
)

func main() {
	w, err := cms.WorkloadByName("quake_demo2")
	if err != nil {
		log.Fatal(err)
	}

	with, err := cms.RunWorkload(w, cms.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfgOff := cms.DefaultConfig()
	cfgOff.EnableSelfReval = false
	without, err := cms.RunWorkload(w, cfgOff)
	if err != nil {
		log.Fatal(err)
	}

	frames := with.Plat.Bus.Read32(cms.QuakeFrameVar)
	rate := func(s *cms.System) float64 {
		return float64(frames) / (float64(s.Metrics.TotalMols()) / 1e6)
	}
	fmt.Printf("frames rendered:                 %d\n", frames)
	fmt.Printf("with self-revalidation:          %.1f frames/Mmol (%d prologue passes)\n",
		rate(with), with.Metrics.SelfRevalPasses)
	fmt.Printf("without (invalidate+retranslate): %.1f frames/Mmol (%d translations)\n",
		rate(without), without.Metrics.Translations)
	fmt.Printf("frame-rate improvement:          %.1f%%  (paper reports 28%%)\n",
		100*(rate(with)-rate(without))/rate(without))
}
