// osboot runs an operating-system boot analog — the paper's hardest workload
// class: port and memory-mapped I/O, DMA that lands on translated code
// pages, timer interrupts, mixed code-and-data pages, and self-modifying
// driver code — and shows how the Code Morphing engine coped.
package main

import (
	"flag"
	"fmt"
	"log"

	"cms"
)

func main() {
	name := flag.String("os", "win98_boot", "which boot analog (see cmsbench -list)")
	flag.Parse()

	w, err := cms.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("booting %s (stands in for: %s)\n\n", w.Name, w.Paper)

	sys, err := cms.RunWorkload(w, cms.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("console output: %q\n\n", sys.Console())
	m := sys.Metrics
	fmt.Printf("guest instructions:     %d\n", m.GuestTotal())
	fmt.Printf("molecules/instruction:  %.2f\n", m.MPI())
	fmt.Printf("translations:           %d\n", m.Translations)
	fmt.Printf("interrupts delivered:   %d\n", m.Interrupts)
	fmt.Printf("DMA invalidations:      %d\n", m.DMAInvalidations)
	fmt.Printf("protection faults:      %d (fine-grain conversions %d)\n",
		m.ProtFaults, m.FineGrainConversions)
	fmt.Printf("self-reval arms/passes: %d/%d\n", m.SelfRevalArms, m.SelfRevalPasses)
	fmt.Printf("stylized SMC adoptions: %d\n", m.StylizedAdopts)
	fmt.Printf("chained exits:          %d (vs %d dispatcher returns)\n",
		m.ChainTransfers, m.DispatchReturns)
}
