// Quickstart: assemble a small g86 program, run it under the Code Morphing
// engine, and look at what happened — how much ran interpreted versus
// translated, and at what molecule cost.
package main

import (
	"fmt"
	"log"

	"cms"
)

func main() {
	prog, err := cms.Assemble(`
.org 0x1000
	mov ecx, 5000          ; enough iterations to get hot and translate
	mov eax, 0
loop:
	add eax, ecx
	mov [0x8000], eax      ; running sum lives in memory
	mov ebx, [0x8000]
	dec ecx
	jne loop

	; say goodbye through the serial console
	mov eax, 'd'
	out 0x3f8, eax
	mov eax, 'o'
	out 0x3f8, eax
	mov eax, 'n'
	out 0x3f8, eax
	mov eax, 'e'
	out 0x3f8, eax
	hlt
`)
	if err != nil {
		log.Fatal(err)
	}

	sys := cms.NewSystem(prog, cms.SystemConfig{})
	if err := sys.Run(10_000_000); err != nil {
		log.Fatal(err)
	}

	m := sys.Metrics
	fmt.Printf("console said:        %q\n", sys.Console())
	fmt.Printf("sum in eax:          %d\n", sys.CPU().Regs[cms.EAX])
	fmt.Printf("guest instructions:  %d (%d interpreted, %d in translations)\n",
		m.GuestTotal(), m.GuestInterp, m.GuestTexec)
	fmt.Printf("host molecules:      %d  (%.2f per guest instruction)\n",
		m.TotalMols(), m.MPI())
	fmt.Printf("translations made:   %d\n", m.Translations)

	// The same program, interpretation only, for contrast.
	ref := cms.NewSystem(prog, cms.SystemConfig{Engine: &cms.Config{NoTranslate: true}})
	if err := ref.Run(10_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterpreter-only:    %d molecules (%.2f per instruction)\n",
		ref.Metrics.TotalMols(), ref.Metrics.MPI())
	fmt.Printf("speedup from translation: %.1fx\n",
		float64(ref.Metrics.TotalMols())/float64(m.TotalMols()))
}
