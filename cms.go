// Package cms is the public face of this reproduction of the Transmeta Code
// Morphing Software (Dehnert et al., CGO 2003): a co-designed virtual
// machine consisting of a g86 guest ISA (an x86-like CISC), a Crusoe-like
// VLIW host with hardware commit/rollback, alias, and fine-grain protection
// support, and the Code Morphing engine — interpreter, dynamic binary
// translator, optimizer, and runtime — that binds them.
//
// Quick start:
//
//	prog, _ := cms.Assemble(`
//	.org 0x1000
//		mov ecx, 100
//	loop:
//		add eax, ecx
//		dec ecx
//		jne loop
//		hlt
//	`)
//	sys := cms.NewSystem(prog, cms.SystemConfig{})
//	if err := sys.Run(1_000_000); err != nil { ... }
//	fmt.Println(sys.CPU().Regs[cms.EAX], sys.Metrics.MPI())
//
// The deeper layers are importable for tooling and experiments:
// internal/guest (ISA), internal/vliw (host machine), internal/xlate
// (translator), internal/cms (engine), internal/workload (benchmark suite),
// internal/bench (the paper's evaluation harness).
package cms

import (
	"cms/internal/asm"
	engine "cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/snapshot"
	"cms/internal/workload"
	"cms/internal/xlate"
)

// Re-exported core types. The aliases make the engine's full configuration
// and metrics surface part of the public API.
type (
	// Config is the engine configuration; see DefaultConfig.
	Config = engine.Config
	// Engine is the Code Morphing engine bound to one platform.
	Engine = engine.Engine
	// Metrics is the engine's dynamic statistics (molecules, faults, SMC
	// machinery events, control-flow transitions).
	Metrics = engine.Metrics
	// Policy is a translation speculation policy.
	Policy = xlate.Policy
	// Platform is the simulated PC: bus, devices, interrupt controller.
	Platform = dev.Platform
	// Program is an assembled g86 program.
	Program = asm.Program
	// Workload is a benchmark from the paper's suite analogs.
	Workload = workload.Workload
)

// Guest register names for reading CPU state.
const (
	EAX = guest.EAX
	ECX = guest.ECX
	EDX = guest.EDX
	EBX = guest.EBX
	ESP = guest.ESP
	EBP = guest.EBP
	ESI = guest.ESI
	EDI = guest.EDI
)

// DefaultConfig returns the standard engine configuration (every mechanism
// of the paper enabled).
func DefaultConfig() Config { return engine.DefaultConfig() }

// Assemble assembles g86 assembly text.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// SystemConfig shapes NewSystem.
type SystemConfig struct {
	// RAM is the guest memory size (default 2 MiB).
	RAM uint32
	// Disk is the disk image (optional).
	Disk []byte
	// Engine is the engine configuration (default DefaultConfig).
	Engine *Config
	// StackTop initializes ESP (default RAM/2).
	StackTop uint32
}

// System is a loaded machine: platform plus engine.
type System struct {
	*Engine
}

// NewSystem builds a platform, loads the program, and returns a ready
// system.
func NewSystem(prog *Program, sc SystemConfig) *System {
	if sc.RAM == 0 {
		sc.RAM = 1 << 21
	}
	cfg := engine.DefaultConfig()
	if sc.Engine != nil {
		cfg = *sc.Engine
	}
	plat := dev.NewPlatform(sc.RAM, sc.Disk)
	plat.Bus.WriteRaw(prog.Org, prog.Image)
	e := engine.New(plat, prog.Entry(), cfg)
	if sc.StackTop == 0 {
		sc.StackTop = sc.RAM / 2
	}
	e.CPU().Regs[guest.ESP] = sc.StackTop
	return &System{Engine: e}
}

// Console returns the guest's serial console output so far.
func (s *System) Console() string { return s.Plat.Console.OutputString() }

// Snapshot serializes the whole machine — RAM, devices, architectural state,
// profile, Metrics, and the set of installed translations by content key —
// into a self-checking envelope (internal/snapshot). Legal whenever Run has
// returned: after a clean halt, budget exhaustion, or a cooperative cancel
// (Config.Cancel) at a commit boundary. A run resumed from the envelope with
// RestoreSystem retires exactly the instruction stream the captured machine
// would have, with bit-identical Metrics.
func (s *System) Snapshot() ([]byte, error) { return snapshot.Save(s.Engine) }

// RestoreSystem rebuilds a machine from a Snapshot envelope. cfg must be the
// configuration the captured engine ran with (a snapshot records state, not
// policy). Resume with the same budget the captured run had — Run counts
// cumulative retirement, so the combined run stops where an uninterrupted
// one would; the restored budget is available as System.Budget().
func RestoreSystem(blob []byte, cfg Config) (*System, error) {
	e, err := snapshot.Load(blob, cfg)
	if err != nil {
		return nil, err
	}
	return &System{Engine: e}, nil
}

// QuakeFrameVar is the RAM address where the Quake analog counts rendered
// frames (see the §3.6.2 experiment).
const QuakeFrameVar = workload.QuakeFrameVar

// Workloads returns the paper's benchmark suite analogs.
func Workloads() []Workload { return workload.All() }

// WorkloadByName finds a suite benchmark.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// RunWorkload builds and runs a suite benchmark under cfg, returning the
// engine for inspection.
func RunWorkload(w Workload, cfg Config) (*System, error) {
	img := w.Build()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := engine.New(plat, img.Entry, cfg)
	if err := e.Run(img.Budget); err != nil {
		return nil, err
	}
	return &System{Engine: e}, nil
}
