// Command servesmoke is the check.sh client for the cmsserve smoke test:
// it submits one workload job over HTTP, polls until the job completes,
// and asserts the metrics endpoint saw it. Exit 0 on success, 1 with a
// message otherwise. Stdlib only, like everything else in the repo.
//
// Usage: servesmoke -addr http://127.0.0.1:8086 [-workload eqntott]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8086", "cmsserve base URL")
	wl := flag.String("workload", "eqntott", "workload to submit")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	flag.Parse()

	if err := smoke(*addr, *wl, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok")
}

func smoke(addr, wl string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// The server may still be binding its listener; retry the health check.
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	body, _ := json.Marshal(map[string]string{"workload": wl})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
		Result *struct {
			Halted bool `json:"halted"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return err
	}

	for {
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			return err
		}
		if view.Status == "done" {
			break
		}
		if view.Status == "failed" {
			return fmt.Errorf("job failed: %s", view.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if view.Result == nil || !view.Result.Halted {
		return fmt.Errorf("job done but guest did not halt cleanly")
	}

	m, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer m.Body.Close()
	raw, err := io.ReadAll(m.Body)
	if err != nil {
		return err
	}
	if !strings.Contains(string(raw), "cms_farm_jobs_done_total 1") {
		return fmt.Errorf("/metrics does not show the completed job")
	}
	return nil
}
