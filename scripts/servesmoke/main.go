// Command servesmoke is the check.sh client for the cmsserve smoke test:
// it submits one workload job over HTTP, polls until the job completes,
// and asserts the metrics endpoint saw it. With -chaos it additionally
// submits a job armed with a deterministic injected panic, requires the
// failure to be contained (job failed, daemon still ready, incident bundle
// captured), and prints the bundle path as "servesmoke: incident PATH" so
// check.sh can hand it to cmsfuzz -replay. With -migrate-target URL it
// additionally drives a live migration: a long job submitted to -addr is
// checkpointed mid-run via POST /v1/migrate, restored on the target
// instance, and its final state — registers, flags, console, the full
// Metrics struct, cache statistics — must be bit-identical to the same job
// run uninterrupted (only wall-clock fields may differ). Exit 0 on success,
// 1 with a message otherwise. Stdlib only, like everything else in the repo.
//
// Usage: servesmoke -addr http://127.0.0.1:8086 [-workload eqntott]
// [-chaos] [-migrate-target http://127.0.0.1:8087]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8086", "cmsserve base URL")
	wl := flag.String("workload", "eqntott", "workload to submit")
	chaos := flag.Bool("chaos", false, "also submit a chaos-panic job and print its incident bundle path")
	migrateTarget := flag.String("migrate-target", "", "second cmsserve base URL: checkpoint a job here, restore it there, require bit-identical state")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	flag.Parse()

	if err := smoke(*addr, *wl, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	if *chaos {
		path, err := chaosSmoke(*addr, time.Now().Add(*timeout))
		if err != nil {
			fmt.Fprintln(os.Stderr, "servesmoke: chaos:", err)
			os.Exit(1)
		}
		fmt.Println("servesmoke: incident", path)
	}
	if *migrateTarget != "" {
		if err := migrateSmoke(*addr, *migrateTarget, time.Now().Add(*timeout)); err != nil {
			fmt.Fprintln(os.Stderr, "servesmoke: migrate:", err)
			os.Exit(1)
		}
		fmt.Println("servesmoke: migration ok")
	}
	fmt.Println("servesmoke: ok")
}

// chaosSource is a hot loop long enough to translate; the injected schedule
// panics at a deterministic texec boundary.
const chaosSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

// chaosSmoke submits one chaos-panic job and verifies the failure was
// contained: the job fails with the panic captured, an incident bundle was
// written, and the daemon still reports ready. Returns the bundle path.
func chaosSmoke(addr string, deadline time.Time) (string, error) {
	body, _ := json.Marshal(map[string]interface{}{
		"source":       chaosSource,
		"inject_seed":  5,
		"chaos_panics": true,
	})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var view struct {
		ID        string   `json:"id"`
		Status    string   `json:"status"`
		Error     string   `json:"error"`
		Incidents []string `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return "", err
	}
	for view.Status == "queued" || view.Status == "running" {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("chaos job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(25 * time.Millisecond)
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			return "", err
		}
	}
	if view.Status != "failed" || !strings.Contains(view.Error, "panic:") {
		return "", fmt.Errorf("chaos job %s: status %s (%s), want contained panic", view.ID, view.Status, view.Error)
	}
	if len(view.Incidents) == 0 {
		return "", fmt.Errorf("chaos job %s failed without an incident bundle", view.ID)
	}
	r, err := http.Get(addr + "/readyz")
	if err != nil {
		return "", err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return "", fmt.Errorf("daemon not ready after a contained panic: /readyz = %d", r.StatusCode)
	}
	return view.Incidents[0], nil
}

// migrateSource retires ~9M instructions: long enough that the migrate
// request always lands while the job is still mid-run, short enough to keep
// the smoke fast.
const migrateSource = `
.org 0x1000
_start:
	mov edx, 150
outer:
	mov ecx, 20000
inner:
	add eax, 3
	dec ecx
	jne inner
	dec edx
	jne outer
	hlt
`

// wallClockKeys are the only Result fields allowed to differ between an
// uninterrupted run and a checkpoint/restore pair: wall-clock cost,
// shared-store attribution, and retry bookkeeping. Everything else —
// registers, flags, console, Metrics, cache statistics — must be
// bit-identical.
var wallClockKeys = []string{"wall_ns", "shared_hits", "shared_misses", "attempts", "rung", "retry_reason"}

func submitSource(addr, source string) (map[string]interface{}, error) {
	body, _ := json.Marshal(map[string]interface{}{"source": source})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var v map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

func pollDone(addr, id string, deadline time.Time) (map[string]interface{}, error) {
	for {
		r, err := http.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			return nil, err
		}
		var v map[string]interface{}
		err = json.NewDecoder(r.Body).Decode(&v)
		r.Body.Close()
		if err != nil {
			return nil, err
		}
		switch v["status"] {
		case "done":
			return v, nil
		case "queued", "running":
		default:
			return nil, fmt.Errorf("job %s: status %v (%v)", id, v["status"], v["error"])
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s stuck in %v", id, v["status"])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// normalizedResult strips the wall-clock fields from a job view's result and
// re-marshals it canonically (json.Marshal sorts object keys), so two results
// compare bit-identical exactly when every deterministic observable matches.
func normalizedResult(v map[string]interface{}) (string, error) {
	res, ok := v["result"].(map[string]interface{})
	if !ok {
		return "", fmt.Errorf("job view carries no result")
	}
	for _, k := range wallClockKeys {
		delete(res, k)
	}
	raw, err := json.Marshal(res)
	return string(raw), err
}

// migrateSmoke drives a live migration end to end: run the reference job to
// completion on A, submit the same job again, checkpoint it mid-run via
// POST /v1/migrate, let the target instance finish it, and require the
// migrated final state to be bit-identical to the uninterrupted reference.
func migrateSmoke(addrA, addrB string, deadline time.Time) error {
	// The target server may still be binding its listener.
	for {
		r, err := http.Get(addrB + "/healthz")
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("target never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	ref, err := submitSource(addrA, migrateSource)
	if err != nil {
		return fmt.Errorf("reference: %v", err)
	}
	ref, err = pollDone(addrA, ref["id"].(string), deadline)
	if err != nil {
		return fmt.Errorf("reference: %v", err)
	}
	want, err := normalizedResult(ref)
	if err != nil {
		return fmt.Errorf("reference: %v", err)
	}

	v, err := submitSource(addrA, migrateSource)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(map[string]string{"job": v["id"].(string), "target": addrB})
	resp, err := http.Post(addrA+"/v1/migrate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("migrate: %d: %s", resp.StatusCode, raw)
	}
	var mig struct {
		Source map[string]interface{} `json:"source"`
		Target map[string]interface{} `json:"target"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mig); err != nil {
		return err
	}
	if mig.Source["status"] != "checkpointed" {
		return fmt.Errorf("source job status %v, want checkpointed", mig.Source["status"])
	}
	if n, ok := mig.Source["snapshot_bytes"].(float64); !ok || n <= 0 {
		return fmt.Errorf("source view reports no snapshot bytes: %v", mig.Source["snapshot_bytes"])
	}

	tv, err := pollDone(addrB, mig.Target["id"].(string), deadline)
	if err != nil {
		return fmt.Errorf("migrated job: %v", err)
	}
	if tv["restored"] != true {
		return fmt.Errorf("migrated job not flagged restored")
	}
	got, err := normalizedResult(tv)
	if err != nil {
		return fmt.Errorf("migrated job: %v", err)
	}
	if got != want {
		return fmt.Errorf("migrated final state diverged from the uninterrupted run:\nref %s\nmig %s", want, got)
	}

	// The migrated job must have rebuilt its translations through the
	// target's shared store — the rehydrate counters prove the restore path
	// actually ran rather than the job re-executing from scratch.
	m, err := http.Get(addrB + "/metrics")
	if err != nil {
		return err
	}
	defer m.Body.Close()
	raw, err := io.ReadAll(m.Body)
	if err != nil {
		return err
	}
	rehydrated := false
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "cms_farm_store_rehydrate_") {
			continue
		}
		if fields := strings.Fields(line); len(fields) == 2 && fields[1] != "0" {
			rehydrated = true
		}
	}
	if !rehydrated {
		return fmt.Errorf("target /metrics shows no rehydrated translations")
	}
	return nil
}

func smoke(addr, wl string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// The server may still be binding its listener; retry the health check.
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	body, _ := json.Marshal(map[string]string{"workload": wl})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
		Result *struct {
			Halted bool `json:"halted"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return err
	}

	for {
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			return err
		}
		if view.Status == "done" {
			break
		}
		if view.Status == "failed" {
			return fmt.Errorf("job failed: %s", view.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if view.Result == nil || !view.Result.Halted {
		return fmt.Errorf("job done but guest did not halt cleanly")
	}

	m, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer m.Body.Close()
	raw, err := io.ReadAll(m.Body)
	if err != nil {
		return err
	}
	if !strings.Contains(string(raw), "cms_farm_jobs_done_total 1") {
		return fmt.Errorf("/metrics does not show the completed job")
	}
	return nil
}
