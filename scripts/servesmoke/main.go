// Command servesmoke is the check.sh client for the cmsserve smoke test:
// it submits one workload job over HTTP, polls until the job completes,
// and asserts the metrics endpoint saw it. With -chaos it additionally
// submits a job armed with a deterministic injected panic, requires the
// failure to be contained (job failed, daemon still ready, incident bundle
// captured), and prints the bundle path as "servesmoke: incident PATH" so
// check.sh can hand it to cmsfuzz -replay. Exit 0 on success, 1 with a
// message otherwise. Stdlib only, like everything else in the repo.
//
// Usage: servesmoke -addr http://127.0.0.1:8086 [-workload eqntott] [-chaos]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8086", "cmsserve base URL")
	wl := flag.String("workload", "eqntott", "workload to submit")
	chaos := flag.Bool("chaos", false, "also submit a chaos-panic job and print its incident bundle path")
	timeout := flag.Duration("timeout", 30*time.Second, "overall deadline")
	flag.Parse()

	if err := smoke(*addr, *wl, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke:", err)
		os.Exit(1)
	}
	if *chaos {
		path, err := chaosSmoke(*addr, time.Now().Add(*timeout))
		if err != nil {
			fmt.Fprintln(os.Stderr, "servesmoke: chaos:", err)
			os.Exit(1)
		}
		fmt.Println("servesmoke: incident", path)
	}
	fmt.Println("servesmoke: ok")
}

// chaosSource is a hot loop long enough to translate; the injected schedule
// panics at a deterministic texec boundary.
const chaosSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

// chaosSmoke submits one chaos-panic job and verifies the failure was
// contained: the job fails with the panic captured, an incident bundle was
// written, and the daemon still reports ready. Returns the bundle path.
func chaosSmoke(addr string, deadline time.Time) (string, error) {
	body, _ := json.Marshal(map[string]interface{}{
		"source":       chaosSource,
		"inject_seed":  5,
		"chaos_panics": true,
	})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var view struct {
		ID        string   `json:"id"`
		Status    string   `json:"status"`
		Error     string   `json:"error"`
		Incidents []string `json:"incidents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return "", err
	}
	for view.Status == "queued" || view.Status == "running" {
		if time.Now().After(deadline) {
			return "", fmt.Errorf("chaos job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(25 * time.Millisecond)
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			return "", err
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			return "", err
		}
	}
	if view.Status != "failed" || !strings.Contains(view.Error, "panic:") {
		return "", fmt.Errorf("chaos job %s: status %s (%s), want contained panic", view.ID, view.Status, view.Error)
	}
	if len(view.Incidents) == 0 {
		return "", fmt.Errorf("chaos job %s failed without an incident bundle", view.ID)
	}
	r, err := http.Get(addr + "/readyz")
	if err != nil {
		return "", err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return "", fmt.Errorf("daemon not ready after a contained panic: /readyz = %d", r.StatusCode)
	}
	return view.Incidents[0], nil
}

func smoke(addr, wl string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)

	// The server may still be binding its listener; retry the health check.
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	body, _ := json.Marshal(map[string]string{"workload": wl})
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit: %d: %s", resp.StatusCode, raw)
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
		Result *struct {
			Halted bool `json:"halted"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return err
	}

	for {
		r, err := http.Get(addr + "/v1/jobs/" + view.ID)
		if err != nil {
			return err
		}
		err = json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if err != nil {
			return err
		}
		if view.Status == "done" {
			break
		}
		if view.Status == "failed" {
			return fmt.Errorf("job failed: %s", view.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", view.ID, view.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if view.Result == nil || !view.Result.Halted {
		return fmt.Errorf("job done but guest did not halt cleanly")
	}

	m, err := http.Get(addr + "/metrics")
	if err != nil {
		return err
	}
	defer m.Body.Close()
	raw, err := io.ReadAll(m.Body)
	if err != nil {
		return err
	}
	if !strings.Contains(string(raw), "cms_farm_jobs_done_total 1") {
		return fmt.Errorf("/metrics does not show the completed job")
	}
	return nil
}
