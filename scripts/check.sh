#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, and the full test
# suite under the race detector (the translation pipeline is concurrent;
# -race is the tier-1 bar, not an extra).
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race ./...

# The differential backend test is the compiled backend's correctness
# contract (identical state and Metrics on every workload under both
# backends); run it by name so the gate fails loudly if it is ever renamed
# away or skipped.
go test -race -run 'TestBackendDifferential' -count=1 ./internal/bench/

# Build and smoke-run every example program: the examples exercise the
# public facade end to end, including the compiled hot path.
mkdir -p "${TMPDIR:-/tmp}/cms-examples"
for ex in examples/*/; do
	name=$(basename "$ex")
	bin="${TMPDIR:-/tmp}/cms-examples/$name"
	go build -o "$bin" "./$ex"
	"$bin" >/dev/null
	echo "check.sh: example $name ok"
done

echo "check.sh: all green"
