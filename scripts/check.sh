#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, and the full test
# suite under the race detector (the translation pipeline is concurrent;
# -race is the tier-1 bar, not an extra).
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race ./...
echo "check.sh: all green"
