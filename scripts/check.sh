#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, and the full test
# suite under the race detector (the translation pipeline is concurrent;
# -race is the tier-1 bar, not an extra).
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race ./...

# The differential backend test is the compiled backend's correctness
# contract (identical state and Metrics on every workload under both
# backends); run it by name so the gate fails loudly if it is ever renamed
# away or skipped.
go test -race -run 'TestBackendDifferential' -count=1 ./internal/bench/

# The farm differential test is the serving subsystem's correctness
# contract (solo and in-farm runs byte-identical over the shared store);
# run the package by name, under -race, so cross-VM sharing bugs fail here.
go test -race -count=1 ./internal/farm/...

# cmsserve smoke: start the daemon, drive one workload job over HTTP with
# the servesmoke client, then SIGTERM and require a clean drain (exit 0).
smokedir="${TMPDIR:-/tmp}/cms-serve-smoke"
mkdir -p "$smokedir"
go build -o "$smokedir/cmsserve" ./cmd/cmsserve
"$smokedir/cmsserve" -addr 127.0.0.1:18086 -vms 2 >"$smokedir/log" 2>&1 &
serve_pid=$!
smoke_ok=0
if go run ./scripts/servesmoke -addr http://127.0.0.1:18086; then
	smoke_ok=1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
	echo "check.sh: cmsserve did not drain cleanly on SIGTERM" >&2
	cat "$smokedir/log" >&2
	exit 1
fi
if [ "$smoke_ok" != 1 ]; then
	echo "check.sh: cmsserve smoke failed" >&2
	cat "$smokedir/log" >&2
	exit 1
fi
echo "check.sh: cmsserve smoke ok"

# Build and smoke-run every example program: the examples exercise the
# public facade end to end, including the compiled hot path.
mkdir -p "${TMPDIR:-/tmp}/cms-examples"
for ex in examples/*/; do
	name=$(basename "$ex")
	bin="${TMPDIR:-/tmp}/cms-examples/$name"
	go build -o "$bin" "./$ex"
	"$bin" >/dev/null
	echo "check.sh: example $name ok"
done

echo "check.sh: all green"
