#!/bin/sh
# check.sh — the repo's pre-merge gate: formatting, vet, and the full test
# suite under the race detector (the translation pipeline is concurrent;
# -race is the tier-1 bar, not an extra).
#
# Usage: scripts/check.sh
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
go test -race ./...

# The differential backend test is the compiled backend's correctness
# contract (identical state and Metrics on every workload under both
# backends); run it by name so the gate fails loudly if it is ever renamed
# away or skipped.
go test -race -run 'TestBackendDifferential' -count=1 ./internal/bench/

# The farm differential test is the serving subsystem's correctness
# contract (solo and in-farm runs byte-identical over the shared store,
# including mixed vliw/risc farms whose backend-tagged keys must stay
# disjoint); run the package by name, under -race, so cross-VM sharing
# bugs fail here.
# tcache rides along for the sharded-store torture test: shard regressions
# (single-flight, per-shard budgets, stats folding) must not land quietly.
go test -race -count=1 ./internal/farm/... ./internal/tcache/...

# Fault-containment chaos gate: hundreds of concurrent mixed jobs —
# injected panics, watchdog deadlines, healthy work — through every VM
# slot under -race, with replayable incident capture and bit-identity for
# the healthy jobs. Run by name so the capstone cannot be renamed away.
go test -race -count=1 -run 'TestChaosServing' ./internal/farm/

# Backend equivalence over the real workload suite: cmsbench -exp backend
# hard-fails if Metrics or cache statistics diverge between the vliw and
# risc backends on ANY workload — the ninth oracle leg's contract, re-run
# on full boots and apps instead of generated programs.
go run ./cmd/cmsbench -exp backend -runs 1

# Multicore farm smoke: a short sustained-load sweep through the farmscale
# harness at 1 and 4 VMs (GOMAXPROCS pinned per level). On a single-core
# host this prints the loud effective-parallelism warning and still checks
# the harness end to end.
go run ./cmd/cmsbench -exp farmscale -farmvms 1,4 -farmjobs 24

# Generative fuzzer smoke: sweep 64 seeds through the full differential
# oracle — nine straight legs per seed (interp, xlate, compiled, the risc
# register-IR backend, two pipeline widths, two shared-store runs, plus the
# random-boundary snapshot legs). A divergence writes a shrunk reproducer
# to internal/fuzzer/testdata/corpus/ and fails the gate.
go run ./cmd/cmsfuzz -seeds 64

# Native fuzz targets, a short session each: the ISA codec canonicality
# property, the bus fast-path/checked-path agreement property, and the
# three-executor (interpreted / compiled / risc-lowered) equivalence of
# synthesized atom codes.
go test -run '^$' -fuzz FuzzDecodeEncodeRoundtrip -fuzztime 5s ./internal/guest/
go test -run '^$' -fuzz FuzzBusReadWrite -fuzztime 5s ./internal/mem/
go test -run '^$' -fuzz FuzzRiscLowerRoundtrip -fuzztime 5s ./internal/risc/

# Coverage floors for the engine and translator, set just under the value
# measured when the gate was introduced (cms 82.0%, xlate 84.5%): new code
# in either package must bring tests along.
cover_gate() {
	pct=$(go test -cover -count=1 "$1" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "check.sh: no coverage figure for $1" >&2
		exit 1
	fi
	if [ "$(echo "$pct $2" | awk '{print ($1 < $2) ? 1 : 0}')" = 1 ]; then
		echo "check.sh: coverage for $1 fell to $pct% (floor $2%)" >&2
		exit 1
	fi
	echo "check.sh: coverage $1 $pct% (floor $2%)"
}
cover_gate ./internal/cms/ 78.0
cover_gate ./internal/xlate/ 80.0
# The risc backend is held to a higher floor: it is a from-scratch second
# executor whose only consumer protection is its tests (94%+ measured when
# the gate was introduced).
cover_gate ./internal/risc/ 80.0

# cmsserve smoke: start the daemon with incident capture armed, drive one
# healthy workload job plus one chaos-panic job over HTTP (the servesmoke
# client requires the panic to be contained and an incident bundle
# written), then SIGTERM and require a clean drain (exit 0). The captured
# bundle is replayed solo below — the flight-recorder contract end to end.
smokedir="${TMPDIR:-/tmp}/cms-serve-smoke"
rm -rf "$smokedir/incidents"
mkdir -p "$smokedir"
go build -o "$smokedir/cmsserve" ./cmd/cmsserve
"$smokedir/cmsserve" -addr 127.0.0.1:18086 -vms 2 -incidents "$smokedir/incidents" >"$smokedir/log" 2>&1 &
serve_pid=$!
smoke_ok=0
smoke_out=""
if smoke_out=$(go run ./scripts/servesmoke -addr http://127.0.0.1:18086 -chaos); then
	smoke_ok=1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
	echo "check.sh: cmsserve did not drain cleanly on SIGTERM" >&2
	cat "$smokedir/log" >&2
	exit 1
fi
if [ "$smoke_ok" != 1 ]; then
	echo "check.sh: cmsserve smoke failed" >&2
	cat "$smokedir/log" >&2
	exit 1
fi
echo "check.sh: cmsserve smoke ok"

# Replay the incident the chaos smoke captured: cmsfuzz must reproduce the
# injected panic bit-exactly from the bundle alone.
incident=$(printf '%s\n' "$smoke_out" | sed -n 's/^servesmoke: incident //p' | head -1)
if [ -z "$incident" ]; then
	echo "check.sh: chaos smoke captured no incident bundle" >&2
	exit 1
fi
go run ./cmd/cmsfuzz -replay "$incident"
echo "check.sh: incident replay ok"

# Live-migration smoke: two daemons, one long job checkpointed mid-run on
# the source via POST /v1/migrate and finished on the target. servesmoke
# requires the migrated final state to be bit-identical to an uninterrupted
# reference run and the target's rehydrate counters to prove the restore
# path ran. The source daemon runs with -checkpoint-drain armed so the
# SIGTERM drain exercises that shutdown path too.
"$smokedir/cmsserve" -addr 127.0.0.1:18087 -vms 2 -checkpoint-drain "$smokedir/drain" >"$smokedir/logA" 2>&1 &
mig_a=$!
"$smokedir/cmsserve" -addr 127.0.0.1:18088 -vms 2 >"$smokedir/logB" 2>&1 &
mig_b=$!
mig_ok=0
if go run ./scripts/servesmoke -addr http://127.0.0.1:18087 -migrate-target http://127.0.0.1:18088; then
	mig_ok=1
fi
kill -TERM "$mig_a" "$mig_b"
if ! wait "$mig_a" || ! wait "$mig_b"; then
	echo "check.sh: a migration daemon did not drain cleanly on SIGTERM" >&2
	cat "$smokedir/logA" "$smokedir/logB" >&2
	exit 1
fi
if [ "$mig_ok" != 1 ]; then
	echo "check.sh: live-migration smoke failed" >&2
	cat "$smokedir/logA" "$smokedir/logB" >&2
	exit 1
fi
echo "check.sh: live-migration smoke ok"

# Build and smoke-run every example program: the examples exercise the
# public facade end to end, including the compiled hot path.
mkdir -p "${TMPDIR:-/tmp}/cms-examples"
for ex in examples/*/; do
	name=$(basename "$ex")
	bin="${TMPDIR:-/tmp}/cms-examples/$name"
	go build -o "$bin" "./$ex"
	"$bin" >/dev/null
	echo "check.sh: example $name ok"
done

echo "check.sh: all green"
