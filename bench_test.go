// Benchmarks that regenerate the paper's evaluation under `go test -bench`.
// Each table and figure has a benchmark; the interesting output is the
// custom metrics (degradation %, fault ratios, slowdowns, frame rates), not
// ns/op. Run with:
//
//	go test -bench=. -benchmem
//
// cmd/cmsbench renders the same experiments as the paper's tables.
package cms_test

import (
	"runtime"
	"testing"

	"cms"
	"cms/internal/bench"
	engine "cms/internal/cms"
	"cms/internal/workload"
)

// runPair runs a workload under base and variant configs once per benchmark
// iteration and reports the molecule degradation.
func runPair(b *testing.B, w workload.Workload, variant func(*engine.Config)) {
	b.Helper()
	var degr float64
	for i := 0; i < b.N; i++ {
		base := bench.MustRun(w, engine.DefaultConfig())
		cfg := engine.DefaultConfig()
		variant(&cfg)
		v := bench.MustRun(w, cfg)
		degr = 100 * (float64(v.Mols()) - float64(base.Mols())) / float64(base.Mols())
	}
	b.ReportMetric(degr, "degr%")
}

// BenchmarkFigure2 regenerates "Degradation Caused by Suppressing Memory
// Reordering" per benchmark.
func BenchmarkFigure2(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			runPair(b, w, func(c *engine.Config) { c.BasePolicy.NoReorderMem = true })
		})
	}
}

// BenchmarkFigure3 regenerates "Degradation Caused By No Alias Hardware".
func BenchmarkFigure3(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			runPair(b, w, func(c *engine.Config) { c.BasePolicy.NoAliasHW = true })
		})
	}
}

// BenchmarkTable1 regenerates "Slowdown Without Fine-Grain Protection":
// fault ratio and molecules-per-instruction slowdown per benchmark.
func BenchmarkTable1(b *testing.B) {
	for _, name := range bench.Table1Workloads {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var ratio, slowdown float64
			for i := 0; i < b.N; i++ {
				fg := bench.MustRun(w, engine.DefaultConfig())
				cfg := engine.DefaultConfig()
				cfg.EnableFineGrain = false
				nofg := bench.MustRun(w, cfg)
				ratio = float64(nofg.Metrics.ProtFaults) / float64(fg.Metrics.ProtFaults)
				slowdown = nofg.Metrics.MPI() / fg.Metrics.MPI()
			}
			b.ReportMetric(ratio, "fault-ratio")
			b.ReportMetric(slowdown, "slowdown")
		})
	}
}

// BenchmarkSelfCheck regenerates the §3.6.3 forced-self-checking costs
// (code-size and molecule growth) on a representative subset (the full
// suite version is `cmsbench -exp selfcheck`).
func BenchmarkSelfCheck(b *testing.B) {
	for _, name := range []string{"eqntott", "gcc", "win98_boot", "quake_demo2"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			var codeGrowth, molGrowth float64
			for i := 0; i < b.N; i++ {
				base := bench.MustRun(w, engine.DefaultConfig())
				cfg := engine.DefaultConfig()
				cfg.BasePolicy.SelfCheck = true
				chk := bench.MustRun(w, cfg)
				bs := float64(base.Metrics.CodeAtoms) / float64(base.Metrics.GuestInsnsTranslated)
				cs := float64(chk.Metrics.CodeAtoms) / float64(chk.Metrics.GuestInsnsTranslated)
				codeGrowth = 100 * (cs - bs) / bs
				molGrowth = 100 * (float64(chk.Mols()) - float64(base.Mols())) / float64(base.Mols())
			}
			b.ReportMetric(codeGrowth, "code+%")
			b.ReportMetric(molGrowth, "mols+%")
		})
	}
}

// BenchmarkSelfReval regenerates the §3.6.2 Quake frame-rate experiment.
func BenchmarkSelfReval(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		r, err := bench.SelfReval()
		if err != nil {
			b.Fatal(err)
		}
		improvement = r.Improvement
	}
	b.ReportMetric(improvement, "fps+%")
}

// BenchmarkChaining measures what §2's exit chaining saves on a hot
// workload.
func BenchmarkChaining(b *testing.B) {
	var save float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Chain("eqntott")
		if err != nil {
			b.Fatal(err)
		}
		save = 100 * (float64(r.MolsUnchained) - float64(r.MolsChained)) / float64(r.MolsChained)
	}
	b.ReportMetric(save, "unchained+%")
}

// BenchmarkFlow runs the Figure 1 dispatch loop on a boot and reports the
// interpret/translate split.
func BenchmarkFlow(b *testing.B) {
	var texecShare float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Flow("win98_boot")
		if err != nil {
			b.Fatal(err)
		}
		texecShare = 100 * float64(r.Metrics.GuestTexec) / float64(r.Metrics.GuestTotal())
	}
	b.ReportMetric(texecShare, "texec%")
}

// BenchmarkEngineRun measures wall-clock time for one full run of each hot
// workload kernel — the simulator-speed trajectory metric recorded in the
// committed BENCH_*.json files (see cmsbench -json). The pipelined variants
// run the translator on every host core; simulated Metrics stay identical,
// only ns/op moves.
func BenchmarkEngineRun(b *testing.B) {
	for _, name := range bench.PerfWorkloads {
		name := name
		w, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.MustRun(w, engine.DefaultConfig())
			}
		})
		b.Run(name+"-pipelined", func(b *testing.B) {
			cfg := engine.DefaultConfig()
			cfg.PipelineWorkers = runtime.NumCPU()
			for i := 0; i < b.N; i++ {
				bench.MustRun(w, cfg)
			}
		})
	}
}

// BenchmarkEngineThroughput measures raw simulation speed (guest
// instructions per second of host time) — a sanity benchmark for the
// simulator itself rather than a paper figure.
func BenchmarkEngineThroughput(b *testing.B) {
	prog, err := cms.Assemble(`
.org 0x1000
	mov ecx, 100000
loop:
	add eax, ecx
	mov [0x8000], eax
	mov ebx, [0x8000]
	dec ecx
	jne loop
	hlt
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var guestInsns uint64
	for i := 0; i < b.N; i++ {
		sys := cms.NewSystem(prog, cms.SystemConfig{})
		if err := sys.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
		guestInsns = sys.Metrics.GuestTotal()
	}
	b.ReportMetric(float64(guestInsns)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mguest/s")
}
