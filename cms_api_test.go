package cms_test

import (
	"strings"
	"testing"

	"cms"
)

func TestPublicAPIQuickstart(t *testing.T) {
	prog, err := cms.Assemble(`
.org 0x1000
	mov ecx, 200
loop:
	add eax, ecx
	dec ecx
	jne loop
	mov eax, 'k'
	out 0x3f8, eax
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := cms.NewSystem(prog, cms.SystemConfig{})
	if err := sys.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if sys.Console() != "k" {
		t.Errorf("console = %q", sys.Console())
	}
	if sys.Metrics.Translations == 0 {
		t.Error("nothing translated")
	}
	if sys.CPU().Regs[cms.EAX] != 'k' {
		t.Errorf("eax = %#x", sys.CPU().Regs[cms.EAX])
	}
}

func TestPublicAPIBadProgram(t *testing.T) {
	if _, err := cms.Assemble("frob eax\n"); err == nil {
		t.Error("Assemble must reject bad source")
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	ws := cms.Workloads()
	if len(ws) < 20 {
		t.Fatalf("suite has %d workloads", len(ws))
	}
	w, err := cms.WorkloadByName("dos_boot")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cms.RunWorkload(w, cms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sys.Console(), "DOS") {
		t.Errorf("console = %q", sys.Console())
	}
}

func TestPublicAPIConfigKnobs(t *testing.T) {
	cfg := cms.DefaultConfig()
	cfg.BasePolicy.NoReorderMem = true
	cfg.EnableFineGrain = false
	prog, _ := cms.Assemble(".org 0x1000\n mov ecx, 5000\nloop:\n dec ecx\n jne loop\n hlt\n")
	sys := cms.NewSystem(prog, cms.SystemConfig{Engine: &cfg, RAM: 1 << 20})
	if err := sys.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
}
