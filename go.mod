module cms

go 1.22
