package snapshot

import (
	"bytes"
	"testing"

	"cms/internal/cms"
	"cms/internal/workload"
)

// FuzzSnapshotRoundtrip drives Decode with arbitrary bytes. Three
// properties are pinned:
//
//  1. Decode never panics, whatever the input.
//  2. Anything Decode accepts re-encodes canonically: encode → decode →
//     encode is byte-identical.
//  3. Corruption detection: flipping any payload byte of an accepted
//     envelope makes Decode reject it (the SHA-256 trailer).
func FuzzSnapshotRoundtrip(f *testing.F) {
	img := workload.All()[0].Build()
	e := newEngine(img, cms.DefaultConfig())
	if err := e.Run(img.Budget); err != nil {
		f.Fatal(err)
	}
	blob, err := Save(e)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x10
	f.Add(bad)
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte(Magic + "\x00\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		b2, err := s.Encode()
		if err != nil {
			t.Fatalf("accepted snapshot failed to encode: %v", err)
		}
		s2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded envelope rejected: %v", err)
		}
		b3, err := s2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatalf("encoding not canonical: %d vs %d bytes", len(b2), len(b3))
		}
		if len(b2) > headerLen+1 {
			corrupt := append([]byte(nil), b2...)
			corrupt[headerLen] ^= 0xff
			if _, err := Decode(corrupt); err == nil {
				t.Fatal("payload corruption undetected")
			}
		}
	})
}
