package snapshot

import (
	"errors"
	"testing"

	"cms/internal/cms"
	"cms/internal/mem"
	"cms/internal/workload"
)

// TestRestorePreservesPageState checkpoints a boot workload (MMIO, DMA, and
// both SMC idioms live there) mid-run and asserts the restored bus carries
// the exact per-page protection, fine-grain, and generation state of the
// captured one. Generations matter doubly: the decoded-instruction cache
// and the compiled-code caches validate against them, so a restored engine
// whose generations drifted would either execute stale host code or
// rediscover (and re-charge) work the captured run already did.
func TestRestorePreservesPageState(t *testing.T) {
	w, err := workload.ByName("dos_boot")
	if err != nil {
		t.Fatal(err)
	}
	img := w.Build()
	cfg := cms.DefaultConfig()
	runCfg := cfg
	runCfg.CancelQuantum = 128
	var eng *cms.Engine
	runCfg.Cancel = func() bool { return eng.Metrics.GuestTotal() >= 40000 }
	eng = newEngine(img, runCfg)
	if err := eng.Run(img.Budget); !errors.Is(err, cms.ErrCancelled) {
		t.Fatalf("expected cancellation, got %v", err)
	}
	blob, err := Save(eng)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(blob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := eng.Plat.Bus, restored.Plat.Bus
	if a.RAMSize() != b.RAMSize() {
		t.Fatalf("RAM size: %d vs %d", a.RAMSize(), b.RAMSize())
	}
	pages := a.RAMSize() >> mem.PageShift
	protected, fine := 0, 0
	for p := uint32(0); p < pages; p++ {
		if ap, bp := a.IsProtected(p), b.IsProtected(p); ap != bp {
			t.Fatalf("page %#x: protected %v vs %v", p, ap, bp)
		} else if ap {
			protected++
		}
		af, amask := a.IsFineGrain(p)
		bf, bmask := b.IsFineGrain(p)
		if af != bf || amask != bmask {
			t.Fatalf("page %#x: fine-grain (%v,%#x) vs (%v,%#x)", p, af, amask, bf, bmask)
		}
		if af {
			fine++
		}
		if ag, bg := a.Gen(p), b.Gen(p); ag != bg {
			t.Fatalf("page %#x: generation %d vs %d", p, ag, bg)
		}
	}
	if protected == 0 {
		t.Fatal("checkpoint caught no protected pages; target too early to exercise restore")
	}
}
