// Package snapshot serializes a complete VM — architectural state, RAM,
// device registers, execution profile, simulated Metrics, the adaptive
// policy ladders, and the set of installed translations — into a
// self-checking byte envelope, and restores it into a fresh engine that
// retires exactly the same future instruction stream with exactly the same
// Metrics as the run it was captured from.
//
// The one thing a snapshot never contains is a translation artifact.
// Translations are recorded by their frozen requests (the canonical inputs
// xlate.Key hashes); restore re-materializes each one through the shared
// store when the farm has one — a warm store makes rehydration a content
// lookup, a cold store a deterministic retranslation — or straight through
// the translator otherwise. Equal keys produce byte-identical artifacts, so
// the restored cache behaves exactly like the captured one either way. This
// keeps snapshots small, portable across hosts, and honest: the architectural
// contract lives in guest state, never in host code.
//
// Wire format:
//
//	offset 0            8 bytes   magic "CMSSNAP1"
//	offset 8            4 bytes   uint32 LE payload length
//	offset 12           n bytes   JSON payload (Snapshot)
//	offset 12+n        32 bytes   SHA-256 of the payload bytes
//
// The JSON payload also carries a version field; Decode rejects unknown
// versions, truncated envelopes, and any payload whose digest does not
// match. Encoding is canonical for a given Snapshot value (encoding/json
// sorts map keys), so decode-then-encode reproduces the input bytes —
// a property the FuzzSnapshotRoundtrip harness pins down.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"cms/internal/cms"
	"cms/internal/dev"
)

// Magic identifies a snapshot envelope; the trailing digit is the envelope
// (not payload) version and changes only if the framing itself does.
const Magic = "CMSSNAP1"

// Version is the payload format version.
const Version = 1

// headerLen is magic plus the payload length word.
const headerLen = len(Magic) + 4

// Snapshot is one captured VM.
type Snapshot struct {
	Version  int                `json:"version"`
	Platform *dev.PlatformState `json:"platform"`
	Engine   *cms.EngineState   `json:"engine"`
}

// Capture snapshots a quiesced engine (Run has returned — clean halt,
// budget exhaustion, or cancellation at a commit boundary).
func Capture(e *cms.Engine) (*Snapshot, error) {
	es, err := e.ExportState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Version:  Version,
		Platform: e.Plat.ExportState(),
		Engine:   es,
	}, nil
}

// Restore builds a fresh platform and engine from the snapshot. cfg must be
// the configuration the captured engine ran with (a snapshot records state,
// not policy); if it names a shared store, rehydration goes through it.
func Restore(s *Snapshot, cfg cms.Config) (*cms.Engine, error) {
	if s.Version != Version {
		return nil, fmt.Errorf("snapshot: version %d, want %d", s.Version, Version)
	}
	plat, err := dev.RestorePlatform(s.Platform)
	if err != nil {
		return nil, err
	}
	return cms.RestoreEngine(plat, cfg, s.Engine)
}

// Encode serializes the snapshot into a self-checking envelope.
func (s *Snapshot) Encode() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, err
	}
	if len(payload) > 1<<31-1 {
		return nil, fmt.Errorf("snapshot: payload too large (%d bytes)", len(payload))
	}
	out := make([]byte, 0, headerLen+len(payload)+sha256.Size)
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return out, nil
}

// Decode parses and verifies an envelope. It never panics on hostile input:
// bad magic, truncation, trailing garbage, digest mismatch, and malformed
// or version-skewed payloads all return errors.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerLen+sha256.Size {
		return nil, fmt.Errorf("snapshot: envelope truncated (%d bytes)", len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", b[:len(Magic)])
	}
	n := int(binary.LittleEndian.Uint32(b[len(Magic):headerLen]))
	if len(b) != headerLen+n+sha256.Size {
		return nil, fmt.Errorf("snapshot: envelope is %d bytes, header says %d", len(b), headerLen+n+sha256.Size)
	}
	payload := b[headerLen : headerLen+n]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(b[headerLen+n:]) {
		return nil, fmt.Errorf("snapshot: payload digest mismatch (corrupted envelope)")
	}
	s := &Snapshot{}
	if err := json.Unmarshal(payload, s); err != nil {
		return nil, fmt.Errorf("snapshot: payload: %w", err)
	}
	if s.Version != Version {
		return nil, fmt.Errorf("snapshot: version %d, want %d", s.Version, Version)
	}
	if s.Platform == nil || s.Engine == nil {
		return nil, fmt.Errorf("snapshot: payload incomplete")
	}
	return s, nil
}

// Save captures and encodes in one step.
func Save(e *cms.Engine) ([]byte, error) {
	s, err := Capture(e)
	if err != nil {
		return nil, err
	}
	return s.Encode()
}

// Load decodes and restores in one step.
func Load(b []byte, cfg cms.Config) (*cms.Engine, error) {
	s, err := Decode(b)
	if err != nil {
		return nil, err
	}
	return Restore(s, cfg)
}
