package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/workload"
)

// outcome is everything a workload run must reproduce across a checkpoint.
type outcome struct {
	regs    [8]uint32
	eip     uint32
	flags   uint32
	halted  bool
	err     string
	console string
	ram     []byte
	metrics cms.Metrics
}

func capture(e *cms.Engine, err error) outcome {
	cpu := e.CPU()
	o := outcome{
		regs:    cpu.Regs,
		eip:     cpu.EIP,
		flags:   cpu.Flags,
		halted:  cpu.Halted,
		console: e.Plat.Console.OutputString(),
		ram:     e.Plat.Bus.ReadRaw(0, int(e.Plat.Bus.RAMSize())),
		metrics: e.Metrics,
	}
	if err != nil {
		o.err = err.Error()
	}
	return o
}

func newEngine(img *workload.Image, cfg cms.Config) *cms.Engine {
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	return cms.New(plat, img.Entry, cfg)
}

func diff(t *testing.T, name string, want, got outcome) {
	t.Helper()
	if want.regs != got.regs || want.eip != got.eip || want.flags != got.flags ||
		want.halted != got.halted || want.err != got.err {
		t.Fatalf("%s: architectural state diverged:\nwant %+v\ngot  %+v",
			name, want, got)
	}
	if want.console != got.console {
		t.Fatalf("%s: console diverged: want %q got %q", name, want.console, got.console)
	}
	if !bytes.Equal(want.ram, got.ram) {
		for i := range want.ram {
			if want.ram[i] != got.ram[i] {
				t.Fatalf("%s: RAM diverged at %#x: want %#x got %#x", name, i, want.ram[i], got.ram[i])
			}
		}
	}
	if !reflect.DeepEqual(want.metrics, got.metrics) {
		t.Fatalf("%s: metrics diverged:\nwant %+v\ngot  %+v", name, want.metrics, got.metrics)
	}
}

// TestWorkloadCheckpointDeterminism checkpoints every suite workload at
// several mid-run boundaries, restores each snapshot into a fresh engine,
// finishes the run there, and requires the combined outcome — architectural
// state, RAM, console, and simulated Metrics — to be bit-identical to the
// uninterrupted run. This is the snapshot subsystem's core contract across
// every workload idiom in the paper: MMIO, DMA, interrupts, and both SMC
// styles.
func TestWorkloadCheckpointDeterminism(t *testing.T) {
	cfg := cms.DefaultConfig()
	fractions := []uint64{9, 3, 2}    // checkpoint at ~1/9, ~1/3, ~1/2
	quanta := []uint64{251, 1021, 64} // vary boundary granularity
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			img := w.Build()
			base := newEngine(img, cfg)
			want := capture(base, base.Run(img.Budget))
			total := base.Metrics.GuestTotal()
			for i, frac := range fractions {
				target := total / frac
				if target == 0 {
					continue
				}
				runCfg := cfg
				runCfg.CancelQuantum = quanta[i%len(quanta)]
				var eng *cms.Engine
				runCfg.Cancel = func() bool { return eng.Metrics.GuestTotal() >= target }
				eng = newEngine(img, runCfg)
				err := eng.Run(img.Budget)
				if !errors.Is(err, cms.ErrCancelled) {
					t.Fatalf("target %d: expected cancellation, got %v", target, err)
				}
				blob, err := Save(eng)
				if err != nil {
					t.Fatalf("target %d: save: %v", target, err)
				}
				restored, err := Load(blob, cfg)
				if err != nil {
					t.Fatalf("target %d: load: %v", target, err)
				}
				got := capture(restored, restored.Run(img.Budget))
				diff(t, w.Name, want, got)
			}
		})
	}
}

// TestEnvelopeRoundtrip pins canonical encoding: decode-then-encode of an
// encoder-produced envelope reproduces the input bytes exactly.
func TestEnvelopeRoundtrip(t *testing.T) {
	img := workload.All()[0].Build()
	cfg := cms.DefaultConfig()
	e := newEngine(img, cfg)
	if err := e.Run(img.Budget); err != nil {
		t.Fatal(err)
	}
	b1, err := Save(e)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("decode/encode not byte-identical: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestEnvelopeCorruption flips bytes across the whole envelope and requires
// Decode to reject every corruption — magic, length word, payload, digest.
func TestEnvelopeCorruption(t *testing.T) {
	img := workload.All()[0].Build()
	e := newEngine(img, cms.DefaultConfig())
	if err := e.Run(img.Budget); err != nil {
		t.Fatal(err)
	}
	blob, err := Save(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
	step := len(blob)/97 + 1
	for i := 0; i < len(blob); i += step {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x41
		if _, err := Decode(bad); err == nil {
			t.Fatalf("corruption at offset %d undetected", i)
		}
	}
	for _, n := range []int{0, 1, len(Magic), headerLen, len(blob) - 1} {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes undetected", n)
		}
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing garbage undetected")
	}
}

// TestRestoredCacheRehydrates sanity-checks the restored engine actually
// carries translations (not an empty cache that silently retranslates with
// fresh charges — the Metrics comparison would catch it, but this pins the
// mechanism).
func TestRestoredCacheRehydrates(t *testing.T) {
	img := workload.All()[0].Build()
	cfg := cms.DefaultConfig()
	var eng *cms.Engine
	runCfg := cfg
	runCfg.Cancel = func() bool { return eng.Metrics.GuestTotal() >= 20000 }
	runCfg.CancelQuantum = 256
	eng = newEngine(img, runCfg)
	if err := eng.Run(img.Budget); !errors.Is(err, cms.ErrCancelled) {
		t.Skipf("workload halted before checkpoint target: %v", err)
	}
	n, _ := eng.Cache.Size()
	if n == 0 {
		t.Skip("nothing translated before checkpoint")
	}
	blob, err := Save(eng)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(blob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rn, _ := restored.Cache.Size(); rn != n {
		t.Fatalf("restored cache has %d entries, captured had %d", rn, n)
	}
	if restored.Metrics != eng.Metrics {
		t.Fatal("restore perturbed Metrics before resuming")
	}
}
