package incident_test

import (
	"os"
	"path/filepath"
	"testing"

	"cms/internal/cms"
	"cms/internal/farm"
	"cms/internal/incident"
)

const chaosSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

// captureBundle runs one chaos job through a single-VM farm and returns its
// first incident bundle — the same production path cmsserve exercises.
func captureBundle(t *testing.T) (string, *incident.Bundle) {
	t.Helper()
	dir := t.TempDir()
	f := farm.New(farm.Config{
		MaxVMs:        1,
		Engine:        cms.DefaultConfig(),
		IncidentDir:   dir,
		DisableRetry:  true,
		BreakerWindow: -1,
	})
	v, err := f.Submit(farm.JobSpec{Source: chaosSource, InjectSeed: 11, ChaosPanics: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	got, _ := f.Job(v.ID)
	if got.Status != farm.StatusFailed || len(got.Incidents) != 1 {
		t.Fatalf("chaos job = %s with incidents %v, want one failed attempt", got.Status, got.Incidents)
	}
	b, err := incident.Load(got.Incidents[0])
	if err != nil {
		t.Fatal(err)
	}
	return got.Incidents[0], b
}

// TestBundleRoundTripAndReplay is the flight recorder's contract: a bundle
// captured under serving load carries everything needed to re-run the
// failure solo, and Replay verifies the reproduction bit-exactly — same
// panic at the same boundary, same architectural state hash.
func TestBundleRoundTripAndReplay(t *testing.T) {
	path, b := captureBundle(t)
	if !incident.IsBundle(path) {
		t.Error("IsBundle rejected a JSON bundle")
	}
	if b.Kind != incident.KindPanic || b.Stack == "" || b.ArchSHA == "" || b.ImageSHA == "" {
		t.Fatalf("bundle incomplete: kind %s stack %d arch %q image %q", b.Kind, len(b.Stack), b.ArchSHA, b.ImageSHA)
	}
	if err := incident.Replay(b); err != nil {
		t.Fatalf("replay: %v", err)
	}
}

// TestReplayDetectsTampering flips each verified field of a valid bundle and
// requires Replay to refuse: a bundle that cannot fail verification would be
// worthless as a reproduction certificate.
func TestReplayDetectsTampering(t *testing.T) {
	path, _ := captureBundle(t)
	tamper := func(mut func(*incident.Bundle)) error {
		b, err := incident.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		mut(b)
		return incident.Replay(b)
	}
	if err := tamper(func(b *incident.Bundle) { b.ArchSHA = "0000" }); err == nil {
		t.Error("tampered ArchSHA replayed")
	}
	if err := tamper(func(b *incident.Bundle) { b.Error = "panic: something else" }); err == nil {
		t.Error("tampered panic message replayed")
	}
	if err := tamper(func(b *incident.Bundle) { b.InjectSeed++ }); err == nil {
		t.Error("wrong inject seed replayed")
	}
}

// TestIsBundleDistinguishesText pins the dual -replay format contract: the
// fuzzer's text reproducers must never be mistaken for incident bundles.
func TestIsBundleDistinguishesText(t *testing.T) {
	p := filepath.Join(t.TempDir(), "seed-1.txt")
	if err := os.WriteFile(p, []byte("seed 0x1\nbody 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if incident.IsBundle(p) {
		t.Error("text reproducer classified as a bundle")
	}
	if incident.IsBundle(filepath.Join(t.TempDir(), "missing.json")) {
		t.Error("missing file classified as a bundle")
	}
}

// TestEngineConfigRoundTrip checks the captured engine-config subset
// survives JSON-shape conversion unchanged — the replay must run the exact
// configuration the failing attempt did.
func TestEngineConfigRoundTrip(t *testing.T) {
	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = 3
	cfg.RollbackStormThreshold = 9
	cfg.NoTranslate = false
	cfg.CancelQuantum = 1024
	got := incident.FromCMS(incident.FromCMS(cfg).ToCMS())
	if got != incident.FromCMS(cfg) {
		t.Errorf("round trip changed the config: %+v vs %+v", got, incident.FromCMS(cfg))
	}
}
