// Package incident is the farm's flight recorder: every failed job —
// watchdog timeout, host panic, or engine error — is written out as a small
// JSON bundle carrying everything needed to re-run that exact engine
// execution solo and bit-exactly: the job's program (workload name or raw
// source), its budget, the fault-injection schedule seed, the full engine
// configuration of the failing attempt, and a SHA-256 of the architectural
// state at the point of failure. `cmsfuzz -replay <bundle>` rebuilds the run
// and verifies both the failure mode and the state hash, so a crash observed
// once under 200-way concurrent chaos load is debuggable at a desk with a
// single deterministic process.
//
// Replayability leans on the repo's determinism contract: simulated Metrics
// and architectural state are independent of the shared store, worker count,
// and wall clock, so a solo replay without a store reproduces a farm
// failure. The one wall-clock-shaped event — a watchdog timeout — is made
// deterministic by recording the retired-instruction count at the
// cancellation boundary and replaying with that count as the budget: the
// engine's cancel polls fire only at boundaries the budget check also
// visits, so both runs stop at the same committed boundary with identical
// architectural state.
//
// Bundles from attempts that resumed a checkpoint additionally embed the
// snapshot envelope (internal/snapshot): replay then restores the machine
// from the checkpoint and runs only the failing tail, so an incident hours
// into a long-running VM reproduces in the time since its last checkpoint.
package incident

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/fuzzer"
	"cms/internal/guest"
	"cms/internal/snapshot"
	"cms/internal/workload"
)

// Failure kinds. A bundle's Kind selects what Replay asserts: panics must
// reproduce the identical panic message, errors the identical error string,
// and timeouts the identical committed boundary; all three must reproduce
// the architectural state hash.
const (
	KindPanic   = "panic"
	KindTimeout = "timeout"
	KindError   = "error"
)

// EngineConfig is the JSON-serializable subset of cms.Config a farm engine
// runs with. BasePolicy and Host are not captured: farm engines always run
// the zero (default) values for both, and the serving API exposes no way to
// set them. Zero numeric fields re-normalize to the same defaults at replay
// that they did in the farm.
type EngineConfig struct {
	HotThreshold           uint64 `json:"hot_threshold,omitempty"`
	FaultThreshold         uint32 `json:"fault_threshold,omitempty"`
	LookupCost             uint64 `json:"lookup_cost,omitempty"`
	TranslateCostPerInsn   uint64 `json:"translate_cost_per_insn,omitempty"`
	EnableFineGrain        bool   `json:"enable_fine_grain,omitempty"`
	EnableSelfReval        bool   `json:"enable_self_reval,omitempty"`
	EnableStylized         bool   `json:"enable_stylized,omitempty"`
	EnableGroups           bool   `json:"enable_groups,omitempty"`
	EnableCompiledBackend  bool   `json:"enable_compiled_backend,omitempty"`
	Backend                string `json:"backend,omitempty"`
	EnableChaining         bool   `json:"enable_chaining,omitempty"`
	NoTranslate            bool   `json:"no_translate,omitempty"`
	TCacheCapAtoms         int    `json:"tcache_cap_atoms,omitempty"`
	PipelineWorkers        int    `json:"pipeline_workers,omitempty"`
	PipelineDepth          int    `json:"pipeline_depth,omitempty"`
	PipelineLatency        uint64 `json:"pipeline_latency,omitempty"`
	IndTCHitCost           uint64 `json:"ind_tc_hit_cost,omitempty"`
	CancelQuantum          uint64 `json:"cancel_quantum,omitempty"`
	RollbackStormThreshold uint32 `json:"rollback_storm_threshold,omitempty"`
}

// FromCMS captures the replay-relevant fields of an engine configuration.
func FromCMS(c cms.Config) EngineConfig {
	return EngineConfig{
		HotThreshold:           c.HotThreshold,
		FaultThreshold:         c.FaultThreshold,
		LookupCost:             c.LookupCost,
		TranslateCostPerInsn:   c.TranslateCostPerInsn,
		EnableFineGrain:        c.EnableFineGrain,
		EnableSelfReval:        c.EnableSelfReval,
		EnableStylized:         c.EnableStylized,
		EnableGroups:           c.EnableGroups,
		EnableCompiledBackend:  c.EnableCompiledBackend,
		Backend:                c.Backend,
		EnableChaining:         c.EnableChaining,
		NoTranslate:            c.NoTranslate,
		TCacheCapAtoms:         c.TCacheCapAtoms,
		PipelineWorkers:        c.PipelineWorkers,
		PipelineDepth:          c.PipelineDepth,
		PipelineLatency:        c.PipelineLatency,
		IndTCHitCost:           c.IndTCHitCost,
		CancelQuantum:          c.CancelQuantum,
		RollbackStormThreshold: c.RollbackStormThreshold,
	}
}

// ToCMS rebuilds a cms.Config for solo replay. The farm-only hooks (shared
// store, cancel, poison TTL) stay nil/zero: the store and wall clock are
// outside the determinism contract, so replay does not need them.
func (ec EngineConfig) ToCMS() cms.Config {
	return cms.Config{
		HotThreshold:           ec.HotThreshold,
		FaultThreshold:         ec.FaultThreshold,
		LookupCost:             ec.LookupCost,
		TranslateCostPerInsn:   ec.TranslateCostPerInsn,
		EnableFineGrain:        ec.EnableFineGrain,
		EnableSelfReval:        ec.EnableSelfReval,
		EnableStylized:         ec.EnableStylized,
		EnableGroups:           ec.EnableGroups,
		EnableCompiledBackend:  ec.EnableCompiledBackend,
		Backend:                ec.Backend,
		EnableChaining:         ec.EnableChaining,
		NoTranslate:            ec.NoTranslate,
		TCacheCapAtoms:         ec.TCacheCapAtoms,
		PipelineWorkers:        ec.PipelineWorkers,
		PipelineDepth:          ec.PipelineDepth,
		PipelineLatency:        ec.PipelineLatency,
		IndTCHitCost:           ec.IndTCHitCost,
		CancelQuantum:          ec.CancelQuantum,
		RollbackStormThreshold: ec.RollbackStormThreshold,
	}
}

// Bundle is one captured failure. Bundles are plain JSON files whose first
// byte is '{' — that is how cmsfuzz tells them apart from the fuzzer's text
// reproducers on the same -replay flag.
type Bundle struct {
	Version int    `json:"version"`
	Job     string `json:"job"`            // farm job id ("" for solo runs)
	Time    string `json:"time,omitempty"` // RFC3339 capture time, informational
	Attempt int    `json:"attempt"`        // 0 = first try, 1 = rung-demoted retry
	Rung    string `json:"rung"`           // "full" | "nocompile" | "interp"

	Kind  string `json:"kind"` // KindPanic | KindTimeout | KindError
	Error string `json:"error"`
	// Stack is the host goroutine stack at a panic — for humans; Replay
	// compares the panic message, not the stack.
	Stack string `json:"stack,omitempty"`

	// The job's program: exactly one of Workload/Source, as in farm.JobSpec.
	Workload string `json:"workload,omitempty"`
	Source   string `json:"source,omitempty"`
	// Budget is the resolved guest-instruction budget the attempt ran with.
	Budget uint64 `json:"budget"`
	// DeadlineMs is the wall-clock deadline that was armed, informational.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`

	// Fault-injection schedule, when the job armed one (chaos jobs).
	InjectSeed  uint64 `json:"inject_seed,omitempty"`
	ChaosPanics bool   `json:"chaos_panics,omitempty"` // schedule was NewChaosSchedule

	// Retired is GuestTotal at the failure boundary. For timeouts it is the
	// replay budget (see the package comment); for panics and errors it is
	// informational.
	Retired uint64 `json:"retired,omitempty"`

	// ArchSHA hashes the architectural state at the failure point (StateHash);
	// ImageSHA hashes the built guest image, so a drifted workload builder or
	// assembler fails the replay loudly instead of silently diverging.
	// ImageSHA is empty when the attempt resumed a Snapshot (no image was
	// built — the envelope carries, and self-checks, the whole machine).
	ArchSHA  string `json:"arch_sha"`
	ImageSHA string `json:"image_sha,omitempty"`

	// Snapshot, when present, is the checkpoint envelope the failing attempt
	// resumed from (base64 in the JSON). Replay then restores the machine
	// from it instead of rebuilding the image and replaying from boot, so a
	// failure deep into a long run reproduces from the last checkpoint —
	// the deterministic record-replay path. Budget and Retired stay valid
	// either way: both count cumulative retirement from the original boot.
	Snapshot []byte `json:"snapshot,omitempty"`

	Engine EngineConfig `json:"engine"`
}

// StateHash digests everything the guest can observe — registers, EIP,
// flags, halt state, console output, and the full RAM image — into a hex
// SHA-256. The farm hashes the engine at the failure boundary; Replay hashes
// the rebuilt run and compares.
func StateHash(e *cms.Engine, plat *dev.Platform) string {
	cpu := e.CPU()
	h := sha256.New()
	var w [4]byte
	for _, r := range cpu.Regs {
		binary.LittleEndian.PutUint32(w[:], r)
		h.Write(w[:])
	}
	binary.LittleEndian.PutUint32(w[:], cpu.EIP)
	h.Write(w[:])
	binary.LittleEndian.PutUint32(w[:], cpu.Flags)
	h.Write(w[:])
	if cpu.Halted {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte(plat.Console.OutputString()))
	h.Write(plat.Bus.ReadRaw(0, int(plat.Bus.RAMSize())))
	return hex.EncodeToString(h.Sum(nil))
}

// ImageHash digests a built guest image and its placement. The farm records
// it at capture time; Replay recomputes it from the rebuilt image so builder
// or assembler drift fails loudly.
func ImageHash(org, entry, ram uint32, data, disk []byte) string {
	h := sha256.New()
	var w [4]byte
	for _, v := range [...]uint32{org, entry, ram} {
		binary.LittleEndian.PutUint32(w[:], v)
		h.Write(w[:])
	}
	h.Write(data)
	h.Write(disk)
	return hex.EncodeToString(h.Sum(nil))
}

// Write serializes the bundle to path (indented JSON, first byte '{').
func (b *Bundle) Write(path string) error {
	if b.Version == 0 {
		b.Version = 1
	}
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// Load reads a bundle from path.
func Load(path string) (*Bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("incident: %s: %w", path, err)
	}
	if b.Kind == "" {
		return nil, fmt.Errorf("incident: %s: missing kind", path)
	}
	return &b, nil
}

// IsBundle reports whether the file at path looks like an incident bundle
// (JSON object) rather than a text fuzzer reproducer.
func IsBundle(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var first [1]byte
	if _, err := f.Read(first[:]); err != nil {
		return false
	}
	return first[0] == '{'
}

// build reconstructs the guest image for the bundle's program, mirroring the
// farm's job setup exactly (same RAM size, stack top, and entry).
func (b *Bundle) build() (org, entry, ram, stackTop uint32, data, disk []byte, err error) {
	switch {
	case b.Workload != "":
		w, werr := workload.ByName(b.Workload)
		if werr != nil {
			return 0, 0, 0, 0, nil, nil, werr
		}
		img := w.Build()
		return img.Org, img.Entry, img.RAM, 0, img.Data, img.Disk, nil
	case b.Source != "":
		prog, perr := asm.Assemble(b.Source)
		if perr != nil {
			return 0, 0, 0, 0, nil, nil, perr
		}
		ram = 1 << 21
		return prog.Org, prog.Entry(), ram, ram / 2, prog.Image, nil, nil
	default:
		return 0, 0, 0, 0, nil, nil, errors.New("incident: bundle has neither workload nor source")
	}
}

// Replay re-runs the failing attempt solo and verifies it reproduces the
// recorded failure bit-exactly: same failure kind, same panic/error message
// (panics and errors), and same architectural state hash. It returns nil
// when the incident reproduced and a descriptive error otherwise.
func Replay(b *Bundle) error {
	cfg := b.Engine.ToCMS()
	var sched *fuzzer.Schedule
	if b.InjectSeed != 0 {
		if b.ChaosPanics {
			sched = fuzzer.NewChaosSchedule(b.InjectSeed)
		} else {
			sched = fuzzer.NewSchedule(b.InjectSeed)
		}
		cfg.Injector = sched
	}

	var (
		e    *cms.Engine
		plat *dev.Platform
	)
	if len(b.Snapshot) > 0 {
		// Record-replay: resume from the last checkpoint instead of booting.
		// The envelope is self-checking, and cumulative budgets mean the
		// failure boundary lands at the same absolute retirement count.
		re, err := snapshot.Load(b.Snapshot, cfg)
		if err != nil {
			return fmt.Errorf("incident: restoring checkpoint: %w", err)
		}
		e, plat = re, re.Plat
		if sched != nil {
			// snapshot.Load fast-forwarded the schedule; the bus hook must
			// point at it too.
			plat.Bus.ForceProtHit = sched.ForceProtHit
		}
	} else {
		org, entry, ram, stackTop, data, disk, err := b.build()
		if err != nil {
			return fmt.Errorf("incident: rebuild image: %w", err)
		}
		if b.ImageSHA != "" {
			if got := ImageHash(org, entry, ram, data, disk); got != b.ImageSHA {
				return fmt.Errorf("incident: rebuilt image hash %s != recorded %s (builder drifted?)", short(got), short(b.ImageSHA))
			}
		}
		plat = dev.NewPlatform(ram, disk)
		plat.Bus.WriteRaw(org, data)
		if sched != nil {
			plat.Bus.ForceProtHit = sched.ForceProtHit
		}
		e = cms.New(plat, entry, cfg)
		if stackTop != 0 {
			e.CPU().Regs[guest.ESP] = stackTop
		}
	}

	budget := b.Budget
	if b.Kind == KindTimeout {
		// Replay the wall-clock cancellation as a deterministic budget stop
		// at the same committed boundary (see the package comment).
		budget = b.Retired
	}

	var runErr error
	panicked := false
	panicMsg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				panicMsg = fmt.Sprintf("panic: %v", r)
			}
		}()
		runErr = e.Run(budget)
	}()
	gotSHA := StateHash(e, plat)

	switch b.Kind {
	case KindPanic:
		if !panicked {
			return fmt.Errorf("incident: expected %q, run finished with err=%v", b.Error, runErr)
		}
		if panicMsg != b.Error {
			return fmt.Errorf("incident: panic message mismatch:\n  recorded %q\n  replayed %q", b.Error, panicMsg)
		}
	case KindTimeout:
		if panicked {
			return fmt.Errorf("incident: expected budget stop at %d insns, got %s", b.Retired, panicMsg)
		}
		if runErr != nil && !errors.Is(runErr, cms.ErrBudget) {
			return fmt.Errorf("incident: expected budget stop at %d insns, got error %v", b.Retired, runErr)
		}
	case KindError:
		if panicked {
			return fmt.Errorf("incident: expected error %q, got %s", b.Error, panicMsg)
		}
		if runErr == nil || runErr.Error() != b.Error {
			return fmt.Errorf("incident: error mismatch:\n  recorded %q\n  replayed %v", b.Error, runErr)
		}
	default:
		return fmt.Errorf("incident: unknown kind %q", b.Kind)
	}

	if b.ArchSHA != "" && gotSHA != b.ArchSHA {
		return fmt.Errorf("incident: architectural state hash mismatch: recorded %s, replayed %s", short(b.ArchSHA), short(gotSHA))
	}
	return nil
}

// short truncates a hash for error messages without assuming it is
// well-formed (bundles are user-editable JSON).
func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// Timestamp formats t for Bundle.Time.
func Timestamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }
