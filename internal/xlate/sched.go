package xlate

import (
	"errors"
	"fmt"
	"sort"

	"cms/internal/ir"
	"cms/internal/vliw"
)

// errRegPressure reports that a region needs more temporaries than the host
// register file offers; the translator retries with a smaller region.
var errRegPressure = errors.New("xlate: out of host registers")

// satom is a schedulable atom: the host atom plus its dependence metadata.
type satom struct {
	a   vliw.Atom
	idx int // program order

	isLoad, isStore, isExit, isBarrier, isDiv bool
	smcCheck                                  bool
	noReorder                                 bool

	// Memory disjointness info (pre-register-allocation view) for the
	// NoAliasHW mode: base vreg + its def version, displacement, size.
	memKnown bool
	baseV    ir.VReg
	baseVer  int
	disp     uint32
	size     uint8

	preds []dep
	succs []int

	// exitIdx is the region exit for exit-ish atoms, else -1.
	exitIdx int32
	// fixups are the stub repair copies of a side exit (dst = pinned guest
	// host register, src = renamed temp's host register).
	fixups []vliw.Atom
}

type dep struct {
	from  int
	delta int // minimum molecule distance (0 = same molecule permitted)
}

// regalloc maps virtual registers to host registers. Guest state vregs are
// pinned; temporaries are linear-scan allocated. reserve registers are kept
// out of the pool (for the self-check accumulator etc.).
func regalloc(region *ir.Region, reserve int) ([]vliw.HReg, error) {
	code := region.Code
	// Vregs are dense small integers; the assignment table and the interval
	// maps below are slices, not maps, for the emitter's per-operand lookups.
	maxV := ir.VFlags
	var scratch []ir.VReg
	for i := range code {
		scratch = code[i].Defs(scratch[:0])
		for _, d := range scratch {
			if d > maxV {
				maxV = d
			}
		}
		scratch = code[i].Uses(scratch[:0])
		for _, u := range scratch {
			if u > maxV {
				maxV = u
			}
		}
	}
	assign := make([]vliw.HReg, maxV+1)
	for v := ir.VReg(0); v <= ir.VFlags; v++ {
		assign[v] = vliw.HReg(v)
	}
	// Temp live intervals (temps are single-def by construction).
	type interval struct {
		v          ir.VReg
		start, end int
	}
	starts := make([]int, maxV+1)
	ends := make([]int, maxV+1)
	for v := range starts {
		starts[v] = -1
	}
	for i := range code {
		scratch = code[i].Defs(scratch[:0])
		for _, d := range scratch {
			if d >= ir.VTemp0 {
				if starts[d] < 0 {
					starts[d] = i
				}
				ends[d] = i
			}
		}
		scratch = code[i].Uses(scratch[:0])
		for _, u := range scratch {
			if u >= ir.VTemp0 {
				ends[u] = i
			}
		}
		// Side-exit fixups read their sources at the exit.
		if code[i].Op == ir.OpExitIf {
			for _, fx := range region.Exits[code[i].Exit].Fixups {
				if fx.Src >= ir.VTemp0 && int(fx.Src) < len(ends) {
					ends[fx.Src] = i
				}
			}
		}
	}
	intervals := make([]interval, 0, max(0, int(maxV)+1-int(ir.VTemp0)))
	for v := ir.VTemp0; v <= maxV; v++ {
		if starts[v] >= 0 {
			intervals = append(intervals, interval{v, starts[v], ends[v]})
		}
	}
	sort.SliceStable(intervals, func(i, j int) bool { return intervals[i].start < intervals[j].start })

	var pool []vliw.HReg
	for r := vliw.RTempBase; r <= vliw.RTempLast-vliw.HReg(reserve); r++ {
		pool = append(pool, r)
	}
	type active struct {
		end int
		r   vliw.HReg
	}
	var act []active
	for _, iv := range intervals {
		// Expire finished intervals; freed registers go to the tail of the
		// pool so reuse picks the least-recently-freed register. Register
		// reuse creates false WAR/WAW dependences that shackle the VLIW
		// scheduler, so maximizing reuse distance matters more than packing.
		keep := act[:0]
		for _, a := range act {
			if a.end >= iv.start {
				keep = append(keep, a)
			} else {
				pool = append(pool, a.r)
			}
		}
		act = keep
		if len(pool) == 0 {
			return nil, errRegPressure
		}
		r := pool[0]
		pool = pool[1:]
		assign[iv.v] = r
		act = append(act, active{iv.end, r})
	}
	return assign, nil
}

// emitter builds and schedules the atoms of one region.
type emitter struct {
	region *ir.Region
	pol    Policy
	host   vliw.HostConfig
	assign []vliw.HReg

	atoms []satom

	defVer map[ir.VReg]int // IR-level def versions for disjointness

	aliasNext  int      // next free alias entry
	aliasPairs [][]int8 // store atom idx -> entries to check
	smcEntries []int8   // entries owned by self-check loads
	failExit   int32    // self-check fail exit index, or -1
}

func hregOrZero(assign []vliw.HReg, v ir.VReg) vliw.HReg {
	if v == ir.NoVReg {
		return vliw.RZero
	}
	return assign[v]
}

func (em *emitter) push(sa satom) *satom {
	sa.idx = len(em.atoms)
	sa.exitIdx = -1
	em.atoms = append(em.atoms, sa)
	return &em.atoms[len(em.atoms)-1]
}

// codegen lowers IR to satoms (1:1 or close), in program order.
func (em *emitter) codegen() error {
	em.defVer = make(map[ir.VReg]int)
	hr := func(v ir.VReg) vliw.HReg { return hregOrZero(em.assign, v) }
	// hrF maps a flag-image vreg; NoVReg means the architectural RFlags.
	hrF := func(v ir.VReg) vliw.HReg {
		if v == ir.NoVReg {
			return vliw.RFlags
		}
		return em.assign[v]
	}

	for ii := range em.region.Code {
		i := &em.region.Code[ii]
		gidx := int16(i.GIdx)
		base := vliw.Atom{GIdx: gidx, ProtIdx: vliw.NoAliasIdx}

		switch i.Op {
		case ir.OpNop:
		case ir.OpBoundary:
			if i.Serialize {
				a := base
				a.Op, a.Imm = vliw.ACommit, i.Imm
				em.push(satom{a: a, isBarrier: true})
			}
		case ir.OpConst:
			a := base
			a.Op, a.Rd, a.Imm = vliw.AMovI, hr(i.Dst), i.Imm
			em.push(satom{a: a})
		case ir.OpMov:
			a := base
			a.Op, a.Rd, a.Ra = vliw.AMov, hr(i.Dst), hr(i.A)
			em.push(satom{a: a})

		case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar,
			ir.OpAddCC, ir.OpSubCC, ir.OpAndCC, ir.OpOrCC, ir.OpXorCC,
			ir.OpShlCC, ir.OpShrCC, ir.OpSarCC:
			a := base
			a.Op = aluAtomOp(i.Op, i.B == ir.NoVReg)
			a.Rd, a.Ra = hr(i.Dst), hr(i.A)
			if i.Op.SetsFlags() {
				a.Fs, a.Fd = hrF(i.FIn), hrF(i.FOut)
			}
			if i.B == ir.NoVReg {
				a.Imm = i.Imm
			} else {
				a.Rb = hr(i.B)
			}
			em.push(satom{a: a})

		case ir.OpAdcCC, ir.OpSbbCC:
			a := base
			if i.Op == ir.OpAdcCC {
				a.Op = vliw.AAdcCC
				if i.B == ir.NoVReg {
					a.Op = vliw.AAdcICC
				}
			} else {
				a.Op = vliw.ASbbCC
				if i.B == ir.NoVReg {
					a.Op = vliw.ASbbICC
				}
			}
			a.Rd, a.Ra = hr(i.Dst), hr(i.A)
			a.Fs, a.Fd = hrF(i.FIn), hrF(i.FOut)
			if i.B == ir.NoVReg {
				a.Imm = i.Imm
			} else {
				a.Rb = hr(i.B)
			}
			em.push(satom{a: a})

		case ir.OpIncCC, ir.OpDecCC, ir.OpNegCC:
			a := base
			switch i.Op {
			case ir.OpIncCC:
				a.Op = vliw.AIncCC
			case ir.OpDecCC:
				a.Op = vliw.ADecCC
			default:
				a.Op = vliw.ANegCC
			}
			a.Rd, a.Ra = hr(i.Dst), hr(i.A)
			a.Fs, a.Fd = hrF(i.FIn), hrF(i.FOut)
			em.push(satom{a: a})

		case ir.OpImulCC:
			a := base
			a.Op, a.Rd, a.Ra = vliw.AImulCC, hr(i.Dst), hr(i.A)
			a.Fs, a.Fd = hrF(i.FIn), hrF(i.FOut)
			if i.B == ir.NoVReg {
				// Immediate multiply: materialize through a reserved scratch.
				c := base
				c.Op, c.Rd, c.Imm = vliw.AMovI, vliw.RScratch0, i.Imm
				em.push(satom{a: c})
				a.Rb = vliw.RScratch0
			} else {
				a.Rb = hr(i.B)
			}
			em.push(satom{a: a})
		case ir.OpMul64:
			a := base
			a.Op, a.Rd, a.Rd2, a.Ra, a.Rb = vliw.AMul64, hr(i.Dst), hr(i.Dst2), hr(i.A), hr(i.B)
			a.Fs, a.Fd = hrF(i.FIn), hrF(i.FOut)
			em.push(satom{a: a})
		case ir.OpDivU, ir.OpDivS:
			a := base
			a.Op = vliw.ADivU
			if i.Op == ir.OpDivS {
				a.Op = vliw.ADivS
			}
			a.Rd, a.Rd2, a.Ra, a.Rb, a.Rc = hr(i.Dst), hr(i.Dst2), hr(i.A), hr(i.B), hr(i.C)
			em.push(satom{a: a, isDiv: true})

		case ir.OpLd8, ir.OpLd32:
			a := base
			a.Op, a.Rd, a.Ra, a.Imm = vliw.ALd, hr(i.Dst), hr(i.A), i.Imm
			a.Size = 4
			if i.Op == ir.OpLd8 {
				a.Size = 1
			}
			sa := satom{a: a, isLoad: true, smcCheck: i.SMCCheck,
				noReorder: i.NoReorder || i.Serialize,
				memKnown:  true, baseV: i.A, baseVer: em.defVer[i.A], disp: i.Imm, size: a.Size}
			if i.Serialize {
				sa.isBarrier = true
			}
			em.push(sa)
		case ir.OpSt8, ir.OpSt32:
			a := base
			a.Op, a.Ra, a.Rb, a.Imm = vliw.ASt, hr(i.A), hr(i.B), i.Imm
			a.Size = 4
			if i.Op == ir.OpSt8 {
				a.Size = 1
			}
			sa := satom{a: a, isStore: true,
				noReorder: i.NoReorder || i.Serialize,
				memKnown:  true, baseV: i.A, baseVer: em.defVer[i.A], disp: i.Imm, size: a.Size}
			if i.Serialize {
				sa.isBarrier = true
			}
			em.push(sa)

		case ir.OpIn:
			a := base
			a.Op, a.Rd, a.Imm = vliw.AIn, hr(i.Dst), i.Imm
			em.push(satom{a: a, isBarrier: true})
		case ir.OpOut:
			a := base
			a.Op, a.Rb, a.Imm = vliw.AOut, hr(i.B), i.Imm
			em.push(satom{a: a, isStore: true})

		case ir.OpExitIf:
			a := base
			a.Op, a.Cond = vliw.ABrCC, i.Cond
			a.Fs = hrF(i.FIn)
			sa := em.push(satom{a: a, isExit: true})
			sa.exitIdx = i.Exit
			for _, fx := range em.region.Exits[i.Exit].Fixups {
				sa.fixups = append(sa.fixups, vliw.Atom{
					Op: vliw.AMov, Rd: hr(fx.Guest), Ra: hr(fx.Src),
					GIdx: gidx, ProtIdx: vliw.NoAliasIdx,
				})
			}
		case ir.OpExit:
			a := base
			a.Op, a.Imm, a.Commit = vliw.AExit, uint32(i.Exit), true
			sa := em.push(satom{a: a, isExit: true})
			sa.exitIdx = i.Exit
		case ir.OpExitInd:
			a := base
			a.Op, a.Ra, a.Imm, a.Commit = vliw.AExitInd, hr(i.A), uint32(i.Exit), true
			sa := em.push(satom{a: a, isExit: true})
			sa.exitIdx = i.Exit

		default:
			return fmt.Errorf("xlate: codegen cannot handle %v", i.Op)
		}

		var defs []ir.VReg
		for _, d := range i.Defs(defs) {
			em.defVer[d]++
		}
	}
	return nil
}

// aluAtomOp maps an IR ALU op (plain or CC) to the matching atom op.
func aluAtomOp(op ir.Op, imm bool) vliw.AtomOp {
	type pair struct{ r, i vliw.AtomOp }
	m := map[ir.Op]pair{
		ir.OpAdd: {vliw.AAdd, vliw.AAddI}, ir.OpSub: {vliw.ASub, vliw.ASubI},
		ir.OpAnd: {vliw.AAnd, vliw.AAndI}, ir.OpOr: {vliw.AOr, vliw.AOrI},
		ir.OpXor: {vliw.AXor, vliw.AXorI}, ir.OpShl: {vliw.AShl, vliw.AShlI},
		ir.OpShr: {vliw.AShr, vliw.AShrI}, ir.OpSar: {vliw.ASar, vliw.ASarI},
		ir.OpAddCC: {vliw.AAddCC, vliw.AAddICC}, ir.OpSubCC: {vliw.ASubCC, vliw.ASubICC},
		ir.OpAndCC: {vliw.AAndCC, vliw.AAndICC}, ir.OpOrCC: {vliw.AOrCC, vliw.AOrICC},
		ir.OpXorCC: {vliw.AXorCC, vliw.AXorICC}, ir.OpShlCC: {vliw.AShlCC, vliw.AShlICC},
		ir.OpShrCC: {vliw.AShrCC, vliw.AShrICC}, ir.OpSarCC: {vliw.ASarCC, vliw.ASarICC},
	}
	p := m[op]
	if imm {
		return p.i
	}
	return p.r
}

// disjoint reports whether two memory references provably never overlap —
// the only reordering license a machine without alias hardware has (§3.5).
func disjoint(a, b *satom) bool {
	if !a.memKnown || !b.memKnown {
		return false
	}
	sameBase := a.baseV == b.baseV && a.baseVer == b.baseVer
	if a.baseV == ir.NoVReg && b.baseV == ir.NoVReg {
		sameBase = true
	}
	if !sameBase {
		return false
	}
	aLo, aHi := a.disp, a.disp+uint32(a.size)
	bLo, bHi := b.disp, b.disp+uint32(b.size)
	return aHi <= bLo || bHi <= aLo
}

// addDep records a dependence edge from -> to (indices), delta molecules.
func (em *emitter) addDep(to, from, delta int) {
	if from < 0 || from == to {
		return
	}
	em.atoms[to].preds = append(em.atoms[to].preds, dep{from: from, delta: delta})
}

// buildDeps constructs the dependence graph under the active policy. This
// is where speculation lives: omitted edges are the freedoms §3.2-§3.5
// grant, and the alias bookkeeping records the runtime checks they require.
func (em *emitter) buildDeps() {
	// Dense per-register tracking: host registers are a small fixed range,
	// so slices beat maps for the scheduler's inner loops.
	em.aliasPairs = make([][]int8, len(em.atoms))
	var lastDef [vliw.NumHRegs]int
	var lastUses [vliw.NumHRegs][]int
	for r := range lastDef {
		lastDef[r] = -1
	}

	lastBarrier := -1
	lastStore := -1
	lastExit := -1
	var loadsSinceExit []int
	var divsSinceExit []int
	var storesSince []int    // stores since last barrier
	var uncheckedLoads []int // loads without alias entries that stores must not pass? (kept ordered)

	exitReads := []vliw.HReg{0, 1, 2, 3, 4, 5, 6, 7, vliw.RFlags}

	for j := range em.atoms {
		sa := &em.atoms[j]
		srcs := atomSourceRegs(sa.a)
		dsts := atomDestRegs(sa.a)
		if sa.isExit || sa.isBarrier {
			srcs = append(srcs, exitReads...)
			for _, fx := range sa.fixups {
				srcs = append(srcs, fx.Ra)
			}
		}

		// Register dependences.
		for _, s := range srcs {
			if d := lastDef[s]; d >= 0 {
				em.addDep(j, d, em.host.Latency(em.atoms[d].a.Op))
			}
		}
		for _, d := range dsts {
			if p := lastDef[d]; p >= 0 {
				em.addDep(j, p, 1) // WAW
			}
			for _, u := range lastUses[d] {
				delta := 0
				if em.atoms[u].isExit || em.atoms[u].isBarrier {
					delta = 1 // writes must stay strictly after commits
				}
				em.addDep(j, u, delta) // WAR
			}
		}

		// Barriers order everything.
		em.addDep(j, lastBarrier, 1)
		if sa.isBarrier {
			for k := 0; k < j; k++ {
				em.addDep(j, k, 1)
			}
			lastBarrier = j
			lastStore = -1
			storesSince = storesSince[:0]
			loadsSinceExit = loadsSinceExit[:0]
			divsSinceExit = divsSinceExit[:0]
			uncheckedLoads = uncheckedLoads[:0]
		}

		switch {
		case sa.isStore:
			em.addDep(j, lastStore, 1)         // stores stay ordered
			em.addDep(j, lastExit, 1)          // stores never cross exits
			for _, l := range uncheckedLoads { // stores never pass earlier loads
				em.addDep(j, l, 1)
			}
			// Self-check entries guard every store (§3.6.3).
			if len(em.smcEntries) > 0 {
				em.aliasPairs[j] = append(em.aliasPairs[j], em.smcEntries...)
			}
			lastStore = j
			storesSince = append(storesSince, j)

		case sa.isLoad:
			hoistable := !em.pol.NoHoistLoads && !sa.noReorder && !sa.smcCheck
			if !hoistable {
				em.addDep(j, lastExit, 1)
			}
			// Load versus earlier stores.
			for _, s := range storesSince {
				st := &em.atoms[s]
				switch {
				case em.pol.NoReorderMem || sa.noReorder || st.noReorder:
					em.addDep(j, s, 1)
				case em.pol.NoAliasHW:
					if !disjoint(sa, st) {
						em.addDep(j, s, 1)
					}
				default:
					// Reorder under alias protection: allocate an entry for
					// this load if needed; the store checks it.
					if sa.a.ProtIdx == vliw.NoAliasIdx {
						if em.aliasNext >= vliw.AliasTableSize {
							em.addDep(j, s, 1) // out of entries: stay ordered
							continue
						}
						sa.a.ProtIdx = int8(em.aliasNext)
						em.aliasNext++
					}
					em.aliasPairs[s] = append(em.aliasPairs[s], sa.a.ProtIdx)
				}
			}
			// Stores never pass loads in either policy: a store scheduled
			// before an earlier load would wrongly forward to it.
			uncheckedLoads = append(uncheckedLoads, j)
			loadsSinceExit = append(loadsSinceExit, j)

		case sa.isDiv:
			if em.pol.NoHoistLoads {
				em.addDep(j, lastExit, 1)
			}
			divsSinceExit = append(divsSinceExit, j)

		case sa.isExit:
			em.addDep(j, lastExit, 1)
			em.addDep(j, lastStore, 0)
			for _, l := range loadsSinceExit {
				em.addDep(j, l, 0) // loads may not sink below their exit
			}
			for _, d := range divsSinceExit {
				em.addDep(j, d, 0)
			}
			lastExit = j
			loadsSinceExit = loadsSinceExit[:0]
			divsSinceExit = divsSinceExit[:0]
		}

		// Update register tracking.
		for _, s := range srcs {
			lastUses[s] = append(lastUses[s], j)
		}
		for _, d := range dsts {
			lastDef[d] = j
			lastUses[d] = lastUses[d][:0]
		}
	}

	// Apply accumulated alias check masks to stores.
	for s, entries := range em.aliasPairs {
		for _, e := range entries {
			em.atoms[s].a.CheckMask |= 1 << uint(e)
		}
	}
}

func atomSourceRegs(a vliw.Atom) []vliw.HReg { return vliw.SourceRegs(a) }

func atomDestRegs(a vliw.Atom) []vliw.HReg { return vliw.DestRegs(a) }

// schedule runs list scheduling and lays out the final code, appending exit
// stubs and resolving branch targets.
func (em *emitter) schedule() (*vliw.Code, error) {
	n := len(em.atoms)
	indeg := make([]int, n)
	for j := range em.atoms {
		for _, p := range em.atoms[j].preds {
			em.atoms[p.from].succs = append(em.atoms[p.from].succs, j)
			indeg[j]++
		}
	}
	// Critical-path heights for priority.
	height := make([]int, n)
	for j := n - 1; j >= 0; j-- {
		h := 0
		for _, s := range em.atoms[j].succs {
			for _, p := range em.atoms[s].preds {
				if p.from == j && height[s]+p.delta+1 > h {
					h = height[s] + p.delta + 1
				}
			}
		}
		height[j] = h
	}

	earliest := make([]int, n)
	scheduledAt := make([]int, n)
	atomSlot := make([]int, n)
	for j := range scheduledAt {
		scheduledAt[j] = -1
	}
	remaining := n
	ready := make([]int, 0, n)
	pending := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if indeg[j] == 0 {
			ready = append(ready, j)
		}
	}

	var mols []vliw.Molecule
	cycle := 0
	guard := 0
	var candBuf, taken []int // reused across cycles
	for remaining > 0 {
		guard++
		if guard > 100*n+1000 {
			return nil, fmt.Errorf("xlate: scheduler livelock (%d atoms left)", remaining)
		}
		// Candidates ready at this cycle, best priority first.
		candBuf = candsInto(candBuf[:0], ready, earliest, cycle, height)
		cands := candBuf
		var molAtoms []vliw.Atom
		if len(cands) > 0 {
			molAtoms = make([]vliw.Atom, 0, min(em.host.Width, len(cands)))
		}
		var alu, memu, media, br int
		taken = taken[:0]
		for _, j := range cands {
			if len(molAtoms) >= em.host.Width {
				break
			}
			switch vliw.UnitOf(em.atoms[j].a.Op) {
			case vliw.UnitALU:
				if alu == em.host.ALUs {
					continue
				}
				alu++
			case vliw.UnitMem:
				if memu == em.host.MemUnits {
					continue
				}
				memu++
			case vliw.UnitMedia:
				if media == em.host.MediaUnits {
					continue
				}
				media++
			case vliw.UnitBranch:
				if br == em.host.BranchUnits {
					continue
				}
				br++
			}
			atomSlot[j] = len(molAtoms)
			molAtoms = append(molAtoms, em.atoms[j].a)
			taken = append(taken, j)
		}
		for _, j := range taken {
			scheduledAt[j] = cycle
			remaining--
			ready = removeFrom(ready, j)
			for _, s := range em.atoms[j].succs {
				indeg[s]--
				if indeg[s] == 0 {
					pending = append(pending, s)
				}
			}
		}
		// Recompute earliest for newly released atoms.
		for _, s := range pending {
			e := 0
			for _, p := range em.atoms[s].preds {
				if t := scheduledAt[p.from] + p.delta; t > e {
					e = t
				}
			}
			earliest[s] = e
			ready = append(ready, s)
		}
		pending = pending[:0]
		mols = append(mols, vliw.Molecule{Atoms: molAtoms})
		cycle++
	}

	// Mark actually reordered memory accesses: a load is "reordered" in the
	// §3.4 hardware sense when some program-earlier memory operation or
	// exit ended up scheduled no earlier than it.
	for j := range em.atoms {
		sa := &em.atoms[j]
		if !sa.isLoad {
			continue
		}
		for i := 0; i < j; i++ {
			o := &em.atoms[i]
			if (o.isLoad || o.isStore || o.isExit || o.isBarrier) && scheduledAt[i] >= scheduledAt[j] {
				mols[scheduledAt[j]].Atoms[atomSlot[j]].Reordered = true
				break
			}
		}
	}

	// Exit stubs: one per region exit that is reached by a branch.
	code := &vliw.Code{Mols: mols, NumExits: len(em.region.Exits)}
	stubAt := make(map[int32]int32)
	for j := range em.atoms {
		sa := &em.atoms[j]
		if sa.a.Op != vliw.ABrCC && sa.a.Op != vliw.ABrNZ {
			continue
		}
		exitIdx := sa.exitIdx
		stub, ok := stubAt[exitIdx]
		if !ok {
			commit := true
			if exitIdx >= 0 && em.region.Exits[exitIdx].Kind == ir.ExitSelfCheckFail {
				commit = false
			}
			stub = int32(len(code.Mols))
			// Fixup copies first (two ALU slots per molecule), then the
			// committing exit; the last pair shares the exit's molecule.
			fixups := sa.fixups
			for len(fixups) > 2 {
				code.Mols = append(code.Mols, vliw.Molecule{Atoms: fixups[:2]})
				fixups = fixups[2:]
			}
			last := append(append([]vliw.Atom(nil), fixups...), vliw.Atom{
				Op: vliw.AExit, Imm: uint32(exitIdx), Commit: commit,
				GIdx: -1, ProtIdx: vliw.NoAliasIdx,
			})
			code.Mols = append(code.Mols, vliw.Molecule{Atoms: last})
			stubAt[exitIdx] = stub
		}
		code.Mols[scheduledAt[j]].Atoms[atomSlot[j]].Target = stub
	}
	return code, nil
}

// candsInto appends the atoms ready at this cycle to out (a scratch buffer
// reused across cycles), ordered best priority first: height descending,
// index ascending. Candidate lists are small, so an insertion sort beats
// sort.Slice's closure indirection in the scheduler's innermost loop.
func candsInto(out, ready []int, earliest []int, cycle int, height []int) []int {
	for _, j := range ready {
		if earliest[j] <= cycle {
			out = append(out, j)
		}
	}
	for i := 1; i < len(out); i++ {
		v := out[i]
		k := i
		for k > 0 && (height[out[k-1]] < height[v] ||
			(height[out[k-1]] == height[v] && out[k-1] > v)) {
			out[k] = out[k-1]
			k--
		}
		out[k] = v
	}
	return out
}

func removeFrom(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// checkWord is one self-check comparison unit.
type checkWord struct {
	addr uint32
	want uint32
	mask uint32 // bits that must match (0xFFFFFFFF normally)
}

// emitSelfCheck prepends self-checking atoms (§3.6.3): load each source
// word, compare against the snapshot, accumulate mismatches, and branch to
// the fail exit. The check loads take alias entries so that stores within
// the translation body are checked against the code region itself.
func (em *emitter) emitSelfCheck(words []checkWord, accReg, tReg, xReg vliw.HReg) {
	em.failExit = em.region.AddExit(ir.Exit{Kind: ir.ExitSelfCheckFail})
	z := vliw.Atom{Op: vliw.AMovI, Rd: accReg, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
	em.push(satom{a: z})
	for _, w := range words {
		ld := vliw.Atom{Op: vliw.ALd, Rd: tReg, Ra: vliw.RZero, Imm: w.addr, Size: 4,
			GIdx: -1, ProtIdx: vliw.NoAliasIdx}
		if em.aliasNext < vliw.AliasTableSize {
			ld.ProtIdx = int8(em.aliasNext)
			em.smcEntries = append(em.smcEntries, int8(em.aliasNext))
			em.aliasNext++
		}
		em.push(satom{a: ld, isLoad: true, smcCheck: true})
		x := vliw.Atom{Op: vliw.AXorI, Rd: xReg, Ra: tReg, Imm: w.want, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
		em.push(satom{a: x})
		if w.mask != 0xFFFFFFFF {
			m := vliw.Atom{Op: vliw.AAndI, Rd: xReg, Ra: xReg, Imm: w.mask, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
			em.push(satom{a: m})
		}
		o := vliw.Atom{Op: vliw.AOr, Rd: accReg, Ra: accReg, Rb: xReg, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
		em.push(satom{a: o})
	}
	brnz := vliw.Atom{Op: vliw.ABrNZ, Ra: accReg, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
	sa := em.push(satom{a: brnz, isExit: true})
	sa.exitIdx = em.failExit
}
