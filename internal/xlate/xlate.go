package xlate

import (
	"errors"
	"fmt"

	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/ir"
	"cms/internal/mem"
	"cms/internal/risc"
	"cms/internal/vliw"
)

// Translation is the unit the translation cache stores: scheduled VLIW code
// for one guest region, plus the metadata the runtime needs for chaining,
// invalidation, self-checking, and adaptive retranslation.
type Translation struct {
	Entry  uint32
	Insns  []guest.Insn
	Exits  []ir.Exit
	Code   *vliw.Code
	Policy Policy

	// Compiled is the closure-threaded form of Code, built on the pipeline
	// workers when the translator's CompileBackend is on and the backend is
	// vliw. Nil means the engine interprets Code; the translation cache
	// nils it when an entry is replaced in place so stale compiled code can
	// never run.
	Compiled *vliw.CompiledCode

	// Risc is the register-IR form of Code, built instead of Compiled when
	// the translator's Backend is BackendRISC. At most one of Compiled and
	// Risc is non-nil; the cache teardown rules apply to both identically.
	Risc *risc.Code

	// SharedKey is the content key this artifact was stored under when it
	// came out of a farm's shared store (HasSharedKey reports whether it
	// did). Clones inherit it, so a VM that hits trouble while executing a
	// store-sourced translation can name the implicated artifact for
	// quarantine. Translations produced outside a store carry no key.
	SharedKey    Key
	HasSharedKey bool

	// SrcRanges are the coalesced guest code byte ranges this translation
	// was made from.
	SrcRanges []ir.SrcRange
	// Snapshot holds the source bytes per range as of translation time.
	Snapshot [][]byte
	// Mask holds per-byte compare masks (0xFF = must match); bytes of
	// stylized immediate fields are 0x00.
	Mask [][]byte

	// Req is the frozen request this translation was built from. Because
	// the backend is a pure function of the request, Req is everything a
	// snapshot needs to rebuild the translation bit-identically (or fetch
	// it from a shared store: Req.Key() is the content address). Clones
	// share it; it is immutable after Prepare.
	Req *Request

	prologue     *vliw.Code
	prologuePass int
	prologueFail int
}

// GuestLen returns the number of guest instructions covered.
func (t *Translation) GuestLen() int { return len(t.Insns) }

// Clone returns a per-VM installable view of a shared translation artifact.
// The immutable build products — scheduled code, the backend's executable
// form (compiled closures or risc register IR, both of which take the
// executing Machine as a parameter and hold no VM state), the instruction
// list, exits, source ranges, snapshot, and mask — are shared; the mutable
// install-side state is not: the clone builds its own prologue lazily, and
// cache teardown (which nils Compiled/Risc on in-place replacement)
// touches only the clone. A shared-store artifact is therefore frozen
// forever: it is cloned at every install and never installed itself.
func (t *Translation) Clone() *Translation {
	c := *t
	c.prologue = nil
	c.prologuePass = 0
	c.prologueFail = 0
	return &c
}

// CodeAtoms returns the static code size in atoms.
func (t *Translation) CodeAtoms() int { return t.Code.NumAtoms() }

// CodeMolecules returns the static code size in molecules.
func (t *Translation) CodeMolecules() int { return len(t.Code.Mols) }

// Pages returns the distinct guest pages holding source bytes.
func (t *Translation) Pages() []uint32 {
	seen := make(map[uint32]bool)
	var out []uint32
	for _, r := range t.SrcRanges {
		for p := mem.PageOf(r.Addr); p <= mem.PageOf(r.Addr+r.Len-1); p++ {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// Chunks returns, per page, the fine-grain chunk mask of source bytes
// (§3.6.1).
func (t *Translation) Chunks() map[uint32]uint32 {
	out := make(map[uint32]uint32)
	for _, r := range t.SrcRanges {
		for a := r.Addr; a < r.Addr+r.Len; a += mem.ChunkSize {
			out[mem.PageOf(a)] |= 1 << mem.ChunkOf(a)
		}
		last := r.Addr + r.Len - 1
		out[mem.PageOf(last)] |= 1 << mem.ChunkOf(last)
	}
	return out
}

// Covers reports whether addr lies in the translation's source bytes.
func (t *Translation) Covers(addr uint32) bool {
	for _, r := range t.SrcRanges {
		if addr >= r.Addr && addr < r.Addr+r.Len {
			return true
		}
	}
	return false
}

// CoversRange reports whether [addr, addr+n) intersects the source bytes.
func (t *Translation) CoversRange(addr uint32, n int) bool {
	for _, r := range t.SrcRanges {
		if addr < r.Addr+r.Len && r.Addr < addr+uint32(n) {
			return true
		}
	}
	return false
}

// SourceMatches compares the current memory contents against the snapshot,
// honoring the stylized-immediate mask — the comparison the prologue of a
// self-revalidating translation performs (§3.6.2) and translation groups
// use to find a matching old version (§3.6.5).
func (t *Translation) SourceMatches(bus *mem.Bus) bool {
	for ri, r := range t.SrcRanges {
		cur := bus.ReadRaw(r.Addr, int(r.Len))
		snap := t.Snapshot[ri]
		mask := t.Mask[ri]
		for i := range snap {
			if (cur[i]^snap[i])&mask[i] != 0 {
				return false
			}
		}
	}
	return true
}

// Prologue returns the self-revalidation check code (built on first use)
// and the exit indices meaning "source unchanged, run the body" and
// "source changed".
func (t *Translation) Prologue() (code *vliw.Code, pass, fail int, err error) {
	if t.prologue == nil {
		words := checkWordsFor(t)
		t.prologue, t.prologuePass, t.prologueFail, err = buildCheckCode(words)
		if err != nil {
			return nil, 0, 0, err
		}
	}
	return t.prologue, t.prologuePass, t.prologueFail, nil
}

// checkWordsFor enumerates the 32-bit comparison units over the snapshot.
func checkWordsFor(t *Translation) []checkWord {
	var words []checkWord
	for ri, r := range t.SrcRanges {
		snap, mask := t.Snapshot[ri], t.Mask[ri]
		for off := uint32(0); off < r.Len; off += 4 {
			var want, m uint32
			for b := uint32(0); b < 4 && off+b < r.Len; b++ {
				want |= uint32(snap[off+b]) << (8 * b)
				m |= uint32(mask[off+b]) << (8 * b)
			}
			if m == 0 {
				continue
			}
			words = append(words, checkWord{addr: r.Addr + off, want: want, mask: m})
		}
	}
	return words
}

// buildCheckCode builds a standalone source-verification code unit (the
// §3.6.2 prologue): exit pass if every word matches, exit fail otherwise.
// It commits nothing and touches only temporaries.
func buildCheckCode(words []checkWord) (code *vliw.Code, pass, fail int, err error) {
	reg := &ir.Region{}
	em := &emitter{region: reg, pol: Policy{}, host: vliw.TM5800()}
	// Reuse the self-check emitter but without alias entries (a prologue
	// runs at a boundary; there are no stores to guard against).
	em.aliasNext = vliw.AliasTableSize // exhaust entries: none allocated
	em.emitSelfCheck(words, vliw.RTempLast, vliw.RTempLast-1, vliw.RTempLast-2)
	fail = int(em.failExit)
	passExit := reg.AddExit(ir.Exit{Kind: ir.ExitJump})
	a := vliw.Atom{Op: vliw.AExit, Imm: uint32(passExit), Commit: false, GIdx: -1, ProtIdx: vliw.NoAliasIdx}
	sa := em.push(satom{a: a, isExit: true})
	sa.exitIdx = passExit
	em.buildDeps()
	code, err = em.schedule()
	if err != nil {
		return nil, 0, 0, err
	}
	if verr := code.Validate(); verr != nil {
		return nil, 0, 0, fmt.Errorf("xlate: prologue validation: %w", verr)
	}
	return code, int(passExit), fail, nil
}

// Translator turns hot guest regions into Translations.
type Translator struct {
	Bus  *mem.Bus
	Prof *interp.Profile

	// Host is the target microarchitecture generation (zero value: TM5800).
	// Retargeting the translator is all it takes to move to new hardware —
	// the guest-visible architecture is unaffected (§2).
	Host vliw.HostConfig

	// CompileBackend makes Translate also compile the scheduled code into
	// the backend's executable form — closure-threaded vliw.Compile by
	// default, risc.Lower when Backend is BackendRISC. The compile runs
	// wherever Translate runs — on the pipeline workers in the concurrent
	// configuration — keeping it off the engine thread.
	CompileBackend bool

	// Backend selects the code-gen backend for the executable form:
	// BackendVLIW (or empty) for the closure-threaded vliw backend,
	// BackendRISC for the register-IR backend. The tag is part of
	// Request.Key, so artifacts from different backends never dedup onto
	// each other in a shared store.
	Backend string

	// Translated counts successful translations; InsnsTranslated counts
	// guest instructions they covered (the translator work metric).
	Translated      uint64
	InsnsTranslated uint64
}

// selfCheckReserve is how many host registers the self-check machinery
// reserves from the allocator.
const selfCheckReserve = 3

// host returns the effective target microarchitecture.
func (tr *Translator) host() vliw.HostConfig {
	if tr.Host.Width == 0 {
		return vliw.TM5800()
	}
	return tr.Host
}

// Translate builds a translation for the region starting at entry under the
// given policy. It shrinks the region and retries on register pressure, and
// returns ErrUntranslatable when no region can be formed at all.
func (tr *Translator) Translate(entry uint32, pol Policy) (*Translation, error) {
	req, err := tr.Prepare(entry, pol)
	if err != nil {
		return nil, err
	}
	t, err := req.Translate()
	if err != nil {
		return nil, err
	}
	tr.Translated++
	tr.InsnsTranslated += uint64(len(t.Insns))
	return t, nil
}

// Request is a frozen translation request: the region selection plus every
// byte of input the backend needs, captured synchronously from the live bus
// and profile. Once built, a Request shares no mutable state with the
// running guest, so Translate may run on any goroutine while the
// interpreter keeps retiring instructions — the concurrency boundary of the
// translation pipeline.
type Request struct {
	Entry uint32
	Pol   Policy

	// insns is the trace selected at the policy's full instruction cap.
	// Register-pressure retries re-lower a prefix of it: selectRegion's
	// walk depends on the cap only through its loop bound, so selection at
	// a smaller cap IS the prefix of this list.
	insns []guest.Insn
	// ranges/bytes are the coalesced source ranges of the full trace and
	// their contents at capture time; retries snapshot from these, never
	// from the live bus.
	ranges []ir.SrcRange
	bytes  [][]byte
	// prof carries only the MMIO flags of the trace's addresses (the one
	// profile input lowering reads), copied out of the live profile.
	prof *interp.Profile
	host vliw.HostConfig
	// compile is the translator's CompileBackend, frozen at Prepare time.
	compile bool
	// backend is the translator's normalized Backend ("" for vliw,
	// BackendRISC for risc), frozen at Prepare time and folded into Key.
	backend string
}

// Code-gen backend tags. The empty string and BackendVLIW are equivalent
// everywhere: both select the closure-threaded vliw backend and both hash
// to the identical (untagged) content key, so pre-risc snapshots and
// stores stay compatible.
const (
	BackendVLIW = "vliw"
	BackendRISC = "risc"
)

// normBackend canonicalizes a backend tag: vliw (and empty) normalize to
// "", so only risc-built artifacts carry a tag.
func normBackend(b string) string {
	if b == BackendVLIW {
		return ""
	}
	return b
}

// Backend returns the request's normalized backend tag ("" means vliw).
func (req *Request) Backend() string { return req.backend }

// Prepare runs the front end of translation — region selection and source
// capture — against the live bus, and returns a self-contained Request for
// the backend. It returns ErrUntranslatable when no region can be formed.
func (tr *Translator) Prepare(entry uint32, pol Policy) (*Request, error) {
	p := pol
	p.MaxInsns = p.EffMaxInsns()
	insns, err := selectRegion(tr.Bus, tr.Prof, entry, p)
	if err != nil {
		return nil, err
	}
	req := &Request{
		Entry:   entry,
		Pol:     pol,
		insns:   insns,
		ranges:  ir.SrcRangesOf(insns),
		host:    tr.host(),
		compile: tr.CompileBackend,
		backend: normBackend(tr.Backend),
	}
	req.bytes = make([][]byte, len(req.ranges))
	for ri, r := range req.ranges {
		req.bytes[ri] = tr.Bus.ReadRaw(r.Addr, int(r.Len))
	}
	if tr.Prof != nil {
		mmio := make(map[uint32]bool)
		for _, in := range insns {
			if tr.Prof.MMIOInsns[in.Addr] {
				mmio[in.Addr] = true
			}
		}
		req.prof = &interp.Profile{MMIOInsns: mmio}
	}
	return req, nil
}

// GuestLen returns the number of guest instructions in the captured trace.
func (req *Request) GuestLen() int { return len(req.insns) }

// ReadRaw serves source bytes from the capture, satisfying the snapshot
// reader. Every address the backend snapshots lies inside the captured
// ranges: retry prefixes only ever cover a subset of the full trace's bytes.
func (req *Request) ReadRaw(addr uint32, n int) []byte {
	for ri, r := range req.ranges {
		if addr >= r.Addr && addr+uint32(n) <= r.Addr+r.Len {
			out := make([]byte, n)
			copy(out, req.bytes[ri][addr-r.Addr:])
			return out
		}
	}
	panic(fmt.Sprintf("xlate: snapshot read [%#x,+%d) outside captured ranges", addr, n))
}

// Translate runs the backend — lower, optimize, allocate, emit, schedule —
// purely from the Request's captured inputs. It shrinks the region and
// retries on register pressure, exactly as the synchronous path does.
func (req *Request) Translate() (*Translation, error) {
	cap := req.Pol.EffMaxInsns()
	for {
		t, err := req.translateOnce(cap)
		if err == nil {
			if req.compile {
				if req.backend == BackendRISC {
					t.Risc = risc.Lower(t.Code)
				} else {
					t.Compiled = vliw.Compile(t.Code)
				}
			}
			t.Req = req
			return t, nil
		}
		if errors.Is(err, errRegPressure) && cap > 4 {
			cap /= 2
			continue
		}
		return nil, err
	}
}

func (req *Request) translateOnce(capInsns int) (*Translation, error) {
	p := req.Pol
	p.MaxInsns = capInsns
	insns := req.insns
	if capInsns < len(insns) {
		insns = insns[:capInsns]
	}
	region, err := lower(req.Entry, insns, p, req.prof)
	if err != nil {
		return nil, err
	}
	rename(region)
	optimize(region)

	reserve := 0
	if p.SelfCheck {
		reserve = selfCheckReserve
	}
	assign, err := regalloc(region, reserve)
	if err != nil {
		return nil, err
	}

	t := &Translation{
		Entry:     req.Entry,
		Insns:     insns,
		Policy:    p,
		SrcRanges: region.SrcRanges(),
	}
	t.snapshot(req, p)

	em := &emitter{region: region, pol: p, host: req.host, assign: assign}
	// Most IR ops lower 1:1 (plus exit stubs); presizing skips the append
	// regrowth that otherwise dominates the emitter's allocations.
	em.atoms = make([]satom, 0, len(region.Code)+2*len(region.Exits)+8)
	if p.SelfCheck {
		em.emitSelfCheck(checkWordsFor(t), vliw.RTempLast, vliw.RTempLast-1, vliw.RTempLast-2)
	}
	if err := em.codegen(); err != nil {
		return nil, err
	}
	em.buildDeps()
	code, err := em.schedule()
	if err != nil {
		return nil, err
	}
	if verr := code.ValidateWith(req.host); verr != nil {
		return nil, fmt.Errorf("xlate: generated invalid code for %#x: %w", req.Entry, verr)
	}
	t.Code = code
	t.Exits = region.Exits
	return t, nil
}

// rawReader is the source-byte access snapshot needs: the live bus on the
// synchronous path, a Request's capture on the pipeline path.
type rawReader interface {
	ReadRaw(addr uint32, n int) []byte
}

// snapshot captures the source bytes and builds the stylized-immediate mask.
func (t *Translation) snapshot(src rawReader, pol Policy) {
	t.Snapshot = make([][]byte, len(t.SrcRanges))
	t.Mask = make([][]byte, len(t.SrcRanges))
	for ri, r := range t.SrcRanges {
		t.Snapshot[ri] = src.ReadRaw(r.Addr, int(r.Len))
		m := make([]byte, r.Len)
		for i := range m {
			m[i] = 0xFF
		}
		t.Mask[ri] = m
	}
	if len(pol.ImmLoad) == 0 {
		return
	}
	for _, in := range t.Insns {
		if !pol.ImmLoad[in.Addr] || !in.HasImm32() {
			continue
		}
		for b := uint32(0); b < 4; b++ {
			t.maskByte(in.Addr + in.ImmOff + b)
		}
	}
}

func (t *Translation) maskByte(addr uint32) {
	for ri, r := range t.SrcRanges {
		if addr >= r.Addr && addr < r.Addr+r.Len {
			t.Mask[ri][addr-r.Addr] = 0
		}
	}
}
