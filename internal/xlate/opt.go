package xlate

import "cms/internal/ir"

// optimize runs the translator's optimization pipeline on a region:
// dead-flag elimination, copy/constant propagation with folding, local value
// numbering (CSE), and dead code elimination. The region is a straight line
// with side exits, so forward dataflow needs no joins and backward liveness
// no fixpoints.
func optimize(r *ir.Region) {
	deadFlagElim(r)
	propagate(r)
	cse(r)
	dce(r)
}

// deadFlagElim downgrades flag-computing ops whose flag image is never
// consumed — the bread-and-butter win of translating a flags-on-every-op
// guest ISA. It runs after the rename pass, when every flag image is an
// explicit single-definition temporary, so "dead" is an exact use count:
// x86's partial updates (INC preserving CF, shifts by zero preserving
// everything) are already explicit dataflow through FIn and cannot be
// miscounted. Downgrading removes FIn uses, so the pass iterates to a
// fixpoint (carry chains release their producers layer by layer).
func deadFlagElim(r *ir.Region) {
	var scratch []ir.VReg
	for {
		uses := make(map[ir.VReg]int)
		for idx := range r.Code {
			scratch = r.Code[idx].Uses(scratch[:0])
			for _, u := range scratch {
				uses[u]++
			}
		}
		// Exit fixups read their sources in the stub.
		for _, e := range r.Exits {
			for _, fx := range e.Fixups {
				uses[fx.Src]++
			}
		}
		changed := false
		for idx := range r.Code {
			i := &r.Code[idx]
			if !i.Op.SetsFlags() || i.FOut == ir.NoVReg || uses[i.FOut] > 0 {
				continue
			}
			if downgrade(i) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// downgrade strips the flag computation from a CC op whose flag output is
// dead, reporting whether anything changed.
func downgrade(i *ir.Instr) bool {
	switch i.Op {
	case ir.OpIncCC:
		i.Op, i.Imm, i.B = ir.OpAdd, 1, ir.NoVReg
	case ir.OpDecCC:
		i.Op, i.Imm, i.B = ir.OpSub, 1, ir.NoVReg
	case ir.OpNegCC, ir.OpImulCC, ir.OpMul64, ir.OpAdcCC, ir.OpSbbCC:
		// No plain form with the same operand shape (ADC/SBB also consume
		// CF); DCE removes them if the value is dead too.
		return false
	default:
		p, ok := ir.PlainOf(i.Op)
		if !ok {
			return false
		}
		i.Op = p
	}
	i.FIn, i.FOut = ir.NoVReg, ir.NoVReg
	return true
}

// valKind is the propagation lattice.
type valKind uint8

const (
	vUnknown valKind = iota
	vConst
	vCopy
)

type valInfo struct {
	kind valKind
	c    uint32
	src  ir.VReg
	ver  int // version of src at record time
}

// propagate performs forward copy and constant propagation with folding.
func propagate(r *ir.Region) {
	val := make(map[ir.VReg]valInfo)
	ver := make(map[ir.VReg]int)
	var scratch []ir.VReg

	resolve := func(v ir.VReg) ir.VReg {
		if v == ir.NoVReg {
			return v
		}
		if in, ok := val[v]; ok && in.kind == vCopy && ver[in.src] == in.ver {
			return in.src
		}
		return v
	}
	constOf := func(v ir.VReg) (uint32, bool) {
		if v == ir.NoVReg {
			return 0, false
		}
		in, ok := val[v]
		if ok && in.kind == vConst {
			return in.c, true
		}
		return 0, false
	}

	for idx := range r.Code {
		i := &r.Code[idx]
		i.A, i.B, i.C = resolve(i.A), resolve(i.B), resolve(i.C)

		// Absorb a constant B into the immediate form where the atom set
		// supports it.
		switch i.Op {
		case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar,
			ir.OpAddCC, ir.OpSubCC, ir.OpAndCC, ir.OpOrCC, ir.OpXorCC,
			ir.OpShlCC, ir.OpShrCC, ir.OpSarCC:
			if c, ok := constOf(i.B); ok {
				i.B, i.Imm = ir.NoVReg, c
			}
		}

		// Constant folding for pure plain ops.
		switch i.Op {
		case ir.OpMov:
			if c, ok := constOf(i.A); ok {
				i.Op, i.A, i.Imm = ir.OpConst, ir.NoVReg, c
			}
		case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
			ca, okA := constOf(i.A)
			cb, okB := constOf(i.B)
			if i.B == ir.NoVReg {
				cb, okB = i.Imm, true
			}
			if okA && okB {
				i.Imm = foldALU(i.Op, ca, cb)
				i.Op, i.A, i.B = ir.OpConst, ir.NoVReg, ir.NoVReg
			}
		}

		// Update lattice for defs.
		scratch = i.Defs(scratch[:0])
		for _, d := range scratch {
			ver[d]++
			delete(val, d)
		}
		switch i.Op {
		case ir.OpConst:
			val[i.Dst] = valInfo{kind: vConst, c: i.Imm}
		case ir.OpMov:
			val[i.Dst] = valInfo{kind: vCopy, src: i.A, ver: ver[i.A]}
		}
	}
}

func foldALU(op ir.Op, a, b uint32) uint32 {
	switch op {
	case ir.OpAdd:
		return a + b
	case ir.OpSub:
		return a - b
	case ir.OpAnd:
		return a & b
	case ir.OpOr:
		return a | b
	case ir.OpXor:
		return a ^ b
	case ir.OpShl:
		return a << (b & 31)
	case ir.OpShr:
		return a >> (b & 31)
	case ir.OpSar:
		return uint32(int32(a) >> (b & 31))
	}
	return 0
}

// cseKey identifies a pure computation for value numbering.
type cseKey struct {
	op       ir.Op
	a, b     ir.VReg
	aV, bV   int
	imm      uint32
	memEpoch int
}

// cse performs local value numbering over pure plain ops, constants, and
// loads (loads are versioned by a memory epoch bumped at every store or
// barrier).
func cse(r *ir.Region) {
	type binding struct {
		v   ir.VReg
		ver int
	}
	table := make(map[cseKey]binding)
	ver := make(map[ir.VReg]int)
	epoch := 0
	var scratch []ir.VReg

	for idx := range r.Code {
		i := &r.Code[idx]

		eligible := false
		key := cseKey{op: i.Op, a: i.A, b: i.B, imm: i.Imm}
		switch i.Op {
		case ir.OpConst:
			eligible = true
		case ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar:
			eligible = true
			key.aV, key.bV = ver[i.A], ver[i.B]
		case ir.OpLd8, ir.OpLd32:
			// Serialized or SMC-check loads are not shareable.
			if !i.Serialize && !i.SMCCheck {
				eligible = true
				key.aV = ver[i.A]
				key.memEpoch = epoch
			}
		}

		if eligible {
			if b, ok := table[key]; ok && ver[b.v] == b.ver {
				// Replace with a copy from the prior value.
				dst, gidx := i.Dst, i.GIdx
				*i = ir.New(ir.OpMov)
				i.Dst, i.A, i.GIdx = dst, b.v, gidx
			}
		}

		scratch = i.Defs(scratch[:0])
		for _, d := range scratch {
			ver[d]++
		}
		if eligible && i.Op != ir.OpMov {
			table[key] = binding{v: i.Dst, ver: ver[i.Dst]}
		}
		switch {
		case i.Op.IsStore(), i.Op == ir.OpIn, i.Op == ir.OpOut:
			epoch++
		case i.Op == ir.OpBoundary && i.Serialize:
			epoch++
		}
	}
}

// dce removes pure instructions whose results are never used. Loads and
// divides are kept even when dead: their faults are architecturally
// meaningful and nothing at run time would verify the "never faults"
// speculation a removal would amount to.
func dce(r *ir.Region) {
	maxV := ir.VTemp0
	var scratch []ir.VReg
	for idx := range r.Code {
		scratch = r.Code[idx].Defs(scratch[:0])
		for _, d := range scratch {
			if d >= maxV {
				maxV = d + 1
			}
		}
	}
	live := make([]bool, maxV)
	keep := make([]bool, len(r.Code))

	markGuestLive := func() {
		for v := ir.VReg(0); v <= ir.VFlags; v++ {
			live[v] = true
		}
	}

	for idx := len(r.Code) - 1; idx >= 0; idx-- {
		i := &r.Code[idx]
		removable := false
		switch i.Op {
		case ir.OpNop:
			removable = true
		case ir.OpConst, ir.OpMov,
			ir.OpAdd, ir.OpSub, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpSar,
			ir.OpAddCC, ir.OpSubCC, ir.OpAndCC, ir.OpOrCC, ir.OpXorCC,
			ir.OpShlCC, ir.OpShrCC, ir.OpSarCC,
			ir.OpIncCC, ir.OpDecCC, ir.OpNegCC, ir.OpImulCC, ir.OpMul64,
			ir.OpAdcCC, ir.OpSbbCC:
			removable = true
		}
		scratch = i.Defs(scratch[:0])
		allDead := true
		for _, d := range scratch {
			if live[d] {
				allDead = false
			}
		}
		if removable && allDead && len(scratch) > 0 {
			continue // dropped
		}
		keep[idx] = true
		for _, d := range scratch {
			live[d] = false
		}
		if i.Op.IsExit() || (i.Op == ir.OpBoundary && i.Serialize) {
			markGuestLive()
		}
		if i.Op == ir.OpExitIf {
			for _, fx := range r.Exits[i.Exit].Fixups {
				if int(fx.Src) < len(live) {
					live[fx.Src] = true
				}
			}
		}
		scratch = i.Uses(scratch[:0])
		for _, u := range scratch {
			live[u] = true
		}
	}

	out := r.Code[:0]
	for idx := range r.Code {
		if keep[idx] {
			out = append(out, r.Code[idx])
		}
	}
	r.Code = out
}
