package xlate

import (
	"cms/internal/ir"
)

// rename performs guest-register renaming within a region: every definition
// of a guest GPR goes to a fresh temporary, and the mapping from guest
// register to current temporary is carried forward. The pinned host
// registers r0..r7 are written only
//
//   - by fixup copies in side-exit stubs (recorded as ir.Exit.Fixups and
//     emitted by the scheduler), executed only when that exit is taken, and
//   - by materialization copies inserted inline before unconditional exits,
//     indirect exits, and serialize boundaries.
//
// Without renaming, the cross-iteration reuse of the eight guest registers
// serializes unrolled regions completely and the scheduler has nothing to
// reorder; with it, only the flags register and true data dependences pace
// the schedule. This models the paper's observation that the 64 host
// registers let "the architectural x86 registers be assigned to dedicated
// native registers, with an ample set available for use by CMS".
//
// EFLAGS (VFlags) is renamed exactly like the GPRs: flag-computing
// operations take an explicit flag-image input (FIn) and produce a fresh
// flag-image output (FOut), which turns x86's partial flag updates (INC
// preserving CF, shifts by zero preserving everything) into ordinary
// explicit dataflow. The architectural r8 is written only at
// materialization points; the interrupt window polls the *committed* IF.
func rename(r *ir.Region) {
	next := maxVReg(r) + 1
	fresh := func() ir.VReg {
		v := next
		next++
		return v
	}

	// cur[0..7] are the guest GPRs; cur[8] is the current flag image.
	var cur [9]ir.VReg
	for g := range cur {
		cur[g] = ir.VReg(g)
	}
	mapUse := func(v ir.VReg) ir.VReg {
		if v >= 0 && v <= ir.VFlags {
			return cur[v]
		}
		return v
	}

	out := make([]ir.Instr, 0, len(r.Code)+16)

	// materialize writes every renamed guest register back to its pinned
	// home and resets the mapping (used where the full architectural state
	// must be in place inline).
	materialize := func(gidx int32) {
		for g := ir.VReg(0); g <= ir.VFlags; g++ {
			if cur[g] == g {
				continue
			}
			mv := ir.New(ir.OpMov)
			mv.Dst, mv.A, mv.GIdx = g, cur[g], gidx
			out = append(out, mv)
			cur[g] = g
		}
	}

	// needsFlagIn reports whether a flag-writing op truly consumes the
	// previous arithmetic flag image: partial updaters (INC/DEC preserve
	// CF), shifts whose count may be zero at run time (they then preserve
	// everything), and carry-chained arithmetic. Full writers replace all
	// arithmetic bits and take IF from the architectural register, so they
	// carry no flag dependence at all.
	needsFlagIn := func(i *ir.Instr) bool {
		switch i.Op {
		case ir.OpIncCC, ir.OpDecCC, ir.OpAdcCC, ir.OpSbbCC:
			return true
		case ir.OpShlCC, ir.OpShrCC, ir.OpSarCC:
			return i.B != ir.NoVReg || i.Imm&31 == 0
		}
		return false
	}

	for idx := range r.Code {
		i := r.Code[idx]
		switch {
		case i.Op == ir.OpBoundary && i.Serialize:
			materialize(i.GIdx)
			out = append(out, i)
			continue
		case i.Dst == ir.VFlags && !i.Op.SetsFlags():
			// CLI/STI/POPF write the architectural flags directly, keeping
			// the hardware's IF view current: materialize first, keep r8
			// pinned.
			materialize(i.GIdx)
			i.A, i.B, i.C = mapUse(i.A), mapUse(i.B), mapUse(i.C)
			out = append(out, i)
			continue
		case i.Op == ir.OpExitIf:
			// Side exit: record fixups (including the flag image); the
			// stub performs them only when the exit is taken.
			i.FIn = cur[ir.VFlags]
			var fx []ir.Fixup
			for g := ir.VReg(0); g <= ir.VFlags; g++ {
				if cur[g] != g {
					fx = append(fx, ir.Fixup{Guest: g, Src: cur[g]})
				}
			}
			r.Exits[i.Exit].Fixups = fx
			out = append(out, i)
			continue
		case i.Op == ir.OpExit:
			materialize(i.GIdx)
			out = append(out, i)
			continue
		case i.Op == ir.OpExitInd:
			i.A = mapUse(i.A)
			materialize(i.GIdx)
			out = append(out, i)
			continue
		}

		i.A, i.B, i.C = mapUse(i.A), mapUse(i.B), mapUse(i.C)
		if i.Op.SetsFlags() {
			if needsFlagIn(&i) {
				i.FIn = cur[ir.VFlags]
			}
			i.FOut = fresh()
			cur[ir.VFlags] = i.FOut
		}
		if i.Dst >= 0 && i.Dst <= ir.VFlags {
			g := i.Dst
			i.Dst = fresh()
			cur[g] = i.Dst
		}
		if i.Dst2 >= 0 && i.Dst2 < 8 {
			g := i.Dst2
			i.Dst2 = fresh()
			cur[g] = i.Dst2
		}
		out = append(out, i)
	}
	r.Code = out
}

// maxVReg returns the highest virtual register used by the region.
func maxVReg(r *ir.Region) ir.VReg {
	max := ir.VTemp0
	var scratch []ir.VReg
	for idx := range r.Code {
		scratch = r.Code[idx].Defs(scratch[:0])
		for _, v := range scratch {
			if v > max {
				max = v
			}
		}
		scratch = r.Code[idx].Uses(scratch[:0])
		for _, v := range scratch {
			if v > max {
				max = v
			}
		}
	}
	return max
}
