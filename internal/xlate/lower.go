package xlate

import (
	"fmt"

	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/ir"
)

// lowerer turns a guest trace into IR.
type lowerer struct {
	r        *ir.Region
	pol      Policy
	prof     *interp.Profile
	nextTemp ir.VReg
}

func (lw *lowerer) temp() ir.VReg {
	v := lw.nextTemp
	lw.nextTemp++
	return v
}

func (lw *lowerer) emit(i ir.Instr) *ir.Instr {
	lw.r.Code = append(lw.r.Code, i)
	return &lw.r.Code[len(lw.r.Code)-1]
}

// lower builds the IR for a selected trace.
func lower(entry uint32, insns []guest.Insn, pol Policy, prof *interp.Profile) (*ir.Region, error) {
	lw := &lowerer{
		r:        &ir.Region{Entry: entry, Insns: insns},
		pol:      pol,
		prof:     prof,
		nextTemp: ir.VTemp0,
	}
	for gi, in := range insns {
		b := ir.New(ir.OpBoundary)
		b.GIdx = int32(gi)
		b.Imm = in.Addr
		// IN reads a device irrevocably, so it always executes at a
		// committed boundary; other instructions serialize only when the
		// adaptive policy demands it.
		if pol.Serialize[in.Addr] || in.Op == guest.OpIN {
			b.Serialize = true
		}
		lw.emit(b)
		if err := lw.insn(int32(gi), in, gi+1 < len(insns)); err != nil {
			return nil, err
		}
	}
	// If the trace ran off its end without a control transfer, exit to the
	// fall-through address.
	last := insns[len(insns)-1]
	if _, jcc := last.Op.IsJcc(); !jcc {
		switch last.Op {
		case guest.OpJMPrel, guest.OpJMPr, guest.OpJMPm, guest.OpCALLrel, guest.OpCALLr, guest.OpRET:
		default:
			e := ir.New(ir.OpExit)
			e.GIdx = int32(len(insns) - 1)
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: last.Next(), Insns: len(insns)})
			lw.emit(e)
		}
	}
	return lw.r, nil
}

// memAttrs applies the per-instruction speculation policy to a memory op.
func (lw *lowerer) memAttrs(i *ir.Instr, in guest.Insn) {
	if lw.pol.Serialize[in.Addr] {
		i.Serialize = true
	}
	if lw.pol.NoReorder[in.Addr] {
		i.NoReorder = true
	}
	// Instructions the interpreter observed touching MMIO are born
	// in-order: the profile spares us one speculation fault each.
	if lw.prof != nil && lw.prof.MMIOInsns[in.Addr] {
		i.NoReorder = true
	}
}

// ea lowers a memory operand's effective address to (base vreg, disp).
func (lw *lowerer) ea(gi int32, m guest.MemOperand) (ir.VReg, uint32) {
	base := ir.NoVReg
	if m.HasBase {
		base = ir.GuestVReg(m.Base)
	}
	if m.HasIndex {
		scaled := ir.GuestVReg(m.Index)
		if m.ScaleLog > 0 {
			t := lw.temp()
			s := ir.New(ir.OpShl)
			s.Dst, s.A, s.Imm, s.GIdx = t, ir.GuestVReg(m.Index), uint32(m.ScaleLog), gi
			lw.emit(s)
			scaled = t
		}
		if base == ir.NoVReg {
			base = scaled
		} else {
			t := lw.temp()
			a := ir.New(ir.OpAdd)
			a.Dst, a.A, a.B, a.GIdx = t, base, scaled, gi
			lw.emit(a)
			base = t
		}
	}
	return base, m.Disp
}

// value materializes an instruction's imm32 — normally a constant, but a
// runtime load from the code stream for stylized-SMC sites (§3.6.4).
func (lw *lowerer) value(gi int32, in guest.Insn) ir.VReg {
	t := lw.temp()
	if lw.pol.ImmLoad[in.Addr] && in.HasImm32() {
		ld := ir.New(ir.OpLd32)
		ld.Dst, ld.Imm, ld.GIdx = t, in.Addr+in.ImmOff, gi
		lw.emit(ld)
	} else {
		c := ir.New(ir.OpConst)
		c.Dst, c.Imm, c.GIdx = t, in.Imm, gi
		lw.emit(c)
	}
	return t
}

func (lw *lowerer) load(gi int32, in guest.Insn, op ir.Op, base ir.VReg, disp uint32) ir.VReg {
	t := lw.temp()
	ld := ir.New(op)
	ld.Dst, ld.A, ld.Imm, ld.GIdx = t, base, disp, gi
	lw.memAttrs(&ld, in)
	lw.emit(ld)
	return t
}

func (lw *lowerer) store(gi int32, in guest.Insn, op ir.Op, base ir.VReg, disp uint32, src ir.VReg) {
	st := ir.New(op)
	st.A, st.B, st.Imm, st.GIdx = base, src, disp, gi
	lw.memAttrs(&st, in)
	lw.emit(st)
}

// aluCCOp maps a guest ALU opcode family base to the IR CC op.
func aluCCOp(op guest.Op) ir.Op {
	switch (op - guest.OpADDrr) / 4 {
	case 0:
		return ir.OpAddCC
	case 1:
		return ir.OpSubCC
	case 2:
		return ir.OpAndCC
	case 3:
		return ir.OpOrCC
	case 4:
		return ir.OpXorCC
	}
	panic("xlate: not an ALU op")
}

// insn lowers one guest instruction. hasNext reports whether the trace
// continues after it (controls Jcc lowering).
func (lw *lowerer) insn(gi int32, in guest.Insn, hasNext bool) error {
	emit := lw.emit
	vd := ir.GuestVReg(in.Dst)
	vs := ir.GuestVReg(in.Src)
	vESP := ir.GuestVReg(guest.ESP)

	// push lowers the store+adjust of the push family.
	push := func(src ir.VReg) {
		lw.store(gi, in, ir.OpSt32, vESP, 0xFFFFFFFC, src) // [esp-4] = src
		s := ir.New(ir.OpSub)
		s.Dst, s.A, s.Imm, s.GIdx = vESP, vESP, 4, gi
		emit(s)
	}
	// pop returns a temp holding the old top of stack and adjusts ESP.
	pop := func() ir.VReg {
		t := lw.load(gi, in, ir.OpLd32, vESP, 0)
		a := ir.New(ir.OpAdd)
		a.Dst, a.A, a.Imm, a.GIdx = vESP, vESP, 4, gi
		emit(a)
		return t
	}

	switch in.Op {
	case guest.OpNOP:
	case guest.OpCLI:
		i := ir.New(ir.OpAnd)
		i.Dst, i.A, i.Imm, i.GIdx = ir.VFlags, ir.VFlags, ^guest.FlagIF, gi
		emit(i)
	case guest.OpSTI:
		i := ir.New(ir.OpOr)
		i.Dst, i.A, i.Imm, i.GIdx = ir.VFlags, ir.VFlags, guest.FlagIF, gi
		emit(i)

	case guest.OpMOVrr:
		i := ir.New(ir.OpMov)
		i.Dst, i.A, i.GIdx = vd, vs, gi
		emit(i)
	case guest.OpMOVri:
		if lw.pol.ImmLoad[in.Addr] {
			t := lw.value(gi, in)
			i := ir.New(ir.OpMov)
			i.Dst, i.A, i.GIdx = vd, t, gi
			emit(i)
		} else {
			i := ir.New(ir.OpConst)
			i.Dst, i.Imm, i.GIdx = vd, in.Imm, gi
			emit(i)
		}
	case guest.OpMOVrm, guest.OpMOVBrm:
		base, disp := lw.ea(gi, in.Mem)
		op := ir.OpLd32
		if in.Op == guest.OpMOVBrm {
			op = ir.OpLd8
		}
		t := lw.load(gi, in, op, base, disp)
		i := ir.New(ir.OpMov)
		i.Dst, i.A, i.GIdx = vd, t, gi
		emit(i)
	case guest.OpMOVmr, guest.OpMOVBmr:
		base, disp := lw.ea(gi, in.Mem)
		op := ir.OpSt32
		if in.Op == guest.OpMOVBmr {
			op = ir.OpSt8
		}
		lw.store(gi, in, op, base, disp, vs)
	case guest.OpMOVmi:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.value(gi, in)
		lw.store(gi, in, ir.OpSt32, base, disp, t)
	case guest.OpLEA:
		base, disp := lw.ea(gi, in.Mem)
		i := ir.New(ir.OpAdd)
		i.Dst, i.A, i.Imm, i.GIdx = vd, base, disp, gi
		if base == ir.NoVReg {
			i.Op = ir.OpConst
			i.A = ir.NoVReg
		}
		emit(i)
	case guest.OpMOVSXB:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd8, base, disp)
		// Sign-extend the zero-extended byte: shl 24, sar 24.
		t2 := lw.temp()
		sh := ir.New(ir.OpShl)
		sh.Dst, sh.A, sh.Imm, sh.GIdx = t2, t, 24, gi
		emit(sh)
		sa := ir.New(ir.OpSar)
		sa.Dst, sa.A, sa.Imm, sa.GIdx = vd, t2, 24, gi
		emit(sa)
	case guest.OpADCrr, guest.OpSBBrr:
		op := ir.OpAdcCC
		if in.Op == guest.OpSBBrr {
			op = ir.OpSbbCC
		}
		i := ir.New(op)
		i.Dst, i.A, i.B, i.GIdx = vd, vd, vs, gi
		emit(i)
	case guest.OpADCri, guest.OpSBBri:
		op := ir.OpAdcCC
		if in.Op == guest.OpSBBri {
			op = ir.OpSbbCC
		}
		i := ir.New(op)
		i.Dst, i.A, i.GIdx = vd, vd, gi
		if lw.pol.ImmLoad[in.Addr] {
			i.B = lw.value(gi, in)
		} else {
			i.Imm = in.Imm
		}
		emit(i)
	case guest.OpXCHG:
		t := lw.temp()
		m1 := ir.New(ir.OpMov)
		m1.Dst, m1.A, m1.GIdx = t, vd, gi
		emit(m1)
		m2 := ir.New(ir.OpMov)
		m2.Dst, m2.A, m2.GIdx = vd, vs, gi
		emit(m2)
		m3 := ir.New(ir.OpMov)
		m3.Dst, m3.A, m3.GIdx = vs, t, gi
		emit(m3)
	case guest.OpCDQ:
		i := ir.New(ir.OpSar)
		i.Dst, i.A, i.Imm, i.GIdx = ir.GuestVReg(guest.EDX), ir.GuestVReg(guest.EAX), 31, gi
		emit(i)

	case guest.OpADDrr, guest.OpSUBrr, guest.OpANDrr, guest.OpORrr, guest.OpXORrr:
		i := ir.New(aluCCOp(in.Op))
		i.Dst, i.A, i.B, i.GIdx = vd, vd, vs, gi
		emit(i)
	case guest.OpADDri, guest.OpSUBri, guest.OpANDri, guest.OpORri, guest.OpXORri:
		i := ir.New(aluCCOp(in.Op - 1))
		i.Dst, i.A, i.GIdx = vd, vd, gi
		if lw.pol.ImmLoad[in.Addr] {
			i.B = lw.value(gi, in)
		} else {
			i.Imm = in.Imm
		}
		emit(i)
	case guest.OpADDrm, guest.OpSUBrm, guest.OpANDrm, guest.OpORrm, guest.OpXORrm:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd32, base, disp)
		i := ir.New(aluCCOp(in.Op - 2))
		i.Dst, i.A, i.B, i.GIdx = vd, vd, t, gi
		emit(i)
	case guest.OpADDmr, guest.OpSUBmr, guest.OpANDmr, guest.OpORmr, guest.OpXORmr:
		// Read-modify-write: compute the address once.
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd32, base, disp)
		t2 := lw.temp()
		i := ir.New(aluCCOp(in.Op - 3))
		i.Dst, i.A, i.B, i.GIdx = t2, t, vs, gi
		emit(i)
		lw.store(gi, in, ir.OpSt32, base, disp, t2)

	case guest.OpCMPrr:
		i := ir.New(ir.OpSubCC)
		i.Dst, i.A, i.B, i.GIdx = lw.temp(), vd, vs, gi
		emit(i)
	case guest.OpCMPri:
		i := ir.New(ir.OpSubCC)
		i.Dst, i.A, i.Imm, i.GIdx = lw.temp(), vd, in.Imm, gi
		if lw.pol.ImmLoad[in.Addr] {
			i.Imm = 0
			i.B = lw.value(gi, in)
		}
		emit(i)
	case guest.OpCMPrm:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd32, base, disp)
		i := ir.New(ir.OpSubCC)
		i.Dst, i.A, i.B, i.GIdx = lw.temp(), vd, t, gi
		emit(i)
	case guest.OpCMPmi:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd32, base, disp)
		i := ir.New(ir.OpSubCC)
		i.Dst, i.A, i.Imm, i.GIdx = lw.temp(), t, in.Imm, gi
		if lw.pol.ImmLoad[in.Addr] {
			i.Imm = 0
			i.B = lw.value(gi, in)
		}
		emit(i)
	case guest.OpTESTrr:
		i := ir.New(ir.OpAndCC)
		i.Dst, i.A, i.B, i.GIdx = lw.temp(), vd, vs, gi
		emit(i)
	case guest.OpTESTri:
		i := ir.New(ir.OpAndCC)
		i.Dst, i.A, i.Imm, i.GIdx = lw.temp(), vd, in.Imm, gi
		emit(i)

	case guest.OpINC, guest.OpDEC:
		// Split into a flags-only op and an independent value op, so the
		// register chain (often a loop counter) never waits for the flag
		// image's CF merge.
		op, vop := ir.OpIncCC, ir.OpAdd
		if in.Op == guest.OpDEC {
			op, vop = ir.OpDecCC, ir.OpSub
		}
		f := ir.New(op)
		f.Dst, f.A, f.GIdx = lw.temp(), vd, gi
		emit(f)
		v := ir.New(vop)
		v.Dst, v.A, v.Imm, v.GIdx = vd, vd, 1, gi
		emit(v)
	case guest.OpNEG:
		i := ir.New(ir.OpNegCC)
		i.Dst, i.A, i.GIdx = vd, vd, gi
		emit(i)
	case guest.OpNOT:
		i := ir.New(ir.OpXor)
		i.Dst, i.A, i.Imm, i.GIdx = vd, vd, 0xFFFFFFFF, gi
		emit(i)

	case guest.OpSHLri, guest.OpSHRri, guest.OpSARri,
		guest.OpSHLrc, guest.OpSHRrc, guest.OpSARrc:
		var op ir.Op
		switch in.Op {
		case guest.OpSHLri, guest.OpSHLrc:
			op = ir.OpShlCC
		case guest.OpSHRri, guest.OpSHRrc:
			op = ir.OpShrCC
		default:
			op = ir.OpSarCC
		}
		i := ir.New(op)
		i.Dst, i.A, i.GIdx = vd, vd, gi
		switch in.Op {
		case guest.OpSHLrc, guest.OpSHRrc, guest.OpSARrc:
			i.B = ir.GuestVReg(guest.ECX)
		default:
			i.Imm = in.Imm
		}
		emit(i)

	case guest.OpIMULrr:
		i := ir.New(ir.OpImulCC)
		i.Dst, i.A, i.B, i.GIdx = vd, vd, vs, gi
		emit(i)
	case guest.OpIMULri:
		i := ir.New(ir.OpImulCC)
		i.Dst, i.A, i.GIdx = vd, vd, gi
		if lw.pol.ImmLoad[in.Addr] {
			i.B = lw.value(gi, in)
		} else {
			i.Imm = in.Imm
		}
		emit(i)
	case guest.OpMUL:
		i := ir.New(ir.OpMul64)
		i.Dst, i.Dst2, i.A, i.B, i.GIdx = ir.GuestVReg(guest.EAX), ir.GuestVReg(guest.EDX),
			ir.GuestVReg(guest.EAX), vd, gi
		emit(i)
	case guest.OpDIV, guest.OpIDIV:
		op := ir.OpDivU
		if in.Op == guest.OpIDIV {
			op = ir.OpDivS
		}
		i := ir.New(op)
		i.Dst, i.Dst2 = ir.GuestVReg(guest.EAX), ir.GuestVReg(guest.EDX)
		i.A, i.B, i.C, i.GIdx = ir.GuestVReg(guest.EAX), vd, ir.GuestVReg(guest.EDX), gi
		emit(i)

	case guest.OpPUSHr:
		push(vd)
	case guest.OpPUSHi:
		push(lw.value(gi, in))
	case guest.OpPUSHF:
		t := lw.temp()
		i := ir.New(ir.OpMov)
		i.Dst, i.A, i.GIdx = t, ir.VFlags, gi
		emit(i)
		push(t)
	case guest.OpPOPr:
		t := pop()
		i := ir.New(ir.OpMov)
		i.Dst, i.A, i.GIdx = vd, t, gi
		emit(i)
	case guest.OpPOPF:
		t := pop()
		t2 := lw.temp()
		a := ir.New(ir.OpAnd)
		a.Dst, a.A, a.Imm, a.GIdx = t2, t, guest.ArithFlags|guest.FlagIF, gi
		emit(a)
		o := ir.New(ir.OpOr)
		o.Dst, o.A, o.Imm, o.GIdx = ir.VFlags, t2, guest.FlagsAlways, gi
		emit(o)

	case guest.OpJMPrel:
		if !hasNext {
			e := ir.New(ir.OpExit)
			e.GIdx = gi
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: in.BranchTarget(), Insns: int(gi) + 1})
			emit(e)
		}
		// Followed jumps vanish: the trace continues at the target.
	case guest.OpJMPr:
		e := ir.New(ir.OpExitInd)
		e.A, e.GIdx = vd, gi
		e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitIndirect, Insns: int(gi) + 1})
		emit(e)
	case guest.OpJMPm:
		base, disp := lw.ea(gi, in.Mem)
		t := lw.load(gi, in, ir.OpLd32, base, disp)
		e := ir.New(ir.OpExitInd)
		e.A, e.GIdx = t, gi
		e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitIndirect, Insns: int(gi) + 1})
		emit(e)
	case guest.OpCALLrel, guest.OpCALLr:
		ret := lw.temp()
		c := ir.New(ir.OpConst)
		c.Dst, c.Imm, c.GIdx = ret, in.Next(), gi
		emit(c)
		push(ret)
		if in.Op == guest.OpCALLrel {
			e := ir.New(ir.OpExit)
			e.GIdx = gi
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: in.BranchTarget(), Insns: int(gi) + 1})
			emit(e)
		} else {
			e := ir.New(ir.OpExitInd)
			e.A, e.GIdx = vd, gi
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitIndirect, Insns: int(gi) + 1})
			emit(e)
		}
	case guest.OpRET:
		t := pop()
		e := ir.New(ir.OpExitInd)
		e.A, e.GIdx = t, gi
		e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitIndirect, Insns: int(gi) + 1})
		emit(e)

	case guest.OpIN:
		i := ir.New(ir.OpIn)
		t := lw.temp()
		i.Dst, i.Imm, i.GIdx = t, in.Imm, gi
		i.Serialize = true // IN is irrevocable: always at a committed boundary
		emit(i)
		mv := ir.New(ir.OpMov)
		mv.Dst, mv.A, mv.GIdx = vd, t, gi
		emit(mv)
	case guest.OpOUT:
		i := ir.New(ir.OpOut)
		i.B, i.Imm, i.GIdx = vs, in.Imm, gi
		emit(i)

	default:
		if cond, jcc := in.Op.IsJcc(); jcc {
			lw.jcc(gi, in, cond, hasNext)
			return nil
		}
		return fmt.Errorf("xlate: cannot lower %s at %#x", in.Op.Name(), in.Addr)
	}
	return nil
}

// jcc lowers a conditional branch. If the trace continues, the followed
// direction is implicit and the other direction becomes a side exit; if the
// branch ends the trace, both directions exit.
func (lw *lowerer) jcc(gi int32, in guest.Insn, cond guest.Cond, hasNext bool) {
	taken := in.BranchTarget()
	fall := in.Next()
	if hasNext {
		followedTaken := lw.r.Insns[gi+1].Addr == taken
		e := ir.New(ir.OpExitIf)
		e.GIdx = gi
		if followedTaken {
			// Trace follows the taken side; exit when the condition fails.
			// Conditions pair even/odd, so XOR 1 negates.
			e.Cond = cond ^ 1
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: fall, Insns: int(gi) + 1})
		} else {
			e.Cond = cond
			e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: taken, Insns: int(gi) + 1})
		}
		lw.emit(e)
		return
	}
	e := ir.New(ir.OpExitIf)
	e.GIdx, e.Cond = gi, cond
	e.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: taken, Insns: int(gi) + 1})
	lw.emit(e)
	e2 := ir.New(ir.OpExit)
	e2.GIdx = gi
	e2.Exit = lw.r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: fall, Insns: int(gi) + 1})
	lw.emit(e2)
}
