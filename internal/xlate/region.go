package xlate

import (
	"errors"
	"fmt"

	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/mem"
)

// ErrUntranslatable reports that no translation can usefully be made at an
// address (the first instruction is a system instruction or undecodable).
// The runtime responds by interpreting that instruction forever (the
// "zero-instruction translation" of §3.2).
var ErrUntranslatable = errors.New("xlate: untranslatable at region entry")

// followBias is the branch bias beyond which the trace follows a
// conditional branch's dominant direction instead of ending.
const followBias = 0.7

// maxInsnFetch bounds one instruction fetch.
const maxInsnFetch = 16

// selectRegion grows a trace from entry: straight-line code, followed
// unconditional jumps, and the dominant side of strongly biased conditional
// branches (per the interpreter's branch profile). The trace ends at system
// instructions, indirect control flow, unbiased branches, a revisited
// address (loop closure), or the policy's instruction cap.
func selectRegion(bus *mem.Bus, prof *interp.Profile, entry uint32, pol Policy) ([]guest.Insn, error) {
	var insns []guest.Insn
	visits := make(map[uint32]int)
	unroll := pol.EffUnroll()
	pc := entry
	var buf [maxInsnFetch]byte

	for len(insns) < pol.EffMaxInsns() {
		if visits[pc] >= unroll {
			break // unroll budget spent: exit chains back around
		}
		n := bus.FetchBytes(pc, buf[:])
		if n == 0 {
			break
		}
		in, err := guest.Decode(buf[:n], pc)
		if err != nil {
			break
		}
		if f := bus.CheckFetch(pc, int(in.Len)); f != nil {
			break
		}
		switch in.Op {
		case guest.OpHLT, guest.OpINT, guest.OpIRET:
			// System instructions are left to the interpreter; the trace
			// ends just before them.
			if len(insns) == 0 {
				return nil, fmt.Errorf("%w: %s at %#x", ErrUntranslatable, in.Op.Name(), pc)
			}
			return insns, nil
		}
		visits[pc]++
		insns = append(insns, in)

		switch {
		case in.Op == guest.OpJMPrel:
			pc = in.BranchTarget()
		case in.Op == guest.OpJMPr || in.Op == guest.OpJMPm ||
			in.Op == guest.OpCALLrel || in.Op == guest.OpCALLr || in.Op == guest.OpRET:
			// Indirect or call/return flow ends the trace (the exit handles
			// the transfer).
			return insns, nil
		default:
			if _, jcc := in.Op.IsJcc(); jcc {
				bias := 0.5
				if prof != nil {
					if s, ok := prof.Branches[in.Addr]; ok {
						bias = s.Bias()
					}
				}
				switch {
				case bias >= followBias && visits[in.BranchTarget()] < unroll:
					pc = in.BranchTarget()
				case bias <= 1-followBias:
					pc = in.Next()
				default:
					return insns, nil
				}
			} else {
				pc = in.Next()
			}
		}
	}
	if len(insns) == 0 {
		return nil, fmt.Errorf("%w: no decodable instruction at %#x", ErrUntranslatable, entry)
	}
	return insns, nil
}
