package xlate

import (
	"fmt"
	"sort"

	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/ir"
	"cms/internal/vliw"
)

// RequestImage is the serializable form of a frozen Request. It carries the
// same canonical inputs Request.Key hashes — entry, trace, captured source
// ranges and bytes, policy, MMIO profile bits, host configuration, the
// compile flag, and the backend tag (omitted for vliw, so pre-risc images
// deserialize unchanged) — so Reify().Key() equals the original request's
// key and
// Reify().Translate() rebuilds a byte-identical Translation. This is how a
// snapshot records "the set of installed translations" without ever storing
// the artifacts themselves.
type RequestImage struct {
	Entry   uint32          `json:"entry"`
	Pol     Policy          `json:"pol"`
	Insns   []guest.Insn    `json:"insns"`
	Ranges  []ir.SrcRange   `json:"ranges"`
	Bytes   [][]byte        `json:"bytes"`
	MMIO    []uint32        `json:"mmio,omitempty"`
	Host    vliw.HostConfig `json:"host"`
	Compile bool            `json:"compile"`
	Backend string          `json:"backend,omitempty"`
}

// Image exports the request.
func (req *Request) Image() *RequestImage {
	im := &RequestImage{
		Entry:   req.Entry,
		Pol:     req.Pol,
		Insns:   append([]guest.Insn(nil), req.insns...),
		Ranges:  append([]ir.SrcRange(nil), req.ranges...),
		Bytes:   make([][]byte, len(req.bytes)),
		Host:    req.host,
		Compile: req.compile,
		Backend: req.backend,
	}
	for i, b := range req.bytes {
		im.Bytes[i] = append([]byte(nil), b...)
	}
	if req.prof != nil {
		for a := range req.prof.MMIOInsns {
			im.MMIO = append(im.MMIO, a)
		}
		sort.Slice(im.MMIO, func(i, j int) bool { return im.MMIO[i] < im.MMIO[j] })
	}
	return im
}

// Reify rebuilds a Request from its image. The result behaves exactly like
// the original: same Key, same Translate output.
func (im *RequestImage) Reify() (*Request, error) {
	if len(im.Bytes) != len(im.Ranges) {
		return nil, fmt.Errorf("xlate: request image has %d byte runs for %d ranges",
			len(im.Bytes), len(im.Ranges))
	}
	for i, r := range im.Ranges {
		if uint32(len(im.Bytes[i])) != r.Len {
			return nil, fmt.Errorf("xlate: request image range %d: %d bytes, want %d",
				i, len(im.Bytes[i]), r.Len)
		}
	}
	req := &Request{
		Entry:   im.Entry,
		Pol:     im.Pol,
		insns:   append([]guest.Insn(nil), im.Insns...),
		ranges:  append([]ir.SrcRange(nil), im.Ranges...),
		bytes:   make([][]byte, len(im.Bytes)),
		host:    im.Host,
		compile: im.Compile,
		backend: normBackend(im.Backend),
	}
	for i, b := range im.Bytes {
		req.bytes[i] = append([]byte(nil), b...)
	}
	mmio := make(map[uint32]bool, len(im.MMIO))
	for _, a := range im.MMIO {
		mmio[a] = true
	}
	req.prof = &interp.Profile{MMIOInsns: mmio}
	return req, nil
}
