// Package xlate is the dynamic binary translator: it selects hot guest
// regions from interpreter profiles, lowers them to IR, optimizes, allocates
// host registers, and list-schedules speculative VLIW code.
//
// Speculation policy is explicit. A fresh translation is aggressive: loads
// reorder across stores under alias-hardware protection (§3.5), potentially
// faulting operations hoist above branch exits (§3.2), and code pages are
// assumed immutable (§3.6). Each knob can be turned conservative, globally
// or per guest instruction; the CMS runtime accumulates these adjustments in
// response to recurring faults (adaptive retranslation).
package xlate

// Policy is the set of speculation decisions for one translation. The zero
// value is the most aggressive policy; helpers return progressively
// conservative variants. Policies are value types: copies are independent
// except for the shared per-address sets, which only ever grow.
type Policy struct {
	// MaxInsns caps the region length (0 means DefaultMaxInsns).
	MaxInsns int

	// Unroll is how many times the trace may revisit the same instruction
	// address (loop unrolling inside a region; 0 means DefaultUnroll, 1
	// disables unrolling). Large regions spanning several loop iterations
	// are what give the scheduler cross-iteration reordering freedom — the
	// paper's regions "may be fairly large ... and include up to 200 x86
	// instructions".
	Unroll int

	// NoReorderMem disables all load/store reordering (the Figure 2
	// experiment: "entirely suppressing memory reordering").
	NoReorderMem bool

	// NoAliasHW permits reordering only across provably disjoint
	// references, as a machine without alias hardware must (Figure 3).
	NoAliasHW bool

	// NoHoistLoads keeps potentially faulting operations below the branch
	// exits that precede them (no control speculation).
	NoHoistLoads bool

	// SelfCheck makes the translation verify its own source bytes before
	// any guest effect (§3.6.3).
	SelfCheck bool

	// Serialize lists guest instruction addresses whose memory operations
	// must execute at a committed boundary, in order — the adaptive
	// response to recurring MMIO speculation faults (§3.4).
	Serialize map[uint32]bool

	// NoReorder lists guest instruction addresses whose memory operations
	// stay in program order (but need no commit barrier).
	NoReorder map[uint32]bool

	// ImmLoad lists guest instruction addresses whose 32-bit immediate
	// field is loaded from the code stream at run time instead of being
	// baked into the translation — the stylized-SMC response (§3.6.4).
	ImmLoad map[uint32]bool
}

// DefaultMaxInsns is the paper's region cap ("up to 200 x86 instructions").
const DefaultMaxInsns = 200

// DefaultUnroll is the default revisit budget per instruction address.
const DefaultUnroll = 4

// EffUnroll returns the effective unroll factor.
func (p Policy) EffUnroll() int {
	if p.Unroll <= 0 {
		return DefaultUnroll
	}
	return p.Unroll
}

// EffMaxInsns returns the effective region cap.
func (p Policy) EffMaxInsns() int {
	if p.MaxInsns <= 0 {
		return DefaultMaxInsns
	}
	return p.MaxInsns
}

// WithSerialize returns p with addr added to the serialize set.
func (p Policy) WithSerialize(addr uint32) Policy {
	p.Serialize = addSet(p.Serialize, addr)
	return p
}

// WithNoReorder returns p with addr added to the in-order set.
func (p Policy) WithNoReorder(addr uint32) Policy {
	p.NoReorder = addSet(p.NoReorder, addr)
	return p
}

// WithImmLoad returns p with addr added to the stylized-immediate set.
func (p Policy) WithImmLoad(addr uint32) Policy {
	p.ImmLoad = addSet(p.ImmLoad, addr)
	return p
}

func addSet(s map[uint32]bool, addr uint32) map[uint32]bool {
	n := make(map[uint32]bool, len(s)+1)
	for k := range s {
		n[k] = true
	}
	n[addr] = true
	return n
}

// Merge returns the union of the conservativeness of p and q. The paper
// notes that CMS "keeps track of the policies used, so that if another
// problem arises requiring different conservative policies, CMS will add
// them to the existing ones to avoid bouncing between translations with
// incomparable policies".
func (p Policy) Merge(q Policy) Policy {
	out := p
	if q.MaxInsns > 0 && (out.MaxInsns == 0 || q.MaxInsns < out.MaxInsns) {
		out.MaxInsns = q.MaxInsns
	}
	if q.Unroll > 0 && (out.Unroll == 0 || q.Unroll < out.Unroll) {
		out.Unroll = q.Unroll
	}
	out.NoReorderMem = out.NoReorderMem || q.NoReorderMem
	out.NoAliasHW = out.NoAliasHW || q.NoAliasHW
	out.NoHoistLoads = out.NoHoistLoads || q.NoHoistLoads
	out.SelfCheck = out.SelfCheck || q.SelfCheck
	for a := range q.Serialize {
		out.Serialize = addSet(out.Serialize, a)
	}
	for a := range q.NoReorder {
		out.NoReorder = addSet(out.NoReorder, a)
	}
	for a := range q.ImmLoad {
		out.ImmLoad = addSet(out.ImmLoad, a)
	}
	return out
}
