package xlate

import (
	"fmt"
	"math/rand"
	"testing"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/ir"
	"cms/internal/vliw"
)

// miniEngine is a minimal dispatch loop sufficient to execute translations
// in translator tests: translate eagerly at every block head, fall back to
// single-step interpretation on faults and untranslatable code. The real
// engine with profiles, chaining, and adaptation lives in internal/cms.
type miniEngine struct {
	plat   *dev.Platform
	ip     *interp.Interp
	m      *vliw.Machine
	tr     *Translator
	pol    Policy
	cache  map[uint32]*Translation
	texecs uint64
	faults uint64
}

func newMini(t *testing.T, src string, pol Policy) *miniEngine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	ip := interp.New(plat.Bus)
	ip.CPU = interp.NewCPU(p.Entry())
	ip.CPU.Regs[guest.ESP] = 0xF0000
	e := &miniEngine{
		plat:  plat,
		ip:    ip,
		m:     vliw.NewMachine(plat.Bus),
		tr:    &Translator{Bus: plat.Bus},
		pol:   pol,
		cache: make(map[uint32]*Translation),
	}
	return e
}

// run executes until halt, mixing translation execution with interpretation.
func (e *miniEngine) run(t *testing.T, maxSteps int) {
	t.Helper()
	for steps := 0; steps < maxSteps; steps++ {
		if e.ip.CPU.Halted {
			return
		}
		tl, ok := e.cache[e.ip.CPU.EIP]
		if !ok {
			var err error
			tl, err = e.tr.Translate(e.ip.CPU.EIP, e.pol)
			if err != nil {
				tl = nil
			}
			e.cache[e.ip.CPU.EIP] = tl
		}
		if tl == nil {
			res := e.ip.Step()
			if res.Stop == interp.StopHalt {
				return
			}
			if res.Stop != interp.StopNone {
				t.Fatalf("interp stop: %+v", res)
			}
			continue
		}
		e.m.LoadGuest(&e.ip.CPU.Regs, e.ip.CPU.Flags, e.ip.CPU.EIP)
		out := e.m.Exec(tl.Code)
		e.m.StoreGuest(&e.ip.CPU.Regs, &e.ip.CPU.Flags)
		e.texecs++
		if out.Fault != vliw.FNone {
			if out.Fault == vliw.FBadCode {
				t.Fatalf("bad code at %#x: %v", e.ip.CPU.EIP, out.Err)
			}
			// Roll forward by interpreting one instruction from the
			// committed boundary.
			e.faults++
			e.ip.CPU.EIP = e.m.CommittedEIP
			res := e.ip.Step()
			if res.Stop == interp.StopHalt {
				return
			}
			if res.Stop != interp.StopNone {
				t.Fatalf("recovery interp stop: %+v", res)
			}
			continue
		}
		exit := tl.Exits[out.Exit]
		switch {
		case out.Indirect:
			e.ip.CPU.EIP = out.IndTarget
		case exit.Kind == ir.ExitJump || exit.Kind == ir.ExitInterp:
			e.ip.CPU.EIP = exit.Target
		default:
			t.Fatalf("unexpected exit kind %v", exit.Kind)
		}
	}
	t.Fatal("mini engine did not halt")
}

// reference runs the same program in the pure interpreter.
func reference(t *testing.T, src string) *interp.Interp {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	ip := interp.New(plat.Bus)
	ip.CPU = interp.NewCPU(p.Entry())
	ip.CPU.Regs[guest.ESP] = 0xF0000
	res, _ := ip.Run(2_000_000)
	if res.Stop != interp.StopHalt {
		t.Fatalf("reference run: %+v", res)
	}
	return ip
}

// checkSame compares translated and reference final state.
func checkSame(t *testing.T, src string, pol Policy) *miniEngine {
	t.Helper()
	ref := reference(t, src)
	e := newMini(t, src, pol)
	e.run(t, 1_000_000)
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		if e.ip.CPU.Regs[r] != ref.CPU.Regs[r] {
			t.Errorf("%s = %#x, reference %#x", r, e.ip.CPU.Regs[r], ref.CPU.Regs[r])
		}
	}
	if e.ip.CPU.Flags != ref.CPU.Flags {
		t.Errorf("flags = %#x, reference %#x", e.ip.CPU.Flags, ref.CPU.Flags)
	}
	return e
}

const sumLoop = `
.org 0x1000
	mov eax, 0
	mov ecx, 100
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`

func TestTranslateSumLoop(t *testing.T) {
	e := checkSame(t, sumLoop, Policy{})
	if e.ip.CPU.Regs[guest.EAX] != 5050 {
		t.Errorf("sum = %d", e.ip.CPU.Regs[guest.EAX])
	}
	if e.texecs == 0 {
		t.Error("no translations executed")
	}
}

func TestRegionSelection(t *testing.T) {
	p, err := asm.Assemble(sumLoop)
	if err != nil {
		t.Fatal(err)
	}
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)

	// Without profile, the Jcc is unbiased: the trace ends at it.
	insns, err := selectRegion(plat.Bus, nil, p.Org, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insns) != 5 {
		t.Fatalf("trace length %d, want 5 (through the jne)", len(insns))
	}
	// With a heavily taken profile, the branch is followed and the loop
	// unrolls up to the default revisit budget: 4 copies of the 3-insn body.
	prof := interp.NewProfile()
	prof.Branches[insns[4].Addr] = &interp.BranchStat{Taken: 99, NotTaken: 1}
	loopHead := insns[2].Addr
	insns2, err := selectRegion(plat.Bus, prof, loopHead, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(insns2) != 3*DefaultUnroll {
		t.Fatalf("loop trace length %d, want %d", len(insns2), 3*DefaultUnroll)
	}
	// Unroll 1 reproduces the single-iteration trace.
	insns1, err := selectRegion(plat.Bus, prof, loopHead, Policy{Unroll: 1})
	if err != nil || len(insns1) != 3 {
		t.Fatalf("unroll-1 trace length %d, err %v", len(insns1), err)
	}
	// The cap is honored.
	insns3, err := selectRegion(plat.Bus, nil, p.Org, Policy{MaxInsns: 2})
	if err != nil || len(insns3) != 2 {
		t.Fatalf("capped trace: %d insns, err %v", len(insns3), err)
	}
}

func TestRegionRejectsSystemEntry(t *testing.T) {
	p, _ := asm.Assemble(".org 0x1000\n hlt\n")
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	if _, err := selectRegion(plat.Bus, nil, 0x1000, Policy{}); err == nil {
		t.Fatal("hlt entry must be untranslatable")
	}
	tr := &Translator{Bus: plat.Bus}
	if _, err := tr.Translate(0x1000, Policy{}); err == nil {
		t.Fatal("Translate must fail on hlt entry")
	}
}

func TestMemoryProgram(t *testing.T) {
	checkSame(t, `
.org 0x1000
	mov ebx, 0x8000
	mov ecx, 16
fill:
	mov eax, ecx
	imul eax, ecx
	mov [ebx+ecx*4], eax
	dec ecx
	jne fill
	mov esi, [ebx+4]        ; 1
	add esi, [ebx+8]        ; +4
	add esi, [ebx+12]       ; +9
	mov edi, esi
	hlt
`, Policy{})
}

func TestCallRetProgram(t *testing.T) {
	checkSame(t, `
.org 0x1000
_start:
	mov eax, 3
	call square
	mov ebx, eax
	call square
	hlt
square:
	imul eax, eax
	ret
`, Policy{})
}

func TestDivAndFlags(t *testing.T) {
	checkSame(t, `
.org 0x1000
	mov eax, 1000
	mov edx, 0
	mov ebx, 7
	div ebx
	pushf
	pop esi
	mov ecx, eax
	shl ecx, 3
	sar ecx, 1
	neg edx
	hlt
`, Policy{})
}

func TestByteOpsAndStylizedCandidates(t *testing.T) {
	checkSame(t, `
.org 0x1000
	mov ebx, 0x9000
	mov eax, 0x11223344
	movb [ebx], eax
	movb [ebx+1], eax
	movb ecx, [ebx]
	not ecx
	and ecx, 0xff
	hlt
`, Policy{})
}

func TestAllPolicyVariantsAgree(t *testing.T) {
	prog := `
.org 0x1000
	mov ebx, 0x8000
	mov edx, 0x8100
	mov ecx, 50
loop:
	mov eax, [ebx]
	add eax, ecx
	mov [edx], eax
	mov esi, [ebx+4]
	add esi, esi
	mov [edx+4], esi
	dec ecx
	jne loop
	hlt
`
	pols := map[string]Policy{
		"aggressive": {},
		"noreorder":  {NoReorderMem: true},
		"noaliashw":  {NoAliasHW: true},
		"nohoist":    {NoHoistLoads: true},
		"selfcheck":  {SelfCheck: true},
		"small":      {MaxInsns: 3},
	}
	var mols = map[string]uint64{}
	for name, pol := range pols {
		e := checkSame(t, prog, pol)
		mols[name] = e.m.Mols
	}
	// Suppressing reordering must not be faster than aggressive scheduling.
	if mols["noreorder"] < mols["aggressive"] {
		t.Errorf("noreorder (%d mols) beat aggressive (%d)", mols["noreorder"], mols["aggressive"])
	}
	if mols["selfcheck"] <= mols["aggressive"] {
		t.Errorf("selfcheck (%d mols) not costlier than aggressive (%d)", mols["selfcheck"], mols["aggressive"])
	}
}

func TestAliasFaultRecovery(t *testing.T) {
	// ebx and edx alias at runtime; the translator cannot prove it, so the
	// aggressive schedule reorders the load over the store and the alias
	// hardware catches it.
	prog := `
.org 0x1000
	mov ebx, 0x8000
	mov edx, 0x8000        ; same address!
	mov ecx, 10
loop:
	mov eax, ecx
	mov [ebx], eax
	mov esi, [edx]         ; must see the store
	add edi, esi
	dec ecx
	jne loop
	hlt
`
	e := checkSame(t, prog, Policy{})
	if e.ip.CPU.Regs[guest.EDI] != 55 {
		t.Errorf("edi = %d, want 55", e.ip.CPU.Regs[guest.EDI])
	}
}

func TestMMIOSpecFaultRecovery(t *testing.T) {
	// Stores into the MMIO text buffer from translated code: the schedule
	// may reorder the load; the hardware faults and recovery interprets.
	prog := fmt.Sprintf(`
.org 0x1000
	mov ebx, 0x%x
	mov ecx, 8
loop:
	mov [ebx+ecx*4], ecx
	mov eax, [ebx+ecx*4]
	add esi, eax
	dec ecx
	jne loop
	hlt
`, dev.ConsoleMMIOBase)
	e := checkSame(t, prog, Policy{})
	if e.ip.CPU.Regs[guest.ESI] != 36 {
		t.Errorf("esi = %d, want 36", e.ip.CPU.Regs[guest.ESI])
	}
	// The reference interpreter wrote each cell once; the translated run
	// must not have duplicated or lost device writes... the final text
	// buffer must match.
	txt := e.plat.Console.Text()
	for c := uint32(1); c <= 8; c++ {
		if txt[c*4] != byte(c) {
			t.Errorf("text[%d] = %d, want %d", c*4, txt[c*4], c)
		}
	}
}

func TestPortIOInTranslation(t *testing.T) {
	prog := fmt.Sprintf(`
.org 0x1000
	mov ecx, 5
	mov eax, 'A'
loop:
	out 0x%x, eax
	inc eax
	dec ecx
	jne loop
	in ebx, 0x%x
	hlt
`, dev.ConsoleDataPort, dev.ConsoleStatusPort)
	e := checkSame(t, prog, Policy{})
	if got := e.plat.Console.OutputString(); got != "ABCDE" {
		t.Errorf("console = %q", got)
	}
	if e.ip.CPU.Regs[guest.EBX] != 1 {
		t.Error("in must read status")
	}
}

func TestSelfCheckDetectsModification(t *testing.T) {
	prog := `
.org 0x1000
	mov eax, 1
	add eax, 2
	hlt
`
	p, _ := asm.Assemble(prog)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	tl, err := tr.Translate(0x1000, Policy{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	m := vliw.NewMachine(plat.Bus)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
	out := m.Exec(tl.Code)
	if out.Fault != vliw.FNone || tl.Exits[out.Exit].Kind == ir.ExitSelfCheckFail {
		t.Fatalf("clean run: %+v", out)
	}
	// Patch the add's immediate: the self-check must catch it.
	plat.Bus.WriteRaw(0x1000+6+2, []byte{9}) // imm byte of "add eax, 2"
	m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
	out = m.Exec(tl.Code)
	if out.Fault != vliw.FNone || tl.Exits[out.Exit].Kind != ir.ExitSelfCheckFail {
		t.Fatalf("modified run: %+v (exit kind %v)", out, tl.Exits[out.Exit].Kind)
	}
	var fl uint32
	m.StoreGuest(&regs, &fl)
	if regs[guest.EAX] != 0 {
		t.Error("self-check fail must not commit guest effects")
	}
}

func TestSelfCheckGuardsOwnStores(t *testing.T) {
	// The program stores into its own code region (self-modifying). With
	// SelfCheck, the store must trip the alias entries guarding the checked
	// words.
	prog := `
.org 0x1000
	mov ebx, 0x1000
	mov [ebx+4], eax     ; writes into this very code region
	mov ecx, 1
	hlt
`
	p, _ := asm.Assemble(prog)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	tl, err := tr.Translate(0x1000, Policy{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	m := vliw.NewMachine(plat.Bus)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
	out := m.Exec(tl.Code)
	if out.Fault != vliw.FAlias {
		t.Fatalf("self-writing translation: %+v, want alias fault", out)
	}
}

func TestStylizedImmLoad(t *testing.T) {
	// An immediate that the program patches before re-running: with the
	// ImmLoad policy, the same translation computes with the new value.
	prog := `
.org 0x1000
	mov eax, 0
	add eax, 0x11111111
	hlt
`
	p, _ := asm.Assemble(prog)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	addAddr := uint32(0x1000 + 6)
	pol := Policy{}.WithImmLoad(addAddr)
	tl, err := tr.Translate(0x1000, pol)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() uint32 {
		m := vliw.NewMachine(plat.Bus)
		var regs [guest.NumRegs]uint32
		m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
		out := m.Exec(tl.Code)
		if out.Fault != vliw.FNone {
			t.Fatalf("%+v", out)
		}
		var fl uint32
		m.StoreGuest(&regs, &fl)
		return regs[guest.EAX]
	}
	if got := runOnce(); got != 0x11111111 {
		t.Fatalf("first run = %#x", got)
	}
	// Patch the immediate in guest memory; same translation, new value.
	plat.Bus.WriteRaw(addAddr+2, []byte{0x44, 0x33, 0x22, 0x99})
	if got := runOnce(); got != 0x99223344 {
		t.Fatalf("patched run = %#x", got)
	}
	// The mask excludes the immediate from source comparison.
	if !tl.SourceMatches(plat.Bus) {
		t.Error("mask must exempt the patched immediate")
	}
	// But patching the opcode is a real mismatch.
	plat.Bus.WriteRaw(0x1000, []byte{0x00})
	if tl.SourceMatches(plat.Bus) {
		t.Error("opcode patch must be detected")
	}
}

func TestPrologueDetectsChanges(t *testing.T) {
	prog := `
.org 0x1000
	mov eax, 7
	hlt
`
	p, _ := asm.Assemble(prog)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	tl, err := tr.Translate(0x1000, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	code, pass, fail, err := tl.Prologue()
	if err != nil {
		t.Fatal(err)
	}
	m := vliw.NewMachine(plat.Bus)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
	out := m.Exec(code)
	if out.Fault != vliw.FNone || out.Exit != pass {
		t.Fatalf("clean prologue: %+v (pass=%d fail=%d)", out, pass, fail)
	}
	plat.Bus.WriteRaw(0x1001, []byte{0xAA})
	m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
	out = m.Exec(code)
	if out.Fault != vliw.FNone || out.Exit != fail {
		t.Fatalf("dirty prologue: %+v", out)
	}
}

func TestTranslationMetadata(t *testing.T) {
	p, _ := asm.Assemble(sumLoop)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	tl, err := tr.Translate(0x1000, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.SrcRanges) != 1 || tl.SrcRanges[0].Addr != 0x1000 {
		t.Errorf("src ranges: %+v", tl.SrcRanges)
	}
	pages := tl.Pages()
	if len(pages) != 1 || pages[0] != 1 {
		t.Errorf("pages: %v", pages)
	}
	chunks := tl.Chunks()
	if chunks[1] == 0 {
		t.Error("chunk mask empty")
	}
	if !tl.Covers(0x1002) || tl.Covers(0x2000) {
		t.Error("Covers wrong")
	}
	if !tl.CoversRange(0x0FFF, 2) || tl.CoversRange(0x0F00, 4) {
		t.Error("CoversRange wrong")
	}
	if tl.CodeAtoms() == 0 || tl.CodeMolecules() == 0 || tl.GuestLen() != 5 {
		t.Error("size metadata wrong")
	}
}

func TestSelfCheckCodeGrowth(t *testing.T) {
	p, _ := asm.Assemble(sumLoop)
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	tr := &Translator{Bus: plat.Bus}
	plain, err := tr.Translate(0x1000, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := tr.Translate(0x1000, Policy{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if checked.CodeAtoms() <= plain.CodeAtoms() {
		t.Errorf("self-check did not grow code: %d vs %d atoms",
			checked.CodeAtoms(), plain.CodeAtoms())
	}
}

func TestPolicyMergeAndSets(t *testing.T) {
	a := Policy{NoReorderMem: true, MaxInsns: 50}
	b := Policy{SelfCheck: true, MaxInsns: 20}.WithSerialize(0x100).WithNoReorder(0x104).WithImmLoad(0x108)
	m := a.Merge(b)
	if !m.NoReorderMem || !m.SelfCheck || m.MaxInsns != 20 {
		t.Errorf("merge: %+v", m)
	}
	if !m.Serialize[0x100] || !m.NoReorder[0x104] || !m.ImmLoad[0x108] {
		t.Error("merge lost per-address sets")
	}
	// The originals are untouched (value semantics).
	if a.SelfCheck || b.NoReorderMem || len(a.Serialize) != 0 {
		t.Error("merge mutated inputs")
	}
	if (Policy{}).EffMaxInsns() != DefaultMaxInsns {
		t.Error("default cap wrong")
	}
}

// randProg emits a random but halting straight-line program over a data
// window, exercising the optimizer and scheduler broadly.
func randProg(r *rand.Rand) string {
	src := ".org 0x1000\n\tmov ebx, 0x8000\n\tmov esi, 0x8100\n"
	regs := []string{"eax", "ecx", "edx", "edi"}
	for i := 0; i < 40; i++ {
		a := regs[r.Intn(len(regs))]
		b := regs[r.Intn(len(regs))]
		switch r.Intn(16) {
		case 0:
			src += fmt.Sprintf("\tmov %s, %d\n", a, r.Intn(1<<16))
		case 1:
			src += fmt.Sprintf("\tadd %s, %s\n", a, b)
		case 2:
			src += fmt.Sprintf("\tsub %s, %d\n", a, r.Intn(1000))
		case 3:
			src += fmt.Sprintf("\txor %s, %s\n", a, b)
		case 4:
			src += fmt.Sprintf("\tmov [ebx+%d], %s\n", r.Intn(32)*4, a)
		case 5:
			src += fmt.Sprintf("\tmov %s, [ebx+%d]\n", a, r.Intn(32)*4)
		case 6:
			src += fmt.Sprintf("\tshl %s, %d\n", a, r.Intn(5))
		case 7:
			src += fmt.Sprintf("\timul %s, %s\n", a, b)
		case 8:
			src += fmt.Sprintf("\tinc %s\n", a)
		case 9:
			src += fmt.Sprintf("\tcmp %s, %s\n", a, b)
		case 10:
			src += fmt.Sprintf("\tmov [esi+%d], %s\n", r.Intn(8)*4, a)
		case 11:
			src += fmt.Sprintf("\tadd %s, [esi+%d]\n", a, r.Intn(8)*4)
		case 12:
			src += fmt.Sprintf("\tadc %s, %s\n", a, b)
		case 13:
			src += fmt.Sprintf("\tsbb %s, %d\n", a, r.Intn(100))
		case 14:
			src += fmt.Sprintf("\txchg %s, %s\n", a, b)
		case 15:
			src += fmt.Sprintf("\tmovsx %s, [ebx+%d]\n", a, r.Intn(64))
		}
	}
	src += "\thlt\n"
	return src
}

// Property: translated execution matches interpretation on random programs
// under every policy.
func TestRandomProgramEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	pols := []Policy{{}, {NoReorderMem: true}, {NoAliasHW: true}, {SelfCheck: true}, {MaxInsns: 5}}
	for trial := 0; trial < 30; trial++ {
		src := randProg(r)
		pol := pols[trial%len(pols)]
		ref := reference(t, src)
		e := newMini(t, src, pol)
		e.run(t, 100000)
		for reg := guest.Reg(0); reg < guest.NumRegs; reg++ {
			if e.ip.CPU.Regs[reg] != ref.CPU.Regs[reg] {
				t.Fatalf("trial %d (%+v): %s = %#x, want %#x\nprogram:\n%s",
					trial, pol, reg, e.ip.CPU.Regs[reg], ref.CPU.Regs[reg], src)
			}
		}
		if e.ip.CPU.Flags != ref.CPU.Flags {
			t.Fatalf("trial %d: flags %#x want %#x\n%s", trial, e.ip.CPU.Flags, ref.CPU.Flags, src)
		}
		// Data windows must agree too.
		got := e.plat.Bus.ReadRaw(0x8000, 0x200)
		want := func() []byte {
			p, _ := asm.Assemble(src)
			plat := dev.NewPlatform(1<<20, nil)
			plat.Bus.WriteRaw(p.Org, p.Image)
			ip := interp.New(plat.Bus)
			ip.CPU = interp.NewCPU(p.Entry())
			ip.CPU.Regs[guest.ESP] = 0xF0000
			ip.Run(2_000_000)
			return plat.Bus.ReadRaw(0x8000, 0x200)
		}()
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: memory[%#x] = %#x, want %#x", trial, 0x8000+i, got[i], want[i])
			}
		}
	}
}

// A region with more reorderable loads than alias-table entries must fall
// back to in-order scheduling for the excess, staying correct.
func TestAliasTableExhaustion(t *testing.T) {
	src := ".org 0x1000\n\tmov ebx, 0x8000\n\tmov edx, 0x8800\n\tmov ecx, 400\nloop:\n"
	// 20 store/load pairs per iteration; unroll 4 gives ~80 loads, well
	// past the 48 alias entries.
	for i := 0; i < 20; i++ {
		src += fmt.Sprintf("\tmov [ebx+%d], eax\n\tmov esi, [edx+%d]\n\tadd eax, esi\n", i*4, i*4)
	}
	src += "\tdec ecx\n\tjne loop\n\thlt\n"
	e := checkSame(t, src, Policy{})
	if e.texecs == 0 {
		t.Error("nothing translated")
	}
}
