package xlate

import (
	"testing"

	"cms/internal/guest"
	"cms/internal/ir"
)

// mk builds an instruction tersely for optimizer tests.
func mk(op ir.Op, dst, a, b ir.VReg, imm uint32) ir.Instr {
	i := ir.New(op)
	i.Dst, i.A, i.B, i.Imm = dst, a, b, imm
	return i
}

func countOps(code []ir.Instr, op ir.Op) int {
	n := 0
	for i := range code {
		if code[i].Op == op {
			n++
		}
	}
	return n
}

func TestDeadFlagElimDowngradesUnusedFlags(t *testing.T) {
	// Two CC adds; only the second one's flags reach the exit.
	r := &ir.Region{}
	exit := r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: 0x100, Insns: 1})
	add1 := mk(ir.OpAddCC, 20, 0, 1, 0)
	add1.FOut = 40
	add2 := mk(ir.OpAddCC, 21, 20, 1, 0)
	add2.FOut = 41
	br := ir.New(ir.OpExitIf)
	br.Cond, br.Exit, br.FIn = guest.CondE, exit, 41
	r.Code = []ir.Instr{add1, add2, br}

	deadFlagElim(r)
	if r.Code[0].Op != ir.OpAdd {
		t.Errorf("add1 not downgraded: %v", r.Code[0].Op)
	}
	if r.Code[1].Op != ir.OpAddCC {
		t.Errorf("add2 wrongly downgraded: %v", r.Code[1].Op)
	}
}

func TestDeadFlagElimRespectsCarryChains(t *testing.T) {
	// add.cc feeds adc.cc via FOut/FIn: the add's flags are live even
	// though no branch reads them.
	r := &ir.Region{}
	add := mk(ir.OpAddCC, 20, 0, 1, 0)
	add.FOut = 40
	adc := mk(ir.OpAdcCC, 21, 2, 3, 0)
	adc.FIn, adc.FOut = 40, 41
	exitI := ir.New(ir.OpExit)
	exitI.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 1})
	// Keep the adc's value observable through a store so DCE concerns
	// don't apply; deadFlagElim alone is under test.
	st := mk(ir.OpSt32, ir.NoVReg, 5, 21, 0)
	r.Code = []ir.Instr{add, adc, st, exitI}

	deadFlagElim(r)
	if r.Code[0].Op != ir.OpAddCC {
		t.Errorf("carry producer downgraded: %v", r.Code[0].Op)
	}
	// The adc's own flags are dead but adc has no plain form: kept.
	if r.Code[1].Op != ir.OpAdcCC {
		t.Errorf("adc changed: %v", r.Code[1].Op)
	}
}

func TestDeadFlagElimCascades(t *testing.T) {
	// dec.cc (partial, needs FIn) feeding a dead chain: once the dec is
	// downgraded, its producer's flags die too.
	r := &ir.Region{}
	add := mk(ir.OpAddCC, 20, 0, 1, 0)
	add.FOut = 40
	dec := mk(ir.OpDecCC, 21, 2, ir.NoVReg, 0)
	dec.FIn, dec.FOut = 40, 41
	exitI := ir.New(ir.OpExit)
	exitI.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 1})
	st := mk(ir.OpSt32, ir.NoVReg, 5, 21, 0)
	r.Code = []ir.Instr{add, dec, st, exitI}

	deadFlagElim(r)
	if r.Code[1].Op != ir.OpSub {
		t.Errorf("dec not downgraded: %v", r.Code[1].Op)
	}
	if r.Code[0].Op != ir.OpAdd {
		t.Errorf("cascade failed, add still CC: %v", r.Code[0].Op)
	}
}

func TestDeadFlagElimKeepsFixupSources(t *testing.T) {
	// A flag image referenced only by a side exit's fixups is live.
	r := &ir.Region{}
	exit := r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: 0x100, Insns: 1,
		Fixups: []ir.Fixup{{Guest: ir.VFlags, Src: 40}}})
	add := mk(ir.OpAddCC, 20, 0, 1, 0)
	add.FOut = 40
	br := ir.New(ir.OpExitIf)
	br.Cond, br.Exit, br.FIn = guest.CondE, exit, 40
	r.Code = []ir.Instr{add, br}

	deadFlagElim(r)
	if r.Code[0].Op != ir.OpAddCC {
		t.Error("fixup-referenced flag image was considered dead")
	}
}

func TestPropagateConstFold(t *testing.T) {
	r := &ir.Region{}
	r.Code = []ir.Instr{
		mk(ir.OpConst, 20, ir.NoVReg, ir.NoVReg, 6),
		mk(ir.OpConst, 21, ir.NoVReg, ir.NoVReg, 7),
		mk(ir.OpAdd, 22, 20, 21, 0),        // fold: 13
		mk(ir.OpShl, 23, 22, ir.NoVReg, 2), // fold: 52
	}
	propagate(r)
	if r.Code[2].Op != ir.OpConst || r.Code[2].Imm != 13 {
		t.Errorf("add not folded: %+v", r.Code[2])
	}
	if r.Code[3].Op != ir.OpConst || r.Code[3].Imm != 52 {
		t.Errorf("shl not folded: %+v", r.Code[3])
	}
}

func TestPropagateCopyAndImmediateAbsorption(t *testing.T) {
	r := &ir.Region{}
	mv := ir.New(ir.OpMov)
	mv.Dst, mv.A = 21, 20
	cst := mk(ir.OpConst, 22, ir.NoVReg, ir.NoVReg, 9)
	use := mk(ir.OpAdd, 23, 21, 22, 0)
	r.Code = []ir.Instr{mv, cst, use}
	propagate(r)
	if r.Code[2].A != 20 {
		t.Errorf("copy not propagated: A = v%d", r.Code[2].A)
	}
	if r.Code[2].B != ir.NoVReg || r.Code[2].Imm != 9 {
		t.Errorf("constant not absorbed: %+v", r.Code[2])
	}
}

func TestPropagateInvalidatesOnRedefinition(t *testing.T) {
	r := &ir.Region{}
	c1 := mk(ir.OpConst, 20, ir.NoVReg, ir.NoVReg, 1)
	mv := ir.New(ir.OpMov)
	mv.Dst, mv.A = 21, 20
	ld := mk(ir.OpLd32, 20, 5, ir.NoVReg, 0) // redefines v20
	use := mk(ir.OpAdd, 22, 21, 20, 0)
	r.Code = []ir.Instr{c1, mv, ld, use}
	propagate(r)
	// v21 is still a copy of the OLD v20, which was redefined: the use of
	// v21 must NOT be rewritten to v20.
	if r.Code[3].A != 21 {
		t.Errorf("stale copy propagated: A = v%d", r.Code[3].A)
	}
}

func TestCSEDedupsLoadsUntilStore(t *testing.T) {
	r := &ir.Region{}
	ld1 := mk(ir.OpLd32, 20, 5, ir.NoVReg, 8)
	ld2 := mk(ir.OpLd32, 21, 5, ir.NoVReg, 8) // same address, same epoch
	st := mk(ir.OpSt32, ir.NoVReg, 5, 20, 8)
	ld3 := mk(ir.OpLd32, 22, 5, ir.NoVReg, 8) // after store: fresh
	r.Code = []ir.Instr{ld1, ld2, st, ld3}
	cse(r)
	if r.Code[1].Op != ir.OpMov || r.Code[1].A != 20 {
		t.Errorf("duplicate load not CSEd: %+v", r.Code[1])
	}
	if r.Code[3].Op != ir.OpLd32 {
		t.Errorf("post-store load wrongly CSEd: %+v", r.Code[3])
	}
}

func TestDCEKeepsLoadsAndRemovesDeadALU(t *testing.T) {
	r := &ir.Region{}
	dead := mk(ir.OpAdd, 20, 0, 1, 0)        // never used
	ld := mk(ir.OpLd32, 21, 5, ir.NoVReg, 0) // dead value but faults matter
	exitI := ir.New(ir.OpExit)
	exitI.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 1})
	r.Code = []ir.Instr{dead, ld, exitI}
	dce(r)
	if countOps(r.Code, ir.OpAdd) != 0 {
		t.Error("dead add survived")
	}
	if countOps(r.Code, ir.OpLd32) != 1 {
		t.Error("load removed — its faults are architecturally visible")
	}
}

func TestDCEGuestRegsLiveAtExits(t *testing.T) {
	r := &ir.Region{}
	// Writes to a guest register (v0 = eax) must survive to the exit.
	c := mk(ir.OpConst, 0, ir.NoVReg, ir.NoVReg, 42)
	exitI := ir.New(ir.OpExit)
	exitI.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 1})
	r.Code = []ir.Instr{c, exitI}
	dce(r)
	if countOps(r.Code, ir.OpConst) != 1 {
		t.Error("guest register write removed")
	}
}

func TestRenameMakesGuestDefsSingleAssignment(t *testing.T) {
	// eax = eax+1; eax = eax+2; side exit; eax = eax+3; final exit.
	r := &ir.Region{}
	side := r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: 0x50, Insns: 1})
	fin := r.AddExit(ir.Exit{Kind: ir.ExitJump, Target: 0x60, Insns: 2})
	i1 := mk(ir.OpAddCC, 0, 0, ir.NoVReg, 1)
	i2 := mk(ir.OpAddCC, 0, 0, ir.NoVReg, 2)
	br := ir.New(ir.OpExitIf)
	br.Cond, br.Exit = guest.CondE, side
	i3 := mk(ir.OpAddCC, 0, 0, ir.NoVReg, 3)
	ex := ir.New(ir.OpExit)
	ex.Exit = fin
	r.Code = []ir.Instr{i1, i2, br, i3, ex}

	rename(r)

	// No instruction before the final materialization writes v0 directly.
	writesV0 := 0
	for idx := range r.Code {
		var defs []ir.VReg
		for _, d := range r.Code[idx].Defs(defs) {
			if d == 0 {
				writesV0++
			}
		}
	}
	if writesV0 != 1 {
		t.Errorf("eax written %d times in the body; want 1 (final materialize)", writesV0)
	}
	// The side exit carries fixups for eax and the flag image.
	fx := r.Exits[side].Fixups
	foundEAX, foundFlags := false, false
	for _, f := range fx {
		if f.Guest == 0 {
			foundEAX = true
		}
		if f.Guest == ir.VFlags {
			foundFlags = true
		}
	}
	if !foundEAX || !foundFlags {
		t.Errorf("side exit fixups incomplete: %+v", fx)
	}
	// The ExitIf reads the renamed flag image of the SECOND add.
	var brI *ir.Instr
	for idx := range r.Code {
		if r.Code[idx].Op == ir.OpExitIf {
			brI = &r.Code[idx]
		}
	}
	if brI == nil || brI.FIn == ir.NoVReg {
		t.Fatal("exit.if flag source not renamed")
	}
}

func TestRenameFullWritersCarryNoFlagIn(t *testing.T) {
	r := &ir.Region{}
	add := mk(ir.OpAddCC, 0, 0, 1, 0)          // full writer
	inc := mk(ir.OpIncCC, 20, 2, ir.NoVReg, 0) // partial: needs FIn
	shlv := mk(ir.OpShlCC, 1, 1, 3, 0)         // count in register: may be zero
	shli := mk(ir.OpShlCC, 2, 2, ir.NoVReg, 4) // nonzero imm count: full
	ex := ir.New(ir.OpExit)
	ex.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 1})
	r.Code = []ir.Instr{add, inc, shlv, shli, ex}
	rename(r)

	var got []ir.Instr
	for idx := range r.Code {
		switch r.Code[idx].Op {
		case ir.OpAddCC, ir.OpIncCC, ir.OpShlCC:
			got = append(got, r.Code[idx])
		}
	}
	if len(got) != 4 {
		t.Fatalf("found %d CC ops", len(got))
	}
	if got[0].FIn != ir.NoVReg {
		t.Error("full add.cc must not depend on the previous flag image")
	}
	if got[1].FIn == ir.NoVReg {
		t.Error("inc.cc must consume the previous flag image (CF preserve)")
	}
	if got[2].FIn == ir.NoVReg {
		t.Error("shl-by-register may shift by zero: needs the flag image")
	}
	if got[3].FIn != ir.NoVReg {
		t.Error("shl by nonzero immediate is a full writer")
	}
}

func TestRenameSerializeBoundaryMaterializes(t *testing.T) {
	r := &ir.Region{}
	add := mk(ir.OpAddCC, 0, 0, 1, 0)
	bnd := ir.New(ir.OpBoundary)
	bnd.Serialize = true
	in := ir.New(ir.OpIn)
	in.Dst, in.Imm, in.Serialize = 20, 0x40, true
	ex := ir.New(ir.OpExit)
	ex.Exit = r.AddExit(ir.Exit{Kind: ir.ExitJump, Insns: 2})
	r.Code = []ir.Instr{add, bnd, in, ex}
	rename(r)

	// Before the serialize boundary there must be materialization copies
	// into v0 and VFlags.
	bndIdx := -1
	for idx := range r.Code {
		if r.Code[idx].Op == ir.OpBoundary {
			bndIdx = idx
		}
	}
	sawEAX, sawFlags := false, false
	for idx := 0; idx < bndIdx; idx++ {
		if r.Code[idx].Op == ir.OpMov {
			if r.Code[idx].Dst == 0 {
				sawEAX = true
			}
			if r.Code[idx].Dst == ir.VFlags {
				sawFlags = true
			}
		}
	}
	if !sawEAX || !sawFlags {
		t.Errorf("serialize boundary not materialized (eax %v, flags %v)", sawEAX, sawFlags)
	}
}
