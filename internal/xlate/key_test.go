package xlate

import (
	"testing"

	"cms/internal/asm"
	"cms/internal/interp"
	"cms/internal/mem"
)

// keyTestTranslator assembles a small program and returns a translator over
// a bus holding it.
func keyTestTranslator(t *testing.T, src string) (*Translator, uint32) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	bus := mem.NewBus(1 << 20)
	bus.WriteRaw(prog.Org, prog.Image)
	return &Translator{Bus: bus, Prof: interp.NewProfile()}, prog.Entry()
}

const keyTestSrc = `
.org 0x1000
_start:
	mov ecx, 10
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`

func TestKeyDeterministic(t *testing.T) {
	tr, entry := keyTestTranslator(t, keyTestSrc)
	r1, err := tr.Prepare(entry, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := tr.Prepare(entry, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key() != r2.Key() {
		t.Error("identical requests must hash identically")
	}
	if r1.Key() != r1.Key() {
		t.Error("Key must be stable across calls")
	}
}

func TestKeyCoversInputs(t *testing.T) {
	tr, entry := keyTestTranslator(t, keyTestSrc)
	base, err := tr.Prepare(entry, Policy{})
	if err != nil {
		t.Fatal(err)
	}

	// Policy scalar knobs and per-address sets must reach the hash.
	for name, pol := range map[string]Policy{
		"noreorder": {NoReorderMem: true},
		"selfcheck": {SelfCheck: true},
		"maxinsns":  {MaxInsns: 8},
		"serialize": (Policy{}).WithSerialize(entry),
		"immload":   (Policy{}).WithImmLoad(entry),
	} {
		r, err := tr.Prepare(entry, pol)
		if err != nil {
			t.Fatal(err)
		}
		if r.Key() == base.Key() {
			t.Errorf("policy %s did not change the key", name)
		}
	}

	// Source bytes must reach the hash: change an immediate and re-prepare.
	tr2, entry2 := keyTestTranslator(t, `
.org 0x1000
_start:
	mov ecx, 11
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`)
	r2, err := tr2.Prepare(entry2, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Key() == base.Key() {
		t.Error("differing source bytes did not change the key")
	}

	// MMIO profile bits must reach the hash.
	tr3, entry3 := keyTestTranslator(t, keyTestSrc)
	tr3.Prof.MMIOInsns[entry3] = true
	r3, err := tr3.Prepare(entry3, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if r3.Key() == base.Key() {
		t.Error("MMIO profile bit did not change the key")
	}
}

// TestKeyedTranslationsIdentical is the sharing contract: equal keys must
// yield translations with identical code, so a farm may serve one VM's
// translation to another.
func TestKeyedTranslationsIdentical(t *testing.T) {
	trA, entryA := keyTestTranslator(t, keyTestSrc)
	trB, entryB := keyTestTranslator(t, keyTestSrc)
	trA.CompileBackend = true
	trB.CompileBackend = true
	ra, err := trA.Prepare(entryA, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := trB.Prepare(entryB, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if ra.Key() != rb.Key() {
		t.Fatal("same program in two VMs must hash identically")
	}
	ta, err := ra.Translate()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := rb.Translate()
	if err != nil {
		t.Fatal(err)
	}
	if ta.CodeAtoms() != tb.CodeAtoms() || ta.CodeMolecules() != tb.CodeMolecules() ||
		len(ta.Insns) != len(tb.Insns) || len(ta.Exits) != len(tb.Exits) {
		t.Errorf("equal keys produced different translations: %d/%d atoms, %d/%d mols",
			ta.CodeAtoms(), tb.CodeAtoms(), ta.CodeMolecules(), tb.CodeMolecules())
	}
}

func TestCloneIsolatesInstallState(t *testing.T) {
	tr, entry := keyTestTranslator(t, keyTestSrc)
	tr.CompileBackend = true
	req, err := tr.Prepare(entry, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	art, err := req.Translate()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := art.Clone(), art.Clone()
	if c1.Code != art.Code || c1.Compiled != art.Compiled {
		t.Error("clone must share the immutable build products")
	}
	// A clone building its prologue must not touch the artifact or siblings.
	if _, _, _, err := c1.Prologue(); err != nil {
		t.Fatal(err)
	}
	if art.prologue != nil || c2.prologue != nil {
		t.Error("prologue build leaked across clones")
	}
	// Teardown nils Compiled on the clone only.
	c1.Compiled = nil
	if art.Compiled == nil || c2.Compiled == nil {
		t.Error("clone teardown mutated the shared artifact")
	}
}
