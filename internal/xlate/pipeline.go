package xlate

import (
	"fmt"
	"sync"
)

// Pipeline is the concurrent translation worker pool. The engine freezes a
// Request on its own thread (Translator.Prepare), submits it, and keeps the
// interpreter retiring guest instructions while workers run the translation
// backend; the finished translation is collected later — deterministically,
// at a simulated due time — via PipeRequest.Wait.
//
// Determinism contract: the pool affects WHEN (in wall-clock) a translation
// becomes available, never WHAT it contains — Request.Translate is a pure
// function of the frozen request — and the engine alone decides when to
// observe the result. Simulated metrics therefore do not depend on the
// worker count.
type Pipeline struct {
	submit chan *PipeRequest
	do     TranslateFunc
	wg     sync.WaitGroup
}

// PipeRequest is one in-flight translation.
type PipeRequest struct {
	Req *Request
	res chan pipeResult
}

type pipeResult struct {
	t   *Translation
	err error
}

// TranslateFunc runs the translation backend for one frozen request. The
// default is Request.Translate; a farm substitutes a content-addressed
// shared store's lookup-or-translate so identical regions across VMs are
// translated once. Any substitute must remain a pure function of the
// request's content (equal keys → byte-identical translations), or the
// engine's determinism contract breaks.
type TranslateFunc func(*Request) (*Translation, error)

// NewPipeline starts a pool of workers with a submit queue of the given
// depth. The queue never applies backpressure to the engine: the engine
// bounds its in-flight count to depth itself, so sends always find space.
// A nil do means Request.Translate.
func NewPipeline(workers, depth int, do TranslateFunc) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	if do == nil {
		do = func(req *Request) (*Translation, error) { return req.Translate() }
	}
	p := &Pipeline{submit: make(chan *PipeRequest, depth), do: do}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for pr := range p.submit {
		t, err := p.run(pr.Req)
		pr.res <- pipeResult{t: t, err: err}
	}
}

// run executes the backend for one request, converting a backend panic into
// an error instead of killing the process: a worker goroutine has no caller
// to recover it, so without this a single bad translation would take down
// every VM in the farm. The engine surfaces the error through its normal
// failed-translation path.
func (p *Pipeline) run(req *Request) (t *Translation, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("xlate: translation backend panicked at %#x: %v", req.Entry, r)
		}
	}()
	return p.do(req)
}

// Submit hands a frozen request to the pool. The caller must keep its
// in-flight count within the pool's depth; Submit panics on overflow rather
// than block the simulation.
func (p *Pipeline) Submit(req *Request) *PipeRequest {
	pr := &PipeRequest{Req: req, res: make(chan pipeResult, 1)}
	select {
	case p.submit <- pr:
		return pr
	default:
		panic("xlate: pipeline submit queue overflow (engine exceeded depth)")
	}
}

// Wait blocks until the request's translation is finished and returns it.
func (pr *PipeRequest) Wait() (*Translation, error) {
	r := <-pr.res
	return r.t, r.err
}

// Stop shuts the pool down, waiting for in-flight work to finish. Results
// of unobserved requests remain available via Wait (the result channel is
// buffered); callers that stop mid-run simply discard them.
func (p *Pipeline) Stop() {
	close(p.submit)
	p.wg.Wait()
}
