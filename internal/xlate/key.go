package xlate

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sort"
)

// Key is the content hash of a frozen translation request: two requests with
// equal keys produce byte-identical Translations, because the backend is a
// pure function of the request and the key covers every input it reads. Keys
// make translation work shareable across independent guest VMs — the same
// hot region in two VMs hashes identically, so a farm translates it once.
type Key [sha256.Size]byte

// String renders a short prefix of the key as hex (for logs and tooling).
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// keyHasher wraps a hash with fixed-endian integer writes.
type keyHasher struct {
	h hash.Hash
	b [8]byte
}

func (kh *keyHasher) u32(v uint32) {
	binary.LittleEndian.PutUint32(kh.b[:4], v)
	kh.h.Write(kh.b[:4])
}

func (kh *keyHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(kh.b[:], v)
	kh.h.Write(kh.b[:])
}

func (kh *keyHasher) addrSet(set map[uint32]bool) {
	addrs := make([]uint32, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	kh.u64(uint64(len(addrs)))
	for _, a := range addrs {
		kh.u32(a)
	}
}

// Key computes the request's content hash. It covers, in order:
//
//   - the entry address and the selected trace (each instruction's address —
//     region selection consults the live branch profile, so two VMs with
//     different profiles can select different traces over identical bytes;
//     pinning the address sequence pins the trace, and decode from the
//     captured bytes is deterministic),
//   - the captured source ranges and their bytes,
//   - the speculation policy, canonically encoded (per-address sets sorted:
//     map iteration order must never reach the hash),
//   - the MMIO profile bits of the trace's addresses,
//   - the host microarchitecture and the compile-backend flag,
//   - the code-gen backend tag. Only a non-vliw backend writes bytes, so
//     vliw keys are identical to pre-backend-tag keys — existing snapshots
//     and stores stay addressable — while risc-built artifacts can never
//     dedup onto vliw ones (or vice versa) in a mixed-backend farm.
//
// Anything not covered here must never influence Request.Translate.
func (req *Request) Key() Key {
	kh := &keyHasher{h: sha256.New()}

	kh.u32(req.Entry)

	kh.u64(uint64(len(req.insns)))
	for _, in := range req.insns {
		kh.u32(in.Addr)
	}

	kh.u64(uint64(len(req.ranges)))
	for ri, r := range req.ranges {
		kh.u32(r.Addr)
		kh.u32(r.Len)
		kh.h.Write(req.bytes[ri])
	}

	p := req.Pol
	kh.u64(uint64(p.MaxInsns))
	kh.u64(uint64(p.Unroll))
	var flags uint32
	if p.NoReorderMem {
		flags |= 1
	}
	if p.NoAliasHW {
		flags |= 2
	}
	if p.NoHoistLoads {
		flags |= 4
	}
	if p.SelfCheck {
		flags |= 8
	}
	kh.u32(flags)
	kh.addrSet(p.Serialize)
	kh.addrSet(p.NoReorder)
	kh.addrSet(p.ImmLoad)

	if req.prof != nil {
		kh.addrSet(req.prof.MMIOInsns)
	} else {
		kh.u64(0)
	}

	host := req.host
	kh.u64(uint64(len(host.Name)))
	kh.h.Write([]byte(host.Name))
	kh.u64(uint64(host.Width))
	kh.u64(uint64(host.ALUs))
	kh.u64(uint64(host.MemUnits))
	kh.u64(uint64(host.MediaUnits))
	kh.u64(uint64(host.BranchUnits))
	kh.u64(uint64(host.LoadLatency))
	kh.u64(uint64(host.MulLatency))
	kh.u64(uint64(host.DivLatency))

	if req.compile {
		kh.u32(1)
	} else {
		kh.u32(0)
	}

	if req.backend != "" {
		kh.h.Write([]byte("backend:" + req.backend))
	}

	var k Key
	kh.h.Sum(k[:0])
	return k
}
