// Package asm assembles g86 machine code. It offers two front ends over the
// same core: Builder, a programmatic assembler used by the workload
// generators and tests, and Assemble, a two-pass text assembler used by
// cmd/g86asm.
package asm

import (
	"fmt"

	"cms/internal/guest"
)

// Mem builds a [base] operand.
func Mem(base guest.Reg) guest.MemOperand {
	return guest.MemOperand{HasBase: true, Base: base}
}

// MemD builds a [base+disp] operand.
func MemD(base guest.Reg, disp uint32) guest.MemOperand {
	return guest.MemOperand{HasBase: true, Base: base, Disp: disp}
}

// MemIdx builds a [base+index*scale+disp] operand; scale must be 1, 2, 4 or 8.
func MemIdx(base, index guest.Reg, scale uint8, disp uint32) guest.MemOperand {
	var lg uint8
	switch scale {
	case 1:
		lg = 0
	case 2:
		lg = 1
	case 4:
		lg = 2
	case 8:
		lg = 3
	default:
		panic("asm: scale must be 1, 2, 4, or 8")
	}
	return guest.MemOperand{HasBase: true, Base: base, HasIndex: true, Index: index, ScaleLog: lg, Disp: disp}
}

// Abs builds an absolute [disp] operand.
func Abs(disp uint32) guest.MemOperand { return guest.MemOperand{Disp: disp} }

type fixup struct {
	off    uint32 // offset in buf of the 32-bit field to patch
	label  string
	rel    bool   // patch as rel32 relative to insnEnd
	end    uint32 // address just past the instruction (for rel32)
	addend uint32 // added to the resolved label address
	srcLn  int    // text-assembler line for error reporting
}

// Builder assembles instructions at increasing addresses starting at an
// origin. Forward references to labels are resolved by Assemble.
type Builder struct {
	org    uint32
	buf    []byte
	labels map[string]uint32
	fixups []fixup
	errs   []error

	// lastOp/lastLen describe the most recently emitted instruction, so the
	// text assembler can locate operand fields for label fixups.
	lastOp  guest.Op
	lastLen uint32
}

// NewBuilder returns a Builder whose first instruction lands at org.
func NewBuilder(org uint32) *Builder {
	return &Builder{org: org, labels: make(map[string]uint32)}
}

// Origin returns the load address of the image.
func (b *Builder) Origin() uint32 { return b.org }

// Addr returns the address of the next byte to be emitted.
func (b *Builder) Addr() uint32 { return b.org + uint32(len(b.buf)) }

// Label defines name at the current address.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = b.Addr()
	return b
}

// LabelAddr returns the address of a defined label; it fails the final
// Assemble if the label is never defined.
func (b *Builder) LabelAddr(name string) uint32 {
	if a, ok := b.labels[name]; ok {
		return a
	}
	b.errs = append(b.errs, fmt.Errorf("asm: LabelAddr of undefined label %q", name))
	return 0
}

// Emit appends one instruction.
func (b *Builder) Emit(in guest.Insn) *Builder {
	b.buf = guest.Encode(b.buf, in)
	b.lastOp, b.lastLen = in.Op, guest.EncodedLen(in.Op)
	return b
}

// emitRel appends a rel32 control transfer to a label.
func (b *Builder) emitRel(op guest.Op, label string) *Builder {
	start := uint32(len(b.buf))
	b.buf = guest.Encode(b.buf, guest.Insn{Op: op})
	// The rel32 immediate is the last 4 bytes of the encoding.
	b.fixups = append(b.fixups, fixup{
		off:   uint32(len(b.buf)) - 4,
		label: label,
		rel:   true,
		end:   b.org + uint32(len(b.buf)),
	})
	_ = start
	return b
}

// Bytes appends raw data bytes.
func (b *Builder) Bytes(data ...byte) *Builder {
	b.buf = append(b.buf, data...)
	return b
}

// D32 appends a 32-bit little-endian data word.
func (b *Builder) D32(v uint32) *Builder {
	b.buf = append(b.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	return b
}

// D32Label appends a 32-bit word holding the address of a label (an
// absolute pointer, e.g. an IVT entry or jump-table slot).
func (b *Builder) D32Label(label string) *Builder {
	b.fixups = append(b.fixups, fixup{off: uint32(len(b.buf)), label: label})
	return b.D32(0)
}

// Space appends n zero bytes.
func (b *Builder) Space(n int) *Builder {
	b.buf = append(b.buf, make([]byte, n)...)
	return b
}

// Align pads with NOP-encoding zero... pads with 0x00 (OpNOP) to an n-byte
// boundary of the *address* (not buffer offset).
func (b *Builder) Align(n uint32) *Builder {
	for b.Addr()%n != 0 {
		b.buf = append(b.buf, byte(guest.OpNOP))
	}
	return b
}

// Assemble resolves all fixups and returns the image. The image loads at
// Origin().
func (b *Builder) Assemble() ([]byte, error) {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			where := ""
			if f.srcLn > 0 {
				where = fmt.Sprintf(" (line %d)", f.srcLn)
			}
			return nil, fmt.Errorf("asm: undefined label %q%s", f.label, where)
		}
		v := target + f.addend
		if f.rel {
			v = target - f.end
		}
		b.buf[f.off] = byte(v)
		b.buf[f.off+1] = byte(v >> 8)
		b.buf[f.off+2] = byte(v >> 16)
		b.buf[f.off+3] = byte(v >> 24)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out, nil
}

// MustAssemble is Assemble that panics on error, for tests and generators
// whose input is program-controlled.
func (b *Builder) MustAssemble() []byte {
	img, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return img
}

// --- Convenience emitters ----------------------------------------------------

// Nop emits nop.
func (b *Builder) Nop() *Builder { return b.Emit(guest.Insn{Op: guest.OpNOP}) }

// Hlt emits hlt.
func (b *Builder) Hlt() *Builder { return b.Emit(guest.Insn{Op: guest.OpHLT}) }

// Cli emits cli.
func (b *Builder) Cli() *Builder { return b.Emit(guest.Insn{Op: guest.OpCLI}) }

// Sti emits sti.
func (b *Builder) Sti() *Builder { return b.Emit(guest.Insn{Op: guest.OpSTI}) }

// MovRR emits mov dst, src.
func (b *Builder) MovRR(d, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVrr, Dst: d, Src: s})
}

// MovRI emits mov dst, imm32.
func (b *Builder) MovRI(d guest.Reg, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVri, Dst: d, Imm: imm})
}

// MovRILabel emits mov dst, <address of label>.
func (b *Builder) MovRILabel(d guest.Reg, label string) *Builder {
	b.Emit(guest.Insn{Op: guest.OpMOVri, Dst: d})
	b.fixups = append(b.fixups, fixup{off: uint32(len(b.buf)) - 4, label: label})
	return b
}

// MovRM emits mov dst, [mem].
func (b *Builder) MovRM(d guest.Reg, m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVrm, Dst: d, Mem: m})
}

// MovMR emits mov [mem], src.
func (b *Builder) MovMR(m guest.MemOperand, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVmr, Mem: m, Src: s})
}

// MovMI emits mov [mem], imm32.
func (b *Builder) MovMI(m guest.MemOperand, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVmi, Mem: m, Imm: imm})
}

// MovBRM emits movb dst, [mem] (zero-extending byte load).
func (b *Builder) MovBRM(d guest.Reg, m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVBrm, Dst: d, Mem: m})
}

// MovBMR emits movb [mem], src (byte store).
func (b *Builder) MovBMR(m guest.MemOperand, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpMOVBmr, Mem: m, Src: s})
}

// Lea emits lea dst, [mem].
func (b *Builder) Lea(d guest.Reg, m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpLEA, Dst: d, Mem: m})
}

func aluBase(name string) guest.Op {
	switch name {
	case "add":
		return guest.OpADDrr
	case "sub":
		return guest.OpSUBrr
	case "and":
		return guest.OpANDrr
	case "or":
		return guest.OpORrr
	case "xor":
		return guest.OpXORrr
	}
	panic("asm: unknown alu " + name)
}

// AluRR emits <name> dst, src for add/sub/and/or/xor.
func (b *Builder) AluRR(name string, d, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: aluBase(name), Dst: d, Src: s})
}

// AluRI emits <name> dst, imm32.
func (b *Builder) AluRI(name string, d guest.Reg, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: aluBase(name) + 1, Dst: d, Imm: imm})
}

// AluRM emits <name> dst, [mem].
func (b *Builder) AluRM(name string, d guest.Reg, m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: aluBase(name) + 2, Dst: d, Mem: m})
}

// AluMR emits <name> [mem], src (read-modify-write).
func (b *Builder) AluMR(name string, m guest.MemOperand, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: aluBase(name) + 3, Mem: m, Src: s})
}

// AddRR emits add dst, src.
func (b *Builder) AddRR(d, s guest.Reg) *Builder { return b.AluRR("add", d, s) }

// AddRI emits add dst, imm32.
func (b *Builder) AddRI(d guest.Reg, imm uint32) *Builder { return b.AluRI("add", d, imm) }

// SubRR emits sub dst, src.
func (b *Builder) SubRR(d, s guest.Reg) *Builder { return b.AluRR("sub", d, s) }

// SubRI emits sub dst, imm32.
func (b *Builder) SubRI(d guest.Reg, imm uint32) *Builder { return b.AluRI("sub", d, imm) }

// AndRI emits and dst, imm32.
func (b *Builder) AndRI(d guest.Reg, imm uint32) *Builder { return b.AluRI("and", d, imm) }

// XorRR emits xor dst, src.
func (b *Builder) XorRR(d, s guest.Reg) *Builder { return b.AluRR("xor", d, s) }

// OrRR emits or dst, src.
func (b *Builder) OrRR(d, s guest.Reg) *Builder { return b.AluRR("or", d, s) }

// CmpRR emits cmp a, b.
func (b *Builder) CmpRR(a, c guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpCMPrr, Dst: a, Src: c})
}

// CmpRI emits cmp a, imm32.
func (b *Builder) CmpRI(a guest.Reg, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpCMPri, Dst: a, Imm: imm})
}

// CmpRM emits cmp a, [mem].
func (b *Builder) CmpRM(a guest.Reg, m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpCMPrm, Dst: a, Mem: m})
}

// CmpMI emits cmp [mem], imm32.
func (b *Builder) CmpMI(m guest.MemOperand, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpCMPmi, Mem: m, Imm: imm})
}

// TestRR emits test a, b.
func (b *Builder) TestRR(a, c guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpTESTrr, Dst: a, Src: c})
}

// Inc emits inc r.
func (b *Builder) Inc(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpINC, Dst: r}) }

// Dec emits dec r.
func (b *Builder) Dec(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpDEC, Dst: r}) }

// Neg emits neg r.
func (b *Builder) Neg(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpNEG, Dst: r}) }

// Not emits not r.
func (b *Builder) Not(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpNOT, Dst: r}) }

// ShlRI emits shl r, imm.
func (b *Builder) ShlRI(r guest.Reg, n uint8) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpSHLri, Dst: r, Imm: uint32(n)})
}

// ShrRI emits shr r, imm.
func (b *Builder) ShrRI(r guest.Reg, n uint8) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpSHRri, Dst: r, Imm: uint32(n)})
}

// SarRI emits sar r, imm.
func (b *Builder) SarRI(r guest.Reg, n uint8) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpSARri, Dst: r, Imm: uint32(n)})
}

// ShlCL emits shl r, cl.
func (b *Builder) ShlCL(r guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpSHLrc, Dst: r})
}

// ImulRR emits imul dst, src.
func (b *Builder) ImulRR(d, s guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpIMULrr, Dst: d, Src: s})
}

// ImulRI emits imul dst, imm32.
func (b *Builder) ImulRI(d guest.Reg, imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpIMULri, Dst: d, Imm: imm})
}

// Mul emits mul r.
func (b *Builder) Mul(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpMUL, Dst: r}) }

// Div emits div r.
func (b *Builder) Div(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpDIV, Dst: r}) }

// Idiv emits idiv r.
func (b *Builder) Idiv(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpIDIV, Dst: r}) }

// Push emits push r.
func (b *Builder) Push(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpPUSHr, Dst: r}) }

// PushI emits push imm32.
func (b *Builder) PushI(imm uint32) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpPUSHi, Imm: imm})
}

// Pop emits pop r.
func (b *Builder) Pop(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpPOPr, Dst: r}) }

// Pushf emits pushf.
func (b *Builder) Pushf() *Builder { return b.Emit(guest.Insn{Op: guest.OpPUSHF}) }

// Popf emits popf.
func (b *Builder) Popf() *Builder { return b.Emit(guest.Insn{Op: guest.OpPOPF}) }

// Jmp emits jmp label.
func (b *Builder) Jmp(label string) *Builder { return b.emitRel(guest.OpJMPrel, label) }

// JmpR emits jmp r.
func (b *Builder) JmpR(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpJMPr, Dst: r}) }

// JmpM emits jmp [mem].
func (b *Builder) JmpM(m guest.MemOperand) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpJMPm, Mem: m})
}

// Jcc emits j<cond> label.
func (b *Builder) Jcc(c guest.Cond, label string) *Builder {
	return b.emitRel(guest.OpJccBase+guest.Op(c), label)
}

// Call emits call label.
func (b *Builder) Call(label string) *Builder { return b.emitRel(guest.OpCALLrel, label) }

// CallR emits call r.
func (b *Builder) CallR(r guest.Reg) *Builder { return b.Emit(guest.Insn{Op: guest.OpCALLr, Dst: r}) }

// Ret emits ret.
func (b *Builder) Ret() *Builder { return b.Emit(guest.Insn{Op: guest.OpRET}) }

// In emits in r, port.
func (b *Builder) In(r guest.Reg, port uint16) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpIN, Dst: r, Imm: uint32(port)})
}

// Out emits out port, r.
func (b *Builder) Out(port uint16, r guest.Reg) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpOUT, Src: r, Imm: uint32(port)})
}

// Int emits int n.
func (b *Builder) Int(vec uint8) *Builder {
	return b.Emit(guest.Insn{Op: guest.OpINT, Imm: uint32(vec)})
}

// Iret emits iret.
func (b *Builder) Iret() *Builder { return b.Emit(guest.Insn{Op: guest.OpIRET}) }
