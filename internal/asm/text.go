package asm

import (
	"fmt"
	"strconv"
	"strings"

	"cms/internal/guest"
)

// Program is the result of assembling a text program.
type Program struct {
	Org   uint32
	Image []byte
	// Labels maps each defined label to its address.
	Labels map[string]uint32
}

// Entry returns the program's entry point: the "_start" label if defined,
// else the origin.
func (p *Program) Entry() uint32 {
	if a, ok := p.Labels["_start"]; ok {
		return a
	}
	return p.Org
}

// operand is one parsed operand.
type operand struct {
	kind  okind
	reg   guest.Reg
	imm   uint32
	label string
	mem   guest.MemOperand
	// memLabel, when non-empty, is a label whose address is added to the
	// memory operand's displacement at fixup time (e.g. "[table+esi*4]").
	memLabel string
	isCL     bool // the operand was literally "cl" (for shift-by-CL forms)
}

type okind uint8

const (
	oReg okind = iota
	oImm
	oLabel
	oMem
)

// Assemble assembles g86 text. Supported syntax:
//
//	; comment            # comment
//	.org 0x1000          load origin (must precede any emission)
//	.db 1, 2, 0x33       data bytes
//	.dd 0x1234, label    32-bit words (labels become absolute addresses)
//	.space 64            zero fill
//	.align 16            pad to alignment
//	label:               define label
//	mov eax, [ebx+esi*4+8]
//	jne loop             conditional branches take label targets
//
// Instruction selection follows operand shapes; see the g86 opcode table.
func Assemble(src string) (*Program, error) {
	org := uint32(0)
	var b *Builder
	ensure := func() *Builder {
		if b == nil {
			b = NewBuilder(org)
		}
		return b
	}
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("line %d: bad label %q", ln+1, name)
			}
			ensure().Label(name)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(ensure, &org, b != nil, line, ln+1); err != nil {
			return nil, err
		}
		_ = org
	}
	if b == nil {
		b = NewBuilder(org)
	}
	img, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return &Program{Org: b.Origin(), Image: img, Labels: b.labels}, nil
}

func assembleLine(ensure func() *Builder, org *uint32, started bool, line string, ln int) error {
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(fields[0])
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}

	if strings.HasPrefix(mn, ".") {
		return assembleDirective(ensure, org, started, mn, rest, ln)
	}

	ops, err := parseOperands(rest, ln)
	if err != nil {
		return err
	}
	return emitInsn(ensure(), mn, ops, ln)
}

func assembleDirective(ensure func() *Builder, org *uint32, started bool, mn, rest string, ln int) error {
	b := func() *Builder { return ensure() }
	switch mn {
	case ".org":
		v, err := parseNum(rest)
		if err != nil {
			return fmt.Errorf("line %d: .org: %v", ln, err)
		}
		if started {
			return fmt.Errorf("line %d: .org must precede all code", ln)
		}
		*org = uint32(v)
		return nil
	case ".db":
		for _, s := range splitOps(rest) {
			v, err := parseNum(s)
			if err != nil {
				return fmt.Errorf("line %d: .db: %v", ln, err)
			}
			b().Bytes(byte(v))
		}
		return nil
	case ".dd":
		for _, s := range splitOps(rest) {
			if isIdent(s) {
				b().D32Label(s)
			} else {
				v, err := parseNum(s)
				if err != nil {
					return fmt.Errorf("line %d: .dd: %v", ln, err)
				}
				b().D32(uint32(v))
			}
		}
		return nil
	case ".space":
		v, err := parseNum(rest)
		if err != nil || v < 0 {
			return fmt.Errorf("line %d: .space needs a size", ln)
		}
		b().Space(int(v))
		return nil
	case ".align":
		v, err := parseNum(rest)
		if err != nil || v <= 0 {
			return fmt.Errorf("line %d: .align needs a power", ln)
		}
		b().Align(uint32(v))
		return nil
	}
	return fmt.Errorf("line %d: unknown directive %s", ln, mn)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	_, isReg := guest.RegByName(s)
	return !isReg && s != "cl"
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 32)
	} else if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		v = uint64(s[1])
	} else {
		v, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func splitOps(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i, c := range s {
		switch c {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if t := strings.TrimSpace(s[start:]); t != "" {
		out = append(out, t)
	}
	return out
}

func parseOperands(s string, ln int) ([]operand, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var ops []operand
	for _, tok := range splitOps(s) {
		op, err := parseOperand(tok)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

func parseOperand(tok string) (operand, error) {
	tok = strings.TrimSpace(tok)
	if tok == "" {
		return operand{}, fmt.Errorf("empty operand")
	}
	if strings.ToLower(tok) == "cl" {
		return operand{kind: oReg, reg: guest.ECX, isCL: true}, nil
	}
	if r, ok := guest.RegByName(strings.ToLower(tok)); ok {
		return operand{kind: oReg, reg: r}, nil
	}
	if tok[0] == '[' {
		if tok[len(tok)-1] != ']' {
			return operand{}, fmt.Errorf("unterminated memory operand %q", tok)
		}
		m, lbl, err := parseMem(tok[1 : len(tok)-1])
		if err != nil {
			return operand{}, err
		}
		return operand{kind: oMem, mem: m, memLabel: lbl}, nil
	}
	if isIdent(tok) {
		return operand{kind: oLabel, label: tok}, nil
	}
	v, err := parseNum(tok)
	if err != nil {
		return operand{}, err
	}
	return operand{kind: oImm, imm: uint32(v)}, nil
}

func parseMem(s string) (guest.MemOperand, string, error) {
	var m guest.MemOperand
	label := ""
	for _, term := range strings.Split(s, "+") {
		term = strings.TrimSpace(term)
		if term == "" {
			return m, "", fmt.Errorf("empty term in memory operand")
		}
		if isIdent(term) {
			if label != "" {
				return m, "", fmt.Errorf("two labels in memory operand")
			}
			label = term
			continue
		}
		if i := strings.Index(term, "*"); i >= 0 {
			r, ok := guest.RegByName(strings.ToLower(strings.TrimSpace(term[:i])))
			if !ok {
				return m, "", fmt.Errorf("bad index register in %q", term)
			}
			sc, err := parseNum(term[i+1:])
			if err != nil {
				return m, "", err
			}
			var lg uint8
			switch sc {
			case 1:
				lg = 0
			case 2:
				lg = 1
			case 4:
				lg = 2
			case 8:
				lg = 3
			default:
				return m, "", fmt.Errorf("scale must be 1/2/4/8, got %d", sc)
			}
			if m.HasIndex {
				return m, "", fmt.Errorf("two index registers")
			}
			m.HasIndex, m.Index, m.ScaleLog = true, r, lg
			continue
		}
		if r, ok := guest.RegByName(strings.ToLower(term)); ok {
			if !m.HasBase {
				m.HasBase, m.Base = true, r
			} else if !m.HasIndex {
				m.HasIndex, m.Index = true, r
			} else {
				return m, "", fmt.Errorf("too many registers in memory operand")
			}
			continue
		}
		v, err := parseNum(term)
		if err != nil {
			return m, "", err
		}
		m.Disp += uint32(v)
	}
	return m, label, nil
}

// emitImmOrLabel emits in; if lbl is non-empty the instruction's imm32 field
// is fixed up to the label's absolute address.
func emitImmOrLabel(b *Builder, in guest.Insn, lbl string, ln int) error {
	b.Emit(in)
	if lbl == "" {
		return nil
	}
	// Locate the imm32 field of the instruction just emitted.
	n := guest.EncodedLen(in.Op)
	dec, err := guest.Decode(b.buf[uint32(len(b.buf))-n:], 0)
	if err != nil || !dec.HasImm32() {
		return fmt.Errorf("line %d: operand cannot take a label", ln)
	}
	b.fixups = append(b.fixups, fixup{
		off:   uint32(len(b.buf)) - n + dec.ImmOff,
		label: lbl,
		srcLn: ln,
	})
	return nil
}

// memDispOff returns the byte offset of the 32-bit displacement field of the
// memory operand within an encoded instruction of the given format, or ok =
// false if the format has no memory operand.
func memDispOff(f guest.Fmt) (uint32, bool) {
	switch f {
	case guest.FmtRM:
		return 4, true // opcode, reg, mem flags, mem regs, disp
	case guest.FmtMR, guest.FmtMI, guest.FmtM:
		return 3, true // opcode, mem flags, mem regs, disp
	}
	return 0, false
}

// emitInsn assembles one instruction and applies any label fixup carried by
// a memory operand's displacement.
func emitInsn(b *Builder, mn string, ops []operand, ln int) error {
	if err := emitInsnInner(b, mn, ops, ln); err != nil {
		return err
	}
	for _, o := range ops {
		if o.kind != oMem || o.memLabel == "" {
			continue
		}
		off, ok := memDispOff(b.lastOp.Format())
		if !ok {
			return fmt.Errorf("line %d: internal: mem label on non-mem instruction", ln)
		}
		b.fixups = append(b.fixups, fixup{
			off:   uint32(len(b.buf)) - b.lastLen + off,
			label: o.memLabel,
			srcLn: ln,
		})
		// The label address is *added* to any numeric displacement already
		// encoded; record the addend by pre-storing it (fixup overwrites, so
		// fold it into the resolved value instead).
		if o.mem.Disp != 0 {
			b.fixups[len(b.fixups)-1].addend = o.mem.Disp
		}
	}
	return nil
}

func emitInsnInner(b *Builder, mn string, ops []operand, ln int) error {
	bad := func() error {
		return fmt.Errorf("line %d: bad operands for %s", ln, mn)
	}
	shape := ""
	for _, o := range ops {
		switch o.kind {
		case oReg:
			shape += "r"
		case oImm:
			shape += "i"
		case oLabel:
			shape += "l"
		case oMem:
			shape += "m"
		}
	}
	switch mn {
	case "nop", "hlt", "cli", "sti", "ret", "iret", "pushf", "popf", "cdq":
		if shape != "" {
			return bad()
		}
		var op guest.Op
		switch mn {
		case "nop":
			op = guest.OpNOP
		case "hlt":
			op = guest.OpHLT
		case "cli":
			op = guest.OpCLI
		case "sti":
			op = guest.OpSTI
		case "ret":
			op = guest.OpRET
		case "iret":
			op = guest.OpIRET
		case "pushf":
			op = guest.OpPUSHF
		case "popf":
			op = guest.OpPOPF
		case "cdq":
			op = guest.OpCDQ
		}
		b.Emit(guest.Insn{Op: op})
		return nil

	case "mov", "movb":
		byteForm := mn == "movb"
		switch shape {
		case "rr":
			if byteForm {
				return bad()
			}
			b.MovRR(ops[0].reg, ops[1].reg)
		case "ri", "rl":
			if byteForm {
				return bad()
			}
			return emitImmOrLabel(b, guest.Insn{Op: guest.OpMOVri, Dst: ops[0].reg, Imm: ops[1].imm}, ops[1].label, ln)
		case "rm":
			if byteForm {
				b.MovBRM(ops[0].reg, ops[1].mem)
			} else {
				b.MovRM(ops[0].reg, ops[1].mem)
			}
		case "mr":
			if byteForm {
				b.MovBMR(ops[0].mem, ops[1].reg)
			} else {
				b.MovMR(ops[0].mem, ops[1].reg)
			}
		case "mi", "ml":
			if byteForm {
				return bad()
			}
			return emitImmOrLabel(b, guest.Insn{Op: guest.OpMOVmi, Mem: ops[0].mem, Imm: ops[1].imm}, ops[1].label, ln)
		default:
			return bad()
		}
		return nil

	case "lea":
		if shape != "rm" {
			return bad()
		}
		b.Lea(ops[0].reg, ops[1].mem)
		return nil

	case "adc", "sbb":
		rr, ri := guest.OpADCrr, guest.OpADCri
		if mn == "sbb" {
			rr, ri = guest.OpSBBrr, guest.OpSBBri
		}
		switch shape {
		case "rr":
			b.Emit(guest.Insn{Op: rr, Dst: ops[0].reg, Src: ops[1].reg})
		case "ri":
			b.Emit(guest.Insn{Op: ri, Dst: ops[0].reg, Imm: ops[1].imm})
		default:
			return bad()
		}
		return nil

	case "xchg":
		if shape != "rr" {
			return bad()
		}
		b.Emit(guest.Insn{Op: guest.OpXCHG, Dst: ops[0].reg, Src: ops[1].reg})
		return nil

	case "movsx":
		if shape != "rm" {
			return bad()
		}
		b.Emit(guest.Insn{Op: guest.OpMOVSXB, Dst: ops[0].reg, Mem: ops[1].mem})
		return nil

	case "add", "sub", "and", "or", "xor":
		switch shape {
		case "rr":
			b.AluRR(mn, ops[0].reg, ops[1].reg)
		case "ri", "rl":
			return emitImmOrLabel(b, guest.Insn{Op: aluBase(mn) + 1, Dst: ops[0].reg, Imm: ops[1].imm}, ops[1].label, ln)
		case "rm":
			b.AluRM(mn, ops[0].reg, ops[1].mem)
		case "mr":
			b.AluMR(mn, ops[0].mem, ops[1].reg)
		default:
			return bad()
		}
		return nil

	case "cmp":
		switch shape {
		case "rr":
			b.CmpRR(ops[0].reg, ops[1].reg)
		case "ri":
			b.CmpRI(ops[0].reg, ops[1].imm)
		case "rm":
			b.CmpRM(ops[0].reg, ops[1].mem)
		case "mi":
			b.CmpMI(ops[0].mem, ops[1].imm)
		default:
			return bad()
		}
		return nil

	case "test":
		switch shape {
		case "rr":
			b.TestRR(ops[0].reg, ops[1].reg)
		case "ri":
			b.Emit(guest.Insn{Op: guest.OpTESTri, Dst: ops[0].reg, Imm: ops[1].imm})
		default:
			return bad()
		}
		return nil

	case "inc", "dec", "neg", "not", "mul", "div", "idiv":
		if shape != "r" {
			return bad()
		}
		var op guest.Op
		switch mn {
		case "inc":
			op = guest.OpINC
		case "dec":
			op = guest.OpDEC
		case "neg":
			op = guest.OpNEG
		case "not":
			op = guest.OpNOT
		case "mul":
			op = guest.OpMUL
		case "div":
			op = guest.OpDIV
		case "idiv":
			op = guest.OpIDIV
		}
		b.Emit(guest.Insn{Op: op, Dst: ops[0].reg})
		return nil

	case "shl", "shr", "sar":
		if len(ops) != 2 || ops[0].kind != oReg {
			return bad()
		}
		var ri, rc guest.Op
		switch mn {
		case "shl":
			ri, rc = guest.OpSHLri, guest.OpSHLrc
		case "shr":
			ri, rc = guest.OpSHRri, guest.OpSHRrc
		case "sar":
			ri, rc = guest.OpSARri, guest.OpSARrc
		}
		switch {
		case ops[1].kind == oImm:
			b.Emit(guest.Insn{Op: ri, Dst: ops[0].reg, Imm: ops[1].imm & 31})
		case ops[1].isCL:
			b.Emit(guest.Insn{Op: rc, Dst: ops[0].reg})
		default:
			return bad()
		}
		return nil

	case "imul":
		switch shape {
		case "rr":
			b.ImulRR(ops[0].reg, ops[1].reg)
		case "ri":
			b.ImulRI(ops[0].reg, ops[1].imm)
		default:
			return bad()
		}
		return nil

	case "push":
		switch shape {
		case "r":
			b.Push(ops[0].reg)
		case "i":
			b.PushI(ops[0].imm)
		case "l":
			return emitImmOrLabel(b, guest.Insn{Op: guest.OpPUSHi}, ops[0].label, ln)
		default:
			return bad()
		}
		return nil

	case "pop":
		if shape != "r" {
			return bad()
		}
		b.Pop(ops[0].reg)
		return nil

	case "jmp":
		switch shape {
		case "l":
			b.Jmp(ops[0].label)
		case "r":
			b.JmpR(ops[0].reg)
		case "m":
			b.JmpM(ops[0].mem)
		default:
			return bad()
		}
		return nil

	case "call":
		switch shape {
		case "l":
			b.Call(ops[0].label)
		case "r":
			b.CallR(ops[0].reg)
		default:
			return bad()
		}
		return nil

	case "in":
		if shape != "ri" || ops[1].imm > 0xFFFF {
			return bad()
		}
		b.In(ops[0].reg, uint16(ops[1].imm))
		return nil

	case "out":
		if shape != "ir" || ops[0].imm > 0xFFFF {
			return bad()
		}
		b.Out(uint16(ops[0].imm), ops[1].reg)
		return nil

	case "int":
		if shape != "i" || ops[0].imm > 0xFF {
			return bad()
		}
		b.Int(uint8(ops[0].imm))
		return nil
	}

	// Conditional branches: j<cond>.
	if strings.HasPrefix(mn, "j") {
		if c, ok := guest.CondByName(mn[1:]); ok {
			if shape != "l" {
				return bad()
			}
			b.Jcc(c, ops[0].label)
			return nil
		}
	}
	return fmt.Errorf("line %d: unknown mnemonic %q", ln, mn)
}
