package asm

import (
	"testing"

	"cms/internal/guest"
)

// disasm decodes the whole image for assertions.
func disasm(t *testing.T, img []byte, org uint32) []guest.Insn {
	t.Helper()
	var out []guest.Insn
	for off := uint32(0); off < uint32(len(img)); {
		in, err := guest.Decode(img[off:], org+off)
		if err != nil {
			t.Fatalf("decode at +%#x: %v", off, err)
		}
		out = append(out, in)
		off += in.Len
	}
	return out
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0x1000)
	b.MovRI(guest.EAX, 5).
		Label("loop").
		Dec(guest.EAX).
		Jcc(guest.CondNE, "loop").
		Hlt()
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ins := disasm(t, img, 0x1000)
	if len(ins) != 4 {
		t.Fatalf("got %d instructions", len(ins))
	}
	if ins[2].Op != guest.OpJccBase+guest.Op(guest.CondNE) {
		t.Fatalf("insn 2 = %v", ins[2])
	}
	if got := ins[2].BranchTarget(); got != b.LabelAddr("loop") {
		t.Errorf("branch target %#x, want %#x", got, b.LabelAddr("loop"))
	}
}

func TestBuilderForwardReference(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("end").Nop().Nop().Label("end").Hlt()
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ins := disasm(t, img, 0)
	if ins[0].BranchTarget() != b.LabelAddr("end") {
		t.Errorf("forward jmp target %#x", ins[0].BranchTarget())
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("nowhere")
	if _, err := b.Assemble(); err == nil {
		t.Error("undefined label must fail")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x").Label("x")
	if _, err := b.Assemble(); err == nil {
		t.Error("duplicate label must fail")
	}
}

func TestBuilderDataAndAlign(t *testing.T) {
	b := NewBuilder(0x100)
	b.Bytes(1, 2, 3).Align(8).Label("data").D32(0xAABBCCDD).D32Label("data")
	img, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// org 0x100 + 3 bytes, aligned to 0x108, then 8 bytes of data.
	if len(img) != 16 {
		t.Fatalf("image len %d", len(img))
	}
	if img[8] != 0xDD || img[11] != 0xAA {
		t.Error("D32 little-endian broken")
	}
	addr := uint32(img[12]) | uint32(img[13])<<8 | uint32(img[14])<<16 | uint32(img[15])<<24
	if addr != 0x108 {
		t.Errorf("D32Label = %#x, want 0x108", addr)
	}
}

func TestBuilderMovRILabel(t *testing.T) {
	b := NewBuilder(0x2000)
	b.MovRILabel(guest.EBX, "table").Hlt().Label("table").D32(7)
	img := b.MustAssemble()
	ins := disasm(t, img[:7], 0x2000)
	if ins[0].Imm != b.LabelAddr("table") {
		t.Errorf("imm = %#x, want %#x", ins[0].Imm, b.LabelAddr("table"))
	}
}

func TestMemHelpers(t *testing.T) {
	m := MemIdx(guest.EBX, guest.ESI, 4, 0x10)
	if !m.HasBase || !m.HasIndex || m.ScaleLog != 2 || m.Disp != 0x10 {
		t.Errorf("MemIdx = %+v", m)
	}
	if Abs(0x40).HasBase {
		t.Error("Abs must have no base")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad scale must panic")
		}
	}()
	MemIdx(guest.EAX, guest.EBX, 3, 0)
}

func TestTextAssemblerRoundTrip(t *testing.T) {
	src := `
; a small program
.org 0x1000
_start:
	mov eax, 10
	mov ebx, 0
loop:
	add ebx, eax
	dec eax
	jne loop
	mov [result], ebx
	hlt
result:
	.dd 0
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Org != 0x1000 || p.Entry() != 0x1000 {
		t.Errorf("org %#x entry %#x", p.Org, p.Entry())
	}
	ins := disasm(t, p.Image[:len(p.Image)-4], 0x1000)
	wantOps := []guest.Op{guest.OpMOVri, guest.OpMOVri, guest.OpADDrr, guest.OpDEC,
		guest.OpJccBase + guest.Op(guest.CondNE), guest.OpMOVmi, guest.OpHLT}
	// mov [result], ebx assembles as MOVmr... the source writes a register,
	// so the opcode is OpMOVmr, not MOVmi.
	wantOps[5] = guest.OpMOVmr
	if len(ins) != len(wantOps) {
		t.Fatalf("%d instructions, want %d", len(ins), len(wantOps))
	}
	for i, w := range wantOps {
		if ins[i].Op != w {
			t.Errorf("insn %d: %v, want op %#x", i, ins[i], uint8(w))
		}
	}
	// The store's absolute displacement must be the label address.
	if ins[5].Mem.Disp != p.Labels["result"] {
		t.Errorf("store disp %#x, want %#x", ins[5].Mem.Disp, p.Labels["result"])
	}
}

func TestTextAssemblerAddressingForms(t *testing.T) {
	src := `
	mov eax, [ebx+esi*4+0x10]
	movb [eax+1], ecx
	lea edi, [ebp+ecx*2]
	shl eax, 3
	shl eax, cl
	in eax, 0x3f8
	out 0x40, ebx
	int 0x21
	jmp eax
	jmp [ebx+4]
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := disasm(t, p.Image, 0)
	if ins[0].Mem.ScaleLog != 2 || ins[0].Mem.Disp != 0x10 || ins[0].Mem.Index != guest.ESI {
		t.Errorf("sib parse: %+v", ins[0].Mem)
	}
	if ins[1].Op != guest.OpMOVBmr || ins[1].Src != guest.ECX {
		t.Errorf("movb: %v", ins[1])
	}
	if ins[3].Op != guest.OpSHLri || ins[3].Imm != 3 {
		t.Errorf("shl imm: %v", ins[3])
	}
	if ins[4].Op != guest.OpSHLrc {
		t.Errorf("shl cl: %v", ins[4])
	}
	if ins[5].Op != guest.OpIN || ins[5].Imm != 0x3F8 {
		t.Errorf("in: %v", ins[5])
	}
	if ins[6].Op != guest.OpOUT || ins[6].Imm != 0x40 || ins[6].Src != guest.EBX {
		t.Errorf("out: %v", ins[6])
	}
	if ins[8].Op != guest.OpJMPr {
		t.Errorf("jmp reg: %v", ins[8])
	}
	if ins[9].Op != guest.OpJMPm || ins[9].Mem.Disp != 4 {
		t.Errorf("jmp mem: %v", ins[9])
	}
}

func TestTextAssemblerMemImmediateStore(t *testing.T) {
	p, err := Assemble("mov [0x5000], 0x42\n")
	if err != nil {
		t.Fatal(err)
	}
	ins := disasm(t, p.Image, 0)
	if ins[0].Op != guest.OpMOVmi || ins[0].Mem.Disp != 0x5000 || ins[0].Imm != 0x42 {
		t.Errorf("mov mi: %v", ins[0])
	}
}

func TestTextAssemblerLabelImmediates(t *testing.T) {
	src := `
	mov eax, table
	push handler
	hlt
table:
	.dd 1, 2, 3
handler:
	iret
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ins := disasm(t, p.Image[:13], 0)
	if ins[0].Imm != p.Labels["table"] {
		t.Errorf("mov label imm = %#x want %#x", ins[0].Imm, p.Labels["table"])
	}
	if ins[1].Imm != p.Labels["handler"] {
		t.Errorf("push label imm = %#x want %#x", ins[1].Imm, p.Labels["handler"])
	}
}

func TestTextAssemblerErrors(t *testing.T) {
	bad := []string{
		"mov eax",                    // missing operand
		"frob eax, ebx",              // unknown mnemonic
		"mov [eax, ebx",              // unterminated mem
		"jmp 123",                    // numeric branch target unsupported
		"mov eax, [ecx*3]",           // bad scale
		".org 0x10\nnop\n.org 0",     // late .org
		"in eax, 0x10000",            // port too large
		"shl eax, ebx",               // shift count must be imm or cl
		"9lab: nop",                  // bad label
		"mov eax, [eax+ebx+ecx+edx]", // too many regs
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestTextAssemblerCommentsAndMultiLabels(t *testing.T) {
	src := "a: b: nop ; tail comment\n# full comment\nc:\n\tjmp a\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["a"] != 0 || p.Labels["b"] != 0 || p.Labels["c"] != 1 {
		t.Errorf("labels: %v", p.Labels)
	}
}

func TestEntryDefaultsToOrigin(t *testing.T) {
	p, err := Assemble(".org 0x400\nnop\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry() != 0x400 {
		t.Errorf("Entry = %#x", p.Entry())
	}
}
