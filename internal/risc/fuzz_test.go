package risc

import (
	"reflect"
	"testing"

	"cms/internal/guest"
	"cms/internal/mem"
	"cms/internal/vliw"
)

// FuzzRiscLowerRoundtrip synthesizes a well-formed vliw.Code from the fuzz
// input, lowers it, and runs the same initial machine state through all
// three executors — the vliw interpreter, the closure-threaded compiled
// backend, and the risc register IR — demanding identical outcomes,
// architectural state, RAM images, and molecule accounting.
//
// The synthesizer places control atoms last in their molecule, matching
// what the translator emits; a control atom ahead of a flag writer is
// statically legal but has interpreter-vs-specialized divergence that the
// backends deliberately share (molHazard only gates write-then-read), so
// such shapes are out of scope here and covered by the differential oracle
// on real translator output instead. Port I/O is skipped (the bare test bus
// has no port device); MMIO ordering is exercised by the oracle legs.
//
// Translation temporaries (r16..r62) are compared only on clean exits: at a
// fault the three executors may have advanced the non-shadowed file to
// different depths before rolling back, and rollback restores only the
// shadowed registers — the repo-wide tolerated divergence.

const fuzzRAMSize = 1 << 16

// cursor is a wrapping byte reader: short inputs still drive the whole
// synthesizer, and every decision is a pure function of the input.
type cursor struct {
	data []byte
	i    int
}

func (c *cursor) next() byte {
	if len(c.data) == 0 {
		return 0
	}
	b := c.data[c.i%len(c.data)]
	c.i++
	return b
}

func (c *cursor) u32() uint32 {
	return uint32(c.next()) | uint32(c.next())<<8 | uint32(c.next())<<16 | uint32(c.next())<<24
}

// reg picks any register both backends treat uniformly: the 16 shadowed
// slots plus the first 8 temporaries. RZero is excluded (never written by
// translator convention).
func (c *cursor) reg() vliw.HReg { return vliw.HReg(c.next() % 24) }

// guestReg picks a guest GPR; memory atoms use these as bases so that the
// small-value initial registers keep a useful fraction of accesses in RAM.
func (c *cursor) guestReg() vliw.HReg { return vliw.HReg(c.next() % 8) }

// flagReg picks a flag source/destination: the architectural RFlags (the
// zero value) or one of two renamed temporaries, mirroring the translator's
// EFLAGS rename pass.
func (c *cursor) flagReg() vliw.HReg {
	switch c.next() % 3 {
	case 1:
		return 20
	case 2:
		return 21
	}
	return 0
}

func (c *cursor) size() uint8 {
	if c.next()&1 == 0 {
		return 1
	}
	return 4
}

func (c *cursor) synthPlain() vliw.Atom {
	b := c.next()
	gi := int16(c.next() % 32)
	rd, ra, rb := c.reg(), c.reg(), c.reg()
	switch b % 12 {
	case 0:
		return vliw.Atom{Op: vliw.AMovI, Rd: rd, Imm: c.u32(), GIdx: gi}
	case 1:
		return vliw.Atom{Op: vliw.AMov, Rd: rd, Ra: ra, GIdx: gi}
	case 2:
		ops := []vliw.AtomOp{vliw.AAdd, vliw.ASub, vliw.AAnd, vliw.AOr,
			vliw.AXor, vliw.AShl, vliw.AShr, vliw.ASar}
		return vliw.Atom{Op: ops[c.next()%8], Rd: rd, Ra: ra, Rb: rb, GIdx: gi}
	case 3:
		ops := []vliw.AtomOp{vliw.AAddI, vliw.ASubI, vliw.AAndI, vliw.AOrI,
			vliw.AXorI, vliw.AShlI, vliw.AShrI, vliw.ASarI}
		return vliw.Atom{Op: ops[c.next()%8], Rd: rd, Ra: ra, Imm: c.u32(), GIdx: gi}
	case 4:
		ops := []vliw.AtomOp{vliw.AAddCC, vliw.ASubCC, vliw.AAndCC, vliw.AOrCC,
			vliw.AXorCC, vliw.AShlCC, vliw.AShrCC, vliw.ASarCC, vliw.AAdcCC, vliw.ASbbCC}
		return vliw.Atom{Op: ops[c.next()%10], Rd: rd, Ra: ra, Rb: rb,
			Fs: c.flagReg(), Fd: c.flagReg(), GIdx: gi}
	case 5:
		ops := []vliw.AtomOp{vliw.AAddICC, vliw.ASubICC, vliw.AAndICC, vliw.AOrICC,
			vliw.AXorICC, vliw.AShlICC, vliw.AShrICC, vliw.ASarICC, vliw.AAdcICC, vliw.ASbbICC}
		return vliw.Atom{Op: ops[c.next()%10], Rd: rd, Ra: ra, Imm: c.u32(),
			Fs: c.flagReg(), Fd: c.flagReg(), GIdx: gi}
	case 6:
		ops := []vliw.AtomOp{vliw.AIncCC, vliw.ADecCC, vliw.ANegCC}
		return vliw.Atom{Op: ops[c.next()%3], Rd: rd, Ra: ra,
			Fs: c.flagReg(), Fd: c.flagReg(), GIdx: gi}
	case 7:
		if c.next()&1 == 0 {
			return vliw.Atom{Op: vliw.AImulCC, Rd: rd, Ra: ra, Rb: rb,
				Fs: c.flagReg(), Fd: c.flagReg(), GIdx: gi}
		}
		rd2 := c.reg()
		if rd2 == rd {
			rd2 = (rd + 1) % 24
		}
		return vliw.Atom{Op: vliw.AMul64, Rd: rd, Rd2: rd2, Ra: ra, Rb: rb,
			Fs: c.flagReg(), Fd: c.flagReg(), GIdx: gi}
	case 8:
		op := vliw.ADivU
		if c.next()&1 == 0 {
			op = vliw.ADivS
		}
		rd2 := c.reg()
		if rd2 == rd {
			rd2 = (rd + 1) % 24
		}
		return vliw.Atom{Op: op, Rd: rd, Rd2: rd2, Ra: ra, Rb: rb, Rc: c.reg(), GIdx: gi}
	case 9:
		return vliw.Atom{Op: vliw.ASetCC, Rd: rd, Cond: guest.Cond(c.next() % 16),
			Fs: c.flagReg(), GIdx: gi}
	case 10:
		a := vliw.Atom{Op: vliw.ALd, Rd: rd, Ra: c.guestReg(),
			Imm: uint32(c.next()) << 2, Size: c.size(), GIdx: gi}
		if c.next()&1 == 0 {
			a.ProtIdx = int8(c.next() % vliw.AliasTableSize)
		} else {
			a.ProtIdx = vliw.NoAliasIdx
		}
		a.Reordered = c.next()&3 == 0
		return a
	default:
		a := vliw.Atom{Op: vliw.ASt, Ra: c.guestReg(), Rb: rb,
			Imm: uint32(c.next()) << 2, Size: c.size(), GIdx: gi}
		if c.next()&1 == 0 {
			a.CheckMask = uint64(c.next())
		}
		a.Reordered = c.next()&3 == 0
		return a
	}
}

// synthCtrl builds the molecule's trailing control atom. Branch targets are
// strictly forward (idx+1 .. nm, where nm is the appended terminal exit), so
// every synthesized program terminates.
func (c *cursor) synthCtrl(idx, nm int) vliw.Atom {
	b := c.next()
	gi := int16(c.next() % 32)
	fwd := func() int32 { return int32(idx + 1 + int(c.next())%(nm-idx)) }
	switch b % 6 {
	case 0:
		return vliw.Atom{Op: vliw.ABr, Target: fwd(), GIdx: gi}
	case 1:
		return vliw.Atom{Op: vliw.ABrCC, Target: fwd(),
			Cond: guest.Cond(c.next() % 16), Fs: c.flagReg(), GIdx: gi}
	case 2:
		return vliw.Atom{Op: vliw.ABrNZ, Target: fwd(), Ra: c.reg(), GIdx: gi}
	case 3:
		return vliw.Atom{Op: vliw.ACommit, Imm: c.u32(), GIdx: gi}
	case 4:
		return vliw.Atom{Op: vliw.AExit, Imm: uint32(c.next() % 3),
			Commit: c.next()&1 == 0, GIdx: gi}
	default:
		return vliw.Atom{Op: vliw.AExitInd, Imm: uint32(c.next() % 3),
			Ra: c.reg(), Commit: c.next()&1 == 0, GIdx: gi}
	}
}

func synthCode(c *cursor) *vliw.Code {
	nm := int(c.next()%8) + 1
	mols := make([]vliw.Molecule, 0, nm+1)
	for i := 0; i < nm; i++ {
		var mol vliw.Molecule
		n := int(c.next()%3) + 1
		for a := 0; a < n; a++ {
			mol.Atoms = append(mol.Atoms, c.synthPlain())
		}
		if c.next()%4 != 3 {
			mol.Atoms = append(mol.Atoms, c.synthCtrl(i, nm))
		}
		mols = append(mols, mol)
	}
	// Terminal molecule: every fallthrough and every forward branch lands on
	// a committing exit.
	mols = append(mols, vliw.Molecule{Atoms: []vliw.Atom{
		{Op: vliw.AExit, Imm: 0, Commit: true, GIdx: -1},
	}})
	return &vliw.Code{Mols: mols, NumExits: 3}
}

// finalState is everything the executors must agree on.
type finalState struct {
	out       vliw.Outcome
	regs      [vliw.NumHRegs]uint32
	shadow    [vliw.NumShadowed]uint32
	mols      uint64
	commits   uint64
	rollbacks uint64
	ceip      uint32
	ram       string
}

const (
	modeExec = iota
	modeCompiled
	modeRisc
)

// runBackend executes code from a canonical initial state under one of the
// three executors. Optional mods run after LoadGuest and can reach the bus
// through m.Bus (the unit tests use them to map MMIO/port devices and arm
// the IRQ controller).
func runBackend(mode int, code *vliw.Code, regs [guest.NumRegs]uint32, flags uint32, ram []byte, mods ...func(*vliw.Machine)) finalState {
	bus := mem.NewBus(fuzzRAMSize)
	bus.WriteRaw(0, ram)
	m := vliw.NewMachine(bus)
	m.LoadGuest(&regs, flags, 0x100)
	for _, mod := range mods {
		mod(m)
	}

	var out vliw.Outcome
	switch mode {
	case modeExec:
		out = m.Exec(code)
	case modeCompiled:
		out = *m.ExecCompiled(vliw.Compile(code))
	default:
		out = *Exec(m, Lower(code))
	}
	// Err carries human-oriented detail; the scalar fields are the verdict.
	out.Err = nil

	fs := finalState{
		out: out, regs: m.Regs, shadow: m.Shadow,
		mols: m.Mols, commits: m.Commits, rollbacks: m.Rollbacks,
		ceip: m.CommittedEIP, ram: string(bus.ReadRaw(0, fuzzRAMSize)),
	}
	if out.Fault != vliw.FNone {
		// Temporaries are not restored by rollback; blank them at faults.
		for i := vliw.NumShadowed; i < vliw.NumHRegs; i++ {
			fs.regs[i] = 0
		}
	}
	return fs
}

func diffStates(t *testing.T, label string, want, got finalState) {
	t.Helper()
	if want.out != got.out {
		t.Fatalf("%s: outcome mismatch:\nwant %+v\ngot  %+v", label, want.out, got.out)
	}
	if want.regs != got.regs {
		for i := range want.regs {
			if want.regs[i] != got.regs[i] {
				t.Fatalf("%s: r%d: want %#x got %#x", label, i, want.regs[i], got.regs[i])
			}
		}
	}
	if want.shadow != got.shadow {
		t.Fatalf("%s: shadow mismatch:\nwant %#v\ngot  %#v", label, want.shadow, got.shadow)
	}
	if want.mols != got.mols || want.commits != got.commits || want.rollbacks != got.rollbacks {
		t.Fatalf("%s: counters: want mols=%d commits=%d rollbacks=%d, got mols=%d commits=%d rollbacks=%d",
			label, want.mols, want.commits, want.rollbacks, got.mols, got.commits, got.rollbacks)
	}
	if want.ceip != got.ceip {
		t.Fatalf("%s: CommittedEIP: want %#x got %#x", label, want.ceip, got.ceip)
	}
	if want.ram != got.ram {
		for i := 0; i < len(want.ram); i++ {
			if want.ram[i] != got.ram[i] {
				t.Fatalf("%s: ram[%#x]: want %#x got %#x", label, i, want.ram[i], got.ram[i])
			}
		}
	}
}

func FuzzRiscLowerRoundtrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte("risc-backend-differential-seed"))
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66,
		0x55, 0x44, 0x33, 0x22, 0x11, 0x00})
	f.Add([]byte{7, 4, 200, 13, 13, 13, 8, 8, 8, 8, 250, 1, 0, 0, 0, 0, 0,
		42, 42, 42, 9, 9, 9, 31, 64, 128, 192, 255})
	f.Add([]byte{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := &cursor{data: data}
		code := synthCode(c)

		lowered := Lower(code)
		if !reflect.DeepEqual(lowered, Lower(code)) {
			t.Fatal("Lower is nondeterministic")
		}
		if lowered.Specialized()+lowered.Exact() != len(code.Mols) {
			t.Fatalf("lowering lost molecules: %d specialized + %d exact != %d",
				lowered.Specialized(), lowered.Exact(), len(code.Mols))
		}

		var regs [guest.NumRegs]uint32
		for i := range regs {
			v := c.u32()
			if i%2 == 0 {
				// Small values keep a useful fraction of Ld/St in RAM.
				v &= 0x3fff
			}
			regs[i] = v
		}
		flags := c.u32()
		ram := make([]byte, 4096)
		salt := c.next()
		for i := range ram {
			ram[i] = byte(i*7) + salt
		}

		interp := runBackend(modeExec, code, regs, flags, ram)
		compiled := runBackend(modeCompiled, code, regs, flags, ram)
		riscv := runBackend(modeRisc, code, regs, flags, ram)

		diffStates(t, "compiled vs interp", interp, compiled)
		diffStates(t, "risc vs interp", interp, riscv)
		diffStates(t, "risc vs compiled", compiled, riscv)
	})
}
