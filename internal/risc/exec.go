// The register-IR executor. Exec drives a vliw.Machine through lowered
// Code with semantics bit-identical to vliw.Exec/ExecCompiled on the same
// translation: the same interrupt window at every molecule boundary, the
// same Bus fast paths and fault classes, the same gated-store/alias-table
// discipline through the vliw backend SPI, and the same Mols/Commits/
// Rollbacks accounting. The one structural difference is invisible at
// every architectural boundary: EFLAGS images are not computed when a
// flag-producing instruction executes. The producer records a flagRec
// (kind + operands + input image) and marks the destination register lazy;
// the image is materialized only when a consumer reads it or when a
// commit/exit makes it observable. Images that die — redefined before any
// consumer within a speculation window — are never computed at all.
//
// Lazy-state lifetime rules (load-bearing for equivalence):
//
//   - materializeAll runs before EVERY commit and EVERY exit return, even
//     uncommitted exits: chained translations and the engine's exit
//     handling read working registers, which must match vliw bit for bit.
//   - On faults and interrupt-window hits the pending set is DROPPED, not
//     materialized: the rollback inside fault/IRQWindow has already
//     restored the shadowed registers, and writing materialized images
//     after it would corrupt them. Stale temporaries left behind are the
//     same tolerated divergence vliw.Compile's immediate-write temps have
//     at faults — nothing carries them across a committed boundary.
package risc

import (
	"math/bits"

	"cms/internal/guest"
	"cms/internal/mem"
	"cms/internal/vliw"
)

// TestWrongCarry is a test-only hook: when set, the lazy materializer
// flips the carry-in of ADC/SBB flag images (the eager data results stay
// correct). TestOracleCatchesRiscMutation plants this bug to prove the
// ninth differential-oracle leg detects a wrong-carry materializer and
// that the shrinker reduces the reproducer. Never set outside tests.
var TestWrongCarry bool

// flagRec is a pending EFLAGS computation: enough to reconstruct the exact
// image the vliw backend would have produced at definition time. The input
// image is captured at definition (it is needed eagerly anyway for the
// ADC/SBB data results), so laziness elides exactly the flag arithmetic.
type flagRec struct {
	kind Kind
	a, b uint32
	in   uint32
}

// execState is the per-Exec lazy-flags overlay on the machine's register
// file: bit r of lazy set means Regs[r] is stale and recs[r] holds the
// pending computation. It lives on Exec's stack and never escapes.
type execState struct {
	m    *vliw.Machine
	lazy uint64
	recs [vliw.NumHRegs]flagRec
}

// val reads a register, materializing it first if a flag image is pending.
func (st *execState) val(r vliw.HReg) uint32 {
	if st.lazy&(1<<r) != 0 {
		st.materialize(r)
	}
	return st.m.Regs[r]
}

// put writes a register, cancelling any pending image (the redefinition is
// what makes dead flag computations free).
func (st *execState) put(r vliw.HReg, v uint32) {
	st.lazy &^= 1 << r
	st.m.Regs[r] = v
}

// setLazy records a pending flag image for r.
func (st *execState) setLazy(r vliw.HReg, rec flagRec) {
	st.recs[r] = rec
	st.lazy |= 1 << r
}

// image presents the flag input a consumer of fs sees: the (possibly
// renamed) arithmetic bits with IF always taken from architectural RFlags,
// exactly as vliw's execAtom/flagImage do.
func (st *execState) image(fs vliw.HReg) uint32 {
	if fs == vliw.RFlags {
		return st.val(vliw.RFlags)
	}
	return st.val(fs)&^guest.FlagIF | st.val(vliw.RFlags)&guest.FlagIF
}

// materialize computes the pending EFLAGS image for r through the same
// guest flag helpers the vliw backend uses, guaranteeing bit identity.
func (st *execState) materialize(r vliw.HReg) {
	st.lazy &^= 1 << r
	rec := &st.recs[r]
	in := rec.in
	var f uint32
	switch rec.kind {
	case KFAdd:
		_, f = guest.FlagsAdd(in, rec.a, rec.b)
	case KFSub:
		_, f = guest.FlagsSub(in, rec.a, rec.b)
	case KFAdc:
		if TestWrongCarry {
			in ^= guest.FlagCF
		}
		_, f = guest.FlagsAdc(in, rec.a, rec.b)
	case KFSbb:
		if TestWrongCarry {
			in ^= guest.FlagCF
		}
		_, f = guest.FlagsSbb(in, rec.a, rec.b)
	case KFInc:
		_, f = guest.FlagsInc(in, rec.a)
	case KFDec:
		_, f = guest.FlagsDec(in, rec.a)
	case KFNeg:
		_, f = guest.FlagsNeg(in, rec.a)
	case KFAnd:
		f = guest.FlagsLogic(in, rec.a&rec.b)
	case KFOr:
		f = guest.FlagsLogic(in, rec.a|rec.b)
	case KFXor:
		f = guest.FlagsLogic(in, rec.a^rec.b)
	case KFShl:
		_, f = guest.FlagsShl(in, rec.a, rec.b)
	case KFShr:
		_, f = guest.FlagsShr(in, rec.a, rec.b)
	case KFSar:
		_, f = guest.FlagsSar(in, rec.a, rec.b)
	case KFImul:
		_, f = guest.FlagsImul(in, rec.a, rec.b)
	case KFMul64:
		_, _, f = guest.FlagsMul(in, rec.a, rec.b)
	}
	st.m.Regs[r] = f
}

// materializeAll flushes every pending image — required before any commit
// or exit, where working registers become architecturally observable.
func (st *execState) materializeAll() {
	for lz := st.lazy; lz != 0; lz &= lz - 1 {
		st.materialize(vliw.HReg(bits.TrailingZeros64(lz)))
	}
}

// Exec runs lowered code from its first block until an exit or fault,
// exactly as ExecCompiled runs compiled code. The returned Outcome is
// machine-owned and valid until the machine's next execution.
func Exec(m *vliw.Machine, code *Code) *vliw.Outcome {
	st := execState{m: m}
	blocks := code.Blocks
	pc := int32(0)
	m.ResetOutcome()
	for {
		// Interrupt window at molecule boundaries (§3.3); the rollback
		// inside discards speculative state, so pending images are simply
		// dropped with the rest of the stack frame.
		if out := m.IRQWindow(); out != nil {
			return out
		}
		if uint32(pc) >= uint32(len(blocks)) {
			return m.BadPC(pc)
		}
		m.Mols++
		next := pc + 1
		insns := blocks[pc].Insns
	block:
		for i := range insns {
			in := &insns[i]
			switch in.Op {
			case INop:

			case ILi:
				st.put(in.Rd, in.Imm)
			case IMov:
				st.put(in.Rd, st.val(in.Ra))

			case IAlu:
				a := st.val(in.Ra)
				b := in.Imm
				if !in.BI {
					b = st.val(in.Rb)
				}
				var res uint32
				switch in.Kind {
				case KAdd:
					res = a + b
				case KSub:
					res = a - b
				case KAnd:
					res = a & b
				case KOr:
					res = a | b
				case KXor:
					res = a ^ b
				case KShl:
					res = a << (b & 31)
				case KShr:
					res = a >> (b & 31)
				case KSar:
					res = uint32(int32(a) >> (b & 31))
				}
				st.put(in.Rd, res)

			case IAluF:
				a := st.val(in.Ra)
				b := in.Imm
				if !in.BI {
					b = st.val(in.Rb)
				}
				img := st.image(in.Fs)
				var res uint32
				switch in.Kind {
				case KFAdd:
					res = a + b
				case KFSub:
					res = a - b
				case KFAdc:
					res = uint32(uint64(a) + uint64(b) + uint64(img&guest.FlagCF))
				case KFSbb:
					res = uint32(uint64(a) - uint64(b) - uint64(img&guest.FlagCF))
				case KFInc:
					res = a + 1
				case KFDec:
					res = a - 1
				case KFNeg:
					res = -a
				case KFAnd:
					res = a & b
				case KFOr:
					res = a | b
				case KFXor:
					res = a ^ b
				case KFShl:
					res = a << (b & 31)
				case KFShr:
					res = a >> (b & 31)
				case KFSar:
					res = uint32(int32(a) >> (b & 31))
				case KFImul:
					res = a * b
				case KFMul64:
					hi, lo := bits.Mul32(a, b)
					st.put(in.Rd, lo)
					st.put(in.Rd2, hi)
					st.setLazy(in.Fd, flagRec{kind: in.Kind, a: a, b: b, in: img})
					continue
				}
				st.put(in.Rd, res)
				st.setLazy(in.Fd, flagRec{kind: in.Kind, a: a, b: b, in: img})

			case IDivU, IDivS:
				div := guest.DivU
				if in.Op == IDivS {
					div = guest.DivS
				}
				q, rem, ok := div(st.val(in.Rc), st.val(in.Ra), st.val(in.Rb))
				if !ok {
					return m.FaultOutcome(vliw.FGuest, int(in.GIdx), 0, guest.VecDE)
				}
				st.put(in.Rd, q)
				st.put(in.Rd2, rem)

			case ISet:
				v := uint32(0)
				if in.Cond.Eval(st.image(in.Fs)) {
					v = 1
				}
				st.put(in.Rd, v)

			case ILd:
				addr := st.val(in.Ra) + in.Imm
				// Single present non-MMIO page: the value comes from RAM
				// through the store buffer, skipping the page walks.
				if m.Bus.FastRead(addr, uint32(in.Size)) {
					st.put(in.Rd, m.GatedLoad(addr, in.Size))
					if in.ProtIdx != vliw.NoAliasIdx {
						m.RecordAlias(in.ProtIdx, addr, in.Size)
					}
					continue
				}
				if gf := m.Bus.CheckRead(addr, int(in.Size)); gf != nil {
					return m.FaultOutcome(vliw.FGuest, int(in.GIdx), addr, gf.Vector)
				}
				if m.Bus.IsMMIO(addr) {
					if in.Reordered {
						return m.FaultOutcome(vliw.FMMIOSpec, int(in.GIdx), addr, 0)
					}
					if m.PendingGatedIO() {
						return m.FaultOutcome(vliw.FMMIOOrder, int(in.GIdx), addr, 0)
					}
					if in.Size == 1 {
						st.put(in.Rd, uint32(m.Bus.Read8(addr)))
					} else {
						st.put(in.Rd, m.Bus.Read32(addr))
					}
				} else {
					st.put(in.Rd, m.GatedLoad(addr, in.Size))
				}
				if in.ProtIdx != vliw.NoAliasIdx {
					m.RecordAlias(in.ProtIdx, addr, in.Size)
				}

			case ISt:
				addr := st.val(in.Ra) + in.Imm
				val := st.val(in.Rb)
				// Single present writable non-MMIO unprotected page.
				if m.Bus.FastWrite(addr, uint32(in.Size)) {
					if in.CheckMask != 0 && m.AliasConflict(in.CheckMask, addr, in.Size) {
						return m.FaultOutcome(vliw.FAlias, int(in.GIdx), addr, 0)
					}
					m.GatedStore(addr, val, in.Size, false)
					continue
				}
				if gf := m.Bus.CheckWrite(addr, int(in.Size)); gf != nil {
					return m.FaultOutcome(vliw.FGuest, int(in.GIdx), addr, gf.Vector)
				}
				isMMIO := m.Bus.IsMMIO(addr)
				if isMMIO && in.Reordered {
					return m.FaultOutcome(vliw.FMMIOSpec, int(in.GIdx), addr, 0)
				}
				if !isMMIO {
					if hit := m.Bus.CheckProt(addr, int(in.Size), mem.SrcCPU); hit != nil {
						return m.FaultOutcome(vliw.FProt, int(in.GIdx), addr, 0)
					}
				}
				if in.CheckMask != 0 && m.AliasConflict(in.CheckMask, addr, in.Size) {
					return m.FaultOutcome(vliw.FAlias, int(in.GIdx), addr, 0)
				}
				m.GatedStore(addr, val, in.Size, isMMIO)

			case IIn:
				if m.PendingGatedIO() {
					return m.FaultOutcome(vliw.FMMIOOrder, int(in.GIdx), 0, 0)
				}
				st.put(in.Rd, m.Bus.PortRead(uint16(in.Imm)))
			case IOut:
				m.GatedOut(in.Imm, st.val(in.Rb))

			case ICommit:
				st.materializeAll()
				m.Commit()
				m.CommittedEIP = in.Imm

			case IBr:
				next = in.Target
			case IBcc:
				if in.Cond.Eval(st.image(in.Fs)) {
					next = in.Target
				}
			case IBnz:
				if st.val(in.Ra) != 0 {
					next = in.Target
				}

			case IExit:
				st.materializeAll()
				if in.Commit {
					m.Commit()
				}
				return m.ExitOutcome(int(in.Imm), 0, false)
			case IExitInd:
				target := st.val(in.Ra) // read before commit, like Exec's atom pass
				st.materializeAll()
				if in.Commit {
					m.Commit()
				}
				return m.ExitOutcome(int(in.Imm), target, true)

			case IExact:
				st.materializeAll()
				nx, out := m.ExecMoleculeExact(in.Mol, next)
				if out != nil {
					return out
				}
				next = nx
				break block
			}
		}
		pc = next
	}
}
