package risc

import (
	"testing"

	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/vliw"
)

// The unit tests drive hand-built vliw codes through all three executors —
// the vliw interpreter, the closure-threaded compiled backend, and the risc
// register IR — and demand identical final states via the differential
// harness the fuzz target shares. Shapes are chosen to pin every lowering
// case and every executor branch: the full ALU and flag-ALU matrices, lazy
// materialization through commits, exits, and renamed-image consumers, the
// memory fast and slow paths with alias and MMIO faults, port I/O ordering,
// the IRQ window, and the exact-molecule fallback.

func mol(atoms ...vliw.Atom) vliw.Molecule { return vliw.Molecule{Atoms: atoms} }

func exitMol() vliw.Molecule {
	return mol(vliw.Atom{Op: vliw.AExit, Commit: true, GIdx: -1})
}

func code(mols ...vliw.Molecule) *vliw.Code {
	return &vliw.Code{Mols: mols, NumExits: 3}
}

// checkAll runs code under all three executors from a canonical state and
// fails on any divergence.
func checkAll(t *testing.T, name string, c *vliw.Code, mods ...func(*vliw.Machine)) (interp, compiled, riscv finalState) {
	t.Helper()
	var regs [guest.NumRegs]uint32
	for i := range regs {
		regs[i] = uint32(0x100 + i*0x111)
	}
	flags := uint32(guest.FlagIF | guest.FlagCF)
	ram := make([]byte, 4096)
	for i := range ram {
		ram[i] = byte(i * 13)
	}
	interp = runBackend(modeExec, c, regs, flags, ram, mods...)
	compiled = runBackend(modeCompiled, c, regs, flags, ram, mods...)
	riscv = runBackend(modeRisc, c, regs, flags, ram, mods...)
	diffStates(t, name+": compiled vs interp", interp, compiled)
	diffStates(t, name+": risc vs interp", interp, riscv)
	return
}

func TestLowerNil(t *testing.T) {
	if Lower(nil) != nil {
		t.Fatal("Lower(nil) != nil")
	}
}

func TestLowerCounters(t *testing.T) {
	c := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 7}),
		// Write-then-read hazard: specialization must refuse it.
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 17, Imm: 1},
			vliw.Atom{Op: vliw.AMov, Rd: 18, Ra: 17}),
		exitMol(),
	)
	lc := Lower(c)
	if lc.Specialized() != 2 || lc.Exact() != 1 {
		t.Fatalf("specialized=%d exact=%d, want 2/1", lc.Specialized(), lc.Exact())
	}
	if lc.Len() != 3 {
		t.Fatalf("Len=%d, want 3", lc.Len())
	}
	checkAll(t, "hazard-exact", c)
}

// TestAluMatrix covers every plain ALU lowering, register and immediate
// forms, plus the data movers.
func TestAluMatrix(t *testing.T) {
	ops := []vliw.AtomOp{
		vliw.AMovI, vliw.AMov,
		vliw.AAdd, vliw.AAddI, vliw.ASub, vliw.ASubI,
		vliw.AAnd, vliw.AAndI, vliw.AOr, vliw.AOrI,
		vliw.AXor, vliw.AXorI, vliw.AShl, vliw.AShlI,
		vliw.AShr, vliw.AShrI, vliw.ASar, vliw.ASarI,
	}
	for _, op := range ops {
		a := vliw.Atom{Op: op, Rd: 16, Ra: 1, Rb: 2, Imm: 0x21}
		checkAll(t, op.String(), code(mol(a), exitMol()))
	}
}

// TestFlagMatrix covers every flag-computing ALU lowering and — in the risc
// backend — every materializer kind, through three consumption paths:
// commit at exit (materializeAll), a renamed image read back by SetCC
// (image), and a renamed image feeding a conditional branch.
func TestFlagMatrix(t *testing.T) {
	ops := []vliw.AtomOp{
		vliw.AAddCC, vliw.AAddICC, vliw.ASubCC, vliw.ASubICC,
		vliw.AAndCC, vliw.AAndICC, vliw.AOrCC, vliw.AOrICC,
		vliw.AXorCC, vliw.AXorICC, vliw.AShlCC, vliw.AShlICC,
		vliw.AShrCC, vliw.AShrICC, vliw.ASarCC, vliw.ASarICC,
		vliw.AIncCC, vliw.ADecCC, vliw.ANegCC,
		vliw.AAdcCC, vliw.AAdcICC, vliw.ASbbCC, vliw.ASbbICC,
		vliw.AImulCC, vliw.AMul64,
	}
	for _, op := range ops {
		arch := vliw.Atom{Op: op, Rd: 16, Rd2: 17, Ra: 1, Rb: 2, Imm: 0x3}
		checkAll(t, op.String()+"/arch", code(mol(arch), exitMol()))

		// Renamed flag image consumed by SetCC and a branch.
		ren := arch
		ren.Fd = 20
		c := code(
			mol(ren),
			mol(vliw.Atom{Op: vliw.ASetCC, Rd: 18, Cond: guest.CondB, Fs: 20},
				vliw.Atom{Op: vliw.ABrCC, Target: 3, Cond: guest.CondNE, Fs: 20}),
			mol(vliw.Atom{Op: vliw.AMovI, Rd: 3, Imm: 0xAA}),
			exitMol(),
		)
		checkAll(t, op.String()+"/renamed", c)
	}
}

// TestShiftByZero pins the shift-count-zero flag semantics (flags pass
// through unchanged) across the lazy materializer.
func TestShiftByZero(t *testing.T) {
	for _, op := range []vliw.AtomOp{vliw.AShlICC, vliw.AShrICC, vliw.ASarICC} {
		a := vliw.Atom{Op: op, Rd: 16, Ra: 1, Imm: 0}
		checkAll(t, op.String()+"/sh0", code(mol(a), exitMol()))
	}
}

func TestDiv(t *testing.T) {
	for _, op := range []vliw.AtomOp{vliw.ADivU, vliw.ADivS} {
		ok := code(
			mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0}),
			mol(vliw.Atom{Op: op, Rd: 17, Rd2: 18, Ra: 1, Rb: 2, Rc: 16, GIdx: 5}),
			exitMol(),
		)
		checkAll(t, op.String()+"/ok", ok)

		de := code(
			mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0}),
			mol(vliw.Atom{Op: op, Rd: 17, Rd2: 18, Ra: 1, Rb: 16, Rc: 16, GIdx: 5}),
			exitMol(),
		)
		interp, _, _ := checkAll(t, op.String()+"/de", de)
		if interp.out.Fault != vliw.FGuest || interp.out.GuestVec != guest.VecDE {
			t.Fatalf("%s: want #DE, got %+v", op, interp.out)
		}
	}
}

func TestMemoryFastAndFaulting(t *testing.T) {
	for _, size := range []uint8{1, 4} {
		c := code(
			mol(vliw.Atom{Op: vliw.ALd, Rd: 16, Ra: 1, Imm: 0x40, Size: size, ProtIdx: vliw.NoAliasIdx}),
			mol(vliw.Atom{Op: vliw.ASt, Ra: 1, Rb: 16, Imm: 0x80, Size: size}),
			exitMol(),
		)
		checkAll(t, "mem/fast", c)
	}

	// Out-of-range access: guest fault, identical vector and address.
	bad := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0xFFFF_0000}),
		mol(vliw.Atom{Op: vliw.ALd, Rd: 17, Ra: 16, Size: 4, ProtIdx: vliw.NoAliasIdx, GIdx: 7}),
		exitMol(),
	)
	interp, _, _ := checkAll(t, "mem/fault-ld", bad)
	if interp.out.Fault != vliw.FGuest {
		t.Fatalf("want FGuest, got %+v", interp.out)
	}
	badSt := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0xFFFF_0000}),
		mol(vliw.Atom{Op: vliw.ASt, Ra: 16, Rb: 1, Size: 1, GIdx: 7}),
		exitMol(),
	)
	interp, _, _ = checkAll(t, "mem/fault-st", badSt)
	if interp.out.Fault != vliw.FGuest {
		t.Fatalf("want FGuest, got %+v", interp.out)
	}
}

func TestAliasFault(t *testing.T) {
	// The load protects its range through alias entry 2; the store (same
	// address, mask covering entry 2) must raise FAlias everywhere.
	c := code(
		mol(vliw.Atom{Op: vliw.ALd, Rd: 16, Ra: 1, Imm: 0x40, Size: 4, ProtIdx: 2}),
		mol(vliw.Atom{Op: vliw.ASt, Ra: 1, Rb: 2, Imm: 0x40, Size: 4, CheckMask: 1 << 2, GIdx: 9}),
		exitMol(),
	)
	interp, _, _ := checkAll(t, "alias/conflict", c)
	if interp.out.Fault != vliw.FAlias {
		t.Fatalf("want FAlias, got %+v", interp.out)
	}

	// Disjoint ranges: the checked store proceeds.
	clean := code(
		mol(vliw.Atom{Op: vliw.ALd, Rd: 16, Ra: 1, Imm: 0x40, Size: 4, ProtIdx: 2}),
		mol(vliw.Atom{Op: vliw.ASt, Ra: 1, Rb: 2, Imm: 0x400, Size: 4, CheckMask: 1 << 2}),
		exitMol(),
	)
	interp, _, _ = checkAll(t, "alias/clean", clean)
	if interp.out.Fault != vliw.FNone {
		t.Fatalf("want clean exit, got %+v", interp.out)
	}
}

type testMMIO struct{ last uint32 }

func (d *testMMIO) MMIORead(addr uint32, size int) uint32     { return 0xC0DE_0000 | addr }
func (d *testMMIO) MMIOWrite(addr uint32, size int, v uint32) { d.last = v }

func TestMMIO(t *testing.T) {
	const mmioBase = 0xF000
	var devs []*testMMIO
	mapDev := func(m *vliw.Machine) {
		d := &testMMIO{}
		devs = append(devs, d)
		m.Bus.MapMMIO(mmioBase, 0x1000, d)
	}
	base := vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: mmioBase}

	// In-order MMIO load and store.
	c := code(
		mol(base),
		mol(vliw.Atom{Op: vliw.ALd, Rd: 17, Ra: 16, Imm: 8, Size: 4, ProtIdx: vliw.NoAliasIdx}),
		mol(vliw.Atom{Op: vliw.ASt, Ra: 16, Rb: 1, Imm: 4, Size: 4}),
		exitMol(),
	)
	devs = nil
	interp, _, _ := checkAll(t, "mmio/inorder", c, mapDev)
	if interp.out.Fault != vliw.FNone {
		t.Fatalf("want clean exit, got %+v", interp.out)
	}
	for _, d := range devs[1:] {
		if d.last != devs[0].last {
			t.Fatalf("device writes diverge: %#x vs %#x", devs[0].last, d.last)
		}
	}
	if devs[0].last == 0 {
		t.Fatal("gated MMIO store never reached the device")
	}

	// A reordered access touching MMIO faults (§3.4).
	for _, a := range []vliw.Atom{
		{Op: vliw.ALd, Rd: 17, Ra: 16, Size: 4, Reordered: true, ProtIdx: vliw.NoAliasIdx, GIdx: 3},
		{Op: vliw.ASt, Ra: 16, Rb: 1, Size: 4, Reordered: true, GIdx: 3},
	} {
		interp, _, _ = checkAll(t, "mmio/reordered", code(mol(base), mol(a), exitMol()), mapDev)
		if interp.out.Fault != vliw.FMMIOSpec {
			t.Fatalf("want FMMIOSpec, got %+v", interp.out)
		}
	}

	// An MMIO read behind a pending gated MMIO store must serialize.
	pend := code(
		mol(base),
		mol(vliw.Atom{Op: vliw.ASt, Ra: 16, Rb: 2, Imm: 0x40, Size: 4},
			vliw.Atom{Op: vliw.ALd, Rd: 17, Ra: 16, Size: 4, ProtIdx: vliw.NoAliasIdx, GIdx: 4}),
		exitMol(),
	)
	interp, _, _ = checkAll(t, "mmio/pending", pend, mapDev)
	if interp.out.Fault != vliw.FMMIOOrder {
		t.Fatalf("want FMMIOOrder, got %+v", interp.out)
	}
}

type testPort struct{ last uint32 }

func (d *testPort) PortRead(port uint16) uint32     { return 0xAB00 | uint32(port) }
func (d *testPort) PortWrite(port uint16, v uint32) { d.last = v }

func TestPortIO(t *testing.T) {
	var devs []*testPort
	mapDev := func(m *vliw.Machine) {
		d := &testPort{}
		devs = append(devs, d)
		m.Bus.MapPort(0, 0xFF, d)
	}

	devs = nil
	c := code(
		mol(vliw.Atom{Op: vliw.AIn, Rd: 16, Imm: 0x42}),
		mol(vliw.Atom{Op: vliw.AOut, Rb: 1, Imm: 0x43}),
		exitMol(),
	)
	interp, _, _ := checkAll(t, "port/inout", c, mapDev)
	if interp.out.Fault != vliw.FNone {
		t.Fatalf("want clean exit, got %+v", interp.out)
	}
	for _, d := range devs[1:] {
		if d.last != devs[0].last {
			t.Fatalf("port writes diverge: %#x vs %#x", devs[0].last, d.last)
		}
	}

	// AIn behind a pending gated OUT serializes, like MMIO reads.
	pend := code(
		mol(vliw.Atom{Op: vliw.AOut, Rb: 2, Imm: 0x41},
			vliw.Atom{Op: vliw.AIn, Rd: 16, Imm: 0x42, GIdx: 6}),
		exitMol(),
	)
	interp, _, _ = checkAll(t, "port/pending", pend, mapDev)
	if interp.out.Fault != vliw.FMMIOOrder {
		t.Fatalf("want FMMIOOrder, got %+v", interp.out)
	}
}

func TestControlFlow(t *testing.T) {
	// Unconditional and conditional branches, architectural and renamed
	// images, taken and fallthrough.
	c := code(
		mol(vliw.Atom{Op: vliw.AAddCC, Rd: 16, Ra: 1, Rb: 2, Fd: 20},
			vliw.Atom{Op: vliw.ABrCC, Target: 2, Cond: guest.CondO, Fs: 20}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 3, Imm: 1}, vliw.Atom{Op: vliw.ABr, Target: 3}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 3, Imm: 2}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0},
			vliw.Atom{Op: vliw.ABrNZ, Target: 5, Ra: 1}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 4, Imm: 9}),
		mol(vliw.Atom{Op: vliw.ABrCC, Target: 7, Cond: guest.CondB}), // architectural CF set
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 5, Imm: 7}),
		exitMol(),
	)
	checkAll(t, "ctrl/branches", c)

	// ABrNZ not taken.
	nz := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 0}),
		mol(vliw.Atom{Op: vliw.ABrNZ, Target: 3, Ra: 16}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 3, Imm: 5}),
		exitMol(),
	)
	checkAll(t, "ctrl/brnz-fall", nz)
}

func TestExits(t *testing.T) {
	// Exit without commit: working state beyond the last commit is
	// materialized but not promoted.
	nc := code(
		mol(vliw.Atom{Op: vliw.AAddCC, Rd: 0, Ra: 1, Rb: 2}),
		mol(vliw.Atom{Op: vliw.AExit, Imm: 1}),
	)
	interp, _, _ := checkAll(t, "exit/nocommit", nc)
	if interp.out.Exit != 1 || interp.commits != 0 {
		t.Fatalf("want uncommitted exit 1, got %+v commits=%d", interp.out, interp.commits)
	}

	// Indirect exit: target register read before the commit.
	ind := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: vliw.RTarget, Imm: 0x1234}),
		mol(vliw.Atom{Op: vliw.AExitInd, Imm: 2, Ra: vliw.RTarget, Commit: true}),
	)
	interp, _, _ = checkAll(t, "exit/indirect", ind)
	if !interp.out.Indirect || interp.out.IndTarget != 0x1234 || interp.out.Exit != 2 {
		t.Fatalf("want indirect exit to 0x1234, got %+v", interp.out)
	}

	// Mid-code commit (store-only molecule, commit-safe specialization)
	// updates CommittedEIP and drains the gated buffer.
	mid := code(
		mol(vliw.Atom{Op: vliw.ASt, Ra: 1, Rb: 2, Imm: 0x40, Size: 4},
			vliw.Atom{Op: vliw.ACommit, Imm: 0x777}),
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 0, Imm: 3}),
		exitMol(),
	)
	interp, _, _ = checkAll(t, "exit/midcommit", mid)
	if interp.commits != 2 {
		t.Fatalf("want 2 commits, got %d", interp.commits)
	}

	// Commit-unsafe ACommit molecule (an ALU atom rides along): exact path.
	unsafe := code(
		mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 1},
			vliw.Atom{Op: vliw.ACommit, Imm: 0x778}),
		exitMol(),
	)
	if lc := Lower(unsafe); lc.Exact() != 1 {
		t.Fatalf("commit-unsafe molecule should lower exact, got %d", lc.Exact())
	}
	checkAll(t, "exit/midcommit-exact", unsafe)
}

func TestBadPC(t *testing.T) {
	// Control falls off the end: FBadCode after rollback, identically.
	c := code(mol(vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 1}))
	interp, _, _ := checkAll(t, "badpc", c)
	if interp.out.Fault != vliw.FBadCode || interp.rollbacks != 1 {
		t.Fatalf("want FBadCode with one rollback, got %+v rollbacks=%d", interp.out, interp.rollbacks)
	}
}

func TestExactMolecules(t *testing.T) {
	// Two control atoms in one molecule: never specialized, still equal.
	c := code(
		mol(vliw.Atom{Op: vliw.ABr, Target: 1},
			vliw.Atom{Op: vliw.AExit, Imm: 1}),
		exitMol(),
	)
	if lc := Lower(c); lc.Exact() != 1 {
		t.Fatalf("two-control molecule should lower exact, got %d", lc.Exact())
	}
	checkAll(t, "exact/twoctrl", c)

	// Nops vanish from lowered blocks.
	n := code(
		mol(vliw.Atom{Op: vliw.ANop}, vliw.Atom{Op: vliw.AMovI, Rd: 16, Imm: 2}),
		exitMol(),
	)
	lc := Lower(n)
	if len(lc.Blocks[0].Insns) != 1 { // just the movi; fallthrough is implicit
		t.Fatalf("nop survived lowering: %d insns", len(lc.Blocks[0].Insns))
	}
	checkAll(t, "exact/nop", n)
}

func TestIRQWindow(t *testing.T) {
	irq := func(m *vliw.Machine) {
		c := &dev.IRQController{}
		c.Raise(3)
		m.IRQ = c
	}
	c := code(mol(vliw.Atom{Op: vliw.AMovI, Rd: 0, Imm: 1}), exitMol())
	interp, _, _ := checkAll(t, "irq", c, irq)
	if interp.out.Fault != vliw.FIRQ {
		t.Fatalf("want FIRQ, got %+v", interp.out)
	}
}

// TestWrongCarryHook proves the planted-bug hook changes only the
// materialized flag image, not the data result — exactly the bug class the
// oracle's mutation test demands the ninth leg catch.
func TestWrongCarryHook(t *testing.T) {
	TestWrongCarry = true
	defer func() { TestWrongCarry = false }()

	c := code(
		mol(vliw.Atom{Op: vliw.AAdcCC, Rd: 16, Ra: 1, Rb: 2}),
		exitMol(),
	)
	var regs [guest.NumRegs]uint32
	for i := range regs {
		regs[i] = uint32(0x100 + i)
	}
	ram := make([]byte, 64)
	compiled := runBackend(modeCompiled, c, regs, guest.FlagCF, ram)
	riscv := runBackend(modeRisc, c, regs, guest.FlagCF, ram)
	if riscv.shadow[vliw.RFlags] == compiled.shadow[vliw.RFlags] {
		t.Fatal("wrong-carry hook did not perturb the materialized flags")
	}
	if riscv.regs[16] != compiled.regs[16] {
		t.Fatal("wrong-carry hook leaked into the data result")
	}

	TestWrongCarry = false
	riscv = runBackend(modeRisc, c, regs, guest.FlagCF, ram)
	if riscv.shadow != compiled.shadow {
		t.Fatal("hook off: risc still diverges")
	}
	TestWrongCarry = true
}
