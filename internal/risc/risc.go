// Package risc is the second code-gen backend: a RISC-flavored load/store
// register IR lowered from the vliw backend's scheduled atom form, with its
// own executor (exec.go). The defining difference from the vliw ISA is that
// the instruction set carries no architectural condition codes at all —
// flag-computing operations produce their data result eagerly and record
// the EFLAGS computation as a pending (kind, operands, input-image) triple,
// which the executor materializes lazily: only when a later instruction
// actually consumes the image, or when a commit/exit boundary makes it
// architecturally observable. Dead images — redefined before any consumer
// between boundaries — are never computed. This piggybacks on the dead-flag
// analysis the vliw backend already performs: lowering reuses the Fs/Fd
// renaming that analysis produced, so statically dead flag writes were
// already deleted upstream and the lazy machinery only pays for the
// dynamically dead remainder.
//
// The correctness contract is identical to vliw.Compile's: risc.Exec must
// commit, roll back, fault, and count (Mols/Commits/Rollbacks) bit-
// identically to vliw.Exec on translator output. Lowering therefore mirrors
// Compile's per-molecule gating exactly (vliw.SpecializableMol): any
// molecule shape the closure compiler would decline — multiple control
// atoms, same-molecule read-after-write hazards, mid-molecule commits with
// reorderable neighbors, unknown ops — lowers to a single IExact
// instruction that runs the original molecule through the machine's
// exact-semantics path (vliw.ExecMoleculeExact). The ninth fuzzer-oracle
// leg (internal/fuzzer) and the FuzzRiscLowerRoundtrip native target hold
// the two backends to that contract on every generated program.
package risc

import (
	"cms/internal/guest"
	"cms/internal/vliw"
)

// Op enumerates the register-IR opcodes. There are no condition-code
// registers in this ISA: IAluF records a lazy flag triple instead of
// writing EFLAGS, and the consumers (ISet, IBcc) evaluate the materialized
// image on demand.
type Op uint8

const (
	INop Op = iota
	ILi     // Rd = Imm
	IMov    // Rd = Ra

	// IAlu is the plain ALU: Rd = Ra <Kind> (Rb | Imm). No flag effects.
	IAlu
	// IAluF is the flag-recording ALU: the data result (Rd, and Rd2 for
	// KMul64) is computed eagerly; the EFLAGS image for Fd is recorded
	// lazily as (Kind, a, b, input image) and materialized on demand.
	IAluF

	// IDivU/IDivS: Rd,Rd2 = (Rc:Ra) / Rb, quotient and remainder; #DE
	// faults FGuest. Flags are unchanged by division.
	IDivU
	IDivS

	// ISet: Rd = Cond.Eval(image(Fs)) ? 1 : 0.
	ISet

	// Memory and port I/O, mirroring the vliw atoms one for one: gated
	// stores, store-buffer forwarding loads, alias-table allocation and
	// checking, MMIO ordering faults.
	ILd
	ISt
	IIn
	IOut

	// ICommit commits mid-block (materializing every pending flag image
	// first) and updates CommittedEIP from Imm.
	ICommit

	// Terminators (always the last instruction of their block).
	IBr      // unconditional branch to Target
	IBcc     // branch to Target when Cond.Eval(image(Fs))
	IBnz     // branch to Target when Ra != 0
	IExit    // leave through exit Imm (Commit per flag)
	IExitInd // indirect exit Imm with dynamic target Ra (Commit per flag)

	// IExact runs the original vliw molecule through the machine's
	// exact-semantics path — the lowering analogue of Compile's fallback
	// closure, taken for any molecule SpecializableMol declines.
	IExact
)

// Kind selects the IAlu operator and the IAluF flag-record kind. The K*
// kinds never touch flags; the KF* kinds define how the lazy materializer
// reconstructs the EFLAGS image from the recorded operands.
type Kind uint8

const (
	KAdd Kind = iota
	KSub
	KAnd
	KOr
	KXor
	KShl
	KShr
	KSar

	KFAdd
	KFSub
	KFAdc
	KFSbb
	KFInc
	KFDec
	KFNeg
	KFAnd
	KFOr
	KFXor
	KFShl
	KFShr
	KFSar
	KFImul
	KFMul64
)

// Insn is one register-IR instruction. Fs/Fd are normalized at lower time
// (the effective RFlags substitution of vliw.FlagSrc/FlagDst is applied
// once here, not per execution).
type Insn struct {
	Op   Op
	Kind Kind
	BI   bool // immediate second operand (IAlu/IAluF)

	Rd, Rd2, Ra, Rb, Rc vliw.HReg
	Fs, Fd              vliw.HReg
	Imm                 uint32
	Cond                guest.Cond

	// Memory operands, carried over from the source atom unchanged.
	Size      uint8
	Reordered bool
	ProtIdx   int8
	CheckMask uint64

	Target int32
	Commit bool
	GIdx   int16

	// Mol is the source molecule of an IExact instruction.
	Mol *vliw.Molecule
}

// Block is the lowering of one vliw molecule: the non-control atoms in atom
// order, then the control atom (if any) as the terminator. Blocks are 1:1
// with molecules, so branch targets and the Mols counter carry over without
// translation.
type Block struct {
	Insns []Insn
}

// Code is the executable register-IR form of one translation.
type Code struct {
	Blocks   []Block
	NumExits int

	specialized int
	exact       int
}

// Len returns the number of blocks (= source molecules).
func (c *Code) Len() int { return len(c.Blocks) }

// Specialized returns how many molecules lowered to register-IR blocks.
func (c *Code) Specialized() int { return c.specialized }

// Exact returns how many molecules lowered to the exact-semantics fallback.
func (c *Code) Exact() int { return c.exact }

// Lower builds the register-IR form of scheduled vliw code. Like
// vliw.Compile it never fails: any molecule it cannot lower faithfully
// becomes an IExact block, so Lower(code) and code are always behaviorally
// interchangeable. Lowering is deterministic: equal inputs produce equal
// Code (the FuzzRiscLowerRoundtrip target asserts this).
func Lower(code *vliw.Code) *Code {
	if code == nil {
		return nil
	}
	c := &Code{Blocks: make([]Block, len(code.Mols)), NumExits: code.NumExits}
	for i := range code.Mols {
		c.Blocks[i] = c.lowerMol(&code.Mols[i])
	}
	return c
}

// exactBlock wraps a molecule the specializer declined.
func exactBlock(mol *vliw.Molecule) Block {
	return Block{Insns: []Insn{{Op: IExact, Mol: mol}}}
}

// lowerMol lowers one molecule, mirroring Compile's gating exactly.
func (c *Code) lowerMol(mol *vliw.Molecule) Block {
	ctrlIdx, ok := vliw.SpecializableMol(mol)
	if !ok {
		c.exact++
		return exactBlock(mol)
	}
	insns := make([]Insn, 0, len(mol.Atoms))
	for i := range mol.Atoms {
		a := &mol.Atoms[i]
		if i == ctrlIdx || a.Op == vliw.ANop {
			continue
		}
		in, okA := lowerAtom(a)
		if !okA { // unknown op: preserve execAtom's fault behavior
			c.exact++
			return exactBlock(mol)
		}
		insns = append(insns, in)
	}
	if ctrlIdx >= 0 {
		insns = append(insns, lowerCtrl(&mol.Atoms[ctrlIdx]))
	}
	c.specialized++
	return Block{Insns: insns}
}

// aluKinds maps plain-ALU atom ops to (Kind, immediate-form).
func aluKind(op vliw.AtomOp) (Kind, bool, bool) {
	switch op {
	case vliw.AAdd:
		return KAdd, false, true
	case vliw.AAddI:
		return KAdd, true, true
	case vliw.ASub:
		return KSub, false, true
	case vliw.ASubI:
		return KSub, true, true
	case vliw.AAnd:
		return KAnd, false, true
	case vliw.AAndI:
		return KAnd, true, true
	case vliw.AOr:
		return KOr, false, true
	case vliw.AOrI:
		return KOr, true, true
	case vliw.AXor:
		return KXor, false, true
	case vliw.AXorI:
		return KXor, true, true
	case vliw.AShl:
		return KShl, false, true
	case vliw.AShlI:
		return KShl, true, true
	case vliw.AShr:
		return KShr, false, true
	case vliw.AShrI:
		return KShr, true, true
	case vliw.ASar:
		return KSar, false, true
	case vliw.ASarI:
		return KSar, true, true
	}
	return 0, false, false
}

// aluFKind maps flag-computing atom ops to (flag Kind, immediate-form).
func aluFKind(op vliw.AtomOp) (Kind, bool, bool) {
	switch op {
	case vliw.AAddCC:
		return KFAdd, false, true
	case vliw.AAddICC:
		return KFAdd, true, true
	case vliw.ASubCC:
		return KFSub, false, true
	case vliw.ASubICC:
		return KFSub, true, true
	case vliw.AAndCC:
		return KFAnd, false, true
	case vliw.AAndICC:
		return KFAnd, true, true
	case vliw.AOrCC:
		return KFOr, false, true
	case vliw.AOrICC:
		return KFOr, true, true
	case vliw.AXorCC:
		return KFXor, false, true
	case vliw.AXorICC:
		return KFXor, true, true
	case vliw.AShlCC:
		return KFShl, false, true
	case vliw.AShlICC:
		return KFShl, true, true
	case vliw.AShrCC:
		return KFShr, false, true
	case vliw.AShrICC:
		return KFShr, true, true
	case vliw.ASarCC:
		return KFSar, false, true
	case vliw.ASarICC:
		return KFSar, true, true
	case vliw.AAdcCC:
		return KFAdc, false, true
	case vliw.AAdcICC:
		return KFAdc, true, true
	case vliw.ASbbCC:
		return KFSbb, false, true
	case vliw.ASbbICC:
		return KFSbb, true, true
	case vliw.AIncCC:
		return KFInc, false, true
	case vliw.ADecCC:
		return KFDec, false, true
	case vliw.ANegCC:
		return KFNeg, false, true
	case vliw.AImulCC:
		return KFImul, false, true
	case vliw.AMul64:
		return KFMul64, false, true
	}
	return 0, false, false
}

// lowerAtom lowers one non-control atom. ok false means the whole molecule
// must fall back to IExact.
func lowerAtom(a *vliw.Atom) (Insn, bool) {
	if k, bi, ok := aluKind(a.Op); ok {
		return Insn{Op: IAlu, Kind: k, BI: bi, Rd: a.Rd, Ra: a.Ra, Rb: a.Rb, Imm: a.Imm}, true
	}
	if k, bi, ok := aluFKind(a.Op); ok {
		return Insn{Op: IAluF, Kind: k, BI: bi, Rd: a.Rd, Rd2: a.Rd2, Ra: a.Ra, Rb: a.Rb,
			Imm: a.Imm, Fs: vliw.FlagSrc(*a), Fd: vliw.FlagDst(*a)}, true
	}
	switch a.Op {
	case vliw.AMovI:
		return Insn{Op: ILi, Rd: a.Rd, Imm: a.Imm}, true
	case vliw.AMov:
		return Insn{Op: IMov, Rd: a.Rd, Ra: a.Ra}, true
	case vliw.ADivU:
		return Insn{Op: IDivU, Rd: a.Rd, Rd2: a.Rd2, Ra: a.Ra, Rb: a.Rb, Rc: a.Rc, GIdx: a.GIdx}, true
	case vliw.ADivS:
		return Insn{Op: IDivS, Rd: a.Rd, Rd2: a.Rd2, Ra: a.Ra, Rb: a.Rb, Rc: a.Rc, GIdx: a.GIdx}, true
	case vliw.ASetCC:
		return Insn{Op: ISet, Rd: a.Rd, Cond: a.Cond, Fs: vliw.FlagSrc(*a)}, true
	case vliw.ALd:
		return Insn{Op: ILd, Rd: a.Rd, Ra: a.Ra, Imm: a.Imm, Size: a.Size,
			Reordered: a.Reordered, ProtIdx: a.ProtIdx, GIdx: a.GIdx}, true
	case vliw.ASt:
		return Insn{Op: ISt, Ra: a.Ra, Rb: a.Rb, Imm: a.Imm, Size: a.Size,
			Reordered: a.Reordered, CheckMask: a.CheckMask, GIdx: a.GIdx}, true
	case vliw.AIn:
		return Insn{Op: IIn, Rd: a.Rd, Imm: a.Imm, GIdx: a.GIdx}, true
	case vliw.AOut:
		return Insn{Op: IOut, Rb: a.Rb, Imm: a.Imm}, true
	}
	return Insn{}, false
}

// lowerCtrl lowers the molecule's single control atom into the block
// terminator.
func lowerCtrl(a *vliw.Atom) Insn {
	switch a.Op {
	case vliw.ABr:
		return Insn{Op: IBr, Target: a.Target}
	case vliw.ABrCC:
		return Insn{Op: IBcc, Target: a.Target, Cond: a.Cond, Fs: vliw.FlagSrc(*a)}
	case vliw.ABrNZ:
		return Insn{Op: IBnz, Target: a.Target, Ra: a.Ra}
	case vliw.AExit:
		return Insn{Op: IExit, Imm: a.Imm, Commit: a.Commit}
	case vliw.AExitInd:
		return Insn{Op: IExitInd, Imm: a.Imm, Ra: a.Ra, Commit: a.Commit}
	case vliw.ACommit:
		return Insn{Op: ICommit, Imm: a.Imm}
	}
	return Insn{Op: INop}
}
