package tcache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cms/internal/asm"
	"cms/internal/interp"
	"cms/internal/mem"
	"cms/internal/xlate"
)

// sharedReq freezes a translation request for a small hot loop, with a
// distinguishing immediate so different programs hash differently.
func sharedReq(t *testing.T, imm int) *xlate.Request {
	t.Helper()
	prog, err := asm.Assemble(`
.org 0x1000
_start:
	mov ecx, ` + itoa(imm) + `
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := mem.NewBus(1 << 20)
	bus.WriteRaw(prog.Org, prog.Image)
	tr := &xlate.Translator{Bus: bus, Prof: interp.NewProfile(), CompileBackend: true}
	req, err := tr.Prepare(prog.Entry(), xlate.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSharedStoreDedup(t *testing.T) {
	s := NewShared(0)
	t1, hit, err := s.Translate(sharedReq(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request must miss")
	}
	t2, hit, err := s.Translate(sharedReq(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical request from a second VM must hit")
	}
	if t2 != t1 {
		t.Error("hit must return the stored artifact")
	}
	if _, hit, _ := s.Translate(sharedReq(t, 11)); hit {
		t.Error("different source bytes must miss")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

// TestSharedStoreSingleFlight hammers one key from many goroutines and
// asserts every caller gets the same artifact while the backend ran at most
// a handful of times (no thundering herd). Run under -race this is also the
// store's concurrency-safety test.
func TestSharedStoreSingleFlight(t *testing.T) {
	s := NewShared(0)
	const n = 16
	results := make([]*xlate.Translation, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl, _, err := s.Translate(sharedReq(t, 7))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = tl
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("callers observed different artifacts for one key")
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("backend ran %d times for one key, want 1 (waits %d, hits %d)",
			st.Misses, st.Waits, st.Hits)
	}
	if st.Hits+st.Waits != n-1 {
		t.Errorf("hits %d + waits %d, want %d", st.Hits, st.Waits, n-1)
	}
}

func TestSharedStoreEviction(t *testing.T) {
	first, _, err := NewShared(0).Translate(sharedReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly two artifacts: inserting a third evicts the LRU.
	// One shard pins the whole budget to one LRU list so the eviction order
	// is exact; multi-shard budget behavior is TestSharedStoreTorture's job.
	s := NewSharedShards(2*first.CodeAtoms()+first.CodeAtoms()/2, 1)
	for imm := 1; imm <= 3; imm++ {
		if _, _, err := s.Translate(sharedReq(t, imm)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a two-artifact budget: %+v", st)
	}
	if st.Atoms > 2*first.CodeAtoms()+first.CodeAtoms()/2 {
		t.Errorf("store over budget: %d atoms", st.Atoms)
	}
	// imm=1 was evicted (LRU): re-requesting it must miss and re-translate.
	if _, hit, _ := s.Translate(sharedReq(t, 1)); hit {
		t.Error("evicted entry must miss")
	}
}

// TestSharedStoreShardSizing checks the shard array is a power of two and
// that keys spread across it by prefix.
func TestSharedStoreShardSizing(t *testing.T) {
	for req, want := range map[int]int{0: 0, 1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 1 << 20: maxShards} {
		s := NewSharedShards(0, req)
		n := s.NumShards()
		if want != 0 && n != want {
			t.Errorf("shards(%d) = %d, want %d", req, n, want)
		}
		if n&(n-1) != 0 || n < 1 {
			t.Errorf("shards(%d) = %d, not a power of two", req, n)
		}
	}
	if n := NewShared(0).NumShards(); n < 1 {
		t.Errorf("default store has %d shards", n)
	}
}

// TestSharedStoreTorture is the sharded store's concurrency contract, meant
// to run under -race: many goroutines hammer Get/insert/evict over an
// overlapping key set spread across a wide shard array with a budget tight
// enough to force constant eviction, while other goroutines read Stats().
// Afterwards it asserts single-flight dedup (on a second, unbounded store),
// the per-shard atom-budget invariant, and that the stats counters sum
// exactly to the number of requests issued.
func TestSharedStoreTorture(t *testing.T) {
	const (
		keys    = 24
		workers = 8
		iters   = 30
	)
	reqs := make([]*xlate.Request, keys)
	for i := range reqs {
		reqs[i] = sharedReq(t, i+1)
	}
	atoms := make([]int, keys)
	{
		probe := NewShared(0)
		for i, r := range reqs {
			tl, _, err := probe.Translate(r)
			if err != nil {
				t.Fatal(err)
			}
			atoms[i] = tl.CodeAtoms()
		}
	}
	maxAtoms := 0
	for _, a := range atoms {
		if a > maxAtoms {
			maxAtoms = a
		}
	}

	// Tight store: 16 shards over a budget of ~6 artifacts total, so most
	// shards cannot hold even two entries and eviction churns continuously.
	s := NewSharedShards(6*maxAtoms, 16)
	var total atomic.Uint64
	var wg, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Stats() // concurrent reader: must never race or block progress
					time.Sleep(100 * time.Microsecond)
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Overlapping slices of the key set per worker, so the same
				// key is requested from several goroutines at once.
				r := reqs[(w*7+i)%keys]
				if _, _, err := s.Translate(r); err != nil {
					t.Error(err)
					return
				}
				total.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	if got := st.Hits + st.Waits + st.Misses; got != total.Load() {
		t.Errorf("stats sum to %d requests, issued %d", got, total.Load())
	}
	if st.Evictions == 0 {
		t.Error("tight budget never evicted")
	}
	// Per-shard invariants: accounted atoms match resident entries, and no
	// shard exceeds its sub-budget unless a single oversized entry forces it.
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sum := 0
		for _, e := range sh.entries {
			sum += e.atoms
		}
		if sum != sh.curAtoms {
			t.Errorf("shard %d: accounted %d atoms, entries hold %d", i, sh.curAtoms, sum)
		}
		if sh.curAtoms > sh.capAtoms && len(sh.entries) > 1 {
			t.Errorf("shard %d: %d atoms over budget %d with %d entries",
				i, sh.curAtoms, sh.capAtoms, len(sh.entries))
		}
		if sh.lru.Len() != len(sh.entries) {
			t.Errorf("shard %d: lru %d vs entries %d", i, sh.lru.Len(), len(sh.entries))
		}
		if len(sh.inflight) != 0 {
			t.Errorf("shard %d: %d flights leaked", i, len(sh.inflight))
		}
		sh.mu.Unlock()
	}

	// Unbounded store, same concurrent access pattern: single-flight means
	// the backend runs at most once per distinct key.
	big := NewSharedShards(0, 16)
	var total2 atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, _, err := big.Translate(reqs[(w*5+i)%keys]); err != nil {
					t.Error(err)
					return
				}
				total2.Add(1)
			}
		}(w)
	}
	wg.Wait()
	st = big.Stats()
	if st.Misses > keys {
		t.Errorf("backend ran %d times for %d distinct keys (single-flight broken)", st.Misses, keys)
	}
	if st.Hits+st.Waits+st.Misses != total2.Load() {
		t.Errorf("stats sum %d, issued %d", st.Hits+st.Waits+st.Misses, total2.Load())
	}
	if st.Entries != keys {
		t.Errorf("unbounded store resident entries = %d, want %d", st.Entries, keys)
	}
}

func TestSharedStoreDedupRatio(t *testing.T) {
	if r := (SharedStats{}).DedupRatio(); r != 0 {
		t.Errorf("empty ratio = %v", r)
	}
	if r := (SharedStats{Hits: 9, Misses: 1}).DedupRatio(); r != 0.9 {
		t.Errorf("ratio = %v, want 0.9", r)
	}
}

// TestSharedStorePoisonTTL covers the quarantine lifecycle: poisoning drops
// the cached artifact and makes lookups translate privately (no cache, no
// single-flight), every bypass is counted, and the key rejoins normal
// sharing once the TTL lapses.
func TestSharedStorePoisonTTL(t *testing.T) {
	s := NewSharedShards(0, 4)
	req := sharedReq(t, 5)
	key := req.Key()
	if _, hit, err := s.Translate(req); err != nil || hit {
		t.Fatalf("prime: hit=%v err=%v", hit, err)
	}
	s.Poison(key, 50*time.Millisecond)
	st := s.Stats()
	if st.Poisons != 1 || st.Poisoned != 1 || st.Entries != 0 {
		t.Fatalf("after poison: poisons=%d poisoned=%d entries=%d", st.Poisons, st.Poisoned, st.Entries)
	}
	if _, hit, err := s.Translate(sharedReq(t, 5)); err != nil || hit {
		t.Errorf("poisoned key must translate privately: hit=%v err=%v", hit, err)
	}
	if st := s.Stats(); st.PoisonHits != 1 {
		t.Errorf("poison hits = %d, want 1", st.PoisonHits)
	}

	deadline := time.Now().Add(5 * time.Second)
	for s.PoisonedKeys() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("poison TTL never expired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Post-expiry: the dropped artifact misses once, then shares again.
	if _, hit, _ := s.Translate(sharedReq(t, 5)); hit {
		t.Error("post-expiry lookup must miss: the artifact was dropped at poison time")
	}
	if _, hit, _ := s.Translate(sharedReq(t, 5)); !hit {
		t.Error("key did not rejoin sharing after the TTL expired")
	}
}

// TestSharedStorePoisonConcurrent races poisoners against translators on one
// key under -race: no matter the interleaving, every Translate returns a
// valid artifact or a clean private translation, and counters stay coherent.
func TestSharedStorePoisonConcurrent(t *testing.T) {
	s := NewSharedShards(0, 4)
	req := sharedReq(t, 9)
	key := req.Key()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if tl, _, err := s.Translate(sharedReq(t, 9)); err != nil || tl == nil {
					t.Errorf("translate under poison race: %v", err)
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				s.Poison(key, time.Millisecond)
				time.Sleep(500 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Poisons != 20 {
		t.Errorf("poisons = %d, want 20", st.Poisons)
	}
}
