package tcache

import (
	"sync"
	"testing"

	"cms/internal/asm"
	"cms/internal/interp"
	"cms/internal/mem"
	"cms/internal/xlate"
)

// sharedReq freezes a translation request for a small hot loop, with a
// distinguishing immediate so different programs hash differently.
func sharedReq(t *testing.T, imm int) *xlate.Request {
	t.Helper()
	prog, err := asm.Assemble(`
.org 0x1000
_start:
	mov ecx, ` + itoa(imm) + `
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	bus := mem.NewBus(1 << 20)
	bus.WriteRaw(prog.Org, prog.Image)
	tr := &xlate.Translator{Bus: bus, Prof: interp.NewProfile(), CompileBackend: true}
	req, err := tr.Prepare(prog.Entry(), xlate.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestSharedStoreDedup(t *testing.T) {
	s := NewShared(0)
	t1, hit, err := s.Translate(sharedReq(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first request must miss")
	}
	t2, hit, err := s.Translate(sharedReq(t, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("identical request from a second VM must hit")
	}
	if t2 != t1 {
		t.Error("hit must return the stored artifact")
	}
	if _, hit, _ := s.Translate(sharedReq(t, 11)); hit {
		t.Error("different source bytes must miss")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 2 entries", st)
	}
}

// TestSharedStoreSingleFlight hammers one key from many goroutines and
// asserts every caller gets the same artifact while the backend ran at most
// a handful of times (no thundering herd). Run under -race this is also the
// store's concurrency-safety test.
func TestSharedStoreSingleFlight(t *testing.T) {
	s := NewShared(0)
	const n = 16
	results := make([]*xlate.Translation, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tl, _, err := s.Translate(sharedReq(t, 7))
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = tl
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("callers observed different artifacts for one key")
		}
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Errorf("backend ran %d times for one key, want 1 (waits %d, hits %d)",
			st.Misses, st.Waits, st.Hits)
	}
	if st.Hits+st.Waits != n-1 {
		t.Errorf("hits %d + waits %d, want %d", st.Hits, st.Waits, n-1)
	}
}

func TestSharedStoreEviction(t *testing.T) {
	first, _, err := NewShared(0).Translate(sharedReq(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Budget for roughly two artifacts: inserting a third evicts the LRU.
	s := NewShared(2*first.CodeAtoms() + first.CodeAtoms()/2)
	for imm := 1; imm <= 3; imm++ {
		if _, _, err := s.Translate(sharedReq(t, imm)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions under a two-artifact budget: %+v", st)
	}
	if st.Atoms > 2*first.CodeAtoms()+first.CodeAtoms()/2 {
		t.Errorf("store over budget: %d atoms", st.Atoms)
	}
	// imm=1 was evicted (LRU): re-requesting it must miss and re-translate.
	if _, hit, _ := s.Translate(sharedReq(t, 1)); hit {
		t.Error("evicted entry must miss")
	}
}

func TestSharedStoreDedupRatio(t *testing.T) {
	if r := (SharedStats{}).DedupRatio(); r != 0 {
		t.Errorf("empty ratio = %v", r)
	}
	if r := (SharedStats{Hits: 9, Misses: 1}).DedupRatio(); r != 0.9 {
		t.Errorf("ratio = %v, want 0.9", r)
	}
}
