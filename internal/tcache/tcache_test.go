package tcache

import (
	"testing"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/ir"
	"cms/internal/mem"
	"cms/internal/xlate"
)

// mkTrans translates a small real program at org so entries carry genuine
// metadata.
func mkTrans(t *testing.T, bus *mem.Bus, org uint32) *xlate.Translation {
	t.Helper()
	b := asm.NewBuilder(org)
	b.MovRI(3, 1).AddRI(3, 2).Jmp("next").Label("next").Nop().Hlt()
	bus.WriteRaw(org, b.MustAssemble())
	tr := &xlate.Translator{Bus: bus, CompileBackend: true}
	tl, err := tr.Translate(org, xlate.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Compiled == nil {
		t.Fatal("translator did not compile the translation")
	}
	return tl
}

func newBus() *mem.Bus { return dev.NewPlatform(1<<20, nil).Bus }

func TestInstallLookup(t *testing.T) {
	bus := newBus()
	c := New()
	tl := mkTrans(t, bus, 0x1000)
	e := c.Install(tl)
	if !e.Valid {
		t.Fatal("installed entry invalid")
	}
	if got := c.Lookup(0x1000); got != e {
		t.Fatal("lookup missed")
	}
	if c.Lookup(0x2000) != nil {
		t.Fatal("phantom hit")
	}
	if c.Stats.Lookups != 2 || c.Stats.Hits != 1 || c.Stats.Installs != 1 {
		t.Errorf("stats: %+v", c.Stats)
	}
	n, atoms := c.Size()
	if n != 1 || atoms != tl.CodeAtoms() {
		t.Errorf("size: %d entries %d atoms", n, atoms)
	}
}

func TestReinstallReplaces(t *testing.T) {
	bus := newBus()
	c := New()
	e1 := c.Install(mkTrans(t, bus, 0x1000))
	e2 := c.Install(mkTrans(t, bus, 0x1000))
	if e1.Valid {
		t.Error("old entry must be invalidated")
	}
	if c.Lookup(0x1000) != e2 {
		t.Error("lookup must find the new entry")
	}
}

func TestChainingAndUnchain(t *testing.T) {
	bus := newBus()
	c := New()
	a := c.Install(mkTrans(t, bus, 0x1000))
	b := c.Install(mkTrans(t, bus, 0x3000))
	c.Chain(a, 0, b)
	if a.Chained(0) != b {
		t.Fatal("chain not set")
	}
	// Chaining twice is a no-op.
	c.Chain(a, 0, a)
	if a.Chained(0) != b {
		t.Fatal("chain overwritten")
	}
	// Invalidating the target unchains.
	c.Invalidate(b)
	if a.Chained(0) != nil {
		t.Fatal("stale chain survived invalidation")
	}
	if c.Stats.Unchains != 1 {
		t.Errorf("unchains = %d", c.Stats.Unchains)
	}
}

// TestMidChainInvalidateTearsDown covers the SMC teardown obligation of the
// compiled backend: invalidating a translation in the middle of a chain must
// unchain every incoming link, so no stale compiled closures are reachable
// through either the dispatcher or a chained exit.
func TestMidChainInvalidateTearsDown(t *testing.T) {
	bus := newBus()
	c := New()
	a := c.Install(mkTrans(t, bus, 0x1000))
	b := c.Install(mkTrans(t, bus, 0x3000))
	d := c.Install(mkTrans(t, bus, 0x5000))
	c.Chain(a, 0, b)
	c.Chain(b, 0, d)

	// SMC hits b's source bytes: the range invalidation used by the
	// engine's protection-fault path.
	hit := c.InvalidateRange(0x3000, 1)
	if len(hit) != 1 || hit[0] != b {
		t.Fatalf("range invalidation hit %d entries", len(hit))
	}
	if b.Valid {
		t.Fatal("middle entry still valid")
	}
	// The incoming chain a->b is torn down; the dispatcher path is gone too.
	if a.Chained(0) != nil {
		t.Fatal("stale chain into invalidated entry survived")
	}
	if c.Lookup(0x3000) != nil {
		t.Fatal("lookup still returns invalidated entry")
	}
	// b's own outgoing chain dies with it (b is unreachable), while d keeps
	// running: its entry, and its compiled code, are untouched.
	if b.Chained(0) != nil {
		t.Fatal("invalidated entry still reports an outgoing chain")
	}
	if !d.Valid || d.T.Compiled == nil {
		t.Fatal("downstream entry must survive with its compiled code")
	}
	// b was retired into its group (§3.6.5): the compiled code rides along
	// so a matching reinstall stays cheap, but it is only reachable again
	// through GroupMatch, which re-verifies the source bytes first.
	if b.T.Compiled == nil {
		t.Error("retired translation should keep compiled code for group reuse")
	}
}

// TestReplaceInPlaceDropsCompiled covers the other lifecycle edge: when an
// entry is replaced by a new translation at the same address, the old
// translation is not retired and its compiled code must be dropped eagerly.
func TestReplaceInPlaceDropsCompiled(t *testing.T) {
	bus := newBus()
	c := New()
	e1 := c.Install(mkTrans(t, bus, 0x1000))
	old := e1.T
	e2 := c.Install(mkTrans(t, bus, 0x1000))
	if e1.Valid {
		t.Fatal("old entry must be invalidated")
	}
	if old.Compiled != nil {
		t.Error("replaced-in-place translation kept stale compiled code")
	}
	if e2.T.Compiled == nil {
		t.Error("new translation lost its compiled code")
	}
}

func TestInvalidatePage(t *testing.T) {
	bus := newBus()
	c := New()
	c.Install(mkTrans(t, bus, 0x1000))
	c.Install(mkTrans(t, bus, 0x1800)) // same page
	c.Install(mkTrans(t, bus, 0x3000)) // other page
	if n := c.InvalidatePage(1); n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if c.Lookup(0x1000) != nil || c.Lookup(0x1800) != nil {
		t.Error("page entries must be gone")
	}
	if c.Lookup(0x3000) == nil {
		t.Error("other page must survive")
	}
}

func TestInvalidateRange(t *testing.T) {
	bus := newBus()
	c := New()
	e1 := c.Install(mkTrans(t, bus, 0x1000))
	c.Install(mkTrans(t, bus, 0x1800))
	hit := c.InvalidateRange(0x1002, 2)
	if len(hit) != 1 || hit[0] != e1 {
		t.Fatalf("range invalidation hit %d entries", len(hit))
	}
	if c.Lookup(0x1800) == nil {
		t.Error("non-overlapping entry must survive")
	}
	// Overlapping() does not invalidate.
	if len(c.Overlapping(0x1800, 4)) != 1 {
		t.Error("Overlapping miscounted")
	}
	if c.Lookup(0x1800) == nil {
		t.Error("Overlapping must not invalidate")
	}
}

func TestPageChunkMask(t *testing.T) {
	bus := newBus()
	c := New()
	c.Install(mkTrans(t, bus, 0x1000)) // chunk 0 of page 1
	c.Install(mkTrans(t, bus, 0x1E00)) // chunk 28 of page 1
	mask := c.PageChunkMask(1)
	if mask&1 == 0 {
		t.Error("chunk 0 missing")
	}
	if mask&(1<<(0xE00/mem.ChunkSize)) == 0 {
		t.Error("chunk 28 missing")
	}
}

func TestGroups(t *testing.T) {
	bus := newBus()
	c := New()
	e := c.Install(mkTrans(t, bus, 0x1000))
	c.Invalidate(e) // retired into the group
	if c.GroupSize(0x1000) != 1 {
		t.Fatalf("group size %d", c.GroupSize(0x1000))
	}
	// Memory unchanged: the retired version matches and is removed.
	tl := c.GroupMatch(0x1000, bus)
	if tl == nil {
		t.Fatal("group match failed")
	}
	if c.GroupSize(0x1000) != 0 {
		t.Error("matched version must leave the group")
	}
	// Re-retire, patch code, no match.
	e2 := c.Install(tl)
	c.Invalidate(e2)
	bus.WriteRaw(0x1000, []byte{0xEE})
	if c.GroupMatch(0x1000, bus) != nil {
		t.Error("modified source must not match")
	}
	if c.Stats.GroupHits != 1 || c.Stats.GroupRetires != 2 {
		t.Errorf("group stats: %+v", c.Stats)
	}
}

func TestCapacityFlush(t *testing.T) {
	bus := newBus()
	c := New()
	tl := mkTrans(t, bus, 0x1000)
	c.CapAtoms = tl.CodeAtoms() + 1 // room for exactly one
	c.Install(tl)
	c.Install(mkTrans(t, bus, 0x3000))
	if c.Stats.Flushes != 1 {
		t.Fatalf("flushes = %d", c.Stats.Flushes)
	}
	if c.Lookup(0x1000) != nil {
		t.Error("flush must drop old entries")
	}
	if c.Lookup(0x3000) == nil {
		t.Error("new entry must be present after flush")
	}
}

func TestExitMetadataUsable(t *testing.T) {
	bus := newBus()
	c := New()
	e := c.Install(mkTrans(t, bus, 0x1000))
	if len(e.T.Exits) == 0 {
		t.Fatal("translation has no exits")
	}
	for _, x := range e.T.Exits {
		if x.Kind == ir.ExitJump && x.Insns == 0 {
			t.Error("exit retire count missing")
		}
	}
}

func TestColdestFirstEviction(t *testing.T) {
	bus := newBus()
	c := New()
	// Three same-size entries; budget fits exactly three.
	cold := c.Install(mkTrans(t, bus, 0x1000))
	warm := c.Install(mkTrans(t, bus, 0x3000))
	hot := c.Install(mkTrans(t, bus, 0x5000))
	cold.Execs, warm.Execs, hot.Execs = 1, 10, 100
	_, atoms := c.Size()
	c.CapAtoms = atoms

	// A fourth install must displace exactly the coldest entry.
	e4 := c.Install(mkTrans(t, bus, 0x7000))
	if cold.Valid {
		t.Error("coldest entry survived eviction")
	}
	if !warm.Valid || !hot.Valid || !e4.Valid {
		t.Error("eviction removed more than the coldest entry")
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats.Evictions)
	}
	if c.Stats.Flushes != 0 {
		t.Errorf("flushes = %d, want 0 (eviction must avoid the flush cliff)", c.Stats.Flushes)
	}
	// Evicted translations retire into their group for §3.6.5 revival.
	if c.GroupSize(0x1000) != 1 {
		t.Errorf("evicted translation not retired into its group")
	}
}

func TestEvictionTieBreaksByAddress(t *testing.T) {
	bus := newBus()
	c := New()
	a := c.Install(mkTrans(t, bus, 0x3000))
	b := c.Install(mkTrans(t, bus, 0x1000))
	// Equal Execs: the lower entry address goes first, deterministically.
	_, atoms := c.Size()
	c.CapAtoms = atoms
	c.Install(mkTrans(t, bus, 0x5000))
	if b.Valid {
		t.Error("tie-break victim (lower address) survived")
	}
	if !a.Valid {
		t.Error("tie-break evicted the wrong entry")
	}
}
