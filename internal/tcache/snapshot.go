package tcache

import (
	"fmt"
	"sort"

	"cms/internal/xlate"
)

// ITCState is one valid indirect-target-cache slot.
type ITCState struct {
	Slot   int    `json:"slot"`
	Target uint32 `json:"target"`
	To     uint32 `json:"to"` // entry address of the cached successor
}

// EntryState is the serializable state of one installed translation. The
// translation itself is represented by its frozen request (never the
// artifact): restore re-runs or re-fetches it by content, bit-identically.
type EntryState struct {
	Req             *xlate.RequestImage `json:"req"`
	Execs           uint64              `json:"execs"`
	FaultCounts     [8]uint32           `json:"fault_counts"`
	SpecGuestFaults uint32              `json:"spec_guest_faults"`
	Armed           bool                `json:"armed"`
	SelfReval       bool                `json:"self_reval"`
	// Chains holds, per exit, the entry address this exit is chained to, or
	// -1 when the exit returns to the dispatcher.
	Chains []int64    `json:"chains"`
	ITC    []ITCState `json:"itc,omitempty"`
}

// GroupState is the retired-translation group of one entry address, in
// group order (GroupMatch scans in order, so order is semantics).
type GroupState struct {
	Entry   uint32                `json:"entry"`
	Members []*xlate.RequestImage `json:"members"`
}

// CacheState is the serializable state of a translation cache.
type CacheState struct {
	// Entries lists valid translations in install order — byPage list order
	// (hence invalidation order) is install order, so restore must replay
	// installs in the same sequence.
	Entries []EntryState `json:"entries"`
	Groups  []GroupState `json:"groups,omitempty"`
	Stats   Stats        `json:"stats"`
}

// ExportState captures the cache. Every installed translation and every
// retired group member must carry its frozen request (translations made by
// this repository's translator always do).
func (c *Cache) ExportState() (*CacheState, error) {
	s := &CacheState{Stats: c.Stats}
	entries := make([]*Entry, 0, len(c.byEntry))
	for _, e := range c.byEntry {
		if e.Valid {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	for _, e := range entries {
		if e.T.Req == nil {
			return nil, fmt.Errorf("tcache: translation at %#x has no frozen request", e.T.Entry)
		}
		es := EntryState{
			Req:             e.T.Req.Image(),
			Execs:           e.Execs,
			FaultCounts:     e.FaultCounts,
			SpecGuestFaults: e.SpecGuestFaults,
			Armed:           e.Armed,
			SelfReval:       e.SelfReval,
			Chains:          make([]int64, len(e.chains)),
		}
		for i, to := range e.chains {
			if to != nil && to.Valid {
				es.Chains[i] = int64(to.T.Entry)
			} else {
				es.Chains[i] = -1
			}
		}
		for i, slot := range e.itc {
			if slot.to != nil && slot.to.Valid {
				es.ITC = append(es.ITC, ITCState{Slot: i, Target: slot.target, To: slot.to.T.Entry})
			}
		}
		s.Entries = append(s.Entries, es)
	}
	groupAddrs := make([]uint32, 0, len(c.groups))
	for a, g := range c.groups {
		if len(g) > 0 {
			groupAddrs = append(groupAddrs, a)
		}
	}
	sort.Slice(groupAddrs, func(i, j int) bool { return groupAddrs[i] < groupAddrs[j] })
	for _, a := range groupAddrs {
		gs := GroupState{Entry: a}
		for _, t := range c.groups[a] {
			if t.Req == nil {
				return nil, fmt.Errorf("tcache: retired translation at %#x has no frozen request", t.Entry)
			}
			gs.Members = append(gs.Members, t.Req.Image())
		}
		s.Groups = append(s.Groups, gs)
	}
	return s, nil
}

// RestoreState rebuilds the cache from a captured state. The cache must be
// empty. translate materializes each frozen request — straight through
// xlate.Request.Translate, or via a shared store for instant reuse; either
// way the artifact is bit-identical, so the rebuilt cache behaves exactly
// like the captured one. Stats are overwritten with the captured counters
// afterwards (the replayed installs must not double-count).
func (c *Cache) RestoreState(s *CacheState, translate func(*xlate.Request) (*xlate.Translation, error)) error {
	if n, _ := c.Size(); n != 0 {
		return fmt.Errorf("tcache: restore into non-empty cache (%d entries)", n)
	}
	materialize := func(im *xlate.RequestImage) (*xlate.Translation, error) {
		req, err := im.Reify()
		if err != nil {
			return nil, err
		}
		return translate(req)
	}
	byAddr := make(map[uint32]*Entry, len(s.Entries))
	for i := range s.Entries {
		es := &s.Entries[i]
		t, err := materialize(es.Req)
		if err != nil {
			return fmt.Errorf("tcache: rebuilding translation at %#x: %w", es.Req.Entry, err)
		}
		if len(es.Chains) != len(t.Exits) {
			return fmt.Errorf("tcache: translation at %#x rebuilt with %d exits, snapshot has %d",
				t.Entry, len(t.Exits), len(es.Chains))
		}
		e := c.Install(t)
		e.Execs = es.Execs
		e.FaultCounts = es.FaultCounts
		e.SpecGuestFaults = es.SpecGuestFaults
		e.Armed = es.Armed
		e.SelfReval = es.SelfReval
		byAddr[t.Entry] = e
	}
	for i := range s.Entries {
		es := &s.Entries[i]
		from := byAddr[es.Req.Entry]
		for exit, toAddr := range es.Chains {
			if toAddr < 0 {
				continue
			}
			to := byAddr[uint32(toAddr)]
			if to == nil {
				return fmt.Errorf("tcache: chain from %#x exit %d to unknown entry %#x",
					es.Req.Entry, exit, uint32(toAddr))
			}
			c.Chain(from, exit, to)
		}
		for _, slot := range es.ITC {
			to := byAddr[slot.To]
			if to == nil {
				return fmt.Errorf("tcache: itc slot in %#x points at unknown entry %#x",
					es.Req.Entry, slot.To)
			}
			if slot.Slot < 0 || slot.Slot >= itcSlots {
				return fmt.Errorf("tcache: itc slot index %d out of range", slot.Slot)
			}
			from.itc[slot.Slot] = itcSlot{target: slot.Target, to: to}
		}
	}
	for _, gs := range s.Groups {
		for _, im := range gs.Members {
			t, err := materialize(im)
			if err != nil {
				return fmt.Errorf("tcache: rebuilding retired translation at %#x: %w", im.Entry, err)
			}
			c.groups[gs.Entry] = append(c.groups[gs.Entry], t)
		}
	}
	c.Stats = s.Stats
	return nil
}
