package tcache

import (
	"container/list"
	"sync"

	"cms/internal/xlate"
)

// SharedStore is the farm-wide content-addressed translation store: the
// memoization table that lets N independent guest VMs share translation and
// compilation work. Entries are keyed by xlate.Key — the content hash of a
// frozen request (source bytes, trace, policy rung, MMIO bits, host) — so
// identical hot regions across VMs translate once, the way an inference
// server shares compiled kernels across requests.
//
// Safety model (docs/SERVING.md): stored artifacts are frozen. They are
// never installed into a VM's translation cache directly — every install
// clones (xlate.Translation.Clone), so per-VM mutable state (prologue memo,
// compiled-code teardown) never touches the shared object, and the compiled
// closures themselves are VM-state-free (they take the executing Machine as
// a parameter). The store affects only wall-clock time: on a hit the VM is
// handed the byte-identical translation it would have produced itself, and
// it charges the same simulated translation cost either way, so per-VM
// Metrics and final guest state are bit-identical to a solo run.
//
// Concurrent misses on the same key are single-flighted: the first VM
// translates, later VMs wait for its result rather than duplicating the
// work. Capacity is bounded in atoms; insertion evicts least-recently-used
// entries (a wall-clock-only decision — an evicted region simply translates
// again on its next miss).
type SharedStore struct {
	mu       sync.Mutex
	entries  map[xlate.Key]*sharedEntry
	lru      *list.List // front = most recently used; values are *sharedEntry
	inflight map[xlate.Key]*flight

	// CapAtoms bounds the total stored code size (0 = DefaultSharedCapAtoms).
	capAtoms int
	curAtoms int

	stats SharedStats
}

// DefaultSharedCapAtoms is the default shared-store budget: a few VM-caches
// worth of code, since the store backs many VMs at once.
const DefaultSharedCapAtoms = 4 << 20

type sharedEntry struct {
	key   xlate.Key
	t     *xlate.Translation
	atoms int
	elem  *list.Element
	hits  uint64
}

// flight is one in-progress translation; later requesters for the same key
// block on done instead of re-translating.
type flight struct {
	done chan struct{}
	t    *xlate.Translation
	err  error
}

// SharedStats counts store events. Hits are immediate cache hits; Waits are
// requests that piggybacked on another VM's in-flight translation (dedup
// hits too, but the requester paid the wall-clock wait); Misses ran the
// backend.
type SharedStats struct {
	Hits      uint64
	Waits     uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Atoms     int
}

// DedupRatio returns the fraction of requests served without running the
// backend (hits + waits over all requests).
func (s SharedStats) DedupRatio() float64 {
	total := s.Hits + s.Waits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(total)
}

// NewShared returns an empty shared store (capAtoms 0 = default).
func NewShared(capAtoms int) *SharedStore {
	if capAtoms <= 0 {
		capAtoms = DefaultSharedCapAtoms
	}
	return &SharedStore{
		entries:  make(map[xlate.Key]*sharedEntry),
		lru:      list.New(),
		inflight: make(map[xlate.Key]*flight),
		capAtoms: capAtoms,
	}
}

// Translate returns the translation for the frozen request, running the
// backend at most once per content key across all callers. hit reports
// whether the backend was skipped (cached or piggybacked on another VM's
// in-flight run). Errors are returned to every waiter and never cached —
// the next requester retries.
func (s *SharedStore) Translate(req *xlate.Request) (t *xlate.Translation, hit bool, err error) {
	key := req.Key()
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		e.hits++
		s.stats.Hits++
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		return e.t, true, nil
	}
	if f := s.inflight[key]; f != nil {
		s.stats.Waits++
		s.mu.Unlock()
		<-f.done
		return f.t, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.stats.Misses++
	s.mu.Unlock()

	f.t, f.err = req.Translate()

	s.mu.Lock()
	delete(s.inflight, key)
	if f.err == nil {
		s.insert(key, f.t)
	}
	s.mu.Unlock()
	close(f.done)
	return f.t, false, f.err
}

// insert stores an artifact under key, evicting LRU entries to fit. Called
// with s.mu held.
func (s *SharedStore) insert(key xlate.Key, t *xlate.Translation) {
	if s.entries[key] != nil {
		return // a concurrent producer won the race; keep its artifact
	}
	atoms := t.CodeAtoms()
	for s.curAtoms+atoms > s.capAtoms && s.lru.Len() > 0 {
		victim := s.lru.Back().Value.(*sharedEntry)
		s.lru.Remove(victim.elem)
		delete(s.entries, victim.key)
		s.curAtoms -= victim.atoms
		s.stats.Evictions++
	}
	e := &sharedEntry{key: key, t: t, atoms: atoms}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.curAtoms += atoms
}

// Stats returns a snapshot of the store's counters and current size.
func (s *SharedStore) Stats() SharedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Atoms = s.curAtoms
	return st
}
