package tcache

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cms/internal/xlate"
)

// SharedStore is the farm-wide content-addressed translation store: the
// memoization table that lets N independent guest VMs share translation and
// compilation work. Entries are keyed by xlate.Key — the content hash of a
// frozen request (source bytes, trace, policy rung, MMIO bits, host) — so
// identical hot regions across VMs translate once, the way an inference
// server shares compiled kernels across requests.
//
// Safety model (docs/SERVING.md): stored artifacts are frozen. They are
// never installed into a VM's translation cache directly — every install
// clones (xlate.Translation.Clone), so per-VM mutable state (prologue memo,
// compiled-code teardown) never touches the shared object, and the compiled
// closures themselves are VM-state-free (they take the executing Machine as
// a parameter). The store affects only wall-clock time: on a hit the VM is
// handed the byte-identical translation it would have produced itself, and
// it charges the same simulated translation cost either way, so per-VM
// Metrics and final guest state are bit-identical to a solo run.
//
// Scaling model: the store is sharded by key prefix into a power-of-two
// array of independent shards, each with its own mutex, LRU list, atom
// sub-budget, and single-flight table. xlate.Key is a SHA-256, so any
// prefix of it is uniform; concurrent VMs hitting *different* hot regions
// land on different shards and never touch the same lock. Event counters
// are per-shard atomics, aggregated only when Stats() is called — the hit
// path takes exactly one shard mutex (for the LRU touch) and nothing
// process-wide.
//
// Concurrent misses on the same key are single-flighted within the key's
// shard: the first VM translates, later VMs wait for its result rather than
// duplicating the work. Capacity is bounded in atoms, split evenly across
// shards; insertion evicts least-recently-used entries of that shard (a
// wall-clock-only decision — an evicted region simply translates again on
// its next miss, so per-shard LRU is as safe as global LRU).
type SharedStore struct {
	shards []storeShard
	mask   uint64 // len(shards)-1; len is a power of two
}

// DefaultSharedCapAtoms is the default shared-store budget: a few VM-caches
// worth of code, since the store backs many VMs at once.
const DefaultSharedCapAtoms = 4 << 20

// maxShards bounds the shard array; beyond this, shard-selection locality
// costs more than lock spreading buys.
const maxShards = 256

// DefaultPoisonTTL is how long a poisoned key stays quarantined when the
// caller does not choose a TTL. Long enough that a misbehaving artifact
// cannot flap back into every VM, short enough that a transient host problem
// (a since-fixed bug, a freak allocation failure) does not permanently
// degrade a hot region to private translation.
const DefaultPoisonTTL = 30 * time.Second

// storeShard is one independent slice of the key space. Counters are
// atomics so the miss path never takes the mutex just to count; mu guards
// only the entry map, LRU list, in-flight table, and atom accounting.
type storeShard struct {
	hits       atomic.Uint64
	waits      atomic.Uint64
	misses     atomic.Uint64
	evictions  atomic.Uint64
	poisons    atomic.Uint64
	poisonHits atomic.Uint64

	// Rehydration traffic: Translate calls made on behalf of a snapshot
	// restore, counted separately so operators can see how much of a
	// restored VM's translation set was served warm.
	rehydrateHits   atomic.Uint64
	rehydrateMisses atomic.Uint64

	mu       sync.Mutex
	entries  map[xlate.Key]*sharedEntry
	lru      *list.List // front = most recently used; values are *sharedEntry
	inflight map[xlate.Key]*flight
	// poison quarantines keys until the stored deadline: lookups for a
	// poisoned key bypass the cache AND the single-flight table, so every VM
	// translates privately and a bad shared artifact cannot cascade. Expired
	// deadlines are reaped lazily on lookup and in Stats.
	poison   map[xlate.Key]time.Time
	capAtoms int // this shard's slice of the store budget
	curAtoms int

	// Pad shards apart so neighbouring shards' mutexes and counters never
	// share a cache line (the whole point of sharding).
	_ [64]byte
}

type sharedEntry struct {
	key   xlate.Key
	t     *xlate.Translation
	atoms int
	elem  *list.Element
	hits  uint64
}

// flight is one in-progress translation; later requesters for the same key
// block on done instead of re-translating.
type flight struct {
	done chan struct{}
	t    *xlate.Translation
	err  error
}

// SharedStats counts store events. Hits are immediate cache hits; Waits are
// requests that piggybacked on another VM's in-flight translation (dedup
// hits too, but the requester paid the wall-clock wait); Misses ran the
// backend. Totals are aggregated from per-shard atomic counters: each field
// is a consistent sum, but fields read while the store is under load may be
// skewed by in-flight requests (Hits+Waits+Misses always equals the number
// of Translate calls that have passed their counting point).
type SharedStats struct {
	Hits      uint64
	Waits     uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Atoms     int
	Shards    int

	// Poisons counts quarantine events (Poison calls plus backend panics
	// converted in place); PoisonHits counts lookups that bypassed the cache
	// because their key was quarantined; Poisoned is how many keys are
	// quarantined right now (TTL not yet expired).
	Poisons    uint64
	PoisonHits uint64
	Poisoned   int

	// RehydrateHits/RehydrateMisses count snapshot-restore traffic routed
	// through Rehydrate: hits were served from the store (instant reuse),
	// misses re-ran the deterministic backend. Both are also counted in
	// Hits/Waits/Misses above.
	RehydrateHits   uint64
	RehydrateMisses uint64
}

// DedupRatio returns the fraction of requests served without running the
// backend (hits + waits over all requests).
func (s SharedStats) DedupRatio() float64 {
	total := s.Hits + s.Waits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Waits) / float64(total)
}

// NewShared returns an empty shared store (capAtoms 0 = default), sharded
// for the process's current GOMAXPROCS.
func NewShared(capAtoms int) *SharedStore {
	return NewSharedShards(capAtoms, 0)
}

// NewSharedShards is NewShared with an explicit shard count (rounded up to
// a power of two, capped; 0 = size from GOMAXPROCS). Tests use it to force
// a single global shard (exact LRU/budget semantics) or a wide array
// (cross-shard invariants); production callers want NewShared.
func NewSharedShards(capAtoms, shards int) *SharedStore {
	if capAtoms <= 0 {
		capAtoms = DefaultSharedCapAtoms
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	s := &SharedStore{shards: make([]storeShard, n), mask: uint64(n - 1)}
	per := capAtoms / n
	if per < 1 {
		per = 1
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.entries = make(map[xlate.Key]*sharedEntry)
		sh.lru = list.New()
		sh.inflight = make(map[xlate.Key]*flight)
		sh.poison = make(map[xlate.Key]time.Time)
		sh.capAtoms = per
	}
	return s
}

// shard maps a key to its shard by prefix. The key is a SHA-256, so the
// leading 8 bytes are uniformly distributed over shards.
func (s *SharedStore) shard(key xlate.Key) *storeShard {
	return &s.shards[binary.LittleEndian.Uint64(key[:8])&s.mask]
}

// NumShards reports the width of the shard array (for metrics and tests).
func (s *SharedStore) NumShards() int { return len(s.shards) }

// Translate returns the translation for the frozen request, running the
// backend at most once per content key across all callers. hit reports
// whether the backend was skipped (cached or piggybacked on another VM's
// in-flight run). Errors are returned to every waiter and never cached —
// the next requester retries.
//
// The hot path touches only the key's shard: the SHA-256 key is computed
// outside any lock, and a hit costs one shard-mutex acquisition for the
// LRU touch plus one atomic increment.
func (s *SharedStore) Translate(req *xlate.Request) (t *xlate.Translation, hit bool, err error) {
	key := req.Key()
	sh := s.shard(key)
	sh.mu.Lock()
	if until, bad := sh.poison[key]; bad {
		if time.Now().Before(until) {
			// Quarantined: translate privately for this caller — no cache,
			// no single-flight — so a bad artifact (or a backend that panics
			// on this input) is contained to one VM at a time.
			sh.mu.Unlock()
			sh.poisonHits.Add(1)
			t, err = sh.runBackend(key, req)
			return t, false, err
		}
		delete(sh.poison, key) // TTL expired: the key rejoins normal sharing
	}
	if e := sh.entries[key]; e != nil {
		e.hits++
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		sh.hits.Add(1)
		return e.t, true, nil
	}
	if f := sh.inflight[key]; f != nil {
		sh.mu.Unlock()
		sh.waits.Add(1)
		<-f.done
		return f.t, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()
	sh.misses.Add(1)

	f.t, f.err = sh.runBackend(key, req)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if f.err == nil {
		f.t.SharedKey = key
		f.t.HasSharedKey = true
		sh.insert(key, f.t)
	}
	sh.mu.Unlock()
	close(f.done)
	return f.t, false, f.err
}

// runBackend runs the translation backend for one key, converting a panic
// into an error AND quarantining the key: the panic proves this content is
// dangerous to whoever translates it, so no other VM should be handed a
// shared artifact (or join a flight) for it until the TTL lapses. Waiters on
// an in-flight translation receive the error like any backend failure.
func (sh *storeShard) runBackend(key xlate.Key, req *xlate.Request) (t *xlate.Translation, err error) {
	defer func() {
		if r := recover(); r != nil {
			sh.mu.Lock()
			sh.poisonLocked(key, DefaultPoisonTTL)
			sh.mu.Unlock()
			t, err = nil, fmt.Errorf("tcache: translation backend panicked for key %s: %v", key, r)
		}
	}()
	return req.Translate()
}

// Rehydrate is Translate for snapshot restore: identical semantics, but the
// request is additionally counted in the rehydration counters so the warm
// fraction of a restore is observable. Determinism is unaffected either way
// — a hit hands back the byte-identical artifact a miss would rebuild.
func (s *SharedStore) Rehydrate(req *xlate.Request) (t *xlate.Translation, hit bool, err error) {
	key := req.Key()
	t, hit, err = s.Translate(req)
	sh := s.shard(key)
	if hit {
		sh.rehydrateHits.Add(1)
	} else {
		sh.rehydrateMisses.Add(1)
	}
	return t, hit, err
}

// Keys returns a sorted snapshot of every resident content key. A migration
// source sends this list ahead of the VM snapshot so the target can prewarm
// its store (translate-or-fetch each key's region before the VM arrives);
// sorted order makes the transfer deterministic.
func (s *SharedStore) Keys() []xlate.Key {
	var keys []xlate.Key
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.entries {
			keys = append(keys, k)
		}
		sh.mu.Unlock()
	}
	sort.Slice(keys, func(i, j int) bool {
		return bytes.Compare(keys[i][:], keys[j][:]) < 0
	})
	return keys
}

// Poison quarantines key for ttl (<= 0 means DefaultPoisonTTL): the cached
// artifact, if any, is dropped immediately and lookups bypass the store
// until the TTL expires. Poisoning is a wall-clock-only action — a VM that
// misses because of it re-translates and charges the same simulated cost —
// so callers may quarantine aggressively without perturbing Metrics.
func (s *SharedStore) Poison(key xlate.Key, ttl time.Duration) {
	sh := s.shard(key)
	sh.mu.Lock()
	sh.poisonLocked(key, ttl)
	sh.mu.Unlock()
}

// poisonLocked is Poison with sh.mu held.
func (sh *storeShard) poisonLocked(key xlate.Key, ttl time.Duration) {
	if ttl <= 0 {
		ttl = DefaultPoisonTTL
	}
	if e := sh.entries[key]; e != nil {
		sh.lru.Remove(e.elem)
		delete(sh.entries, key)
		sh.curAtoms -= e.atoms
		sh.evictions.Add(1)
	}
	sh.poison[key] = time.Now().Add(ttl)
	sh.poisons.Add(1)
}

// PoisonedKeys reports how many keys are currently quarantined, reaping
// expired entries as it counts.
func (s *SharedStore) PoisonedKeys() int {
	now := time.Now()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, until := range sh.poison {
			if now.Before(until) {
				n++
			} else {
				delete(sh.poison, k)
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// insert stores an artifact under key, evicting this shard's LRU entries to
// fit its sub-budget. Called with sh.mu held. The newly inserted entry is
// always kept, even if it alone exceeds the shard budget — the budget
// bounds steady-state residency, not a single artifact.
func (sh *storeShard) insert(key xlate.Key, t *xlate.Translation) {
	if sh.entries[key] != nil {
		return // a concurrent producer won the race; keep its artifact
	}
	atoms := t.CodeAtoms()
	for sh.curAtoms+atoms > sh.capAtoms && sh.lru.Len() > 0 {
		victim := sh.lru.Back().Value.(*sharedEntry)
		sh.lru.Remove(victim.elem)
		delete(sh.entries, victim.key)
		sh.curAtoms -= victim.atoms
		sh.evictions.Add(1)
	}
	e := &sharedEntry{key: key, t: t, atoms: atoms}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.curAtoms += atoms
}

// Stats aggregates every shard's counters and residency into one snapshot.
func (s *SharedStore) Stats() SharedStats {
	st := SharedStats{Shards: len(s.shards)}
	now := time.Now()
	for i := range s.shards {
		sh := &s.shards[i]
		st.Hits += sh.hits.Load()
		st.Waits += sh.waits.Load()
		st.Misses += sh.misses.Load()
		st.Evictions += sh.evictions.Load()
		st.Poisons += sh.poisons.Load()
		st.PoisonHits += sh.poisonHits.Load()
		st.RehydrateHits += sh.rehydrateHits.Load()
		st.RehydrateMisses += sh.rehydrateMisses.Load()
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Atoms += sh.curAtoms
		for k, until := range sh.poison {
			if now.Before(until) {
				st.Poisoned++
			} else {
				delete(sh.poison, k)
			}
		}
		sh.mu.Unlock()
	}
	return st
}
