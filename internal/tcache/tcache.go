// Package tcache implements the translation cache: the indexed store of
// translations, the chaining machinery that lets hot code run entirely
// inside the cache (§2 of the paper, after Cmelik et al.), the reverse maps
// that invalidation needs when guest code pages change, the translation
// groups of §3.6.5, and capacity management for when the cache outgrows its
// budget: coldest-first eviction, with the whole-cache generational flush
// kept as the last resort.
package tcache

import (
	"sort"

	"cms/internal/mem"
	"cms/internal/vliw"
	"cms/internal/xlate"
)

// Entry is one cached translation plus its runtime bookkeeping.
type Entry struct {
	T *xlate.Translation

	// Valid is cleared by invalidation; stale pointers held by callers must
	// check it before executing.
	Valid bool

	// chains[i] is the entry this translation's i-th exit has been chained
	// to (nil = unchained: the exit returns to the dispatcher).
	chains []*Entry
	// incoming records who chains to us, for unchaining on invalidation.
	incoming []chainRef

	// Execs counts completed executions (entries through the top).
	Execs uint64
	// FaultCounts counts faults per vliw.FaultClass observed while this
	// translation ran.
	FaultCounts [8]uint32
	// SpecGuestFaults counts guest-class faults that re-interpretation
	// proved speculative (the §3.2 distinction).
	SpecGuestFaults uint32

	// Armed marks a self-revalidating translation whose prologue must run
	// before the body (§3.6.2).
	Armed bool
	// SelfReval marks the translation as carrying a usable prologue.
	SelfReval bool

	// itc is the per-translation indirect-branch target cache: a tiny
	// inline cache from recent indirect-exit targets to their entries, so
	// hot indirect jumps (returns, dispatch tables) skip the dispatcher's
	// map lookup. Slots may hold invalidated entries; hits re-check Valid.
	itc [itcSlots]itcSlot

	// seq is the install order, used to reproduce the cache's internal
	// list orders exactly on snapshot restore (byPage order decides
	// invalidation order, which is observable in Stats).
	seq uint64
}

// itcSlots is the per-translation indirect target cache size. Indirect
// exits usually resolve to a handful of targets (a return site, a few
// dispatch-table cases); four direct-mapped slots capture most of them.
const itcSlots = 4

type itcSlot struct {
	target uint32
	to     *Entry
}

// IndirectTarget consults the entry's indirect target cache, returning the
// still-valid cached successor for target, or nil.
func (e *Entry) IndirectTarget(target uint32) *Entry {
	s := &e.itc[(target>>2)%itcSlots]
	if s.to != nil && s.target == target && s.to.Valid {
		return s.to
	}
	return nil
}

// CacheIndirect records target's entry in the indirect target cache.
func (e *Entry) CacheIndirect(target uint32, to *Entry) {
	e.itc[(target>>2)%itcSlots] = itcSlot{target: target, to: to}
}

type chainRef struct {
	from *Entry
	exit int
}

// Chained returns the chain target of an exit, or nil. Invalidated entries
// report no chains in either direction: a torn-down translation must never
// lead to — or from — executable (possibly compiled) code.
func (e *Entry) Chained(exit int) *Entry {
	if e.Valid && exit < len(e.chains) {
		if t := e.chains[exit]; t != nil && t.Valid {
			return t
		}
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Installs      uint64
	Lookups       uint64
	Hits          uint64
	Invalidations uint64
	ChainPatches  uint64
	Unchains      uint64
	Evictions     uint64
	Flushes       uint64
	GroupHits     uint64
	GroupRetires  uint64
}

// Cache is the translation cache.
type Cache struct {
	byEntry map[uint32]*Entry
	byPage  map[uint32][]*Entry

	// groups keeps retired translations per entry address for §3.6.5 reuse.
	groups   map[uint32][]*xlate.Translation
	groupCap int

	// CapAtoms bounds the total static code size; exceeding it flushes the
	// cache (the runtime system's "garbage collection for the translation
	// cache").
	CapAtoms int
	curAtoms int

	// nextSeq numbers installs, for snapshot-exact restore ordering.
	nextSeq uint64

	Stats Stats
}

// DefaultCapAtoms is the default code-size budget.
const DefaultCapAtoms = 1 << 20

// New returns an empty cache.
func New() *Cache {
	return &Cache{
		byEntry:  make(map[uint32]*Entry),
		byPage:   make(map[uint32][]*Entry),
		groups:   make(map[uint32][]*xlate.Translation),
		groupCap: 40, // the paper saw up to 33 live versions in the 9x BLT driver
		CapAtoms: DefaultCapAtoms,
	}
}

// Lookup finds a valid entry by guest address.
func (c *Cache) Lookup(eip uint32) *Entry {
	c.Stats.Lookups++
	e := c.byEntry[eip]
	if e == nil || !e.Valid {
		return nil
	}
	c.Stats.Hits++
	return e
}

// Peek is Lookup without statistics (for tests and reporting).
func (c *Cache) Peek(eip uint32) *Entry {
	e := c.byEntry[eip]
	if e == nil || !e.Valid {
		return nil
	}
	return e
}

// Install adds a translation, replacing any previous entry at the same
// address, and returns its entry. If the code budget is exceeded, cold
// translations are evicted first; only when that would empty the cache does
// the whole-cache generational flush of real CMS kick in.
func (c *Cache) Install(t *xlate.Translation) *Entry {
	if c.CapAtoms > 0 && c.curAtoms+t.CodeAtoms() > c.CapAtoms {
		c.makeRoom(t.CodeAtoms())
	}
	if old := c.byEntry[t.Entry]; old != nil && old.Valid {
		c.invalidate(old, false)
	}
	e := &Entry{T: t, Valid: true, chains: make([]*Entry, len(t.Exits)), seq: c.nextSeq}
	c.nextSeq++
	c.byEntry[t.Entry] = e
	for _, p := range t.Pages() {
		c.byPage[p] = append(c.byPage[p], e)
	}
	c.curAtoms += t.CodeAtoms()
	c.Stats.Installs++
	return e
}

// makeRoom frees space for `need` atoms by invalidating the coldest
// translations (fewest completed executions; ties broken by entry address
// so the choice is deterministic despite map iteration order). Victims
// retire into their groups like any other invalidation, so re-hot code can
// be revived by §3.6.5 reuse. If fitting the new code would evict every
// entry, the whole-cache flush does the same job in one cheap reset.
func (c *Cache) makeRoom(need int) {
	type cand struct {
		execs uint64
		entry uint32
		e     *Entry
	}
	cands := make([]cand, 0, len(c.byEntry))
	for _, e := range c.byEntry {
		if e.Valid {
			cands = append(cands, cand{execs: e.Execs, entry: e.T.Entry, e: e})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].execs != cands[j].execs {
			return cands[i].execs < cands[j].execs
		}
		return cands[i].entry < cands[j].entry
	})
	free := 0
	if c.CapAtoms > c.curAtoms {
		free = c.CapAtoms - c.curAtoms
	}
	n := 0
	for ; n < len(cands) && free < need; n++ {
		free += cands[n].e.T.CodeAtoms()
	}
	if n >= len(cands) {
		c.Flush()
		return
	}
	for _, v := range cands[:n] {
		c.invalidate(v.e, true)
		c.Stats.Evictions++
	}
}

// Chain links exit of from to target, so the dispatcher is skipped next
// time.
func (c *Cache) Chain(from *Entry, exit int, to *Entry) {
	if !from.Valid || !to.Valid || exit >= len(from.chains) || from.chains[exit] != nil {
		return
	}
	from.chains[exit] = to
	to.incoming = append(to.incoming, chainRef{from: from, exit: exit})
	c.Stats.ChainPatches++
}

// invalidate removes an entry. retire controls whether the translation is
// kept in its entry's group for possible §3.6.5 reuse.
func (c *Cache) invalidate(e *Entry, retire bool) {
	if !e.Valid {
		return
	}
	e.Valid = false
	c.Stats.Invalidations++
	c.curAtoms -= e.T.CodeAtoms()
	// Unchain incoming edges.
	for _, ref := range e.incoming {
		if ref.from.Valid && ref.from.chains[ref.exit] == e {
			ref.from.chains[ref.exit] = nil
			c.Stats.Unchains++
		}
	}
	e.incoming = nil
	// Our own outgoing chains die with us (we are unreachable).
	if c.byEntry[e.T.Entry] == e {
		delete(c.byEntry, e.T.Entry)
	}
	for _, p := range e.T.Pages() {
		list := c.byPage[p]
		for i, x := range list {
			if x == e {
				c.byPage[p] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(c.byPage[p]) == 0 {
			delete(c.byPage, p)
		}
	}
	if retire {
		// Retired translations keep their compiled code: §3.6.5 group reuse
		// reinstalls the same *Translation only after SourceMatches, so the
		// compiled form is still valid and reinstall stays cheap.
		g := c.groups[e.T.Entry]
		if len(g) < c.groupCap {
			c.groups[e.T.Entry] = append(g, e.T)
			c.Stats.GroupRetires++
		}
	} else {
		// Replaced in place and not retired: this translation can never be
		// dispatched again, so drop the executable forms eagerly (whichever
		// backend built one). Anything still holding the entry sees
		// Valid==false and re-dispatches; it must never reach stale
		// compiled closures or lowered blocks.
		e.T.Compiled = nil
		e.T.Risc = nil
	}
}

// Invalidate removes a specific entry (retiring it into its group).
func (c *Cache) Invalidate(e *Entry) { c.invalidate(e, true) }

// InvalidatePage removes every translation with source bytes on the page,
// returning how many were invalidated.
func (c *Cache) InvalidatePage(page uint32) int {
	list := append([]*Entry(nil), c.byPage[page]...)
	for _, e := range list {
		c.invalidate(e, true)
	}
	return len(list)
}

// InvalidateRange removes translations whose source bytes intersect
// [addr, addr+n), returning them for the caller's adaptive bookkeeping.
func (c *Cache) InvalidateRange(addr uint32, n int) []*Entry {
	var hit []*Entry
	for p := mem.PageOf(addr); p <= mem.PageOf(addr+uint32(n)-1); p++ {
		for _, e := range c.byPage[p] {
			if e.Valid && e.T.CoversRange(addr, n) {
				hit = append(hit, e)
			}
		}
	}
	for _, e := range hit {
		c.invalidate(e, true)
	}
	return hit
}

// Overlapping returns the valid entries whose source intersects the range,
// without invalidating.
func (c *Cache) Overlapping(addr uint32, n int) []*Entry {
	var hit []*Entry
	for p := mem.PageOf(addr); p <= mem.PageOf(addr+uint32(n)-1); p++ {
		for _, e := range c.byPage[p] {
			if e.Valid && e.T.CoversRange(addr, n) {
				hit = append(hit, e)
			}
		}
	}
	return hit
}

// PageEntries returns the valid entries with source bytes on a page.
func (c *Cache) PageEntries(page uint32) []*Entry {
	return c.byPage[page]
}

// PageChunkMask returns the fine-grain chunk mask of all translations on a
// page (the mask the §3.6.1 hardware cache needs installed).
func (c *Cache) PageChunkMask(page uint32) uint32 {
	var mask uint32
	for _, e := range c.byPage[page] {
		if !e.Valid {
			continue
		}
		mask |= e.T.Chunks()[page]
	}
	return mask
}

// GroupMatch searches the retired translations of an entry address for one
// whose source snapshot matches current memory (§3.6.5) and removes it from
// the group; the caller reinstalls it.
func (c *Cache) GroupMatch(entry uint32, bus *mem.Bus) *xlate.Translation {
	g := c.groups[entry]
	for i, t := range g {
		if t.SourceMatches(bus) {
			c.groups[entry] = append(append([]*xlate.Translation(nil), g[:i]...), g[i+1:]...)
			c.Stats.GroupHits++
			return t
		}
	}
	return nil
}

// GroupSize reports how many retired versions an entry address holds.
func (c *Cache) GroupSize(entry uint32) int { return len(c.groups[entry]) }

// Flush drops every entry (groups survive: they are snapshots, not code the
// dispatcher can reach).
func (c *Cache) Flush() {
	for _, e := range c.byEntry {
		e.Valid = false
	}
	c.byEntry = make(map[uint32]*Entry)
	c.byPage = make(map[uint32][]*Entry)
	c.curAtoms = 0
	c.Stats.Flushes++
}

// Size returns the number of valid entries and their total atoms.
func (c *Cache) Size() (entries, atoms int) {
	return len(c.byEntry), c.curAtoms
}

// FaultCount sums a class's counter across an entry.
func (e *Entry) FaultCount(class vliw.FaultClass) uint32 {
	return e.FaultCounts[class]
}
