// Package mem implements the guest physical memory system: RAM with
// per-page attributes, memory-mapped I/O dispatch, port I/O dispatch, DMA,
// and the CMS-side write-protection machinery (coarse page protection plus
// the fine-grain protect cache of §3.6.1 of the paper).
//
// The bus itself is policy-free: reads and writes *report* guest faults and
// CMS protection hits to the caller instead of handling them, because the
// correct response differs between the interpreter (deliver a precise guest
// exception / ask CMS to invalidate translations) and the VLIW machine
// (raise a host exception and roll back).
package mem

import (
	"fmt"

	"cms/internal/guest"
)

// Page geometry.
const (
	PageShift = 12
	PageSize  = 1 << PageShift

	// ChunkShift is the fine-grain protection granularity (§3.6.1): 128-byte
	// chunks, 32 chunks per page, so a page's fine-grain state is one
	// uint32 mask.
	ChunkShift    = 7
	ChunkSize     = 1 << ChunkShift
	ChunksPerPage = PageSize / ChunkSize
)

// PageOf returns the page number containing addr.
func PageOf(addr uint32) uint32 { return addr >> PageShift }

// ChunkOf returns the chunk index of addr within its page.
func ChunkOf(addr uint32) uint32 { return (addr >> ChunkShift) & (ChunksPerPage - 1) }

// Attr holds guest-architectural page attributes (a one-level flat "page
// table": the guest address space is identity-mapped, which keeps the MMU
// simple while preserving everything the paper's challenges need — per-page
// permissions, MMIO pages, and pages that appear and disappear under DMA
// paging activity).
type Attr uint8

const (
	// AttrPresent marks a mapped page; access to a non-present page raises
	// a guest page fault.
	AttrPresent Attr = 1 << iota
	// AttrWritable permits guest stores. Writes to present read-only pages
	// raise a guest page fault.
	AttrWritable
	// AttrMMIO marks a page whose loads and stores are dispatched to a
	// device instead of RAM. MMIO pages cannot be executed.
	AttrMMIO
)

// GuestFault describes an architectural guest exception raised by a memory
// access. A nil *GuestFault means the access is permitted.
type GuestFault struct {
	Vector int    // guest.VecPF, guest.VecGP, or guest.VecNP
	Addr   uint32 // faulting guest address
	Write  bool
}

func (f *GuestFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("guest fault vec=%d %s at %#x", f.Vector, kind, f.Addr)
}

// MMIODevice is the interface memory-mapped devices implement. size is 1 or
// 4; addr is the absolute guest address. Device reads must be idempotent
// (see DESIGN.md: translations may re-execute an in-order MMIO load after a
// rollback); devices in this repository transfer bulk data by DMA rather
// than by destructive register reads.
type MMIODevice interface {
	MMIORead(addr uint32, size int) uint32
	MMIOWrite(addr uint32, size int, v uint32)
}

// PortDevice is the interface port-mapped devices implement.
type PortDevice interface {
	PortRead(port uint16) uint32
	PortWrite(port uint16, v uint32)
}

// WriteSource identifies who performed a write, for protection accounting.
type WriteSource uint8

const (
	SrcCPU WriteSource = iota // interpreter or committed translation store
	SrcDMA                    // device DMA
)

// ProtHit describes a write that struck CMS-protected memory. The bus does
// not perform the write; the caller must consult CMS and retry.
type ProtHit struct {
	Addr uint32
	Size int
	Src  WriteSource
}

type mmioRegion struct {
	base, size uint32
	dev        MMIODevice
}

// Bus is the guest memory system. The zero value is not usable; call NewBus.
type Bus struct {
	ram   []byte
	attrs []Attr // one per RAM page

	regions []mmioRegion
	ports   map[uint16]PortDevice

	// CMS write protection (translation-consistency machinery).
	protected []bool   // coarse page protection
	fineMask  []uint32 // per-page chunk mask; only meaningful when fineGrain[page]
	fineGrain []bool   // page is under fine-grain rather than coarse protection

	// gen is a per-page modification generation, bumped by every RAM write
	// (CPU store, DMA, raw image write) and by attribute changes. Consumers
	// that cache anything derived from page contents — the interpreter's
	// decoded-instruction cache above all — record the generation at fill
	// time and treat any mismatch as an invalidation. This is deliberately
	// coarser than CMS write protection: it also covers pages that hold no
	// translations yet.
	gen []uint64

	// The fine-grain hardware cache: a small set of pages whose fine-grain
	// masks are resident in "hardware". A write to a fine-grain page that
	// misses this cache costs a lightweight software refill (counted in
	// Stats.FineGrainRefills) but does not need a full protection fault.
	fgCache    []uint32 // page numbers, most recently used first
	fgCacheCap int

	// DMAInvalidate, if non-nil, is called when DMA writes a CMS-protected
	// page, before the protection is dropped and the data written. Per
	// §3.6.1, DMA invalidates all translations for the page regardless of
	// fine-grain state (to keep demand paging cheap).
	DMAInvalidate func(page uint32)

	// ForceProtHit, if non-nil, lets a fault-injection harness make
	// CheckProt report a hit for a write it would otherwise pass. A forced
	// hit is indistinguishable from a real one to every consumer (the
	// protection response re-checks and retries, so a spurious hit costs
	// work but never changes guest state — "conservative but never wrong").
	// Implementations must be deterministic and must not fire on
	// consecutive CheckProt calls, or the resolve-and-retry loop around a
	// single store could spin forever. While set, FastWrite declines every
	// access so all stores reach the checked path.
	ForceProtHit func(addr uint32, size int, src WriteSource) bool

	// Stats accumulates bus-level protection events.
	Stats BusStats
}

// BusStats counts protection-related bus events.
type BusStats struct {
	FineGrainRefills uint64 // fine-grain cache misses serviced by software
	DMAInvalidations uint64 // pages invalidated by DMA writes
}

// NewBus creates a bus with size bytes of RAM (rounded up to a whole page),
// all pages initially present and writable.
func NewBus(size uint32) *Bus {
	pages := (size + PageSize - 1) / PageSize
	b := &Bus{
		ram:        make([]byte, pages*PageSize),
		attrs:      make([]Attr, pages),
		protected:  make([]bool, pages),
		fineMask:   make([]uint32, pages),
		fineGrain:  make([]bool, pages),
		gen:        make([]uint64, pages),
		ports:      make(map[uint16]PortDevice),
		fgCacheCap: 8,
	}
	for i := range b.attrs {
		b.attrs[i] = AttrPresent | AttrWritable
	}
	return b
}

// RAMSize returns the size of RAM in bytes.
func (b *Bus) RAMSize() uint32 { return uint32(len(b.ram)) }

// NumPages returns the number of RAM pages.
func (b *Bus) NumPages() uint32 { return uint32(len(b.attrs)) }

// SetFineGrainCacheCap sets the number of fine-grain page entries the
// simulated hardware cache can hold (default 8).
func (b *Bus) SetFineGrainCacheCap(n int) {
	b.fgCacheCap = n
	if len(b.fgCache) > n {
		b.fgCache = b.fgCache[:n]
	}
}

// SetAttr replaces the guest attributes of a page.
func (b *Bus) SetAttr(page uint32, a Attr) {
	if page < uint32(len(b.attrs)) {
		b.attrs[page] = a
		b.gen[page]++ // mapping changes invalidate content-derived caches
	}
}

// Gen returns the modification generation of a page. Pages beyond RAM report
// 0; they can hold no cacheable content.
func (b *Bus) Gen(page uint32) uint64 {
	if page >= uint32(len(b.gen)) {
		return 0
	}
	return b.gen[page]
}

// bumpRange advances the generation of every page intersecting
// [addr, addr+n).
func (b *Bus) bumpRange(addr uint32, n int) {
	if n <= 0 {
		return
	}
	for p := PageOf(addr); p <= PageOf(addr+uint32(n)-1) && p < uint32(len(b.gen)); p++ {
		b.gen[p]++
	}
}

// AttrOf returns the guest attributes of the page containing addr; pages
// beyond RAM report 0 (not present).
func (b *Bus) AttrOf(addr uint32) Attr {
	p := PageOf(addr)
	if p >= uint32(len(b.attrs)) {
		return 0
	}
	return b.attrs[p]
}

// MapMMIO attaches dev at [base, base+size). The covered pages are marked
// AttrMMIO. base and size must be page-aligned.
func (b *Bus) MapMMIO(base, size uint32, dev MMIODevice) {
	if base%PageSize != 0 || size%PageSize != 0 {
		panic("mem: MMIO region must be page-aligned")
	}
	b.regions = append(b.regions, mmioRegion{base: base, size: size, dev: dev})
	for p := PageOf(base); p < PageOf(base+size-1)+1; p++ {
		if p < uint32(len(b.attrs)) {
			b.attrs[p] = AttrPresent | AttrMMIO
			b.gen[p]++
		}
	}
}

// MapPort attaches dev to a range of I/O ports [lo, hi].
func (b *Bus) MapPort(lo, hi uint16, dev PortDevice) {
	for p := uint32(lo); p <= uint32(hi); p++ {
		b.ports[uint16(p)] = dev
	}
}

// IsMMIO reports whether addr falls in a memory-mapped I/O page. This is the
// predicate the speculation hardware applies to reordered memory atoms
// (§3.4): the translator cannot know it statically, but the hardware can
// check it per access.
func (b *Bus) IsMMIO(addr uint32) bool {
	return b.AttrOf(addr)&AttrMMIO != 0
}

func (b *Bus) findRegion(addr uint32) *mmioRegion {
	for i := range b.regions {
		r := &b.regions[i]
		if addr >= r.base && addr < r.base+r.size {
			return r
		}
	}
	return nil
}

// --- Guest-architectural access checks -------------------------------------

// CheckRead reports the guest fault, if any, for a data read of size bytes
// at addr.
func (b *Bus) CheckRead(addr uint32, size int) *GuestFault {
	return b.check(addr, size, false)
}

// CheckWrite reports the guest fault, if any, for a data write of size bytes
// at addr. It does not consult CMS protection; see CheckProt.
func (b *Bus) CheckWrite(addr uint32, size int) *GuestFault {
	return b.check(addr, size, true)
}

// FastRead reports whether a read of size bytes at addr lies entirely
// within one present, non-MMIO page — the case where CheckRead returns nil
// and the data comes from RAM. It is small enough to inline into the
// compiled backend's load closures; any access it rejects takes the full
// slow path, so it may be conservative but never wrong.
func (b *Bus) FastRead(addr, size uint32) bool {
	p := addr >> PageShift
	return p < uint32(len(b.attrs)) && (addr+size-1)>>PageShift == p &&
		b.attrs[p]&(AttrPresent|AttrMMIO) == AttrPresent
}

// FastWrite is FastRead's store twin: a single present, writable, non-MMIO
// page with no CMS write protection, where CheckWrite and CheckProt both
// return nil with no side effects.
func (b *Bus) FastWrite(addr, size uint32) bool {
	if b.ForceProtHit != nil {
		return false
	}
	p := addr >> PageShift
	return p < uint32(len(b.attrs)) && (addr+size-1)>>PageShift == p &&
		b.attrs[p]&(AttrPresent|AttrMMIO|AttrWritable) == AttrPresent|AttrWritable &&
		(p >= uint32(len(b.protected)) || !b.protected[p])
}

func (b *Bus) check(addr uint32, size int, write bool) *GuestFault {
	end := addr + uint32(size) - 1
	if end < addr { // wrap
		return &GuestFault{Vector: guest.VecGP, Addr: addr, Write: write}
	}
	for p := PageOf(addr); ; p++ {
		if p >= uint32(len(b.attrs)) || b.attrs[p]&AttrPresent == 0 {
			return &GuestFault{Vector: guest.VecPF, Addr: addr, Write: write}
		}
		a := b.attrs[p]
		if a&AttrMMIO != 0 {
			// MMIO accesses must be naturally aligned and not straddle the
			// region; otherwise the device semantics are undefined.
			if addr%uint32(size) != 0 || b.findRegion(addr) == nil {
				return &GuestFault{Vector: guest.VecGP, Addr: addr, Write: write}
			}
		} else if write && a&AttrWritable == 0 {
			return &GuestFault{Vector: guest.VecPF, Addr: addr, Write: true}
		}
		if p == PageOf(end) {
			return nil
		}
	}
}

// CheckFetch reports the guest fault, if any, for fetching n instruction
// bytes at addr. Fetching from an MMIO page is a protection error.
func (b *Bus) CheckFetch(addr uint32, n int) *GuestFault {
	end := addr + uint32(n) - 1
	if end < addr {
		return &GuestFault{Vector: guest.VecGP, Addr: addr}
	}
	for p := PageOf(addr); ; p++ {
		if p >= uint32(len(b.attrs)) || b.attrs[p]&AttrPresent == 0 {
			return &GuestFault{Vector: guest.VecNP, Addr: addr}
		}
		if b.attrs[p]&AttrMMIO != 0 {
			return &GuestFault{Vector: guest.VecGP, Addr: addr}
		}
		if p == PageOf(end) {
			return nil
		}
	}
}

// --- CMS write protection ---------------------------------------------------

// Protect places a page under coarse CMS write protection (set when a
// translation is made from code on the page).
func (b *Bus) Protect(page uint32) {
	if page < uint32(len(b.protected)) {
		b.protected[page] = true
		b.fineGrain[page] = false
	}
}

// Unprotect removes all CMS protection from a page.
func (b *Bus) Unprotect(page uint32) {
	if page < uint32(len(b.protected)) {
		b.protected[page] = false
		b.fineGrain[page] = false
		b.fineMask[page] = 0
		b.fgEvict(page)
	}
}

// SetFineGrain switches a page to fine-grain protection with the given chunk
// mask (bit i set = chunk i contains translated code and must fault on
// writes).
func (b *Bus) SetFineGrain(page uint32, mask uint32) {
	if page < uint32(len(b.protected)) {
		b.protected[page] = true
		b.fineGrain[page] = true
		b.fineMask[page] = mask
	}
}

// AddFineGrainChunks ORs chunks into a fine-grain page's mask.
func (b *Bus) AddFineGrainChunks(page uint32, mask uint32) {
	if page < uint32(len(b.fineMask)) && b.fineGrain[page] {
		b.fineMask[page] |= mask
	}
}

// ClearFineGrainChunks clears chunks from a fine-grain page's mask (used
// when the translations covering them are invalidated or their prologues
// take over checking).
func (b *Bus) ClearFineGrainChunks(page uint32, mask uint32) {
	if page < uint32(len(b.fineMask)) && b.fineGrain[page] {
		b.fineMask[page] &^= mask
	}
}

// IsProtected reports whether the page has any CMS protection.
func (b *Bus) IsProtected(page uint32) bool {
	return page < uint32(len(b.protected)) && b.protected[page]
}

// IsFineGrain reports whether the page is under fine-grain protection, and
// its chunk mask.
func (b *Bus) IsFineGrain(page uint32) (bool, uint32) {
	if page >= uint32(len(b.protected)) || !b.fineGrain[page] {
		return false, 0
	}
	return true, b.fineMask[page]
}

func (b *Bus) fgCacheLookup(page uint32) bool {
	for i, p := range b.fgCache {
		if p == page {
			// Move to front (LRU).
			copy(b.fgCache[1:i+1], b.fgCache[:i])
			b.fgCache[0] = page
			return true
		}
	}
	return false
}

func (b *Bus) fgCacheInsert(page uint32) {
	if len(b.fgCache) < b.fgCacheCap {
		b.fgCache = append(b.fgCache, 0)
	}
	copy(b.fgCache[1:], b.fgCache)
	b.fgCache[0] = page
}

func (b *Bus) fgEvict(page uint32) {
	for i, p := range b.fgCache {
		if p == page {
			b.fgCache = append(b.fgCache[:i], b.fgCache[i+1:]...)
			return
		}
	}
}

// CheckProt consults CMS write protection for a write of size bytes at addr.
// It returns a non-nil ProtHit if the write must be referred to CMS. Writes
// to fine-grain pages whose touched chunks are all clear proceed without a
// hit (that is the whole point of fine-grain protection); a fine-grain cache
// miss is charged to Stats.FineGrainRefills.
func (b *Bus) CheckProt(addr uint32, size int, src WriteSource) *ProtHit {
	if b.ForceProtHit != nil && b.ForceProtHit(addr, size, src) {
		return &ProtHit{Addr: addr, Size: size, Src: src}
	}
	first, last := PageOf(addr), PageOf(addr+uint32(size)-1)
	for p := first; p <= last && p < uint32(len(b.protected)); p++ {
		if !b.protected[p] {
			continue
		}
		if !b.fineGrain[p] {
			return &ProtHit{Addr: addr, Size: size, Src: src}
		}
		// Fine-grain page: model the hardware cache.
		if !b.fgCacheLookup(p) {
			b.Stats.FineGrainRefills++
			b.fgCacheInsert(p)
		}
		lo, hi := addr, addr+uint32(size)-1
		if PageOf(lo) != p {
			lo = p << PageShift
		}
		if PageOf(hi) != p {
			hi = p<<PageShift + PageSize - 1
		}
		for c := ChunkOf(lo); c <= ChunkOf(hi); c++ {
			if b.fineMask[p]&(1<<c) != 0 {
				return &ProtHit{Addr: addr, Size: size, Src: src}
			}
		}
	}
	return nil
}

// --- Data access ------------------------------------------------------------

// Read8 performs a guest byte load. The caller must have passed CheckRead.
func (b *Bus) Read8(addr uint32) uint8 {
	if b.AttrOf(addr)&AttrMMIO != 0 {
		return uint8(b.findRegion(addr).dev.MMIORead(addr, 1))
	}
	return b.ram[addr]
}

// Read32 performs a guest 32-bit load (little-endian). The caller must have
// passed CheckRead.
func (b *Bus) Read32(addr uint32) uint32 {
	if b.AttrOf(addr)&AttrMMIO != 0 {
		return b.findRegion(addr).dev.MMIORead(addr, 4)
	}
	if int(addr)+4 <= len(b.ram) && PageOf(addr) == PageOf(addr+3) {
		return uint32(b.ram[addr]) | uint32(b.ram[addr+1])<<8 |
			uint32(b.ram[addr+2])<<16 | uint32(b.ram[addr+3])<<24
	}
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b.Read8(addr+uint32(i))) << (8 * i)
	}
	return v
}

// Write8 performs a guest byte store. The caller must have passed CheckWrite
// and handled CheckProt.
func (b *Bus) Write8(addr uint32, v uint8) {
	if b.AttrOf(addr)&AttrMMIO != 0 {
		b.findRegion(addr).dev.MMIOWrite(addr, 1, uint32(v))
		return
	}
	b.ram[addr] = v
	b.gen[PageOf(addr)]++
}

// Write32 performs a guest 32-bit store. The caller must have passed
// CheckWrite and handled CheckProt.
func (b *Bus) Write32(addr uint32, v uint32) {
	if b.AttrOf(addr)&AttrMMIO != 0 {
		b.findRegion(addr).dev.MMIOWrite(addr, 4, v)
		return
	}
	if int(addr)+4 <= len(b.ram) && PageOf(addr) == PageOf(addr+3) {
		b.ram[addr] = byte(v)
		b.ram[addr+1] = byte(v >> 8)
		b.ram[addr+2] = byte(v >> 16)
		b.ram[addr+3] = byte(v >> 24)
		b.gen[PageOf(addr)]++
		return
	}
	for i := 0; i < 4; i++ {
		b.Write8(addr+uint32(i), uint8(v>>(8*i)))
	}
}

// PortRead reads a 32-bit value from an I/O port. Unmapped ports float high,
// as on a PC.
func (b *Bus) PortRead(port uint16) uint32 {
	if d, ok := b.ports[port]; ok {
		return d.PortRead(port)
	}
	return 0xFFFFFFFF
}

// PortWrite writes a 32-bit value to an I/O port. Writes to unmapped ports
// are discarded.
func (b *Bus) PortWrite(port uint16, v uint32) {
	if d, ok := b.ports[port]; ok {
		d.PortWrite(port, v)
	}
}

// FetchBytes copies up to n instruction bytes starting at addr into dst,
// returning how many bytes were fetchable before hitting an unmapped or
// MMIO page. It never faults; callers detect short fetches by the count.
func (b *Bus) FetchBytes(addr uint32, dst []byte) int {
	n := 0
	for n < len(dst) {
		a := addr + uint32(n)
		if a < addr { // wrapped
			break
		}
		p := PageOf(a)
		if p >= uint32(len(b.attrs)) || b.attrs[p]&AttrPresent == 0 || b.attrs[p]&AttrMMIO != 0 {
			break
		}
		// Copy to end of page or end of dst.
		pageEnd := (p + 1) << PageShift
		m := int(pageEnd - a)
		if m > len(dst)-n {
			m = len(dst) - n
		}
		copy(dst[n:n+m], b.ram[a:uint32(a)+uint32(m)])
		n += m
	}
	return n
}

// ReadRaw returns a copy of n bytes of RAM at addr with no checks (for
// loaders, snapshots, and the self-check comparators).
func (b *Bus) ReadRaw(addr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, b.ram[addr:])
	return out
}

// WriteRaw stores bytes with no checks and no protection interaction (image
// loading only).
func (b *Bus) WriteRaw(addr uint32, data []byte) {
	copy(b.ram[addr:], data)
	b.bumpRange(addr, len(data))
}

// DMAWrite performs a device DMA write. DMA bypasses guest page permissions
// but interacts with CMS protection: a protected page is reported through
// DMAInvalidate and its protection dropped before the data lands (§3.6.1).
func (b *Bus) DMAWrite(addr uint32, data []byte) {
	for p := PageOf(addr); p <= PageOf(addr+uint32(len(data)-1)); p++ {
		if p < uint32(len(b.protected)) && b.protected[p] {
			b.Stats.DMAInvalidations++
			if b.DMAInvalidate != nil {
				b.DMAInvalidate(p)
			}
			b.Unprotect(p)
		}
	}
	copy(b.ram[addr:], data)
	b.bumpRange(addr, len(data))
}
