package mem

import (
	"encoding/binary"
	"testing"
)

// fuzzDev is a trivial MMIO device: a RAM-like backing array, so data read
// back through the device can be compared exactly.
type fuzzDev struct {
	mem [0x1000]byte
}

func (d *fuzzDev) MMIORead(addr uint32, size int) uint32 {
	off := addr & 0xFFF
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(d.mem[(off+uint32(i))&0xFFF]) << (8 * i)
	}
	return v
}

func (d *fuzzDev) MMIOWrite(addr uint32, size int, v uint32) {
	off := addr & 0xFFF
	for i := 0; i < size; i++ {
		d.mem[(off+uint32(i))&0xFFF] = byte(v >> (8 * i))
	}
}

// FuzzBusReadWrite asserts the fast-path/checked-path agreement contract
// the compiled backend depends on: whenever FastRead/FastWrite approve an
// access, the checked path must agree there is no guest fault, no MMIO
// dispatch, and no CMS protection — and the data must be plain RAM. The
// bus under test has an MMIO window, a protected page, and a fine-grain
// page, so page edges against all three attribute kinds get exercised.
func FuzzBusReadWrite(f *testing.F) {
	const (
		ramSize  = 0x10000
		mmioBase = 0x4000
		mmioSize = 0x1000
	)
	f.Add(uint32(0x0FFE), uint8(0), uint32(0xDEADBEEF), true) // straddles pages 0/1
	f.Add(uint32(0x3FFC), uint8(2), uint32(1), false)         // last word before MMIO
	f.Add(uint32(0x4000), uint8(2), uint32(2), true)          // MMIO base
	f.Add(uint32(0x4FFF), uint8(0), uint32(3), true)          // MMIO last byte
	f.Add(uint32(0x2008), uint8(2), uint32(4), true)          // protected page
	f.Add(uint32(0x3010), uint8(1), uint32(5), true)          // fine-grain page
	f.Add(uint32(ramSize-2), uint8(2), uint32(6), false)      // runs off RAM
	f.Add(uint32(0xFFFFFFFE), uint8(2), uint32(7), true)      // address wrap

	f.Fuzz(func(t *testing.T, addr uint32, sizeSel uint8, val uint32, doWrite bool) {
		bus := NewBus(ramSize)
		bus.MapMMIO(mmioBase, mmioSize, &fuzzDev{})
		bus.Protect(2) // page 2: CMS write-protected
		bus.Protect(3)
		bus.SetFineGrain(3, 0x1) // page 3: fine-grain, chunk 0 live

		size := [3]uint32{1, 2, 4}[sizeSel%3]
		samePage := addr>>PageShift == (addr+size-1)>>PageShift && addr+size-1 >= addr

		rfault := bus.CheckRead(addr, int(size))
		if bus.FastRead(addr, size) {
			if rfault != nil {
				t.Fatalf("FastRead approved %#x+%d but CheckRead faults: %+v", addr, size, rfault)
			}
			if bus.IsMMIO(addr) {
				t.Fatalf("FastRead approved MMIO %#x", addr)
			}
			raw := bus.ReadRaw(addr, int(size))
			var want, got uint32
			switch size {
			case 1:
				want, got = uint32(raw[0]), uint32(bus.Read8(addr))
			case 4:
				want, got = binary.LittleEndian.Uint32(raw), bus.Read32(addr)
			default:
				want, got = 0, 0
			}
			if want != got {
				t.Fatalf("fast read %#x+%d: raw %#x vs accessor %#x", addr, size, want, got)
			}
		} else if rfault == nil && samePage && !bus.IsMMIO(addr) {
			t.Fatalf("FastRead rejected a same-page RAM read at %#x+%d", addr, size)
		}

		wfault := bus.CheckWrite(addr, int(size))
		if bus.FastWrite(addr, size) {
			if wfault != nil {
				t.Fatalf("FastWrite approved %#x+%d but CheckWrite faults: %+v", addr, size, wfault)
			}
			if hit := bus.CheckProt(addr, int(size), SrcCPU); hit != nil {
				t.Fatalf("FastWrite approved %#x+%d but CheckProt hits: %+v", addr, size, hit)
			}
			if !doWrite {
				return
			}
			switch size {
			case 1:
				bus.Write8(addr, uint8(val))
				if bus.ReadRaw(addr, 1)[0] != uint8(val) {
					t.Fatalf("fast write8 %#x lost data", addr)
				}
			case 4:
				bus.Write32(addr, val)
				if binary.LittleEndian.Uint32(bus.ReadRaw(addr, 4)) != val {
					t.Fatalf("fast write32 %#x lost data", addr)
				}
			}
		} else if wfault == nil && samePage && !bus.IsMMIO(addr) &&
			!bus.IsProtected(addr>>PageShift) {
			t.Fatalf("FastWrite rejected a same-page unprotected RAM write at %#x+%d", addr, size)
		}
	})
}
