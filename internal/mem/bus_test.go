package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"cms/internal/guest"
)

type fakeMMIO struct {
	lastWrite uint32
	readVal   uint32
	writes    []uint32
}

func (f *fakeMMIO) MMIORead(addr uint32, size int) uint32 { return f.readVal }
func (f *fakeMMIO) MMIOWrite(addr uint32, size int, v uint32) {
	f.lastWrite = v
	f.writes = append(f.writes, v)
}

type fakePort struct{ last, val uint32 }

func (f *fakePort) PortRead(port uint16) uint32     { return f.val }
func (f *fakePort) PortWrite(port uint16, v uint32) { f.last = v }

func TestRAMReadWrite(t *testing.T) {
	b := NewBus(64 * 1024)
	b.Write32(0x100, 0xdeadbeef)
	if got := b.Read32(0x100); got != 0xdeadbeef {
		t.Errorf("Read32 = %#x", got)
	}
	if got := b.Read8(0x100); got != 0xef {
		t.Errorf("Read8 = %#x (little-endian expected)", got)
	}
	b.Write8(0x103, 0x7f)
	if got := b.Read32(0x100); got != 0x7fadbeef {
		t.Errorf("after Write8, Read32 = %#x", got)
	}
}

func TestUnalignedAndCrossPage(t *testing.T) {
	b := NewBus(64 * 1024)
	addr := uint32(PageSize - 2) // straddles pages 0 and 1
	b.Write32(addr, 0x11223344)
	if got := b.Read32(addr); got != 0x11223344 {
		t.Errorf("cross-page Read32 = %#x", got)
	}
	if f := b.CheckWrite(addr, 4); f != nil {
		t.Errorf("cross-page RAM write should be allowed: %v", f)
	}
}

func TestGuestFaults(t *testing.T) {
	b := NewBus(64 * 1024)
	// Non-present page.
	b.SetAttr(2, 0)
	f := b.CheckRead(2*PageSize+8, 4)
	if f == nil || f.Vector != guest.VecPF {
		t.Errorf("read of non-present page: %v", f)
	}
	// Read-only page faults on write, not read.
	b.SetAttr(3, AttrPresent)
	if f := b.CheckRead(3*PageSize, 4); f != nil {
		t.Errorf("read of RO page should pass: %v", f)
	}
	f = b.CheckWrite(3*PageSize, 4)
	if f == nil || f.Vector != guest.VecPF || !f.Write {
		t.Errorf("write of RO page: %v", f)
	}
	// Address wrap.
	if f := b.CheckRead(0xFFFFFFFE, 4); f == nil {
		t.Error("wrapping access must fault")
	}
	// Beyond RAM.
	if f := b.CheckRead(b.RAMSize()+PageSize, 4); f == nil || f.Vector != guest.VecPF {
		t.Errorf("access beyond RAM: %v", f)
	}
}

func TestMMIODispatch(t *testing.T) {
	b := NewBus(1 << 20)
	dev := &fakeMMIO{readVal: 0xcafe}
	b.MapMMIO(0x8000, PageSize, dev)
	if !b.IsMMIO(0x8004) {
		t.Fatal("page must be MMIO")
	}
	if b.IsMMIO(0x7FFC) {
		t.Fatal("neighbor page must not be MMIO")
	}
	if got := b.Read32(0x8004); got != 0xcafe {
		t.Errorf("MMIO read = %#x", got)
	}
	b.Write32(0x8008, 0x1234)
	if dev.lastWrite != 0x1234 {
		t.Errorf("MMIO write = %#x", dev.lastWrite)
	}
	// Misaligned MMIO access faults with #GP.
	if f := b.CheckRead(0x8001, 4); f == nil || f.Vector != guest.VecGP {
		t.Errorf("misaligned MMIO: %v", f)
	}
	// Fetch from MMIO page is a #GP.
	if f := b.CheckFetch(0x8000, 2); f == nil || f.Vector != guest.VecGP {
		t.Errorf("fetch from MMIO: %v", f)
	}
}

func TestMapMMIORequiresAlignment(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unaligned MapMMIO must panic")
		}
	}()
	NewBus(1<<20).MapMMIO(0x8010, PageSize, &fakeMMIO{})
}

func TestPortIO(t *testing.T) {
	b := NewBus(4096)
	dev := &fakePort{val: 7}
	b.MapPort(0x3F8, 0x3FF, dev)
	if got := b.PortRead(0x3F8); got != 7 {
		t.Errorf("PortRead = %d", got)
	}
	b.PortWrite(0x3FF, 42)
	if dev.last != 42 {
		t.Errorf("PortWrite delivered %d", dev.last)
	}
	if got := b.PortRead(0x1234); got != 0xFFFFFFFF {
		t.Errorf("unmapped port read = %#x, want all-ones", got)
	}
	b.PortWrite(0x1234, 1) // must not panic
}

func TestCoarseProtection(t *testing.T) {
	b := NewBus(1 << 16)
	b.Protect(1)
	if !b.IsProtected(1) || b.IsProtected(2) {
		t.Fatal("protection bits wrong")
	}
	hit := b.CheckProt(PageSize+4, 4, SrcCPU)
	if hit == nil || hit.Addr != PageSize+4 || hit.Src != SrcCPU {
		t.Fatalf("protected write: %+v", hit)
	}
	if b.CheckProt(2*PageSize, 4, SrcCPU) != nil {
		t.Error("unprotected page must not hit")
	}
	b.Unprotect(1)
	if b.CheckProt(PageSize+4, 4, SrcCPU) != nil {
		t.Error("unprotect must clear hits")
	}
}

func TestFineGrainProtection(t *testing.T) {
	b := NewBus(1 << 16)
	// Protect only chunk 3 of page 1.
	b.SetFineGrain(1, 1<<3)
	fg, mask := b.IsFineGrain(1)
	if !fg || mask != 1<<3 {
		t.Fatalf("fine-grain state: %v %#x", fg, mask)
	}
	// Write inside chunk 0: no hit (this is the win of §3.6.1).
	if hit := b.CheckProt(PageSize+0, 4, SrcCPU); hit != nil {
		t.Errorf("clear chunk must not hit: %+v", hit)
	}
	// Write inside chunk 3: hit.
	addr := uint32(PageSize + 3*ChunkSize + 8)
	if hit := b.CheckProt(addr, 4, SrcCPU); hit == nil {
		t.Error("set chunk must hit")
	}
	// Write straddling chunks 2 and 3 hits.
	if hit := b.CheckProt(uint32(PageSize+3*ChunkSize-2), 4, SrcCPU); hit == nil {
		t.Error("straddling write into set chunk must hit")
	}
	b.AddFineGrainChunks(1, 1<<5)
	if hit := b.CheckProt(uint32(PageSize+5*ChunkSize), 1, SrcCPU); hit == nil {
		t.Error("added chunk must hit")
	}
}

func TestFineGrainCacheRefills(t *testing.T) {
	b := NewBus(1 << 20)
	b.SetFineGrainCacheCap(2)
	for p := uint32(1); p <= 4; p++ {
		b.SetFineGrain(p, 0) // protected but no chunks set: writes proceed
	}
	// Touch pages 1..4 round-robin; cache holds 2, so most touches miss.
	before := b.Stats.FineGrainRefills
	for i := 0; i < 3; i++ {
		for p := uint32(1); p <= 4; p++ {
			if hit := b.CheckProt(p<<PageShift, 4, SrcCPU); hit != nil {
				t.Fatalf("mask 0 must not hit: %+v", hit)
			}
		}
	}
	misses := b.Stats.FineGrainRefills - before
	if misses != 12 { // every access misses with cap 2 and 4-page cycle
		t.Errorf("refills = %d, want 12", misses)
	}
	// Repeated access to the same page hits the cache after the first touch.
	before = b.Stats.FineGrainRefills
	for i := 0; i < 5; i++ {
		b.CheckProt(1<<PageShift, 4, SrcCPU)
	}
	if got := b.Stats.FineGrainRefills - before; got != 1 {
		t.Errorf("hot-page refills = %d, want 1", got)
	}
}

func TestDMAWriteInvalidatesProtection(t *testing.T) {
	b := NewBus(1 << 16)
	b.Protect(1)
	var invalidated []uint32
	b.DMAInvalidate = func(p uint32) { invalidated = append(invalidated, p) }
	data := bytes.Repeat([]byte{0xAB}, 64)
	b.DMAWrite(PageSize+16, data)
	if len(invalidated) != 1 || invalidated[0] != 1 {
		t.Fatalf("DMAInvalidate calls: %v", invalidated)
	}
	if b.IsProtected(1) {
		t.Error("DMA must drop protection")
	}
	if b.Read8(PageSize+16) != 0xAB {
		t.Error("DMA data not written")
	}
	if b.Stats.DMAInvalidations != 1 {
		t.Errorf("DMAInvalidations = %d", b.Stats.DMAInvalidations)
	}
	// Fine-grain pages are invalidated wholesale by DMA too.
	b.SetFineGrain(2, 0)
	b.DMAWrite(2*PageSize, data)
	if b.IsProtected(2) {
		t.Error("DMA must drop fine-grain protection wholesale")
	}
}

func TestFetchBytes(t *testing.T) {
	b := NewBus(1 << 16)
	b.WriteRaw(0x200, []byte{1, 2, 3, 4})
	dst := make([]byte, 4)
	if n := b.FetchBytes(0x200, dst); n != 4 || !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Errorf("FetchBytes = %d, %v", n, dst)
	}
	// Fetch stops at a non-present page.
	b.SetAttr(1, 0)
	dst = make([]byte, 64)
	n := b.FetchBytes(PageSize-8, dst)
	if n != 8 {
		t.Errorf("fetch across non-present boundary = %d, want 8", n)
	}
}

func TestReadWriteRaw(t *testing.T) {
	b := NewBus(1 << 16)
	b.Protect(0)
	b.WriteRaw(0x40, []byte{9, 8, 7})
	if got := b.ReadRaw(0x40, 3); !bytes.Equal(got, []byte{9, 8, 7}) {
		t.Errorf("ReadRaw = %v", got)
	}
	if !b.IsProtected(0) {
		t.Error("WriteRaw must not interact with protection")
	}
}

// Property: for any RAM address and value, Write32 then Read32 round-trips,
// and byte order is little-endian.
func TestRAMRoundTripProperty(t *testing.T) {
	b := NewBus(1 << 16)
	f := func(addr uint16, v uint32) bool {
		a := uint32(addr)
		if a+4 > b.RAMSize() {
			a = b.RAMSize() - 4
		}
		b.Write32(a, v)
		if b.Read32(a) != v {
			return false
		}
		return b.Read8(a) == uint8(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
