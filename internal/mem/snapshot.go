package mem

import "fmt"

// PageData is one non-zero RAM page in a BusState.
type PageData struct {
	Index uint32 `json:"index"`
	Data  []byte `json:"data"`
}

// BusState is the serializable state of a Bus: sparse RAM (zero pages are
// omitted), per-page guest attributes, the CMS protection state, and the
// per-page modification generations. MMIO regions and port mappings are NOT
// part of the state — they are topology, re-created by whoever builds the
// platform — but the generations ARE, because cached decodings made before
// a snapshot must stay valid after restore exactly when they would have
// stayed valid without one.
type BusState struct {
	NumPages   uint32     `json:"num_pages"`
	Pages      []PageData `json:"pages"`
	Attrs      []Attr     `json:"attrs"`
	Protected  []bool     `json:"protected"`
	FineGrain  []bool     `json:"fine_grain"`
	FineMask   []uint32   `json:"fine_mask"`
	Gen        []uint64   `json:"gen"`
	FGCache    []uint32   `json:"fg_cache"`
	FGCacheCap int        `json:"fg_cache_cap"`
	Stats      BusStats   `json:"stats"`
}

// ExportState captures the bus into a BusState. Zero-filled pages are
// compressed away; everything else is copied, so the state is independent
// of later bus mutations.
func (b *Bus) ExportState() *BusState {
	s := &BusState{
		NumPages:   b.NumPages(),
		Attrs:      append([]Attr(nil), b.attrs...),
		Protected:  append([]bool(nil), b.protected...),
		FineGrain:  append([]bool(nil), b.fineGrain...),
		FineMask:   append([]uint32(nil), b.fineMask...),
		Gen:        append([]uint64(nil), b.gen...),
		FGCache:    append([]uint32(nil), b.fgCache...),
		FGCacheCap: b.fgCacheCap,
		Stats:      b.Stats,
	}
	for p := uint32(0); p < s.NumPages; p++ {
		page := b.ram[p<<PageShift : (p+1)<<PageShift]
		if allZero(page) {
			continue
		}
		s.Pages = append(s.Pages, PageData{Index: p, Data: append([]byte(nil), page...)})
	}
	return s
}

// RestoreState overwrites the bus with a previously exported state. The bus
// must have the same RAM size the state was captured from. Generations are
// restored verbatim — NOT bumped — so content caches filled before capture
// remain exactly as valid as they were.
func (b *Bus) RestoreState(s *BusState) error {
	n := b.NumPages()
	if s.NumPages != n {
		return fmt.Errorf("mem: snapshot has %d pages, bus has %d", s.NumPages, n)
	}
	if uint32(len(s.Attrs)) != n || uint32(len(s.Protected)) != n ||
		uint32(len(s.FineGrain)) != n || uint32(len(s.FineMask)) != n ||
		uint32(len(s.Gen)) != n {
		return fmt.Errorf("mem: snapshot page-array lengths do not match %d pages", n)
	}
	for i := range b.ram {
		b.ram[i] = 0
	}
	for _, pg := range s.Pages {
		if pg.Index >= n {
			return fmt.Errorf("mem: snapshot page %d beyond RAM (%d pages)", pg.Index, n)
		}
		if len(pg.Data) != PageSize {
			return fmt.Errorf("mem: snapshot page %d has %d bytes", pg.Index, len(pg.Data))
		}
		copy(b.ram[pg.Index<<PageShift:], pg.Data)
	}
	copy(b.attrs, s.Attrs)
	copy(b.protected, s.Protected)
	copy(b.fineGrain, s.FineGrain)
	copy(b.fineMask, s.FineMask)
	copy(b.gen, s.Gen)
	b.fgCache = append(b.fgCache[:0], s.FGCache...)
	if s.FGCacheCap > 0 {
		b.fgCacheCap = s.FGCacheCap
	}
	if len(b.fgCache) > b.fgCacheCap {
		b.fgCache = b.fgCache[:b.fgCacheCap]
	}
	b.Stats = s.Stats
	return nil
}

func allZero(p []byte) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}
