package bench

import (
	"testing"

	"cms/internal/cms"
	"cms/internal/workload"
)

// BenchmarkEngineRun times one full engine run of each hot workload kernel
// under the default configuration (compiled backend on).
func BenchmarkEngineRun(b *testing.B) {
	for _, name := range PerfWorkloads {
		w, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(w, cms.DefaultConfig()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRunInterp is the same measurement with the compiled
// backend off, for quick A/B profiling of the two hot paths.
func BenchmarkEngineRunInterp(b *testing.B) {
	cfg := cms.DefaultConfig()
	cfg.EnableCompiledBackend = false
	for _, name := range PerfWorkloads {
		w, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(w, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
