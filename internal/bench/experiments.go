package bench

import (
	"cms/internal/cms"
	"cms/internal/vliw"
	"cms/internal/workload"
)

// Row is one benchmark line of a degradation figure.
type Row struct {
	Name        string
	Kind        workload.Kind
	BaseMols    uint64
	VariantMols uint64
	Percent     float64
}

// FigureResult is a reproduced bar chart: per-benchmark degradations and
// the boot/application means the paper prints.
type FigureResult struct {
	Title    string
	Rows     []Row
	MeanBoot float64
	MeanApp  float64
}

func runFigure(title string, variant func(*cms.Config)) (*FigureResult, error) {
	res := &FigureResult{Title: title}
	var boots, apps []float64
	for _, w := range workload.All() {
		base, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := cms.DefaultConfig()
		variant(&cfg)
		v, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		d := degradation(base.Mols(), v.Mols())
		res.Rows = append(res.Rows, Row{
			Name: w.Name, Kind: w.Kind,
			BaseMols: base.Mols(), VariantMols: v.Mols(), Percent: d,
		})
		if w.Kind == workload.Boot {
			boots = append(boots, d)
		} else {
			apps = append(apps, d)
		}
	}
	res.MeanBoot, res.MeanApp = mean(boots), mean(apps)
	return res, nil
}

// Figure2 reproduces "Degradation Caused by Suppressing Memory Reordering":
// the full suite with and without load/store reordering.
func Figure2() (*FigureResult, error) {
	return runFigure("Figure 2: degradation from suppressing memory reordering",
		func(c *cms.Config) { c.BasePolicy.NoReorderMem = true })
}

// Figure3 reproduces "Degradation Caused By No Alias Hardware": reordering
// allowed only across provably disjoint references.
func Figure3() (*FigureResult, error) {
	return runFigure("Figure 3: degradation without alias hardware",
		func(c *cms.Config) { c.BasePolicy.NoAliasHW = true })
}

// Table1Row is one line of the fine-grain protection table.
type Table1Row struct {
	Name string
	// FaultsFG / FaultsNoFG are protection fault counts with and without
	// fine-grain support.
	FaultsFG   uint64
	FaultsNoFG uint64
	// FaultRatio is NoFG/FG (the paper's "faults" column).
	FaultRatio float64
	// MPIFG/MPINoFG are molecules per guest instruction.
	MPIFG   float64
	MPINoFG float64
	// Slowdown is MPINoFG/MPIFG (the paper's "slowdown" column).
	Slowdown float64
}

// Table1Workloads are the benchmarks in the paper's Table 1, mapped to our
// analogs.
var Table1Workloads = []string{
	"win95_boot", "win98_boot", "multimedia", "winstone_corel", "quake_demo2",
}

// Table1 reproduces "Slowdown Without Fine-Grain Protection".
func Table1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range Table1Workloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		fg, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := cms.DefaultConfig()
		cfg.EnableFineGrain = false
		nofg, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		row := Table1Row{
			Name:       name,
			FaultsFG:   fg.Metrics.ProtFaults,
			FaultsNoFG: nofg.Metrics.ProtFaults,
			MPIFG:      fg.Metrics.MPI(),
			MPINoFG:    nofg.Metrics.MPI(),
		}
		if row.FaultsFG > 0 {
			row.FaultRatio = float64(row.FaultsNoFG) / float64(row.FaultsFG)
		}
		if row.MPIFG > 0 {
			row.Slowdown = row.MPINoFG / row.MPIFG
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SelfCheckRow is one line of the §3.6.3 forced-self-checking data.
type SelfCheckRow struct {
	Name string
	// CodeGrowth is the static code size increase in percent.
	CodeGrowth float64
	// MolGrowth is the dynamic molecule increase in percent.
	MolGrowth float64
}

// SelfCheckResult carries the suite rows plus the means the paper quotes
// ("a mean of 83% to the code size... a mean of 51% to the molecules
// executed").
type SelfCheckResult struct {
	Rows               []SelfCheckRow
	MeanCode, MeanMols float64
}

// SelfCheck measures the cost of forcing every translation to be
// self-checking.
func SelfCheck() (*SelfCheckResult, error) {
	res := &SelfCheckResult{}
	var codes, mols []float64
	for _, w := range workload.All() {
		base, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := cms.DefaultConfig()
		cfg.BasePolicy.SelfCheck = true
		chk, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		// Normalize static size per translated guest instruction, since the
		// checked run may translate a different number of regions.
		baseSize := float64(base.Metrics.CodeAtoms) / float64(base.Metrics.GuestInsnsTranslated)
		chkSize := float64(chk.Metrics.CodeAtoms) / float64(chk.Metrics.GuestInsnsTranslated)
		row := SelfCheckRow{
			Name:       w.Name,
			CodeGrowth: 100 * (chkSize - baseSize) / baseSize,
			MolGrowth:  degradation(base.Mols(), chk.Mols()),
		}
		res.Rows = append(res.Rows, row)
		codes = append(codes, row.CodeGrowth)
		mols = append(mols, row.MolGrowth)
	}
	res.MeanCode, res.MeanMols = mean(codes), mean(mols)
	return res, nil
}

// SelfRevalResult carries the §3.6.2 Quake frame-rate comparison.
type SelfRevalResult struct {
	Frames uint32
	// FrameRateWith/Without are frames per million molecules.
	FrameRateWith    float64
	FrameRateWithout float64
	// Improvement is the percentage frame-rate gain from self-revalidation
	// (the paper reports 28%).
	Improvement float64
	ArmsWith    uint64
	PassesWith  uint64
}

// SelfReval measures the Quake analog with and without self-revalidating
// translations.
func SelfReval() (*SelfRevalResult, error) {
	w, err := workload.ByName("quake_demo2")
	if err != nil {
		return nil, err
	}
	with, err := Run(w, cms.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cfg := cms.DefaultConfig()
	cfg.EnableSelfReval = false
	without, err := Run(w, cfg)
	if err != nil {
		return nil, err
	}
	fr := func(r *RunStats) float64 {
		return float64(r.QuakeFrames) / (float64(r.Mols()) / 1e6)
	}
	res := &SelfRevalResult{
		Frames:           with.QuakeFrames,
		FrameRateWith:    fr(with),
		FrameRateWithout: fr(without),
		ArmsWith:         with.Metrics.SelfRevalArms,
		PassesWith:       with.Metrics.SelfRevalPasses,
	}
	if res.FrameRateWithout > 0 {
		res.Improvement = 100 * (res.FrameRateWith - res.FrameRateWithout) / res.FrameRateWithout
	}
	return res, nil
}

// FlowResult validates the Figure 1 control-flow structure with observed
// transition counts from a representative workload.
type FlowResult struct {
	Workload string
	Metrics  cms.Metrics
}

// Flow runs a workload and reports the dispatch-loop transition counts.
func Flow(name string) (*FlowResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	r, err := Run(w, cms.DefaultConfig())
	if err != nil {
		return nil, err
	}
	return &FlowResult{Workload: name, Metrics: r.Metrics}, nil
}

// ChainResult compares execution with and without exit chaining (§2).
type ChainResult struct {
	Workload                   string
	MolsChained, MolsUnchained uint64
	ChainTransfers             uint64
	LookupsChained             uint64
	LookupsUnchained           uint64
}

// Chain measures what chaining saves.
func Chain(name string) (*ChainResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	on, err := Run(w, cms.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cfg := cms.DefaultConfig()
	cfg.EnableChaining = false
	off, err := Run(w, cfg)
	if err != nil {
		return nil, err
	}
	return &ChainResult{
		Workload:         name,
		MolsChained:      on.Mols(),
		MolsUnchained:    off.Mols(),
		ChainTransfers:   on.Metrics.ChainTransfers,
		LookupsChained:   on.Metrics.LookupTransfers,
		LookupsUnchained: off.Metrics.LookupTransfers + off.Metrics.DispatchReturns,
	}, nil
}

// FaultMix summarizes fault-class counts across the whole suite under the
// default configuration (structural data for §3).
type FaultMix struct {
	Faults      [8]uint64
	Adaptations [8]uint64
	Names       []string
}

// Faults aggregates fault statistics over the suite.
func Faults() (*FaultMix, error) {
	res := &FaultMix{}
	for c := vliw.FaultClass(0); c < 8; c++ {
		res.Names = append(res.Names, c.String())
	}
	for _, w := range workload.All() {
		r, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		for i := 0; i < 8; i++ {
			res.Faults[i] += r.Metrics.Faults[i]
			res.Adaptations[i] += r.Metrics.Adaptations[i]
		}
	}
	return res, nil
}
