package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/snapshot"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// SnapshotPerf is one hot kernel's checkpoint/restore cost profile, measured
// at a mid-run capture point (half the workload's retirement count).
type SnapshotPerf struct {
	Name string `json:"name"`
	// SnapshotBytes is the serialized envelope size: header, JSON payload,
	// integrity hash. Dominated by non-zero RAM pages.
	SnapshotBytes int `json:"snapshot_bytes"`
	// SaveNs is the wall-clock cost of snapshot.Save at the capture point.
	SaveNs int64 `json:"save_ns"`
	// RestoreWarmNs times snapshot.Load against a shared store that already
	// holds the capture's translations (the live-migration receiver after
	// prewarming, or a restore on the capturing host). RestoreColdNs is the
	// same restore against an empty store — every translation is rebuilt by
	// deterministic retranslation.
	RestoreWarmNs int64 `json:"restore_warm_ns"`
	RestoreColdNs int64 `json:"restore_cold_ns"`
	// Translations is the number of translation keys the envelope carries.
	Translations int `json:"translations"`
	// RehydrateHitRate is the warm restore's store hit fraction (1.0 when
	// the store still holds everything the capture had installed).
	RehydrateHitRate float64 `json:"rehydrate_hit_rate"`
}

// SnapshotCosts measures checkpoint/restore over the perf kernels: each
// workload runs to half its retirement count against a shared store, is
// serialized, and is restored twice — once against the warm store, once
// against a cold one. The warm restored engine then finishes the run and
// must retire exactly the uninterrupted run's instruction count, so the
// numbers reported here are for restores proven equivalent, not just
// restores that loaded.
func SnapshotCosts() ([]SnapshotPerf, error) {
	var rows []SnapshotPerf
	for _, name := range PerfWorkloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		full, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		total := full.Metrics.GuestTotal()

		warm := tcache.NewShared(0)
		cfg := cms.DefaultConfig()
		cfg.SharedStore = warm
		img := w.Build()
		plat := dev.NewPlatform(img.RAM, img.Disk)
		plat.Bus.WriteRaw(img.Org, img.Data)
		e := cms.New(plat, img.Entry, cfg)
		if err := e.Run(total / 2); !errors.Is(err, cms.ErrBudget) {
			return nil, fmt.Errorf("bench: %s: mid-run stop: %v", name, err)
		}

		t0 := time.Now()
		blob, err := snapshot.Save(e)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: save: %w", name, err)
		}
		saveNs := time.Since(t0).Nanoseconds()

		t0 = time.Now()
		re, err := snapshot.Load(blob, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: warm restore: %w", name, err)
		}
		warmNs := time.Since(t0).Nanoseconds()
		st := warm.Stats()
		hitRate := 0.0
		if n := st.RehydrateHits + st.RehydrateMisses; n > 0 {
			hitRate = float64(st.RehydrateHits) / float64(n)
		}

		ccfg := cms.DefaultConfig()
		ccfg.SharedStore = tcache.NewShared(0)
		t0 = time.Now()
		if _, err := snapshot.Load(blob, ccfg); err != nil {
			return nil, fmt.Errorf("bench: %s: cold restore: %w", name, err)
		}
		coldNs := time.Since(t0).Nanoseconds()

		// Finish the warm restore and cross-check against the solo run: a
		// restore whose continuation retires a different instruction count is
		// not a restore, whatever it timed at.
		if err := re.Run(total); err != nil {
			return nil, fmt.Errorf("bench: %s: restored run: %w", name, err)
		}
		if got := re.Metrics.GuestTotal(); got != total || !re.CPU().Halted {
			return nil, fmt.Errorf("bench: %s: restored run retired %d insns, solo %d", name, got, total)
		}

		rows = append(rows, SnapshotPerf{
			Name:             name,
			SnapshotBytes:    len(blob),
			SaveNs:           saveNs,
			RestoreWarmNs:    warmNs,
			RestoreColdNs:    coldNs,
			Translations:     len(warm.Keys()),
			RehydrateHitRate: hitRate,
		})
	}
	return rows, nil
}

// WriteSnapshot renders the checkpoint/restore cost table.
func WriteSnapshot(w io.Writer, rows []SnapshotPerf) {
	fmt.Fprintln(w, "Checkpoint/restore costs (capture at half retirement, restore verified bit-identical):")
	fmt.Fprintf(w, "%-14s %12s %10s %14s %14s %6s %6s\n",
		"workload", "bytes", "save ms", "restore-warm", "restore-cold", "xlns", "hit%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %12d %10.3f %11.3f ms %11.3f ms %6d %5.0f%%\n",
			r.Name, r.SnapshotBytes, float64(r.SaveNs)/1e6,
			float64(r.RestoreWarmNs)/1e6, float64(r.RestoreColdNs)/1e6,
			r.Translations, 100*r.RehydrateHitRate)
	}
}

// SnapshotOverhead compares each workload's snapshot-ready and guarded
// timings within one record: the marginal cost of checkpoint support
// (the second watchdog flag and the resume seam) over the fault-containment
// shape the farm already paid for. Workloads without both measurements
// (old records) are skipped.
func SnapshotOverhead(rec *PerfRecord) (deltas []GuardDelta, worst float64) {
	for _, w := range rec.Workloads {
		if w.NsPerRunGuarded == 0 || w.NsPerRunSnapReady == 0 {
			continue
		}
		pct := 100 * (float64(w.NsPerRunSnapReady) - float64(w.NsPerRunGuarded)) / float64(w.NsPerRunGuarded)
		deltas = append(deltas, GuardDelta{Name: w.Name, PlainNs: w.NsPerRunGuarded, GuardedNs: w.NsPerRunSnapReady, Pct: pct})
		if pct > worst {
			worst = pct
		}
	}
	return deltas, worst
}
