package bench

import (
	"fmt"
	"io"

	"cms/internal/cms"
	"cms/internal/vliw"
	"cms/internal/workload"
)

// AblationPoint is one configuration of a swept design parameter.
type AblationPoint struct {
	Label string
	// MPI is molecules per guest instruction under this configuration.
	MPI float64
	// Mols is the total molecule count.
	Mols uint64
	// Translations made (interesting for threshold sweeps).
	Translations uint64
}

// AblationResult is one parameter sweep over one workload.
type AblationResult struct {
	Parameter string
	Workload  string
	Points    []AblationPoint
}

// AblateUnroll sweeps the region unroll factor — the design choice that
// gives the scheduler cross-iteration freedom (DESIGN.md: "regions may be
// fairly large ... up to 200 x86 instructions").
func AblateUnroll(name string) (*AblationResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: "unroll", Workload: name}
	for _, u := range []int{1, 2, 4, 8} {
		cfg := cms.DefaultConfig()
		cfg.BasePolicy.Unroll = u
		r, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, AblationPoint{
			Label: fmt.Sprintf("unroll=%d", u),
			MPI:   r.Metrics.MPI(), Mols: r.Mols(), Translations: r.Metrics.Translations,
		})
	}
	return res, nil
}

// AblateHotThreshold sweeps the interpretation-to-translation threshold —
// the classic DBT tradeoff between translating cold code (wasted translator
// work) and interpreting hot code (wasted execution).
func AblateHotThreshold(name string) (*AblationResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: "hot-threshold", Workload: name}
	for _, h := range []uint64{5, 20, 50, 200, 1000} {
		cfg := cms.DefaultConfig()
		cfg.HotThreshold = h
		r, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, AblationPoint{
			Label: fmt.Sprintf("hot=%d", h),
			MPI:   r.Metrics.MPI(), Mols: r.Mols(), Translations: r.Metrics.Translations,
		})
	}
	return res, nil
}

// AblateRegionCap sweeps the maximum region length.
func AblateRegionCap(name string) (*AblationResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: "region-cap", Workload: name}
	for _, c := range []int{8, 25, 50, 100, 200} {
		cfg := cms.DefaultConfig()
		cfg.BasePolicy.MaxInsns = c
		r, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, AblationPoint{
			Label: fmt.Sprintf("cap=%d", c),
			MPI:   r.Metrics.MPI(), Mols: r.Mols(), Translations: r.Metrics.Translations,
		})
	}
	return res, nil
}

// AblateFaultThreshold sweeps how many speculation failures a translation
// absorbs before adaptive retranslation (§3's "recurring" judgment).
func AblateFaultThreshold(name string) (*AblationResult, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Parameter: "fault-threshold", Workload: name}
	for _, f := range []uint32{1, 2, 4, 16, 1 << 30} {
		cfg := cms.DefaultConfig()
		cfg.FaultThreshold = f
		r, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("faults=%d", f)
		if f == 1<<30 {
			label = "faults=never-adapt"
		}
		res.Points = append(res.Points, AblationPoint{
			Label: label,
			MPI:   r.Metrics.MPI(), Mols: r.Mols(), Translations: r.Metrics.Translations,
		})
	}
	return res, nil
}

// WriteAblation renders a sweep.
func WriteAblation(w io.Writer, r *AblationResult) {
	fmt.Fprintf(w, "Ablation: %s on %s\n", r.Parameter, r.Workload)
	fmt.Fprintf(w, "%-20s %10s %14s %8s\n", "point", "mols/insn", "molecules", "xlations")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-20s %10.2f %14d %8d\n", p.Label, p.MPI, p.Mols, p.Translations)
	}
}

// HostGenRow compares a workload across hardware generations.
type HostGenRow struct {
	Name    string
	MPI5800 float64
	MPI8000 float64
	Speedup float64 // TM5800 mols / TM8000 mols
}

// HostGenerations reruns the suite on the TM8000 host — the experiment the
// paper's co-design argument promises: new hardware, same guest software,
// only the translator retargeted.
func HostGenerations() ([]HostGenRow, error) {
	var rows []HostGenRow
	for _, w := range workload.All() {
		base, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := cms.DefaultConfig()
		cfg.Host = vliw.TM8000()
		next, err := Run(w, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, HostGenRow{
			Name:    w.Name,
			MPI5800: base.Metrics.MPI(),
			MPI8000: next.Metrics.MPI(),
			Speedup: float64(base.Mols()) / float64(next.Mols()),
		})
	}
	return rows, nil
}

// WriteHostGen renders the generation comparison.
func WriteHostGen(w io.Writer, rows []HostGenRow) {
	fmt.Fprintln(w, "Hardware generations: TM5800 vs TM8000 (same guest binaries)")
	fmt.Fprintf(w, "%-18s %10s %10s %9s\n", "benchmark", "mpi-5800", "mpi-8000", "speedup")
	var s float64
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10.2f %10.2f %8.2fx\n", r.Name, r.MPI5800, r.MPI8000, r.Speedup)
		s += r.Speedup
	}
	fmt.Fprintf(w, "mean speedup: %.2fx\n", s/float64(len(rows)))
}
