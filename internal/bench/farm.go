package bench

import (
	"fmt"
	"io"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

// FarmLevels are the concurrency levels the farm experiment sweeps.
var FarmLevels = []int{1, 4, 8}

// FarmJobsPerLevel is how many VM runs each level serves. The job list
// cycles through FarmWorkloads, so every level sees repeated workloads and
// the shared store's dedup engages the way it would in a real serving farm.
const FarmJobsPerLevel = 12

// FarmWorkloads are the kernels the farm experiment serves.
var FarmWorkloads = []string{"eqntott", "compress", "alvinn"}

// FarmPerf is one concurrency level's serving measurement.
type FarmPerf struct {
	VMs    int   `json:"vms"`
	Jobs   int   `json:"jobs"`
	WallNs int64 `json:"wall_ns"`
	// VMsPerSec is serving throughput: completed VM runs per wall-clock
	// second.
	VMsPerSec float64 `json:"vms_per_sec"`
	// DedupRatio is the shared store's hit fraction over the whole level.
	DedupRatio  float64 `json:"dedup_ratio"`
	StoreHits   uint64  `json:"store_hits"`
	StoreMisses uint64  `json:"store_misses"`
	// Fault-containment outcomes during the sweep. All zero on a healthy
	// level (and the sweep fails on any failure), but recorded so the perf
	// trajectory would show a farm that started failing or retrying.
	Failures uint64 `json:"farm_failures"`
	Retries  uint64 `json:"farm_retries"`
	Timeouts uint64 `json:"farm_timeouts"`
}

// FarmThroughput measures serving throughput at each concurrency level:
// one fresh farm per level (cold shared store), FarmJobsPerLevel jobs
// cycling through FarmWorkloads, wall clock from first submit to drain.
func FarmThroughput() ([]FarmPerf, error) {
	var out []FarmPerf
	for _, vms := range FarmLevels {
		f := farm.New(farm.Config{
			MaxVMs:     vms,
			QueueDepth: FarmJobsPerLevel,
			Engine:     cms.DefaultConfig(),
		})
		t0 := time.Now()
		for i := 0; i < FarmJobsPerLevel; i++ {
			name := FarmWorkloads[i%len(FarmWorkloads)]
			if _, err := f.Submit(farm.JobSpec{Workload: name}); err != nil {
				return nil, fmt.Errorf("bench: farm submit %s: %w", name, err)
			}
		}
		f.Drain()
		wall := time.Since(t0).Nanoseconds()
		st := f.Stats()
		if st.Failed > 0 {
			for _, j := range f.Jobs() {
				if j.Status == farm.StatusFailed {
					return nil, fmt.Errorf("bench: farm job %s (%s): %s", j.ID, j.Spec.Workload, j.Error)
				}
			}
		}
		out = append(out, FarmPerf{
			VMs:         vms,
			Jobs:        FarmJobsPerLevel,
			WallNs:      wall,
			VMsPerSec:   float64(FarmJobsPerLevel) / (float64(wall) / 1e9),
			DedupRatio:  st.Store.DedupRatio(),
			StoreHits:   st.Store.Hits + st.Store.Waits,
			StoreMisses: st.Store.Misses,
			Failures:    st.Failed,
			Retries:     st.Retries,
			Timeouts:    st.Timeouts,
		})
	}
	return out, nil
}

// WriteFarm renders the farm sweep as a text table.
func WriteFarm(w io.Writer, rows []FarmPerf) {
	fmt.Fprintf(w, "Serving farm: %d jobs over %v, shared translation store\n", FarmJobsPerLevel, FarmWorkloads)
	fmt.Fprintf(w, "%4s %6s %12s %10s %8s %8s %8s\n",
		"vms", "jobs", "wall ms", "VMs/sec", "dedup", "hits", "misses")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %6d %12.1f %10.2f %7.1f%% %8d %8d\n",
			r.VMs, r.Jobs, float64(r.WallNs)/1e6, r.VMsPerSec,
			100*r.DedupRatio, r.StoreHits, r.StoreMisses)
	}
}
