package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"cms/internal/cms"
	"cms/internal/farm"
)

// The farmscale experiment is the repo's multicore truth serum: it measures
// whether the serving farm actually converts cores into throughput, or just
// interleaves VMs on one core. Every level pins GOMAXPROCS to the level's
// VM count, floods the farm with a sustained mixed-workload job stream, and
// records aggregate throughput, per-core throughput, p50/p99 job latency,
// and scaling efficiency — throughput at N effective cores divided by N
// times the single-VM figure. BENCH_PR4.json's flat 1→8-VM curve (recorded
// on num_cpu=1, which nothing warned about at the time) is exactly the
// failure mode this experiment exists to expose and gate against.

// FarmScaleLevels are the default concurrency levels: at each level the
// farm runs N VM slots with GOMAXPROCS set to N.
var FarmScaleLevels = []int{1, 2, 4, 8}

// FarmScaleJobs is the default sustained-load job count per level — large
// enough that queueing, store contention, and scheduler effects dominate
// over startup transients.
const FarmScaleJobs = 1000

// FarmScalePerf is one level of the sustained-load sweep.
type FarmScalePerf struct {
	// VMs is the farm's concurrent VM slots; GOMAXPROCS is set to the same
	// value for the level's duration.
	VMs int `json:"vms"`
	// EffectiveCores is min(VMs, NumCPU) — the parallelism the host can
	// actually deliver. When this is 1 the level measures interleaving, not
	// scaling, and the harness says so loudly.
	EffectiveCores int   `json:"effective_cores"`
	Jobs           int   `json:"jobs"`
	WallNs         int64 `json:"wall_ns"`
	// VMsPerSec is aggregate serving throughput: completed VM runs per
	// wall-clock second across the whole farm.
	VMsPerSec float64 `json:"vms_per_sec"`
	// VMsPerSecPerCore normalizes throughput by EffectiveCores.
	VMsPerSecPerCore float64 `json:"vms_per_sec_per_core"`
	// P50Ns/P99Ns are submit-to-completion job latencies (queue wait
	// included) over all jobs of the level.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// ScalingEfficiency is VMsPerSec divided by (EffectiveCores × the
	// 1-VM level's VMsPerSec): 1.0 is perfect linear scaling, and on a
	// single-core host it degenerates to ~1.0 by construction (throughput
	// can only interleave). Zero when the sweep has no 1-VM level.
	ScalingEfficiency float64 `json:"scaling_efficiency"`
	DedupRatio        float64 `json:"dedup_ratio"`
	StoreHits         uint64  `json:"store_hits"`
	StoreMisses       uint64  `json:"store_misses"`
}

// FarmScale runs the sustained-load sweep: for each level N it sets
// GOMAXPROCS=N, builds a fresh farm (cold shared store) with N VM slots,
// floods it with `jobs` mixed-workload jobs, drains, and measures. The
// previous GOMAXPROCS is restored before returning.
func FarmScale(levels []int, jobs int) ([]FarmScalePerf, error) {
	if len(levels) == 0 {
		levels = FarmScaleLevels
	}
	if jobs <= 0 {
		jobs = FarmScaleJobs
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var out []FarmScalePerf
	for _, vms := range levels {
		runtime.GOMAXPROCS(vms)
		row, err := farmScaleLevel(vms, jobs)
		if err != nil {
			return nil, err
		}
		out = append(out, *row)
	}
	// Efficiency needs the 1-VM anchor; compute after the sweep so level
	// order doesn't matter.
	var base float64
	for _, r := range out {
		if r.VMs == 1 {
			base = r.VMsPerSec
			break
		}
	}
	for i := range out {
		if base > 0 {
			out[i].ScalingEfficiency = out[i].VMsPerSec / (float64(out[i].EffectiveCores) * base)
		}
	}
	return out, nil
}

func farmScaleLevel(vms, jobs int) (*FarmScalePerf, error) {
	f := farm.New(farm.Config{
		MaxVMs:     vms,
		QueueDepth: jobs,
		Engine:     cms.DefaultConfig(),
	})
	t0 := time.Now()
	for i := 0; i < jobs; i++ {
		name := FarmWorkloads[i%len(FarmWorkloads)]
		if _, err := f.Submit(farm.JobSpec{Workload: name}); err != nil {
			return nil, fmt.Errorf("bench: farmscale submit %s: %w", name, err)
		}
	}
	f.Drain()
	wall := time.Since(t0).Nanoseconds()

	views := f.Jobs()
	for _, j := range views {
		if j.Status == farm.StatusFailed {
			return nil, fmt.Errorf("bench: farmscale job %s (%s): %s", j.ID, j.Spec.Workload, j.Error)
		}
	}
	p50, p99 := farm.LatencyPercentiles(views)
	st := f.Stats()
	eff := vms
	if n := runtime.NumCPU(); eff > n {
		eff = n
	}
	vmsPerSec := float64(jobs) / (float64(wall) / 1e9)
	return &FarmScalePerf{
		VMs:              vms,
		EffectiveCores:   eff,
		Jobs:             jobs,
		WallNs:           wall,
		VMsPerSec:        vmsPerSec,
		VMsPerSecPerCore: vmsPerSec / float64(eff),
		P50Ns:            p50,
		P99Ns:            p99,
		DedupRatio:       st.Store.DedupRatio(),
		StoreHits:        st.Store.Hits + st.Store.Waits,
		StoreMisses:      st.Store.Misses,
	}, nil
}

// SerialFarmRun reports whether farm measurements taken right now can only
// interleave, never parallelize: the condition that silently invalidated
// the PR1→PR4 bench history (every record carried num_cpu=1 and nobody
// noticed). Callers print WarnSerialFarm when it is true.
func SerialFarmRun() bool {
	return runtime.NumCPU() <= 1 || runtime.GOMAXPROCS(0) <= 1
}

// WarnSerialFarm prints the loud version of SerialFarmRun's verdict.
func WarnSerialFarm(w io.Writer) {
	fmt.Fprintf(w, `
********************************************************************************
* WARNING: effective parallelism is 1 (NumCPU=%d, GOMAXPROCS=%d).
* Farm throughput below measures INTERLEAVING, not multicore scaling: VMs/sec
* will be flat across VM counts and scaling efficiency is meaningless. Re-run
* on a multicore host before drawing any serving-scalability conclusion.
********************************************************************************
`, runtime.NumCPU(), runtime.GOMAXPROCS(0))
}

// WriteFarmScale renders the sweep as a text table.
func WriteFarmScale(w io.Writer, rows []FarmScalePerf) {
	fmt.Fprintf(w, "Sustained farm load: %v jobs/level over %v, fresh sharded store per level\n",
		rowsJobs(rows), FarmWorkloads)
	fmt.Fprintf(w, "%4s %6s %6s %12s %10s %10s %10s %10s %7s %7s\n",
		"vms", "cores", "jobs", "wall ms", "VMs/sec", "VMs/s/core", "p50 ms", "p99 ms", "effic", "dedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%4d %6d %6d %12.1f %10.2f %10.2f %10.2f %10.2f %6.2fx %6.1f%%\n",
			r.VMs, r.EffectiveCores, r.Jobs, float64(r.WallNs)/1e6, r.VMsPerSec,
			r.VMsPerSecPerCore, float64(r.P50Ns)/1e6, float64(r.P99Ns)/1e6,
			r.ScalingEfficiency, 100*r.DedupRatio)
	}
}

func rowsJobs(rows []FarmScalePerf) int {
	if len(rows) == 0 {
		return 0
	}
	return rows[0].Jobs
}

// ScalingDelta is one level's efficiency change against a baseline record.
type ScalingDelta struct {
	VMs       int
	BaseEff   float64
	CurEff    float64
	Regressed bool
}

// CompareScaling gates on multicore scaling efficiency: for every VM level
// present in both records, the current efficiency must not fall more than
// tol (absolute, e.g. 0.10) below the baseline's. Records measured with
// effective parallelism 1 — on either side — are incomparable: efficiency
// degenerates to ~1.0 on a serial host, so gating there would wave through
// exactly the regressions this gate exists to catch. In that case (or when
// either record predates farm_scale) CompareScaling returns ok=false and
// the caller warns instead of gating.
func CompareScaling(base, cur *PerfRecord, tol float64) (deltas []ScalingDelta, regressed, ok bool) {
	if len(base.FarmScale) == 0 || len(cur.FarmScale) == 0 {
		return nil, false, false
	}
	if maxEffectiveCores(base.FarmScale) <= 1 || maxEffectiveCores(cur.FarmScale) <= 1 {
		return nil, false, false
	}
	baseBy := make(map[int]FarmScalePerf, len(base.FarmScale))
	for _, r := range base.FarmScale {
		baseBy[r.VMs] = r
	}
	for _, r := range cur.FarmScale {
		b, found := baseBy[r.VMs]
		if !found || r.VMs == 1 {
			continue // efficiency at the 1-VM anchor is 1.0 by definition
		}
		d := ScalingDelta{VMs: r.VMs, BaseEff: b.ScalingEfficiency, CurEff: r.ScalingEfficiency}
		d.Regressed = b.ScalingEfficiency-r.ScalingEfficiency > tol
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	return deltas, regressed, true
}

func maxEffectiveCores(rows []FarmScalePerf) int {
	max := 0
	for _, r := range rows {
		if r.EffectiveCores > max {
			max = r.EffectiveCores
		}
	}
	return max
}
