package bench

import (
	"runtime"
	"strings"
	"testing"
)

// TestFarmScaleShape runs a miniature sustained-load sweep and checks every
// recorded field is internally consistent. Kept small: the real sweep is
// cmsbench -exp farmscale / the BENCH_*.json record.
func TestFarmScaleShape(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	rows, err := FarmScale([]int{1, 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != prev {
		t.Fatalf("FarmScale left GOMAXPROCS at %d, started at %d", got, prev)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for i, r := range rows {
		if r.Jobs != 9 || r.WallNs <= 0 || r.VMsPerSec <= 0 {
			t.Errorf("row %d: no throughput measured: %+v", i, r)
		}
		if r.EffectiveCores < 1 || r.EffectiveCores > r.VMs {
			t.Errorf("row %d: effective cores %d with %d VMs", i, r.EffectiveCores, r.VMs)
		}
		if r.P50Ns <= 0 || r.P99Ns < r.P50Ns {
			t.Errorf("row %d: latency percentiles p50=%d p99=%d", i, r.P50Ns, r.P99Ns)
		}
		if r.VMsPerSecPerCore <= 0 {
			t.Errorf("row %d: per-core throughput missing", i)
		}
		if r.ScalingEfficiency <= 0 {
			t.Errorf("row %d: scaling efficiency missing (1-VM anchor present)", i)
		}
		// 9 jobs cycling 3 workloads: at least the 6 repeats dedup.
		if r.DedupRatio < 0.5 {
			t.Errorf("row %d: dedup ratio %.2f, want >= 0.5", i, r.DedupRatio)
		}
	}
	var sb strings.Builder
	WriteFarmScale(&sb, rows)
	if !strings.Contains(sb.String(), "VMs/s/core") {
		t.Error("WriteFarmScale output missing per-core column")
	}
}

// TestCompareScaling checks the efficiency gate: regressions beyond the
// tolerance fail, records measured without real parallelism are declared
// incomparable rather than silently gated.
func TestCompareScaling(t *testing.T) {
	multi := func(effs ...float64) []FarmScalePerf {
		rows := []FarmScalePerf{{VMs: 1, EffectiveCores: 1, ScalingEfficiency: 1}}
		vms := 2
		for _, e := range effs {
			rows = append(rows, FarmScalePerf{VMs: vms, EffectiveCores: vms, ScalingEfficiency: e})
			vms *= 2
		}
		return rows
	}
	base := &PerfRecord{FarmScale: multi(0.9, 0.8)}
	cur := &PerfRecord{FarmScale: multi(0.85, 0.78)}
	deltas, regressed, ok := CompareScaling(base, cur, 0.10)
	if !ok || regressed {
		t.Errorf("within-tolerance sweep: ok=%v regressed=%v", ok, regressed)
	}
	if len(deltas) != 2 {
		t.Errorf("%d deltas, want 2 (1-VM anchor excluded)", len(deltas))
	}

	bad := &PerfRecord{FarmScale: multi(0.9, 0.4)}
	if _, regressed, ok := CompareScaling(base, bad, 0.10); !ok || !regressed {
		t.Errorf("lost-core sweep not flagged: ok=%v regressed=%v", ok, regressed)
	}

	// Serial records (effective cores 1 everywhere) are incomparable.
	serial := &PerfRecord{FarmScale: []FarmScalePerf{
		{VMs: 1, EffectiveCores: 1, ScalingEfficiency: 1},
		{VMs: 4, EffectiveCores: 1, ScalingEfficiency: 1},
	}}
	if _, _, ok := CompareScaling(serial, cur, 0.10); ok {
		t.Error("serial baseline must be incomparable, not gated")
	}
	if _, _, ok := CompareScaling(base, serial, 0.10); ok {
		t.Error("serial current record must be incomparable, not gated")
	}
	// Pre-farmscale records (no sweep at all) are incomparable too.
	if _, _, ok := CompareScaling(&PerfRecord{}, cur, 0.10); ok {
		t.Error("record without farm_scale must be incomparable")
	}
}
