// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Figures 2-3, Table 1, the §3.6.2
// self-revalidation and §3.6.3 self-checking data, plus structural data for
// Figures 1 and the chaining claim of §2). Each experiment returns a typed
// result that cmd/cmsbench renders and EXPERIMENTS.md records.
package bench

import (
	"fmt"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/workload"
)

// RunStats is the outcome of one workload execution under one configuration.
type RunStats struct {
	Name    string
	Kind    workload.Kind
	Metrics cms.Metrics

	// FineGrainRefills comes from the bus (hardware-cache misses).
	FineGrainRefills uint64
	// CacheInstalls/Invalidations come from the translation cache.
	CacheInstalls      uint64
	CacheInvalidations uint64

	// QuakeFrames is the rendered frame count (Quake analog only).
	QuakeFrames uint32
}

// Mols returns total molecules.
func (r *RunStats) Mols() uint64 { return r.Metrics.TotalMols() }

// Run executes one workload under cfg to completion.
func Run(w workload.Workload, cfg cms.Config) (*RunStats, error) {
	img := w.Build()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := cms.New(plat, img.Entry, cfg)
	if err := e.Run(img.Budget); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	if !e.CPU().Halted {
		return nil, fmt.Errorf("bench: %s did not halt", w.Name)
	}
	return &RunStats{
		Name:               w.Name,
		Kind:               w.Kind,
		Metrics:            e.Metrics,
		FineGrainRefills:   plat.Bus.Stats.FineGrainRefills,
		CacheInstalls:      e.Cache.Stats.Installs,
		CacheInvalidations: e.Cache.Stats.Invalidations,
		QuakeFrames:        plat.Bus.Read32(workload.QuakeFrameVar),
	}, nil
}

// MustRun is Run for harness paths where failure is a bug.
func MustRun(w workload.Workload, cfg cms.Config) *RunStats {
	r, err := Run(w, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// degradation returns the percentage slowdown of variant over base.
func degradation(base, variant uint64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(variant) - float64(base)) / float64(base)
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
