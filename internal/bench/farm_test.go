package bench

import (
	"strings"
	"testing"
)

func TestFarmThroughputShape(t *testing.T) {
	rows, err := FarmThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FarmLevels) {
		t.Fatalf("%d rows, want %d", len(rows), len(FarmLevels))
	}
	for i, r := range rows {
		if r.VMs != FarmLevels[i] || r.Jobs != FarmJobsPerLevel {
			t.Errorf("row %d: vms=%d jobs=%d", i, r.VMs, r.Jobs)
		}
		if r.VMsPerSec <= 0 || r.WallNs <= 0 {
			t.Errorf("row %d: no throughput measured: %+v", i, r)
		}
		// 12 jobs over 3 distinct workloads: at least the 9 duplicates
		// dedup through the shared store.
		if r.DedupRatio < 0.5 {
			t.Errorf("row %d: dedup ratio %.2f, want >= 0.5", i, r.DedupRatio)
		}
	}
	var sb strings.Builder
	WriteFarm(&sb, rows)
	if !strings.Contains(sb.String(), "VMs/sec") {
		t.Error("WriteFarm output missing header")
	}
}

// TestPerfRecordBackwardCompat parses a pre-farm BENCH record (no "farm"
// field) and checks the regression gate still works against a new-format
// record carrying farm rows.
func TestPerfRecordBackwardCompat(t *testing.T) {
	old := `{"date":"2026-01-01","go_version":"go1.24","num_cpu":1,"runs_per_workload":3,
	  "workloads":[{"name":"eqntott","ns_per_run":1000000,"guest_insns":1,"mguest_per_sec":1}]}`
	base, err := ReadPerfJSON(strings.NewReader(old))
	if err != nil {
		t.Fatal(err)
	}
	if base.Farm != nil {
		t.Error("old record grew farm rows from nowhere")
	}
	cur := &PerfRecord{
		Workloads: []WorkloadPerf{{Name: "eqntott", NsPerRun: 1050000}},
		Farm:      []FarmPerf{{VMs: 1, Jobs: 1}},
	}
	deltas, regressed := ComparePerf(base, cur, 10)
	if regressed || len(deltas) != 1 || deltas[0].Pct < 4.9 || deltas[0].Pct > 5.1 {
		t.Errorf("deltas = %+v, regressed = %v", deltas, regressed)
	}
}
