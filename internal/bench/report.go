package bench

import (
	"fmt"
	"io"
)

// WriteFigure renders a degradation figure as the paper's bar-chart rows.
func WriteFigure(w io.Writer, f *FigureResult) {
	fmt.Fprintf(w, "%s\n", f.Title)
	fmt.Fprintf(w, "%-18s %6s  %14s %14s\n", "benchmark", "degr%", "base mols", "variant mols")
	kind := ""
	for _, r := range f.Rows {
		if k := r.Kind.String(); k != kind {
			kind = k
			fmt.Fprintf(w, "-- %ss --\n", kind)
		}
		fmt.Fprintf(w, "%-18s %6.2f  %14d %14d\n", r.Name, r.Percent, r.BaseMols, r.VariantMols)
	}
	fmt.Fprintf(w, "mean (all boots) %6.2f%%\n", f.MeanBoot)
	fmt.Fprintf(w, "mean (all apps)  %6.2f%%\n", f.MeanApp)
}

// WriteTable1 renders the fine-grain protection table.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: slowdown without fine-grain protection")
	fmt.Fprintf(w, "%-18s %10s %10s %8s %8s %8s %9s\n",
		"benchmark", "faults+fg", "faults-fg", "ratio", "mpi+fg", "mpi-fg", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %10d %7.1fx %8.2f %8.2f %8.2fx\n",
			r.Name, r.FaultsFG, r.FaultsNoFG, r.FaultRatio, r.MPIFG, r.MPINoFG, r.Slowdown)
	}
}

// WriteSelfCheck renders the §3.6.3 forced-self-checking data.
func WriteSelfCheck(w io.Writer, res *SelfCheckResult) {
	fmt.Fprintln(w, "Forced self-checking translations (§3.6.3)")
	fmt.Fprintf(w, "%-18s %12s %12s\n", "benchmark", "code +%", "molecules +%")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-18s %12.1f %12.1f\n", r.Name, r.CodeGrowth, r.MolGrowth)
	}
	fmt.Fprintf(w, "mean code size growth: %.1f%% (paper: 83%%)\n", res.MeanCode)
	fmt.Fprintf(w, "mean molecule growth:  %.1f%% (paper: 51%%)\n", res.MeanMols)
}

// WriteSelfReval renders the §3.6.2 Quake frame-rate comparison.
func WriteSelfReval(w io.Writer, r *SelfRevalResult) {
	fmt.Fprintln(w, "Self-revalidating translations on Quake Demo2 (§3.6.2)")
	fmt.Fprintf(w, "frames rendered:          %d\n", r.Frames)
	fmt.Fprintf(w, "frame rate with reval:    %.2f frames/Mmol\n", r.FrameRateWith)
	fmt.Fprintf(w, "frame rate without:       %.2f frames/Mmol\n", r.FrameRateWithout)
	fmt.Fprintf(w, "improvement:              %.1f%% (paper: 28%%)\n", r.Improvement)
	fmt.Fprintf(w, "prologue arms/passes:     %d/%d\n", r.ArmsWith, r.PassesWith)
}

// WriteFlow renders the Figure 1 transition counts.
func WriteFlow(w io.Writer, f *FlowResult) {
	m := &f.Metrics
	fmt.Fprintf(w, "Figure 1 control flow observed on %s\n", f.Workload)
	fmt.Fprintf(w, "interpreted instructions:      %d\n", m.GuestInterp)
	fmt.Fprintf(w, "translated instructions:       %d\n", m.GuestTexec)
	fmt.Fprintf(w, "translations made:             %d\n", m.Translations)
	fmt.Fprintf(w, "dispatch -> tcache entries:    %d\n", m.DispatchToTexec)
	fmt.Fprintf(w, "chained exits (no lookup):     %d\n", m.ChainTransfers)
	fmt.Fprintf(w, "exits via lookup:              %d\n", m.LookupTransfers)
	fmt.Fprintf(w, "exits back to dispatcher:      %d\n", m.DispatchReturns)
	fmt.Fprintf(w, "rollbacks (faults):            %d\n", totalFaults(m.Faults))
	fmt.Fprintf(w, "interrupts delivered:          %d\n", m.Interrupts)
}

func totalFaults(f [8]uint64) uint64 {
	var s uint64
	for _, v := range f {
		s += v
	}
	return s
}

// WriteChain renders the chaining comparison.
func WriteChain(w io.Writer, c *ChainResult) {
	fmt.Fprintf(w, "Chaining on %s (§2)\n", c.Workload)
	fmt.Fprintf(w, "molecules with chaining:    %d\n", c.MolsChained)
	fmt.Fprintf(w, "molecules without chaining: %d\n", c.MolsUnchained)
	fmt.Fprintf(w, "chain transfers:            %d\n", c.ChainTransfers)
	fmt.Fprintf(w, "lookups (chained run):      %d\n", c.LookupsChained)
	fmt.Fprintf(w, "lookups (unchained run):    %d\n", c.LookupsUnchained)
}

// WriteFaults renders the suite-wide fault mix.
func WriteFaults(w io.Writer, f *FaultMix) {
	fmt.Fprintln(w, "Fault mix across the full suite (default config)")
	fmt.Fprintf(w, "%-12s %10s %12s\n", "class", "faults", "adaptations")
	for i, n := range f.Names {
		if f.Faults[i] == 0 && f.Adaptations[i] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s %10d %12d\n", n, f.Faults[i], f.Adaptations[i])
	}
}
