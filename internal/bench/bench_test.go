package bench

import (
	"bytes"
	"strings"
	"testing"

	"cms/internal/cms"
	"cms/internal/workload"
)

func TestRunWorkload(t *testing.T) {
	w, err := workload.ByName("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(w, cms.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Mols() == 0 || r.Metrics.GuestTotal() == 0 {
		t.Error("empty run stats")
	}
	if r.Name != "eqntott" || r.Kind != workload.App {
		t.Errorf("identity: %s %v", r.Name, r.Kind)
	}
}

func TestDegradationAndMean(t *testing.T) {
	if d := degradation(100, 120); d != 20 {
		t.Errorf("degradation = %v", d)
	}
	if d := degradation(0, 50); d != 0 {
		t.Errorf("degradation with zero base = %v", d)
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %v", m)
	}
	if m := mean(nil); m != 0 {
		t.Errorf("mean(nil) = %v", m)
	}
}

// The headline experiments: run them once and assert the paper-shape
// invariants rather than absolute numbers.
func TestFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	f, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != len(workload.All()) {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	// Suppressing reordering must hurt on average, for boots and apps both.
	if f.MeanApp <= 0 {
		t.Errorf("mean app degradation %.2f%%, want positive", f.MeanApp)
	}
	if f.MeanBoot <= 0 {
		t.Errorf("mean boot degradation %.2f%%, want positive", f.MeanBoot)
	}
	// The memory-traffic-bound kernels must degrade hard (paper: eqntott
	// 33%, compress 35%); the ALU/branch-bound ones barely (gcc 3.9%).
	byName := map[string]float64{}
	for _, r := range f.Rows {
		byName[r.Name] = r.Percent
	}
	if byName["eqntott"] < 10 {
		t.Errorf("eqntott degradation %.2f%%, want >= 10%%", byName["eqntott"])
	}
	if byName["gcc"] > 5 {
		t.Errorf("gcc degradation %.2f%%, want small", byName["gcc"])
	}
	if byName["eqntott"] <= byName["gcc"] {
		t.Error("ordering inverted: eqntott must suffer more than gcc")
	}
	var buf bytes.Buffer
	WriteFigure(&buf, f)
	if !strings.Contains(buf.String(), "mean (all apps)") {
		t.Error("report missing means")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Workloads) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FaultRatio < 1 {
			t.Errorf("%s: fault ratio %.1f < 1 — fine-grain made faults worse", r.Name, r.FaultRatio)
		}
		if r.Slowdown <= 1 {
			t.Errorf("%s: slowdown %.2f <= 1 — removing fine-grain cannot speed things up", r.Name, r.Slowdown)
		}
	}
	// Quake's writes genuinely hit code chunks, so it benefits least from
	// fine-grain filtering (lowest ratio in the paper: 7.7x vs 46-59x).
	quake := rows[len(rows)-1]
	for _, r := range rows[:len(rows)-1] {
		if quake.FaultRatio > r.FaultRatio {
			t.Errorf("quake ratio %.1f above %s %.1f — ordering lost", quake.FaultRatio, r.Name, r.FaultRatio)
		}
	}
	var buf bytes.Buffer
	WriteTable1(&buf, rows)
	if !strings.Contains(buf.String(), "slowdown") {
		t.Error("table header missing")
	}
}

func TestSelfRevalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	r, err := SelfReval()
	if err != nil {
		t.Fatal(err)
	}
	if r.Improvement <= 0 {
		t.Errorf("self-revalidation improvement %.1f%%, want positive (paper: 28%%)", r.Improvement)
	}
	if r.ArmsWith == 0 || r.PassesWith == 0 {
		t.Error("prologues never used")
	}
	var buf bytes.Buffer
	WriteSelfReval(&buf, r)
	if !strings.Contains(buf.String(), "improvement") {
		t.Error("report missing improvement")
	}
}

func TestChainAndFlow(t *testing.T) {
	c, err := Chain("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	if c.MolsUnchained <= c.MolsChained {
		t.Errorf("chaining won nothing: %d vs %d", c.MolsChained, c.MolsUnchained)
	}
	if c.ChainTransfers == 0 {
		t.Error("no chain transfers")
	}
	f, err := Flow("dos_boot")
	if err != nil {
		t.Fatal(err)
	}
	if f.Metrics.DispatchToTexec == 0 || f.Metrics.GuestTexec == 0 {
		t.Error("flow metrics empty")
	}
	var buf bytes.Buffer
	WriteFlow(&buf, f)
	WriteChain(&buf, c)
	if !strings.Contains(buf.String(), "chained exits") {
		t.Error("flow report incomplete")
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := Flow("nope"); err == nil {
		t.Error("Flow must reject unknown workloads")
	}
	if _, err := Chain("nope"); err == nil {
		t.Error("Chain must reject unknown workloads")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep experiment")
	}
	u, err := AblateUnroll("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Points) != 4 {
		t.Fatalf("unroll points: %d", len(u.Points))
	}
	// Unrolling must help this loop-dominated workload: unroll=4 beats
	// unroll=1.
	if u.Points[2].MPI >= u.Points[0].MPI {
		t.Errorf("unroll=4 (%.2f) not better than unroll=1 (%.2f)",
			u.Points[2].MPI, u.Points[0].MPI)
	}

	h, err := AblateHotThreshold("dos_boot")
	if err != nil {
		t.Fatal(err)
	}
	// A lower threshold always translates at least as much code.
	for i := 1; i < len(h.Points); i++ {
		if h.Points[i].Translations > h.Points[i-1].Translations {
			t.Errorf("threshold %s translated more than %s", h.Points[i].Label, h.Points[i-1].Label)
		}
	}

	ft, err := AblateFaultThreshold("sc")
	if err != nil {
		t.Fatal(err)
	}
	// Never adapting must not beat the default on this aliasing workload.
	never := ft.Points[len(ft.Points)-1]
	def := ft.Points[1]
	if never.MPI < def.MPI {
		t.Errorf("never-adapt (%.2f) beat adapting (%.2f)", never.MPI, def.MPI)
	}

	var buf bytes.Buffer
	WriteAblation(&buf, u)
	if !strings.Contains(buf.String(), "unroll=8") {
		t.Error("ablation report incomplete")
	}
}

func TestHostGenerations(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite experiment")
	}
	rows, err := HostGenerations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(workload.All()) {
		t.Fatalf("rows: %d", len(rows))
	}
	// The wider machine never loses, and wins somewhere.
	won := false
	for _, r := range rows {
		if r.Speedup < 0.99 {
			t.Errorf("%s: TM8000 slower (%.2fx)", r.Name, r.Speedup)
		}
		if r.Speedup > 1.10 {
			won = true
		}
	}
	if !won {
		t.Error("TM8000 never won meaningfully")
	}
	var buf bytes.Buffer
	WriteHostGen(&buf, rows)
	if !strings.Contains(buf.String(), "mean speedup") {
		t.Error("report incomplete")
	}
}

// The determinism promise: identical runs produce identical molecule
// counts, bit for bit.
func TestRunsAreDeterministic(t *testing.T) {
	w, err := workload.ByName("win95_boot")
	if err != nil {
		t.Fatal(err)
	}
	a := MustRun(w, cms.DefaultConfig())
	b := MustRun(w, cms.DefaultConfig())
	if a.Mols() != b.Mols() || a.Metrics != b.Metrics {
		t.Errorf("nondeterministic run: %d vs %d molecules", a.Mols(), b.Mols())
	}
}
