package bench

import (
	"bytes"
	"reflect"
	"testing"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/workload"
)

// backendRun executes one workload to completion under cfg and returns the
// engine plus the final guest memory image.
func backendRun(t *testing.T, w workload.Workload, cfg cms.Config) (*cms.Engine, []byte) {
	t.Helper()
	img := w.Build()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := cms.New(plat, img.Entry, cfg)
	if err := e.Run(img.Budget); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	if !e.CPU().Halted {
		t.Fatalf("%s did not halt", w.Name)
	}
	return e, plat.Bus.ReadRaw(0, int(img.RAM))
}

// diffBackends runs w under cfg with the compiled backend off and on, and
// asserts the two runs are observationally identical: same final CPU, same
// guest memory, same simulated Metrics, same cache statistics. This is the
// deopt contract of the closure-threaded backend — only wall clock may move.
func diffBackends(t *testing.T, w workload.Workload, cfg cms.Config) {
	t.Helper()
	ci := cfg
	ci.EnableCompiledBackend = false
	cc := cfg
	cc.EnableCompiledBackend = true

	ei, memi := backendRun(t, w, ci)
	ec, memc := backendRun(t, w, cc)

	cpui, cpuc := ei.CPU(), ec.CPU()
	if cpui.Regs != cpuc.Regs || cpui.EIP != cpuc.EIP ||
		cpui.Flags != cpuc.Flags || cpui.Halted != cpuc.Halted {
		t.Errorf("%s: final CPU state diverged:\ninterp   %+v\ncompiled %+v",
			w.Name, *cpui, *cpuc)
	}
	if !reflect.DeepEqual(ei.Metrics, ec.Metrics) {
		t.Errorf("%s: Metrics diverged:\ninterp   %+v\ncompiled %+v",
			w.Name, ei.Metrics, ec.Metrics)
	}
	if ei.Cache.Stats != ec.Cache.Stats {
		t.Errorf("%s: cache stats diverged:\ninterp   %+v\ncompiled %+v",
			w.Name, ei.Cache.Stats, ec.Cache.Stats)
	}
	if !bytes.Equal(memi, memc) {
		for i := range memi {
			if memi[i] != memc[i] {
				t.Errorf("%s: guest memory diverged at %#x: interp %#x, compiled %#x",
					w.Name, i, memi[i], memc[i])
				break
			}
		}
	}
}

// TestBackendDifferential proves the compiled and interpretive backends are
// byte-for-byte equivalent on every workload kernel — including the SMC and
// adaptive-retranslation workloads — under the default (synchronous)
// configuration.
func TestBackendDifferential(t *testing.T) {
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffBackends(t, w, cms.DefaultConfig())
		})
	}
}

// TestBackendDifferentialPipelined repeats the differential over the
// concurrent translation pipeline, where compilation happens on the worker
// goroutines rather than the engine thread.
func TestBackendDifferentialPipelined(t *testing.T) {
	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = 2
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffBackends(t, w, cfg)
		})
	}
}
