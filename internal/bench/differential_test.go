package bench

import (
	"testing"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/fuzzer"
	"cms/internal/workload"
)

// backendRun executes one workload to completion under cfg and captures the
// outcome with the differential oracle's shared State snapshot, so this
// test, the farm differential, and the generative fuzzer all compare the
// exact same observables the exact same way.
func backendRun(t *testing.T, w workload.Workload, name string, cfg cms.Config) *fuzzer.State {
	t.Helper()
	img := w.Build()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := cms.New(plat, img.Entry, cfg)
	st := fuzzer.Capture(name, e, plat, e.Run(img.Budget))
	if st.Err != "" {
		t.Fatalf("%s (%s): %s", w.Name, name, st.Err)
	}
	if !st.Halted {
		t.Fatalf("%s (%s) did not halt", w.Name, name)
	}
	return st
}

// diffBackends runs w under cfg with the compiled backend off and on, and
// asserts the two runs are observationally identical: same final CPU, same
// guest memory and device output, same simulated Metrics, same cache
// statistics. This is the deopt contract of the closure-threaded backend —
// only wall clock may move.
func diffBackends(t *testing.T, w workload.Workload, cfg cms.Config) {
	t.Helper()
	ci := cfg
	ci.EnableCompiledBackend = false
	cc := cfg
	cc.EnableCompiledBackend = true

	si := backendRun(t, w, "interp-backend", ci)
	sc := backendRun(t, w, "compiled-backend", cc)

	if d := fuzzer.DiffArch(si, sc); d != "" {
		t.Errorf("%s: architectural state diverged: %s", w.Name, d)
	}
	if d := fuzzer.DiffMetrics(si, sc); d != "" {
		t.Errorf("%s: %s", w.Name, d)
	}
}

// TestBackendDifferential proves the compiled and interpretive backends are
// byte-for-byte equivalent on every workload kernel — including the SMC and
// adaptive-retranslation workloads — under the default (synchronous)
// configuration.
func TestBackendDifferential(t *testing.T) {
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffBackends(t, w, cms.DefaultConfig())
		})
	}
}

// TestBackendDifferentialPipelined repeats the differential over the
// concurrent translation pipeline, where compilation happens on the worker
// goroutines rather than the engine thread.
func TestBackendDifferentialPipelined(t *testing.T) {
	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = 2
	for _, w := range workload.All() {
		t.Run(w.Name, func(t *testing.T) {
			diffBackends(t, w, cfg)
		})
	}
}
