package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"cms/internal/cms"
	"cms/internal/workload"
)

// PerfWorkloads are the hot kernels the wall-clock perf record tracks —
// the translation-dominated benchmarks where simulator speed matters most.
var PerfWorkloads = []string{
	"eqntott", "compress", "alvinn", "tomcatv", "li", "gcc",
	"win98_boot", "quake_demo2",
}

// WorkloadPerf is one workload's wall-clock measurement.
type WorkloadPerf struct {
	Name string `json:"name"`
	// NsPerRun is the best-of-N wall-clock time for one full workload run
	// on the synchronous engine; NsPerRunPipelined is the same with
	// PipelineWorkers = NumCPU.
	NsPerRun          int64 `json:"ns_per_run"`
	NsPerRunPipelined int64 `json:"ns_per_run_pipelined"`
	// NsPerRunInterp is NsPerRun with the compiled backend disabled — the
	// pure interpretive hot path, kept in the record so the closure-threaded
	// backend's win stays visible across PRs. Zero in records written before
	// the compiled backend existed.
	NsPerRunInterp int64 `json:"ns_per_run_interp,omitempty"`
	// NsPerRunGuarded is NsPerRun in the farm's fault-containment shape: the
	// cooperative cancel hook armed (never firing) and the engine run inside
	// a recover() wrapper. The delta against NsPerRun is the watchdog +
	// panic-isolation tax on a hot kernel — the -baseline gate requires it
	// under 2%. Zero in records written before fault containment existed.
	NsPerRunGuarded int64 `json:"ns_per_run_guarded,omitempty"`
	// NsPerRunSnapReady is NsPerRunGuarded with checkpoint support armed but
	// never firing: the cancel hook polls both the watchdog flag and the
	// checkpoint flag, the farm runner's exact serving shape. The delta
	// against NsPerRunGuarded is what snapshot support costs a hot kernel
	// when unused — the -baseline gate requires it under 1%. Zero in records
	// written before checkpoint/restore existed.
	NsPerRunSnapReady int64 `json:"ns_per_run_snapready,omitempty"`
	// GuestInsns is the simulated work per run (identical across modes).
	GuestInsns uint64 `json:"guest_insns"`
	// MguestPerSec is simulation throughput (sync engine): millions of
	// guest instructions retired per wall-clock second.
	MguestPerSec float64 `json:"mguest_per_sec"`
}

// PerfRecord is the machine-readable perf snapshot cmsbench -json emits;
// committed BENCH_*.json files track the trajectory across PRs.
type PerfRecord struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is the parallelism the measurement actually ran with —
	// NumCPU alone proved misleading: the whole PR1→PR4 farm history was
	// recorded at effective parallelism 1 and nothing in the record said
	// so. Zero in records written before this field existed.
	GoMaxProcs int            `json:"gomaxprocs,omitempty"`
	Runs       int            `json:"runs_per_workload"`
	Workloads  []WorkloadPerf `json:"workloads"`
	// Farm is the serving-farm throughput sweep (VMs/sec and dedup rate per
	// concurrency level). Informational: the -baseline regression gate stays
	// on NsPerRun, and records written before the farm existed omit it.
	Farm []FarmPerf `json:"farm,omitempty"`
	// FarmScale is the sustained-load multicore sweep (GOMAXPROCS pinned to
	// the VM count per level, p50/p99 latency, scaling efficiency). The
	// -baseline gate fails on efficiency regressions when both records were
	// measured with real parallelism (CompareScaling).
	FarmScale []FarmScalePerf `json:"farm_scale,omitempty"`
}

// Perf measures every PerfWorkloads kernel, best-of-runs.
func Perf(runs int) (*PerfRecord, error) {
	if runs < 1 {
		runs = 1
	}
	rec := &PerfRecord{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Runs:       runs,
	}
	for _, name := range PerfWorkloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		sync, guest, err := timeRuns(w, cms.DefaultConfig(), runs)
		if err != nil {
			return nil, err
		}
		pcfg := cms.DefaultConfig()
		pcfg.PipelineWorkers = runtime.NumCPU()
		piped, _, err := timeRuns(w, pcfg, runs)
		if err != nil {
			return nil, err
		}
		icfg := cms.DefaultConfig()
		icfg.EnableCompiledBackend = false
		interp, _, err := timeRuns(w, icfg, runs)
		if err != nil {
			return nil, err
		}
		guarded, err := timeRunsGuarded(w, cms.DefaultConfig(), runs)
		if err != nil {
			return nil, err
		}
		snapReady, err := timeRunsSnapReady(w, cms.DefaultConfig(), runs)
		if err != nil {
			return nil, err
		}
		rec.Workloads = append(rec.Workloads, WorkloadPerf{
			Name:              name,
			NsPerRun:          sync,
			NsPerRunPipelined: piped,
			NsPerRunInterp:    interp,
			NsPerRunGuarded:   guarded,
			NsPerRunSnapReady: snapReady,
			GuestInsns:        guest,
			MguestPerSec:      float64(guest) / (float64(sync) / 1e9) / 1e6,
		})
	}
	farmRows, err := FarmThroughput()
	if err != nil {
		return nil, err
	}
	rec.Farm = farmRows
	scaleRows, err := FarmScale(nil, 0)
	if err != nil {
		return nil, err
	}
	rec.FarmScale = scaleRows
	return rec, nil
}

// timeRuns returns the best wall-clock nanoseconds over n runs. Each run
// starts from a collected heap so GC debt accumulated by earlier workloads
// (or configs) is paid outside the timed window — without this, later
// workloads in the sweep absorb earlier allocations' assist work and the
// record picks up double-digit cross-run noise.
func timeRuns(w workload.Workload, cfg cms.Config, n int) (best int64, guest uint64, err error) {
	for i := 0; i < n; i++ {
		runtime.GC()
		t0 := time.Now()
		r, rerr := Run(w, cfg)
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return 0, 0, rerr
		}
		if best == 0 || d < best {
			best = d
		}
		guest = r.Metrics.GuestTotal()
	}
	return best, guest, nil
}

// timeRunsGuarded is timeRuns in the farm runner's fault-containment shape:
// the cancel hook is armed with a never-set atomic flag (the watchdog's idle
// state) and the engine runs under a recover() wrapper, so the measured
// number is what serving actually pays per job when nothing goes wrong.
func timeRunsGuarded(w workload.Workload, cfg cms.Config, n int) (best int64, err error) {
	var cancelled atomic.Bool
	cfg.Cancel = cancelled.Load
	for i := 0; i < n; i++ {
		runtime.GC()
		t0 := time.Now()
		rerr := func() (rerr error) {
			defer func() {
				if r := recover(); r != nil {
					rerr = fmt.Errorf("bench: %s panicked under guard: %v", w.Name, r)
				}
			}()
			_, rerr = Run(w, cfg)
			return rerr
		}()
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return 0, rerr
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timeRunsSnapReady is timeRunsGuarded with checkpoint support armed: the
// cancel hook polls the watchdog flag and the checkpoint flag, exactly as
// the farm runner wires every job now that any job may be told to snapshot
// mid-run. Neither flag ever fires, so the measured number is what serving
// pays per job for checkpointability nobody used.
func timeRunsSnapReady(w workload.Workload, cfg cms.Config, n int) (best int64, err error) {
	var cancelled, checkpoint atomic.Bool
	cfg.Cancel = func() bool { return cancelled.Load() || checkpoint.Load() }
	for i := 0; i < n; i++ {
		runtime.GC()
		t0 := time.Now()
		rerr := func() (rerr error) {
			defer func() {
				if r := recover(); r != nil {
					rerr = fmt.Errorf("bench: %s panicked under snap-ready guard: %v", w.Name, r)
				}
			}()
			_, rerr = Run(w, cfg)
			return rerr
		}()
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return 0, rerr
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// GuardDelta is one workload's watchdog + panic-isolation overhead.
type GuardDelta struct {
	Name               string
	PlainNs, GuardedNs int64
	// Pct is the signed overhead percentage; positive means the guarded run
	// is slower.
	Pct float64
}

// GuardOverhead compares each workload's guarded and plain timings within
// one record and reports the worst overhead percentage. Workloads without a
// guarded measurement (old records) are skipped.
func GuardOverhead(rec *PerfRecord) (deltas []GuardDelta, worst float64) {
	for _, w := range rec.Workloads {
		if w.NsPerRun == 0 || w.NsPerRunGuarded == 0 {
			continue
		}
		pct := 100 * (float64(w.NsPerRunGuarded) - float64(w.NsPerRun)) / float64(w.NsPerRun)
		deltas = append(deltas, GuardDelta{Name: w.Name, PlainNs: w.NsPerRun, GuardedNs: w.NsPerRunGuarded, Pct: pct})
		if pct > worst {
			worst = pct
		}
	}
	return deltas, worst
}

// WritePerfJSON renders the record as indented JSON.
func WritePerfJSON(w io.Writer, r *PerfRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadPerfJSON parses a committed BENCH_*.json record.
func ReadPerfJSON(r io.Reader) (*PerfRecord, error) {
	var rec PerfRecord
	if err := json.NewDecoder(r).Decode(&rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// PerfDelta is one workload's wall-clock change against a baseline record.
type PerfDelta struct {
	Name   string
	BaseNs int64
	CurNs  int64
	// Pct is the signed percentage change; positive means slower than the
	// baseline.
	Pct float64
	// Missing marks a workload present in only one of the two records
	// (compared as informational, never a regression).
	Missing bool
}

// ComparePerf lines the current record up against a baseline, per workload,
// and reports whether any shared workload regressed by more than tolPct
// percent wall clock. Pipelined and interp timings ride along in the record
// but the gate is on NsPerRun, the synchronous-engine number the BENCH_*.json
// trajectory has always tracked.
func ComparePerf(base, cur *PerfRecord, tolPct float64) (deltas []PerfDelta, regressed bool) {
	baseBy := make(map[string]WorkloadPerf, len(base.Workloads))
	for _, w := range base.Workloads {
		baseBy[w.Name] = w
	}
	for _, w := range cur.Workloads {
		b, ok := baseBy[w.Name]
		if !ok || b.NsPerRun == 0 {
			deltas = append(deltas, PerfDelta{Name: w.Name, CurNs: w.NsPerRun, Missing: true})
			continue
		}
		pct := 100 * (float64(w.NsPerRun) - float64(b.NsPerRun)) / float64(b.NsPerRun)
		deltas = append(deltas, PerfDelta{Name: w.Name, BaseNs: b.NsPerRun, CurNs: w.NsPerRun, Pct: pct})
		if pct > tolPct {
			regressed = true
		}
	}
	return deltas, regressed
}
