package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"cms/internal/cms"
	"cms/internal/workload"
)

// PerfWorkloads are the hot kernels the wall-clock perf record tracks —
// the translation-dominated benchmarks where simulator speed matters most.
var PerfWorkloads = []string{
	"eqntott", "compress", "alvinn", "tomcatv", "li", "gcc",
	"win98_boot", "quake_demo2",
}

// WorkloadPerf is one workload's wall-clock measurement.
type WorkloadPerf struct {
	Name string `json:"name"`
	// NsPerRun is the best-of-N wall-clock time for one full workload run
	// on the synchronous engine; NsPerRunPipelined is the same with
	// PipelineWorkers = NumCPU.
	NsPerRun          int64 `json:"ns_per_run"`
	NsPerRunPipelined int64 `json:"ns_per_run_pipelined"`
	// GuestInsns is the simulated work per run (identical across modes).
	GuestInsns uint64 `json:"guest_insns"`
	// MguestPerSec is simulation throughput (sync engine): millions of
	// guest instructions retired per wall-clock second.
	MguestPerSec float64 `json:"mguest_per_sec"`
}

// PerfRecord is the machine-readable perf snapshot cmsbench -json emits;
// committed BENCH_*.json files track the trajectory across PRs.
type PerfRecord struct {
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	NumCPU    int            `json:"num_cpu"`
	Runs      int            `json:"runs_per_workload"`
	Workloads []WorkloadPerf `json:"workloads"`
}

// Perf measures every PerfWorkloads kernel, best-of-runs.
func Perf(runs int) (*PerfRecord, error) {
	if runs < 1 {
		runs = 1
	}
	rec := &PerfRecord{
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Runs:      runs,
	}
	for _, name := range PerfWorkloads {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		sync, guest, err := timeRuns(w, cms.DefaultConfig(), runs)
		if err != nil {
			return nil, err
		}
		pcfg := cms.DefaultConfig()
		pcfg.PipelineWorkers = runtime.NumCPU()
		piped, _, err := timeRuns(w, pcfg, runs)
		if err != nil {
			return nil, err
		}
		rec.Workloads = append(rec.Workloads, WorkloadPerf{
			Name:              name,
			NsPerRun:          sync,
			NsPerRunPipelined: piped,
			GuestInsns:        guest,
			MguestPerSec:      float64(guest) / (float64(sync) / 1e9) / 1e6,
		})
	}
	return rec, nil
}

// timeRuns returns the best wall-clock nanoseconds over n runs.
func timeRuns(w workload.Workload, cfg cms.Config, n int) (best int64, guest uint64, err error) {
	for i := 0; i < n; i++ {
		t0 := time.Now()
		r, rerr := Run(w, cfg)
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return 0, 0, rerr
		}
		if best == 0 || d < best {
			best = d
		}
		guest = r.Metrics.GuestTotal()
	}
	return best, guest, nil
}

// WritePerfJSON renders the record as indented JSON.
func WritePerfJSON(w io.Writer, r *PerfRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
