package bench

import (
	"fmt"
	"io"

	"cms/internal/cms"
	"cms/internal/workload"
)

// BackendRow compares one workload across the two code-gen backends: the
// closure-threaded vliw compiler and the risc register IR with lazy EFLAGS.
// Metrics are identical by contract (both are pure wall-clock optimizations
// over the same translations), so the row carries one molecule count and
// the two wall-clock times.
type BackendRow struct {
	Name   string
	Kind   workload.Kind
	Mols   uint64
	VliwNs int64 // best-of-N wall clock, vliw backend
	RiscNs int64 // best-of-N wall clock, risc backend
	Ratio  float64
}

// BackendDiff runs every suite workload under both backends. It is an
// experiment AND a gate: any Metrics or cache-statistics divergence between
// the backends is an error, not a data point — that is the equivalence
// contract the differential oracle's ninth leg enforces seed by seed, here
// re-checked on the real workload suite. Timing is best-of-runs.
func BackendDiff(runs int) ([]BackendRow, error) {
	if runs < 1 {
		runs = 1
	}
	riscCfg := cms.DefaultConfig()
	riscCfg.Backend = "risc"

	var rows []BackendRow
	for _, w := range workload.All() {
		v, err := Run(w, cms.DefaultConfig())
		if err != nil {
			return nil, err
		}
		r, err := Run(w, riscCfg)
		if err != nil {
			return nil, err
		}
		if v.Metrics != r.Metrics {
			return nil, fmt.Errorf("bench: %s: Metrics diverge between vliw and risc backends", w.Name)
		}
		if v.CacheInstalls != r.CacheInstalls || v.CacheInvalidations != r.CacheInvalidations {
			return nil, fmt.Errorf("bench: %s: cache statistics diverge between vliw and risc backends", w.Name)
		}

		vns, _, err := timeRuns(w, cms.DefaultConfig(), runs)
		if err != nil {
			return nil, err
		}
		rns, _, err := timeRuns(w, riscCfg, runs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BackendRow{
			Name: w.Name, Kind: w.Kind, Mols: v.Mols(),
			VliwNs: vns, RiscNs: rns,
			Ratio: float64(rns) / float64(vns),
		})
	}
	return rows, nil
}

// WriteBackend renders the backend comparison.
func WriteBackend(w io.Writer, rows []BackendRow) {
	fmt.Fprintln(w, "Code-gen backend comparison (Metrics proven identical; wall clock best-of-N)")
	fmt.Fprintf(w, "%-18s %14s %12s %12s %8s\n", "benchmark", "mols", "vliw ms", "risc ms", "risc/vliw")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %14d %12.3f %12.3f %7.2fx\n",
			r.Name, r.Mols, float64(r.VliwNs)/1e6, float64(r.RiscNs)/1e6, r.Ratio)
	}
}
