// Package workload provides the benchmark suite: synthetic g86 analogs of
// the paper's Appendix A benchmarks. The real suite (Windows/Linux/DOS/OS2
// boots, SPECcpu92, SPECint2000 crafty, Winstone, multimedia, Quake) is
// proprietary x86 software we cannot run; each analog is constructed to
// exhibit the *phenomenon* the paper measures on the original — boot images
// heavy in MMIO, DMA and mixed code-and-data; compute kernels with
// reorderable memory traffic; games with performance-critical self-modifying
// code — so the relative shapes of Figures 2-3 and Table 1 reproduce. See
// DESIGN.md §2 for the substitution argument.
package workload

import (
	"fmt"
	"sort"

	"cms/internal/asm"
)

// Kind classifies a workload for the paper's boot/application split.
type Kind uint8

const (
	// Boot marks OS-boot analogs (system code: MMIO, DMA, SMC in drivers).
	Boot Kind = iota
	// App marks application analogs (SPEC kernels, productivity, games).
	App
)

func (k Kind) String() string {
	if k == Boot {
		return "boot"
	}
	return "app"
}

// Image is a built workload ready to load.
type Image struct {
	Org   uint32
	Data  []byte
	Entry uint32
	// Disk is the disk image (nil if the workload does no DMA I/O).
	Disk []byte
	// RAM is the suggested RAM size.
	RAM uint32
	// Budget is a generous instruction budget; the program halts well
	// before it.
	Budget uint64
}

// Workload is one generatable benchmark.
type Workload struct {
	Name string
	Kind Kind
	// Paper is the Appendix A benchmark this stands in for.
	Paper string
	Build func() *Image
}

var registry []Workload

func register(w Workload) { registry = append(registry, w) }

// All returns every workload, boots first, in a stable order.
func All() []Workload {
	out := append([]Workload(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Boots returns the OS-boot analogs.
func Boots() []Workload { return filter(Boot) }

// Apps returns the application analogs.
func Apps() []Workload { return filter(App) }

func filter(k Kind) []Workload {
	var out []Workload
	for _, w := range All() {
		if w.Kind == k {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// finish assembles a builder into an Image with defaults.
func finish(b *asm.Builder, entry uint32, disk []byte) *Image {
	img := b.MustAssemble()
	return &Image{
		Org:    b.Origin(),
		Data:   img,
		Entry:  entry,
		Disk:   disk,
		RAM:    1 << 21,
		Budget: 40_000_000,
	}
}

// prng is a deterministic linear congruential generator for workload
// construction (stdlib-only, fixed behavior forever: workloads must be
// byte-identical across runs and Go versions).
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng { return &prng{s: seed*2862933555777941757 + 3037000493} }

func (p *prng) next() uint32 {
	p.s = p.s*6364136223846793005 + 1442695040888963407
	return uint32(p.s >> 33)
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int { return int(p.next() % uint32(n)) }
