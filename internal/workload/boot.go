package workload

import (
	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
)

// bootParams shapes one OS-boot analog. The relative sizes mirror what the
// paper reports indirectly: Windows-family boots are MMIO- and SMC-heavy
// (BIOS + real-mode driver idioms), Linux/OS2 lean more on straight
// compute-style initialization, DOS is small.
type bootParams struct {
	name   string
	paper  string
	banner string

	mmioReps     uint32 // console banner repetitions
	pollReps     uint32 // device status polling
	diskSectors  uint32 // "kernel" image DMA-loaded then executed
	mixedIters   uint32 // mixed code-and-data writes (BIOS idiom)
	smcOuter     uint32 // driver self-modification (imm patch idiom)
	smcInner     uint32
	copyWords    uint32 // memory init traffic (reorder-sensitive)
	stencilWords uint32
	hashIters    uint32
	computeReps  uint32 // passes over the init kernels (services started)
	mixedPhases  uint32 // write/execute alternations on a mixed page (Table 1)
	timerPeriod  uint32
	bltOps       int
}

// bootKernel builds the DMA-loaded "kernel": a relocatable routine at
// kernelBase that runs a compute loop and returns.
func bootKernel(kernelBase uint32, words uint32) []byte {
	g := newGen(kernelBase, 99)
	b := g.b
	b.Push(ecx)
	b.Push(edx)
	g.memSum(0x8000, words)
	g.dotProduct(0x8000, 0x9000, words/2)
	b.Pop(edx)
	b.Pop(ecx)
	b.Ret()
	img := b.MustAssemble()
	// Pad to whole sectors.
	pad := (dev.SectorSize - len(img)%dev.SectorSize) % dev.SectorSize
	return append(img, make([]byte, pad)...)
}

const (
	bootOrg    = 0x1000
	kernelBase = 0x40000
	dataA      = 0x8000
	dataB      = 0x9000
	dataC      = 0xA000
	dataH      = 0x18000 // hash tables (dictionary + histogram)
	tickVar    = 0xE800
	stackTop   = 0xF0000
)

func buildBoot(p bootParams) *Image {
	disk := bootKernel(kernelBase, 256)
	g := newGen(bootOrg, 7)
	b := g.b

	// "BIOS": stack, data init, banner, probing, mixed code/data.
	b.Label("_start")
	b.MovRI(esp, stackTop)
	g.installStubIRQs(dev.IRQDisk, dev.IRQBlt)
	g.memFill(dataA, 512)
	g.memFill(dataB, 512)
	g.mmioBanner(p.banner, p.mmioReps)
	g.devicePoll(p.pollReps)
	if p.mixedIters > 0 {
		g.mixedData(p.mixedIters)
	}

	// Load the kernel by DMA and call it (interrupts masked: the disk IRQ
	// is polled, as real boot loaders do).
	b.Cli()
	g.diskLoad(0, kernelBase, p.diskSectors)
	waitLbl := g.l("dwait")
	b.Label(waitLbl)
	b.In(eax, dev.DiskStatusPort)
	b.TestRR(eax, eax)
	b.Jcc(guest.CondE, waitLbl)
	b.MovRI(ebx, kernelBase)
	b.CallR(ebx)

	// Driver reload: DMA a fresh copy of the kernel over the now-translated
	// code and run it again — the paging-activity path of §3.6.1 (DMA
	// writes to a protected page invalidate all its translations).
	g.diskLoad(0, kernelBase, p.diskSectors)
	wait2 := g.l("dwait")
	b.Label(wait2)
	b.In(eax, dev.DiskStatusPort)
	b.TestRR(eax, eax)
	b.Jcc(guest.CondE, wait2)
	b.MovRI(ebx, kernelBase)
	b.CallR(ebx)

	// "Kernel" phase: timer on, driver and service init passes, SMC
	// drivers. Each "service start" sweeps the memory kernels again, which
	// is where the reorder-sensitive hot loops of a boot live.
	b.Sti()
	if p.timerPeriod > 0 {
		g.timerSetup(p.timerPeriod, tickVar)
	}
	reps := p.computeReps
	if reps == 0 {
		reps = 1
	}
	g.repeat(reps, func() {
		g.memCopy(dataA, dataC, p.copyWords)
		g.memCopy2(dataA, dataB, p.copyWords/2)
		if p.stencilWords > 0 {
			g.stencil(dataA, dataB, p.stencilWords)
		}
		if p.hashIters > 0 {
			g.hashLoop(dataH, p.hashIters)
		}
	})
	if p.smcOuter > 0 {
		g.smcPatchLoop(p.smcOuter, p.smcInner)
	}
	if p.mixedPhases > 0 {
		g.mixedPhase(p.mixedPhases, 60)
	}
	for i := 0; i < p.bltOps; i++ {
		g.bltOp(dataA, dataC+uint32(i)*0x100, 0x100, dev.BltOpCopy)
	}
	if p.timerPeriod > 0 {
		g.timerStop()
	}
	// Final heartbeat to the console and halt.
	b.MovRI(eax, '!')
	b.Out(dev.ConsoleDataPort, eax)
	b.Hlt()

	return finish(b, b.LabelAddr("_start"), disk)
}

func registerBoot(p bootParams) {
	register(Workload{
		Name:  p.name,
		Kind:  Boot,
		Paper: p.paper,
		Build: func() *Image { return buildBoot(p) },
	})
}

func init() {
	registerBoot(bootParams{
		name: "dos_boot", paper: "DOS boot", banner: "Starting MS-DOS...",
		mmioReps: 30, pollReps: 250, diskSectors: 1, mixedIters: 700,
		smcOuter: 8, smcInner: 80, copyWords: 600, hashIters: 800, computeReps: 14,
	})
	registerBoot(bootParams{
		name: "linux_boot", paper: "Linux boot", banner: "Booting the kernel.",
		mmioReps: 20, pollReps: 400, diskSectors: 2, mixedIters: 200,
		copyWords: 300, stencilWords: 0, hashIters: 2500, computeReps: 4,
		timerPeriod: 4000,
	})
	registerBoot(bootParams{
		name: "os2_boot", paper: "OS/2 boot", banner: "OS/2 Warp",
		mmioReps: 40, pollReps: 300, diskSectors: 2, mixedIters: 400,
		copyWords: 1200, stencilWords: 600, hashIters: 800, computeReps: 10,
		timerPeriod: 5000,
	})
	registerBoot(bootParams{
		name: "win95_boot", paper: "Windows 95 boot", banner: "Starting Windows 95...",
		mmioReps: 60, pollReps: 300, diskSectors: 3, mixedIters: 80,
		smcOuter: 25, smcInner: 150, copyWords: 1500, stencilWords: 800,
		hashIters: 600, computeReps: 24, timerPeriod: 3000, bltOps: 4, mixedPhases: 300,
	})
	registerBoot(bootParams{
		name: "win98_boot", paper: "Windows 98 boot", banner: "Starting Windows 98...",
		mmioReps: 70, pollReps: 350, diskSectors: 3, mixedIters: 80,
		smcOuter: 30, smcInner: 160, copyWords: 2000, stencilWords: 1000,
		hashIters: 700, computeReps: 28, timerPeriod: 3000, bltOps: 5, mixedPhases: 380,
	})
	registerBoot(bootParams{
		name: "winme_boot", paper: "Windows ME boot", banner: "Windows Millennium",
		mmioReps: 50, pollReps: 250, diskSectors: 3, mixedIters: 1200,
		smcOuter: 20, smcInner: 120, copyWords: 3000, stencilWords: 1600,
		hashIters: 500, computeReps: 36, timerPeriod: 3000, bltOps: 6,
	})
	registerBoot(bootParams{
		name: "winnt_boot", paper: "Windows NT boot", banner: "Windows NT 4.0",
		mmioReps: 35, pollReps: 500, diskSectors: 4, mixedIters: 500,
		copyWords: 1000, stencilWords: 400, hashIters: 1500, computeReps: 8,
		timerPeriod: 4000, bltOps: 2,
	})
	registerBoot(bootParams{
		name: "winxp_boot", paper: "Windows XP boot", banner: "Microsoft Windows XP",
		mmioReps: 45, pollReps: 400, diskSectors: 4, mixedIters: 800,
		smcOuter: 10, smcInner: 100, copyWords: 2500, stencilWords: 1200,
		hashIters: 1200, computeReps: 22, timerPeriod: 3500, bltOps: 3,
	})
	_ = asm.Abs // keep asm imported even if helpers change
}
