package workload

import (
	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
)

// Quake analog constants, exported for the §3.6.2 experiment: the benchmark
// counts rendered frames at QuakeFrameVar, and the harness divides by
// molecules to get a "frame rate".
const (
	// QuakeFrames is how many frames the demo renders.
	QuakeFrames = 50
	// QuakeFrameVar is the RAM address of the frame counter.
	QuakeFrameVar = 0xE880
	// quakeFB is the software framebuffer the blitter renders into.
	quakeFB = 0xC800
)

// buildQuake builds the Quake Demo2 analog: a frame loop whose inner blit
// routine is performance-critical self-modifying code. Each frame
//
//   - writes level state into data words living in the same 128-byte chunk
//     as the blit code (the mixed code-and-data situation self-revalidation
//     is for: the writes do not change the code, §3.6.2),
//   - patches the blit routine's immediate (the Doom idiom, §3.6.4),
//   - runs the hot blit loop, and
//   - pushes the frame to the "GPU" with a BLT MMIO burst.
func buildQuake() *Image {
	g := newGen(0x1000, 21)
	b := g.b

	b.Label("_start")
	b.MovRI(esp, stackTop)
	g.installStubIRQs(dev.IRQDisk, dev.IRQBlt)
	g.memFill(dataA, 512)
	b.MovMI(asm.Abs(QuakeFrameVar), 0)

	frame := g.l("frame")
	b.MovRI(edx, QuakeFrames)
	b.Label(frame)

	// Level state update: stores into the blit routine's chunk.
	b.MovRILabel(ebx, "leveldata")
	b.MovMR(asm.Mem(ebx), edx)

	// Patch the blit shade: imm32 of "add eax, imm" at blit_patch+2 (the
	// pass-0 copy of the blit; the others keep their baked constant).
	b.MovRILabel(ebx, "blit_patch")
	b.MovMR(asm.MemD(ebx, 2), edx)

	// Four render passes per frame, each preceded by particle-state writes
	// into a buffer that shares the blit code's page but not its chunk —
	// the write/execute alternation fine-grain protection filters (Table 1).
	for pass := 0; pass < 4; pass++ {
		b.MovRILabel(ebx, "particles")
		b.MovMR(asm.MemD(ebx, uint32(pass)*8), edx)
		b.MovMR(asm.MemD(ebx, uint32(pass)*8+4), edx)

		blit := g.l("blit")
		b.MovRI(ecx, 300)
		b.MovRI(edi, quakeFB+uint32(pass)*0x200)
		b.MovRI(esi, dataA) // texture
		b.Label(blit)
		b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0)) // texel fetch
		if pass == 0 {
			b.Label("blit_patch")
		}
		b.AddRI(eax, 0x1) // shade, patched per frame
		b.ShrRI(eax, 3)
		b.MovBMR(asm.MemIdx(edi, ecx, 1, 0), eax)
		b.Dec(ecx)
		b.Jcc(guest.CondNE, blit)
	}
	b.Jmp("blit_done")
	// Data words sharing the pass-0 blit code's chunk.
	b.Label("leveldata")
	b.D32(0)
	b.Label("blit_done")

	// Present the frame: BLT copy framebuffer to the display area.
	g.bltOp(quakeFB, quakeFB+0x800, 1200, dev.BltOpCopy)

	// Frame accounting.
	b.MovRM(eax, asm.Abs(QuakeFrameVar))
	b.Inc(eax)
	b.MovMR(asm.Abs(QuakeFrameVar), eax)

	b.Dec(edx)
	b.Jcc(guest.CondNE, frame)
	b.Hlt()
	b.Align(128)
	b.Label("particles")
	b.Space(128)
	return finish(b, b.LabelAddr("_start"), nil)
}

func init() {
	registerApp("quake_demo2", "Quake Demo2 (DOS)", buildQuake)
}
