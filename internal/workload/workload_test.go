package workload

import (
	"bytes"
	"testing"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
)

// run executes a built image under the given config until halt.
func run(t *testing.T, img *Image, cfg cms.Config) *cms.Engine {
	t.Helper()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := cms.New(plat, img.Entry, cfg)
	if err := e.Run(img.Budget); err != nil {
		t.Fatalf("run: %v (eip %#x)", err, e.CPU().EIP)
	}
	if !e.CPU().Halted {
		t.Fatal("workload did not halt")
	}
	return e
}

func TestRegistryShape(t *testing.T) {
	if len(Boots()) != 8 {
		t.Errorf("boots = %d, want 8 (paper Appendix A)", len(Boots()))
	}
	if len(Apps()) < 14 {
		t.Errorf("apps = %d, want >= 14", len(Apps()))
	}
	if _, err := ByName("quake_demo2"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must fail")
	}
	for _, w := range All() {
		if w.Paper == "" {
			t.Errorf("%s: missing paper benchmark mapping", w.Name)
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, w := range All() {
		a, b := w.Build(), w.Build()
		if !bytes.Equal(a.Data, b.Data) || a.Entry != b.Entry {
			t.Errorf("%s: non-deterministic build", w.Name)
		}
	}
}

// Every workload must halt under CMS and under pure interpretation with
// identical guest-visible results.
func TestAllWorkloadsEquivalent(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			img := w.Build()
			e := run(t, img, cms.DefaultConfig())
			ref := run(t, img, cms.Config{NoTranslate: true})

			for r := guest.Reg(0); r < guest.NumRegs; r++ {
				if e.CPU().Regs[r] != ref.CPU().Regs[r] {
					t.Errorf("%s = %#x, reference %#x", r, e.CPU().Regs[r], ref.CPU().Regs[r])
				}
			}
			if got, want := e.Plat.Console.OutputString(), ref.Plat.Console.OutputString(); got != want {
				t.Errorf("console %q, reference %q", got, want)
			}
			if !bytes.Equal(e.Plat.Console.Text(), ref.Plat.Console.Text()) {
				t.Error("text buffer mismatch")
			}
			if e.Metrics.Translations == 0 {
				t.Error("workload too cold: nothing was translated")
			}
			if e.Metrics.GuestTotal() < 20_000 {
				t.Errorf("workload too small: %d guest instructions", e.Metrics.GuestTotal())
			}
			t.Logf("%s: %d guest insns, %.2f mols/insn, %d translations",
				w.Name, e.Metrics.GuestTotal(), e.Metrics.MPI(), e.Metrics.Translations)
		})
	}
}

// The boot analogs must actually exercise the paper's system-level
// phenomena.
func TestBootPhenomena(t *testing.T) {
	img, _ := ByName("win98_boot")
	e := run(t, img.Build(), cms.DefaultConfig())
	if e.Plat.Disk.Reads == 0 {
		t.Error("boot did no disk DMA")
	}
	if e.Metrics.ProtFaults == 0 {
		t.Error("boot hit no protected code pages (mixed code/data missing)")
	}
	if len(e.Plat.Console.OutputString()) == 0 {
		t.Error("boot printed nothing")
	}
	lx, _ := ByName("linux_boot")
	el := run(t, lx.Build(), cms.DefaultConfig())
	if el.Metrics.Interrupts == 0 {
		t.Error("timer never interrupted the boot")
	}
}

// The Quake analog must render all frames and exercise SMC.
func TestQuakePhenomena(t *testing.T) {
	img, _ := ByName("quake_demo2")
	e := run(t, img.Build(), cms.DefaultConfig())
	frames := e.Plat.Bus.Read32(QuakeFrameVar)
	if frames != QuakeFrames {
		t.Errorf("frames = %d, want %d", frames, QuakeFrames)
	}
	if e.Metrics.ProtFaults == 0 {
		t.Error("quake never hit write protection (SMC missing)")
	}
	if e.Plat.Blt.Ops() != QuakeFrames {
		t.Errorf("BLT presented %d frames", e.Plat.Blt.Ops())
	}
}

// The version-toggling workload must exercise translation groups.
func TestCorelUsesGroups(t *testing.T) {
	img, _ := ByName("winstone_corel")
	e := run(t, img.Build(), cms.DefaultConfig())
	if e.Cache.Stats.GroupRetires == 0 {
		t.Error("no group retires in the version-toggling workload")
	}
}
