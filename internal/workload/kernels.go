package workload

import (
	"fmt"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
)

// gen wraps a builder with unique-label generation and the kernel emitters
// shared by all workloads. Kernels clobber all registers; each runs a
// counted loop and falls through when done.
type gen struct {
	b    *asm.Builder
	n    int
	r    *prng
	vars uint32
}

func newGen(org uint32, seed uint64) *gen {
	return &gen{b: asm.NewBuilder(org), r: newPrng(seed)}
}

// l returns a fresh label with a readable prefix.
func (g *gen) l(prefix string) string {
	g.n++
	return fmt.Sprintf("%s_%d", prefix, g.n)
}

const (
	eax = guest.EAX
	ecx = guest.ECX
	edx = guest.EDX
	ebx = guest.EBX
	esp = guest.ESP
	ebp = guest.EBP
	esi = guest.ESI
	edi = guest.EDI
)

// memFill stores a pattern over [dst, dst+4*count).
func (g *gen) memFill(dst uint32, count uint32) {
	b := g.b
	loop := g.l("fill")
	b.MovRI(edi, dst)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovMR(asm.MemIdx(edi, ecx, 4, 0), ecx)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// memCopy copies count words src->dst through two independent pointers
// (unprovable aliasing: the alias hardware earns its keep here).
func (g *gen) memCopy(src, dst uint32, count uint32) {
	b := g.b
	loop := g.l("copy")
	b.MovRI(esi, src)
	b.MovRI(edi, dst)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0))
	b.MovMR(asm.MemIdx(edi, ecx, 4, 0), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// memCopy2 copies 2*count words in a hand-unrolled loop: the two loads and
// stores per iteration use the same base registers with different
// displacements, so their disjointness is provable even without alias
// hardware (the contrast case between Figures 2 and 3).
func (g *gen) memCopy2(src, dst uint32, count uint32) {
	b := g.b
	loop := g.l("cp2")
	b.MovRI(esi, src)
	b.MovRI(edi, dst)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 8, 0))
	b.MovRM(edx, asm.MemIdx(esi, ecx, 8, 4))
	b.MovMR(asm.MemIdx(edi, ecx, 8, 0), eax)
	b.MovMR(asm.MemIdx(edi, ecx, 8, 4), edx)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// memSum reduces count words at base into EAX.
func (g *gen) memSum(base uint32, count uint32) {
	b := g.b
	loop := g.l("sum")
	b.MovRI(esi, base)
	b.MovRI(ecx, count)
	b.MovRI(eax, 0)
	b.Label(loop)
	b.AluRM("add", eax, asm.MemIdx(esi, ecx, 4, 0))
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// dotProduct multiplies two vectors (alvinn's inner loop shape: two loads,
// a multiply, an accumulate per element).
func (g *gen) dotProduct(a, c uint32, count uint32) {
	b := g.b
	loop := g.l("dot")
	b.MovRI(esi, a)
	b.MovRI(edi, c)
	b.MovRI(ecx, count)
	b.MovRI(ebp, 0)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0))
	b.MovRM(edx, asm.MemIdx(edi, ecx, 4, 0))
	b.ImulRR(eax, edx)
	b.AddRR(ebp, eax)
	b.MovMR(asm.MemIdx(edi, ecx, 4, 0x800), ebp)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// hashLoop is the compress-style kernel: a dictionary stream update whose
// index the translator cannot predict (but which never collides within a
// region), plus a hashed histogram whose buckets occasionally do collide —
// exercising both the profitable reordering and the alias-fault-and-adapt
// dynamics on the histogram store alone.
func (g *gen) hashLoop(table uint32, iters uint32) {
	b := g.b
	loop := g.l("hash")
	b.MovRI(ebx, table)
	b.MovRI(ecx, iters)
	b.MovRI(eax, 0x9E3779B9)
	b.Label(loop)
	// Mix.
	b.MovRR(edx, eax)
	b.ShrRI(edx, 7)
	b.XorRR(eax, edx)
	b.AddRR(eax, ecx)
	// Dictionary stream: index from the loop counter (collision-free).
	b.MovRR(edx, ecx)
	b.AndRI(edx, 0x3FF)
	b.MovRM(esi, asm.MemIdx(ebx, edx, 4, 0))
	b.AddRR(esi, eax)
	b.MovMR(asm.MemIdx(ebx, edx, 4, 0), esi)
	// Hashed histogram: 256 buckets, occasional collisions.
	b.MovRR(edi, eax)
	b.ShrRI(edi, 9)
	b.AndRI(edi, 0xFF)
	b.MovRM(ebp, asm.MemIdx(ebx, edi, 4, 0x1800))
	b.AddRR(ebp, esi)
	b.MovMR(asm.MemIdx(ebx, edi, 4, 0x1800), ebp)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// bitops is the eqntott-style kernel: wide boolean operations over a table.
func (g *gen) bitops(base uint32, count uint32) {
	b := g.b
	loop := g.l("bit")
	b.MovRI(esi, base)
	b.MovRI(ecx, count)
	b.MovRI(ebp, 0xFFFF0000)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0))
	b.MovRR(edx, eax)
	b.ShrRI(edx, 16)
	b.XorRR(eax, edx)
	b.AluRR("and", eax, ebp)
	b.OrRR(eax, ecx)
	b.Not(eax)
	b.MovMR(asm.MemIdx(esi, ecx, 4, 0), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// stencil is the tomcatv-style kernel in fixed point: a destination pointer
// distinct from the source makes load/store disjointness unprovable.
func (g *gen) stencil(src, dst uint32, count uint32) {
	b := g.b
	loop := g.l("sten")
	b.MovRI(esi, src)
	b.MovRI(edi, dst)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0))
	b.AluRM("add", eax, asm.MemIdx(esi, ecx, 4, 4))
	b.AluRM("add", eax, asm.MemIdx(esi, ecx, 4, 8))
	b.SarRI(eax, 2)
	b.MovMR(asm.MemIdx(edi, ecx, 4, 4), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// branchy is the gcc-style kernel: a computed jump through a dispatch table
// plus data-dependent conditional branches.
func (g *gen) branchy(table uint32, iters uint32) {
	b := g.b
	loop := g.l("br")
	c0, c1, c2, c3 := g.l("case"), g.l("case"), g.l("case"), g.l("case")
	join := g.l("join")
	tbl := g.l("tbl")
	b.MovRI(ecx, iters)
	b.MovRI(ebp, 0x12345)
	b.Label(loop)
	b.ImulRI(ebp, 1103515245)
	b.AddRI(ebp, 12345)
	b.MovRR(eax, ebp)
	b.ShrRI(eax, 16)
	b.AndRI(eax, 3)
	b.MovRILabel(ebx, tbl)
	b.JmpM(asm.MemIdx(ebx, eax, 4, 0))
	b.Label(c0)
	b.AddRI(edi, 1)
	b.Jmp(join)
	b.Label(c1)
	b.XorRR(edi, ebp)
	b.Jmp(join)
	b.Label(c2)
	b.ShlRI(edi, 1)
	b.Jmp(join)
	b.Label(c3)
	b.SubRI(edi, 7)
	b.Label(join)
	b.TestRR(edi, edi)
	skip := g.l("skip")
	b.Jcc(guest.CondS, skip)
	b.Inc(esi)
	b.Label(skip)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
	done := g.l("done")
	b.Jmp(done)
	b.Align(4)
	b.Label(tbl)
	b.D32Label(c0)
	b.D32Label(c1)
	b.D32Label(c2)
	b.D32Label(c3)
	b.Label(done)
	_ = table
}

// callTree exercises call/ret through a small recursive-shaped helper set.
func (g *gen) callTree(iters uint32) {
	b := g.b
	loop, f1, f2, f3, over := g.l("ct"), g.l("f"), g.l("f"), g.l("f"), g.l("over")
	b.MovRI(ecx, iters)
	b.Label(loop)
	b.Call(f1)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
	b.Jmp(over)
	b.Label(f1)
	b.AddRI(eax, 1)
	b.Call(f2)
	b.Call(f2)
	b.Ret()
	b.Label(f2)
	b.ShlRI(eax, 1)
	b.Call(f3)
	b.Ret()
	b.Label(f3)
	b.AluRI("xor", eax, 0x5A5A)
	b.Ret()
	b.Label(over)
}

// stringOps is the WordPerfect-style kernel: byte scanning and copying.
func (g *gen) stringOps(src, dst uint32, count uint32) {
	b := g.b
	loop := g.l("str")
	b.MovRI(esi, src)
	b.MovRI(edi, dst)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovBRM(eax, asm.MemIdx(esi, ecx, 1, 0))
	b.AddRI(eax, 1)
	b.AndRI(eax, 0x7F)
	b.MovBMR(asm.MemIdx(edi, ecx, 1, 0), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// satArith is the multimedia kernel: saturating adds over packed bytes.
func (g *gen) satArith(base uint32, count uint32) {
	b := g.b
	loop, nosat := g.l("sat"), g.l("nosat")
	b.MovRI(esi, base)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovBRM(eax, asm.MemIdx(esi, ecx, 1, 0))
	b.AddRI(eax, 0x10)
	b.CmpRI(eax, 0xF0)
	b.Jcc(guest.CondBE, nosat)
	b.MovRI(eax, 0xF0)
	b.Label(nosat)
	b.MovBMR(asm.MemIdx(esi, ecx, 1, 0), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// physics is the mdljsp2-style kernel: pairwise interaction with divides.
func (g *gen) physics(pos, vel uint32, count uint32) {
	b := g.b
	loop := g.l("phy")
	b.MovRI(esi, pos)
	b.MovRI(edi, vel)
	b.MovRI(ecx, count)
	b.Label(loop)
	b.MovRM(eax, asm.MemIdx(esi, ecx, 4, 0))
	b.MovRM(ebx, asm.MemIdx(edi, ecx, 4, 0))
	b.ImulRR(eax, eax)
	b.SarRI(eax, 8)
	b.AddRI(eax, 1) // keep the divisor nonzero
	b.MovRR(ebp, eax)
	b.MovRR(eax, ebx)
	b.MovRI(edx, 0)
	b.Div(ebp)
	b.AddRR(ebx, eax)
	b.MovMR(asm.MemIdx(edi, ecx, 4, 0), ebx)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// recalc is the spreadsheet kernel: rows x cols dependent updates.
func (g *gen) recalc(base uint32, rows, cols uint32) {
	b := g.b
	outer, inner := g.l("row"), g.l("col")
	b.MovRI(edx, rows)
	b.Label(outer)
	b.MovRI(ecx, cols)
	b.MovRI(ebx, base)
	b.Label(inner)
	b.MovRM(eax, asm.MemIdx(ebx, ecx, 4, 0))
	b.AluRM("add", eax, asm.MemIdx(ebx, ecx, 4, 4))
	b.SarRI(eax, 1)
	b.AddRI(eax, 3)
	b.MovMR(asm.MemIdx(ebx, ecx, 4, 0x800), eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, inner)
	b.Dec(edx)
	b.Jcc(guest.CondNE, outer)
}

// mmioBanner writes a string into the memory-mapped text buffer and echoes
// it to the serial port — the boot-time console traffic every OS has.
func (g *gen) mmioBanner(text string, reps uint32) {
	b := g.b
	outer, loop := g.l("bano"), g.l("ban")
	strLbl := g.l("bstr")
	over := g.l("bover")
	b.MovRI(edx, reps)
	b.Label(outer)
	b.MovRILabel(esi, strLbl)
	b.MovRI(edi, dev.ConsoleMMIOBase)
	b.MovRI(ecx, uint32(len(text)))
	b.Label(loop)
	b.MovBRM(eax, asm.MemIdx(esi, ecx, 1, 0))
	b.MovBMR(asm.MemIdx(edi, ecx, 1, 0), eax) // MMIO store
	b.Out(dev.ConsoleDataPort, eax)           // port I/O
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
	b.Dec(edx)
	b.Jcc(guest.CondNE, outer)
	b.Jmp(over)
	b.Label(strLbl)
	// The loop indexes from len down to 1, so store the text reversed and
	// the console sees it forward.
	rev := make([]byte, len(text)+1)
	rev[0] = ' '
	for i := 0; i < len(text); i++ {
		rev[1+i] = text[len(text)-1-i]
	}
	b.Bytes(rev...)
	b.Label(over)
	b.Align(2)
}

// devicePoll reads device status registers in a polling loop — the
// IN-heavy probing every BIOS does.
func (g *gen) devicePoll(reps uint32) {
	b := g.b
	loop := g.l("poll")
	b.MovRI(ecx, reps)
	b.Label(loop)
	b.In(eax, dev.ConsoleStatusPort)
	b.AddRR(ebx, eax)
	b.In(eax, dev.TimerCountPort)
	b.AddRR(ebx, eax)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
}

// bltOp programs the BLT engine through its MMIO registers: a burst of
// irrevocable device stores followed by a DMA transfer.
func (g *gen) bltOp(src, dst, count uint32, op uint32) {
	b := g.b
	b.MovRI(ebx, dev.BltMMIOBase)
	b.MovRI(eax, src)
	b.MovMR(asm.MemD(ebx, dev.BltRegSrc), eax)
	b.MovRI(eax, dst)
	b.MovMR(asm.MemD(ebx, dev.BltRegDst), eax)
	b.MovRI(eax, count)
	b.MovMR(asm.MemD(ebx, dev.BltRegCount), eax)
	b.MovRI(eax, op)
	b.MovMR(asm.MemD(ebx, dev.BltRegOp), eax)
	b.MovRI(eax, 1)
	b.MovMR(asm.MemD(ebx, dev.BltRegGo), eax)
}

// diskLoad DMA-reads sectors from the disk into RAM (paging activity).
func (g *gen) diskLoad(lba, addr, sectors uint32) {
	b := g.b
	b.MovRI(eax, lba)
	b.Out(dev.DiskLBAPort, eax)
	b.MovRI(eax, addr)
	b.Out(dev.DiskAddrPort, eax)
	b.MovRI(eax, sectors)
	b.Out(dev.DiskCountPort, eax)
	b.MovRI(eax, dev.DiskCmdRead)
	b.Out(dev.DiskCmdPort, eax)
}

// smcPatchLoop is the Doom idiom of §3.6.4: the outer loop patches the
// imm32 of an instruction inside the hot inner loop.
func (g *gen) smcPatchLoop(outer, inner uint32) {
	b := g.b
	o, i := g.l("smco"), g.l("smci")
	patch := g.l("patch")
	b.MovRI(edx, outer)
	b.Label(o)
	// Rewrite the immediate of "add eax, imm" (imm at patch+2).
	b.MovRILabel(ebx, patch)
	b.MovMR(asm.MemD(ebx, 2), edx)
	b.MovRI(ecx, inner)
	b.MovRI(eax, 0)
	b.Label(i)
	b.Label(patch)
	b.AddRI(eax, 0x1)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, i)
	b.AddRR(edi, eax)
	b.Dec(edx)
	b.Jcc(guest.CondNE, o)
}

// smcVersionToggle is the BLT-driver idiom of §3.6.5: the routine's opcode
// alternates between versions between runs of a hot loop.
func (g *gen) smcVersionToggle(outer, inner uint32) {
	b := g.b
	o, i := g.l("vto"), g.l("vti")
	routine := g.l("vtr")
	b.MovRI(edx, outer)
	b.Label(o)
	// Opcode 0x20 = ADDrr, 0x24 = SUBrr: toggle by outer parity.
	b.MovRR(ebx, edx)
	b.AndRI(ebx, 1)
	b.ShlRI(ebx, 2)
	b.AddRI(ebx, 0x20)
	b.MovRILabel(esi, routine)
	b.MovBMR(asm.Mem(esi), ebx)
	b.MovRI(ecx, inner)
	b.MovRI(eax, 100000)
	b.Label(i)
	b.Label(routine)
	b.AddRR(eax, ecx)
	b.Dec(ecx)
	b.Jcc(guest.CondNE, i)
	b.AddRR(edi, eax)
	b.Dec(edx)
	b.Jcc(guest.CondNE, o)
}

// mixedPhase alternates a data write to a blob that shares a *page* (but
// not a chunk) with hot code, and a pass over that hot code. Without
// fine-grain protection every repetition faults and invalidates the page's
// translations; with it, only the first write faults (the Table 1
// dynamics).
func (g *gen) mixedPhase(reps, iters uint32) {
	b := g.b
	blob, over := g.l("mpblob"), g.l("mpover")
	g.repeat(reps, func() {
		b.MovRILabel(ebx, blob)
		b.MovMR(asm.Mem(ebx), ecx)
		b.MovMR(asm.MemD(ebx, 4), ecx)
		inner := g.l("mp")
		b.MovRI(ecx, iters)
		b.MovRI(eax, 0)
		b.Label(inner)
		b.AddRR(eax, ecx)
		b.AluRI("xor", eax, 0x35)
		b.Dec(ecx)
		b.Jcc(guest.CondNE, inner)
	})
	b.Jmp(over)
	b.Align(128)
	b.Label(blob)
	b.Space(128)
	b.Label(over)
}

// mixedData emits a data word immediately adjacent to a hot loop (BIOS-like
// mixed code and data in the same chunk) and a loop that stores to it.
func (g *gen) mixedData(iters uint32) {
	b := g.b
	loop, word, over := g.l("mx"), g.l("mxw"), g.l("mxo")
	b.MovRI(ecx, iters)
	b.MovRILabel(ebx, word)
	b.Label(loop)
	b.MovMR(asm.Mem(ebx), ecx) // store into the code page/chunk
	b.AluRM("add", eax, asm.Mem(ebx))
	b.Dec(ecx)
	b.Jcc(guest.CondNE, loop)
	b.Jmp(over)
	b.Label(word)
	b.D32(0)
	b.Label(over)
}

// timerSetup installs a tick handler and programs the interval timer.
func (g *gen) timerSetup(period uint32, tickCounter uint32) {
	b := g.b
	handler, over := g.l("tick"), g.l("tkov")
	b.MovMI(asm.Abs(guest.IVTBase+4*guest.VecIRQBase), 0) // placeholder, patched next
	// Store handler address into IVT[timer].
	b.MovRILabel(eax, handler)
	b.MovMR(asm.Abs(guest.IVTBase+4*guest.VecIRQBase), eax)
	b.MovRI(eax, period)
	b.Out(dev.TimerPeriodPort, eax)
	b.Jmp(over)
	b.Label(handler)
	b.Push(eax)
	b.MovRM(eax, asm.Abs(tickCounter))
	b.Inc(eax)
	b.MovMR(asm.Abs(tickCounter), eax)
	b.Pop(eax)
	b.Iret()
	b.Label(over)
}

// listWalk is the lisp-interpreter-style kernel: serial pointer chasing
// through a linked list laid out in the data area. Loads are fully
// dependent, so reordering has nothing to win — the li-shaped low end of
// Figure 2.
func (g *gen) listWalk(base uint32, nodes, laps uint32) {
	b := g.b
	init, body := g.l("lw_init"), g.l("lw")
	// Build the list: 16-byte nodes; node[i].next = &node[i+1] and the
	// last node wraps to the first.
	b.MovRI(ecx, nodes)
	b.Label(init)
	b.MovRR(edx, ecx)
	b.Dec(edx)
	b.ShlRI(edx, 4)
	b.AddRI(edx, base) // edx = &node[i]
	b.MovRR(esi, edx)
	b.AddRI(esi, 16)
	b.MovMR(asm.Mem(edx), esi)     // next pointer
	b.MovMR(asm.MemD(edx, 4), ecx) // payload
	b.Dec(ecx)
	b.Jcc(guest.CondNE, init)
	b.MovRI(edx, base+(nodes-1)*16)
	b.MovRI(eax, base)
	b.MovMR(asm.Mem(edx), eax) // wrap

	// Walk it.
	b.MovRI(edi, laps*nodes)
	b.MovRI(esi, base)
	b.MovRI(ebp, 0)
	b.Label(body)
	b.AluRM("add", ebp, asm.MemD(esi, 4)) // consume payload
	b.MovRM(esi, asm.Mem(esi))            // chase
	b.Dec(edi)
	b.Jcc(guest.CondNE, body)
}

// installStubIRQs installs a trivial IRET handler for the given IRQ lines,
// as any real OS does for device interrupts it only polls.
func (g *gen) installStubIRQs(lines ...int) {
	b := g.b
	stub, over := g.l("irqstub"), g.l("irqover")
	b.Jmp(over)
	b.Label(stub)
	b.Iret()
	b.Label(over)
	for _, line := range lines {
		b.MovRILabel(eax, stub)
		b.MovMR(asm.Abs(guest.IVTBase+4*uint32(guest.VecIRQBase+line)), eax)
	}
}

// timerStop disables the timer.
func (g *gen) timerStop() {
	b := g.b
	b.MovRI(eax, 0)
	b.Out(dev.TimerPeriodPort, eax)
}
