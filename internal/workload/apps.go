package workload

import (
	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
)

// varBase is where repeat counters and app-local variables live (plain RAM,
// far from any code page and above every data array the kernels sweep).
const varBase = 0xE000

// nextVar allocates a RAM word for generator bookkeeping.
func (g *gen) nextVar() uint32 {
	g.vars += 4
	return varBase + g.vars - 4
}

// repeat wraps body in a memory-counted outer loop (kernels clobber all
// registers, so the counter lives in RAM).
func (g *gen) repeat(times uint32, body func()) {
	b := g.b
	addr := g.nextVar()
	top := g.l("rep")
	b.MovMI(asm.Abs(addr), times)
	b.Label(top)
	body()
	b.MovRM(ecx, asm.Abs(addr))
	b.Dec(ecx)
	b.MovMR(asm.Abs(addr), ecx)
	b.Jcc(guest.CondNE, top)
}

// appProlog starts an app image: stack and data arrays.
func appProlog(seed uint64) *gen {
	g := newGen(0x1000, seed)
	b := g.b
	b.Label("_start")
	b.MovRI(esp, stackTop)
	g.installStubIRQs(dev.IRQDisk, dev.IRQBlt)
	g.memFill(dataA, 1024)
	g.memFill(dataB, 1024)
	return g
}

func (g *gen) epilog() *Image {
	g.b.Hlt()
	return finish(g.b, g.b.LabelAddr("_start"), nil)
}

func registerApp(name, paper string, build func() *Image) {
	register(Workload{Name: name, Kind: App, Paper: paper, Build: build})
}

func init() {
	registerApp("eqntott", "023.eqntott (SPECcpu92)", func() *Image {
		g := appProlog(1)
		g.repeat(24, func() { g.bitops(dataA, 900) })
		return g.epilog()
	})

	registerApp("compress", "026.compress (SPECcpu92)", func() *Image {
		g := appProlog(2)
		g.repeat(16, func() {
			g.hashLoop(dataH, 700)
			g.memCopy(dataA, dataC, 300)
		})
		return g.epilog()
	})

	registerApp("sc", "072.sc (SPECcpu92)", func() *Image {
		g := appProlog(3)
		g.repeat(10, func() { g.recalc(dataA, 24, 80) })
		return g.epilog()
	})

	registerApp("gcc", "085.gcc (SPECcpu92)", func() *Image {
		g := appProlog(4)
		g.repeat(10, func() {
			g.branchy(dataA, 700)
			g.callTree(200)
		})
		return g.epilog()
	})

	registerApp("tomcatv", "047.tomcatv (SPECcpu92)", func() *Image {
		g := appProlog(5)
		g.repeat(24, func() { g.stencil(dataA, dataB, 800) })
		return g.epilog()
	})

	registerApp("ora", "048.ora (SPECcpu92)", func() *Image {
		g := appProlog(6)
		// Newton-style integer iteration: long dependent chains, light on
		// memory, so suppressing reordering hurts it only mildly.
		b := g.b
		g.repeat(12, func() {
			loop := g.l("ora")
			b.MovRI(ecx, 800)
			b.MovRI(eax, 123456)
			b.Label(loop)
			b.MovRR(ebx, eax)
			b.ShrRI(ebx, 3)
			b.ImulRI(ebx, 5)
			b.AddRI(ebx, 17)
			b.XorRR(eax, ebx)
			b.Dec(ecx)
			b.Jcc(guest.CondNE, loop)
		})
		return g.epilog()
	})

	registerApp("alvinn", "052.alvinn (SPECcpu92)", func() *Image {
		g := appProlog(7)
		g.repeat(20, func() { g.dotProduct(dataA, dataB, 700) })
		return g.epilog()
	})

	registerApp("mdljsp2", "077.mdljsp2 (SPECcpu92)", func() *Image {
		g := appProlog(8)
		g.repeat(10, func() { g.physics(dataA, dataB, 500) })
		return g.epilog()
	})

	registerApp("multimedia", "MultimediaMark99", func() *Image {
		g := appProlog(9)
		g.repeat(14, func() {
			g.satArith(dataA, 900)
			g.bltOp(dataA, dataC, 0x200, dev.BltOpCopy)
			g.bltOp(dataC, dataC+0x200, 0x200, dev.BltOpXor)
		})
		// Mixed code and data page traffic (Table 1 includes Multimedia).
		g.mixedData(100)
		g.mixedPhase(220, 60)
		return g.epilog()
	})

	registerApp("cpumark", "CPUmark99", func() *Image {
		g := appProlog(10)
		g.repeat(8, func() {
			g.memCopy(dataA, dataC, 400)
			g.bitops(dataB, 300)
			g.hashLoop(dataH, 250)
			g.branchy(dataA, 250)
		})
		return g.epilog()
	})

	registerApp("quattro_pro", "QuattroPro (Winstone)", func() *Image {
		g := appProlog(11)
		g.repeat(8, func() {
			g.recalc(dataA, 16, 64)
			g.stringOps(dataA, dataC, 500)
		})
		return g.epilog()
	})

	registerApp("wordperfect", "WordPerfect (Winstone)", func() *Image {
		g := appProlog(12)
		g.repeat(10, func() {
			g.stringOps(dataA, dataC, 800)
			g.memCopy(dataA, dataB, 250)
		})
		// Occasional console echo, as an interactive app would.
		g.mmioBanner("WP", 10)
		return g.epilog()
	})

	registerApp("crafty", "crafty (SPECint2000)", func() *Image {
		g := appProlog(13)
		g.repeat(10, func() {
			g.bitops(dataA, 500)
			g.callTree(250)
		})
		return g.epilog()
	})

	registerApp("espresso", "008.espresso (SPECcpu92)", func() *Image {
		g := appProlog(15)
		g.repeat(14, func() {
			g.bitops(dataA, 600)
			g.branchy(dataA, 300)
		})
		return g.epilog()
	})

	registerApp("li", "022.li (SPECcpu92)", func() *Image {
		g := appProlog(16)
		// A lisp interpreter chases cons cells and calls eval recursively.
		g.repeat(10, func() {
			g.listWalk(dataC, 120, 8)
			g.callTree(150)
		})
		return g.epilog()
	})

	registerApp("mdljdp2", "075.mdljdp2 (SPECcpu92)", func() *Image {
		g := appProlog(17)
		g.repeat(8, func() { g.physics(dataB, dataA, 450) })
		return g.epilog()
	})

	registerApp("spice2g6", "013.spice2g6 (SPECcpu92)", func() *Image {
		g := appProlog(18)
		g.repeat(8, func() {
			g.stencil(dataA, dataB, 500)
			g.physics(dataA, dataC, 200)
		})
		return g.epilog()
	})

	registerApp("su2cor", "089.su2cor (SPECcpu92)", func() *Image {
		g := appProlog(19)
		g.repeat(12, func() {
			g.dotProduct(dataA, dataB, 500)
			g.stencil(dataB, dataC, 300)
		})
		return g.epilog()
	})

	registerApp("wave5", "146.wave5 (SPECcpu92)", func() *Image {
		g := appProlog(20)
		g.repeat(12, func() {
			g.stencil(dataA, dataB, 450)
			g.memCopy2(dataB, dataC, 200)
		})
		return g.epilog()
	})

	registerApp("winstone_access", "Access (Winstone)", func() *Image {
		g := appProlog(21)
		g.repeat(8, func() {
			g.hashLoop(dataH, 300)
			g.stringOps(dataA, dataC, 400)
			g.recalc(dataA, 10, 48)
		})
		return g.epilog()
	})

	registerApp("winstone_navigator", "Navigator (Winstone)", func() *Image {
		g := appProlog(22)
		g.repeat(10, func() {
			g.stringOps(dataA, dataC, 500)
			g.branchy(dataA, 250)
		})
		g.mmioBanner("Loading...", 15)
		return g.epilog()
	})

	registerApp("winstone_powerpoint", "PowerPoint (Winstone)", func() *Image {
		g := appProlog(23)
		g.repeat(9, func() {
			g.memCopy(dataA, dataC, 350)
			g.bltOp(dataC, dataC+0x400, 0x200, dev.BltOpCopy)
			g.stringOps(dataA, dataB, 250)
		})
		return g.epilog()
	})

	registerApp("winme_help", "WindowsME help", func() *Image {
		g := appProlog(24)
		g.repeat(10, func() {
			g.stringOps(dataA, dataC, 450)
			g.branchy(dataB, 200)
		})
		g.mmioBanner("Help and Support", 12)
		return g.epilog()
	})

	registerApp("winstone_corel", "Corel (Winstone)", func() *Image {
		g := appProlog(14)
		g.repeat(24, func() {
			g.stencil(dataA, dataB, 400)
			g.bltOp(dataA, dataC, 0x180, dev.BltOpCopy)
		})
		// Corel draws through a driver with mixed code and data (Table 1).
		g.mixedData(100)
		g.mixedPhase(200, 60)
		g.smcVersionToggle(12, 150)
		return g.epilog()
	})
}
