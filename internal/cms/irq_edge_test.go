package cms

import (
	"testing"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/vliw"
)

// Interrupt-delivery edge cases: asynchronous IRQs arriving exactly when
// the engine is doing something delicate — rolling a translation back,
// re-interpreting a region after a fault, or tearing down a translation a
// guest store just invalidated. In every case the architectural registers,
// flags, and console must match a pure-interpretation run: deliveries may
// land at different instruction boundaries (that is architecturally
// legal), but they must never corrupt guest state.
//
// Final memory is NOT compared here: the tick counter genuinely differs
// with delivery timing. The generative fuzzer (internal/fuzzer) owns the
// byte-identical-memory guarantee via its interrupt-quiescent programs.

const (
	edgeTick = 0x8000 // tick counter cell
	edgeTog  = 0x8010 // SMC toggle cell
)

// irqEdgeProgram builds a timer-pressured kernel: a transparent tick
// handler on the timer vector, the interval timer running across a hot
// loop, timer off, halt. With smc set, the hot loop's first instruction is
// rewritten between ADD and SUB by a byte store on every outer iteration —
// SMC teardown racing delivery.
func irqEdgeProgram(smc bool) *asm.Builder {
	eax, ebx, ecx, edx, esi, edi, ebp := guest.EAX, guest.EBX, guest.ECX, guest.EDX, guest.ESI, guest.EDI, guest.EBP
	b := asm.NewBuilder(0x1000)
	b.Jmp("main")

	b.Label("tick")
	b.Push(eax)
	b.MovRM(eax, asm.Abs(edgeTick))
	b.Inc(eax)
	b.MovMR(asm.Abs(edgeTick), eax)
	b.Pop(eax)
	b.Iret()

	b.Label("main")
	b.MovRILabel(eax, "tick")
	b.MovMR(asm.Abs(guest.IVTBase+4*guest.VecIRQBase), eax)
	b.MovRI(eax, 13)
	b.Out(dev.TimerPeriodPort, eax)

	b.MovRI(eax, 0)
	b.MovRI(esi, 3)
	if !smc {
		b.MovRI(ecx, 4000)
		b.Label("loop")
		b.AddRR(eax, esi)
		b.XorRR(edx, eax)
		b.Dec(ecx)
		b.Jcc(guest.CondNE, "loop")
	} else {
		b.MovRI(edi, 60)
		b.Label("outer")
		// Flip the toggle and rewrite the opcode at "site":
		// 0x20 + 4*toggle is OpADDrr or OpSUBrr (same length).
		b.MovRM(ebx, asm.Abs(edgeTog))
		b.AluRI("xor", ebx, 1)
		b.MovMR(asm.Abs(edgeTog), ebx)
		b.MovRR(edx, ebx)
		b.ShlRI(edx, 2)
		b.AddRI(edx, uint32(guest.OpADDrr))
		b.MovRILabel(ebp, "site")
		b.MovBMR(asm.Mem(ebp), edx)
		b.MovRI(ecx, 200)
		b.Label("inner")
		b.Label("site")
		b.AddRR(eax, esi) // patched to sub on every other outer iteration
		b.Dec(ecx)
		b.Jcc(guest.CondNE, "inner")
		b.Dec(edi)
		b.Jcc(guest.CondNE, "outer")
	}

	b.MovRI(ebx, 0)
	b.Out(dev.TimerPeriodPort, ebx)
	b.Hlt()
	return b
}

// edgeRun assembles and runs the program under cfg.
func edgeRun(t *testing.T, b *asm.Builder, cfg Config) *Engine {
	t.Helper()
	plat := dev.NewPlatform(1<<21, nil)
	plat.Bus.WriteRaw(b.Origin(), b.MustAssemble())
	e := New(plat, b.Origin(), cfg)
	e.CPU().Regs[guest.ESP] = 0x100000
	runToHalt(t, e, 10_000_000)
	return e
}

// edgeCompare asserts registers, flags, and console match the reference.
func edgeCompare(t *testing.T, e, ref *Engine) {
	t.Helper()
	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		if e.CPU().Regs[r] != ref.CPU().Regs[r] {
			t.Errorf("%s = %#x, reference %#x", r, e.CPU().Regs[r], ref.CPU().Regs[r])
		}
	}
	if e.CPU().Flags != ref.CPU().Flags {
		t.Errorf("flags = %#x, reference %#x", e.CPU().Flags, ref.CPU().Flags)
	}
	if got, want := e.Plat.Console.OutputString(), ref.Plat.Console.OutputString(); got != want {
		t.Errorf("console = %q, reference %q", got, want)
	}
}

// periodicInjector forces one action every period-th commit boundary.
type periodicInjector struct {
	period uint64
	action InjectAction
	n      uint64
	fired  int
}

func (p *periodicInjector) TexecBoundary(entry uint32, retired uint64) InjectAction {
	p.n++
	if p.n%p.period != 0 {
		return InjectNone
	}
	p.fired++
	return p.action
}

// TestIRQPendingAtRollbackBoundary forces spurious §3.3 rollbacks at commit
// boundaries while timer interrupts are in flight: pending IRQs must be
// delivered through the rollback path without disturbing guest state.
func TestIRQPendingAtRollbackBoundary(t *testing.T) {
	inj := &periodicInjector{period: 5, action: InjectRollback}
	cfg := DefaultConfig()
	cfg.Injector = inj
	e := edgeRun(t, irqEdgeProgram(false), cfg)
	ref := edgeRun(t, irqEdgeProgram(false), Config{NoTranslate: true})
	edgeCompare(t, e, ref)

	if inj.fired == 0 {
		t.Fatal("injector never fired: program never ran translated")
	}
	if e.Metrics.Faults[vliw.FIRQ] == 0 {
		t.Error("no FIRQ rollbacks recorded")
	}
	if e.Metrics.Interrupts == 0 || ref.Metrics.Interrupts == 0 {
		t.Errorf("timer never delivered (engine %d, reference %d)",
			e.Metrics.Interrupts, ref.Metrics.Interrupts)
	}
}

// TestIRQDuringInterpreterFallback forces synthesized alias faults so the
// engine keeps dropping into its re-interpretation fallback with timer
// interrupts pending: deliveries inside interpretRegion must be as
// transparent as deliveries anywhere else, even as the alias adapt ladder
// retranslates the region underneath.
func TestIRQDuringInterpreterFallback(t *testing.T) {
	inj := &periodicInjector{period: 7, action: InjectAliasFault}
	cfg := DefaultConfig()
	cfg.Injector = inj
	e := edgeRun(t, irqEdgeProgram(false), cfg)
	ref := edgeRun(t, irqEdgeProgram(false), Config{NoTranslate: true})
	edgeCompare(t, e, ref)

	if inj.fired == 0 {
		t.Fatal("injector never fired")
	}
	if e.Metrics.Faults[vliw.FAlias] == 0 {
		t.Error("no alias faults recorded")
	}
	if e.Metrics.Interrupts == 0 {
		t.Error("timer never delivered during fallback run")
	}
}

// TestIRQRacingSMCTeardown runs hostile SMC — the hot loop body rewritten
// every outer iteration — under timer pressure: protection faults,
// invalidation/teardown, retranslation, and asynchronous delivery all
// interleave, and the guest must not be able to tell.
func TestIRQRacingSMCTeardown(t *testing.T) {
	e := edgeRun(t, irqEdgeProgram(true), DefaultConfig())
	ref := edgeRun(t, irqEdgeProgram(true), Config{NoTranslate: true})
	edgeCompare(t, e, ref)

	if e.Metrics.Translations == 0 {
		t.Fatal("SMC loop never translated")
	}
	if e.Metrics.ProtFaults == 0 {
		t.Error("no protection faults: SMC writes never hit live translations")
	}
	if e.Metrics.Interrupts == 0 {
		t.Error("timer never delivered")
	}
}
