package cms

import (
	"fmt"

	"cms/internal/mem"
	"cms/internal/tcache"
	"cms/internal/xlate"
)

// resolveProt handles a guest write that struck CMS-protected memory
// (§3.6). It must leave the protection state such that re-executing the
// write proceeds:
//
//  1. If the page is coarse-protected and fine-grain protection is enabled,
//     the page is converted to fine-grain first (§3.6.1); a write that then
//     falls in a code-free chunk costs nothing further.
//  2. Translations whose source bytes the write actually touches are armed
//     for self-revalidation (§3.6.2) when eligible, else invalidated (and
//     retired into their group, §3.6.5).
//  3. The touched chunks (or the whole page without fine-grain) lose
//     protection so the write can land; prologues or reinstalls restore it.
func (e *Engine) resolveProt(addr uint32, size int) {
	e.Metrics.ProtFaults++
	e.trace(EvProtFault, addr, "")
	bus := e.Plat.Bus
	page := mem.PageOf(addr)

	if fg, _ := bus.IsFineGrain(page); !fg && e.Cfg.EnableFineGrain {
		// Convert the page to fine-grain protection: only chunks holding
		// translated code keep faulting.
		bus.SetFineGrain(page, e.Cache.PageChunkMask(page))
		e.Metrics.FineGrainConversions++
		e.trace(EvFineGrain, page<<mem.PageShift, "")
		if bus.CheckProt(addr, size, mem.SrcCPU) == nil {
			return // the write lands in a data chunk: resolved
		}
	}

	// Victims are computed at protection granularity: with fine-grain
	// protection, every translation with source bytes in the written
	// chunks is affected ("the granularity supported cannot always
	// identify a single translation affected, but typically narrows the
	// impact to a few"); with coarse protection the whole page goes below.
	vAddr, vSize := addr, size
	if fg, _ := bus.IsFineGrain(page); fg {
		lo := addr &^ (mem.ChunkSize - 1)
		hi := (addr + uint32(size) + mem.ChunkSize - 1) &^ (mem.ChunkSize - 1)
		vAddr, vSize = lo, int(hi-lo)
	}
	victims := e.Cache.Overlapping(vAddr, vSize)
	for _, v := range victims {
		s := e.site(v.T.Entry)
		s.smcWrites++
		if e.Cfg.EnableSelfReval && v.SelfReval && !v.Armed {
			// Keep the translation; its prologue revalidates on next entry.
			v.Armed = true
			e.Metrics.SelfRevalArms++
			e.trace(EvArm, v.T.Entry, "")
			continue
		}
		if s.smcWrites >= 2 && e.Cfg.EnableSelfReval {
			// Flag the site: the next translation is a self-revalidation
			// candidate ("once a candidate is identified, it is flagged;
			// the next time it is re-translated to capture the x86 code").
			s.wantSelfReval = true
		}
		if e.Cfg.EnableGroups {
			s.useGroups = true
		}
		e.Cache.Invalidate(v)
	}

	// Drop protection over the written bytes so the store can proceed.
	if fg, _ := bus.IsFineGrain(page); fg {
		var mask uint32
		for a := addr; a < addr+uint32(size)+mem.ChunkSize-1; a += mem.ChunkSize {
			if mem.PageOf(a) == page {
				mask |= 1 << mem.ChunkOf(a)
			}
		}
		bus.ClearFineGrainChunks(page, mask)
		// Other pages a straddling write touches.
		if last := mem.PageOf(addr + uint32(size) - 1); last != page {
			e.dropCoarseOrChunk(last, addr, size)
		}
	} else {
		// Coarse protection: everything on the page goes (§3.6: "page-level
		// protection is adequate for correctness").
		for _, v := range e.Cache.PageEntries(page) {
			if v.Valid {
				e.Cache.Invalidate(v)
			}
		}
		bus.Unprotect(page)
		if last := mem.PageOf(addr + uint32(size) - 1); last != page {
			e.dropCoarseOrChunk(last, addr, size)
		}
	}
}

func (e *Engine) dropCoarseOrChunk(page uint32, addr uint32, size int) {
	bus := e.Plat.Bus
	if !bus.IsProtected(page) {
		return
	}
	if fg, _ := bus.IsFineGrain(page); fg {
		var mask uint32
		for a := addr; a < addr+uint32(size)+mem.ChunkSize-1; a += mem.ChunkSize {
			if mem.PageOf(a) == page {
				mask |= 1 << mem.ChunkOf(a)
			}
		}
		bus.ClearFineGrainChunks(page, mask)
		return
	}
	for _, v := range e.Cache.PageEntries(page) {
		if v.Valid {
			e.Cache.Invalidate(v)
		}
	}
	bus.Unprotect(page)
}

// reconcileProtection drops page protection that no remaining translation
// needs (called after invalidations outside the write path).
func (e *Engine) reconcileProtection(ent *tcache.Entry) {
	bus := e.Plat.Bus
	for _, p := range ent.T.Pages() {
		if len(e.Cache.PageEntries(p)) == 0 {
			bus.Unprotect(p)
		} else if fg, _ := bus.IsFineGrain(p); fg {
			bus.SetFineGrain(p, e.Cache.PageChunkMask(p))
		}
	}
}

// handleSourceChanged reacts to detected self-modification: a failed
// prologue (§3.6.2) or a self-check fail exit (§3.6.3). The translation is
// retired; the site escalates to stylized-immediate translation when the
// modification pattern allows (§3.6.4), and to self-checking plus groups
// when it recurs.
func (e *Engine) handleSourceChanged(ent *tcache.Entry) {
	s := e.site(ent.T.Entry)
	s.prologueFails++

	if e.Cfg.EnableStylized {
		if addrs := stylizedDiff(ent.T, e.Plat.Bus); len(addrs) > 0 {
			for _, a := range addrs {
				s.policy = s.policy.WithImmLoad(a)
			}
			// §3.6.4: immediate loading must be combined with checking.
			if !e.Cfg.EnableSelfReval {
				s.selfCheck = true
			} else {
				s.wantSelfReval = true
			}
			e.Metrics.StylizedAdopts++
			e.trace(EvStylized, ent.T.Entry, fmt.Sprintf("%d imm fields", len(addrs)))
		}
	}
	if s.prologueFails >= 2 {
		if e.Cfg.EnableGroups {
			s.useGroups = true
		}
		if !e.Cfg.EnableSelfReval {
			s.selfCheck = true
		}
	}
	e.Cache.Invalidate(ent)
	e.reconcileProtection(ent)
}

// stylizedDiff compares a translation's snapshot with current memory. If
// every differing byte lies inside the 32-bit immediate field of some
// covered instruction, it returns those instructions' addresses — the
// "modify the immediate just before the loop" idiom of §3.6.4. Otherwise it
// returns nil.
func stylizedDiff(t *xlate.Translation, bus *mem.Bus) []uint32 {
	type field struct{ lo, hi, insn uint32 }
	var fields []field
	for _, in := range t.Insns {
		if in.HasImm32() {
			fields = append(fields, field{in.Addr + in.ImmOff, in.Addr + in.ImmOff + 4, in.Addr})
		}
	}
	found := make(map[uint32]bool)
	for ri, r := range t.SrcRanges {
		cur := bus.ReadRaw(r.Addr, int(r.Len))
		snap := t.Snapshot[ri]
		mask := t.Mask[ri]
		for i := range snap {
			if mask[i] == 0 || cur[i] == snap[i] {
				continue
			}
			a := r.Addr + uint32(i)
			ok := false
			for _, f := range fields {
				if a >= f.lo && a < f.hi {
					found[f.insn] = true
					ok = true
					break
				}
			}
			if !ok {
				return nil
			}
		}
	}
	out := make([]uint32, 0, len(found))
	for a := range found {
		out = append(out, a)
	}
	return out
}
