package cms

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cms/internal/dev"
	"cms/internal/interp"
	"cms/internal/ir"
	"cms/internal/risc"
	"cms/internal/tcache"
	"cms/internal/vliw"
	"cms/internal/xlate"
)

// Engine is the Code Morphing runtime for one platform.
type Engine struct {
	Cfg  Config
	Plat *dev.Platform

	Interp  *interp.Interp
	Machine *vliw.Machine
	Trans   *xlate.Translator
	Cache   *tcache.Cache

	Metrics Metrics

	// Trace, when non-nil, records engine events (translations, faults,
	// adaptations, SMC machinery) for debugging and tooling.
	Trace *Trace

	sites  map[uint32]*site
	budget uint64
	err    error

	// nextCancel is the retired-instruction count at which the cooperative
	// cancel hook is next polled — MaxUint64 when no hook is configured, so
	// the hot-path test is a single always-false compare.
	nextCancel uint64
	// curEnt is the translation most recently entered by translated
	// execution; a supervisor recovering a panic reads it (ImplicatedKey)
	// to name the artifact to quarantine.
	curEnt *tcache.Entry

	// Concurrent translation pipeline state (nil/empty in synchronous
	// mode); see pipeline.go.
	pipe     *xlate.Pipeline
	pendq    []pending
	inflight map[uint32]bool

	// resumePt, when valid, records a chain-boundary transition that a
	// cancelled run had earned but not yet performed. Run replays it before
	// anything else, with exactly the charges the uninterrupted run would
	// have made, so a snapshot restored at that boundary stays bit-identical
	// to a never-interrupted run (the plain dispatch path would charge
	// DispatchToTexec and a fresh lookup the original run never paid).
	resumePt resumePoint

	// savedPend preserves the undelivered pipeline queue of a cancelled Run
	// (frozen requests plus original due times) so a snapshot can carry it;
	// startPipeline resubmits it without fresh PipelineSubmits charges. See
	// stopPipeline.
	savedPend []savedPending

	// sharedHits/sharedMisses attribute shared-store outcomes to this
	// engine's translation requests (atomics: pipeline workers count on
	// their own goroutines). Wall-clock-side observability for the farm's
	// dedup metrics — deliberately NOT part of Metrics, which must stay
	// bit-identical with or without a store.
	sharedHits   atomic.Uint64
	sharedMisses atomic.Uint64
}

// ErrBudget reports that Run stopped because the instruction budget was
// exhausted rather than because the guest halted.
var ErrBudget = errors.New("cms: guest instruction budget exhausted")

// ErrCancelled reports that Run stopped because the Config.Cancel hook asked
// it to — typically a serving-layer watchdog whose wall-clock deadline
// expired. The guest state is consistent at the committed boundary where the
// poll fired.
var ErrCancelled = errors.New("cms: run cancelled by watchdog")

// New builds an engine over a platform, with the guest entry point set.
func New(plat *dev.Platform, entry uint32, cfg Config) *Engine {
	cfg = cfg.normalized()
	ip := interp.New(plat.Bus)
	ip.CPU = interp.NewCPU(entry)
	ip.IRQ = plat.IRQ
	ip.Timer = plat.Timer
	ip.Prof = interp.NewProfile()
	ip.CheckProt = true

	m := vliw.NewMachine(plat.Bus)
	m.IRQ = plat.IRQ

	c := tcache.New()
	if cfg.TCacheCapAtoms > 0 {
		c.CapAtoms = cfg.TCacheCapAtoms
	}

	e := &Engine{
		Cfg:     cfg,
		Plat:    plat,
		Interp:  ip,
		Machine: m,
		Trans: &xlate.Translator{
			Bus:            plat.Bus,
			Prof:           ip.Prof,
			Host:           cfg.Host,
			CompileBackend: cfg.EnableCompiledBackend,
			Backend:        cfg.Backend,
		},
		Cache: c,
		sites: make(map[uint32]*site),
	}
	plat.Bus.DMAInvalidate = func(page uint32) {
		e.Cache.InvalidatePage(page)
		e.Metrics.DMAInvalidations++
		e.trace(EvDMA, page<<12, "")
	}
	return e
}

// CPU returns the guest architectural state.
func (e *Engine) CPU() *interp.CPU { return &e.Interp.CPU }

func (e *Engine) site(entry uint32) *site {
	s := e.sites[entry]
	if s == nil {
		s = &site{}
		e.sites[entry] = s
	}
	return s
}

// Run executes the guest until it halts, an unrecoverable error occurs, or
// maxGuest instructions have retired. It returns nil on a clean halt and
// ErrBudget if the budget ran out.
func (e *Engine) Run(maxGuest uint64) error {
	e.budget = maxGuest
	e.nextCancel = ^uint64(0)
	if e.Cfg.Cancel != nil {
		e.nextCancel = e.Metrics.GuestTotal() + e.Cfg.CancelQuantum
	}
	if e.Cfg.PipelineWorkers > 0 && !e.Cfg.NoTranslate {
		e.startPipeline()
		defer e.stopPipeline()
	}
	for e.Metrics.GuestTotal() < maxGuest {
		if e.resumePt.valid && e.err == nil {
			// A restored snapshot parked the run mid-chain: replay the
			// pending transition before the dispatcher touches anything
			// (draining the pipeline first would install translations the
			// uninterrupted run only observes after the chain surfaces).
			rp := e.resumePt
			e.resumePt = resumePoint{}
			e.resumeTranslated(rp)
			continue
		}
		if e.pipe != nil {
			e.drainPipeline()
		}
		if e.err != nil {
			return e.err
		}
		if e.Interp.CPU.Halted {
			return nil
		}
		if e.Metrics.GuestTotal() >= e.nextCancel && e.pollCancel() {
			return e.err
		}
		eip := e.Interp.CPU.EIP
		if ent := e.Cache.Lookup(eip); ent != nil {
			e.Metrics.DispatchToTexec++
			e.runTranslated(ent)
			continue
		}
		if !e.Cfg.NoTranslate && e.hot(eip) {
			var ent *tcache.Entry
			if e.pipe != nil {
				ent = e.submitTranslation(eip)
			} else {
				ent = e.translateAt(eip)
			}
			if ent != nil {
				e.Metrics.DispatchToTexec++
				e.runTranslated(ent)
				continue
			}
		}
		e.stepInterp()
	}
	if e.err != nil {
		return e.err
	}
	if e.Interp.CPU.Halted {
		return nil
	}
	return ErrBudget
}

// pollCancel consults the cooperative cancel hook at a committed boundary.
// A true return records ErrCancelled; a false return re-arms the quantum.
// The false path touches no Metrics field, so a run that is polled but never
// cancelled stays bit-identical to one with no hook at all.
func (e *Engine) pollCancel() bool {
	if e.Cfg.Cancel() {
		e.err = ErrCancelled
		return true
	}
	e.nextCancel = e.Metrics.GuestTotal() + e.Cfg.CancelQuantum
	return false
}

// stepInterp interprets one instruction boundary, resolving protection hits.
func (e *Engine) stepInterp() {
	res := e.Interp.Step()
	e.Metrics.MolsInterp += res.Cost
	switch res.Stop {
	case interp.StopError:
		e.err = res.Err
	case interp.StopProt:
		e.resolveProt(res.Prot.Addr, res.Prot.Size)
	}
	if res.Retired {
		e.Metrics.GuestInterp++
	}
	if res.IRQ {
		e.Metrics.Interrupts++
	}
}

// hot reports whether the profiler says eip deserves translation.
func (e *Engine) hot(eip uint32) bool {
	if e.site(eip).interpOnly {
		return false
	}
	return e.Interp.Prof.Heads[eip] >= e.Cfg.HotThreshold
}

// translateAt produces and installs a translation for eip, trying the
// translation group first (§3.6.5). It returns nil if the address is
// untranslatable.
func (e *Engine) translateAt(eip uint32) *tcache.Entry {
	s := e.site(eip)
	if e.Cfg.EnableGroups && s.useGroups {
		if t := e.Cache.GroupMatch(eip, e.Plat.Bus); t != nil {
			e.Metrics.GroupReuses++
			e.trace(EvGroupReuse, eip, "")
			ent := e.Cache.Install(t)
			ent.SelfReval = s.wantSelfReval && e.Cfg.EnableSelfReval
			e.protect(t)
			return ent
		}
	}
	pol := e.Cfg.BasePolicy.Merge(s.policy)
	if s.selfCheck {
		pol.SelfCheck = true
	}
	t, err := e.backendTranslate(eip, pol)
	if err != nil {
		if errors.Is(err, xlate.ErrUntranslatable) {
			s.interpOnly = true
			return nil
		}
		e.err = fmt.Errorf("cms: translation failed at %#x: %w", eip, err)
		return nil
	}
	e.Metrics.Translations++
	e.Metrics.MolsTranslate += e.Cfg.TranslateCostPerInsn * uint64(len(t.Insns))
	e.Metrics.CodeAtoms += uint64(t.CodeAtoms())
	e.Metrics.GuestInsnsTranslated += uint64(len(t.Insns))
	e.trace(EvTranslate, eip, fmt.Sprintf("%d insns, %d mols", len(t.Insns), t.CodeMolecules()))
	ent := e.Cache.Install(t)
	ent.SelfReval = s.wantSelfReval && e.Cfg.EnableSelfReval
	e.protect(t)
	return ent
}

// backendTranslate produces a translation for eip on the synchronous path:
// directly from the translator, or — when a farm's shared store is
// configured — through the content-addressed store, installing a per-VM
// clone of the frozen artifact. Either way the caller charges the same
// simulated translation cost; the store saves wall-clock work only.
func (e *Engine) backendTranslate(eip uint32, pol xlate.Policy) (*xlate.Translation, error) {
	store := e.Cfg.SharedStore
	if store == nil {
		return e.Trans.Translate(eip, pol)
	}
	req, err := e.Trans.Prepare(eip, pol)
	if err != nil {
		return nil, err
	}
	art, hit, err := store.Translate(req)
	if err != nil {
		return nil, err
	}
	if hit {
		e.sharedHits.Add(1)
	} else {
		e.sharedMisses.Add(1)
	}
	e.Trans.Translated++
	e.Trans.InsnsTranslated += uint64(len(art.Insns))
	return art.Clone(), nil
}

// SharedStats reports how many of this engine's translation requests the
// shared store served without backend work (hits) versus with it (misses).
// Both are zero without a store. Safe to call while the engine runs.
func (e *Engine) SharedStats() (hits, misses uint64) {
	return e.sharedHits.Load(), e.sharedMisses.Load()
}

// protect write-protects the translation's source pages: fine-grain chunks
// where the page is already in fine-grain mode, coarse protection otherwise.
func (e *Engine) protect(t *xlate.Translation) {
	chunks := t.Chunks()
	for _, p := range t.Pages() {
		if fg, _ := e.Plat.Bus.IsFineGrain(p); fg {
			e.Plat.Bus.AddFineGrainChunks(p, chunks[p])
		} else {
			e.Plat.Bus.Protect(p)
		}
	}
}

// resumePoint records a chain-boundary transition that a cancelled run had
// reached but not yet performed: translation `entry` took exit `exit`
// (indirect or not) committing at `target`, and the cancel hook fired before
// the successor was resolved. Serialized in snapshots; replayed by
// resumeTranslated.
type resumePoint struct {
	valid    bool
	ent      *tcache.Entry // resolved at capture or restore; may be nil
	entry    uint32
	exit     int
	indirect bool
	target   uint32
}

// runTranslated executes translations starting at ent, following chains
// until a fault or an exit with no cached successor.
func (e *Engine) runTranslated(ent *tcache.Entry) {
	cpu := &e.Interp.CPU
	e.Machine.LoadGuest(&cpu.Regs, cpu.Flags, cpu.EIP)
	e.texecLoop(ent)
}

// resumeTranslated replays the transition a chain-boundary cancellation left
// pending and, if a successor resolves, continues the chain from it. The
// charges here mirror texecLoop's transition and dispatcher-return paths
// exactly — that equivalence is what makes a restored run's Metrics
// bit-identical to an uninterrupted one.
func (e *Engine) resumeTranslated(rp resumePoint) {
	cur := rp.ent
	if cur == nil {
		cur = e.Cache.Peek(rp.entry)
	}
	if cur == nil || !cur.Valid {
		// The translation vanished between capture and resume. This cannot
		// happen on the snapshot path (the cache is restored verbatim);
		// degrade to plain dispatch at the committed target.
		return
	}
	cpu := &e.Interp.CPU
	e.Machine.LoadGuest(&cpu.Regs, cpu.Flags, cpu.EIP)
	e.curEnt = cur
	next := e.transition(cur, rp.exit, rp.indirect, rp.target)
	if next == nil {
		e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
		cpu.EIP = rp.target
		e.Metrics.DispatchReturns++
		e.Metrics.MolsDispatch += e.Cfg.LookupCost
		e.Interp.Prof.Heads[rp.target]++
		return
	}
	e.Machine.CommittedEIP = rp.target
	e.texecLoop(next)
}

// texecLoop is the chained-execution loop: the machine already holds the
// guest state, and cur is the translation to enter next.
func (e *Engine) texecLoop(cur *tcache.Entry) {
	cpu := &e.Interp.CPU
	for {
		// Remember the translation being entered: if a host bug panics out
		// of the compiled closure below, the recovering supervisor reads
		// this to quarantine the implicated shared artifact.
		e.curEnt = cur
		if e.Cfg.Injector != nil && e.injectAt(cur) {
			return
		}
		if cur.Armed {
			switch e.runPrologue(cur) {
			case prologueErr, prologueIRQ:
				// Error recorded, or an interrupt was delivered; back to
				// the dispatcher either way.
				return
			case prologueFail:
				// Source changed under the prologue: handle SMC and bail to
				// the dispatcher; no guest state was touched. Continue at
				// the committed boundary (this translation's entry — the
				// dispatch EIP only for the first link of a chain).
				e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
				cpu.EIP = e.Machine.CommittedEIP
				e.Metrics.SelfRevalFails++
				e.trace(EvRevalFail, cur.T.Entry, "")
				e.handleSourceChanged(cur)
				return
			case prologuePass:
				e.Metrics.SelfRevalPasses++
				e.trace(EvRevalPass, cur.T.Entry, "")
				e.reprotect(cur.T)
				cur.Armed = false
			}
		}

		mols0 := e.Machine.Mols
		// Backend fast path when the translation carries an executable
		// form — register-IR or closure-threaded, whichever its request
		// selected; the interpreter is the always-correct fallback (and
		// the only path when EnableCompiledBackend is off).
		var out *vliw.Outcome
		if rc := cur.T.Risc; rc != nil {
			out = risc.Exec(e.Machine, rc)
		} else if cc := cur.T.Compiled; cc != nil {
			// Machine-owned result, read in place — copying the Outcome
			// struct per execution is measurable on hot chained loops.
			out = e.Machine.ExecCompiled(cc)
		} else {
			o := e.Machine.Exec(cur.T.Code)
			out = &o
		}
		e.Metrics.MolsTexec += e.Machine.Mols - mols0
		cur.Execs++

		if out.Fault != vliw.FNone {
			e.Metrics.Faults[out.Fault]++
			cur.FaultCounts[out.Fault]++
			e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
			cpu.EIP = e.Machine.CommittedEIP
			e.traceFault(EvFault, out.Addr, out.Fault)
			e.handleFault(cur, *out)
			return
		}

		ex := cur.T.Exits[out.Exit]
		e.Metrics.GuestTexec += uint64(ex.Insns)
		e.Plat.Timer.Advance(uint64(ex.Insns))

		if ex.Kind == ir.ExitSelfCheckFail {
			e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
			cpu.EIP = e.Machine.CommittedEIP
			e.Metrics.SelfCheckFails++
			e.trace(EvSelfCheckFail, cur.T.Entry, "")
			e.handleSourceChanged(cur)
			return
		}

		target := ex.Target
		if out.Indirect {
			target = out.IndTarget
		}

		// Chained loops can run entirely inside the cache; surface to the
		// dispatcher when the instruction budget runs out, and poll the
		// cancel hook here too — this is the only boundary a chained loop
		// ever crosses, so watchdog preemption must reach it. The common
		// case pays one extra compare against nextCancel (MaxUint64 when no
		// hook is armed).
		if gt := e.Metrics.GuestTotal(); gt >= e.budget || gt >= e.nextCancel {
			if gt >= e.budget {
				e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
				cpu.EIP = target
				e.Metrics.DispatchReturns++
				return
			}
			if e.pollCancel() {
				// The exit is taken but its transition not yet performed.
				// Park the transition so a snapshot restored here can replay
				// it with the exact charges the uninterrupted run would have
				// made (see resumeTranslated).
				e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
				cpu.EIP = target
				e.resumePt = resumePoint{
					valid:    true,
					ent:      cur,
					entry:    cur.T.Entry,
					exit:     out.Exit,
					indirect: out.Indirect,
					target:   target,
				}
				return
			}
		}

		next := e.transition(cur, out.Exit, out.Indirect, target)
		if next == nil {
			e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
			cpu.EIP = target
			e.Metrics.DispatchReturns++
			e.Metrics.MolsDispatch += e.Cfg.LookupCost
			// The dispatcher is a profiling point too: targets that keep
			// arriving from translated code (typically via indirect exits)
			// must still cross the translation threshold.
			e.Interp.Prof.Heads[target]++
			return
		}
		// The exit committed at target's boundary: recovery from a fault in
		// the next translation must re-interpret from there, not from the
		// chain's first entry.
		e.Machine.CommittedEIP = target
		cur = next
	}
}

// transition resolves the successor translation for one taken exit, charging
// the chaining and lookup costs. A nil result means the chain surfaces to
// the dispatcher.
func (e *Engine) transition(cur *tcache.Entry, exit int, indirect bool, target uint32) *tcache.Entry {
	var next *tcache.Entry
	switch {
	case indirect && e.Cfg.EnableChaining:
		// A direct chain can't help an indirect exit (the target is
		// data-dependent), but the per-translation inline cache can:
		// hot indirect jumps resolve to few targets, and a hit skips
		// the dispatcher's map lookup almost entirely.
		if n := cur.IndirectTarget(target); n != nil {
			next = n
			e.Metrics.IndirectHits++
			e.Metrics.MolsDispatch += e.Cfg.IndTCHitCost
		} else if next = e.Cache.Lookup(target); next != nil {
			cur.CacheIndirect(target, next)
			e.Metrics.IndirectMisses++
			e.Metrics.LookupTransfers++
			e.Metrics.MolsDispatch += e.Cfg.LookupCost
		} else {
			e.Metrics.IndirectMisses++
		}
	case !indirect && e.Cfg.EnableChaining:
		if ch := cur.Chained(exit); ch != nil && ch.Valid {
			next = ch
			e.Metrics.ChainTransfers++
		} else if next = e.Cache.Lookup(target); next != nil {
			e.Cache.Chain(cur, exit, next)
			e.Metrics.LookupTransfers++
			e.Metrics.MolsDispatch += e.Cfg.LookupCost
		}
	default:
		if next = e.Cache.Lookup(target); next != nil {
			e.Metrics.LookupTransfers++
			e.Metrics.MolsDispatch += e.Cfg.LookupCost
		}
	}
	return next
}

// injectAt consults the configured fault injector at a commit boundary and,
// when an action fires, routes it through the engine's real recovery paths.
// It reports whether control must return to the dispatcher. The machine holds
// the committed state (nothing speculative is in flight at a boundary), so
// storing it back is always safe.
func (e *Engine) injectAt(cur *tcache.Entry) bool {
	cpu := &e.Interp.CPU
	switch e.Cfg.Injector.TexecBoundary(cur.T.Entry, e.Metrics.GuestTotal()) {
	case InjectRollback:
		e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
		cpu.EIP = e.Machine.CommittedEIP
		e.Metrics.Faults[vliw.FIRQ]++
		cur.FaultCounts[vliw.FIRQ]++
		e.traceFault(EvFault, cur.T.Entry, vliw.FIRQ)
		e.handleFault(cur, vliw.Outcome{Fault: vliw.FIRQ, Exit: -1, GIdx: -1})
		return true
	case InjectAliasFault:
		e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
		cpu.EIP = e.Machine.CommittedEIP
		e.Metrics.Faults[vliw.FAlias]++
		cur.FaultCounts[vliw.FAlias]++
		e.traceFault(EvFault, cur.T.Entry, vliw.FAlias)
		e.handleFault(cur, vliw.Outcome{Fault: vliw.FAlias, Exit: -1, GIdx: 0})
		return true
	case InjectEvict:
		e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
		cpu.EIP = e.Machine.CommittedEIP
		e.trace(EvInvalidate, cur.T.Entry, "injected eviction")
		e.Cache.Invalidate(cur)
		e.reconcileProtection(cur)
		return true
	case InjectPanic:
		// Commit the boundary state first so a recovering supervisor sees a
		// consistent CPU, then blow up the way a buggy host closure would.
		// The panic value is a pure function of this boundary, so replays
		// reproduce it verbatim.
		e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
		cpu.EIP = e.Machine.CommittedEIP
		panic(&InjectedPanic{Entry: cur.T.Entry, Retired: e.Metrics.GuestTotal()})
	}
	return false
}

// ImplicatedKey names the shared-store artifact to quarantine after a host
// panic: the content key of the translation most recently entered by
// translated execution. The panic may have originated elsewhere (the
// interpreter, the translator), but the executing translation is the best
// single suspect, and poisoning is cheap, TTL'd, and metrics-invisible, so a
// false positive costs only wall clock. ok is false when nothing has
// executed yet or the translation did not come from a shared store.
func (e *Engine) ImplicatedKey() (key xlate.Key, ok bool) {
	if e.curEnt == nil || e.curEnt.T == nil || !e.curEnt.T.HasSharedKey {
		return xlate.Key{}, false
	}
	return e.curEnt.T.SharedKey, true
}

// prologueOutcome is the result of running a self-revalidation prologue.
type prologueOutcome uint8

const (
	prologuePass prologueOutcome = iota
	prologueFail
	prologueIRQ
	prologueErr
)

// runPrologue executes a self-revalidation prologue (§3.6.2).
func (e *Engine) runPrologue(ent *tcache.Entry) prologueOutcome {
	code, pass, fail, err := ent.T.Prologue()
	if err != nil {
		e.err = err
		return prologueErr
	}
	mols0 := e.Machine.Mols
	out := e.Machine.Exec(code)
	e.Metrics.MolsPrologue += e.Machine.Mols - mols0
	switch {
	case out.Fault == vliw.FIRQ:
		// Deliver at the committed boundary; the dispatcher comes back and
		// re-runs the prologue afterwards.
		e.deliverIRQ()
		return prologueIRQ
	case out.Fault != vliw.FNone:
		e.err = fmt.Errorf("cms: prologue fault %v at %#x", out.Fault, ent.T.Entry)
		return prologueErr
	case out.Exit == pass:
		return prologuePass
	case out.Exit == fail:
		return prologueFail
	}
	e.err = fmt.Errorf("cms: prologue exit %d unknown", out.Exit)
	return prologueErr
}

// reprotect restores write protection over a translation's source bytes
// after a successful revalidation.
func (e *Engine) reprotect(t *xlate.Translation) {
	chunks := t.Chunks()
	for _, p := range t.Pages() {
		if fg, _ := e.Plat.Bus.IsFineGrain(p); fg {
			e.Plat.Bus.AddFineGrainChunks(p, chunks[p])
		} else if e.Cfg.EnableFineGrain {
			e.Plat.Bus.SetFineGrain(p, e.Cache.PageChunkMask(p)|chunks[p])
		} else {
			e.Plat.Bus.Protect(p)
		}
	}
}

// deliverIRQ lets the interpreter deliver a pending interrupt at the
// current (committed) boundary.
func (e *Engine) deliverIRQ() {
	cpu := &e.Interp.CPU
	e.Machine.StoreGuest(&cpu.Regs, &cpu.Flags)
	cpu.EIP = e.Machine.CommittedEIP
	res := e.Interp.Step()
	e.Metrics.MolsInterp += res.Cost
	if res.IRQ {
		e.Metrics.Interrupts++
	}
	if res.Stop == interp.StopError {
		e.err = res.Err
	}
	if res.Retired {
		e.Metrics.GuestInterp++
	}
}
