package cms

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/interp"
	"cms/internal/vliw"
)

// build assembles a program onto a fresh platform and returns an engine.
func build(t *testing.T, src string, cfg Config, disk []byte) *Engine {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	plat := dev.NewPlatform(1<<21, disk)
	plat.Bus.WriteRaw(p.Org, p.Image)
	e := New(plat, p.Entry(), cfg)
	e.CPU().Regs[guest.ESP] = 0x100000
	return e
}

func runToHalt(t *testing.T, e *Engine, budget uint64) {
	t.Helper()
	if err := e.Run(budget); err != nil {
		t.Fatalf("engine: %v (eip %#x)", err, e.CPU().EIP)
	}
	if !e.CPU().Halted {
		t.Fatalf("engine did not halt within %d instructions", budget)
	}
}

// equiv runs src under the engine and under pure interpretation and
// compares final registers, flags, console output, and a memory window.
func equiv(t *testing.T, src string, cfg Config) *Engine {
	t.Helper()
	e := build(t, src, cfg, nil)
	runToHalt(t, e, 10_000_000)

	ref := build(t, src, Config{NoTranslate: true}, nil)
	runToHalt(t, ref, 10_000_000)

	for r := guest.Reg(0); r < guest.NumRegs; r++ {
		if e.CPU().Regs[r] != ref.CPU().Regs[r] {
			t.Errorf("%s = %#x, reference %#x", r, e.CPU().Regs[r], ref.CPU().Regs[r])
		}
	}
	if e.CPU().Flags != ref.CPU().Flags {
		t.Errorf("flags = %#x, reference %#x", e.CPU().Flags, ref.CPU().Flags)
	}
	if got, want := e.Plat.Console.OutputString(), ref.Plat.Console.OutputString(); got != want {
		t.Errorf("console = %q, reference %q", got, want)
	}
	if got, want := e.Plat.Bus.ReadRaw(0x8000, 0x400), ref.Plat.Bus.ReadRaw(0x8000, 0x400); !bytes.Equal(got, want) {
		t.Error("data window mismatch")
	}
	return e
}

const hotLoop = `
.org 0x1000
	mov eax, 0
	mov ecx, 2000
loop:
	add eax, ecx
	mov [0x8000], eax
	mov ebx, [0x8000]
	dec ecx
	jne loop
	hlt
`

func TestHotLoopTranslatesAndSpeedsUp(t *testing.T) {
	e := equiv(t, hotLoop, DefaultConfig())
	if e.Metrics.Translations == 0 {
		t.Fatal("hot loop never translated")
	}
	if e.Metrics.GuestTexec < e.Metrics.GuestInterp {
		t.Errorf("texec %d < interp %d retires: loop not running translated",
			e.Metrics.GuestTexec, e.Metrics.GuestInterp)
	}

	ref := build(t, hotLoop, Config{NoTranslate: true}, nil)
	runToHalt(t, ref, 10_000_000)
	if e.Metrics.TotalMols() >= ref.Metrics.TotalMols() {
		t.Errorf("translation did not pay off: %d >= %d molecules",
			e.Metrics.TotalMols(), ref.Metrics.TotalMols())
	}
	t.Logf("translated %.2f mols/insn vs interpreted %.2f", e.Metrics.MPI(), ref.Metrics.MPI())
}

func TestChainingEliminatesDispatch(t *testing.T) {
	// Two hot blocks jumping to each other chain together.
	src := `
.org 0x1000
	mov ecx, 3000
a:
	add eax, 1
	jmp b
c:
	dec ecx
	jne a
	hlt
b:
	add ebx, 2
	jmp c
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.ChainTransfers == 0 {
		t.Error("no chain transfers observed")
	}
	// Chained transfers must dominate dispatcher returns once warm.
	if e.Metrics.ChainTransfers < e.Metrics.DispatchReturns {
		t.Errorf("chains %d < dispatcher returns %d",
			e.Metrics.ChainTransfers, e.Metrics.DispatchReturns)
	}
	// With chaining off, everything goes through the dispatcher.
	cfg := DefaultConfig()
	cfg.EnableChaining = false
	e2 := equiv(t, src, cfg)
	if e2.Metrics.ChainTransfers != 0 {
		t.Error("chaining disabled but chains happened")
	}
}

func TestCallsAndIndirectExits(t *testing.T) {
	equiv(t, `
.org 0x1000
	mov ecx, 800
	mov esi, 0
loop:
	mov eax, ecx
	call work
	add esi, eax
	dec ecx
	jne loop
	hlt
work:
	imul eax, 3
	ret
`, DefaultConfig())
}

func TestGuestFaultInHotCodeAdapts(t *testing.T) {
	// The divisor is zero every 16th iteration; the guest handler fixes it
	// up. The translation keeps faulting genuinely and CMS narrows around
	// the divide.
	src := `
.org 0x1000
_start:
	mov [0x100], fixup       ; IVT[#DE]
	mov ecx, 1200
	mov edi, 0
loop:
	mov eax, ecx
	mov edx, 0
	mov ebx, ecx
	and ebx, 15
	div ebx
	add edi, eax
	dec ecx
	jne loop
	hlt
fixup:
	mov ebx, 1
	iret
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.Faults[vliw.FGuest] == 0 {
		t.Error("no guest faults surfaced from translations")
	}
	if e.Metrics.GenuineGuestFaults == 0 {
		t.Error("genuine faults not recognized")
	}
	if e.Metrics.Adaptations[vliw.FGuest] == 0 {
		t.Error("no adaptive retranslation for recurring genuine faults")
	}
}

func TestAliasFaultAdaptation(t *testing.T) {
	// The two pointers always collide; after FaultThreshold alias faults
	// the site retranslates conservatively and stops faulting.
	src := `
.org 0x1000
	mov ebx, 0x8000
	mov edx, 0x8000
	mov ecx, 3000
loop:
	mov [ebx], ecx
	mov eax, [edx]
	add esi, eax
	dec ecx
	jne loop
	hlt
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.Faults[vliw.FAlias] == 0 {
		t.Error("alias hardware never fired")
	}
	if e.Metrics.Adaptations[vliw.FAlias] == 0 {
		t.Error("alias faults never adapted")
	}
	// After adaptation the faults must stop: far fewer faults than
	// iterations.
	if e.Metrics.Faults[vliw.FAlias] > 100 {
		t.Errorf("alias faults kept recurring: %d", e.Metrics.Faults[vliw.FAlias])
	}
}

func TestMMIOAdaptation(t *testing.T) {
	// The loop walks a pointer that starts in RAM and crosses into the
	// MMIO text buffer after it becomes hot, so the profile cannot warn
	// the translator.
	src := fmt.Sprintf(`
.org 0x1000
	mov ebx, 0x%x            ; starts 256 bytes below MMIO
	mov ecx, 512
loop:
	mov [ebx], ecx
	mov eax, [ebx]
	add esi, eax
	add ebx, 4
	dec ecx
	jne loop
	hlt
`, dev.ConsoleMMIOBase-256)
	e := equiv(t, src, DefaultConfig())
	specFaults := e.Metrics.Faults[vliw.FMMIOSpec] + e.Metrics.Faults[vliw.FMMIOOrder]
	if specFaults == 0 {
		t.Error("MMIO speculation never faulted")
	}
	// The text buffer must hold exactly what the reference wrote — no
	// duplicated or dropped device writes.
	ref := build(t, src, Config{NoTranslate: true}, nil)
	runToHalt(t, ref, 10_000_000)
	if !bytes.Equal(e.Plat.Console.Text(), ref.Plat.Console.Text()) {
		t.Error("device state diverged")
	}
}

func TestTimerInterruptsUnderTranslation(t *testing.T) {
	// The busy loop runs translated; timer interrupts roll back and are
	// delivered at precise boundaries until the handler has fired 5 times.
	src := `
.org 0x1000
_start:
	mov [0x180], tick        ; IVT[timer]
	mov eax, 400
	out 0x40, eax            ; period 400 instructions
	mov ecx, 0
busy:
	inc ebx
	cmp ecx, 5
	jne busy
	mov eax, 0
	out 0x40, eax
	hlt
tick:
	inc ecx
	iret
`
	e := build(t, src, DefaultConfig(), nil)
	runToHalt(t, e, 10_000_000)
	if e.CPU().Regs[guest.ECX] != 5 {
		t.Fatalf("handler ran %d times, want 5", e.CPU().Regs[guest.ECX])
	}
	if e.Metrics.Faults[vliw.FIRQ] == 0 {
		t.Error("no interrupt ever interrupted a translation")
	}
	if e.Metrics.Interrupts != 5 {
		t.Errorf("interrupts delivered = %d", e.Metrics.Interrupts)
	}
}

func TestSMCMixedCodeAndData(t *testing.T) {
	// Data lives on the same page as the hot loop (mixed code and data,
	// the Windows/9x driver pattern): stores keep hitting the protected
	// page. Fine-grain protection must contain the cost.
	src := `
.org 0x1000
	mov ecx, 3000
	mov ebx, data
loop:
	mov [ebx], ecx           ; store to the code page
	add eax, [ebx]
	dec ecx
	jne loop
	hlt
	.align 128
data:
	.dd 0
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.ProtFaults == 0 {
		t.Error("no protection faults for mixed code and data")
	}
	if e.Metrics.FineGrainConversions == 0 {
		t.Error("page never converted to fine-grain")
	}
	// Fine-grain must make the fault count tiny relative to iterations.
	if e.Metrics.ProtFaults > 50 {
		t.Errorf("fine-grain did not contain faults: %d", e.Metrics.ProtFaults)
	}

	// Without fine-grain, every translated store re-faults after paying
	// full invalidation, so protection faults multiply.
	cfg := DefaultConfig()
	cfg.EnableFineGrain = false
	e2 := equiv(t, src, cfg)
	if e2.Metrics.ProtFaults <= e.Metrics.ProtFaults {
		t.Errorf("coarse faults (%d) not worse than fine-grain (%d)",
			e2.Metrics.ProtFaults, e.Metrics.ProtFaults)
	}
}

// TestSMCMidChainTeardown rewrites a block that sits in the middle of a hot
// chain: the inner loop's translation ends at `call bfunc` and chains to
// bfunc's translation, whose immediate the guest patches every outer
// iteration. Every rewrite must invalidate only bfunc's translation, unchain
// the incoming link, and retranslate from the new bytes — under the compiled
// backend this is exactly the "never execute stale compiled code" obligation,
// and the final sums prove every patched immediate took effect.
func TestSMCMidChainTeardown(t *testing.T) {
	src := `
.org 0x1000
_start:
	mov edi, 0
	mov edx, 40              ; outer iterations
outer:
	mov [bpatch+2], edx      ; rewrite the imm32 inside chained block bfunc
	mov ecx, 200             ; hot inner loop
	mov eax, 0
inner:
	call bfunc
	dec ecx
	jne inner
	add edi, eax
	dec edx
	jne outer
	hlt
	.align 128
bfunc:
bpatch:
	add eax, 0               ; patched every outer iteration
	ret
`
	// Stylized-SMC adoption would absorb the rewrites without invalidation;
	// turn it off so every patch exercises the full teardown path.
	cfg := DefaultConfig()
	cfg.EnableStylized = false
	e := equiv(t, src, cfg)

	want := uint32(0)
	for d := uint32(1); d <= 40; d++ {
		want += 200 * d
	}
	if e.CPU().Regs[guest.EDI] != want {
		t.Fatalf("edi = %d, want %d (stale code executed?)", e.CPU().Regs[guest.EDI], want)
	}
	if e.Metrics.ChainTransfers == 0 {
		t.Error("blocks never chained: test lost its teardown target")
	}
	if e.Metrics.ProtFaults == 0 {
		t.Error("no protection faults: SMC never detected")
	}
	if e.Cache.Stats.Unchains == 0 {
		t.Error("mid-chain invalidation never unchained an incoming link")
	}
	if e.Cache.Stats.Invalidations == 0 {
		t.Error("rewritten block never invalidated")
	}

	// The teardown machinery is backend-invariant: the interpretive run
	// makes exactly the same simulated decisions.
	icfg := cfg
	icfg.EnableCompiledBackend = false
	ei := equiv(t, src, icfg)
	if !reflect.DeepEqual(e.Metrics, ei.Metrics) {
		t.Errorf("Metrics diverged across backends:\ncompiled %+v\ninterp   %+v", e.Metrics, ei.Metrics)
	}
	if e.Cache.Stats != ei.Cache.Stats {
		t.Errorf("cache stats diverged across backends:\ncompiled %+v\ninterp   %+v",
			e.Cache.Stats, ei.Cache.Stats)
	}
}

// smcPatcherProg patches the immediate of an instruction inside a hot loop
// on every outer iteration — the Doom/Premiere idiom of §3.6.4.
const smcPatcherProg = `
.org 0x1000
_start:
	mov edi, 0
	mov edx, 40              ; outer iterations
outer:
	mov [patchme+2], edx     ; rewrite the imm32 of "add eax, imm"
	mov ecx, 200             ; hot inner loop
	mov eax, 0
inner:
patchme:
	add eax, 0x1
	dec ecx
	jne inner
	add edi, eax
	dec edx
	jne outer
	hlt
`

func TestStylizedSMC(t *testing.T) {
	e := equiv(t, smcPatcherProg, DefaultConfig())
	// Expected result: sum over d of 200*d for d = 40..1.
	want := uint32(0)
	for d := uint32(1); d <= 40; d++ {
		want += 200 * d
	}
	if e.CPU().Regs[guest.EDI] != want {
		t.Fatalf("edi = %d, want %d", e.CPU().Regs[guest.EDI], want)
	}
	if e.Metrics.StylizedAdopts == 0 {
		t.Error("stylized SMC never adopted")
	}
	// Once stylized, retranslation stops: far fewer translations than
	// outer iterations.
	if e.Metrics.Translations > 25 {
		t.Errorf("stylized translation kept being rebuilt: %d translations",
			e.Metrics.Translations)
	}
}

func TestSelfRevalidation(t *testing.T) {
	// Writes to the code page target a *different* routine's bytes than
	// the hot one... simplest trigger: data store adjacent to the hot code
	// within the same chunk, so fine-grain cannot separate them.
	src := `
.org 0x1000
_start:
	mov edx, 60
outer:
	mov [scratch], edx       ; same 128-byte chunk as the loop body
	mov ecx, 300
	mov eax, 0
inner:
	add eax, 2
	dec ecx
	jne inner
	add edi, eax
	dec edx
	jne outer
	hlt
scratch:
	.dd 0
`
	e := equiv(t, src, DefaultConfig())
	if e.CPU().Regs[guest.EDI] != 60*600 {
		t.Fatalf("edi = %d", e.CPU().Regs[guest.EDI])
	}
	if e.Metrics.SelfRevalArms == 0 || e.Metrics.SelfRevalPasses == 0 {
		t.Errorf("self-revalidation unused: arms=%d passes=%d",
			e.Metrics.SelfRevalArms, e.Metrics.SelfRevalPasses)
	}
}

func TestTranslationGroups(t *testing.T) {
	// The program alternates between two versions of a hot routine's code
	// (the BLT-driver pattern of §3.6.5), by rewriting an opcode byte.
	src := `
.org 0x1000
_start:
	mov edx, 30
outer:
	; toggle the routine between "add eax,ecx" (0x20) and "sub eax,ecx" (0x24)
	mov ebx, edx
	and ebx, 1
	shl ebx, 2               ; 0 or 4
	add ebx, 0x20            ; opcode byte value
	mov esi, routine
	movb [esi], ebx
	mov ecx, 300
	mov eax, 1000
inner:
routine:
	add eax, ecx
	dec ecx
	jne inner
	add edi, eax
	dec edx
	jne outer
	hlt
`
	e := equiv(t, src, DefaultConfig())
	if e.Cache.Stats.GroupRetires == 0 {
		t.Error("no translations retired to groups")
	}
	if e.Metrics.GroupReuses == 0 {
		t.Error("translation groups never reused a version")
	}
}

func TestDMAInvalidation(t *testing.T) {
	// The disk image holds a routine that returns 2 in EAX; RAM initially
	// holds one that returns 1. The program runs the hot routine, DMA-loads
	// the new version over it, and runs it again.
	routineV2 := asm.NewBuilder(0x4000)
	routineV2.MovRI(guest.EAX, 2).Ret()
	img := make([]byte, dev.SectorSize)
	copy(img, routineV2.MustAssemble())

	src := `
.org 0x1000
_start:
	cli                      ; mask the disk-completion IRQ
	mov ebp, 0
	mov edx, 200
warm:
	call routine             ; make it hot (returns 1)
	add ebp, eax
	dec edx
	jne warm
	; DMA the new routine over the old one
	mov eax, 0
	out 0x1f0, eax           ; lba 0
	mov eax, routine
	out 0x1f4, eax           ; dest
	mov eax, 1
	out 0x1f8, eax           ; count
	out 0x1fc, eax           ; go
	call routine             ; must return 2 now
	mov esi, eax
	hlt
	.align 16
routine:
	mov eax, 1
	ret
`
	e := build(t, src, DefaultConfig(), img)
	runToHalt(t, e, 10_000_000)
	if e.CPU().Regs[guest.ESI] != 2 {
		t.Fatalf("stale translation executed after DMA: esi = %d", e.CPU().Regs[guest.ESI])
	}
	if e.CPU().Regs[guest.EBP] != 200 {
		t.Errorf("warmup sum = %d", e.CPU().Regs[guest.EBP])
	}
	if e.Metrics.DMAInvalidations == 0 {
		t.Error("DMA write did not invalidate")
	}
}

func TestForcedSelfCheckCorrectAndBigger(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BasePolicy.SelfCheck = true
	e := equiv(t, hotLoop, cfg)
	plain := equiv(t, hotLoop, DefaultConfig())
	if e.Metrics.TotalMols() <= plain.Metrics.TotalMols() {
		t.Errorf("self-checking not costlier: %d vs %d mols",
			e.Metrics.TotalMols(), plain.Metrics.TotalMols())
	}
}

func TestPolicyExperimentKnobs(t *testing.T) {
	// Disjoint-but-unprovable memory traffic: the store and load go through
	// different base registers, so only the alias hardware (or proven
	// disjointness, which is unavailable here) lets them reorder.
	prog := `
.org 0x1000
	mov ebx, 0x8000
	mov edx, 0x8800
	mov ecx, 3000
loop:
	mov [ebx+ecx*4], eax
	mov esi, [edx+ecx*4]
	add eax, esi
	add eax, 3
	dec ecx
	jne loop
	hlt
`
	base := equiv(t, prog, DefaultConfig())

	noReorder := DefaultConfig()
	noReorder.BasePolicy.NoReorderMem = true
	nr := equiv(t, prog, noReorder)

	noAlias := DefaultConfig()
	noAlias.BasePolicy.NoAliasHW = true
	na := equiv(t, prog, noAlias)

	if nr.Metrics.MolsTexec <= base.Metrics.MolsTexec {
		t.Errorf("suppressing reordering did not slow texec: %d <= %d",
			nr.Metrics.MolsTexec, base.Metrics.MolsTexec)
	}
	if na.Metrics.MolsTexec <= base.Metrics.MolsTexec {
		t.Errorf("disabling alias hw did not slow texec: %d <= %d",
			na.Metrics.MolsTexec, base.Metrics.MolsTexec)
	}
	// The alias run must not actually fault (the refs never overlap).
	if base.Metrics.Faults[vliw.FAlias] > 0 {
		t.Errorf("disjoint traffic faulted %d times", base.Metrics.Faults[vliw.FAlias])
	}
}

func TestBudgetExhaustion(t *testing.T) {
	e := build(t, ".org 0x1000\nself:\n jmp self\n", DefaultConfig(), nil)
	err := e.Run(10_000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestUnhandledGuestFaultPropagates(t *testing.T) {
	e := build(t, ".org 0x1000\n mov eax, 0\n div eax\n", DefaultConfig(), nil)
	if err := e.Run(1000); err == nil {
		t.Fatal("unhandled #DE must be an error")
	}
}

func TestFlowMetricsShape(t *testing.T) {
	e := equiv(t, hotLoop, DefaultConfig())
	m := &e.Metrics
	if m.DispatchToTexec == 0 || m.GuestTotal() == 0 || m.TotalMols() == 0 {
		t.Errorf("flow metrics empty: %+v", m)
	}
	if m.MPI() <= 0 {
		t.Error("MPI must be positive")
	}
	// Interpreter retires at least the threshold before translation.
	if m.GuestInterp < e.Cfg.HotThreshold {
		t.Errorf("interp retired only %d", m.GuestInterp)
	}
}

func TestInterpOnlyReferenceMode(t *testing.T) {
	e := equiv(t, hotLoop, Config{NoTranslate: true})
	if e.Metrics.Translations != 0 || e.Metrics.GuestTexec != 0 {
		t.Error("reference mode must not translate")
	}
}

// Regression guard: engine and interpreter agree on a broad instruction mix.
func TestBroadInstructionMix(t *testing.T) {
	equiv(t, `
.org 0x1000
	mov ecx, 600
	mov ebx, 0x8000
mix:
	mov eax, ecx
	shl eax, 3
	sar eax, 1
	neg eax
	not eax
	push eax
	pushf
	popf
	pop edx
	add [ebx], edx
	movb [ebx+7], eax
	movb esi, [ebx+7]
	test eax, esi
	lea edi, [ebx+ecx*2+4]
	xor edi, edx
	or edi, 1
	and edi, 0xffff
	imul edi, 3
	cmp edi, 0x8000
	adc edx, esi
	sbb edx, 5
	xchg edx, edi
	movsx ebp, [ebx+3]
	mov eax, edi
	cdq
	dec ecx
	jne mix
	hlt
`, DefaultConfig())
}

func TestConsoleOutputUnderTranslation(t *testing.T) {
	src := fmt.Sprintf(`
.org 0x1000
	mov ecx, 26
	mov eax, 'A'
print:
	out 0x%x, eax
	inc eax
	dec ecx
	jne print
	hlt
`, dev.ConsoleDataPort)
	e := equiv(t, src, DefaultConfig())
	if got := e.Plat.Console.OutputString(); got != "ABCDEFGHIJKLMNOPQRSTUVWXYZ" {
		t.Errorf("console = %q", got)
	}
}

func TestMetricsAccountingConsistency(t *testing.T) {
	e := equiv(t, hotLoop, DefaultConfig())
	ref := build(t, hotLoop, Config{NoTranslate: true}, nil)
	runToHalt(t, ref, 10_000_000)
	// Same program: both runs retire the same guest instruction count.
	if e.Metrics.GuestTotal() != ref.Metrics.GuestTotal() {
		t.Errorf("guest retires differ: %d vs %d",
			e.Metrics.GuestTotal(), ref.Metrics.GuestTotal())
	}
	// Interp-only run charges everything to the interpreter.
	if ref.Metrics.MolsTexec != 0 || ref.Metrics.MolsTranslate != 0 {
		t.Error("reference mode charged translation molecules")
	}
}

// The interpreter reference for a run must see identical profiles whether
// driven directly or via the engine's interp (sanity of shared plumbing).
func TestProfileFeedsTranslator(t *testing.T) {
	e := build(t, hotLoop, DefaultConfig(), nil)
	runToHalt(t, e, 10_000_000)
	if len(e.Interp.Prof.Heads) == 0 || len(e.Interp.Prof.Branches) == 0 {
		t.Error("profile empty")
	}
	var _ *interp.Profile = e.Interp.Prof
}

func TestTraceRecordsEngineEvents(t *testing.T) {
	e := build(t, smcPatcherProg, DefaultConfig(), nil)
	e.Trace = NewTrace(256)
	runToHalt(t, e, 10_000_000)
	if e.Trace.CountKind(EvTranslate) == 0 {
		t.Error("no translate events")
	}
	if e.Trace.CountKind(EvProtFault) == 0 {
		t.Error("no protection fault events")
	}
	if e.Trace.CountKind(EvStylized) == 0 {
		t.Error("no stylized adoption events")
	}
	var buf bytes.Buffer
	e.Trace.Write(&buf)
	out := buf.String()
	for _, want := range []string{"translate", "prot-fault", "stylized"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
	// The bound is honored.
	small := NewTrace(2)
	for i := 0; i < 5; i++ {
		small.add(Event{Kind: EvIRQ})
	}
	if len(small.Events()) != 2 || small.Dropped != 3 {
		t.Errorf("bound: %d events, %d dropped", len(small.Events()), small.Dropped)
	}
	// A nil trace is inert.
	var nilT *Trace
	nilT.add(Event{})
	if nilT.Events() != nil || nilT.CountKind(EvIRQ) != 0 {
		t.Error("nil trace must be inert")
	}
}

func TestInterpOnlyNarrowing(t *testing.T) {
	// A hot loop whose FIRST instruction faults genuinely every iteration:
	// the site must degenerate to interpretation (the zero-instruction
	// translation of §3.2).
	src := `
.org 0x1000
_start:
	mov [0x100], fixup       ; IVT[#DE]
	mov ecx, 800
	mov esi, 0
loop:
	mov eax, 100
	mov edx, 0
	mov ebx, 0
	call divider
	add esi, eax
	dec ecx
	jne loop
	hlt
divider:
	div ebx                  ; first insn of a hot trace; always #DE
	ret
fixup:
	mov ebx, 5
	iret
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.GenuineGuestFaults == 0 {
		t.Error("no genuine faults")
	}
	if e.CPU().Regs[guest.ESI] != 800*20 {
		t.Errorf("esi = %d", e.CPU().Regs[guest.ESI])
	}
}

func TestHostGenerationEquivalence(t *testing.T) {
	// The TM8000 host runs the same guest code with identical results.
	cfg := DefaultConfig()
	cfg.Host = vliw.TM8000()
	e := equiv(t, hotLoop, cfg)
	base := equiv(t, hotLoop, DefaultConfig())
	if e.Metrics.MolsTexec >= base.Metrics.MolsTexec {
		t.Errorf("wider host not faster: %d vs %d texec mols",
			e.Metrics.MolsTexec, base.Metrics.MolsTexec)
	}
}

func TestTCacheFlushUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TCacheCapAtoms = 40 // absurdly small: constant flushing
	e := equiv(t, hotLoop, cfg)
	if e.Cache.Stats.Flushes == 0 {
		t.Error("tiny cache never flushed")
	}
}

func TestJumpTableIndirectHotPath(t *testing.T) {
	// A hot computed-goto interpreter loop: indirect exits every iteration
	// (no chaining), still correct and still faster than interpretation.
	src := `
.org 0x1000
_start:
	mov ecx, 3000
	mov ebp, 7
dispatch:
	mov eax, ebp
	and eax, 3
	mov ebx, table
	jmp [ebx+eax*4]
op0:
	add edi, 1
	jmp next
op1:
	add edi, 3
	jmp next
op2:
	xor edi, ebp
	jmp next
op3:
	shl edi, 1
	and edi, 0xffff
next:
	imul ebp, 1103515245
	add ebp, 12345
	shr ebp, 3
	dec ecx
	jne dispatch
	hlt
	.align 4
table:
	.dd op0, op1, op2, op3
`
	e := equiv(t, src, DefaultConfig())
	if e.Metrics.LookupTransfers == 0 {
		t.Error("indirect exits never looked up successors")
	}
	ref := build(t, src, Config{NoTranslate: true}, nil)
	runToHalt(t, ref, 10_000_000)
	if e.Metrics.TotalMols() >= ref.Metrics.TotalMols() {
		t.Error("indirect-heavy code did not benefit from translation")
	}
}

func TestSerializeAdaptationSticks(t *testing.T) {
	// MMIO loads through a moving pointer that crosses in and out of the
	// text buffer: after adaptation, the site stops faulting.
	src := fmt.Sprintf(`
.org 0x1000
	mov ecx, 2000
	mov esi, 0
loop:
	mov ebx, ecx
	and ebx, 0xff
	shl ebx, 2
	add ebx, 0x%x            ; base swings below/inside MMIO
	mov eax, [ebx]
	add esi, eax
	dec ecx
	jne loop
	hlt
`, dev.ConsoleMMIOBase-0x200)
	e := equiv(t, src, DefaultConfig())
	total := e.Metrics.Faults[vliw.FMMIOSpec] + e.Metrics.Faults[vliw.FMMIOOrder]
	if total == 0 {
		t.Skip("schedule happened to keep the load in order")
	}
	if total > 200 {
		t.Errorf("MMIO faults never adapted away: %d", total)
	}
}
