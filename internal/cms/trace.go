package cms

import (
	"fmt"
	"io"

	"cms/internal/vliw"
)

// EventKind classifies engine trace events.
type EventKind uint8

// The trace event kinds, covering every edge of the Figure 1 control flow
// plus the SMC machinery.
const (
	EvTranslate EventKind = iota // a region was translated
	EvGroupReuse
	EvFault // a translation faulted and rolled back
	EvAdapt // adaptive retranslation triggered
	EvInvalidate
	EvProtFault
	EvFineGrain // page converted to fine-grain protection
	EvArm       // self-revalidation armed
	EvRevalPass
	EvRevalFail
	EvSelfCheckFail
	EvStylized // stylized-SMC immediates adopted
	EvDMA      // DMA invalidated a page
	EvIRQ      // interrupt delivered
	EvFlush    // translation cache flushed
)

var eventNames = [...]string{
	"translate", "group-reuse", "fault", "adapt", "invalidate", "prot-fault",
	"fine-grain", "arm", "reval-pass", "reval-fail", "selfcheck-fail",
	"stylized", "dma", "irq", "flush",
}

// String names the event kind.
func (k EventKind) String() string { return eventNames[k] }

// Event is one engine trace record.
type Event struct {
	Kind EventKind
	// Addr is the guest address the event concerns (translation entry,
	// faulting address, page base...).
	Addr uint32
	// Fault is the fault class for EvFault/EvAdapt events.
	Fault vliw.FaultClass
	// Detail carries a short free-form note.
	Detail string
	// Guest is the retired-instruction timestamp.
	Guest uint64
}

// String renders the event as one trace line.
func (e Event) String() string {
	s := fmt.Sprintf("[%10d] %-14s %#x", e.Guest, e.Kind, e.Addr)
	if e.Kind == EvFault || e.Kind == EvAdapt {
		s += " " + e.Fault.String()
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace is a bounded event recorder. A nil *Trace is valid and records
// nothing, so the engine can trace unconditionally.
type Trace struct {
	events []Event
	cap    int
	// Dropped counts events lost to the bound.
	Dropped uint64
}

// NewTrace returns a trace keeping at most capacity events (default 4096).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Trace{cap: capacity}
}

func (t *Trace) add(e Event) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap {
		t.Dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Write renders the trace to w, one event per line.
func (t *Trace) Write(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e)
	}
	if t != nil && t.Dropped > 0 {
		fmt.Fprintf(w, "... %d events dropped (raise the trace capacity)\n", t.Dropped)
	}
}

// CountKind returns how many events of a kind were recorded.
func (t *Trace) CountKind(k EventKind) int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// trace records an event with the current retired-instruction timestamp.
func (e *Engine) trace(k EventKind, addr uint32, detail string) {
	if e.Trace == nil {
		return
	}
	e.Trace.add(Event{Kind: k, Addr: addr, Detail: detail, Guest: e.Metrics.GuestTotal()})
}

func (e *Engine) traceFault(k EventKind, addr uint32, class vliw.FaultClass) {
	if e.Trace == nil {
		return
	}
	e.Trace.add(Event{Kind: k, Addr: addr, Fault: class, Guest: e.Metrics.GuestTotal()})
}
