package cms

import "fmt"

// Fault-injection hooks. The paper's recovery machinery is exercised in
// production only when the guest happens to trip it; the hooks below let a
// test harness (internal/fuzzer) force each recovery path at chosen commit
// boundaries, deterministically and replayably from a seed. The injected
// events ride the engine's REAL recovery code — a forced rollback takes the
// same path as a pending-interrupt rollback, a forced alias fault the same
// path as an alias-hardware trap — so injection changes *when* recovery runs,
// never *what* it does. Final guest state must therefore be identical with
// and without injection (the fuzzer's oracle asserts exactly that); only the
// simulated Metrics move, since recovery work is charged where it happens.

// InjectAction selects what, if anything, to force at one commit boundary.
type InjectAction uint8

const (
	// InjectNone: execute normally.
	InjectNone InjectAction = iota
	// InjectRollback abandons the translation at the committed boundary and
	// takes one interpreter step — the spurious-wakeup form of the §3.3
	// interrupt rollback (if an interrupt really is pending it is delivered;
	// otherwise one instruction is interpreted and dispatch resumes).
	InjectRollback
	// InjectAliasFault synthesizes an alias-hardware fault (§3.1) before the
	// translation body runs: the region is re-interpreted and the adaptive
	// retranslation ladder advances exactly as for a genuine alias trap.
	InjectAliasFault
	// InjectEvict invalidates the translation at the committed boundary —
	// forced translation-cache eviction mid-chain. The next dispatch
	// retranslates (or re-interprets) from the same boundary.
	InjectEvict
	// InjectPanic panics on the engine goroutine with an *InjectedPanic —
	// the chaos harness's stand-in for a host bug in a compiled closure or
	// the engine itself. Unlike the recovery-path actions above it is NOT
	// architecturally invisible: it exists so the farm's panic-quarantine
	// and retry machinery can be driven deterministically. The panic value
	// is a pure function of the boundary it fires at, so a replay with the
	// same schedule reproduces the identical panic.
	InjectPanic
)

// InjectedPanic is the value an InjectPanic action panics with.
type InjectedPanic struct {
	Entry   uint32 // translation entry executing at the boundary
	Retired uint64 // guest instructions retired when it fired
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("injected panic at %#x after %d guest insns", p.Entry, p.Retired)
}

// Injector is consulted by the engine at every translated-execution commit
// boundary: before the first translation of a dispatch and again at every
// chain transfer. Implementations must be deterministic functions of their
// own state and the arguments (the fuzzer derives periodic schedules from a
// seed). Called only from the engine's goroutine.
type Injector interface {
	// TexecBoundary is offered the translation entry about to execute and
	// the retired guest-instruction count at this boundary.
	TexecBoundary(entry uint32, guestRetired uint64) InjectAction
}
