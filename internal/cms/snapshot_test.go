package cms

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"cms/internal/dev"
	"cms/internal/tcache"
	"cms/internal/xlate"
)

// snapLoop retires enough instructions that a first-poll cancel always
// lands mid-run with the hot loop already translated.
const snapLoop = `
.org 0x1000
	mov eax, 0
	mov ecx, 40000
loop:
	add eax, ecx
	mov [0x8000], eax
	mov ebx, [0x8000]
	dec ecx
	jne loop
	hlt
`

// cancelOnce returns a Cancel hook that fires at the first poll boundary
// and never again — the capture engine preempts, the restored engine runs.
func cancelOnce() func() bool {
	fired := false
	return func() bool {
		if fired {
			return false
		}
		fired = true
		return true
	}
}

// captureMidRun runs src until the first cancel boundary and exports the
// engine. The platform is left exactly as captured (the engine stopped at a
// committed boundary), so restoring onto it is legal.
func captureMidRun(t *testing.T, cfg Config, budget uint64) (*Engine, *EngineState) {
	t.Helper()
	cfg.Cancel = cancelOnce()
	e := build(t, snapLoop, cfg, nil)
	if err := e.Run(budget); !errors.Is(err, ErrCancelled) {
		t.Fatalf("capture run: %v, want ErrCancelled", err)
	}
	if e.CPU().Halted {
		t.Fatal("cancel landed after the halt — nothing mid-run to capture")
	}
	st, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return e, st
}

// TestEngineExportRestoreMidRun is the in-package half of the snapshot
// contract: export at a cancel boundary, rebuild with RestoreEngine on the
// captured platform, finish, and match an uninterrupted run bit-for-bit —
// registers, flags, and the full Metrics struct.
func TestEngineExportRestoreMidRun(t *testing.T) {
	const budget = 10_000_000
	solo := build(t, snapLoop, DefaultConfig(), nil)
	runToHalt(t, solo, budget)

	e, st := captureMidRun(t, DefaultConfig(), budget)
	re, err := RestoreEngine(e.Plat, DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	if re.Budget() != budget {
		t.Fatalf("restored budget = %d, want %d", re.Budget(), budget)
	}
	runToHalt(t, re, budget)
	if re.CPU().Regs != solo.CPU().Regs || re.CPU().Flags != solo.CPU().Flags {
		t.Fatalf("restored arch state diverged: %v vs %v", re.CPU().Regs, solo.CPU().Regs)
	}
	if !reflect.DeepEqual(re.Metrics, solo.Metrics) {
		t.Fatalf("restored Metrics diverged:\nrestored %+v\nsolo     %+v", re.Metrics, solo.Metrics)
	}
}

// TestEngineRestoreRehydratesThroughStore pins both rehydration paths: a
// warm shared store serves the captured translations as hits, a cold one
// retranslates as misses, and the continuation is bit-identical either way.
func TestEngineRestoreRehydratesThroughStore(t *testing.T) {
	const budget = 10_000_000
	solo := build(t, snapLoop, DefaultConfig(), nil)
	runToHalt(t, solo, budget)

	warm := tcache.NewShared(0)
	cfg := DefaultConfig()
	cfg.SharedStore = warm
	e, st := captureMidRun(t, cfg, budget)
	if len(st.Cache.Entries) == 0 {
		t.Fatal("capture carries no translations — the store paths are untested")
	}

	rcfg := DefaultConfig()
	rcfg.SharedStore = warm
	re, err := RestoreEngine(e.Plat, rcfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if ws := warm.Stats(); ws.RehydrateHits == 0 {
		t.Fatalf("warm store rehydrated with no hits: %+v", ws)
	}
	if hits, _ := re.SharedStats(); hits == 0 {
		t.Fatal("restored engine's shared-hit counter did not move")
	}
	runToHalt(t, re, budget)
	if !reflect.DeepEqual(re.Metrics, solo.Metrics) {
		t.Fatal("warm-store restore diverged from solo Metrics")
	}

	// Cold store: same state, every translation rebuilt from scratch.
	ccfg := DefaultConfig()
	ccfg.SharedStore = tcache.NewShared(0)
	// Round-trip the captured platform through the dev snapshot layer so the
	// second restore gets its own bus — restoring two engines onto one
	// platform would alias guest memory.
	plat2, err := dev.RestorePlatform(e.Plat.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RestoreEngine(plat2, ccfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if cs := ccfg.SharedStore.Stats(); cs.RehydrateMisses == 0 {
		t.Fatalf("cold store rehydrated with no misses: %+v", cs)
	}
	runToHalt(t, rc, budget)
	if !reflect.DeepEqual(rc.Metrics, solo.Metrics) {
		t.Fatal("cold-store restore diverged from solo Metrics")
	}
}

// TestEngineExportErrors pins the export-time refusals: a running pipeline
// and an injector that cannot ride a snapshot.
func TestEngineExportErrors(t *testing.T) {
	e := build(t, snapLoop, DefaultConfig(), nil)
	e.pipe = new(xlate.Pipeline)
	if _, err := e.ExportState(); err == nil || !strings.Contains(err.Error(), "pipeline") {
		t.Fatalf("export with live pipeline: %v", err)
	}
	e.pipe = nil

	cfg := DefaultConfig()
	cfg.Injector = statelessInjector{}
	ei := build(t, snapLoop, cfg, nil)
	if _, err := ei.ExportState(); err == nil || !strings.Contains(err.Error(), "injector") {
		t.Fatalf("export with stateless injector: %v", err)
	}
}

// statelessInjector implements Injector but not StatefulInjector.
type statelessInjector struct{}

func (statelessInjector) TexecBoundary(uint32, uint64) InjectAction { return InjectNone }

// TestEngineRestoreErrors pins the restore-time refusals: incomplete state,
// a resume point naming an uncached translation, and injector state without
// a matching StatefulInjector in the config.
func TestEngineRestoreErrors(t *testing.T) {
	e, st := captureMidRun(t, DefaultConfig(), 10_000_000)

	if _, err := RestoreEngine(e.Plat, DefaultConfig(), nil); err == nil {
		t.Fatal("nil state restored")
	}
	if _, err := RestoreEngine(e.Plat, DefaultConfig(), &EngineState{}); err == nil {
		t.Fatal("empty state restored")
	}

	bad := *st
	bad.Resume = ResumeState{Valid: true, Entry: 0xdead0}
	if _, err := RestoreEngine(e.Plat, DefaultConfig(), &bad); err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("resume to uncached entry: %v", err)
	}

	inj := *st
	inj.Injector = []byte("schedule")
	if _, err := RestoreEngine(e.Plat, DefaultConfig(), &inj); err == nil || !strings.Contains(err.Error(), "injector") {
		t.Fatalf("injector state without injector: %v", err)
	}
}
