package cms

import (
	"cms/internal/interp"
	"cms/internal/tcache"
	"cms/internal/vliw"
)

// handleFault is the recovery path of §3: the machine has already rolled
// back to the last committed boundary (cpu state restored, CommittedEIP set
// by the caller). Infrequent faults are simply absorbed by interpreting the
// region; recurring ones trigger adaptive retranslation.
func (e *Engine) handleFault(ent *tcache.Entry, out vliw.Outcome) {
	e.maybeQuarantine(ent)
	switch out.Fault {
	case vliw.FIRQ:
		// Deliver the pending interrupt at the consistent boundary (§3.3).
		// Interrupts never trigger adaptive retranslation.
		res := e.Interp.Step()
		e.Metrics.MolsInterp += res.Cost
		if res.Stop == interp.StopError {
			e.err = res.Err
		}
		if res.IRQ {
			e.Metrics.Interrupts++
			e.trace(EvIRQ, e.Interp.CPU.EIP, "")
		}
		if res.Retired {
			e.Metrics.GuestInterp++
		}
		return
	case vliw.FBadCode:
		e.err = out.Err
		return
	}

	// Re-execute the region's instructions in the interpreter, observing
	// whether the hardware fault was genuine (§3.2).
	genuine := e.interpretRegion(ent, out)

	if out.Fault == vliw.FGuest {
		if genuine {
			e.Metrics.GenuineGuestFaults++
		} else {
			e.Metrics.SpecGuestFaults++
			ent.SpecGuestFaults++
		}
	}

	if e.shouldAdapt(ent, out, genuine) {
		e.adapt(ent, out, genuine)
	}
}

// maybeQuarantine poisons a shared artifact's content key when one installed
// copy of it has absorbed RollbackStormThreshold rollback faults — a rollback
// storm. Every fault class in this engine recovers by rolling back to the
// committed boundary, so the per-entry fault counters ARE the storm signal.
// Poisoning fires exactly once, at the crossing, and is wall-clock-only: the
// other VMs simply translate the region privately until the TTL lapses, so
// one artifact that keeps blowing up cannot keep cascading across the farm.
func (e *Engine) maybeQuarantine(ent *tcache.Entry) {
	th := e.Cfg.RollbackStormThreshold
	if th == 0 || e.Cfg.SharedStore == nil || !ent.T.HasSharedKey {
		return
	}
	var total uint32
	for _, n := range ent.FaultCounts {
		total += n
	}
	if total == th {
		e.Cfg.SharedStore.Poison(ent.T.SharedKey, e.Cfg.PoisonTTL)
		e.trace(EvInvalidate, ent.T.Entry, "rollback storm: shared key quarantined")
	}
}

// shouldAdapt applies the fault-frequency threshold.
func (e *Engine) shouldAdapt(ent *tcache.Entry, out vliw.Outcome, genuine bool) bool {
	switch out.Fault {
	case vliw.FGuest:
		if genuine {
			return genuineGuestFaults(ent) >= e.Cfg.FaultThreshold
		}
		return ent.SpecGuestFaults >= e.Cfg.FaultThreshold
	case vliw.FProt:
		// Protection faults are handled by the SMC machinery during
		// re-interpretation, not by policy adaptation.
		return false
	default:
		return ent.FaultCounts[out.Fault] >= e.Cfg.FaultThreshold
	}
}

// genuineGuestFaults approximates per-entry genuine-fault counting: the
// entry's guest-fault count minus its speculative share.
func genuineGuestFaults(ent *tcache.Entry) uint32 {
	total := ent.FaultCounts[vliw.FGuest]
	if ent.SpecGuestFaults >= total {
		return 0
	}
	return total - ent.SpecGuestFaults
}

// adapt performs adaptive retranslation (§3.2-§3.5): it advances the
// entry's site policy ladder for the fault class and invalidates the
// translation so the next dispatch rebuilds it conservatively.
func (e *Engine) adapt(ent *tcache.Entry, out vliw.Outcome, genuine bool) {
	s := e.site(ent.T.Entry)
	e.Metrics.Adaptations[out.Fault]++
	e.traceFault(EvAdapt, ent.T.Entry, out.Fault)

	var insnAddr uint32
	if out.GIdx >= 0 && out.GIdx < len(ent.T.Insns) {
		insnAddr = ent.T.Insns[out.GIdx].Addr
	}

	if out.Fault == vliw.FGuest && genuine {
		// Narrow the region around the faulting instruction (§3.2): the
		// preceding instructions keep a large, aggressive region; the
		// faulter eventually stands alone and is interpreted.
		switch {
		case out.GIdx <= 0:
			s.interpOnly = true
		default:
			s.policy.MaxInsns = out.GIdx
		}
	} else {
		s.adaptClass(out.Fault, insnAddr, len(ent.T.Insns))
	}
	e.Cache.Invalidate(ent)
	e.reconcileProtection(ent)
}

// interpretRegion re-executes the faulting translation's instructions in
// the interpreter, from the committed boundary until control leaves the
// region (or a step bound, for loop regions). It reports whether a genuine
// guest exception of the faulting class was delivered.
func (e *Engine) interpretRegion(ent *tcache.Entry, out vliw.Outcome) bool {
	genuine := false
	limit := len(ent.T.Insns) + 8
	for i := 0; i < limit; i++ {
		if e.Interp.CPU.Halted || e.err != nil {
			break
		}
		if !ent.T.Covers(e.Interp.CPU.EIP) {
			break
		}
		res := e.Interp.Step()
		e.Metrics.MolsInterp += res.Cost
		switch res.Stop {
		case interp.StopError:
			e.err = res.Err
			return genuine
		case interp.StopProt:
			e.resolveProt(res.Prot.Addr, res.Prot.Size)
			continue
		}
		if res.Retired {
			e.Metrics.GuestInterp++
		}
		if res.IRQ {
			e.Metrics.Interrupts++
		}
		if out.Fault == vliw.FGuest && res.Vector == out.GuestVec && !res.IRQ && res.Vector >= 0 {
			genuine = true
			// The exception handler now runs; control left the region.
			break
		}
	}
	return genuine
}
