package cms

import (
	"runtime"
	"testing"
)

// pipelineProgs are the programs the determinism tests sweep: a plain hot
// loop, the stylized-SMC patcher (source changes while translations may be
// in flight), and the indirect-jump-table interpreter loop.
var pipelineProgs = map[string]string{
	"hotLoop": hotLoop,
	"smc":     smcPatcherProg,
	"jumpTable": `
.org 0x1000
_start:
	mov ecx, 3000
	mov ebp, 7
dispatch:
	mov eax, ebp
	and eax, 3
	mov ebx, table
	jmp [ebx+eax*4]
op0:
	add edi, 1
	jmp next
op1:
	add edi, 3
	jmp next
op2:
	xor edi, ebp
	jmp next
op3:
	shl edi, 1
	and edi, 0xffff
next:
	imul ebp, 1103515245
	add ebp, 12345
	shr ebp, 3
	dec ecx
	jne dispatch
	hlt
	.align 4
table:
	.dd op0, op1, op2, op3
`,
}

// runPipelined executes one program with the given worker count and returns
// the finished engine.
func runPipelined(t *testing.T, src string, workers int) *Engine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PipelineWorkers = workers
	e := build(t, src, cfg, nil)
	runToHalt(t, e, 10_000_000)
	return e
}

// TestPipelineDeterministicAcrossWorkerCounts is the tentpole's determinism
// guarantee: simulated Metrics and final architectural state are
// bit-identical whether one worker or every host core runs the translator.
func TestPipelineDeterministicAcrossWorkerCounts(t *testing.T) {
	many := runtime.NumCPU()
	if many < 2 {
		many = 2
	}
	for name, src := range pipelineProgs {
		t.Run(name, func(t *testing.T) {
			one := runPipelined(t, src, 1)
			n := runPipelined(t, src, many)
			if one.Metrics != n.Metrics {
				t.Errorf("Metrics differ between 1 and %d workers:\n 1: %+v\n%2d: %+v",
					many, one.Metrics, many, n.Metrics)
			}
			if one.Interp.CPU != n.Interp.CPU {
				t.Errorf("final CPU state differs between 1 and %d workers:\n 1: %+v\n%2d: %+v",
					many, one.Interp.CPU, many, n.Interp.CPU)
			}
			// Repeat runs with the same worker count must agree too.
			again := runPipelined(t, src, many)
			if n.Metrics != again.Metrics {
				t.Errorf("Metrics differ between two runs at %d workers", many)
			}
		})
	}
}

// TestPipelineMatchesReference checks pipelined execution stays
// architecturally exact: same final state as pure interpretation.
func TestPipelineMatchesReference(t *testing.T) {
	for name, src := range pipelineProgs {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.PipelineWorkers = runtime.NumCPU()
			e := equiv(t, src, cfg)
			if e.Metrics.PipelineSubmits == 0 {
				t.Error("pipeline never used despite hot code")
			}
			if e.Metrics.PipelineInstalls == 0 && e.Metrics.PipelineStale == 0 {
				t.Error("pipeline submitted but never resolved a request")
			}
		})
	}
}

// TestPipelineInstallLatency: translations land only after the simulated
// latency, so the interpreter keeps retiring meanwhile.
func TestPipelineInstallLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PipelineWorkers = 2
	cfg.PipelineLatency = 5000
	e := build(t, hotLoop, cfg, nil)
	runToHalt(t, e, 10_000_000)
	if e.Metrics.PipelineInstalls == 0 {
		t.Fatal("nothing installed")
	}
	// With a 5000-insn latency on a ~8000-insn program, the interpreter
	// must have retired most of the run itself.
	if e.Metrics.GuestInterp < 5000 {
		t.Errorf("interpreter retired only %d insns; installs came too early", e.Metrics.GuestInterp)
	}
}

// TestIndirectTargetCache: the jump-table loop's indirect exits must hit
// the per-translation inline cache once warm.
func TestIndirectTargetCache(t *testing.T) {
	e := equiv(t, pipelineProgs["jumpTable"], DefaultConfig())
	if e.Metrics.IndirectHits == 0 {
		t.Fatal("indirect target cache never hit")
	}
	if e.Metrics.IndirectHits < e.Metrics.IndirectMisses {
		t.Errorf("indirect cache mostly missing: %d hits vs %d misses",
			e.Metrics.IndirectHits, e.Metrics.IndirectMisses)
	}
}
