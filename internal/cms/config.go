// Package cms is the Code Morphing engine: the paper's primary contribution
// assembled from the substrates. It owns the dispatch loop of Figure 1
// (interpret → profile → translate → execute from the translation cache,
// with chaining), and the speculation / recovery / adaptive-retranslation
// response to every fault class (§3): rollback and re-interpretation,
// conservative policy ladders, region narrowing, page and fine-grain write
// protection, self-revalidating and self-checking translations, stylized
// self-modifying code, and translation groups.
package cms

import (
	"time"

	"cms/internal/tcache"
	"cms/internal/vliw"
	"cms/internal/xlate"
)

// Config holds the engine's tunables. The zero value is normalized to the
// defaults by New; experiment harnesses override individual knobs.
type Config struct {
	// HotThreshold is the execution count at which a block head is handed
	// to the translator (§2: "when the number of executions of a section of
	// x86 code reaches a certain threshold").
	HotThreshold uint64

	// FaultThreshold is how many faults of one class a translation absorbs
	// before adaptive retranslation kicks in ("infrequent failures" are
	// handled by interpretation alone, which costs nothing up front).
	FaultThreshold uint32

	// LookupCost is the molecule charge for one translation-cache lookup on
	// the "no chain" path of Figure 1 (the branch-target lookup routine that
	// chaining eliminates).
	LookupCost uint64

	// TranslateCostPerInsn is the molecule charge per guest instruction
	// translated, modelling the translator's own execution time ("the
	// translator can be a significant portion of execution time"). The
	// default is calibrated so that translator work lands at a realistic
	// share of our deliberately short benchmark runs; see DESIGN.md §6.
	TranslateCostPerInsn uint64

	// BasePolicy is the speculation policy every translation starts from;
	// experiments use it to suppress reordering (Figure 2), disable the
	// alias hardware (Figure 3), or force self-checking (§3.6.3 data).
	BasePolicy xlate.Policy

	// EnableFineGrain turns on fine-grain write protection (§3.6.1); off
	// reproduces the "without fine-grain" column of Table 1.
	EnableFineGrain bool
	// EnableSelfReval turns on self-revalidating translations (§3.6.2).
	EnableSelfReval bool
	// EnableStylized turns on stylized-SMC immediate loading (§3.6.4).
	EnableStylized bool
	// EnableGroups turns on translation groups (§3.6.5).
	EnableGroups bool
	// EnableCompiledBackend compiles installed translations into
	// closure-threaded code on the pipeline workers and executes that form
	// on the hot path. Purely a wall-clock optimization: gating,
	// commit/rollback, faults, and all simulated Metrics are identical to
	// the interpretive backend (the differential test in internal/bench
	// asserts this on every workload).
	EnableCompiledBackend bool
	// Backend selects which code-gen backend builds the executable form
	// when EnableCompiledBackend is on: "vliw" (or empty) for the
	// closure-threaded backend, "risc" for the register-IR backend with
	// lazy EFLAGS materialization. Both are bit-identical to the
	// interpretive backend at every commit boundary (the ninth fuzzer
	// oracle leg holds them to it); the tag participates in translation
	// content keys, so mixed-backend farms never dedup across backends.
	Backend string
	// EnableChaining links translation exits directly (§2); off forces
	// every exit through the dispatcher for the chaining experiment.
	EnableChaining bool

	// Host selects the target microarchitecture generation (zero value:
	// TM5800). Changing it retargets the translator without touching
	// anything guest-visible — the co-design freedom of §2.
	Host vliw.HostConfig

	// NoTranslate forces pure interpretation (reference mode).
	NoTranslate bool

	// TCacheCapAtoms bounds the translation cache (0 = default).
	TCacheCapAtoms int

	// PipelineWorkers enables the concurrent translation pipeline: hot
	// regions are frozen on the engine thread and translated on this many
	// worker goroutines while the interpreter keeps retiring guest
	// instructions. 0 (the default) translates synchronously, as real
	// single-threaded CMS did. Simulated Metrics are identical for any
	// worker count >= 1; only wall-clock time changes.
	PipelineWorkers int
	// PipelineDepth bounds in-flight translation requests (0 = default 8).
	// Hot sites beyond the bound simply stay in the interpreter until a
	// slot frees up — a deterministic, engine-side decision.
	PipelineDepth int
	// PipelineLatency is the simulated delay, in retired guest
	// instructions, between submitting a region and installing its
	// translation (0 = default 600). Installs happen at the first dispatch
	// boundary past the deadline, which is what makes pipelined Metrics
	// independent of worker count and host speed.
	PipelineLatency uint64
	// IndTCHitCost is the molecule charge for an indirect-branch target
	// cache hit (0 = default 2) — the cheap inline-cache path that replaces
	// the full LookupCost dispatch lookup for hot indirect jumps.
	IndTCHitCost uint64

	// SharedStore, when non-nil, deduplicates translation work across
	// engines through a farm-wide content-addressed store (internal/farm):
	// requests whose frozen capture hashes identically are translated and
	// compiled once, and every engine installs its own clone of the shared
	// artifact. Purely a wall-clock optimization — the engine charges the
	// same simulated translation cost on a store hit as on a miss, so
	// Metrics and final guest state are bit-identical to a solo run.
	SharedStore *tcache.SharedStore

	// Injector, when non-nil, is consulted at every translated-execution
	// commit boundary to force recovery events (rollback, alias fault,
	// eviction) for fault-injection testing; see hooks.go. Injection must
	// not change final guest state — only Metrics and wall clock.
	Injector Injector

	// Cancel, when non-nil, is the cooperative preemption hook: the engine
	// polls it at the first commit boundary after every CancelQuantum
	// retired guest instructions, and a true return stops Run with
	// ErrCancelled at that committed boundary. The farm's per-job watchdog
	// arms it with an atomic deadline flag. Placement matters for the hot
	// path: the poll costs one uint64 compare per dispatch/chain boundary
	// when idle and nothing at all is charged to the simulated Metrics, so a
	// run that is never cancelled is bit-identical to one with no hook (see
	// docs/INTERNALS.md).
	Cancel func() bool

	// CancelQuantum is the polling step, in retired guest instructions
	// (0 = default 4096). Smaller quanta preempt sooner but call Cancel more
	// often; the default polls a few hundred times per simulated millisecond
	// of guest work.
	CancelQuantum uint64

	// RollbackStormThreshold, when non-zero and a SharedStore is configured,
	// quarantines a translation's content key after that many rollback-class
	// faults have hit one installed copy of it — a rollback storm. The
	// poisoned key stops the artifact cascading to other VMs; poisoning is
	// wall-clock-only (re-translation charges the same simulated cost), so
	// Metrics stay bit-identical to a solo run.
	RollbackStormThreshold uint32

	// PoisonTTL is how long storm- or panic-implicated keys stay
	// quarantined (0 = tcache.DefaultPoisonTTL).
	PoisonTTL time.Duration
}

// ValidBackend reports whether s is a recognized Config.Backend value:
// empty (inherit/default), xlate.BackendVLIW, or xlate.BackendRISC. Entry
// points that accept a backend from the outside (farm specs, cmsrun flags,
// the serve API) validate with this before it reaches a translator.
func ValidBackend(s string) bool {
	return s == "" || s == xlate.BackendVLIW || s == xlate.BackendRISC
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{
		HotThreshold:          50,
		FaultThreshold:        2,
		TranslateCostPerInsn:  150,
		LookupCost:            12,
		EnableFineGrain:       true,
		EnableSelfReval:       true,
		EnableStylized:        true,
		EnableGroups:          true,
		EnableChaining:        true,
		EnableCompiledBackend: true,
	}
}

func (c Config) normalized() Config {
	if c.HotThreshold == 0 {
		c.HotThreshold = 50
	}
	if c.FaultThreshold == 0 {
		c.FaultThreshold = 2
	}
	if c.TranslateCostPerInsn == 0 {
		c.TranslateCostPerInsn = 150
	}
	if c.LookupCost == 0 {
		c.LookupCost = 12
	}
	if c.PipelineDepth == 0 {
		c.PipelineDepth = 8
	}
	if c.PipelineLatency == 0 {
		c.PipelineLatency = 600
	}
	if c.IndTCHitCost == 0 {
		c.IndTCHitCost = 2
	}
	if c.CancelQuantum == 0 {
		c.CancelQuantum = 4096
	}
	return c
}

// Metrics aggregates the engine's dynamic counts. Molecules are the paper's
// performance metric; the guest-instruction counts give molecules per guest
// instruction, the unit of Table 1's slowdown column.
type Metrics struct {
	// Molecule accounting by activity.
	MolsInterp    uint64 // interpreter cost-model charges
	MolsTexec     uint64 // molecules executed inside translations
	MolsTranslate uint64 // translator work charges
	MolsPrologue  uint64 // self-revalidation prologues
	MolsDispatch  uint64 // translation-cache lookups on unchained paths

	// Guest instructions retired by each engine.
	GuestInterp uint64
	GuestTexec  uint64

	// Figure 1 control-flow transitions.
	DispatchToTexec uint64 // dispatcher entered the translation cache
	ChainTransfers  uint64 // exit followed a chain (no lookup)
	LookupTransfers uint64 // exit looked up the next translation
	DispatchReturns uint64 // exit fell back to the dispatcher

	// Fault counts by class (indexed by vliw.FaultClass).
	Faults [8]uint64
	// GenuineGuestFaults/SpecGuestFaults split FGuest by what
	// re-interpretation proved (§3.2).
	GenuineGuestFaults uint64
	SpecGuestFaults    uint64

	// SMC machinery.
	ProtFaults           uint64 // CPU writes that hit protected code
	DMAInvalidations     uint64
	FineGrainConversions uint64
	SelfRevalArms        uint64
	SelfRevalPasses      uint64
	SelfRevalFails       uint64
	SelfCheckFails       uint64
	StylizedAdopts       uint64
	GroupReuses          uint64

	// Adaptive retranslation events by fault class.
	Adaptations [8]uint64

	// Translation pipeline events (all zero in synchronous mode).
	PipelineSubmits  uint64 // regions frozen and handed to the worker pool
	PipelineInstalls uint64 // translations installed at their due boundary
	PipelineStale    uint64 // finished translations dropped: source changed in flight

	// Indirect-branch target cache (the inline cache on indirect exits).
	IndirectHits   uint64
	IndirectMisses uint64

	Interrupts   uint64
	Translations uint64
	// CodeAtoms sums the static size of all installed translations (the
	// §3.6.3 code-size metric).
	CodeAtoms uint64
	// GuestInsnsTranslated sums region lengths over all translations.
	GuestInsnsTranslated uint64
}

// TotalMols returns total molecules across all activities.
func (m *Metrics) TotalMols() uint64 {
	return m.MolsInterp + m.MolsTexec + m.MolsTranslate + m.MolsPrologue + m.MolsDispatch
}

// GuestTotal returns total retired guest instructions.
func (m *Metrics) GuestTotal() uint64 { return m.GuestInterp + m.GuestTexec }

// MPI returns molecules per guest instruction (the paper's slowdown unit).
func (m *Metrics) MPI() float64 {
	g := m.GuestTotal()
	if g == 0 {
		return 0
	}
	return float64(m.TotalMols()) / float64(g)
}

// site holds the per-region adaptive state CMS accumulates across
// retranslations of the same entry address.
type site struct {
	policy xlate.Policy
	// interpOnly pins the address to the interpreter (the degenerate
	// zero-instruction translation of §3.2).
	interpOnly bool

	// Ladder counters.
	aliasAdapts   int
	smcWrites     int
	prologueFails int
	wantSelfReval bool
	useGroups     bool
	selfCheck     bool
}

// adaptClass advances the site's policy ladder for a fault class and
// offending instruction address, per §3.2-§3.5. Genuine guest faults are
// narrowed by the engine directly; this handles the speculative classes.
func (s *site) adaptClass(class vliw.FaultClass, insnAddr uint32, regionLen int) {
	switch class {
	case vliw.FAlias:
		// "Recurring faults are handled by cutting the faulting translation
		// into smaller regions and by scheduling any regions that still
		// fault without speculative load/store reordering."
		switch s.aliasAdapts {
		case 0:
			s.policy = s.policy.WithNoReorder(insnAddr)
		case 1:
			s.policy.NoReorderMem = true
		default:
			s.policy.NoReorderMem = true
			s.policy.MaxInsns = maxInt(4, regionLen/2)
		}
		s.aliasAdapts++
	case vliw.FMMIOSpec:
		// "CMS regenerates the translation, this time without reordering
		// the offending memory reference."
		if s.policy.NoReorder[insnAddr] {
			s.policy = s.policy.WithSerialize(insnAddr)
		} else {
			s.policy = s.policy.WithNoReorder(insnAddr)
		}
	case vliw.FMMIOOrder:
		s.policy = s.policy.WithSerialize(insnAddr)
	case vliw.FGuest:
		// Speculative guest faults (the interpreter proved no architectural
		// exception occurred): stop hoisting faulting operations above
		// branch exits; if that was not enough, cut the region.
		if s.policy.NoHoistLoads {
			s.policy.MaxInsns = maxInt(4, regionLen/2)
		}
		s.policy.NoHoistLoads = true
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
