package cms

import (
	"fmt"
	"sort"

	"cms/internal/dev"
	"cms/internal/interp"
	"cms/internal/tcache"
	"cms/internal/xlate"
)

// Engine-level checkpoint state. A snapshot records everything the
// determinism contract depends on — architectural state, profile, simulated
// Metrics, the adaptive per-site policy ladders, which translations were
// installed (by frozen request, never by artifact), the pending pipeline
// queue, and the parked chain-boundary transition of a cancelled run — so
// that a restored engine retires exactly the same future instruction stream
// with exactly the same Metrics as the run it was captured from.
//
// Capture is legal only at a quiesced commit boundary: after Run has
// returned (clean halt, budget, or — the interesting case — the cooperative
// cancel hook). The engine is single-threaded between Runs, so no locking
// is needed.

// StatefulInjector is an Injector whose schedule state can ride a snapshot.
// An engine configured with an Injector can only be checkpointed if the
// injector implements this; the restored injector must be fast-forwarded
// with RestoreState before the run resumes, or injected events would replay
// from the schedule's origin and diverge from the uninterrupted run.
type StatefulInjector interface {
	Injector
	// SnapshotState serializes the injector's mutable state.
	SnapshotState() []byte
	// RestoreState overwrites the injector's mutable state.
	RestoreState([]byte) error
}

// SiteState is the serializable per-site adaptive state (§3.1's
// retranslation ladders plus the SMC escalation counters).
type SiteState struct {
	Entry         uint32       `json:"entry"`
	Policy        xlate.Policy `json:"policy"`
	InterpOnly    bool         `json:"interp_only,omitempty"`
	AliasAdapts   int          `json:"alias_adapts,omitempty"`
	SmcWrites     int          `json:"smc_writes,omitempty"`
	PrologueFails int          `json:"prologue_fails,omitempty"`
	WantSelfReval bool         `json:"want_self_reval,omitempty"`
	UseGroups     bool         `json:"use_groups,omitempty"`
	SelfCheck     bool         `json:"self_check,omitempty"`
}

// PendState is one undelivered pipeline submission: the frozen request and
// the simulated instant its result becomes observable.
type PendState struct {
	Entry uint32              `json:"entry"`
	Due   uint64              `json:"due"`
	Req   *xlate.RequestImage `json:"req"`
}

// ResumeState is the parked chain-boundary transition of a cancelled run
// (see resumePoint in engine.go).
type ResumeState struct {
	Valid    bool   `json:"valid"`
	Entry    uint32 `json:"entry"`
	Exit     int    `json:"exit"`
	Indirect bool   `json:"indirect"`
	Target   uint32 `json:"target"`
}

// EngineState is the serializable engine: everything above the platform.
type EngineState struct {
	Interp  *interp.InterpState `json:"interp"`
	Metrics Metrics             `json:"metrics"`
	Budget  uint64              `json:"budget"`

	Sites []SiteState        `json:"sites,omitempty"`
	Cache *tcache.CacheState `json:"cache"`
	Pend  []PendState        `json:"pend,omitempty"`

	Resume ResumeState `json:"resume"`

	// TransTranslated/TransInsnsTranslated are the translator's wall-side
	// work counters, carried so reports over a restored engine match.
	TransTranslated      uint64 `json:"trans_translated"`
	TransInsnsTranslated uint64 `json:"trans_insns_translated"`

	// Injector is the opaque schedule state of a StatefulInjector, absent
	// when no injector is configured.
	Injector []byte `json:"injector,omitempty"`
}

// ExportState captures the engine at a quiesced boundary. It fails if a
// configured Injector cannot ride the snapshot, or if any installed
// translation lacks its frozen request.
func (e *Engine) ExportState() (*EngineState, error) {
	if e.pipe != nil {
		return nil, fmt.Errorf("cms: snapshot with translation pipeline running")
	}
	cs, err := e.Cache.ExportState()
	if err != nil {
		return nil, err
	}
	s := &EngineState{
		Interp:               e.Interp.ExportState(),
		Metrics:              e.Metrics,
		Budget:               e.budget,
		Cache:                cs,
		TransTranslated:      e.Trans.Translated,
		TransInsnsTranslated: e.Trans.InsnsTranslated,
	}
	addrs := make([]uint32, 0, len(e.sites))
	for a := range e.sites {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		st := e.sites[a]
		s.Sites = append(s.Sites, SiteState{
			Entry:         a,
			Policy:        st.policy,
			InterpOnly:    st.interpOnly,
			AliasAdapts:   st.aliasAdapts,
			SmcWrites:     st.smcWrites,
			PrologueFails: st.prologueFails,
			WantSelfReval: st.wantSelfReval,
			UseGroups:     st.useGroups,
			SelfCheck:     st.selfCheck,
		})
	}
	for _, sp := range e.savedPend {
		s.Pend = append(s.Pend, PendState{Entry: sp.entry, Due: sp.due, Req: sp.req.Image()})
	}
	if e.resumePt.valid {
		s.Resume = ResumeState{
			Valid:    true,
			Entry:    e.resumePt.entry,
			Exit:     e.resumePt.exit,
			Indirect: e.resumePt.indirect,
			Target:   e.resumePt.target,
		}
	}
	if inj := e.Cfg.Injector; inj != nil {
		si, ok := inj.(StatefulInjector)
		if !ok {
			return nil, fmt.Errorf("cms: configured injector %T cannot be snapshotted", inj)
		}
		s.Injector = si.SnapshotState()
	}
	return s, nil
}

// rehydrate is the translate callback used while restoring the cache: with
// a shared store configured it fetches (or, on a cold store, deterministically
// retranslates) by content key and installs a per-VM clone; without one it
// runs the translator directly. Either way the artifact is bit-identical to
// the captured one. Nothing is charged to Metrics — every charge for these
// translations is already inside the snapshot's Metrics, which overwrite
// the engine's counters after the rebuild.
func (e *Engine) rehydrate(req *xlate.Request) (*xlate.Translation, error) {
	store := e.Cfg.SharedStore
	if store == nil {
		return req.Translate()
	}
	art, hit, err := store.Rehydrate(req)
	if err != nil {
		return nil, err
	}
	if hit {
		e.sharedHits.Add(1)
	} else {
		e.sharedMisses.Add(1)
	}
	return art.Clone(), nil
}

// RestoreEngine builds a fresh engine over plat and overwrites it with a
// captured state. plat must itself have been restored from the matching
// platform state (dev.RestorePlatform), and cfg must be the configuration
// the captured engine ran with — a snapshot records state, not policy, and
// restoring under a different speculation policy, host configuration, or
// cost model voids the determinism contract. If cfg carries an Injector it
// must be a StatefulInjector; it is fast-forwarded from the snapshot.
func RestoreEngine(plat *dev.Platform, cfg Config, s *EngineState) (*Engine, error) {
	if s == nil || s.Interp == nil || s.Cache == nil {
		return nil, fmt.Errorf("cms: engine state incomplete")
	}
	e := New(plat, s.Interp.CPU.EIP, cfg)
	e.Interp.RestoreState(s.Interp)
	for _, ss := range s.Sites {
		e.sites[ss.Entry] = &site{
			policy:        ss.Policy,
			interpOnly:    ss.InterpOnly,
			aliasAdapts:   ss.AliasAdapts,
			smcWrites:     ss.SmcWrites,
			prologueFails: ss.PrologueFails,
			wantSelfReval: ss.WantSelfReval,
			useGroups:     ss.UseGroups,
			selfCheck:     ss.SelfCheck,
		}
	}
	// Rebuild the cache by re-materializing every frozen request. The
	// replayed installs bump Cache.Stats and the translator's counters;
	// both are overwritten with the captured values below. Page protection
	// is NOT re-applied here: the bus arrived with the captured protection
	// state verbatim, and re-protecting would be redundant at best.
	if err := e.Cache.RestoreState(s.Cache, e.rehydrate); err != nil {
		return nil, err
	}
	for _, ps := range s.Pend {
		req, err := ps.Req.Reify()
		if err != nil {
			return nil, fmt.Errorf("cms: pending request at %#x: %w", ps.Entry, err)
		}
		e.savedPend = append(e.savedPend, savedPending{entry: ps.Entry, due: ps.Due, req: req})
	}
	if s.Resume.Valid {
		ent := e.Cache.Peek(s.Resume.Entry)
		if ent == nil {
			return nil, fmt.Errorf("cms: resume point names uncached translation %#x", s.Resume.Entry)
		}
		e.resumePt = resumePoint{
			valid:    true,
			ent:      ent,
			entry:    s.Resume.Entry,
			exit:     s.Resume.Exit,
			indirect: s.Resume.Indirect,
			target:   s.Resume.Target,
		}
	}
	if len(s.Injector) > 0 {
		si, ok := cfg.Injector.(StatefulInjector)
		if !ok {
			return nil, fmt.Errorf("cms: snapshot carries injector state but cfg.Injector is %T", cfg.Injector)
		}
		if err := si.RestoreState(s.Injector); err != nil {
			return nil, fmt.Errorf("cms: restoring injector: %w", err)
		}
	}
	e.Trans.Translated = s.TransTranslated
	e.Trans.InsnsTranslated = s.TransInsnsTranslated
	e.Metrics = s.Metrics
	e.budget = s.Budget
	return e, nil
}

// Budget returns the instruction budget of the engine's most recent Run —
// a checkpoint restored mid-run is typically resumed with the same budget
// so the combined run retires exactly what the uninterrupted one would.
func (e *Engine) Budget() uint64 { return e.budget }
