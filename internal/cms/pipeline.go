package cms

import (
	"errors"
	"fmt"

	"cms/internal/tcache"
	"cms/internal/xlate"
)

// The engine side of the concurrent translation pipeline.
//
// Determinism is the whole design problem here: the paper's Metrics are a
// simulated cost model, and they must not depend on how many host cores ran
// the translator or how fast they were. The discipline (after Flückiger et
// al.'s treatment of speculative installs) is:
//
//   - The front end (region selection + source capture) runs synchronously
//     on the engine thread, so every input to translation is frozen at a
//     well-defined simulated instant.
//   - Workers compute a pure function of that frozen request.
//   - The engine observes results only at a simulated due time —
//     submission's GuestTotal plus PipelineLatency — blocking at the first
//     dispatch boundary past the deadline if the worker hasn't finished.
//     Worker speed moves wall-clock time, never simulated time.
//   - At install, the translation's source snapshot is re-verified against
//     live memory; if the guest rewrote the bytes while translation was in
//     flight, the result is dropped (PipelineStale) rather than installed,
//     preserving the SMC guarantees.

// pending is one in-flight translation, queued in submission order.
// Due times are nondecreasing along the queue, so draining the head first
// installs strictly in submission order.
type pending struct {
	entry uint32
	due   uint64 // GuestTotal at which the result becomes observable
	pr    *xlate.PipeRequest
}

// savedPending is one undelivered submission preserved across a cancelled
// Run: the frozen request and its original due time. A snapshot serializes
// these (as request images) so a restored run can resubmit them and observe
// the results exactly when the uninterrupted run would have.
type savedPending struct {
	entry uint32
	due   uint64
	req   *xlate.Request
}

// startPipeline brings the worker pool up for one Run. With a farm's shared
// store configured, workers translate through the store — lookup or
// single-flighted backend run — and hand back a per-VM clone of the frozen
// artifact; the engine-side install flow (due times, stale checks, metric
// charges) is identical either way, so the store moves wall clock only.
func (e *Engine) startPipeline() {
	var do xlate.TranslateFunc
	if store := e.Cfg.SharedStore; store != nil {
		do = func(req *xlate.Request) (*xlate.Translation, error) {
			art, hit, err := store.Translate(req)
			if err != nil {
				return nil, err
			}
			if hit {
				e.sharedHits.Add(1)
			} else {
				e.sharedMisses.Add(1)
			}
			return art.Clone(), nil
		}
	}
	e.pipe = xlate.NewPipeline(e.Cfg.PipelineWorkers, e.Cfg.PipelineDepth, do)
	e.inflight = make(map[uint32]bool)
	// Resubmit the queue a cancelled Run (or a snapshot restore) carried
	// over: original due times, no fresh PipelineSubmits charges — the
	// submissions were already charged when they first happened, and the
	// restored run must observe the results at the same simulated instants
	// the uninterrupted run would have.
	for _, sp := range e.savedPend {
		e.pendq = append(e.pendq, pending{entry: sp.entry, due: sp.due, pr: e.pipe.Submit(sp.req)})
		e.inflight[sp.entry] = true
	}
	e.savedPend = nil
}

// stopPipeline tears the pool down at Run exit. Normally undelivered
// results are discarded (their sites simply get resubmitted if they are
// still hot on a later Run — a deterministic outcome, since Run boundaries
// are); a cancelled run instead keeps the frozen requests and due times so
// a checkpoint can carry the in-flight queue across a restore.
func (e *Engine) stopPipeline() {
	e.pipe.Stop()
	if errors.Is(e.err, ErrCancelled) {
		for _, p := range e.pendq {
			e.savedPend = append(e.savedPend, savedPending{entry: p.entry, due: p.due, req: p.pr.Req})
		}
	}
	e.pipe = nil
	e.pendq = nil
	e.inflight = nil
}

// drainPipeline installs every pending translation whose due time has
// passed, in submission order, blocking on the worker if necessary.
func (e *Engine) drainPipeline() {
	for len(e.pendq) > 0 && e.Metrics.GuestTotal() >= e.pendq[0].due {
		p := e.pendq[0]
		e.pendq = e.pendq[1:]
		e.installPending(p)
		if e.err != nil {
			return
		}
	}
}

// submitTranslation is the pipelined counterpart of translateAt: it resolves
// group reuse synchronously (a snapshot comparison, not translator work) and
// otherwise freezes a request for the worker pool. It returns a non-nil
// entry only on immediate group reinstall.
func (e *Engine) submitTranslation(eip uint32) *tcache.Entry {
	s := e.site(eip)
	if e.inflight[eip] || len(e.pendq) >= e.Cfg.PipelineDepth {
		return nil
	}
	if e.Cfg.EnableGroups && s.useGroups {
		if t := e.Cache.GroupMatch(eip, e.Plat.Bus); t != nil {
			e.Metrics.GroupReuses++
			e.trace(EvGroupReuse, eip, "")
			ent := e.Cache.Install(t)
			ent.SelfReval = s.wantSelfReval && e.Cfg.EnableSelfReval
			e.protect(t)
			return ent
		}
	}
	pol := e.Cfg.BasePolicy.Merge(s.policy)
	if s.selfCheck {
		pol.SelfCheck = true
	}
	req, err := e.Trans.Prepare(eip, pol)
	if err != nil {
		if errors.Is(err, xlate.ErrUntranslatable) {
			s.interpOnly = true
			return nil
		}
		e.err = fmt.Errorf("cms: translation failed at %#x: %w", eip, err)
		return nil
	}
	e.Metrics.PipelineSubmits++
	e.trace(EvTranslate, eip, fmt.Sprintf("submitted, %d insns", req.GuestLen()))
	e.pendq = append(e.pendq, pending{
		entry: eip,
		due:   e.Metrics.GuestTotal() + e.Cfg.PipelineLatency,
		pr:    e.pipe.Submit(req),
	})
	e.inflight[eip] = true
	return nil
}

// installPending collects one finished translation and installs it, unless
// its source bytes changed while it was in flight.
func (e *Engine) installPending(p pending) {
	t, err := p.pr.Wait()
	delete(e.inflight, p.entry)
	if err != nil {
		e.err = fmt.Errorf("cms: translation failed at %#x: %w", p.entry, err)
		return
	}
	if !t.SourceMatches(e.Plat.Bus) {
		// The guest rewrote the region between capture and install. The
		// translation is correct for bytes that no longer exist; drop it.
		// If the site stays hot it will be resubmitted against the new
		// bytes (and the SMC machinery escalates policy as usual).
		e.Metrics.PipelineStale++
		e.trace(EvTranslate, p.entry, "stale: dropped before install")
		return
	}
	s := e.site(p.entry)
	e.Trans.Translated++
	e.Trans.InsnsTranslated += uint64(len(t.Insns))
	e.Metrics.Translations++
	e.Metrics.MolsTranslate += e.Cfg.TranslateCostPerInsn * uint64(len(t.Insns))
	e.Metrics.CodeAtoms += uint64(t.CodeAtoms())
	e.Metrics.GuestInsnsTranslated += uint64(len(t.Insns))
	e.Metrics.PipelineInstalls++
	e.trace(EvTranslate, p.entry, fmt.Sprintf("%d insns, %d mols", len(t.Insns), t.CodeMolecules()))
	ent := e.Cache.Install(t)
	ent.SelfReval = s.wantSelfReval && e.Cfg.EnableSelfReval
	e.protect(t)
}
