// The compiled closure-threaded backend: the software analogue of emitting
// native molecules. Compile turns a validated Code into a flat array of
// pre-specialized Go closures — one per molecule, with operand registers,
// immediates, flag-source renaming, and alias-check masks resolved at
// compile time — which ExecCompiled threads through without ever consulting
// the Atom structs again. The interpretive Exec re-decodes every atom
// through its big switch on every execution; the compiled form pays that
// decode exactly once, at translation-install time (on the translation
// pipeline workers, off the engine thread).
//
// The recovery contract is the whole design constraint. Compiled code must
// commit, roll back, fault, and deoptimize to the interpreter bit-
// identically to Exec (the obligation formalized in Flückiger et al.,
// "Correctness of Speculative Optimizations with Dynamic Deoptimization"):
// identical Mols/Commits/Rollbacks counts, identical fault Outcomes at the
// same boundaries, identical gated-store-buffer and alias-table effects,
// and the same interrupt windows at every molecule boundary. Only wall
// clock is allowed to move.
//
// How that is kept:
//
//   - VLIW read-before-write semantics make immediate register writes legal:
//     validated code never reads a register written earlier in the same
//     molecule (results have latency >= 1), so applying writes in atom order
//     as they execute is indistinguishable from Exec's deferred-write slots.
//     Compile re-checks this hazard per molecule and falls back to an
//     exact-semantics interpreted closure (execAtom + deferred writes) for
//     any molecule that violates it, so even hand-built unvalidated code
//     behaves identically.
//   - Memory effects (gated stores, store-buffer forwarding, alias-table
//     allocation and checking, port I/O) already happen in atom order in
//     Exec, so the compiled closures simply preserve atom order.
//   - Molecules containing ACommit alongside register writes or trailing
//     memory atoms take the fallback closure: ACommit commits *mid-molecule*
//     state, which immediate register writes would corrupt.
//   - One fault-path divergence is tolerated by design: when an atom faults,
//     earlier atoms of the same molecule have already written their
//     (non-shadowed) temporaries, where Exec would have discarded the
//     deferred writes. Rollback restores every shadowed register either way,
//     and temporaries never carry state across a committed boundary — Exec
//     itself leaves stale temporaries from *earlier* molecules of the failed
//     execution — so no translation can observe the difference.
//
// Fused fast paths: flag-computing ALU closures produce the result and the
// EFLAGS image in one call (ALU+flags); load closures allocate their alias
// protection entry inline (load+alias-record); and a fall-through molecule
// is fused with a successor molecule that ends in a branch or exit
// (compare+branch — the `dec.c` / `brcc` tail of every hot loop), with the
// inter-molecule interrupt window and molecule count preserved exactly.
package vliw

import (
	"fmt"
	"math/bits"

	"cms/internal/guest"
	"cms/internal/mem"
)

// Sentinels returned by molecule closures in place of a next-molecule index.
const (
	// ccDone: the execution is over; the Outcome is in Machine.cout.
	ccDone int32 = -1
	// ccBadPC stands in for a (garbage) branch target that would collide
	// with ccDone; it is out of range, so ExecCompiled faults on it just as
	// Exec faults on any out-of-range pc.
	ccBadPC int32 = -2
)

// compiledMol executes one molecule and returns the next molecule index, or
// ccDone with the Outcome in m.cout.
type compiledMol func(m *Machine) int32

// atomFn executes one non-control atom. A non-nil return is a fault Outcome
// (the machine has already rolled back).
type atomFn func(m *Machine) *Outcome

// ctrlFn resolves a molecule's control transfer after its atoms ran.
type ctrlFn func(m *Machine) int32

// CompiledCode is the closure-threaded form of one translation's Code.
type CompiledCode struct {
	mols []compiledMol

	// Compile-shape statistics (introspection and tests).
	specialized int
	fallbacks   int
	fused       int
}

// Len returns the number of compiled molecules.
func (cc *CompiledCode) Len() int { return len(cc.mols) }

// Fallbacks returns how many molecules compile to the exact-semantics
// interpreted fallback rather than a specialized closure.
func (cc *CompiledCode) Fallbacks() int { return cc.fallbacks }

// Fused returns how many fall-through molecules were fused with their
// branch-ending successor.
func (cc *CompiledCode) Fused() int { return cc.fused }

// ExecCompiled runs compiled code from its first molecule until an exit or a
// fault, exactly as Exec runs the interpreted form: the same interrupt
// window at every molecule boundary, the same molecule accounting, and the
// same fall-off-the-end fault. The returned Outcome is machine-owned and
// valid until the next Exec/ExecCompiled call — the hot dispatch loop reads
// it in place rather than copying the struct on every execution.
func (m *Machine) ExecCompiled(cc *CompiledCode) *Outcome {
	pc := int32(0)
	mols := cc.mols
	irq := m.IRQ // loop-invariant; nil only in harnesses
	// Exit closures store only scalar fields into cout (a whole-struct
	// assignment would drag a GC write barrier for the Err pointer into
	// every single execution); the one pointer field is cleared here.
	m.cout.Err = nil
	for {
		// Interrupt window at molecule boundaries (§3.3). Pending is the
		// rare side of the conjunction, so it is tested first.
		if irq != nil && irq.HasPending() && m.Shadow[RFlags]&guest.FlagIF != 0 {
			m.rollback()
			m.cout = Outcome{Fault: FIRQ, Exit: -1, GIdx: -1}
			return &m.cout
		}
		if uint32(pc) >= uint32(len(mols)) {
			m.rollback()
			m.cout = Outcome{Fault: FBadCode, Exit: -1, GIdx: -1,
				Err: fmt.Errorf("vliw: control fell off code at molecule %d", pc)}
			return &m.cout
		}
		m.Mols++
		pc = mols[pc](m)
		if pc == ccDone {
			return &m.cout
		}
	}
}

// Compile builds the closure-threaded form of code. It never fails: any
// molecule it cannot specialize gets a fallback closure with the exact
// interpreted semantics, so Compile(code) and code itself are always
// behaviorally interchangeable.
func Compile(code *Code) *CompiledCode {
	if code == nil {
		return nil
	}
	cc := &CompiledCode{mols: make([]compiledMol, len(code.Mols))}
	for i := range code.Mols {
		cc.mols[i] = cc.compileMol(&code.Mols[i], int32(i+1), int32(len(code.Mols)))
	}
	// Run fusion: a maximal straight-line run — fall-through molecules
	// ending at a branch, exit, or the last molecule — executes as one flat
	// closure call, replicating each inter-molecule boundary (interrupt
	// window + molecule count) inline. The software-pipelined loop body
	// with its `dec.c`/`brcc` tail is one call per iteration instead of one
	// dispatch per molecule. Every molecule stays independently addressable
	// for direct jumps into it: later entries of a run reuse the same base
	// closures via a shorter slice of the shared backing array.
	base := make([]compiledMol, len(cc.mols))
	copy(base, cc.mols)
	for i := 0; i < len(code.Mols); {
		if hasControlAtom(&code.Mols[i]) {
			i++
			continue
		}
		j := i
		for j < len(code.Mols)-1 && !hasControlAtom(&code.Mols[j]) {
			j++
		}
		run := base[i : j+1]
		for k := i; k < j; k++ {
			cc.mols[k] = fuseRun(run[k-i:], int32(k))
			cc.fused++
		}
		i = j + 1
	}
	return cc
}

// hasControlAtom reports whether the molecule contains a branch-unit
// control atom (branch, exit, or commit).
func hasControlAtom(mol *Molecule) bool {
	for i := range mol.Atoms {
		switch mol.Atoms[i].Op {
		case ABr, ABrCC, ABrNZ, AExit, AExitInd, ACommit:
			return true
		}
	}
	return false
}

// fuseRun welds a straight-line run of molecules into one flat closure.
// bodies[k] is the base closure for molecule first+k; all but the last fall
// through. A body that leaves the straight line (a fallback molecule
// branching, or the terminal control molecule resolving) returns its target
// to the dispatch loop; between bodies the inter-molecule boundary —
// interrupt window, then molecule count — runs inline, exactly as
// ExecCompiled would perform it.
func fuseRun(bodies []compiledMol, first int32) compiledMol {
	last := len(bodies) - 1
	return func(m *Machine) int32 {
		pc := first
		for k := 0; ; k++ {
			r := bodies[k](m)
			if k == last || r != pc+1 {
				return r
			}
			pc = r
			if m.IRQ != nil && m.IRQ.HasPending() && m.Shadow[RFlags]&guest.FlagIF != 0 {
				m.rollback()
				m.cout = Outcome{Fault: FIRQ, Exit: -1, GIdx: -1}
				return ccDone
			}
			m.Mols++
		}
	}
}

// compileMol builds the closure for one molecule. next is the fall-through
// molecule index; nmols bounds static branch targets.
func (cc *CompiledCode) compileMol(mol *Molecule, next, nmols int32) compiledMol {
	// A specialized molecule needs: at most one control atom, no
	// read-after-write hazard (every atom reads pre-molecule state in Exec),
	// no mid-molecule commit reordering, and only ops the builder knows.
	nctrl := 0
	ctrlIdx := -1
	for i := range mol.Atoms {
		switch mol.Atoms[i].Op {
		case ABr, ABrCC, ABrNZ, AExit, AExitInd, ACommit:
			nctrl++
			ctrlIdx = i
		}
	}
	if nctrl > 1 || molHazard(mol) || !commitSafe(mol, ctrlIdx) {
		cc.fallbacks++
		return fallbackMol(mol, next)
	}

	var fns []atomFn
	for i := range mol.Atoms {
		a := &mol.Atoms[i]
		if i == ctrlIdx || a.Op == ANop {
			continue
		}
		fn := compileAtom(a)
		if fn == nil { // unknown op: preserve execAtom's fault behavior
			cc.fallbacks++
			return fallbackMol(mol, next)
		}
		fns = append(fns, fn)
	}
	var ctrl ctrlFn
	if ctrlIdx >= 0 {
		ctrl = compileCtrl(&mol.Atoms[ctrlIdx], next, nmols)
	}
	cc.specialized++
	return assembleMol(fns, ctrl, next)
}

// molHazard reports whether any atom reads a register that an earlier atom
// of the same molecule writes. Validated code never does (results have
// latency >= 1), but Compile must behave identically even on code that was
// never validated.
func molHazard(mol *Molecule) bool {
	var written uint64
	for i := range mol.Atoms {
		a := mol.Atoms[i]
		srcs := atomSources(a)
		fs := FlagSrc(a)
		for _, s := range srcs {
			if written&(1<<s) != 0 {
				return true
			}
			// execAtom merges the IF bit from the architectural RFlags into
			// any renamed flag image, so a flag-consuming atom also reads
			// RFlags.
			if s == fs && fs != RFlags && written&(1<<RFlags) != 0 {
				return true
			}
		}
		for _, d := range atomDests(a) {
			written |= 1 << d
		}
	}
	return false
}

// commitSafe reports whether an ACommit at ctrlIdx (if any) may run at the
// end of the molecule. Exec performs ACommit at its atom position, before
// the molecule's deferred register writes land and before later memory
// atoms enter the store buffer; hoisting it to the control slot is only
// legal when nothing it could reorder against exists: every other atom is a
// gated store (ASt/AOut) issued before it.
func commitSafe(mol *Molecule, ctrlIdx int) bool {
	if ctrlIdx < 0 || mol.Atoms[ctrlIdx].Op != ACommit {
		return true
	}
	for i := range mol.Atoms {
		if i == ctrlIdx {
			continue
		}
		switch mol.Atoms[i].Op {
		case ANop:
		case ASt, AOut:
			if i > ctrlIdx {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// assembleMol threads the atom closures and the control resolution into one
// molecule closure, unrolled for the issue widths that actually occur.
func assembleMol(fns []atomFn, ctrl ctrlFn, next int32) compiledMol {
	if ctrl == nil {
		ctrl = func(*Machine) int32 { return next }
	}
	switch len(fns) {
	case 0:
		return func(m *Machine) int32 { return ctrl(m) }
	case 1:
		f0 := fns[0]
		return func(m *Machine) int32 {
			if o := f0(m); o != nil {
				m.cout = *o
				return ccDone
			}
			return ctrl(m)
		}
	case 2:
		f0, f1 := fns[0], fns[1]
		return func(m *Machine) int32 {
			if o := f0(m); o != nil {
				m.cout = *o
				return ccDone
			}
			if o := f1(m); o != nil {
				m.cout = *o
				return ccDone
			}
			return ctrl(m)
		}
	case 3:
		f0, f1, f2 := fns[0], fns[1], fns[2]
		return func(m *Machine) int32 {
			if o := f0(m); o != nil {
				m.cout = *o
				return ccDone
			}
			if o := f1(m); o != nil {
				m.cout = *o
				return ccDone
			}
			if o := f2(m); o != nil {
				m.cout = *o
				return ccDone
			}
			return ctrl(m)
		}
	default:
		return func(m *Machine) int32 {
			for _, f := range fns {
				if o := f(m); o != nil {
					m.cout = *o
					return ccDone
				}
			}
			return ctrl(m)
		}
	}
}

// fallbackMol is the exact-semantics closure: it runs the molecule through
// execAtom with Exec's deferred-write slots and control resolution, so any
// molecule shape the specializer declines still behaves identically to the
// interpreter.
func fallbackMol(mol *Molecule, next int32) compiledMol {
	return func(m *Machine) int32 {
		const maxWidth = 16
		var fixed [maxWidth]atomResult
		results := fixed[:]
		n := len(mol.Atoms)
		if n > maxWidth {
			results = make([]atomResult, n)
		}
		for i := 0; i < n; i++ {
			if fault := m.execAtom(&mol.Atoms[i], &results[i]); fault != nil {
				m.cout = *fault
				return ccDone
			}
		}
		for i := 0; i < n; i++ {
			for w := 0; w < results[i].nw; w++ {
				m.Regs[results[i].writes[w].reg] = results[i].writes[w].val
			}
		}
		nx := next
		for i := 0; i < n; i++ {
			if results[i].exits {
				if mol.Atoms[i].Commit {
					m.commit()
				}
				return m.coutExit(results[i].exit, results[i].indTarget, results[i].indirect)
			}
			if results[i].branch {
				nx = results[i].target
				if nx == ccDone {
					nx = ccBadPC // garbage target; fault out of range, not "done"
				}
			}
		}
		return nx
	}
}

// coutExit fills the pending Outcome for a normal exit without touching the
// Err pointer (see ExecCompiled: whole-struct assignment would cost a GC
// write barrier per execution) and returns the ccDone sentinel.
func (m *Machine) coutExit(exit int, indTarget uint32, indirect bool) int32 {
	m.cout.Fault = FNone
	m.cout.Exit = exit
	m.cout.IndTarget = indTarget
	m.cout.Indirect = indirect
	m.cout.GuestVec = 0
	m.cout.Addr = 0
	m.cout.GIdx = -1
	return ccDone
}

// staticTarget maps a compile-time branch target to what the closure should
// return: the target itself, or ccBadPC for garbage that would collide with
// the ccDone sentinel.
func staticTarget(t int32) int32 {
	if t == ccDone {
		return ccBadPC
	}
	return t
}

// compileCtrl builds the control-resolution closure for the molecule's
// single branch-unit atom.
func compileCtrl(a *Atom, next, nmols int32) ctrlFn {
	switch a.Op {
	case ABr:
		target := staticTarget(a.Target)
		return func(*Machine) int32 { return target }
	case ABrCC:
		target := staticTarget(a.Target)
		cond := a.Cond
		fs := FlagSrc(*a)
		if fs == RFlags {
			return func(m *Machine) int32 {
				if cond.Eval(m.Regs[RFlags]) {
					return target
				}
				return next
			}
		}
		return func(m *Machine) int32 {
			flags := m.Regs[fs]&^guest.FlagIF | m.Regs[RFlags]&guest.FlagIF
			if cond.Eval(flags) {
				return target
			}
			return next
		}
	case ABrNZ:
		target := staticTarget(a.Target)
		ra := a.Ra
		return func(m *Machine) int32 {
			if m.Regs[ra] != 0 {
				return target
			}
			return next
		}
	case AExit:
		exit := int(a.Imm)
		if a.Commit {
			return func(m *Machine) int32 {
				m.commit()
				return m.coutExit(exit, 0, false)
			}
		}
		return func(m *Machine) int32 {
			return m.coutExit(exit, 0, false)
		}
	case AExitInd:
		exit := int(a.Imm)
		ra := a.Ra
		commit := a.Commit
		return func(m *Machine) int32 {
			target := m.Regs[ra] // read before commit, like Exec's atom pass
			if commit {
				m.commit()
			}
			return m.coutExit(exit, target, true)
		}
	case ACommit:
		eip := a.Imm
		return func(m *Machine) int32 {
			m.commit()
			m.CommittedEIP = eip
			return next
		}
	}
	return func(*Machine) int32 { return next }
}

// compileAtom builds the specialized closure for one non-control atom, with
// every operand pre-resolved. It returns nil for ops it does not know (the
// molecule then takes the fallback path).
func compileAtom(a *Atom) atomFn {
	rd, rd2, ra, rb, rc := a.Rd, a.Rd2, a.Ra, a.Rb, a.Rc
	imm := a.Imm
	gi := int(a.GIdx)
	fs, fd := FlagSrc(*a), FlagDst(*a)
	renamed := fs != RFlags // flag image renamed: merge IF from RFlags

	// readFlags is inlined into each flag-consuming closure via the renamed
	// branch; the bool is loop-invariant and perfectly predicted.
	switch a.Op {
	case AMovI:
		return func(m *Machine) *Outcome { m.Regs[rd] = imm; return nil }
	case AMov:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra]; return nil }

	case AAdd:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] + m.Regs[rb]; return nil }
	case AAddI:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] + imm; return nil }
	case ASub:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] - m.Regs[rb]; return nil }
	case ASubI:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] - imm; return nil }
	case AAnd:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] & m.Regs[rb]; return nil }
	case AAndI:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] & imm; return nil }
	case AOr:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] | m.Regs[rb]; return nil }
	case AOrI:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] | imm; return nil }
	case AXor:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] ^ m.Regs[rb]; return nil }
	case AXorI:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] ^ imm; return nil }
	case AShl:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] << (m.Regs[rb] & 31); return nil }
	case AShlI:
		sh := imm & 31
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] << sh; return nil }
	case AShr:
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] >> (m.Regs[rb] & 31); return nil }
	case AShrI:
		sh := imm & 31
		return func(m *Machine) *Outcome { m.Regs[rd] = m.Regs[ra] >> sh; return nil }
	case ASar:
		return func(m *Machine) *Outcome {
			m.Regs[rd] = uint32(int32(m.Regs[ra]) >> (m.Regs[rb] & 31))
			return nil
		}
	case ASarI:
		sh := imm & 31
		return func(m *Machine) *Outcome { m.Regs[rd] = uint32(int32(m.Regs[ra]) >> sh); return nil }

	// Flag-computing ALU: result and EFLAGS image in one fused closure.
	case AAddCC, AAddICC, ASubCC, ASubICC, AShlCC, AShlICC,
		AShrCC, AShrICC, ASarCC, ASarICC:
		var alu func(flags, a, b uint32) (uint32, uint32)
		switch a.Op {
		case AAddCC, AAddICC:
			alu = guest.FlagsAdd
		case ASubCC, ASubICC:
			alu = guest.FlagsSub
		case AShlCC, AShlICC:
			alu = guest.FlagsShl
		case AShrCC, AShrICC:
			alu = guest.FlagsShr
		case ASarCC, ASarICC:
			alu = guest.FlagsSar
		}
		immForm := false
		switch a.Op {
		case AAddICC, ASubICC, AShlICC, AShrICC, ASarICC:
			immForm = true
		}
		if immForm {
			return func(m *Machine) *Outcome {
				res, f := alu(flagImage(m, fs, renamed), m.Regs[ra], imm)
				m.Regs[rd] = res
				m.Regs[fd] = f
				return nil
			}
		}
		return func(m *Machine) *Outcome {
			res, f := alu(flagImage(m, fs, renamed), m.Regs[ra], m.Regs[rb])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}

	case AAndCC, AAndICC, AOrCC, AOrICC, AXorCC, AXorICC:
		var logic func(a, b uint32) uint32
		switch a.Op {
		case AAndCC, AAndICC:
			logic = func(x, y uint32) uint32 { return x & y }
		case AOrCC, AOrICC:
			logic = func(x, y uint32) uint32 { return x | y }
		case AXorCC, AXorICC:
			logic = func(x, y uint32) uint32 { return x ^ y }
		}
		immForm := a.Op == AAndICC || a.Op == AOrICC || a.Op == AXorICC
		// The flag image must be read before the result write: when rd is
		// RFlags itself, writing first would feed the result into the IF
		// merge (atoms read all sources before any write).
		if immForm {
			return func(m *Machine) *Outcome {
				res := logic(m.Regs[ra], imm)
				f := guest.FlagsLogic(flagImage(m, fs, renamed), res)
				m.Regs[rd] = res
				m.Regs[fd] = f
				return nil
			}
		}
		return func(m *Machine) *Outcome {
			res := logic(m.Regs[ra], m.Regs[rb])
			f := guest.FlagsLogic(flagImage(m, fs, renamed), res)
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}

	case AAdcCC, AAdcICC, ASbbCC, ASbbICC:
		alu := guest.FlagsAdc
		if a.Op == ASbbCC || a.Op == ASbbICC {
			alu = guest.FlagsSbb
		}
		if a.Op == AAdcICC || a.Op == ASbbICC {
			return func(m *Machine) *Outcome {
				res, f := alu(flagImage(m, fs, renamed), m.Regs[ra], imm)
				m.Regs[rd] = res
				m.Regs[fd] = f
				return nil
			}
		}
		return func(m *Machine) *Outcome {
			res, f := alu(flagImage(m, fs, renamed), m.Regs[ra], m.Regs[rb])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}
	case AIncCC:
		return func(m *Machine) *Outcome {
			res, f := guest.FlagsInc(flagImage(m, fs, renamed), m.Regs[ra])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}
	case ADecCC:
		return func(m *Machine) *Outcome {
			res, f := guest.FlagsDec(flagImage(m, fs, renamed), m.Regs[ra])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}
	case ANegCC:
		return func(m *Machine) *Outcome {
			res, f := guest.FlagsNeg(flagImage(m, fs, renamed), m.Regs[ra])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}

	case AImulCC:
		return func(m *Machine) *Outcome {
			res, f := guest.FlagsImul(flagImage(m, fs, renamed), m.Regs[ra], m.Regs[rb])
			m.Regs[rd] = res
			m.Regs[fd] = f
			return nil
		}
	case AMul64:
		return func(m *Machine) *Outcome {
			lo, hi, f := guest.FlagsMul(flagImage(m, fs, renamed), m.Regs[ra], m.Regs[rb])
			m.Regs[rd] = lo
			m.Regs[rd2] = hi
			m.Regs[fd] = f
			return nil
		}
	case ADivU:
		return func(m *Machine) *Outcome {
			q, rem, ok := guest.DivU(m.Regs[rc], m.Regs[ra], m.Regs[rb])
			if !ok {
				return m.fault(FGuest, gi, 0, guest.VecDE)
			}
			m.Regs[rd] = q
			m.Regs[rd2] = rem
			return nil
		}
	case ADivS:
		return func(m *Machine) *Outcome {
			q, rem, ok := guest.DivS(m.Regs[rc], m.Regs[ra], m.Regs[rb])
			if !ok {
				return m.fault(FGuest, gi, 0, guest.VecDE)
			}
			m.Regs[rd] = q
			m.Regs[rd2] = rem
			return nil
		}

	case ASetCC:
		cond := a.Cond
		return func(m *Machine) *Outcome {
			v := uint32(0)
			if cond.Eval(flagImage(m, fs, renamed)) {
				v = 1
			}
			m.Regs[rd] = v
			return nil
		}

	case ALd:
		return compileLoad(a)
	case ASt:
		return compileStore(a)

	case AIn:
		port := uint16(imm)
		return func(m *Machine) *Outcome {
			if m.pendingIO() {
				return m.fault(FMMIOOrder, gi, 0, 0)
			}
			m.Regs[rd] = m.Bus.PortRead(port)
			return nil
		}
	case AOut:
		return func(m *Machine) *Outcome {
			m.sb = append(m.sb, sbEntry{kind: sbOut, addr: imm, val: m.Regs[rb], size: 4})
			return nil
		}
	}
	return nil
}

// flagImage reads the flag input execAtom would present: the (possibly
// renamed) arithmetic bits with the IF bit always taken from the
// architectural RFlags.
func flagImage(m *Machine, fs HReg, renamed bool) uint32 {
	if !renamed {
		return m.Regs[RFlags]
	}
	return m.Regs[fs]&^guest.FlagIF | m.Regs[RFlags]&guest.FlagIF
}

// compileLoad specializes ALd, fusing the alias-table allocation
// (load+alias-record) into the same closure.
func compileLoad(a *Atom) atomFn {
	rd, ra := a.Rd, a.Ra
	imm := a.Imm
	gi := int(a.GIdx)
	size := a.Size
	sizeInt := int(a.Size)
	usize := uint32(a.Size)
	reordered := a.Reordered
	protIdx := a.ProtIdx
	return func(m *Machine) *Outcome {
		addr := m.Regs[ra] + imm
		// Single present non-MMIO page: CheckRead is nil and the value comes
		// from RAM (through the store buffer); skip the per-check page walks.
		if m.Bus.FastRead(addr, usize) {
			m.Regs[rd] = m.sbLoad(addr, size)
			if protIdx != NoAliasIdx {
				m.alias[protIdx] = aliasEntry{addr: addr, size: size, epoch: m.aliasEpoch}
			}
			return nil
		}
		if gf := m.Bus.CheckRead(addr, sizeInt); gf != nil {
			return m.fault(FGuest, gi, addr, gf.Vector)
		}
		if m.Bus.IsMMIO(addr) {
			if reordered {
				return m.fault(FMMIOSpec, gi, addr, 0)
			}
			if m.pendingIO() {
				return m.fault(FMMIOOrder, gi, addr, 0)
			}
			if size == 1 {
				m.Regs[rd] = uint32(m.Bus.Read8(addr))
			} else {
				m.Regs[rd] = m.Bus.Read32(addr)
			}
		} else {
			m.Regs[rd] = m.sbLoad(addr, size)
		}
		if protIdx != NoAliasIdx {
			m.alias[protIdx] = aliasEntry{addr: addr, size: size, epoch: m.aliasEpoch}
		}
		return nil
	}
}

// compileStore specializes ASt with the alias-check mask resolved at compile
// time; the mask-free variant skips the check loop entirely.
func compileStore(a *Atom) atomFn {
	ra, rb := a.Ra, a.Rb
	imm := a.Imm
	gi := int(a.GIdx)
	size := a.Size
	sizeInt := int(a.Size)
	usize := uint32(a.Size)
	reordered := a.Reordered
	checkMask := a.CheckMask
	if checkMask == 0 {
		return func(m *Machine) *Outcome {
			addr := m.Regs[ra] + imm
			// Single present writable non-MMIO unprotected page: CheckWrite
			// and CheckProt are both nil with no side effects.
			if m.Bus.FastWrite(addr, usize) {
				m.sb = append(m.sb, sbEntry{kind: sbRAM, addr: addr, val: m.Regs[rb], size: size})
				return nil
			}
			if gf := m.Bus.CheckWrite(addr, sizeInt); gf != nil {
				return m.fault(FGuest, gi, addr, gf.Vector)
			}
			isMMIO := m.Bus.IsMMIO(addr)
			if isMMIO && reordered {
				return m.fault(FMMIOSpec, gi, addr, 0)
			}
			kind := sbRAM
			if isMMIO {
				kind = sbMMIO
			} else if hit := m.Bus.CheckProt(addr, sizeInt, mem.SrcCPU); hit != nil {
				return m.fault(FProt, gi, addr, 0)
			}
			m.sb = append(m.sb, sbEntry{kind: kind, addr: addr, val: m.Regs[rb], size: size})
			return nil
		}
	}
	return func(m *Machine) *Outcome {
		addr := m.Regs[ra] + imm
		if m.Bus.FastWrite(addr, usize) {
			for mask := checkMask; mask != 0; mask &= mask - 1 {
				e := &m.alias[bits.TrailingZeros64(mask)]
				if e.epoch == m.aliasEpoch && addr < e.addr+uint32(e.size) && e.addr < addr+usize {
					return m.fault(FAlias, gi, addr, 0)
				}
			}
			m.sb = append(m.sb, sbEntry{kind: sbRAM, addr: addr, val: m.Regs[rb], size: size})
			return nil
		}
		if gf := m.Bus.CheckWrite(addr, sizeInt); gf != nil {
			return m.fault(FGuest, gi, addr, gf.Vector)
		}
		isMMIO := m.Bus.IsMMIO(addr)
		if isMMIO && reordered {
			return m.fault(FMMIOSpec, gi, addr, 0)
		}
		if !isMMIO {
			if hit := m.Bus.CheckProt(addr, sizeInt, mem.SrcCPU); hit != nil {
				return m.fault(FProt, gi, addr, 0)
			}
		}
		for mask := checkMask; mask != 0; mask &= mask - 1 {
			e := &m.alias[bits.TrailingZeros64(mask)]
			if e.epoch == m.aliasEpoch && addr < e.addr+uint32(e.size) && e.addr < addr+usize {
				return m.fault(FAlias, gi, addr, 0)
			}
		}
		kind := sbRAM
		if isMMIO {
			kind = sbMMIO
		}
		m.sb = append(m.sb, sbEntry{kind: kind, addr: addr, val: m.Regs[rb], size: size})
		return nil
	}
}
