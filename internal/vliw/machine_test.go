package vliw

import (
	"strings"
	"testing"

	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/mem"
)

func mol(atoms ...Atom) Molecule { return Molecule{Atoms: atoms} }

// exitMol is a commit-and-exit molecule for exit 0.
func exitMol() Molecule {
	return mol(Atom{Op: AExit, Imm: 0, Commit: true, GIdx: -1})
}

func newM(t *testing.T) (*Machine, *mem.Bus) {
	t.Helper()
	bus := mem.NewBus(1 << 20)
	return NewMachine(bus), bus
}

func exec(t *testing.T, m *Machine, code *Code) Outcome {
	t.Helper()
	if err := code.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return m.Exec(code)
}

func TestSimpleComputeAndCommit(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 40}),
			mol(Atom{Op: AAddICC, Rd: GuestReg(guest.EAX), Ra: GuestReg(guest.EAX), Imm: 2}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FNone || out.Exit != 0 {
		t.Fatalf("outcome %+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 42 {
		t.Errorf("eax = %d", regs[guest.EAX])
	}
	if flags&guest.FlagZF != 0 || flags&guest.FlagsAlways == 0 {
		t.Errorf("flags = %#x", flags)
	}
	if m.Mols != 3 {
		t.Errorf("molecules = %d, want 3", m.Mols)
	}
	if m.Commits != 1 {
		t.Errorf("commits = %d", m.Commits)
	}
}

func TestRollbackRestoresRegisters(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	regs[guest.EAX] = 7
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	// Clobber EAX then divide by zero.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 999},
				Atom{Op: AMovI, Rd: GuestReg(guest.EBX), Imm: 0}),
			mol(Atom{Op: ADivU, Rd: RTempBase, Rd2: RTempBase + 1,
				Ra: GuestReg(guest.EAX), Rb: GuestReg(guest.EBX), Rc: GuestReg(guest.EBX), GIdx: 3}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FGuest || out.GuestVec != guest.VecDE || out.GIdx != 3 {
		t.Fatalf("outcome %+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 7 {
		t.Errorf("rollback lost eax: %d", regs[guest.EAX])
	}
	if m.Rollbacks != 1 {
		t.Errorf("rollbacks = %d", m.Rollbacks)
	}
	// Rollback charges its molecule cost.
	if m.Mols != 2+m.RollbackCost {
		t.Errorf("molecules = %d", m.Mols)
	}
}

func TestGatedStoreBuffer(t *testing.T) {
	m, bus := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	bus.Write32(0x5000, 0x1111)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 0xabcd}),
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase, Imm: 0x5000, Size: 4}),
			// Load it back through the store buffer before commit.
			mol(Atom{Op: ALd, Rd: RTempBase + 1, Ra: 63, Imm: 0x5000, Size: 4, ProtIdx: NoAliasIdx}),
			mol(), mol(), // latency spacing for the load
			mol(Atom{Op: AMov, Rd: GuestReg(guest.EAX), Ra: RTempBase + 1}),
			exitMol(),
		},
	}
	// Pre-fault check: memory must still hold the old value mid-run; we
	// verify by checking after a rollback in a second run below. First the
	// happy path:
	out := exec(t, m, code)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 0xabcd {
		t.Errorf("forwarded load = %#x, want 0xabcd", regs[guest.EAX])
	}
	if bus.Read32(0x5000) != 0xabcd {
		t.Error("commit must drain the store")
	}

	// Now a run that stores and then faults: the store must be dropped.
	bus.Write32(0x5000, 0x2222)
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code2 := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 0x9999},
				Atom{Op: AMovI, Rd: RTempBase + 2, Imm: 0}),
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase, Imm: 0x5000, Size: 4}),
			mol(Atom{Op: ADivU, Rd: RTempBase, Rd2: RTempBase + 1,
				Ra: RTempBase, Rb: RTempBase + 2, Rc: RTempBase + 2}),
			exitMol(),
		},
	}
	out = exec(t, m, code2)
	if out.Fault != FGuest {
		t.Fatalf("outcome %+v", out)
	}
	if bus.Read32(0x5000) != 0x2222 {
		t.Error("gated store leaked past a rollback")
	}
}

func TestByteAccurateForwarding(t *testing.T) {
	m, bus := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	bus.Write32(0x6000, 0xAABBCCDD)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 0x11}),
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase, Imm: 0x6001, Size: 1}),
			mol(Atom{Op: ALd, Rd: RTempBase + 1, Ra: 63, Imm: 0x6000, Size: 4, ProtIdx: NoAliasIdx}),
			mol(), mol(),
			mol(Atom{Op: AMov, Rd: GuestReg(guest.EAX), Ra: RTempBase + 1}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FNone {
		t.Fatalf("%+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 0xAABB11DD {
		t.Errorf("merged load = %#x, want 0xAABB11DD", regs[guest.EAX])
	}
}

func TestAliasHardwareDetectsOverlap(t *testing.T) {
	m, bus := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	bus.Write32(0x7000, 5)
	// A load hoisted above a store (reordered), protected by alias entry 0;
	// the store overlaps it.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: 63, Imm: 0x7000, Size: 4,
				Reordered: true, ProtIdx: 0, GIdx: 2}),
			mol(Atom{Op: AMovI, Rd: RTempBase + 1, Imm: 9}),
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase + 1, Imm: 0x7002, Size: 4,
				CheckMask: 1 << 0, GIdx: 1}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FAlias || out.GIdx != 1 {
		t.Fatalf("outcome %+v, want alias fault", out)
	}

	// Disjoint addresses: no fault.
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code.Mols[2].Atoms[0].Imm = 0x7004
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("disjoint store faulted: %+v", out)
	}
	// The alias table is cleared by commit: rerunning the store-only suffix
	// is not possible here, but a second full run must also pass.
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("second run faulted: %+v", out)
	}
}

func TestReorderedAtomFaultsOnMMIO(t *testing.T) {
	m, bus := newM(t)
	con := dev.NewConsole()
	bus.MapMMIO(dev.ConsoleMMIOBase, dev.ConsoleMMIOSize, con)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: 63, Imm: dev.ConsoleMMIOBase,
				Size: 4, Reordered: true, ProtIdx: NoAliasIdx, GIdx: 7}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FMMIOSpec || out.GIdx != 7 || out.Addr != dev.ConsoleMMIOBase {
		t.Fatalf("outcome %+v, want mmio-spec fault", out)
	}

	// The same access in order succeeds.
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code.Mols[0].Atoms[0].Reordered = false
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("in-order MMIO load faulted: %+v", out)
	}
}

func TestMMIOStoreGatedUntilCommit(t *testing.T) {
	m, bus := newM(t)
	con := dev.NewConsole()
	bus.MapMMIO(dev.ConsoleMMIOBase, dev.ConsoleMMIOSize, con)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)

	// Store to MMIO then fault: the device must never see the write.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 'X'},
				Atom{Op: AMovI, Rd: RTempBase + 2, Imm: 0}),
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase, Imm: dev.ConsoleMMIOBase, Size: 1}),
			mol(Atom{Op: ADivU, Rd: RTempBase, Rd2: RTempBase + 1,
				Ra: RTempBase, Rb: RTempBase + 2, Rc: RTempBase + 2}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FGuest {
		t.Fatalf("%+v", out)
	}
	if con.WriteCount != 0 {
		t.Error("MMIO store leaked past rollback — irrevocable I/O duplicated")
	}

	// Same code without the fault: exactly one device write at commit.
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code.Mols[2] = mol()
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("%+v", out)
	}
	if con.WriteCount != 1 || con.Text()[0] != 'X' {
		t.Errorf("device writes = %d, text[0] = %q", con.WriteCount, con.Text()[0])
	}
}

func TestMMIOLoadOrderingFault(t *testing.T) {
	m, bus := newM(t)
	con := dev.NewConsole()
	bus.MapMMIO(dev.ConsoleMMIOBase, dev.ConsoleMMIOSize, con)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	// OUT gated in the buffer, then an in-order MMIO load: must fault with
	// mmio-order (the load would otherwise pass the gated OUT).
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AOut, Imm: dev.ConsoleDataPort, Rb: RTempBase}),
			mol(Atom{Op: ALd, Rd: RTempBase + 1, Ra: 63, Imm: dev.ConsoleMMIOBase,
				Size: 4, ProtIdx: NoAliasIdx, GIdx: 4}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FMMIOOrder || out.GIdx != 4 {
		t.Fatalf("outcome %+v, want mmio-order", out)
	}
}

func TestProtectionFault(t *testing.T) {
	m, bus := newM(t)
	bus.Protect(9)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ASt, Ra: 63, Rb: RTempBase, Imm: 9 * mem.PageSize, Size: 4, GIdx: 5}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FProt || out.Addr != 9*mem.PageSize || out.GIdx != 5 {
		t.Fatalf("outcome %+v, want prot fault", out)
	}
}

func TestIRQRollsBack(t *testing.T) {
	m, bus := newM(t)
	irq := &dev.IRQController{}
	m.IRQ = irq
	_ = bus
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways|guest.FlagIF, 0)
	irq.Raise(dev.IRQTimer)
	code := &Code{NumExits: 1, Mols: []Molecule{exitMol()}}
	out := exec(t, m, code)
	if out.Fault != FIRQ {
		t.Fatalf("outcome %+v, want irq", out)
	}
	// With IF clear the code runs.
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("masked irq still interrupted: %+v", out)
	}
}

func TestLoopWithBrCC(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	regs[guest.ECX] = 5
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	eax, ecx := GuestReg(guest.EAX), GuestReg(guest.ECX)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: eax, Imm: 0}),
			// loop: eax += ecx; ecx--; brcc ne -> loop
			mol(Atom{Op: AAdd, Rd: eax, Ra: eax, Rb: ecx}),
			mol(Atom{Op: ADecCC, Rd: ecx, Ra: ecx}),
			mol(Atom{Op: ABrCC, Cond: guest.CondNE, Target: 1}),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FNone {
		t.Fatalf("%+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 15 {
		t.Errorf("sum = %d, want 15", regs[guest.EAX])
	}
	// 1 + 5*(3) + 1 exit... loop body is 3 molecules, last iteration's brcc
	// falls through: 1 + 15 + 1 = 17.
	if m.Mols != 17 {
		t.Errorf("molecules = %d, want 17", m.Mols)
	}
}

func TestIndirectExit(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTarget, Imm: 0x4242}),
			mol(Atom{Op: AExitInd, Ra: RTarget, Imm: 0, Commit: true}),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FNone || !out.Indirect || out.IndTarget != 0x4242 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestReadBeforeWriteSemantics(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	regs[guest.EAX] = 1
	regs[guest.EBX] = 2
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	eax, ebx := GuestReg(guest.EAX), GuestReg(guest.EBX)
	// Both moves read pre-molecule values: a swap in one molecule.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMov, Rd: eax, Ra: ebx}, Atom{Op: AMov, Rd: ebx, Ra: eax}),
			exitMol(),
		},
	}
	if out := exec(t, m, code); out.Fault != FNone {
		t.Fatalf("%+v", out)
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 2 || regs[guest.EBX] != 1 {
		t.Errorf("swap failed: eax=%d ebx=%d", regs[guest.EAX], regs[guest.EBX])
	}
}

func TestEarlyCommitSerializesIO(t *testing.T) {
	m, bus := newM(t)
	con := dev.NewConsole()
	bus.MapPort(dev.ConsoleDataPort, dev.ConsoleStatusPort, con)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 'A'}),
			mol(Atom{Op: AOut, Imm: dev.ConsoleDataPort, Rb: RTempBase}),
			mol(Atom{Op: ACommit}),
			// An IN right after the commit sees no pending I/O.
			mol(Atom{Op: AIn, Rd: GuestReg(guest.EAX), Imm: dev.ConsoleStatusPort}),
			mol(),
			exitMol(),
		},
	}
	out := exec(t, m, code)
	if out.Fault != FNone {
		t.Fatalf("%+v", out)
	}
	if con.OutputString() != "A" {
		t.Errorf("console = %q", con.OutputString())
	}
	var flags uint32
	m.StoreGuest(&regs, &flags)
	if regs[guest.EAX] != 1 {
		t.Errorf("status in = %d", regs[guest.EAX])
	}
	if m.Commits != 2 {
		t.Errorf("commits = %d", m.Commits)
	}
}

func TestValidateRejectsBadCode(t *testing.T) {
	cases := []struct {
		name string
		code Code
	}{
		{"too many atoms", Code{Mols: []Molecule{mol(
			Atom{Op: ANop}, Atom{Op: ANop}, Atom{Op: ANop}, Atom{Op: ANop}, Atom{Op: ANop})}}},
		{"three alu", Code{Mols: []Molecule{mol(
			Atom{Op: AAdd}, Atom{Op: ASub}, Atom{Op: AXor})}}},
		{"two mem", Code{Mols: []Molecule{mol(
			Atom{Op: ALd, Size: 4, ProtIdx: NoAliasIdx}, Atom{Op: ASt, Size: 4})}}},
		{"branch target range", Code{Mols: []Molecule{mol(
			Atom{Op: ABr, Target: 9})}}},
		{"exit range", Code{NumExits: 0, Mols: []Molecule{mol(
			Atom{Op: AExit, Imm: 0})}}},
		{"bad mem size", Code{Mols: []Molecule{mol(
			Atom{Op: ALd, Size: 2, ProtIdx: NoAliasIdx})}}},
		{"load latency violation", Code{NumExits: 1, Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: 63, Imm: 0x100, Size: 4, ProtIdx: NoAliasIdx}),
			mol(Atom{Op: AAdd, Rd: RTempBase + 1, Ra: RTempBase, Rb: RTempBase}),
			{Atoms: []Atom{{Op: AExit, Commit: true}}},
		}}},
	}
	for _, c := range cases {
		if err := c.code.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad code", c.name)
		}
	}
}

func TestValidateAcceptsLatencySpacing(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: 63, Imm: 0x100, Size: 4, ProtIdx: NoAliasIdx}),
			mol(Atom{Op: ANop}),
			mol(Atom{Op: ANop}),
			mol(Atom{Op: AAdd, Rd: RTempBase + 1, Ra: RTempBase, Rb: RTempBase}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Errorf("Validate rejected good code: %v", err)
	}
}

func TestFallOffCodeIsBadCode(t *testing.T) {
	m, _ := newM(t)
	var regs [guest.NumRegs]uint32
	m.LoadGuest(&regs, guest.FlagsAlways, 0)
	code := &Code{NumExits: 1, Mols: []Molecule{mol(Atom{Op: ANop})}}
	out := m.Exec(code)
	if out.Fault != FBadCode {
		t.Fatalf("outcome %+v", out)
	}
}

func TestNumAtomsAndNames(t *testing.T) {
	code := &Code{Mols: []Molecule{mol(Atom{Op: ANop}, Atom{Op: AAdd}), mol(Atom{Op: ALd, Size: 4})}}
	if code.NumAtoms() != 3 {
		t.Errorf("NumAtoms = %d", code.NumAtoms())
	}
	if ALd.String() != "ld" || UnitOf(ALd) != UnitMem {
		t.Error("atom metadata wrong")
	}
	if UnitOf(AImulCC) != UnitMedia || UnitOf(ABr) != UnitBranch || UnitOf(AAdd) != UnitALU {
		t.Error("unit routing wrong")
	}
	if UnitALU.String() != "alu" || FAlias.String() != "alias" {
		t.Error("string names wrong")
	}
}

func TestDisasm(t *testing.T) {
	code := &Code{
		NumExits: 2,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 7},
				Atom{Op: ALd, Rd: RTempBase + 1, Ra: 3, Imm: 8, Size: 4, Reordered: true, ProtIdx: 2, GIdx: 1}),
			mol(Atom{Op: AAddCC, Rd: 0, Ra: 0, Rb: RTempBase, Fs: 20, Fd: 21}),
			mol(Atom{Op: ASt, Ra: 3, Rb: 0, Imm: 8, Size: 4, CheckMask: 4}),
			mol(Atom{Op: ABrCC, Cond: guest.CondNE, Target: 5, Fs: 21}),
			mol(),
			exitMol(),
		},
	}
	var buf strings.Builder
	Disasm(&buf, code)
	out := buf.String()
	for _, want := range []string{
		"movi r16 = 0x7",
		"ld.4 r17 = [r3+0x8] R p2",
		";g1",
		"add.c r0 = r0, r16 [f20->f21]",
		"st.4 [r3+0x8] = r0",
		"cm=0x4",
		"brcc ne(f21) -> 5",
		"(stall)",
		"exit 0 commit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q in:\n%s", want, out)
		}
	}
}

// Every atom opcode executes against benign operands without panicking or
// corrupting the fault machinery — a sweep that catches machine gaps when
// the atom set grows.
func TestEveryAtomExecutes(t *testing.T) {
	for op := ANop; op <= ACommit; op++ {
		m, bus := newM(t)
		bus.WriteRaw(0x100, []byte{1, 2, 3, 4})
		var regs [guest.NumRegs]uint32
		regs[guest.EAX] = 8
		regs[guest.ECX] = 2
		m.LoadGuest(&regs, guest.FlagsAlways, 0)
		a := Atom{Op: op, Rd: RTempBase, Rd2: RTempBase + 1,
			Ra: GuestReg(guest.EAX), Rb: GuestReg(guest.ECX), Rc: GuestReg(guest.EDX),
			Imm: 0x100, Size: 4, ProtIdx: NoAliasIdx, GIdx: -1}
		switch op {
		case ABr, ABrCC, ABrNZ:
			a.Target = 1
		case AExit, AExitInd:
			a.Imm = 0
		}
		code := &Code{NumExits: 1, Mols: []Molecule{
			{Atoms: []Atom{a}},
			{Atoms: []Atom{{Op: AExit, Commit: true, ProtIdx: NoAliasIdx, GIdx: -1}}},
		}}
		out := m.Exec(code)
		if out.Fault == FBadCode {
			t.Errorf("atom %v: bad-code fault: %v", op, out.Err)
		}
	}
}

// Host generations: the validator accepts TM8000-width molecules only for
// the TM8000 config.
func TestHostConfigValidation(t *testing.T) {
	wide := &Code{NumExits: 1, Mols: []Molecule{
		{Atoms: []Atom{
			{Op: AAdd, Rd: 16}, {Op: AAdd, Rd: 17}, {Op: AAdd, Rd: 18},
			{Op: ASub, Rd: 19}, {Op: ALd, Rd: 20, Ra: 63, Size: 4, ProtIdx: NoAliasIdx},
		}},
		{Atoms: []Atom{{Op: AExit, Commit: true, ProtIdx: NoAliasIdx}}},
	}}
	if err := wide.Validate(); err == nil {
		t.Error("TM5800 must reject a 5-atom molecule")
	}
	if err := wide.ValidateWith(TM8000()); err != nil {
		t.Errorf("TM8000 must accept it: %v", err)
	}
	if TM8000().Latency(ALd) >= TM5800().Latency(ALd) {
		t.Error("TM8000 loads should be faster")
	}
	if TM5800().Name != "TM5800" || TM8000().Width != 8 {
		t.Error("preset metadata wrong")
	}
}
