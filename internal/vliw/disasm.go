package vliw

import (
	"fmt"
	"io"
	"strings"
)

// DisasmAtom renders one atom in a readable form, e.g.
//
//	add.c r17 = r16, r3 [f8->f20]
//	ld.4 r20 = [r19+0x8] R p2
//	brcc ne -> 14
func DisasmAtom(a Atom) string {
	var b strings.Builder
	switch a.Op {
	case ANop:
		return "nop"
	case AMovI:
		fmt.Fprintf(&b, "movi r%d = %#x", a.Rd, a.Imm)
	case AMov:
		fmt.Fprintf(&b, "mov r%d = r%d", a.Rd, a.Ra)
	case ALd:
		fmt.Fprintf(&b, "ld.%d r%d = [r%d+%#x]", a.Size, a.Rd, a.Ra, a.Imm)
		if a.Reordered {
			b.WriteString(" R")
		}
		if a.ProtIdx != NoAliasIdx {
			fmt.Fprintf(&b, " p%d", a.ProtIdx)
		}
	case ASt:
		fmt.Fprintf(&b, "st.%d [r%d+%#x] = r%d", a.Size, a.Ra, a.Imm, a.Rb)
		if a.Reordered {
			b.WriteString(" R")
		}
		if a.CheckMask != 0 {
			fmt.Fprintf(&b, " cm=%#x", a.CheckMask)
		}
	case AIn:
		fmt.Fprintf(&b, "in r%d = port[%#x]", a.Rd, a.Imm)
	case AOut:
		fmt.Fprintf(&b, "out port[%#x] = r%d", a.Imm, a.Rb)
	case ABr:
		fmt.Fprintf(&b, "br -> %d", a.Target)
	case ABrCC:
		fmt.Fprintf(&b, "brcc %v(f%d) -> %d", a.Cond, FlagSrc(a), a.Target)
	case ABrNZ:
		fmt.Fprintf(&b, "brnz r%d -> %d", a.Ra, a.Target)
	case AExit:
		fmt.Fprintf(&b, "exit %d", a.Imm)
		if a.Commit {
			b.WriteString(" commit")
		}
	case AExitInd:
		fmt.Fprintf(&b, "exit.ind %d via r%d", a.Imm, a.Ra)
		if a.Commit {
			b.WriteString(" commit")
		}
	case ACommit:
		fmt.Fprintf(&b, "commit eip=%#x", a.Imm)
	case AMul64:
		fmt.Fprintf(&b, "mul64 r%d:r%d = r%d * r%d [f%d->f%d]", a.Rd2, a.Rd, a.Ra, a.Rb, FlagSrc(a), FlagDst(a))
	case ADivU, ADivS:
		fmt.Fprintf(&b, "%v r%d,r%d = r%d:r%d / r%d", a.Op, a.Rd, a.Rd2, a.Rc, a.Ra, a.Rb)
	case ASetCC:
		fmt.Fprintf(&b, "setcc.%v(f%d) r%d", a.Cond, FlagSrc(a), a.Rd)
	default:
		// Generic ALU forms.
		imm := strings.HasSuffix(a.Op.String(), "i") || strings.HasSuffix(a.Op.String(), "i.c")
		if imm {
			fmt.Fprintf(&b, "%v r%d = r%d, %#x", a.Op, a.Rd, a.Ra, a.Imm)
		} else {
			fmt.Fprintf(&b, "%v r%d = r%d, r%d", a.Op, a.Rd, a.Ra, a.Rb)
		}
		if isCCOp(a.Op) {
			fmt.Fprintf(&b, " [f%d->f%d]", FlagSrc(a), FlagDst(a))
		}
	}
	if a.GIdx >= 0 {
		fmt.Fprintf(&b, "  ;g%d", a.GIdx)
	}
	return b.String()
}

func isCCOp(op AtomOp) bool {
	switch op {
	case AAddCC, AAddICC, ASubCC, ASubICC, AAndCC, AAndICC, AOrCC, AOrICC,
		AXorCC, AXorICC, AShlCC, AShlICC, AShrCC, AShrICC, ASarCC, ASarICC,
		AIncCC, ADecCC, ANegCC, AImulCC, AAdcCC, AAdcICC, ASbbCC, ASbbICC:
		return true
	}
	return false
}

// Disasm writes a molecule-per-line listing of the code to w.
func Disasm(w io.Writer, c *Code) {
	for mi, m := range c.Mols {
		if len(m.Atoms) == 0 {
			fmt.Fprintf(w, "%4d:  (stall)\n", mi)
			continue
		}
		for ai, a := range m.Atoms {
			if ai == 0 {
				fmt.Fprintf(w, "%4d:  %s\n", mi, DisasmAtom(a))
			} else {
				fmt.Fprintf(w, "       %s\n", DisasmAtom(a))
			}
		}
	}
}
