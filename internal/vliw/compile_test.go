package vliw

import (
	"testing"

	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/mem"
)

// diffSetup prepares one machine/bus pair for a differential run; it is
// invoked once per backend so both start from identical state.
type diffSetup func(m *Machine, bus *mem.Bus)

// runDiff executes code on both backends from identical initial state and
// fails the test unless outcomes, counters, committed state, and memory all
// match bit-for-bit.
func runDiff(t *testing.T, code *Code, setup diffSetup) (Outcome, *Machine) {
	t.Helper()
	cc := Compile(code)
	if cc == nil {
		t.Fatal("Compile returned nil")
	}

	run := func(compiled bool) (Outcome, *Machine, *mem.Bus) {
		bus := mem.NewBus(1 << 20)
		m := NewMachine(bus)
		var regs [guest.NumRegs]uint32
		m.LoadGuest(&regs, guest.FlagsAlways, 0x1000)
		if setup != nil {
			setup(m, bus)
		}
		if compiled {
			return *m.ExecCompiled(cc), m, bus
		}
		return m.Exec(code), m, bus
	}

	oi, mi, bi := run(false)
	oc, mc, bc := run(true)

	if oi.Fault != oc.Fault || oi.Exit != oc.Exit || oi.IndTarget != oc.IndTarget ||
		oi.Indirect != oc.Indirect || oi.GuestVec != oc.GuestVec ||
		oi.Addr != oc.Addr || oi.GIdx != oc.GIdx || (oi.Err == nil) != (oc.Err == nil) {
		t.Fatalf("outcome mismatch:\ninterp   %+v\ncompiled %+v", oi, oc)
	}
	if mi.Mols != mc.Mols || mi.Commits != mc.Commits || mi.Rollbacks != mc.Rollbacks {
		t.Fatalf("counter mismatch: interp mols/commits/rollbacks %d/%d/%d, compiled %d/%d/%d",
			mi.Mols, mi.Commits, mi.Rollbacks, mc.Mols, mc.Commits, mc.Rollbacks)
	}
	if mi.Shadow != mc.Shadow {
		t.Fatalf("shadow mismatch:\ninterp   %v\ncompiled %v", mi.Shadow, mc.Shadow)
	}
	if mi.CommittedEIP != mc.CommittedEIP {
		t.Fatalf("committed eip mismatch: interp %#x, compiled %#x", mi.CommittedEIP, mc.CommittedEIP)
	}
	// Shadowed working registers must match too (rollback restores them).
	for r := 0; r < NumShadowed; r++ {
		if mi.Regs[r] != mc.Regs[r] {
			t.Fatalf("working r%d mismatch: interp %#x, compiled %#x", r, mi.Regs[r], mc.Regs[r])
		}
	}
	ri, rc := bi.ReadRaw(0, 1<<16), bc.ReadRaw(0, 1<<16)
	for i := range ri {
		if ri[i] != rc[i] {
			t.Fatalf("memory mismatch at %#x: interp %#x, compiled %#x", i, ri[i], rc[i])
		}
	}
	return oc, mc
}

func TestCompiledSimpleComputeAndCommit(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 40}),
			mol(Atom{Op: AAddICC, Rd: GuestReg(guest.EAX), Ra: GuestReg(guest.EAX), Imm: 2}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone || out.Exit != 0 {
		t.Fatalf("outcome %+v", out)
	}
	if m.Shadow[GuestReg(guest.EAX)] != 42 {
		t.Fatalf("eax = %d", m.Shadow[GuestReg(guest.EAX)])
	}
	cc := Compile(code)
	if cc.Fallbacks() != 0 {
		t.Errorf("fallbacks = %d, want 0", cc.Fallbacks())
	}
	// Both fall-through molecules cascade into the exit molecule's closure:
	// the whole straight-line run is one fused call.
	if cc.Fused() != 2 {
		t.Errorf("fused = %d, want 2", cc.Fused())
	}
}

// hotLoop is the classic translated loop tail: dec.c + brcc, the
// compare+branch pair the fusion targets.
func hotLoop(iters uint32) *Code {
	return &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.ECX), Imm: iters}),                      // 0
			mol(Atom{Op: AAddI, Rd: GuestReg(guest.EAX), Ra: GuestReg(guest.EAX), Imm: 3}), // 1: loop head
			mol(Atom{Op: ADecCC, Rd: GuestReg(guest.ECX), Ra: GuestReg(guest.ECX)}),        // 2
			mol(Atom{Op: ABrCC, Cond: guest.CondNE, Target: 1}),                            // 3
			exitMol(), // 4
		},
	}
}

func TestCompiledHotLoopFusion(t *testing.T) {
	code := hotLoop(1000)
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if got := m.Shadow[GuestReg(guest.EAX)]; got != 3000 {
		t.Fatalf("eax = %d, want 3000", got)
	}
	cc := Compile(code)
	if cc.Fused() == 0 {
		t.Error("hot loop produced no fused pairs")
	}
}

func TestCompiledBranchIntoFusedSuccessor(t *testing.T) {
	// Molecule 2 falls through into the brnz at 3 (fused pair), but 3 is
	// also a direct jump target from molecule 1; the successor must stay
	// independently addressable.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.ECX), Imm: 2}),                                   // 0
			mol(Atom{Op: ABr, Target: 3}),                                                           // 1: jump straight at the fused successor
			mol(Atom{Op: AAddI, Rd: GuestReg(guest.ECX), Ra: GuestReg(guest.ECX), Imm: ^uint32(0)}), // 2 (fused into 3)
			mol(Atom{Op: ABrNZ, Ra: GuestReg(guest.ECX), Target: 2}),                                // 3
			exitMol(), // 4
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if got := m.Shadow[GuestReg(guest.ECX)]; got != 0 {
		t.Fatalf("ecx = %d, want 0", got)
	}
	cc := Compile(code)
	if cc.Fused() == 0 {
		t.Error("expected mol 2/3 to fuse")
	}
}

func TestCompiledDivideFaultRollsBack(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 999},
				Atom{Op: AMovI, Rd: GuestReg(guest.EBX), Imm: 0}),
			mol(Atom{Op: ADivU, Rd: RTempBase, Rd2: RTempBase + 1,
				Ra: GuestReg(guest.EAX), Rb: GuestReg(guest.EBX), Rc: GuestReg(guest.EBX), GIdx: 3}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, code, func(m *Machine, bus *mem.Bus) {
		m.Regs[GuestReg(guest.EAX)] = 7
		m.Shadow[GuestReg(guest.EAX)] = 7
	})
	if out.Fault != FGuest || out.GuestVec != guest.VecDE || out.GIdx != 3 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledStoreBufferForwarding(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 0xabcd}),
			mol(Atom{Op: ASt, Ra: RZero, Rb: RTempBase, Imm: 0x5000, Size: 4}),
			mol(Atom{Op: ALd, Rd: RTempBase + 1, Ra: RZero, Imm: 0x5000, Size: 4, ProtIdx: NoAliasIdx}),
			mol(), mol(),
			mol(Atom{Op: AMov, Rd: GuestReg(guest.EAX), Ra: RTempBase + 1}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, func(m *Machine, bus *mem.Bus) {
		bus.Write32(0x5000, 0x1111)
	})
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if got := m.Shadow[GuestReg(guest.EAX)]; got != 0xabcd {
		t.Fatalf("forwarded load = %#x, want 0xabcd", got)
	}
}

func TestCompiledAliasFault(t *testing.T) {
	// Load protects [0x6000,+4); overlapping store must raise FAlias.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: RZero, Imm: 0x6000, Size: 4,
				ProtIdx: 2, Reordered: true, GIdx: 5}),
			mol(Atom{Op: AMovI, Rd: RTempBase + 1, Imm: 1}),
			mol(Atom{Op: ASt, Ra: RZero, Rb: RTempBase + 1, Imm: 0x6002, Size: 4,
				CheckMask: 1 << 2, GIdx: 6}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, code, nil)
	if out.Fault != FAlias || out.GIdx != 6 || out.Addr != 0x6002 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledMMIO(t *testing.T) {
	setup := func(m *Machine, bus *mem.Bus) {
		bus.MapMMIO(dev.ConsoleMMIOBase, dev.ConsoleMMIOSize, dev.NewConsole())
	}
	// Reordered MMIO load: FMMIOSpec.
	spec := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: ALd, Rd: RTempBase, Ra: RZero, Imm: dev.ConsoleMMIOBase,
				Size: 4, Reordered: true, ProtIdx: NoAliasIdx, GIdx: 7}),
			exitMol(),
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, spec, setup)
	if out.Fault != FMMIOSpec || out.GIdx != 7 {
		t.Fatalf("outcome %+v", out)
	}

	// Gated OUT then in-order MMIO load: FMMIOOrder.
	order := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 'x'}),
			mol(Atom{Op: AOut, Imm: 0x3f8, Rb: RTempBase}),
			mol(Atom{Op: ALd, Rd: RTempBase + 1, Ra: RZero, Imm: dev.ConsoleMMIOBase,
				Size: 4, ProtIdx: NoAliasIdx, GIdx: 4}),
			exitMol(),
		},
	}
	if err := order.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ = runDiff(t, order, setup)
	if out.Fault != FMMIOOrder || out.GIdx != 4 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledIRQWindow(t *testing.T) {
	code := hotLoop(50)
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, code, func(m *Machine, bus *mem.Bus) {
		var regs [guest.NumRegs]uint32
		m.LoadGuest(&regs, guest.FlagsAlways|guest.FlagIF, 0x1000)
		irq := &dev.IRQController{}
		irq.Raise(dev.IRQTimer)
		m.IRQ = irq
	})
	if out.Fault != FIRQ {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledMidBodyCommit(t *testing.T) {
	// Lone ACommit (specializable) carrying a new committed EIP.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 11}),
			mol(Atom{Op: ACommit, Imm: 0x2000}),
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EBX), Imm: 22}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if m.Commits != 2 {
		t.Fatalf("commits = %d, want 2", m.Commits)
	}

	// ACommit sharing a molecule with a register write commits *pre-write*
	// state: must take the fallback and still match the interpreter.
	mixed := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 77},
				Atom{Op: ACommit, Imm: 0x3000}),
			mol(Atom{Op: AExit, Imm: 0, Commit: false, GIdx: -1}),
		},
	}
	if err := mixed.Validate(); err != nil {
		t.Fatal(err)
	}
	cc := Compile(mixed)
	if cc.Fallbacks() == 0 {
		t.Error("commit+write molecule should take the fallback closure")
	}
	out, m = runDiff(t, mixed, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	// The commit ran before the deferred write: shadow EAX is still 0.
	if m.Shadow[GuestReg(guest.EAX)] != 0 {
		t.Fatalf("shadow eax = %d, want 0 (commit precedes molecule writes)", m.Shadow[GuestReg(guest.EAX)])
	}
	// A store preceding a lone-ish commit is allowed to specialize.
	stThenCommit := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 9}),
			mol(Atom{Op: ASt, Ra: RZero, Rb: RTempBase, Imm: 0x7000, Size: 4},
				Atom{Op: ACommit, Imm: 0x4000}),
			exitMol(),
		},
	}
	if err := stThenCommit.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m = runDiff(t, stThenCommit, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if m.CommittedEIP != 0x4000 {
		t.Fatalf("committed eip = %#x", m.CommittedEIP)
	}
}

func TestCompiledIndirectExit(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTarget, Imm: 0xBEEF}),
			mol(Atom{Op: AExitInd, Ra: RTarget, Imm: 0, Commit: true, GIdx: -1}),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, code, nil)
	if !out.Indirect || out.IndTarget != 0xBEEF || out.Exit != 0 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledFallOffEnd(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 1}),
		},
	}
	out, _ := runDiff(t, code, nil)
	if out.Fault != FBadCode || out.Err == nil {
		t.Fatalf("outcome %+v", out)
	}

	empty := &Code{NumExits: 1}
	out, _ = runDiff(t, empty, nil)
	if out.Fault != FBadCode {
		t.Fatalf("empty code outcome %+v", out)
	}
}

func TestCompiledHazardTakesFallback(t *testing.T) {
	// Same-molecule read-after-write: illegal under validation, but Compile
	// must still reproduce Exec's (deferred-read) behavior via the fallback.
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 5},
				Atom{Op: AMov, Rd: GuestReg(guest.EBX), Ra: GuestReg(guest.EAX)}),
			exitMol(),
		},
	}
	cc := Compile(code)
	if cc.Fallbacks() == 0 {
		t.Error("hazard molecule should take the fallback closure")
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	// EBX read EAX's pre-molecule value (0), not 5.
	if m.Shadow[GuestReg(guest.EBX)] != 0 {
		t.Fatalf("ebx = %d, want 0 (read-before-write)", m.Shadow[GuestReg(guest.EBX)])
	}
}

func TestCompiledSetCCAndLogicFlags(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 0xF0},
				Atom{Op: AMovI, Rd: GuestReg(guest.EBX), Imm: 0x0F}),
			mol(Atom{Op: AAndCC, Rd: GuestReg(guest.ECX), Ra: GuestReg(guest.EAX), Rb: GuestReg(guest.EBX)}),
			mol(Atom{Op: ASetCC, Rd: GuestReg(guest.EDX), Cond: guest.CondE}),
			mol(Atom{Op: AXorICC, Rd: GuestReg(guest.ESI), Ra: GuestReg(guest.EAX), Imm: 0xF0}),
			mol(Atom{Op: AAdcICC, Rd: GuestReg(guest.EDI), Ra: GuestReg(guest.EDI), Imm: 1}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if m.Shadow[GuestReg(guest.EDX)] != 1 {
		t.Fatalf("setcc(e) after and=0: edx = %d, want 1", m.Shadow[GuestReg(guest.EDX)])
	}
}

// TestCompiledRenamedFlagImage exercises the Fs/Fd renaming: the flag image
// lives in a temporary, and the IF bit must still come from the
// architectural RFlags.
func TestCompiledRenamedFlagImage(t *testing.T) {
	ftmp := RTempBase + 8
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 1}),
			mol(Atom{Op: ASubICC, Rd: GuestReg(guest.EAX), Ra: GuestReg(guest.EAX), Imm: 1, Fd: ftmp}),
			mol(Atom{Op: ASetCC, Rd: GuestReg(guest.EBX), Cond: guest.CondE, Fs: ftmp}),
			mol(Atom{Op: ABrCC, Cond: guest.CondE, Fs: ftmp, Target: 5}),
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.ECX), Imm: 111}), // skipped
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EDX), Imm: 222}), // 5
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if m.Shadow[GuestReg(guest.EBX)] != 1 || m.Shadow[GuestReg(guest.ECX)] != 0 ||
		m.Shadow[GuestReg(guest.EDX)] != 222 {
		t.Fatalf("regs: ebx=%d ecx=%d edx=%d", m.Shadow[GuestReg(guest.EBX)],
			m.Shadow[GuestReg(guest.ECX)], m.Shadow[GuestReg(guest.EDX)])
	}
}

func TestCompiledProtFault(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 1}),
			mol(Atom{Op: ASt, Ra: RZero, Rb: RTempBase, Imm: 0x5004, Size: 4, GIdx: 2}),
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, _ := runDiff(t, code, func(m *Machine, bus *mem.Bus) {
		bus.Protect(mem.PageOf(0x5004))
	})
	if out.Fault != FProt || out.Addr != 0x5004 {
		t.Fatalf("outcome %+v", out)
	}
}

func TestCompiledMulDiv(t *testing.T) {
	code := &Code{
		NumExits: 1,
		Mols: []Molecule{
			mol(Atom{Op: AMovI, Rd: GuestReg(guest.EAX), Imm: 0x10000},
				Atom{Op: AMovI, Rd: GuestReg(guest.EBX), Imm: 0x30}),
			mol(Atom{Op: AMul64, Rd: GuestReg(guest.ECX), Rd2: GuestReg(guest.EDX),
				Ra: GuestReg(guest.EAX), Rb: GuestReg(guest.EBX)}),
			mol(), // media latency spacing
			mol(Atom{Op: AMovI, Rd: RTempBase, Imm: 7}),
			mol(Atom{Op: ADivU, Rd: GuestReg(guest.ESI), Rd2: GuestReg(guest.EDI),
				Ra: GuestReg(guest.ECX), Rb: RTempBase, Rc: RZero}),
			mol(), mol(), mol(), // div latency spacing
			exitMol(),
		},
	}
	if err := code.Validate(); err != nil {
		t.Fatal(err)
	}
	out, m := runDiff(t, code, nil)
	if out.Fault != FNone {
		t.Fatalf("outcome %+v", out)
	}
	if m.Shadow[GuestReg(guest.ECX)] != 0x300000 {
		t.Fatalf("mul low = %#x", m.Shadow[GuestReg(guest.ECX)])
	}
}

// BenchmarkExecBackends measures the interpreted and compiled backends on
// the same hot loop.
func BenchmarkExecBackends(b *testing.B) {
	code := hotLoop(1000)
	if err := code.Validate(); err != nil {
		b.Fatal(err)
	}
	cc := Compile(code)
	b.Run("interp", func(b *testing.B) {
		bus := mem.NewBus(1 << 20)
		m := NewMachine(bus)
		var regs [guest.NumRegs]uint32
		for i := 0; i < b.N; i++ {
			m.LoadGuest(&regs, guest.FlagsAlways, 0)
			if out := m.Exec(code); out.Fault != FNone {
				b.Fatal(out)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		bus := mem.NewBus(1 << 20)
		m := NewMachine(bus)
		var regs [guest.NumRegs]uint32
		for i := 0; i < b.N; i++ {
			m.LoadGuest(&regs, guest.FlagsAlways, 0)
			if out := m.ExecCompiled(cc); out.Fault != FNone {
				b.Fatal(out)
			}
		}
	})
}
