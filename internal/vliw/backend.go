// Backend SPI: the exported surface an alternate code-gen backend needs to
// drive the Machine's speculation hardware — commit/rollback boundaries, the
// gated store buffer, the alias table, interrupt windows, and outcome
// plumbing — without reaching into the unexported internals. internal/risc
// is the first consumer: its executor threads these primitives so that every
// fault class, every commit, and every counter lands bit-identically to
// Exec/ExecCompiled. Anything a second backend is allowed to observe or
// mutate goes through here; everything else stays private to this package.
package vliw

import (
	"fmt"
	"math/bits"

	"cms/internal/guest"
)

// ResetOutcome clears the machine-owned pending Outcome's pointer field, as
// ExecCompiled does on entry (exit paths store only scalar fields to keep GC
// write barriers off the hot path). A backend's exec loop must call this
// once before its first molecule.
func (m *Machine) ResetOutcome() { m.cout.Err = nil }

// IRQWindow performs the molecule-boundary interrupt check (§3.3): if an
// interrupt is pending and the committed IF allows it, the machine rolls
// back and the FIRQ outcome is returned; otherwise nil.
func (m *Machine) IRQWindow() *Outcome {
	if m.IRQ != nil && m.IRQ.HasPending() && m.Shadow[RFlags]&guest.FlagIF != 0 {
		m.rollback()
		m.cout = Outcome{Fault: FIRQ, Exit: -1, GIdx: -1}
		return &m.cout
	}
	return nil
}

// BadPC rolls back and reports the fall-off-the-end fault for an
// out-of-range molecule index, exactly as Exec/ExecCompiled do.
func (m *Machine) BadPC(pc int32) *Outcome {
	m.rollback()
	m.cout = Outcome{Fault: FBadCode, Exit: -1, GIdx: -1,
		Err: fmt.Errorf("vliw: control fell off code at molecule %d", pc)}
	return &m.cout
}

// Commit commits the current working state: shadow update, gated-store
// drain in program order, alias-table clear.
func (m *Machine) Commit() { m.commit() }

// FaultOutcome rolls back and builds the fault outcome for the atom at guest
// index gidx (the rare path owns the heap allocation, as in Exec).
func (m *Machine) FaultOutcome(f FaultClass, gidx int, addr uint32, vec int) *Outcome {
	return m.fault(f, gidx, addr, vec)
}

// ExitOutcome fills the machine-owned Outcome for a normal exit and returns
// it. The result is valid until the next execution, like ExecCompiled's.
func (m *Machine) ExitOutcome(exit int, indTarget uint32, indirect bool) *Outcome {
	m.coutExit(exit, indTarget, indirect)
	return &m.cout
}

// GatedLoad performs a RAM load through the gated store buffer (younger
// buffered bytes forward over memory contents).
func (m *Machine) GatedLoad(addr uint32, size uint8) uint32 { return m.sbLoad(addr, size) }

// GatedStore appends a store to the gated buffer; it drains at the next
// commit and vanishes on rollback. mmio selects the MMIO entry kind (the
// drain path is identical; the kind matters to PendingGatedIO).
func (m *Machine) GatedStore(addr, val uint32, size uint8, mmio bool) {
	kind := sbRAM
	if mmio {
		kind = sbMMIO
	}
	m.sb = append(m.sb, sbEntry{kind: kind, addr: addr, val: val, size: size})
}

// GatedOut appends a port write to the gated buffer.
func (m *Machine) GatedOut(port uint32, val uint32) {
	m.sb = append(m.sb, sbEntry{kind: sbOut, addr: port, val: val, size: 4})
}

// PendingGatedIO reports whether gated I/O (MMIO stores or OUTs) is
// buffered — the condition that forces serialization of in-order MMIO.
func (m *Machine) PendingGatedIO() bool { return m.pendingIO() }

// RecordAlias allocates alias-table protect entry idx over [addr, addr+size).
func (m *Machine) RecordAlias(idx int8, addr uint32, size uint8) {
	m.alias[idx] = aliasEntry{addr: addr, size: size, epoch: m.aliasEpoch}
}

// AliasConflict walks the set bits of a protect mask and reports whether any
// live entry overlaps the store window [addr, addr+size) — the check an ASt
// with a CheckMask performs before entering the store buffer.
func (m *Machine) AliasConflict(mask uint64, addr uint32, size uint8) bool {
	for ; mask != 0; mask &= mask - 1 {
		e := &m.alias[bits.TrailingZeros64(mask)]
		if e.epoch == m.aliasEpoch && addr < e.addr+uint32(e.size) && e.addr < addr+uint32(size) {
			return true
		}
	}
	return false
}

// ExecMoleculeExact runs one molecule with the interpreter's exact
// semantics — execAtom against pre-molecule state, deferred register writes,
// then control resolution — the same path Compile's fallback closures take.
// next is the fall-through molecule index. A non-nil Outcome ends the
// execution (fault or exit, commits already performed); otherwise the
// returned index is the next molecule (possibly out of range, which the
// caller's bounds check faults on, as ExecCompiled does via ccBadPC).
func (m *Machine) ExecMoleculeExact(mol *Molecule, next int32) (int32, *Outcome) {
	const maxWidth = 16
	var fixed [maxWidth]atomResult
	results := fixed[:]
	n := len(mol.Atoms)
	if n > maxWidth {
		results = make([]atomResult, n)
	}
	for i := 0; i < n; i++ {
		if fault := m.execAtom(&mol.Atoms[i], &results[i]); fault != nil {
			return 0, fault
		}
	}
	for i := 0; i < n; i++ {
		for w := 0; w < results[i].nw; w++ {
			m.Regs[results[i].writes[w].reg] = results[i].writes[w].val
		}
	}
	nx := next
	for i := 0; i < n; i++ {
		if results[i].exits {
			if mol.Atoms[i].Commit {
				m.commit()
			}
			m.coutExit(results[i].exit, results[i].indTarget, results[i].indirect)
			return 0, &m.cout
		}
		if results[i].branch {
			nx = results[i].target
			if nx == ccDone {
				nx = ccBadPC // garbage target: out of range, not "done"
			}
		}
	}
	return nx, nil
}

// SpecializableMol applies Compile's per-molecule gating for backends that
// run a molecule's atoms in order with immediate register writes and the
// control atom resolved last: at most one control atom, no same-molecule
// read-after-write hazard, and no mid-molecule commit that anything could
// reorder against. ctrlIdx is the control atom's index (-1 if none); ok
// false means the molecule must take an exact-semantics path
// (ExecMoleculeExact) to stay bit-identical to Exec.
func SpecializableMol(mol *Molecule) (ctrlIdx int, ok bool) {
	nctrl := 0
	ctrlIdx = -1
	for i := range mol.Atoms {
		switch mol.Atoms[i].Op {
		case ABr, ABrCC, ABrNZ, AExit, AExitInd, ACommit:
			nctrl++
			ctrlIdx = i
		}
	}
	if nctrl > 1 || molHazard(mol) || !commitSafe(mol, ctrlIdx) {
		return ctrlIdx, false
	}
	return ctrlIdx, true
}
