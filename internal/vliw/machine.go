package vliw

import (
	"fmt"
	"math/bits"

	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/mem"
)

// FaultClass classifies the host exceptions that interrupt a translation.
// Every one of them triggers a rollback to the last committed state; the
// runtime then decides what to do (§3 of the paper).
type FaultClass uint8

const (
	// FNone: no fault; the translation left through an exit.
	FNone FaultClass = iota
	// FGuest: a potentially guest-visible fault (page fault, divide error).
	// The interpreter decides whether it is genuine or an artifact of
	// speculation (§3.2).
	FGuest
	// FAlias: the alias hardware detected that reordered memory references
	// actually overlapped (§3.5).
	FAlias
	// FMMIOSpec: a reordered memory atom touched a memory-mapped I/O page
	// (§3.4).
	FMMIOSpec
	// FMMIOOrder: an in-order MMIO access could not proceed because earlier
	// I/O is still gated in the store buffer; the reference needs
	// serialization.
	FMMIOOrder
	// FProt: a store hit CMS-protected memory (self-modifying code or mixed
	// code and data, §3.6).
	FProt
	// FIRQ: an external interrupt is pending; the translation rolled back
	// so the runtime can deliver it at a consistent boundary (§3.3).
	FIRQ
	// FBadCode: the translation violated a hardware invariant (translator
	// bug); unrecoverable.
	FBadCode
)

var faultNames = [...]string{"none", "guest", "alias", "mmio-spec", "mmio-order", "prot", "irq", "bad-code"}

// String names the fault class.
func (f FaultClass) String() string { return faultNames[f] }

// Outcome reports how a translation execution ended.
type Outcome struct {
	// Fault is FNone when the code left through an exit.
	Fault FaultClass
	// Exit is the exit index taken (valid when Fault == FNone).
	Exit int
	// IndTarget is the dynamic guest target of an indirect exit.
	IndTarget uint32
	// Indirect reports whether the exit was indirect.
	Indirect bool

	// GuestVec is the guest exception vector for FGuest.
	GuestVec int
	// Addr is the faulting address for memory faults.
	Addr uint32
	// GIdx is the guest-instruction index of the faulting atom, or -1.
	GIdx int
	// Err carries detail for FBadCode.
	Err error
}

// sbKind distinguishes gated-store-buffer entries.
type sbKind uint8

const (
	sbRAM sbKind = iota
	sbMMIO
	sbOut
)

type sbEntry struct {
	kind sbKind
	addr uint32 // address or port
	val  uint32
	size uint8
}

// aliasEntry is one translator-managed protect slot. An entry is live when
// its epoch matches the machine's current aliasEpoch; bumping the epoch
// invalidates the whole table in O(1) (a zero-valued entry has size 0, so it
// can never overlap a store even at epoch 0).
type aliasEntry struct {
	addr  uint32
	size  uint8
	epoch uint64
}

// AliasTableSize is the number of protect entries the alias hardware offers.
// The paper notes Crusoe's table is explicitly translator-managed, unlike
// the associative MCB/ALAT designs.
const AliasTableSize = 48

// Machine is the VLIW host processor.
type Machine struct {
	// Regs is the working register file.
	Regs [NumHRegs]uint32
	// Shadow holds the committed copies of the low registers.
	Shadow [NumShadowed]uint32

	Bus *mem.Bus
	// IRQ, when non-nil, is polled at molecule boundaries; a pending
	// interrupt (with IF set in the working flags) rolls back and reports
	// FIRQ.
	IRQ *dev.IRQController

	alias      [AliasTableSize]aliasEntry
	aliasEpoch uint64
	sb         []sbEntry

	// Counters.
	Mols      uint64 // dynamic molecules executed (the paper's metric)
	Commits   uint64
	Rollbacks uint64

	// RollbackCost is the molecule charge per rollback ("less than a couple
	// of branch mispredictions").
	RollbackCost uint64

	// CommittedEIP is the guest instruction address of the last committed
	// boundary. LoadGuest sets it; ACommit atoms update it from their Imm
	// field, so that after a fault the runtime knows where re-interpretation
	// must start even when a translation committed mid-body to serialize
	// irrevocable I/O.
	CommittedEIP uint32

	// cout is the pending outcome slot of the compiled backend: a molecule
	// closure that exits or faults stores the outcome here and returns the
	// ccDone sentinel (see compile.go). Keeping the slot on the machine keeps
	// the compiled hot path free of per-exit allocations, mirroring how Exec
	// returns its Outcome by value.
	cout Outcome
}

// NewMachine returns a machine over the bus.
func NewMachine(bus *mem.Bus) *Machine {
	return &Machine{Bus: bus, RollbackCost: 4}
}

// LoadGuest installs the guest architectural state into both working and
// shadow registers and clears all speculative state; the machine is then at
// a committed boundary at guest address eip.
func (m *Machine) LoadGuest(regs *[guest.NumRegs]uint32, flags uint32, eip uint32) {
	for i := 0; i < guest.NumRegs; i++ {
		m.Regs[GuestReg(guest.Reg(i))] = regs[i]
	}
	m.Regs[RFlags] = flags
	m.Regs[RZero] = 0
	m.CommittedEIP = eip
	copy(m.Shadow[:], m.Regs[:NumShadowed])
	m.sb = m.sb[:0]
	m.clearAlias()
}

// StoreGuest reads the committed guest state back out.
func (m *Machine) StoreGuest(regs *[guest.NumRegs]uint32, flags *uint32) {
	for i := 0; i < guest.NumRegs; i++ {
		regs[i] = m.Shadow[GuestReg(guest.Reg(i))]
	}
	*flags = m.Shadow[RFlags]
}

func (m *Machine) clearAlias() {
	m.aliasEpoch++
}

// commit copies working state to shadow and drains the gated store buffer
// to the memory system in program order. Commits are architecturally free
// (§3.1: "commit operations are effectively free").
func (m *Machine) commit() {
	copy(m.Shadow[:], m.Regs[:NumShadowed])
	for _, e := range m.sb {
		switch e.kind {
		case sbRAM, sbMMIO:
			if e.size == 1 {
				m.Bus.Write8(e.addr, uint8(e.val))
			} else {
				m.Bus.Write32(e.addr, e.val)
			}
		case sbOut:
			m.Bus.PortWrite(uint16(e.addr), e.val)
		}
	}
	m.sb = m.sb[:0]
	m.clearAlias()
	m.Commits++
}

// rollback restores the last committed state: shadow registers back to
// working, gated stores dropped, alias table cleared.
func (m *Machine) rollback() {
	copy(m.Regs[:NumShadowed], m.Shadow[:])
	m.sb = m.sb[:0]
	m.clearAlias()
	m.Rollbacks++
	m.Mols += m.RollbackCost
}

// pendingIO reports whether gated I/O (MMIO stores or OUTs) is buffered.
func (m *Machine) pendingIO() bool {
	for _, e := range m.sb {
		if e.kind != sbRAM {
			return true
		}
	}
	return false
}

// sbLoad performs a RAM load that snoops the gated store buffer: younger
// buffered bytes forward over memory contents.
func (m *Machine) sbLoad(addr uint32, size uint8) uint32 {
	var v uint32
	if size == 1 {
		v = uint32(m.Bus.Read8(addr))
	} else {
		v = m.Bus.Read32(addr)
	}
	end := addr + uint32(size)
	for _, e := range m.sb {
		if e.kind != sbRAM || e.addr >= end || addr >= e.addr+uint32(e.size) {
			continue
		}
		// Apply overlapping bytes of e onto the loaded window, in order.
		for i := uint32(0); i < uint32(e.size); i++ {
			b := e.addr + i
			if b >= addr && b < addr+uint32(size) {
				sh := 8 * (b - addr)
				v = v&^(0xFF<<sh) | (uint32(uint8(e.val>>(8*i))) << sh)
			}
		}
	}
	return v
}

// fault rolls back and builds a fault outcome for the atom at guest index
// gidx. It returns a pointer so the (rare) fault path carries the only heap
// allocation; the exec hot path stays allocation-free.
func (m *Machine) fault(f FaultClass, gidx int, addr uint32, vec int) *Outcome {
	m.rollback()
	return &Outcome{Fault: f, Addr: addr, GuestVec: vec, GIdx: gidx, Exit: -1}
}

// regWrite is a deferred register write produced by an atom.
type regWrite struct {
	reg HReg
	val uint32
}

// atomResult collects an atom's deferred effects: register writes (applied
// after the whole molecule, per VLIW read-before-write semantics) and any
// control transfer.
type atomResult struct {
	writes [3]regWrite
	nw     int

	branch    bool
	target    int32
	exits     bool
	exit      int
	indTarget uint32
	indirect  bool
}

func (ar *atomResult) write(reg HReg, val uint32) {
	ar.writes[ar.nw] = regWrite{reg, val}
	ar.nw++
}

// Exec runs code from its first molecule until an exit or a fault. The
// caller must have established a committed boundary with LoadGuest or be
// arriving from a committed exit of a chained translation.
func (m *Machine) Exec(code *Code) Outcome {
	pc := 0
	// maxWidth bounds any host generation's issue width. The result slots
	// live outside the molecule loop; execAtom resets the live fields of its
	// slot, so nothing here is re-zeroed per molecule.
	const maxWidth = 16
	var results [maxWidth]atomResult
	for {
		// Interrupt window at molecule boundaries (§3.3): rollback and let
		// the runtime deliver at the last committed boundary.
		if m.IRQ != nil && m.IRQ.HasPending() && m.Shadow[RFlags]&guest.FlagIF != 0 {
			m.rollback()
			return Outcome{Fault: FIRQ, Exit: -1, GIdx: -1}
		}
		if pc < 0 || pc >= len(code.Mols) {
			m.rollback()
			return Outcome{Fault: FBadCode, Exit: -1, GIdx: -1,
				Err: fmt.Errorf("vliw: control fell off code at molecule %d", pc)}
		}
		mol := &code.Mols[pc]
		m.Mols++

		next := pc + 1
		n := len(mol.Atoms)
		for i := 0; i < n; i++ {
			// Index (not range) so the fat Atom struct is never copied.
			if fault := m.execAtom(&mol.Atoms[i], &results[i]); fault != nil {
				return *fault
			}
		}
		// Apply deferred writes in atom order, then resolve control.
		for i := 0; i < n; i++ {
			for w := 0; w < results[i].nw; w++ {
				m.Regs[results[i].writes[w].reg] = results[i].writes[w].val
			}
		}
		for i := 0; i < n; i++ {
			if results[i].exits {
				// Exits commit the post-molecule state; the commit already
				// happened in execAtom *before* deferred writes... so exits
				// are sequenced here instead: see execAtom, which never
				// commits; commits for exit atoms happen now.
				if mol.Atoms[i].Commit {
					m.commit()
				}
				return Outcome{Exit: results[i].exit, IndTarget: results[i].indTarget,
					Indirect: results[i].indirect, GIdx: -1}
			}
			if results[i].branch {
				next = int(results[i].target)
			}
		}
		pc = next
	}
}

// execAtom executes one atom against the pre-molecule register state,
// recording deferred writes in ar. A non-nil return is a fault Outcome
// (the machine has already rolled back).
func (m *Machine) execAtom(a *Atom, ar *atomResult) *Outcome {
	// Reset the slot's live fields (the slots are reused across molecules;
	// indTarget/exit/target are only read behind these flags).
	ar.nw = 0
	ar.branch = false
	ar.exits = false
	ar.indirect = false

	r := &m.Regs
	// The flag-image input: arithmetic bits come from the atom's flag
	// source (a renamed image or the architectural register); the IF bit
	// always comes from the architectural RFlags, which CLI/STI update
	// directly. This is what lets full flag writers execute without any
	// dependence on the previous flag image. (FlagSrc/FlagDst inlined: a
	// zero Fs/Fd means the architectural RFlags.)
	fs, fd := a.Fs, a.Fd
	if fs == 0 {
		fs = RFlags
	}
	if fd == 0 {
		fd = RFlags
	}
	flags := r[fs]
	if fs != RFlags {
		flags = flags&^guest.FlagIF | r[RFlags]&guest.FlagIF
	}
	gi := int(a.GIdx)

	switch a.Op {
	case ANop:
	case AMovI:
		ar.write(a.Rd, a.Imm)
	case AMov:
		ar.write(a.Rd, r[a.Ra])

	case AAdd:
		ar.write(a.Rd, r[a.Ra]+r[a.Rb])
	case AAddI:
		ar.write(a.Rd, r[a.Ra]+a.Imm)
	case ASub:
		ar.write(a.Rd, r[a.Ra]-r[a.Rb])
	case ASubI:
		ar.write(a.Rd, r[a.Ra]-a.Imm)
	case AAnd:
		ar.write(a.Rd, r[a.Ra]&r[a.Rb])
	case AAndI:
		ar.write(a.Rd, r[a.Ra]&a.Imm)
	case AOr:
		ar.write(a.Rd, r[a.Ra]|r[a.Rb])
	case AOrI:
		ar.write(a.Rd, r[a.Ra]|a.Imm)
	case AXor:
		ar.write(a.Rd, r[a.Ra]^r[a.Rb])
	case AXorI:
		ar.write(a.Rd, r[a.Ra]^a.Imm)
	case AShl:
		ar.write(a.Rd, r[a.Ra]<<(r[a.Rb]&31))
	case AShlI:
		ar.write(a.Rd, r[a.Ra]<<(a.Imm&31))
	case AShr:
		ar.write(a.Rd, r[a.Ra]>>(r[a.Rb]&31))
	case AShrI:
		ar.write(a.Rd, r[a.Ra]>>(a.Imm&31))
	case ASar:
		ar.write(a.Rd, uint32(int32(r[a.Ra])>>(r[a.Rb]&31)))
	case ASarI:
		ar.write(a.Rd, uint32(int32(r[a.Ra])>>(a.Imm&31)))

	case AAddCC, AAddICC, ASubCC, ASubICC, AShlCC, AShlICC,
		AShrCC, AShrICC, ASarCC, ASarICC:
		b := r[a.Rb]
		switch a.Op {
		case AAddICC, ASubICC, AShlICC, AShrICC, ASarICC:
			b = a.Imm
		}
		var res, f uint32
		switch a.Op {
		case AAddCC, AAddICC:
			res, f = guest.FlagsAdd(flags, r[a.Ra], b)
		case ASubCC, ASubICC:
			res, f = guest.FlagsSub(flags, r[a.Ra], b)
		case AShlCC, AShlICC:
			res, f = guest.FlagsShl(flags, r[a.Ra], b)
		case AShrCC, AShrICC:
			res, f = guest.FlagsShr(flags, r[a.Ra], b)
		case ASarCC, ASarICC:
			res, f = guest.FlagsSar(flags, r[a.Ra], b)
		}
		ar.write(a.Rd, res)
		ar.write(fd, f)

	case AAndCC, AAndICC, AOrCC, AOrICC, AXorCC, AXorICC:
		b := r[a.Rb]
		switch a.Op {
		case AAndICC, AOrICC, AXorICC:
			b = a.Imm
		}
		var res uint32
		switch a.Op {
		case AAndCC, AAndICC:
			res = r[a.Ra] & b
		case AOrCC, AOrICC:
			res = r[a.Ra] | b
		case AXorCC, AXorICC:
			res = r[a.Ra] ^ b
		}
		ar.write(a.Rd, res)
		ar.write(fd, guest.FlagsLogic(flags, res))

	case AAdcCC, AAdcICC, ASbbCC, ASbbICC:
		b := r[a.Rb]
		if a.Op == AAdcICC || a.Op == ASbbICC {
			b = a.Imm
		}
		var res, f uint32
		if a.Op == AAdcCC || a.Op == AAdcICC {
			res, f = guest.FlagsAdc(flags, r[a.Ra], b)
		} else {
			res, f = guest.FlagsSbb(flags, r[a.Ra], b)
		}
		ar.write(a.Rd, res)
		ar.write(fd, f)
	case AIncCC:
		res, f := guest.FlagsInc(flags, r[a.Ra])
		ar.write(a.Rd, res)
		ar.write(fd, f)
	case ADecCC:
		res, f := guest.FlagsDec(flags, r[a.Ra])
		ar.write(a.Rd, res)
		ar.write(fd, f)
	case ANegCC:
		res, f := guest.FlagsNeg(flags, r[a.Ra])
		ar.write(a.Rd, res)
		ar.write(fd, f)

	case AImulCC:
		res, f := guest.FlagsImul(flags, r[a.Ra], r[a.Rb])
		ar.write(a.Rd, res)
		ar.write(fd, f)
	case AMul64:
		lo, hi, f := guest.FlagsMul(flags, r[a.Ra], r[a.Rb])
		ar.write(a.Rd, lo)
		ar.write(a.Rd2, hi)
		ar.write(fd, f)
	case ADivU:
		q, rem, ok := guest.DivU(r[a.Rc], r[a.Ra], r[a.Rb])
		if !ok {
			return m.fault(FGuest, gi, 0, guest.VecDE)
		}
		ar.write(a.Rd, q)
		ar.write(a.Rd2, rem)
	case ADivS:
		q, rem, ok := guest.DivS(r[a.Rc], r[a.Ra], r[a.Rb])
		if !ok {
			return m.fault(FGuest, gi, 0, guest.VecDE)
		}
		ar.write(a.Rd, q)
		ar.write(a.Rd2, rem)

	case ASetCC:
		v := uint32(0)
		if a.Cond.Eval(flags) {
			v = 1
		}
		ar.write(a.Rd, v)

	case ALd:
		addr := r[a.Ra] + a.Imm
		if gf := m.Bus.CheckRead(addr, int(a.Size)); gf != nil {
			return m.fault(FGuest, gi, addr, gf.Vector)
		}
		if m.Bus.IsMMIO(addr) {
			if a.Reordered {
				return m.fault(FMMIOSpec, gi, addr, 0)
			}
			if m.pendingIO() {
				return m.fault(FMMIOOrder, gi, addr, 0)
			}
			if a.Size == 1 {
				ar.write(a.Rd, uint32(m.Bus.Read8(addr)))
			} else {
				ar.write(a.Rd, m.Bus.Read32(addr))
			}
		} else {
			ar.write(a.Rd, m.sbLoad(addr, a.Size))
		}
		if a.ProtIdx != NoAliasIdx {
			m.alias[a.ProtIdx] = aliasEntry{addr: addr, size: a.Size, epoch: m.aliasEpoch}
		}

	case ASt:
		addr := r[a.Ra] + a.Imm
		if gf := m.Bus.CheckWrite(addr, int(a.Size)); gf != nil {
			return m.fault(FGuest, gi, addr, gf.Vector)
		}
		isMMIO := m.Bus.IsMMIO(addr)
		if isMMIO && a.Reordered {
			return m.fault(FMMIOSpec, gi, addr, 0)
		}
		if !isMMIO {
			if hit := m.Bus.CheckProt(addr, int(a.Size), mem.SrcCPU); hit != nil {
				return m.fault(FProt, gi, addr, 0)
			}
		}
		// Walk only the set bits of the protect mask rather than all 48
		// table slots — stores with small masks dominate.
		for mask := a.CheckMask; mask != 0; mask &= mask - 1 {
			e := &m.alias[bits.TrailingZeros64(mask)]
			if e.epoch == m.aliasEpoch && addr < e.addr+uint32(e.size) && e.addr < addr+uint32(a.Size) {
				return m.fault(FAlias, gi, addr, 0)
			}
		}
		kind := sbRAM
		if isMMIO {
			kind = sbMMIO
		}
		m.sb = append(m.sb, sbEntry{kind: kind, addr: addr, val: r[a.Rb], size: a.Size})

	case AIn:
		if m.pendingIO() {
			return m.fault(FMMIOOrder, gi, 0, 0)
		}
		ar.write(a.Rd, m.Bus.PortRead(uint16(a.Imm)))
	case AOut:
		m.sb = append(m.sb, sbEntry{kind: sbOut, addr: a.Imm, val: r[a.Rb], size: 4})

	case ABr:
		ar.branch, ar.target = true, a.Target
	case ABrCC:
		if a.Cond.Eval(flags) {
			ar.branch, ar.target = true, a.Target
		}
	case ABrNZ:
		if r[a.Ra] != 0 {
			ar.branch, ar.target = true, a.Target
		}
	case AExit:
		ar.exits, ar.exit = true, int(a.Imm)
	case AExitInd:
		ar.exits, ar.exit = true, int(a.Imm)
		ar.indTarget, ar.indirect = r[a.Ra], true
	case ACommit:
		m.commit()
		m.CommittedEIP = a.Imm

	default:
		o := m.fault(FBadCode, gi, 0, 0)
		o.Err = fmt.Errorf("vliw: unknown atom op %d", a.Op)
		return o
	}
	return nil
}
