// Package vliw models the Crusoe-like native VLIW host: its instruction set
// (molecules of RISC-like atoms), its register file with shadowed guest
// state, and the speculation hardware the paper's recovery model rests on —
// commit and rollback (§3.1), the gated store buffer, the alias table
// (§3.5), the reordered-access attribute that faults on memory-mapped I/O
// (§3.4), and write-protection faults for translation consistency (§3.6).
//
// The machine counts dynamic molecules, the metric the paper's own simulator
// reports ("accurate dynamic molecule counts but not cycle accuracy").
package vliw

import (
	"fmt"

	"cms/internal/guest"
)

// HReg is a host register number. The file has 64 general registers; the
// low 16 are shadowed (working + shadow copy) and hold guest architectural
// state plus CMS-reserved slots, leaving r16..r63 as translation temporaries
// that never survive a commit boundary.
type HReg uint8

const (
	// NumHRegs is the host register file size.
	NumHRegs = 64
	// NumShadowed is how many low registers have shadow copies.
	NumShadowed = 16

	// RGuestBase..RGuestBase+7 hold the working copies of the eight guest
	// GPRs, in guest.Reg order.
	RGuestBase HReg = 0
	// RFlags holds the working guest EFLAGS image.
	RFlags HReg = 8
	// RTarget holds the guest EIP target of an indirect exit.
	RTarget HReg = 9
	// RScratch0 and up are CMS-reserved shadowed scratch registers.
	RScratch0 HReg = 10

	// RTempBase is the first non-shadowed temporary.
	RTempBase HReg = 16
	// RTempLast is the last register the translator may allocate.
	RTempLast HReg = 62
	// RZero is by convention always zero: the translator never allocates or
	// writes it, and LoadGuest clears it. It serves as the base register of
	// absolute-address memory atoms.
	RZero HReg = 63
)

// GuestReg returns the host register pinned to guest register r.
func GuestReg(r guest.Reg) HReg { return RGuestBase + HReg(r) }

// AtomOp enumerates host atom opcodes.
type AtomOp uint8

const (
	ANop AtomOp = iota

	// Data movement.
	AMovI // Rd = Imm
	AMov  // Rd = Ra

	// Plain ALU, register and immediate forms: Rd = Ra <op> (Rb | Imm).
	AAdd
	AAddI
	ASub
	ASubI
	AAnd
	AAndI
	AOr
	AOrI
	AXor
	AXorI
	AShl
	AShlI
	AShr
	AShrI
	ASar
	ASarI

	// Flag-computing ALU: as above but also writing guest EFLAGS into
	// RFlags with exact g86 semantics (the x86-support atoms the paper says
	// were added to the TM5000 family). Ra/Rb/Imm as the plain forms.
	AAddCC
	AAddICC
	ASubCC
	ASubICC
	AAndCC
	AAndICC
	AOrCC
	AOrICC
	AXorCC
	AXorICC
	AShlCC
	AShlICC
	AShrCC
	AShrICC
	ASarCC
	ASarICC
	AIncCC // Rd = Ra+1, CF preserved
	ADecCC
	ANegCC
	AAdcCC  // Rd = Ra+Rb+CF
	AAdcICC // Rd = Ra+Imm+CF
	ASbbCC  // Rd = Ra-Rb-CF
	ASbbICC // Rd = Ra-Imm-CF

	// Media-unit arithmetic: multiplies and divides.
	AImulCC // Rd = low32(Ra*Rb) signed, flags per g86 IMUL
	AMul64  // Rd = low32(Ra*Rb) unsigned, Rd2 = high32, flags per g86 MUL
	ADivU   // Rd = (Rb2:Ra)/Rb quotient, Rd2 = remainder; guest #DE on failure (Rb2 is Rc)
	ADivS   // signed form

	// SetCC: Rd = 1 if Cond holds in RFlags else 0.
	ASetCC

	// Memory. Address is Ra+Imm; Size is 1 or 4.
	ALd // Rd = mem[Ra+Imm]
	ASt // mem[Ra+Imm] = Rb

	// Port I/O. AIn reads the device immediately (the translator serializes
	// it); AOut enters the gated store buffer and reaches the device at
	// commit, in program order.
	AIn  // Rd = port[Imm]
	AOut // port[Imm] = Rb

	// Control flow within the translation. Target is a molecule index.
	ABr   // unconditional
	ABrCC // taken if Cond holds in RFlags
	ABrNZ // taken if Ra != 0 (used by self-checking translations, §3.6.3)

	// Translation exits. Exit carries the exit index in Imm; a commit is
	// performed first when Commit is set (the normal case). AExitInd takes
	// its guest target from Ra (conventionally RTarget).
	AExit
	AExitInd

	// ACommit performs a commit without leaving the translation (used to
	// serialize irrevocable I/O mid-translation).
	ACommit
)

var atomNames = map[AtomOp]string{
	ANop: "nop", AMovI: "movi", AMov: "mov",
	AAdd: "add", AAddI: "addi", ASub: "sub", ASubI: "subi",
	AAnd: "and", AAndI: "andi", AOr: "or", AOrI: "ori",
	AXor: "xor", AXorI: "xori", AShl: "shl", AShlI: "shli",
	AShr: "shr", AShrI: "shri", ASar: "sar", ASarI: "sari",
	AAddCC: "add.c", AAddICC: "addi.c", ASubCC: "sub.c", ASubICC: "subi.c",
	AAndCC: "and.c", AAndICC: "andi.c", AOrCC: "or.c", AOrICC: "ori.c",
	AXorCC: "xor.c", AXorICC: "xori.c", AShlCC: "shl.c", AShlICC: "shli.c",
	AShrCC: "shr.c", AShrICC: "shri.c", ASarCC: "sar.c", ASarICC: "sari.c",
	AIncCC: "inc.c", ADecCC: "dec.c", ANegCC: "neg.c",
	AAdcCC: "adc.c", AAdcICC: "adci.c", ASbbCC: "sbb.c", ASbbICC: "sbbi.c",
	AImulCC: "imul.c", AMul64: "mul64", ADivU: "divu", ADivS: "divs",
	ASetCC: "setcc", ALd: "ld", ASt: "st", AIn: "in", AOut: "out",
	ABr: "br", ABrCC: "brcc", ABrNZ: "brnz", AExit: "exit", AExitInd: "exit.ind", ACommit: "commit",
}

// String returns the atom opcode mnemonic.
func (op AtomOp) String() string {
	if n, ok := atomNames[op]; ok {
		return n
	}
	return fmt.Sprintf("atom?%d", uint8(op))
}

// Unit is a functional-unit class of the host pipeline.
type Unit uint8

// The TM5800's functional units: two ALUs, one memory unit, one
// floating-point/media unit (multiplies and divides issue here), and one
// branch unit.
const (
	UnitALU Unit = iota
	UnitMem
	UnitMedia
	UnitBranch
)

var unitNames = [...]string{"alu", "mem", "media", "branch"}

// String returns the unit name.
func (u Unit) String() string { return unitNames[u] }

// UnitOf returns the functional unit that executes op.
func UnitOf(op AtomOp) Unit {
	switch op {
	case ALd, ASt, AIn, AOut:
		return UnitMem
	case AImulCC, AMul64, ADivU, ADivS:
		return UnitMedia
	case ABr, ABrCC, ABrNZ, AExit, AExitInd, ACommit:
		return UnitBranch
	default:
		return UnitALU
	}
}

// HostConfig describes a host microarchitecture generation. The paper's
// point about co-design is that these can change freely between generations
// — "future generations of the hardware can change operation latencies, or
// other aspects of the native ISA or microarchitecture, without affecting
// the visible x86 architecture" — because only CMS needs to know.
type HostConfig struct {
	Name string
	// Width is the maximum atoms issued per molecule.
	Width int
	// Unit capacities per molecule.
	ALUs, MemUnits, MediaUnits, BranchUnits int
	// LoadLatency is the cache-hit load-to-use latency in molecules.
	LoadLatency int
	// MulLatency and DivLatency are the media-unit latencies.
	MulLatency, DivLatency int
}

// TM5800 is the paper's processor: molecules of 2 or 4 atoms over two ALUs,
// a memory unit, a floating-point/media unit, and a branch unit.
func TM5800() HostConfig {
	return HostConfig{
		Name: "TM5800", Width: 4,
		ALUs: 2, MemUnits: 1, MediaUnits: 1, BranchUnits: 1,
		LoadLatency: 3, MulLatency: 2, DivLatency: 4,
	}
}

// TM8000 models the next generation the paper announces ("a complete
// re-design of the instruction formats; this will all be invisible to x86
// code"): a wider machine in the shape of the later Efficeon.
func TM8000() HostConfig {
	return HostConfig{
		Name: "TM8000", Width: 8,
		ALUs: 4, MemUnits: 2, MediaUnits: 2, BranchUnits: 1,
		LoadLatency: 2, MulLatency: 2, DivLatency: 4,
	}
}

// Latency returns the result latency of op under the host configuration.
func (h HostConfig) Latency(op AtomOp) int {
	switch op {
	case ALd, AIn:
		return h.LoadLatency
	case AImulCC, AMul64:
		return h.MulLatency
	case ADivU, ADivS:
		return h.DivLatency
	default:
		return 1
	}
}

// Latency returns the TM5800 latency of op (the default host).
func Latency(op AtomOp) int { return TM5800().Latency(op) }

// FlagSrc returns the effective flag-source register of an atom.
func FlagSrc(a Atom) HReg {
	if a.Fs == 0 {
		return RFlags
	}
	return a.Fs
}

// FlagDst returns the effective flag-destination register of an atom.
func FlagDst(a Atom) HReg {
	if a.Fd == 0 {
		return RFlags
	}
	return a.Fd
}

// NoAliasIdx marks a load that allocates no alias-table entry.
const NoAliasIdx = -1

// Atom is one RISC-like host operation.
type Atom struct {
	Op   AtomOp
	Rd   HReg
	Rd2  HReg // second destination (AMul64, ADiv*)
	Ra   HReg
	Rb   HReg
	Rc   HReg // third source (ADiv* high word)
	Imm  uint32
	Cond guest.Cond // ABrCC, ASetCC

	// Fs and Fd are the flag source and destination registers of
	// flag-computing and flag-consuming atoms. The zero value means the
	// architectural RFlags: translations that rename the guest EFLAGS (see
	// the translator's rename pass) point these at temporaries instead,
	// which is what lets carry chains and branch conditions schedule as
	// freely as renamed data.
	Fs HReg
	Fd HReg

	// Size is the access width of ALd/ASt (1 or 4).
	Size uint8

	// Reordered marks a memory atom that has been moved with respect to the
	// original guest program order. The hardware faults if such an access
	// touches an MMIO page (§3.4).
	Reordered bool

	// ProtIdx, if not NoAliasIdx, is the alias-table entry this load
	// allocates, protecting its address range (§3.5).
	ProtIdx int8

	// CheckMask is the set of alias-table entries this store must be
	// checked against; an overlap raises an alias fault.
	CheckMask uint64

	// Target is the molecule index for ABr/ABrCC.
	Target int32

	// Commit applies to AExit/AExitInd: commit state before leaving.
	Commit bool

	// GIdx is the index (within the translation's guest region) of the
	// guest instruction this atom implements, or -1. Fault handlers use it
	// for adaptive retranslation decisions.
	GIdx int16
}

// Molecule is one VLIW instruction: up to four atoms issued together. All
// atoms read their source registers before any atom writes (VLIW
// read-before-write semantics).
type Molecule struct {
	Atoms []Atom
}

// MaxAtomsPerMolecule is the issue width of the default (TM5800) host.
const MaxAtomsPerMolecule = 4

// Code is an executable unit: the scheduled molecules of one translation.
type Code struct {
	Mols []Molecule
	// NumExits is how many exit indices the code may reference.
	NumExits int
}

// Validate checks the code against the default TM5800 host.
func (c *Code) Validate() error { return c.ValidateWith(TM5800()) }

// ValidateWith checks the static well-formedness rules the given hardware
// generation implies: per-molecule unit capacity, issue width, branch
// targets in range, register numbers in range, and no-interlock latency (a
// result may not be consumed earlier than its latency allows, including the
// same molecule).
func (c *Code) ValidateWith(h HostConfig) error {
	ready := make([]int, NumHRegs) // molecule index at which reg is readable
	for i := range ready {
		ready[i] = 0
	}
	for mi, mol := range c.Mols {
		if len(mol.Atoms) > h.Width {
			return fmt.Errorf("vliw: molecule %d issues %d atoms (width %d)", mi, len(mol.Atoms), h.Width)
		}
		var alu, memu, media, br int
		for ai, a := range mol.Atoms {
			switch UnitOf(a.Op) {
			case UnitALU:
				alu++
			case UnitMem:
				memu++
			case UnitMedia:
				media++
			case UnitBranch:
				br++
			}
			if err := c.validateAtom(mi, ai, a, ready); err != nil {
				return err
			}
		}
		if alu > h.ALUs || memu > h.MemUnits || media > h.MediaUnits || br > h.BranchUnits {
			return fmt.Errorf("vliw: molecule %d exceeds %s unit capacity (alu %d, mem %d, media %d, br %d)", mi, h.Name, alu, memu, media, br)
		}
		// Writes become visible after the whole molecule.
		for _, a := range mol.Atoms {
			for _, d := range atomDests(a) {
				ready[d] = mi + h.Latency(a.Op)
			}
		}
	}
	return nil
}

func (c *Code) validateAtom(mi, ai int, a Atom, ready []int) error {
	for _, s := range atomSources(a) {
		if int(s) >= NumHRegs {
			return fmt.Errorf("vliw: molecule %d atom %d reads r%d out of range", mi, ai, s)
		}
		if ready[s] > mi {
			return fmt.Errorf("vliw: molecule %d atom %d (%v) reads r%d before it is ready (at %d)", mi, ai, a.Op, s, ready[s])
		}
	}
	for _, d := range atomDests(a) {
		if int(d) >= NumHRegs {
			return fmt.Errorf("vliw: molecule %d atom %d writes r%d out of range", mi, ai, d)
		}
	}
	switch a.Op {
	case ABr, ABrCC, ABrNZ:
		if int(a.Target) < 0 || int(a.Target) >= len(c.Mols) {
			return fmt.Errorf("vliw: molecule %d branch target %d out of range", mi, a.Target)
		}
	case AExit, AExitInd:
		if int(a.Imm) >= c.NumExits {
			return fmt.Errorf("vliw: molecule %d exit %d out of range (%d exits)", mi, a.Imm, c.NumExits)
		}
	case ALd, ASt:
		if a.Size != 1 && a.Size != 4 {
			return fmt.Errorf("vliw: molecule %d atom %d bad memory size %d", mi, ai, a.Size)
		}
	}
	return nil
}

// atomSources lists the registers an atom reads.
func atomSources(a Atom) []HReg {
	switch a.Op {
	case ANop, AMovI, AIn:
		return nil
	case AMov:
		return []HReg{a.Ra}
	case AAddI, ASubI, AAndI, AOrI, AXorI, AShlI, AShrI, ASarI:
		return []HReg{a.Ra}
	case AAddICC, ASubICC, AAndICC, AOrICC, AXorICC, AShlICC, AShrICC, ASarICC:
		return []HReg{a.Ra, FlagSrc(a)}
	case AAdd, ASub, AAnd, AOr, AXor, AShl, AShr, ASar:
		return []HReg{a.Ra, a.Rb}
	case AAddCC, ASubCC, AAndCC, AOrCC, AXorCC, AShlCC, AShrCC, ASarCC, AImulCC, AMul64,
		AAdcCC, ASbbCC:
		return []HReg{a.Ra, a.Rb, FlagSrc(a)}
	case AAdcICC, ASbbICC:
		return []HReg{a.Ra, FlagSrc(a)}
	case AIncCC, ADecCC, ANegCC:
		return []HReg{a.Ra, FlagSrc(a)}
	case ADivU, ADivS:
		return []HReg{a.Ra, a.Rb, a.Rc}
	case ASetCC:
		return []HReg{FlagSrc(a)}
	case ALd:
		return []HReg{a.Ra}
	case ASt:
		return []HReg{a.Ra, a.Rb}
	case AOut:
		return []HReg{a.Rb}
	case ABrCC:
		return []HReg{FlagSrc(a)}
	case ABrNZ:
		return []HReg{a.Ra}
	case AExitInd:
		return []HReg{a.Ra}
	}
	return nil
}

// atomDests lists the registers an atom writes.
func atomDests(a Atom) []HReg {
	switch a.Op {
	case ANop, ASt, AOut, ABr, ABrCC, ABrNZ, AExit, AExitInd, ACommit:
		return nil
	case AMul64:
		return []HReg{a.Rd, a.Rd2, FlagDst(a)}
	case ADivU, ADivS: // divides leave guest flags unchanged
		return []HReg{a.Rd, a.Rd2}
	case AAddCC, AAddICC, ASubCC, ASubICC, AAndCC, AAndICC, AOrCC, AOrICC,
		AXorCC, AXorICC, AShlCC, AShlICC, AShrCC, AShrICC, ASarCC, ASarICC,
		AIncCC, ADecCC, ANegCC, AImulCC, AAdcCC, AAdcICC, ASbbCC, ASbbICC:
		return []HReg{a.Rd, FlagDst(a)}
	default:
		return []HReg{a.Rd}
	}
}

// NumAtoms returns the total atom count of the code (static code size).
func (c *Code) NumAtoms() int {
	n := 0
	for _, m := range c.Mols {
		n += len(m.Atoms)
	}
	return n
}

// SourceRegs returns the registers an atom reads (exported for the
// translator's dependence analysis).
func SourceRegs(a Atom) []HReg { return atomSources(a) }

// DestRegs returns the registers an atom writes.
func DestRegs(a Atom) []HReg { return atomDests(a) }
