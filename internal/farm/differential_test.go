package farm

import (
	"testing"

	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/fuzzer"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// soloRun executes one workload on a dedicated engine with NO shared store —
// the exact setup of the solo harness (internal/bench.Run) — and returns the
// same observables Result carries.
func soloRun(t *testing.T, w workload.Workload, cfg cms.Config) *Result {
	t.Helper()
	img := w.Build()
	plat := dev.NewPlatform(img.RAM, img.Disk)
	plat.Bus.WriteRaw(img.Org, img.Data)
	e := cms.New(plat, img.Entry, cfg)
	if err := e.Run(img.Budget); err != nil {
		t.Fatalf("%s solo: %v", w.Name, err)
	}
	cpu := e.CPU()
	return &Result{
		Regs:       cpu.Regs,
		EIP:        cpu.EIP,
		Flags:      cpu.Flags,
		Halted:     cpu.Halted,
		Console:    plat.Console.OutputString(),
		Metrics:    e.Metrics,
		CacheStats: e.Cache.Stats,
	}
}

// stateOf adapts a farm Result to the differential oracle's State so the
// comparison logic lives in exactly one place (internal/fuzzer). Memory and
// MMIO text are not part of a farm Result; they compare as equal empties.
func stateOf(name string, r *Result) *fuzzer.State {
	return &fuzzer.State{
		Name:    name,
		Regs:    r.Regs,
		EIP:     r.EIP,
		Flags:   r.Flags,
		Halted:  r.Halted,
		Console: r.Console,
		Metrics: r.Metrics,
		Cache:   r.CacheStats,
	}
}

// diffResults compares every deterministic observable: final architectural
// state, console output, the full Metrics struct, and translation-cache
// statistics. Wall-clock and shared-store attribution are deliberately
// excluded — those are the only fields allowed to differ.
func diffResults(t *testing.T, name string, solo, farm *Result) {
	t.Helper()
	a, b := stateOf("solo", solo), stateOf("farm", farm)
	if d := fuzzer.DiffArch(a, b); d != "" {
		t.Errorf("%s: architectural state differs: %s", name, d)
	}
	if d := fuzzer.DiffMetrics(a, b); d != "" {
		t.Errorf("%s: %s", name, d)
	}
}

// TestFarmDifferential is the subsystem's correctness contract: every suite
// workload run inside a 4-VM farm — concurrently, over one shared store,
// with a duplicate copy of each boot workload in the mix so cross-VM dedup
// actually engages — finishes with final guest state and the full Metrics
// struct byte-identical to a solo run. Run under -race this also exercises
// the store's concurrency safety.
func TestFarmDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is minutes long under -race")
	}
	cfg := cms.DefaultConfig()
	ws := workload.All()

	solo := make(map[string]*Result, len(ws))
	for _, w := range ws {
		solo[w.Name] = soloRun(t, w, cfg)
	}

	// StoreShards forced wide: the byte-identity contract must hold across
	// shard boundaries, not just on whatever GOMAXPROCS this host has.
	f := New(Config{MaxVMs: 4, QueueDepth: 2 * len(ws), Engine: cfg, StoreShards: 8})
	var ids []string
	for _, w := range ws {
		v, err := f.Submit(JobSpec{Workload: w.Name})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Duplicates: same workloads again, so some VM pairs run identical
	// guests and the second of each pair is served largely from the store.
	for _, w := range ws {
		v, err := f.Submit(JobSpec{Workload: w.Name})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	f.Drain()

	for _, id := range ids {
		v, ok := f.Job(id)
		if !ok {
			t.Fatalf("%s vanished", id)
		}
		if v.Status != StatusDone {
			t.Fatalf("%s (%s): status %s: %s", id, v.Spec.Workload, v.Status, v.Error)
		}
		diffResults(t, id+"/"+v.Spec.Workload, solo[v.Spec.Workload], v.Result)
	}

	st := f.Stats()
	if st.Store.Hits+st.Store.Waits == 0 {
		t.Error("duplicate workloads produced no shared-store dedup")
	}
	if st.Done != uint64(2*len(ws)) {
		t.Errorf("done = %d, want %d", st.Done, 2*len(ws))
	}
}

// TestFarmDifferentialPipelined repeats the contract with the concurrent
// translation pipeline enabled in every VM — shared store and pipeline
// compose, and Metrics stay solo-identical.
func TestFarmDifferentialPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is minutes long under -race")
	}
	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = 2
	ws := workload.Boots() // boots exercise SMC/MMIO; apps covered above

	f := New(Config{MaxVMs: 4, QueueDepth: 2 * len(ws), Engine: cfg, StoreShards: 8})
	var ids []string
	for i := 0; i < 2; i++ {
		for _, w := range ws {
			v, err := f.Submit(JobSpec{Workload: w.Name})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, v.ID)
		}
	}
	f.Drain()

	for _, id := range ids {
		v, _ := f.Job(id)
		if v.Status != StatusDone {
			t.Fatalf("%s (%s): status %s: %s", id, v.Spec.Workload, v.Status, v.Error)
		}
		w, err := workload.ByName(v.Spec.Workload)
		if err != nil {
			t.Fatal(err)
		}
		diffResults(t, id+"/"+v.Spec.Workload, soloRun(t, w, cfg), v.Result)
	}
}

// runMixedFarm submits copies×(workload, backend) jobs for every listed
// backend over one shared store, drains, checks every job against its solo
// result, and returns the final store stats.
func runMixedFarm(t *testing.T, ws []workload.Workload, backends []string,
	copies int, cfg cms.Config, solo map[string]*Result) tcache.SharedStats {
	t.Helper()
	f := New(Config{MaxVMs: 4, QueueDepth: copies * len(backends) * len(ws),
		Engine: cfg, StoreShards: 8})
	var ids []string
	for i := 0; i < copies; i++ {
		for _, w := range ws {
			for _, backend := range backends {
				v, err := f.Submit(JobSpec{Workload: w.Name, Backend: backend})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, v.ID)
			}
		}
	}
	f.Drain()
	for _, id := range ids {
		v, ok := f.Job(id)
		if !ok {
			t.Fatalf("%s vanished", id)
		}
		if v.Status != StatusDone {
			t.Fatalf("%s (%s/%s): status %s: %s",
				id, v.Spec.Backend, v.Spec.Workload, v.Status, v.Error)
		}
		key := v.Spec.Backend + "/" + v.Spec.Workload
		diffResults(t, id+"/"+key, solo[key], v.Result)
	}
	return f.Stats().Store
}

// TestFarmMixedBackendDifferential runs farms where jobs execute under the
// risc register-IR backend next to the default vliw compiled backend, over
// one shared store. Two contracts at once:
//
//  1. Isolation: backend tags are part of the content keys, so the two
//     backends install disjoint key sets — a mixed farm ends with exactly
//     the sum of the single-backend farms' store entries. (A raw zero-hit
//     assertion would be wrong: a lone VM legitimately re-hits artifacts it
//     installed itself after SMC invalidations.)
//  2. Identity: with within-backend duplicates added, dedup engages — the
//     duplicates add no new entries and strictly raise the hit/wait count —
//     and every job, whichever backend, hit or miss, finishes
//     byte-identical to a solo run under that backend's configuration.
//
// Run under -race this also proves mixed-backend stores are data-race free.
func TestFarmMixedBackendDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite is minutes long under -race")
	}
	cfg := cms.DefaultConfig()
	ws := workload.Boots() // SMC/MMIO-heavy; the app suite is covered above

	solo := make(map[string]*Result, 2*len(ws))
	for _, w := range ws {
		solo["vliw/"+w.Name] = soloRun(t, w, cfg)
		rcfg := cfg
		rcfg.Backend = "risc"
		solo["risc/"+w.Name] = soloRun(t, w, rcfg)
	}

	vliwOnly := runMixedFarm(t, ws, []string{"vliw"}, 1, cfg, solo)
	riscOnly := runMixedFarm(t, ws, []string{"risc"}, 1, cfg, solo)
	mixed := runMixedFarm(t, ws, []string{"vliw", "risc"}, 1, cfg, solo)
	if mixed.Evictions+vliwOnly.Evictions+riscOnly.Evictions != 0 {
		t.Fatalf("unexpected evictions perturb the entry accounting")
	}
	if mixed.Entries != vliwOnly.Entries+riscOnly.Entries {
		t.Errorf("backends share store keys: mixed entries %d != %d vliw + %d risc",
			mixed.Entries, vliwOnly.Entries, riscOnly.Entries)
	}

	// Within-backend duplicates: no new keys, strictly more store service.
	dup := runMixedFarm(t, ws, []string{"vliw", "risc"}, 2, cfg, solo)
	if dup.Entries != mixed.Entries {
		t.Errorf("duplicates changed the key set: %d entries, want %d",
			dup.Entries, mixed.Entries)
	}
	if dup.Hits+dup.Waits <= mixed.Hits+mixed.Waits {
		t.Errorf("within-backend duplicates produced no extra dedup: %d+%d vs %d+%d",
			dup.Hits, dup.Waits, mixed.Hits, mixed.Waits)
	}
}

// TestFarmRejectsUnknownBackend: backend validation happens at submit, not
// deep inside a VM attempt.
func TestFarmRejectsUnknownBackend(t *testing.T) {
	f := New(Config{MaxVMs: 1, QueueDepth: 1})
	if _, err := f.Submit(JobSpec{Workload: "boot-counting", Backend: "mips"}); err == nil {
		t.Fatal("Submit accepted an unknown backend")
	}
}
