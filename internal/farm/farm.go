// Package farm is the multi-guest serving subsystem: it runs many
// independent guest VMs concurrently in one process — goroutine-per-VM
// behind an admission-controlled queue — over ONE shared content-addressed
// translation store, so identical hot regions across VMs are translated and
// compiled once (the way an inference server shares compiled kernels across
// requests).
//
// The determinism contract is the paper's, scaled out: sharing is safe
// exactly because every translation's assumptions are explicit in its
// content key (source bytes, trace, policy rung, MMIO bits, host), and
// install/chaining stays per-VM — each VM's simulated Metrics and final
// architectural state are bit-identical to a solo run of the same workload
// (proven by differential test). The store moves wall-clock time only.
//
// Lock layout (docs/INTERNALS.md "Hot-path architecture"): there is no
// farm-wide mutex on any hot path. Admission (Submit) takes a read lock on
// admMu — shared among concurrent submitters, exclusive only against the
// one-time queue close in Drain — plus a short exclusive section on jobsMu
// to register the job. Runners never touch the job table: a job travels to
// its runner through the queue channel, and all per-job lifecycle state is
// guarded by that job's own mutex, so observers snapshotting one job never
// block another job's runner. Counters hot enough to be touched per job
// (queued/active) are atomics; per-runner aggregates live in cache-line-
// padded shards owned by one runner each and are folded only when Stats()
// is read.
package farm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/fuzzer"
	"cms/internal/guest"
	"cms/internal/incident"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// Config shapes a Farm. The zero value is normalized to the defaults.
type Config struct {
	// MaxVMs is how many guest VMs run concurrently (default 4). Each VM is
	// one goroutine running one job's engine to completion.
	MaxVMs int
	// QueueDepth bounds the admission queue (default 64). Submit fails with
	// ErrQueueFull beyond it — the backpressure cmsserve turns into HTTP 429.
	QueueDepth int
	// StoreCapAtoms bounds the shared translation store (0 = default).
	StoreCapAtoms int
	// StoreShards overrides the shared store's shard count (0 = size from
	// GOMAXPROCS). Tests force a wide array so cross-shard behavior is
	// exercised even on small hosts.
	StoreShards int
	// Engine is the per-VM engine configuration template. Its SharedStore
	// field is overwritten with the farm's store.
	Engine cms.Config
	// DefaultBudget is the guest instruction budget for source jobs and
	// workload jobs that do not set one (default 100M).
	DefaultBudget uint64

	// IncidentDir, when non-empty, receives one JSON incident bundle per
	// failed engine attempt (panic, watchdog timeout, or engine error) —
	// replayable solo with `cmsfuzz -replay <bundle>`. Setup failures (a
	// source that does not assemble) produce no bundle: no engine ran.
	IncidentDir string

	// DisableRetry turns off the rung-demoting retry: failed and panicked
	// jobs then report their first attempt's outcome directly.
	DisableRetry bool

	// BreakerWindow sizes the circuit breaker's recent-outcome ring
	// (0 = default 32, negative = breaker disabled). The breaker opens when
	// the window is full and at least half its outcomes are failures or
	// timeouts; while open, Submit sheds load with ErrBreakerOpen, admitting
	// every BreakerProbe-th request as a probe. Any success closes it.
	BreakerWindow int
	// BreakerProbe is the probe admission period while open (default 8).
	BreakerProbe int
}

func (c Config) normalized() Config {
	if c.MaxVMs <= 0 {
		c.MaxVMs = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 100_000_000
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 32
	}
	if c.BreakerProbe <= 0 {
		c.BreakerProbe = 8
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	// StatusTimeout marks a job the per-job watchdog preempted: its
	// wall-clock deadline expired and the engine was stopped cooperatively
	// at a committed boundary. Timeouts are terminal (no retry — a demoted
	// rung is slower, not faster) but fully replayable from the incident
	// bundle's retired-instruction count.
	StatusTimeout Status = "timeout"
)

// JobSpec describes one guest VM run: a named suite workload or raw g86
// assembly source, with an optional instruction budget.
type JobSpec struct {
	// Workload names a benchmark from the suite (workload.All).
	Workload string `json:"workload,omitempty"`
	// Source is raw g86 assembly, mutually exclusive with Workload.
	Source string `json:"source,omitempty"`
	// Budget overrides the guest instruction budget (0 = workload default).
	Budget uint64 `json:"budget,omitempty"`
	// DeadlineMs arms a per-job wall-clock watchdog: when it expires the
	// engine is preempted cooperatively at the next commit boundary and the
	// job finishes as StatusTimeout. 0 = no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// InjectSeed, when non-zero, arms a deterministic fault-injection
	// schedule (internal/fuzzer) on the job's engine — the chaos harness's
	// way of forcing rollbacks, alias faults, and evictions in production
	// shape. ChaosPanics additionally injects deterministic host panics
	// (fuzzer.NewChaosSchedule).
	InjectSeed  uint64 `json:"inject_seed,omitempty"`
	ChaosPanics bool   `json:"chaos_panics,omitempty"`
}

// Result is a completed VM's final architectural state and statistics.
type Result struct {
	Regs    [guest.NumRegs]uint32 `json:"regs"`
	EIP     uint32                `json:"eip"`
	Flags   uint32                `json:"flags"`
	Halted  bool                  `json:"halted"`
	Console string                `json:"console,omitempty"`

	// Metrics is the full simulated statistics struct — bit-identical to a
	// solo run of the same job, shared store or not.
	Metrics    cms.Metrics  `json:"metrics"`
	CacheStats tcache.Stats `json:"cache_stats"`

	GuestInsns uint64 `json:"guest_insns"`
	Mols       uint64 `json:"mols"`
	// SharedHits/SharedMisses attribute this VM's translation requests to
	// the shared store (wall-clock observability; not part of Metrics).
	SharedHits   uint64 `json:"shared_hits"`
	SharedMisses uint64 `json:"shared_misses"`
	WallNs       int64  `json:"wall_ns"`

	// Retry provenance. Attempts is how many engine attempts ran (2 when
	// the job was retried on a demoted rung); Rung names the configuration
	// rung that produced this result ("full", "nocompile", or "interp");
	// RetryReason is the first attempt's failure when Attempts > 1.
	Attempts    int    `json:"attempts,omitempty"`
	Rung        string `json:"rung,omitempty"`
	RetryReason string `json:"retry_reason,omitempty"`
}

// job is the farm's internal record; JobView is its API snapshot. The
// identity fields (id, spec) are immutable after Submit; everything else is
// guarded by the job's own mutex so observers of one job never contend with
// other jobs' runners.
type job struct {
	id   string
	spec JobSpec

	mu        sync.Mutex
	status    Status
	errMsg    string
	result    *Result
	incidents []string // bundle paths written for this job's failed attempts
	created   time.Time
	started   time.Time
	finished  time.Time
}

// JobView is an immutable snapshot of a job for callers and the HTTP API.
type JobView struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status Status  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// LatencyNs is submit-to-completion wall time, including queue wait
	// (0 until the job finishes) — the number the farmscale harness turns
	// into p50/p99 serving latency.
	LatencyNs int64 `json:"latency_ns,omitempty"`
	// Incidents lists the replayable incident bundles written for this
	// job's failed attempts (empty for healthy jobs or without IncidentDir).
	Incidents []string `json:"incidents,omitempty"`
}

// view snapshots the job under its own mutex.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Spec: j.spec, Status: j.status, Error: j.errMsg, Result: j.result}
	if len(j.incidents) > 0 {
		v.Incidents = append([]string(nil), j.incidents...)
	}
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusTimeout {
		v.LatencyNs = j.finished.Sub(j.created).Nanoseconds()
	}
	return v
}

// Errors Submit returns; cmsserve maps them to HTTP statuses. ErrQueueFull
// is transient backpressure (429: retry soon, same farm); ErrDraining is
// terminal for this process (503 + Retry-After: find another); ErrBreakerOpen
// is the circuit breaker shedding load after a failure storm (503: the farm
// is up but degraded, probes will close the breaker when health returns).
var (
	ErrQueueFull   = errors.New("farm: admission queue full")
	ErrDraining    = errors.New("farm: draining, not accepting jobs")
	ErrBreakerOpen = errors.New("farm: circuit breaker open, shedding load")
)

// runnerCounters is one runner's slice of the farm aggregates. Each runner
// owns exactly one element of Farm.runners and is the only writer; Stats()
// folds them on read. The atomics are uncontended in steady state, and the
// trailing pad keeps neighbouring runners' counters off one cache line.
type runnerCounters struct {
	done         atomic.Uint64
	failed       atomic.Uint64
	timeouts     atomic.Uint64 // jobs preempted by the watchdog
	panics       atomic.Uint64 // engine attempts that panicked (may be 2 per job)
	retries      atomic.Uint64 // rung-demoting retries started
	retrySuccess atomic.Uint64 // retries that completed the job
	guest        atomic.Uint64
	mols         atomic.Uint64
	xlate        atomic.Uint64
	rollbacks    atomic.Uint64
	retrans      atomic.Uint64
	_            [64]byte
}

// Farm runs guest VMs over a shared translation store.
type Farm struct {
	cfg   Config
	store *tcache.SharedStore
	queue chan *job
	wg    sync.WaitGroup

	// admMu serializes admission against the one-time queue close: Submit
	// holds it shared (submitters never block each other), Drain takes it
	// exclusive for the closed=true + close(queue) transition.
	admMu  sync.RWMutex
	closed bool

	// jobsMu guards only the job table and submission order; per-job state
	// is behind each job's own mutex.
	jobsMu sync.RWMutex
	jobs   map[string]*job
	order  []*job

	seq       atomic.Uint64 // job-id sequence; may skip on rejected admissions
	submitted atomic.Uint64 // successful admissions
	queued    atomic.Int64
	active    atomic.Int64

	incidents atomic.Uint64 // incident bundles written (rare; farm-wide)

	breaker breaker

	runners []runnerCounters
}

// New starts a farm: MaxVMs runner goroutines over an empty shared store.
func New(cfg Config) *Farm {
	cfg = cfg.normalized()
	f := &Farm{
		cfg:     cfg,
		store:   tcache.NewSharedShards(cfg.StoreCapAtoms, cfg.StoreShards),
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		runners: make([]runnerCounters, cfg.MaxVMs),
	}
	f.breaker.init(cfg.BreakerWindow, cfg.BreakerProbe)
	if cfg.IncidentDir != "" {
		_ = os.MkdirAll(cfg.IncidentDir, 0o755) // best-effort; writes degrade gracefully
	}
	f.wg.Add(cfg.MaxVMs)
	for i := 0; i < cfg.MaxVMs; i++ {
		go f.runner(i)
	}
	return f
}

// Store exposes the shared translation store (for stats and tests).
func (f *Farm) Store() *tcache.SharedStore { return f.store }

// Submit validates and enqueues a job. It never blocks: a full queue is
// ErrQueueFull, a draining farm is ErrDraining. Concurrent submitters do
// not serialize against each other or against running jobs' bookkeeping —
// the only exclusive section is the job-table insert.
func (f *Farm) Submit(spec JobSpec) (JobView, error) {
	if (spec.Workload == "") == (spec.Source == "") {
		return JobView{}, errors.New("farm: spec needs exactly one of workload or source")
	}
	if spec.Workload != "" {
		if _, err := workload.ByName(spec.Workload); err != nil {
			return JobView{}, err
		}
	}
	f.admMu.RLock()
	defer f.admMu.RUnlock()
	if f.closed {
		return JobView{}, ErrDraining
	}
	if !f.breaker.admit() {
		return JobView{}, ErrBreakerOpen
	}
	j := &job{
		id:      fmt.Sprintf("job-%06d", f.seq.Add(1)),
		spec:    spec,
		status:  StatusQueued,
		created: time.Now(),
	}
	f.queued.Add(1)
	select {
	case f.queue <- j:
	default:
		f.queued.Add(-1)
		return JobView{}, ErrQueueFull
	}
	f.submitted.Add(1)
	f.jobsMu.Lock()
	f.jobs[j.id] = j
	f.order = append(f.order, j)
	f.jobsMu.Unlock()
	return j.view(), nil
}

// Job returns a snapshot of one job.
func (f *Farm) Job(id string) (JobView, bool) {
	f.jobsMu.RLock()
	j, ok := f.jobs[id]
	f.jobsMu.RUnlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs returns snapshots of every job in submission order. The job table is
// held only long enough to copy the order slice; per-job snapshots and any
// formatting by the caller happen outside farm-wide locks.
func (f *Farm) Jobs() []JobView {
	f.jobsMu.RLock()
	order := make([]*job, len(f.order))
	copy(order, f.order)
	f.jobsMu.RUnlock()
	out := make([]JobView, 0, len(order))
	for _, j := range order {
		out = append(out, j.view())
	}
	return out
}

// Draining reports whether admission has been closed (Drain was called) —
// the readiness signal cmsserve's /readyz surfaces.
func (f *Farm) Draining() bool {
	f.admMu.RLock()
	defer f.admMu.RUnlock()
	return f.closed
}

// Drain stops admission and waits for every queued and running job to
// finish — the SIGTERM path of cmsserve. Safe to call more than once.
func (f *Farm) Drain() {
	f.admMu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.admMu.Unlock()
	f.wg.Wait()
}

// Wait blocks until every currently submitted job has finished, without
// closing admission (tests and the bench harness).
func (f *Farm) Wait() {
	for {
		if f.queued.Load() == 0 && f.active.Load() == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of farm-level counters.
type Stats struct {
	VMs       int
	Active    int
	Queued    int
	Done      uint64
	Failed    uint64
	Submitted uint64

	// Fault-containment counters. Timeouts are watchdog preemptions (jobs);
	// Panics counts panicked engine attempts; Retries/RetrySuccesses track
	// the rung-demoting retry; Incidents counts bundles written; BreakerOpen
	// and BreakerShed describe the admission circuit breaker.
	Timeouts       uint64
	Panics         uint64
	Retries        uint64
	RetrySuccesses uint64
	Incidents      uint64
	BreakerOpen    bool
	BreakerShed    uint64

	Store tcache.SharedStats

	// Aggregates over completed jobs.
	GuestInsns     uint64
	Mols           uint64
	Translations   uint64
	Rollbacks      uint64 // faults absorbed by rollback + re-interpretation
	Retranslations uint64 // adaptive retranslation events
}

// Stats returns the farm's counters, folded from the per-runner shards and
// the store's per-shard atomics. It takes no farm-wide lock and is safe to
// call at any rate while jobs run.
func (f *Farm) Stats() Stats {
	st := Stats{
		VMs:         f.cfg.MaxVMs,
		Active:      int(f.active.Load()),
		Queued:      int(f.queued.Load()),
		Submitted:   f.submitted.Load(),
		Incidents:   f.incidents.Load(),
		BreakerOpen: f.breaker.isOpen(),
		BreakerShed: f.breaker.shedCount(),
		Store:       f.store.Stats(),
	}
	if st.Queued < 0 {
		st.Queued = 0 // transient: a runner decremented before Submit's increment landed
	}
	for i := range f.runners {
		r := &f.runners[i]
		st.Done += r.done.Load()
		st.Failed += r.failed.Load()
		st.Timeouts += r.timeouts.Load()
		st.Panics += r.panics.Load()
		st.Retries += r.retries.Load()
		st.RetrySuccesses += r.retrySuccess.Load()
		st.GuestInsns += r.guest.Load()
		st.Mols += r.mols.Load()
		st.Translations += r.xlate.Load()
		st.Rollbacks += r.rollbacks.Load()
		st.Retranslations += r.retrans.Load()
	}
	return st
}

// runner is one VM slot: it executes queued jobs to completion, one at a
// time, until the queue closes. Lifecycle updates touch only the job's own
// mutex and this runner's counter shard — never a farm-wide lock.
func (f *Farm) runner(slot int) {
	defer f.wg.Done()
	rc := &f.runners[slot]
	for j := range f.queue {
		f.active.Add(1)
		f.queued.Add(-1)
		j.mu.Lock()
		j.status = StatusRunning
		j.started = time.Now()
		j.mu.Unlock()

		f.process(j, rc)

		f.active.Add(-1)
	}
}

// rungName names the conservativeness rung a configuration sits on.
func rungName(c cms.Config) string {
	switch {
	case c.NoTranslate:
		return "interp"
	case !c.EnableCompiledBackend:
		return "nocompile"
	default:
		return "full"
	}
}

// demote returns the next more-conservative rung for the retry: the compiled
// backend is switched off first, then translation entirely (interpreter
// only — the always-correct reference mode, and the most isolated: nothing
// is compiled, installed, or shared). ok is false at the bottom of the
// ladder.
func demote(c cms.Config) (cms.Config, string, bool) {
	switch {
	case c.NoTranslate:
		return c, "interp", false
	case c.EnableCompiledBackend:
		c.EnableCompiledBackend = false
		return c, "nocompile", true
	default:
		c.NoTranslate = true
		c.PipelineWorkers = 0
		return c, "interp", true
	}
}

// process runs one job through up to two engine attempts — the configured
// rung, then (for panics and engine errors, not timeouts) one retry on the
// next rung down — and finalizes the job's status, counters, and breaker
// outcome. This is the paper's speculate/recover/retranslate-conservatively
// response lifted to whole jobs: the aggressive configuration is the
// speculation, the recover() and watchdog are the rollback, and the demoted
// rung is the conservative retranslation.
func (f *Farm) process(j *job, rc *runnerCounters) {
	out := f.attempt(j, 0, f.cfg.Engine, rungName(f.cfg.Engine))
	countAttempt(rc, out)
	incidents := out.incidents()
	retried := false
	firstErr := ""
	if out.res == nil && out.retryable && !f.cfg.DisableRetry {
		if demoted, drung, ok := demote(f.cfg.Engine); ok {
			retried = true
			firstErr = out.err.Error()
			rc.retries.Add(1)
			out = f.attempt(j, 1, demoted, drung)
			countAttempt(rc, out)
			incidents = append(incidents, out.incidents()...)
		}
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.incidents = incidents
	switch {
	case out.res != nil:
		if retried {
			out.res.RetryReason = firstErr
		}
		j.status = StatusDone
		j.result = out.res
	case out.kind == incident.KindTimeout:
		j.status = StatusTimeout
		j.errMsg = out.err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = out.err.Error()
	}
	j.mu.Unlock()

	switch {
	case out.res != nil:
		res := out.res
		if retried {
			rc.retrySuccess.Add(1)
		}
		rc.done.Add(1)
		rc.guest.Add(res.GuestInsns)
		rc.mols.Add(res.Mols)
		rc.xlate.Add(res.Metrics.Translations)
		var rb, rt uint64
		for _, n := range res.Metrics.Faults {
			rb += n
		}
		for _, n := range res.Metrics.Adaptations {
			rt += n
		}
		rc.rollbacks.Add(rb)
		rc.retrans.Add(rt)
		f.breaker.record(false)
	case out.kind == incident.KindTimeout:
		rc.timeouts.Add(1)
		f.breaker.record(true)
	default:
		rc.failed.Add(1)
		f.breaker.record(true)
	}
}

// countAttempt folds per-attempt (not per-job) outcomes into the runner's
// counter shard.
func countAttempt(rc *runnerCounters, out attemptOut) {
	if out.kind == incident.KindPanic {
		rc.panics.Add(1)
	}
}

// attemptOut is the outcome of one engine attempt.
type attemptOut struct {
	res       *Result // non-nil on success
	err       error
	kind      string // incident.Kind* for engine failures, "" for setup errors
	retryable bool
	incident  string // bundle path, "" when none was written
}

func (o attemptOut) incidents() []string {
	if o.incident == "" {
		return nil
	}
	return []string{o.incident}
}

// attempt runs one VM once under engCfg. Workload jobs are set up exactly
// like the solo harness (internal/bench.Run) — same platform, same load,
// same budget — so the differential test can compare farm results against
// solo runs byte-for-byte. The engine runs inside a recover() so a host
// panic — a compiled-closure bug, or an injected chaos panic — is contained
// to this attempt: the implicated shared artifact is poisoned, an incident
// bundle is written, and the runner keeps serving.
func (f *Farm) attempt(j *job, n int, engCfg cms.Config, rung string) attemptOut {
	spec := j.spec
	var (
		org, entry uint32
		data, disk []byte
		ram        uint32
		budget     uint64
		stackTop   uint32
	)
	switch {
	case spec.Workload != "":
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return attemptOut{err: err}
		}
		img := w.Build()
		org, data, entry = img.Org, img.Data, img.Entry
		disk, ram, budget = img.Disk, img.RAM, img.Budget
	default:
		prog, err := asm.Assemble(spec.Source)
		if err != nil {
			return attemptOut{err: err}
		}
		org, data, entry = prog.Org, prog.Image, prog.Entry()
		ram = 1 << 21
		budget = f.cfg.DefaultBudget
		stackTop = ram / 2
	}
	if spec.Budget > 0 {
		budget = spec.Budget
	}

	cfg := engCfg
	cfg.SharedStore = f.store

	var sched *fuzzer.Schedule
	if spec.InjectSeed != 0 {
		if spec.ChaosPanics {
			sched = fuzzer.NewChaosSchedule(spec.InjectSeed)
		} else {
			sched = fuzzer.NewSchedule(spec.InjectSeed)
		}
		cfg.Injector = sched
	}

	// The watchdog: a timer flips an atomic flag at the deadline; the engine
	// polls it cooperatively at commit boundaries (cms.Config.Cancel) and
	// stops with ErrCancelled at the first boundary past expiry. The hook is
	// armed only when a deadline was requested, so deadline-free jobs run
	// the exact code path the solo harness does.
	var cancelled atomic.Bool
	if spec.DeadlineMs > 0 {
		cfg.Cancel = cancelled.Load
		timer := time.AfterFunc(time.Duration(spec.DeadlineMs)*time.Millisecond, func() { cancelled.Store(true) })
		defer timer.Stop()
	}

	plat := dev.NewPlatform(ram, disk)
	plat.Bus.WriteRaw(org, data)
	if sched != nil {
		plat.Bus.ForceProtHit = sched.ForceProtHit
	}
	e := cms.New(plat, entry, cfg)
	if stackTop != 0 {
		e.CPU().Regs[guest.ESP] = stackTop
	}

	t0 := time.Now()
	var (
		runErr   error
		panicked bool
		panicVal interface{}
		stack    string
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				panicVal = r
				stack = string(debug.Stack())
			}
		}()
		runErr = e.Run(budget)
	}()
	wall := time.Since(t0).Nanoseconds()

	capture := func(kind, errMsg string) string {
		return f.writeIncident(j, n, rung, kind, errMsg, stack, spec, budget,
			incident.ImageHash(org, entry, ram, data, disk), cfg, e, plat)
	}

	switch {
	case panicked:
		// Contain the blast radius: quarantine the shared artifact that was
		// executing (best single suspect) so other VMs stop importing it.
		if key, ok := e.ImplicatedKey(); ok {
			f.store.Poison(key, engCfg.PoisonTTL)
		}
		errMsg := fmt.Sprintf("panic: %v", panicVal)
		out := attemptOut{err: errors.New(errMsg), kind: incident.KindPanic, retryable: true}
		out.incident = capture(incident.KindPanic, errMsg)
		return out
	case errors.Is(runErr, cms.ErrCancelled):
		errMsg := fmt.Sprintf("deadline of %dms exceeded after %d guest insns", spec.DeadlineMs, e.Metrics.GuestTotal())
		out := attemptOut{err: errors.New(errMsg), kind: incident.KindTimeout}
		out.incident = capture(incident.KindTimeout, errMsg)
		return out
	case runErr != nil:
		out := attemptOut{err: runErr, kind: incident.KindError, retryable: true}
		out.incident = capture(incident.KindError, runErr.Error())
		return out
	}

	cpu := e.CPU()
	hits, misses := e.SharedStats()
	return attemptOut{res: &Result{
		Regs:         cpu.Regs,
		EIP:          cpu.EIP,
		Flags:        cpu.Flags,
		Halted:       cpu.Halted,
		Console:      plat.Console.OutputString(),
		Metrics:      e.Metrics,
		CacheStats:   e.Cache.Stats,
		GuestInsns:   e.Metrics.GuestTotal(),
		Mols:         e.Metrics.TotalMols(),
		SharedHits:   hits,
		SharedMisses: misses,
		WallNs:       wall,
		Attempts:     n + 1,
		Rung:         rung,
	}}
}

// writeIncident captures a failed attempt as a replayable bundle in
// Config.IncidentDir. Best-effort: a write failure loses the bundle, never
// the job's status.
func (f *Farm) writeIncident(j *job, n int, rung, kind, errMsg, stack string,
	spec JobSpec, budget uint64, imageSHA string, cfg cms.Config,
	e *cms.Engine, plat *dev.Platform) string {
	if f.cfg.IncidentDir == "" {
		return ""
	}
	b := &incident.Bundle{
		Job:         j.id,
		Time:        incident.Timestamp(time.Now()),
		Attempt:     n,
		Rung:        rung,
		Kind:        kind,
		Error:       errMsg,
		Stack:       stack,
		Workload:    spec.Workload,
		Source:      spec.Source,
		Budget:      budget,
		DeadlineMs:  spec.DeadlineMs,
		InjectSeed:  spec.InjectSeed,
		ChaosPanics: spec.ChaosPanics,
		Retired:     e.Metrics.GuestTotal(),
		ArchSHA:     incident.StateHash(e, plat),
		ImageSHA:    imageSHA,
		Engine:      incident.FromCMS(cfg),
	}
	path := filepath.Join(f.cfg.IncidentDir, fmt.Sprintf("%s-a%d.json", j.id, n))
	if err := b.Write(path); err != nil {
		return ""
	}
	f.incidents.Add(1)
	return path
}
