// Package farm is the multi-guest serving subsystem: it runs many
// independent guest VMs concurrently in one process — goroutine-per-VM
// behind an admission-controlled queue — over ONE shared content-addressed
// translation store, so identical hot regions across VMs are translated and
// compiled once (the way an inference server shares compiled kernels across
// requests).
//
// The determinism contract is the paper's, scaled out: sharing is safe
// exactly because every translation's assumptions are explicit in its
// content key (source bytes, trace, policy rung, MMIO bits, host), and
// install/chaining stays per-VM — each VM's simulated Metrics and final
// architectural state are bit-identical to a solo run of the same workload
// (proven by differential test). The store moves wall-clock time only.
//
// Lock layout (docs/INTERNALS.md "Hot-path architecture"): there is no
// farm-wide mutex on any hot path. Admission (Submit) takes a read lock on
// admMu — shared among concurrent submitters, exclusive only against the
// one-time queue close in Drain — plus a short exclusive section on jobsMu
// to register the job. Runners never touch the job table: a job travels to
// its runner through the queue channel, and all per-job lifecycle state is
// guarded by that job's own mutex, so observers snapshotting one job never
// block another job's runner. Counters hot enough to be touched per job
// (queued/active) are atomics; per-runner aggregates live in cache-line-
// padded shards owned by one runner each and are folded only when Stats()
// is read.
package farm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/fuzzer"
	"cms/internal/guest"
	"cms/internal/incident"
	"cms/internal/snapshot"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// Config shapes a Farm. The zero value is normalized to the defaults.
type Config struct {
	// MaxVMs is how many guest VMs run concurrently (default 4). Each VM is
	// one goroutine running one job's engine to completion.
	MaxVMs int
	// QueueDepth bounds the admission queue (default 64). Submit fails with
	// ErrQueueFull beyond it — the backpressure cmsserve turns into HTTP 429.
	QueueDepth int
	// StoreCapAtoms bounds the shared translation store (0 = default).
	StoreCapAtoms int
	// StoreShards overrides the shared store's shard count (0 = size from
	// GOMAXPROCS). Tests force a wide array so cross-shard behavior is
	// exercised even on small hosts.
	StoreShards int
	// Engine is the per-VM engine configuration template. Its SharedStore
	// field is overwritten with the farm's store.
	Engine cms.Config
	// DefaultBudget is the guest instruction budget for source jobs and
	// workload jobs that do not set one (default 100M).
	DefaultBudget uint64

	// IncidentDir, when non-empty, receives one JSON incident bundle per
	// failed engine attempt (panic, watchdog timeout, or engine error) —
	// replayable solo with `cmsfuzz -replay <bundle>`. Setup failures (a
	// source that does not assemble) produce no bundle: no engine ran.
	IncidentDir string

	// DisableRetry turns off the rung-demoting retry: failed and panicked
	// jobs then report their first attempt's outcome directly.
	DisableRetry bool

	// BreakerWindow sizes the circuit breaker's recent-outcome ring
	// (0 = default 32, negative = breaker disabled). The breaker opens when
	// the window is full and at least half its outcomes are failures or
	// timeouts; while open, Submit sheds load with ErrBreakerOpen, admitting
	// every BreakerProbe-th request as a probe. Any success closes it.
	BreakerWindow int
	// BreakerProbe is the probe admission period while open (default 8).
	BreakerProbe int
}

func (c Config) normalized() Config {
	if c.MaxVMs <= 0 {
		c.MaxVMs = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 100_000_000
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = 32
	}
	if c.BreakerProbe <= 0 {
		c.BreakerProbe = 8
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	// StatusTimeout marks a job the per-job watchdog preempted: its
	// wall-clock deadline expired and the engine was stopped cooperatively
	// at a committed boundary. Timeouts are terminal (no retry — a demoted
	// rung is slower, not faster) but fully replayable from the incident
	// bundle's retired-instruction count.
	StatusTimeout Status = "timeout"
	// StatusCheckpointed marks a job preempted by Checkpoint or
	// CheckpointDrain: the engine was stopped cooperatively at a commit
	// boundary and serialized into a snapshot envelope (internal/snapshot).
	// The blob is retrievable with Snapshot(id) and resumable — here or on
	// another farm — with SubmitRestore; the resumed run retires exactly the
	// future the preempted one would have.
	StatusCheckpointed Status = "checkpointed"
)

// JobSpec describes one guest VM run: a named suite workload or raw g86
// assembly source, with an optional instruction budget.
type JobSpec struct {
	// Workload names a benchmark from the suite (workload.All).
	Workload string `json:"workload,omitempty"`
	// Source is raw g86 assembly, mutually exclusive with Workload.
	Source string `json:"source,omitempty"`
	// Budget overrides the guest instruction budget (0 = workload default).
	Budget uint64 `json:"budget,omitempty"`
	// DeadlineMs arms a per-job wall-clock watchdog: when it expires the
	// engine is preempted cooperatively at the next commit boundary and the
	// job finishes as StatusTimeout. 0 = no deadline.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// InjectSeed, when non-zero, arms a deterministic fault-injection
	// schedule (internal/fuzzer) on the job's engine — the chaos harness's
	// way of forcing rollbacks, alias faults, and evictions in production
	// shape. ChaosPanics additionally injects deterministic host panics
	// (fuzzer.NewChaosSchedule).
	InjectSeed  uint64 `json:"inject_seed,omitempty"`
	ChaosPanics bool   `json:"chaos_panics,omitempty"`
	// Backend overrides the engine's code-gen backend for this job
	// ("vliw" or "risc"; empty inherits the farm engine config). The tag
	// is part of every translation content key, so jobs on different
	// backends never share artifacts even when they run identical guest
	// regions against the same shared store.
	Backend string `json:"backend,omitempty"`
}

// Result is a completed VM's final architectural state and statistics.
type Result struct {
	Regs    [guest.NumRegs]uint32 `json:"regs"`
	EIP     uint32                `json:"eip"`
	Flags   uint32                `json:"flags"`
	Halted  bool                  `json:"halted"`
	Console string                `json:"console,omitempty"`

	// Metrics is the full simulated statistics struct — bit-identical to a
	// solo run of the same job, shared store or not.
	Metrics    cms.Metrics  `json:"metrics"`
	CacheStats tcache.Stats `json:"cache_stats"`

	GuestInsns uint64 `json:"guest_insns"`
	Mols       uint64 `json:"mols"`
	// SharedHits/SharedMisses attribute this VM's translation requests to
	// the shared store (wall-clock observability; not part of Metrics).
	SharedHits   uint64 `json:"shared_hits"`
	SharedMisses uint64 `json:"shared_misses"`
	WallNs       int64  `json:"wall_ns"`

	// Retry provenance. Attempts is how many engine attempts ran (2 when
	// the job was retried on a demoted rung); Rung names the configuration
	// rung that produced this result ("full", "nocompile", or "interp");
	// RetryReason is the first attempt's failure when Attempts > 1.
	Attempts    int    `json:"attempts,omitempty"`
	Rung        string `json:"rung,omitempty"`
	RetryReason string `json:"retry_reason,omitempty"`
}

// job is the farm's internal record; JobView is its API snapshot. The
// identity fields (id, spec) are immutable after Submit; everything else is
// guarded by the job's own mutex so observers of one job never contend with
// other jobs' runners.
type job struct {
	id   string
	spec JobSpec

	// restore, when non-nil, makes the attempt resume this decoded snapshot
	// instead of building a platform from the spec; restoreBlob keeps the
	// original envelope so failure bundles can embed it for record-replay
	// (both immutable after submit).
	restore     *snapshot.Snapshot
	restoreBlob []byte
	// checkpoint asks the running engine to stop at its next commit boundary
	// and serialize itself; set by Checkpoint and CheckpointDrain, polled by
	// the attempt's cooperative cancel hook.
	checkpoint atomic.Bool

	mu        sync.Mutex
	status    Status
	errMsg    string
	result    *Result
	snap      []byte   // snapshot envelope, set when status is StatusCheckpointed
	incidents []string // bundle paths written for this job's failed attempts
	created   time.Time
	started   time.Time
	finished  time.Time
}

// JobView is an immutable snapshot of a job for callers and the HTTP API.
type JobView struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status Status  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// LatencyNs is submit-to-completion wall time, including queue wait
	// (0 until the job finishes) — the number the farmscale harness turns
	// into p50/p99 serving latency.
	LatencyNs int64 `json:"latency_ns,omitempty"`
	// Incidents lists the replayable incident bundles written for this
	// job's failed attempts (empty for healthy jobs or without IncidentDir).
	Incidents []string `json:"incidents,omitempty"`
	// SnapshotBytes is the checkpoint envelope size for checkpointed jobs.
	SnapshotBytes int `json:"snapshot_bytes,omitempty"`
	// Restored marks a job submitted from a snapshot rather than an image.
	Restored bool `json:"restored,omitempty"`
}

// view snapshots the job under its own mutex.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Spec: j.spec, Status: j.status, Error: j.errMsg, Result: j.result,
		SnapshotBytes: len(j.snap), Restored: j.restore != nil}
	if len(j.incidents) > 0 {
		v.Incidents = append([]string(nil), j.incidents...)
	}
	switch j.status {
	case StatusDone, StatusFailed, StatusTimeout, StatusCheckpointed:
		v.LatencyNs = j.finished.Sub(j.created).Nanoseconds()
	}
	return v
}

// Errors Submit returns; cmsserve maps them to HTTP statuses. ErrQueueFull
// is transient backpressure (429: retry soon, same farm); ErrDraining is
// terminal for this process (503 + Retry-After: find another); ErrBreakerOpen
// is the circuit breaker shedding load after a failure storm (503: the farm
// is up but degraded, probes will close the breaker when health returns).
var (
	ErrQueueFull   = errors.New("farm: admission queue full")
	ErrDraining    = errors.New("farm: draining, not accepting jobs")
	ErrBreakerOpen = errors.New("farm: circuit breaker open, shedding load")
)

// runnerCounters is one runner's slice of the farm aggregates. Each runner
// owns exactly one element of Farm.runners and is the only writer; Stats()
// folds them on read. The atomics are uncontended in steady state, and the
// trailing pad keeps neighbouring runners' counters off one cache line.
type runnerCounters struct {
	done         atomic.Uint64
	failed       atomic.Uint64
	timeouts     atomic.Uint64 // jobs preempted by the watchdog
	checkpoints  atomic.Uint64 // jobs preempted into a snapshot
	panics       atomic.Uint64 // engine attempts that panicked (may be 2 per job)
	retries      atomic.Uint64 // rung-demoting retries started
	retrySuccess atomic.Uint64 // retries that completed the job
	guest        atomic.Uint64
	mols         atomic.Uint64
	xlate        atomic.Uint64
	rollbacks    atomic.Uint64
	retrans      atomic.Uint64
	_            [64]byte
}

// Farm runs guest VMs over a shared translation store.
type Farm struct {
	cfg   Config
	store *tcache.SharedStore
	queue chan *job
	wg    sync.WaitGroup

	// admMu serializes admission against the one-time queue close: Submit
	// holds it shared (submitters never block each other), Drain takes it
	// exclusive for the closed=true + close(queue) transition.
	admMu  sync.RWMutex
	closed bool

	// jobsMu guards only the job table and submission order; per-job state
	// is behind each job's own mutex.
	jobsMu sync.RWMutex
	jobs   map[string]*job
	order  []*job

	seq       atomic.Uint64 // job-id sequence; may skip on rejected admissions
	submitted atomic.Uint64 // successful admissions
	queued    atomic.Int64
	active    atomic.Int64

	incidents atomic.Uint64 // incident bundles written (rare; farm-wide)

	breaker breaker

	runners []runnerCounters
}

// New starts a farm: MaxVMs runner goroutines over an empty shared store.
func New(cfg Config) *Farm {
	cfg = cfg.normalized()
	f := &Farm{
		cfg:     cfg,
		store:   tcache.NewSharedShards(cfg.StoreCapAtoms, cfg.StoreShards),
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		runners: make([]runnerCounters, cfg.MaxVMs),
	}
	f.breaker.init(cfg.BreakerWindow, cfg.BreakerProbe)
	if cfg.IncidentDir != "" {
		_ = os.MkdirAll(cfg.IncidentDir, 0o755) // best-effort; writes degrade gracefully
	}
	f.wg.Add(cfg.MaxVMs)
	for i := 0; i < cfg.MaxVMs; i++ {
		go f.runner(i)
	}
	return f
}

// Store exposes the shared translation store (for stats and tests).
func (f *Farm) Store() *tcache.SharedStore { return f.store }

// Submit validates and enqueues a job. It never blocks: a full queue is
// ErrQueueFull, a draining farm is ErrDraining. Concurrent submitters do
// not serialize against each other or against running jobs' bookkeeping —
// the only exclusive section is the job-table insert.
func (f *Farm) Submit(spec JobSpec) (JobView, error) {
	if (spec.Workload == "") == (spec.Source == "") {
		return JobView{}, errors.New("farm: spec needs exactly one of workload or source")
	}
	if spec.Workload != "" {
		if _, err := workload.ByName(spec.Workload); err != nil {
			return JobView{}, err
		}
	}
	if !cms.ValidBackend(spec.Backend) {
		return JobView{}, fmt.Errorf("farm: unknown backend %q", spec.Backend)
	}
	return f.admit(spec, nil, nil)
}

// SubmitRestore admits a job that resumes a checkpoint envelope instead of
// booting an image. spec must leave Workload and Source empty; Budget, when
// non-zero, overrides the captured run's budget (the default resumes with the
// same budget, so the combined run retires exactly what an uninterrupted one
// would). If the snapshot was captured under fault injection, spec must carry
// the same InjectSeed/ChaosPanics so the schedule can be rebuilt and
// fast-forwarded.
func (f *Farm) SubmitRestore(blob []byte, spec JobSpec) (JobView, error) {
	if spec.Workload != "" || spec.Source != "" {
		return JobView{}, errors.New("farm: restore spec must not name a workload or source")
	}
	if !cms.ValidBackend(spec.Backend) {
		return JobView{}, fmt.Errorf("farm: unknown backend %q", spec.Backend)
	}
	s, err := snapshot.Decode(blob)
	if err != nil {
		return JobView{}, err
	}
	// Friendlier at admission than mid-attempt: an injected capture cannot
	// resume without its schedule.
	if len(s.Engine.Injector) > 0 && spec.InjectSeed == 0 {
		return JobView{}, errors.New("farm: snapshot carries fault-injection state; spec must set inject_seed")
	}
	return f.admit(spec, s, blob)
}

// admit is the shared admission path for Submit and SubmitRestore.
func (f *Farm) admit(spec JobSpec, restore *snapshot.Snapshot, restoreBlob []byte) (JobView, error) {
	f.admMu.RLock()
	defer f.admMu.RUnlock()
	if f.closed {
		return JobView{}, ErrDraining
	}
	if !f.breaker.admit() {
		return JobView{}, ErrBreakerOpen
	}
	j := &job{
		id:          fmt.Sprintf("job-%06d", f.seq.Add(1)),
		spec:        spec,
		restore:     restore,
		restoreBlob: restoreBlob,
		status:      StatusQueued,
		created:     time.Now(),
	}
	f.queued.Add(1)
	select {
	case f.queue <- j:
	default:
		f.queued.Add(-1)
		return JobView{}, ErrQueueFull
	}
	f.submitted.Add(1)
	f.jobsMu.Lock()
	f.jobs[j.id] = j
	f.order = append(f.order, j)
	f.jobsMu.Unlock()
	return j.view(), nil
}

// Job returns a snapshot of one job.
func (f *Farm) Job(id string) (JobView, bool) {
	f.jobsMu.RLock()
	j, ok := f.jobs[id]
	f.jobsMu.RUnlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs returns snapshots of every job in submission order. The job table is
// held only long enough to copy the order slice; per-job snapshots and any
// formatting by the caller happen outside farm-wide locks.
func (f *Farm) Jobs() []JobView {
	f.jobsMu.RLock()
	order := make([]*job, len(f.order))
	copy(order, f.order)
	f.jobsMu.RUnlock()
	out := make([]JobView, 0, len(order))
	for _, j := range order {
		out = append(out, j.view())
	}
	return out
}

// Draining reports whether admission has been closed (Drain was called) —
// the readiness signal cmsserve's /readyz surfaces.
func (f *Farm) Draining() bool {
	f.admMu.RLock()
	defer f.admMu.RUnlock()
	return f.closed
}

// Drain stops admission and waits for every queued and running job to
// finish — the SIGTERM path of cmsserve. Safe to call more than once.
func (f *Farm) Drain() {
	f.admMu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.admMu.Unlock()
	f.wg.Wait()
}

// Checkpoint asks a queued or running job to stop at its next commit
// boundary and serialize itself, then waits for the preemption to land. On
// success it returns the job's view and the snapshot envelope. If the job
// reaches a different terminal state first — it halted, failed, or timed out
// before the flag was observed — Checkpoint reports that instead of blocking.
func (f *Farm) Checkpoint(id string) (JobView, []byte, error) {
	f.jobsMu.RLock()
	j, ok := f.jobs[id]
	f.jobsMu.RUnlock()
	if !ok {
		return JobView{}, nil, fmt.Errorf("farm: no such job %s", id)
	}
	j.checkpoint.Store(true)
	for {
		j.mu.Lock()
		st, snap := j.status, j.snap
		j.mu.Unlock()
		switch st {
		case StatusCheckpointed:
			return j.view(), snap, nil
		case StatusQueued, StatusRunning:
			time.Sleep(200 * time.Microsecond)
		default:
			return j.view(), nil, fmt.Errorf("farm: job %s finished as %s before checkpoint", id, st)
		}
	}
}

// Snapshot returns the checkpoint envelope of a checkpointed job.
func (f *Farm) Snapshot(id string) ([]byte, bool) {
	f.jobsMu.RLock()
	j, ok := f.jobs[id]
	f.jobsMu.RUnlock()
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snap, len(j.snap) > 0
}

// CheckpointDrain is Drain for live migration: it stops admission, preempts
// every queued and running job into a checkpoint rather than running it to
// completion, waits for the runners to quiesce, and returns the views of the
// jobs that checkpointed. Jobs that finish before the flag lands complete
// normally and are not in the returned slice; their results stay queryable.
func (f *Farm) CheckpointDrain() []JobView {
	f.admMu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.admMu.Unlock()
	f.jobsMu.RLock()
	jobs := make([]*job, len(f.order))
	copy(jobs, f.order)
	f.jobsMu.RUnlock()
	for _, j := range jobs {
		j.checkpoint.Store(true)
	}
	f.wg.Wait()
	var out []JobView
	for _, j := range jobs {
		if v := j.view(); v.Status == StatusCheckpointed {
			out = append(out, v)
		}
	}
	return out
}

// Wait blocks until every currently submitted job has finished, without
// closing admission (tests and the bench harness).
func (f *Farm) Wait() {
	for {
		if f.queued.Load() == 0 && f.active.Load() == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of farm-level counters.
type Stats struct {
	VMs       int
	Active    int
	Queued    int
	Done      uint64
	Failed    uint64
	Submitted uint64

	// Fault-containment counters. Timeouts are watchdog preemptions (jobs);
	// Checkpoints counts jobs preempted into a snapshot; Panics counts
	// panicked engine attempts; Retries/RetrySuccesses track the
	// rung-demoting retry; Incidents counts bundles written; BreakerOpen
	// and BreakerShed describe the admission circuit breaker.
	Timeouts       uint64
	Checkpoints    uint64
	Panics         uint64
	Retries        uint64
	RetrySuccesses uint64
	Incidents      uint64
	BreakerOpen    bool
	BreakerShed    uint64

	Store tcache.SharedStats

	// Aggregates over completed jobs.
	GuestInsns     uint64
	Mols           uint64
	Translations   uint64
	Rollbacks      uint64 // faults absorbed by rollback + re-interpretation
	Retranslations uint64 // adaptive retranslation events
}

// Stats returns the farm's counters, folded from the per-runner shards and
// the store's per-shard atomics. It takes no farm-wide lock and is safe to
// call at any rate while jobs run.
func (f *Farm) Stats() Stats {
	st := Stats{
		VMs:         f.cfg.MaxVMs,
		Active:      int(f.active.Load()),
		Queued:      int(f.queued.Load()),
		Submitted:   f.submitted.Load(),
		Incidents:   f.incidents.Load(),
		BreakerOpen: f.breaker.isOpen(),
		BreakerShed: f.breaker.shedCount(),
		Store:       f.store.Stats(),
	}
	if st.Queued < 0 {
		st.Queued = 0 // transient: a runner decremented before Submit's increment landed
	}
	for i := range f.runners {
		r := &f.runners[i]
		st.Done += r.done.Load()
		st.Failed += r.failed.Load()
		st.Timeouts += r.timeouts.Load()
		st.Checkpoints += r.checkpoints.Load()
		st.Panics += r.panics.Load()
		st.Retries += r.retries.Load()
		st.RetrySuccesses += r.retrySuccess.Load()
		st.GuestInsns += r.guest.Load()
		st.Mols += r.mols.Load()
		st.Translations += r.xlate.Load()
		st.Rollbacks += r.rollbacks.Load()
		st.Retranslations += r.retrans.Load()
	}
	return st
}

// runner is one VM slot: it executes queued jobs to completion, one at a
// time, until the queue closes. Lifecycle updates touch only the job's own
// mutex and this runner's counter shard — never a farm-wide lock.
func (f *Farm) runner(slot int) {
	defer f.wg.Done()
	rc := &f.runners[slot]
	for j := range f.queue {
		f.active.Add(1)
		f.queued.Add(-1)
		j.mu.Lock()
		j.status = StatusRunning
		j.started = time.Now()
		j.mu.Unlock()

		f.process(j, rc)

		f.active.Add(-1)
	}
}

// rungName names the conservativeness rung a configuration sits on.
func rungName(c cms.Config) string {
	switch {
	case c.NoTranslate:
		return "interp"
	case !c.EnableCompiledBackend:
		return "nocompile"
	default:
		return "full"
	}
}

// demote returns the next more-conservative rung for the retry: the compiled
// backend is switched off first, then translation entirely (interpreter
// only — the always-correct reference mode, and the most isolated: nothing
// is compiled, installed, or shared). ok is false at the bottom of the
// ladder.
func demote(c cms.Config) (cms.Config, string, bool) {
	switch {
	case c.NoTranslate:
		return c, "interp", false
	case c.EnableCompiledBackend:
		c.EnableCompiledBackend = false
		return c, "nocompile", true
	default:
		c.NoTranslate = true
		c.PipelineWorkers = 0
		return c, "interp", true
	}
}

// process runs one job through up to two engine attempts — the configured
// rung, then (for panics and engine errors, not timeouts) one retry on the
// next rung down — and finalizes the job's status, counters, and breaker
// outcome. This is the paper's speculate/recover/retranslate-conservatively
// response lifted to whole jobs: the aggressive configuration is the
// speculation, the recover() and watchdog are the rollback, and the demoted
// rung is the conservative retranslation.
func (f *Farm) process(j *job, rc *runnerCounters) {
	out := f.attempt(j, 0, f.cfg.Engine, rungName(f.cfg.Engine))
	countAttempt(rc, out)
	incidents := out.incidents()
	retried := false
	firstErr := ""
	// Restored jobs never retry on a demoted rung: a snapshot is only valid
	// under the configuration it was captured with.
	if out.res == nil && out.retryable && j.restore == nil && !f.cfg.DisableRetry {
		if demoted, drung, ok := demote(f.cfg.Engine); ok {
			retried = true
			firstErr = out.err.Error()
			rc.retries.Add(1)
			out = f.attempt(j, 1, demoted, drung)
			countAttempt(rc, out)
			incidents = append(incidents, out.incidents()...)
		}
	}

	j.mu.Lock()
	j.finished = time.Now()
	j.incidents = incidents
	switch {
	case out.snap != nil:
		j.status = StatusCheckpointed
		j.snap = out.snap
	case out.res != nil:
		if retried {
			out.res.RetryReason = firstErr
		}
		j.status = StatusDone
		j.result = out.res
	case out.kind == incident.KindTimeout:
		j.status = StatusTimeout
		j.errMsg = out.err.Error()
	default:
		j.status = StatusFailed
		j.errMsg = out.err.Error()
	}
	j.mu.Unlock()

	switch {
	case out.snap != nil:
		// A checkpoint is a healthy preemption, not a failure: the breaker
		// must not open because a drain swept the farm.
		rc.checkpoints.Add(1)
		f.breaker.record(false)
	case out.res != nil:
		res := out.res
		if retried {
			rc.retrySuccess.Add(1)
		}
		rc.done.Add(1)
		rc.guest.Add(res.GuestInsns)
		rc.mols.Add(res.Mols)
		rc.xlate.Add(res.Metrics.Translations)
		var rb, rt uint64
		for _, n := range res.Metrics.Faults {
			rb += n
		}
		for _, n := range res.Metrics.Adaptations {
			rt += n
		}
		rc.rollbacks.Add(rb)
		rc.retrans.Add(rt)
		f.breaker.record(false)
	case out.kind == incident.KindTimeout:
		rc.timeouts.Add(1)
		f.breaker.record(true)
	default:
		rc.failed.Add(1)
		f.breaker.record(true)
	}
}

// countAttempt folds per-attempt (not per-job) outcomes into the runner's
// counter shard.
func countAttempt(rc *runnerCounters, out attemptOut) {
	if out.kind == incident.KindPanic {
		rc.panics.Add(1)
	}
}

// attemptOut is the outcome of one engine attempt.
type attemptOut struct {
	res       *Result // non-nil on success
	snap      []byte  // non-nil when the attempt was preempted into a checkpoint
	err       error
	kind      string // incident.Kind* for engine failures, "" for setup errors
	retryable bool
	incident  string // bundle path, "" when none was written
}

func (o attemptOut) incidents() []string {
	if o.incident == "" {
		return nil
	}
	return []string{o.incident}
}

// attempt runs one VM once under engCfg. Workload jobs are set up exactly
// like the solo harness (internal/bench.Run) — same platform, same load,
// same budget — so the differential test can compare farm results against
// solo runs byte-for-byte. The engine runs inside a recover() so a host
// panic — a compiled-closure bug, or an injected chaos panic — is contained
// to this attempt: the implicated shared artifact is poisoned, an incident
// bundle is written, and the runner keeps serving.
func (f *Farm) attempt(j *job, n int, engCfg cms.Config, rung string) attemptOut {
	spec := j.spec
	var (
		org, entry uint32
		data, disk []byte
		ram        uint32
		budget     uint64
		stackTop   uint32
	)
	if j.restore == nil {
		switch {
		case spec.Workload != "":
			w, err := workload.ByName(spec.Workload)
			if err != nil {
				return attemptOut{err: err}
			}
			img := w.Build()
			org, data, entry = img.Org, img.Data, img.Entry
			disk, ram, budget = img.Disk, img.RAM, img.Budget
		default:
			prog, err := asm.Assemble(spec.Source)
			if err != nil {
				return attemptOut{err: err}
			}
			org, data, entry = prog.Org, prog.Image, prog.Entry()
			ram = 1 << 21
			budget = f.cfg.DefaultBudget
			stackTop = ram / 2
		}
	}
	if spec.Budget > 0 {
		budget = spec.Budget
	}

	cfg := engCfg
	cfg.SharedStore = f.store
	if spec.Backend != "" {
		// Per-job backend override. Demotion is orthogonal: a demoted
		// (nocompile/interp) retry keeps the tag but builds no executable
		// form, identically for either backend.
		cfg.Backend = spec.Backend
	}

	var sched *fuzzer.Schedule
	if spec.InjectSeed != 0 {
		if spec.ChaosPanics {
			sched = fuzzer.NewChaosSchedule(spec.InjectSeed)
		} else {
			sched = fuzzer.NewSchedule(spec.InjectSeed)
		}
		cfg.Injector = sched
	}

	// The watchdog and checkpoint requests share one cooperative hook: a
	// timer flips the deadline flag, Checkpoint/CheckpointDrain flip the
	// job's checkpoint flag, and the engine polls both at commit boundaries
	// (cms.Config.Cancel), stopping with ErrCancelled at the first boundary
	// past either. The poll's false path is metrics-invisible, so the
	// always-armed hook keeps farm runs bit-identical to solo runs.
	var cancelled atomic.Bool
	cfg.Cancel = func() bool { return cancelled.Load() || j.checkpoint.Load() }
	if spec.DeadlineMs > 0 {
		timer := time.AfterFunc(time.Duration(spec.DeadlineMs)*time.Millisecond, func() { cancelled.Store(true) })
		defer timer.Stop()
	}

	var (
		e    *cms.Engine
		plat *dev.Platform
	)
	if j.restore != nil {
		re, err := snapshot.Restore(j.restore, cfg)
		if err != nil {
			return attemptOut{err: fmt.Errorf("farm: restore: %w", err)}
		}
		e, plat = re, re.Plat
		if sched != nil {
			// The schedule was fast-forwarded from the snapshot; the bus hook
			// must point at the rebuilt schedule, not the captured engine's.
			plat.Bus.ForceProtHit = sched.ForceProtHit
		}
		if spec.Budget == 0 {
			// Resume with the captured run's budget: Run counts cumulative
			// retirement, so the combined run stops exactly where an
			// uninterrupted one would.
			budget = e.Budget()
		}
	} else {
		plat = dev.NewPlatform(ram, disk)
		plat.Bus.WriteRaw(org, data)
		if sched != nil {
			plat.Bus.ForceProtHit = sched.ForceProtHit
		}
		e = cms.New(plat, entry, cfg)
		if stackTop != 0 {
			e.CPU().Regs[guest.ESP] = stackTop
		}
	}

	t0 := time.Now()
	var (
		runErr   error
		panicked bool
		panicVal interface{}
		stack    string
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
				panicVal = r
				stack = string(debug.Stack())
			}
		}()
		runErr = e.Run(budget)
	}()
	wall := time.Since(t0).Nanoseconds()

	imageSHA := ""
	if j.restore == nil {
		imageSHA = incident.ImageHash(org, entry, ram, data, disk)
	}
	capture := func(kind, errMsg string) string {
		return f.writeIncident(j, n, rung, kind, errMsg, stack, spec, budget,
			imageSHA, cfg, e, plat)
	}

	switch {
	case panicked:
		// Contain the blast radius: quarantine the shared artifact that was
		// executing (best single suspect) so other VMs stop importing it.
		if key, ok := e.ImplicatedKey(); ok {
			f.store.Poison(key, engCfg.PoisonTTL)
		}
		errMsg := fmt.Sprintf("panic: %v", panicVal)
		out := attemptOut{err: errors.New(errMsg), kind: incident.KindPanic, retryable: true}
		out.incident = capture(incident.KindPanic, errMsg)
		return out
	case errors.Is(runErr, cms.ErrCancelled) && j.checkpoint.Load():
		// Checkpoint wins over a concurrent deadline: a serialized VM that
		// can resume elsewhere is strictly more useful than a timeout.
		blob, err := snapshot.Save(e)
		if err != nil {
			errMsg := fmt.Sprintf("checkpoint failed: %v", err)
			out := attemptOut{err: errors.New(errMsg), kind: incident.KindError}
			out.incident = capture(incident.KindError, errMsg)
			return out
		}
		return attemptOut{snap: blob}
	case errors.Is(runErr, cms.ErrCancelled):
		errMsg := fmt.Sprintf("deadline of %dms exceeded after %d guest insns", spec.DeadlineMs, e.Metrics.GuestTotal())
		out := attemptOut{err: errors.New(errMsg), kind: incident.KindTimeout}
		out.incident = capture(incident.KindTimeout, errMsg)
		return out
	case runErr != nil:
		out := attemptOut{err: runErr, kind: incident.KindError, retryable: true}
		out.incident = capture(incident.KindError, runErr.Error())
		return out
	}

	cpu := e.CPU()
	hits, misses := e.SharedStats()
	return attemptOut{res: &Result{
		Regs:         cpu.Regs,
		EIP:          cpu.EIP,
		Flags:        cpu.Flags,
		Halted:       cpu.Halted,
		Console:      plat.Console.OutputString(),
		Metrics:      e.Metrics,
		CacheStats:   e.Cache.Stats,
		GuestInsns:   e.Metrics.GuestTotal(),
		Mols:         e.Metrics.TotalMols(),
		SharedHits:   hits,
		SharedMisses: misses,
		WallNs:       wall,
		Attempts:     n + 1,
		Rung:         rung,
	}}
}

// writeIncident captures a failed attempt as a replayable bundle in
// Config.IncidentDir. Best-effort: a write failure loses the bundle, never
// the job's status.
func (f *Farm) writeIncident(j *job, n int, rung, kind, errMsg, stack string,
	spec JobSpec, budget uint64, imageSHA string, cfg cms.Config,
	e *cms.Engine, plat *dev.Platform) string {
	if f.cfg.IncidentDir == "" {
		return ""
	}
	b := &incident.Bundle{
		Job:         j.id,
		Time:        incident.Timestamp(time.Now()),
		Attempt:     n,
		Rung:        rung,
		Kind:        kind,
		Error:       errMsg,
		Stack:       stack,
		Workload:    spec.Workload,
		Source:      spec.Source,
		Budget:      budget,
		DeadlineMs:  spec.DeadlineMs,
		InjectSeed:  spec.InjectSeed,
		ChaosPanics: spec.ChaosPanics,
		Retired:     e.Metrics.GuestTotal(),
		ArchSHA:     incident.StateHash(e, plat),
		ImageSHA:    imageSHA,
		Snapshot:    j.restoreBlob,
		Engine:      incident.FromCMS(cfg),
	}
	path := filepath.Join(f.cfg.IncidentDir, fmt.Sprintf("%s-a%d.json", j.id, n))
	if err := b.Write(path); err != nil {
		return ""
	}
	f.incidents.Add(1)
	return path
}
