// Package farm is the multi-guest serving subsystem: it runs many
// independent guest VMs concurrently in one process — goroutine-per-VM
// behind an admission-controlled queue — over ONE shared content-addressed
// translation store, so identical hot regions across VMs are translated and
// compiled once (the way an inference server shares compiled kernels across
// requests).
//
// The determinism contract is the paper's, scaled out: sharing is safe
// exactly because every translation's assumptions are explicit in its
// content key (source bytes, trace, policy rung, MMIO bits, host), and
// install/chaining stays per-VM — each VM's simulated Metrics and final
// architectural state are bit-identical to a solo run of the same workload
// (proven by differential test). The store moves wall-clock time only.
//
// Lock layout (docs/INTERNALS.md "Hot-path architecture"): there is no
// farm-wide mutex on any hot path. Admission (Submit) takes a read lock on
// admMu — shared among concurrent submitters, exclusive only against the
// one-time queue close in Drain — plus a short exclusive section on jobsMu
// to register the job. Runners never touch the job table: a job travels to
// its runner through the queue channel, and all per-job lifecycle state is
// guarded by that job's own mutex, so observers snapshotting one job never
// block another job's runner. Counters hot enough to be touched per job
// (queued/active) are atomics; per-runner aggregates live in cache-line-
// padded shards owned by one runner each and are folded only when Stats()
// is read.
package farm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// Config shapes a Farm. The zero value is normalized to the defaults.
type Config struct {
	// MaxVMs is how many guest VMs run concurrently (default 4). Each VM is
	// one goroutine running one job's engine to completion.
	MaxVMs int
	// QueueDepth bounds the admission queue (default 64). Submit fails with
	// ErrQueueFull beyond it — the backpressure cmsserve turns into HTTP 429.
	QueueDepth int
	// StoreCapAtoms bounds the shared translation store (0 = default).
	StoreCapAtoms int
	// StoreShards overrides the shared store's shard count (0 = size from
	// GOMAXPROCS). Tests force a wide array so cross-shard behavior is
	// exercised even on small hosts.
	StoreShards int
	// Engine is the per-VM engine configuration template. Its SharedStore
	// field is overwritten with the farm's store.
	Engine cms.Config
	// DefaultBudget is the guest instruction budget for source jobs and
	// workload jobs that do not set one (default 100M).
	DefaultBudget uint64
}

func (c Config) normalized() Config {
	if c.MaxVMs <= 0 {
		c.MaxVMs = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 100_000_000
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// JobSpec describes one guest VM run: a named suite workload or raw g86
// assembly source, with an optional instruction budget.
type JobSpec struct {
	// Workload names a benchmark from the suite (workload.All).
	Workload string `json:"workload,omitempty"`
	// Source is raw g86 assembly, mutually exclusive with Workload.
	Source string `json:"source,omitempty"`
	// Budget overrides the guest instruction budget (0 = workload default).
	Budget uint64 `json:"budget,omitempty"`
}

// Result is a completed VM's final architectural state and statistics.
type Result struct {
	Regs    [guest.NumRegs]uint32 `json:"regs"`
	EIP     uint32                `json:"eip"`
	Flags   uint32                `json:"flags"`
	Halted  bool                  `json:"halted"`
	Console string                `json:"console,omitempty"`

	// Metrics is the full simulated statistics struct — bit-identical to a
	// solo run of the same job, shared store or not.
	Metrics    cms.Metrics  `json:"metrics"`
	CacheStats tcache.Stats `json:"cache_stats"`

	GuestInsns uint64 `json:"guest_insns"`
	Mols       uint64 `json:"mols"`
	// SharedHits/SharedMisses attribute this VM's translation requests to
	// the shared store (wall-clock observability; not part of Metrics).
	SharedHits   uint64 `json:"shared_hits"`
	SharedMisses uint64 `json:"shared_misses"`
	WallNs       int64  `json:"wall_ns"`
}

// job is the farm's internal record; JobView is its API snapshot. The
// identity fields (id, spec) are immutable after Submit; everything else is
// guarded by the job's own mutex so observers of one job never contend with
// other jobs' runners.
type job struct {
	id   string
	spec JobSpec

	mu       sync.Mutex
	status   Status
	errMsg   string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobView is an immutable snapshot of a job for callers and the HTTP API.
type JobView struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status Status  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// LatencyNs is submit-to-completion wall time, including queue wait
	// (0 until the job finishes) — the number the farmscale harness turns
	// into p50/p99 serving latency.
	LatencyNs int64 `json:"latency_ns,omitempty"`
}

// view snapshots the job under its own mutex.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Spec: j.spec, Status: j.status, Error: j.errMsg, Result: j.result}
	if j.status == StatusDone || j.status == StatusFailed {
		v.LatencyNs = j.finished.Sub(j.created).Nanoseconds()
	}
	return v
}

// Errors Submit returns; cmsserve maps them to HTTP statuses.
var (
	ErrQueueFull = errors.New("farm: admission queue full")
	ErrDraining  = errors.New("farm: draining, not accepting jobs")
)

// runnerCounters is one runner's slice of the farm aggregates. Each runner
// owns exactly one element of Farm.runners and is the only writer; Stats()
// folds them on read. The atomics are uncontended in steady state, and the
// trailing pad keeps neighbouring runners' counters off one cache line.
type runnerCounters struct {
	done      atomic.Uint64
	failed    atomic.Uint64
	guest     atomic.Uint64
	mols      atomic.Uint64
	xlate     atomic.Uint64
	rollbacks atomic.Uint64
	retrans   atomic.Uint64
	_         [64]byte
}

// Farm runs guest VMs over a shared translation store.
type Farm struct {
	cfg   Config
	store *tcache.SharedStore
	queue chan *job
	wg    sync.WaitGroup

	// admMu serializes admission against the one-time queue close: Submit
	// holds it shared (submitters never block each other), Drain takes it
	// exclusive for the closed=true + close(queue) transition.
	admMu  sync.RWMutex
	closed bool

	// jobsMu guards only the job table and submission order; per-job state
	// is behind each job's own mutex.
	jobsMu sync.RWMutex
	jobs   map[string]*job
	order  []*job

	seq       atomic.Uint64 // job-id sequence; may skip on rejected admissions
	submitted atomic.Uint64 // successful admissions
	queued    atomic.Int64
	active    atomic.Int64

	runners []runnerCounters
}

// New starts a farm: MaxVMs runner goroutines over an empty shared store.
func New(cfg Config) *Farm {
	cfg = cfg.normalized()
	f := &Farm{
		cfg:     cfg,
		store:   tcache.NewSharedShards(cfg.StoreCapAtoms, cfg.StoreShards),
		queue:   make(chan *job, cfg.QueueDepth),
		jobs:    make(map[string]*job),
		runners: make([]runnerCounters, cfg.MaxVMs),
	}
	f.wg.Add(cfg.MaxVMs)
	for i := 0; i < cfg.MaxVMs; i++ {
		go f.runner(i)
	}
	return f
}

// Store exposes the shared translation store (for stats and tests).
func (f *Farm) Store() *tcache.SharedStore { return f.store }

// Submit validates and enqueues a job. It never blocks: a full queue is
// ErrQueueFull, a draining farm is ErrDraining. Concurrent submitters do
// not serialize against each other or against running jobs' bookkeeping —
// the only exclusive section is the job-table insert.
func (f *Farm) Submit(spec JobSpec) (JobView, error) {
	if (spec.Workload == "") == (spec.Source == "") {
		return JobView{}, errors.New("farm: spec needs exactly one of workload or source")
	}
	if spec.Workload != "" {
		if _, err := workload.ByName(spec.Workload); err != nil {
			return JobView{}, err
		}
	}
	f.admMu.RLock()
	defer f.admMu.RUnlock()
	if f.closed {
		return JobView{}, ErrDraining
	}
	j := &job{
		id:      fmt.Sprintf("job-%06d", f.seq.Add(1)),
		spec:    spec,
		status:  StatusQueued,
		created: time.Now(),
	}
	f.queued.Add(1)
	select {
	case f.queue <- j:
	default:
		f.queued.Add(-1)
		return JobView{}, ErrQueueFull
	}
	f.submitted.Add(1)
	f.jobsMu.Lock()
	f.jobs[j.id] = j
	f.order = append(f.order, j)
	f.jobsMu.Unlock()
	return j.view(), nil
}

// Job returns a snapshot of one job.
func (f *Farm) Job(id string) (JobView, bool) {
	f.jobsMu.RLock()
	j, ok := f.jobs[id]
	f.jobsMu.RUnlock()
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs returns snapshots of every job in submission order. The job table is
// held only long enough to copy the order slice; per-job snapshots and any
// formatting by the caller happen outside farm-wide locks.
func (f *Farm) Jobs() []JobView {
	f.jobsMu.RLock()
	order := make([]*job, len(f.order))
	copy(order, f.order)
	f.jobsMu.RUnlock()
	out := make([]JobView, 0, len(order))
	for _, j := range order {
		out = append(out, j.view())
	}
	return out
}

// Drain stops admission and waits for every queued and running job to
// finish — the SIGTERM path of cmsserve. Safe to call more than once.
func (f *Farm) Drain() {
	f.admMu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.admMu.Unlock()
	f.wg.Wait()
}

// Wait blocks until every currently submitted job has finished, without
// closing admission (tests and the bench harness).
func (f *Farm) Wait() {
	for {
		if f.queued.Load() == 0 && f.active.Load() == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of farm-level counters.
type Stats struct {
	VMs       int
	Active    int
	Queued    int
	Done      uint64
	Failed    uint64
	Submitted uint64

	Store tcache.SharedStats

	// Aggregates over completed jobs.
	GuestInsns     uint64
	Mols           uint64
	Translations   uint64
	Rollbacks      uint64 // faults absorbed by rollback + re-interpretation
	Retranslations uint64 // adaptive retranslation events
}

// Stats returns the farm's counters, folded from the per-runner shards and
// the store's per-shard atomics. It takes no farm-wide lock and is safe to
// call at any rate while jobs run.
func (f *Farm) Stats() Stats {
	st := Stats{
		VMs:       f.cfg.MaxVMs,
		Active:    int(f.active.Load()),
		Queued:    int(f.queued.Load()),
		Submitted: f.submitted.Load(),
		Store:     f.store.Stats(),
	}
	if st.Queued < 0 {
		st.Queued = 0 // transient: a runner decremented before Submit's increment landed
	}
	for i := range f.runners {
		r := &f.runners[i]
		st.Done += r.done.Load()
		st.Failed += r.failed.Load()
		st.GuestInsns += r.guest.Load()
		st.Mols += r.mols.Load()
		st.Translations += r.xlate.Load()
		st.Rollbacks += r.rollbacks.Load()
		st.Retranslations += r.retrans.Load()
	}
	return st
}

// runner is one VM slot: it executes queued jobs to completion, one at a
// time, until the queue closes. Lifecycle updates touch only the job's own
// mutex and this runner's counter shard — never a farm-wide lock.
func (f *Farm) runner(slot int) {
	defer f.wg.Done()
	rc := &f.runners[slot]
	for j := range f.queue {
		f.active.Add(1)
		f.queued.Add(-1)
		j.mu.Lock()
		j.status = StatusRunning
		j.started = time.Now()
		j.mu.Unlock()

		res, err := f.execute(j.spec)

		j.mu.Lock()
		j.finished = time.Now()
		if err != nil {
			j.status = StatusFailed
			j.errMsg = err.Error()
		} else {
			j.status = StatusDone
			j.result = res
		}
		j.mu.Unlock()

		if err != nil {
			rc.failed.Add(1)
		} else {
			rc.done.Add(1)
			rc.guest.Add(res.GuestInsns)
			rc.mols.Add(res.Mols)
			rc.xlate.Add(res.Metrics.Translations)
			var rb, rt uint64
			for _, n := range res.Metrics.Faults {
				rb += n
			}
			for _, n := range res.Metrics.Adaptations {
				rt += n
			}
			rc.rollbacks.Add(rb)
			rc.retrans.Add(rt)
		}
		f.active.Add(-1)
	}
}

// execute runs one VM. Workload jobs are set up exactly like the solo
// harness (internal/bench.Run) — same platform, same load, same budget — so
// the differential test can compare farm results against solo runs
// byte-for-byte.
func (f *Farm) execute(spec JobSpec) (*Result, error) {
	var (
		org, entry uint32
		data, disk []byte
		ram        uint32
		budget     uint64
		stackTop   uint32
	)
	switch {
	case spec.Workload != "":
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		img := w.Build()
		org, data, entry = img.Org, img.Data, img.Entry
		disk, ram, budget = img.Disk, img.RAM, img.Budget
	default:
		prog, err := asm.Assemble(spec.Source)
		if err != nil {
			return nil, err
		}
		org, data, entry = prog.Org, prog.Image, prog.Entry()
		ram = 1 << 21
		budget = f.cfg.DefaultBudget
		stackTop = ram / 2
	}
	if spec.Budget > 0 {
		budget = spec.Budget
	}

	cfg := f.cfg.Engine
	cfg.SharedStore = f.store

	plat := dev.NewPlatform(ram, disk)
	plat.Bus.WriteRaw(org, data)
	e := cms.New(plat, entry, cfg)
	if stackTop != 0 {
		e.CPU().Regs[guest.ESP] = stackTop
	}

	t0 := time.Now()
	runErr := e.Run(budget)
	wall := time.Since(t0).Nanoseconds()
	if runErr != nil {
		return nil, runErr
	}

	cpu := e.CPU()
	hits, misses := e.SharedStats()
	return &Result{
		Regs:         cpu.Regs,
		EIP:          cpu.EIP,
		Flags:        cpu.Flags,
		Halted:       cpu.Halted,
		Console:      plat.Console.OutputString(),
		Metrics:      e.Metrics,
		CacheStats:   e.Cache.Stats,
		GuestInsns:   e.Metrics.GuestTotal(),
		Mols:         e.Metrics.TotalMols(),
		SharedHits:   hits,
		SharedMisses: misses,
		WallNs:       wall,
	}, nil
}
