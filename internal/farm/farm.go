// Package farm is the multi-guest serving subsystem: it runs many
// independent guest VMs concurrently in one process — goroutine-per-VM
// behind an admission-controlled queue — over ONE shared content-addressed
// translation store, so identical hot regions across VMs are translated and
// compiled once (the way an inference server shares compiled kernels across
// requests).
//
// The determinism contract is the paper's, scaled out: sharing is safe
// exactly because every translation's assumptions are explicit in its
// content key (source bytes, trace, policy rung, MMIO bits, host), and
// install/chaining stays per-VM — each VM's simulated Metrics and final
// architectural state are bit-identical to a solo run of the same workload
// (proven by differential test). The store moves wall-clock time only.
package farm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"cms/internal/asm"
	"cms/internal/cms"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/tcache"
	"cms/internal/workload"
)

// Config shapes a Farm. The zero value is normalized to the defaults.
type Config struct {
	// MaxVMs is how many guest VMs run concurrently (default 4). Each VM is
	// one goroutine running one job's engine to completion.
	MaxVMs int
	// QueueDepth bounds the admission queue (default 64). Submit fails with
	// ErrQueueFull beyond it — the backpressure cmsserve turns into HTTP 429.
	QueueDepth int
	// StoreCapAtoms bounds the shared translation store (0 = default).
	StoreCapAtoms int
	// Engine is the per-VM engine configuration template. Its SharedStore
	// field is overwritten with the farm's store.
	Engine cms.Config
	// DefaultBudget is the guest instruction budget for source jobs and
	// workload jobs that do not set one (default 100M).
	DefaultBudget uint64
}

func (c Config) normalized() Config {
	if c.MaxVMs <= 0 {
		c.MaxVMs = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget == 0 {
		c.DefaultBudget = 100_000_000
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// JobSpec describes one guest VM run: a named suite workload or raw g86
// assembly source, with an optional instruction budget.
type JobSpec struct {
	// Workload names a benchmark from the suite (workload.All).
	Workload string `json:"workload,omitempty"`
	// Source is raw g86 assembly, mutually exclusive with Workload.
	Source string `json:"source,omitempty"`
	// Budget overrides the guest instruction budget (0 = workload default).
	Budget uint64 `json:"budget,omitempty"`
}

// Result is a completed VM's final architectural state and statistics.
type Result struct {
	Regs    [guest.NumRegs]uint32 `json:"regs"`
	EIP     uint32                `json:"eip"`
	Flags   uint32                `json:"flags"`
	Halted  bool                  `json:"halted"`
	Console string                `json:"console,omitempty"`

	// Metrics is the full simulated statistics struct — bit-identical to a
	// solo run of the same job, shared store or not.
	Metrics    cms.Metrics  `json:"metrics"`
	CacheStats tcache.Stats `json:"cache_stats"`

	GuestInsns uint64 `json:"guest_insns"`
	Mols       uint64 `json:"mols"`
	// SharedHits/SharedMisses attribute this VM's translation requests to
	// the shared store (wall-clock observability; not part of Metrics).
	SharedHits   uint64 `json:"shared_hits"`
	SharedMisses uint64 `json:"shared_misses"`
	WallNs       int64  `json:"wall_ns"`
}

// job is the farm's internal record; JobView is its API snapshot.
type job struct {
	id       string
	spec     JobSpec
	status   Status
	errMsg   string
	result   *Result
	created  time.Time
	started  time.Time
	finished time.Time
}

// JobView is an immutable snapshot of a job for callers and the HTTP API.
type JobView struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	Status Status  `json:"status"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// Errors Submit returns; cmsserve maps them to HTTP statuses.
var (
	ErrQueueFull = errors.New("farm: admission queue full")
	ErrDraining  = errors.New("farm: draining, not accepting jobs")
)

// Farm runs guest VMs over a shared translation store.
type Farm struct {
	cfg   Config
	store *tcache.SharedStore
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []*job
	closed bool
	queued int
	active int
	done   uint64
	failed uint64
	seq    uint64

	// Aggregates over completed jobs (for farm-level /metrics).
	aggGuest     uint64
	aggMols      uint64
	aggXlate     uint64
	aggRollbacks uint64
	aggRetrans   uint64
}

// New starts a farm: MaxVMs runner goroutines over an empty shared store.
func New(cfg Config) *Farm {
	cfg = cfg.normalized()
	f := &Farm{
		cfg:   cfg,
		store: tcache.NewShared(cfg.StoreCapAtoms),
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  make(map[string]*job),
	}
	f.wg.Add(cfg.MaxVMs)
	for i := 0; i < cfg.MaxVMs; i++ {
		go f.runner()
	}
	return f
}

// Store exposes the shared translation store (for stats and tests).
func (f *Farm) Store() *tcache.SharedStore { return f.store }

// Submit validates and enqueues a job. It never blocks: a full queue is
// ErrQueueFull, a draining farm is ErrDraining.
func (f *Farm) Submit(spec JobSpec) (JobView, error) {
	if (spec.Workload == "") == (spec.Source == "") {
		return JobView{}, errors.New("farm: spec needs exactly one of workload or source")
	}
	if spec.Workload != "" {
		if _, err := workload.ByName(spec.Workload); err != nil {
			return JobView{}, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return JobView{}, ErrDraining
	}
	f.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", f.seq),
		spec:    spec,
		status:  StatusQueued,
		created: time.Now(),
	}
	select {
	case f.queue <- j:
	default:
		f.seq--
		return JobView{}, ErrQueueFull
	}
	f.jobs[j.id] = j
	f.order = append(f.order, j)
	f.queued++
	return f.viewLocked(j), nil
}

// Job returns a snapshot of one job.
func (f *Farm) Job(id string) (JobView, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return f.viewLocked(j), true
}

// Jobs returns snapshots of every job in submission order.
func (f *Farm) Jobs() []JobView {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]JobView, 0, len(f.order))
	for _, j := range f.order {
		out = append(out, f.viewLocked(j))
	}
	return out
}

// viewLocked snapshots a job; the Result pointer is shared but immutable
// once set (runners never mutate a result after publishing it).
func (f *Farm) viewLocked(j *job) JobView {
	return JobView{ID: j.id, Spec: j.spec, Status: j.status, Error: j.errMsg, Result: j.result}
}

// Drain stops admission and waits for every queued and running job to
// finish — the SIGTERM path of cmsserve. Safe to call more than once.
func (f *Farm) Drain() {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
		close(f.queue)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// Wait blocks until every currently submitted job has finished, without
// closing admission (tests and the bench harness).
func (f *Farm) Wait() {
	for {
		f.mu.Lock()
		idle := f.queued == 0 && f.active == 0
		f.mu.Unlock()
		if idle {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Stats is a point-in-time snapshot of farm-level counters.
type Stats struct {
	VMs       int
	Active    int
	Queued    int
	Done      uint64
	Failed    uint64
	Submitted uint64

	Store tcache.SharedStats

	// Aggregates over completed jobs.
	GuestInsns     uint64
	Mols           uint64
	Translations   uint64
	Rollbacks      uint64 // faults absorbed by rollback + re-interpretation
	Retranslations uint64 // adaptive retranslation events
}

// Stats returns the farm's counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Stats{
		VMs:            f.cfg.MaxVMs,
		Active:         f.active,
		Queued:         f.queued,
		Done:           f.done,
		Failed:         f.failed,
		Submitted:      f.seq,
		Store:          f.store.Stats(),
		GuestInsns:     f.aggGuest,
		Mols:           f.aggMols,
		Translations:   f.aggXlate,
		Rollbacks:      f.aggRollbacks,
		Retranslations: f.aggRetrans,
	}
}

// runner is one VM slot: it executes queued jobs to completion, one at a
// time, until the queue closes.
func (f *Farm) runner() {
	defer f.wg.Done()
	for j := range f.queue {
		f.mu.Lock()
		f.queued--
		f.active++
		j.status = StatusRunning
		j.started = time.Now()
		f.mu.Unlock()

		res, err := f.execute(j.spec)

		f.mu.Lock()
		f.active--
		j.finished = time.Now()
		if err != nil {
			j.status = StatusFailed
			j.errMsg = err.Error()
			f.failed++
		} else {
			j.status = StatusDone
			j.result = res
			f.done++
			f.aggGuest += res.GuestInsns
			f.aggMols += res.Mols
			f.aggXlate += res.Metrics.Translations
			for _, n := range res.Metrics.Faults {
				f.aggRollbacks += n
			}
			for _, n := range res.Metrics.Adaptations {
				f.aggRetrans += n
			}
		}
		f.mu.Unlock()
	}
}

// execute runs one VM. Workload jobs are set up exactly like the solo
// harness (internal/bench.Run) — same platform, same load, same budget — so
// the differential test can compare farm results against solo runs
// byte-for-byte.
func (f *Farm) execute(spec JobSpec) (*Result, error) {
	var (
		org, entry uint32
		data, disk []byte
		ram        uint32
		budget     uint64
		stackTop   uint32
	)
	switch {
	case spec.Workload != "":
		w, err := workload.ByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		img := w.Build()
		org, data, entry = img.Org, img.Data, img.Entry
		disk, ram, budget = img.Disk, img.RAM, img.Budget
	default:
		prog, err := asm.Assemble(spec.Source)
		if err != nil {
			return nil, err
		}
		org, data, entry = prog.Org, prog.Image, prog.Entry()
		ram = 1 << 21
		budget = f.cfg.DefaultBudget
		stackTop = ram / 2
	}
	if spec.Budget > 0 {
		budget = spec.Budget
	}

	cfg := f.cfg.Engine
	cfg.SharedStore = f.store

	plat := dev.NewPlatform(ram, disk)
	plat.Bus.WriteRaw(org, data)
	e := cms.New(plat, entry, cfg)
	if stackTop != 0 {
		e.CPU().Regs[guest.ESP] = stackTop
	}

	t0 := time.Now()
	runErr := e.Run(budget)
	wall := time.Since(t0).Nanoseconds()
	if runErr != nil {
		return nil, runErr
	}

	cpu := e.CPU()
	hits, misses := e.SharedStats()
	return &Result{
		Regs:         cpu.Regs,
		EIP:          cpu.EIP,
		Flags:        cpu.Flags,
		Halted:       cpu.Halted,
		Console:      plat.Console.OutputString(),
		Metrics:      e.Metrics,
		CacheStats:   e.Cache.Stats,
		GuestInsns:   e.Metrics.GuestTotal(),
		Mols:         e.Metrics.TotalMols(),
		SharedHits:   hits,
		SharedMisses: misses,
		WallNs:       wall,
	}, nil
}
