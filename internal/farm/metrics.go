package farm

import (
	"fmt"
	"io"
	"sort"
)

// LatencyPercentiles computes p50/p99 submit-to-completion latency over a
// slice of job snapshots (finished jobs only). Zeros when nothing finished.
// It operates on JobView values precisely so callers snapshot first and
// compute outside any farm lock.
func LatencyPercentiles(jobs []JobView) (p50, p99 int64) {
	lat := make([]int64, 0, len(jobs))
	for _, j := range jobs {
		if j.LatencyNs > 0 {
			lat = append(lat, j.LatencyNs)
		}
	}
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return pick(0.50), pick(0.99)
}

// WriteMetrics renders the farm's counters in Prometheus text exposition
// format (hand-rolled; the repo is stdlib-only). Gauges describe the current
// farm shape, counters accumulate over completed jobs, and the per-job
// series expose each VM's shared-store attribution — that is where the
// "second VM of an identical workload hits >90%" claim is visible.
//
// Everything below is formatted from point-in-time snapshots (Stats() folds
// atomics, Jobs() copies views): no farm or job lock is held while bytes
// are written, so a slow scrape can never stall admission or a runner.
func WriteMetrics(w io.Writer, f *Farm) {
	st := f.Stats()
	jobs := f.Jobs()
	p50, p99 := LatencyPercentiles(jobs)

	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	gauge("cms_farm_vms", "Configured concurrent VM slots.", st.VMs)
	gauge("cms_farm_vms_active", "VMs currently executing a job.", st.Active)
	gauge("cms_farm_jobs_queued", "Jobs admitted but not yet running.", st.Queued)
	counter("cms_farm_jobs_done_total", "Jobs completed successfully.", st.Done)
	counter("cms_farm_jobs_failed_total", "Jobs that ended in an error.", st.Failed)
	counter("cms_farm_jobs_timeout_total", "Jobs preempted by the per-job watchdog deadline.", st.Timeouts)
	counter("cms_farm_jobs_checkpointed_total", "Jobs preempted into a snapshot by Checkpoint or CheckpointDrain.", st.Checkpoints)
	counter("cms_farm_store_rehydrate_hits_total", "Snapshot-restore translations served from the shared store.", st.Store.RehydrateHits)
	counter("cms_farm_store_rehydrate_misses_total", "Snapshot-restore translations deterministically retranslated.", st.Store.RehydrateMisses)
	counter("cms_farm_jobs_submitted_total", "Jobs admitted since start.", st.Submitted)
	counter("cms_farm_panics_total", "Engine attempts that panicked and were contained.", st.Panics)
	counter("cms_farm_retries_total", "Rung-demoting retries started.", st.Retries)
	counter("cms_farm_retry_successes_total", "Retries that completed the job on a demoted rung.", st.RetrySuccesses)
	counter("cms_farm_incidents_total", "Replayable incident bundles written.", st.Incidents)
	open := 0
	if st.BreakerOpen {
		open = 1
	}
	gauge("cms_farm_breaker_open", "1 while the admission circuit breaker is shedding load.", open)
	counter("cms_farm_breaker_shed_total", "Submissions shed while the breaker was open.", st.BreakerShed)
	gauge("cms_farm_job_latency_p50_ns", "Median submit-to-completion latency over finished jobs.", p50)
	gauge("cms_farm_job_latency_p99_ns", "99th-percentile submit-to-completion latency over finished jobs.", p99)

	counter("cms_farm_store_hits_total", "Shared-store lookups served from an installed artifact.", st.Store.Hits)
	counter("cms_farm_store_waits_total", "Shared-store lookups that joined an in-flight translation.", st.Store.Waits)
	counter("cms_farm_store_misses_total", "Shared-store lookups that ran the translator.", st.Store.Misses)
	counter("cms_farm_store_evictions_total", "Artifacts evicted from the shared store.", st.Store.Evictions)
	counter("cms_farm_store_poisons_total", "Content keys quarantined after a panic or rollback storm.", st.Store.Poisons)
	counter("cms_farm_store_poison_hits_total", "Translation requests bypassing the store on a poisoned key.", st.Store.PoisonHits)
	gauge("cms_farm_store_poisoned_keys", "Content keys currently quarantined.", st.Store.Poisoned)
	gauge("cms_farm_store_entries", "Artifacts resident in the shared store.", st.Store.Entries)
	gauge("cms_farm_store_atoms", "Code atoms resident in the shared store.", st.Store.Atoms)
	gauge("cms_farm_store_shards", "Width of the shared store's shard array.", st.Store.Shards)
	gauge("cms_farm_store_dedup_ratio", "Fraction of translation requests deduplicated (hits+waits over all).", st.Store.DedupRatio())

	counter("cms_farm_guest_insns_total", "Guest instructions retired across completed jobs.", st.GuestInsns)
	counter("cms_farm_mols_total", "Simulated molecules across completed jobs.", st.Mols)
	counter("cms_farm_translations_total", "Translations installed across completed jobs.", st.Translations)
	counter("cms_farm_rollbacks_total", "Faults absorbed by rollback and re-interpretation across completed jobs.", st.Rollbacks)
	counter("cms_farm_retranslations_total", "Adaptive retranslation events across completed jobs.", st.Retranslations)

	// Per-job series, labeled by job id and workload.
	fmt.Fprintf(w, "# HELP cms_farm_job_store_hits_total Shared-store hits attributed to one VM.\n# TYPE cms_farm_job_store_hits_total counter\n")
	for _, j := range jobs {
		if j.Result != nil {
			fmt.Fprintf(w, "cms_farm_job_store_hits_total{job=%q,workload=%q} %d\n",
				j.ID, j.Spec.Workload, j.Result.SharedHits)
		}
	}
	fmt.Fprintf(w, "# HELP cms_farm_job_store_misses_total Shared-store misses attributed to one VM.\n# TYPE cms_farm_job_store_misses_total counter\n")
	for _, j := range jobs {
		if j.Result != nil {
			fmt.Fprintf(w, "cms_farm_job_store_misses_total{job=%q,workload=%q} %d\n",
				j.ID, j.Spec.Workload, j.Result.SharedMisses)
		}
	}
	fmt.Fprintf(w, "# HELP cms_farm_job_rollbacks_total Faults absorbed by rollback in one VM.\n# TYPE cms_farm_job_rollbacks_total counter\n")
	for _, j := range jobs {
		if j.Result == nil {
			continue
		}
		var rb uint64
		for _, n := range j.Result.Metrics.Faults {
			rb += n
		}
		fmt.Fprintf(w, "cms_farm_job_rollbacks_total{job=%q,workload=%q} %d\n", j.ID, j.Spec.Workload, rb)
	}
	fmt.Fprintf(w, "# HELP cms_farm_job_retranslations_total Adaptive retranslations in one VM.\n# TYPE cms_farm_job_retranslations_total counter\n")
	for _, j := range jobs {
		if j.Result == nil {
			continue
		}
		var rt uint64
		for _, n := range j.Result.Metrics.Adaptations {
			rt += n
		}
		fmt.Fprintf(w, "cms_farm_job_retranslations_total{job=%q,workload=%q} %d\n", j.ID, j.Spec.Workload, rt)
	}
}
