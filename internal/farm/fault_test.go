package farm

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"

	"cms/internal/cms"
	"cms/internal/incident"
	"cms/internal/workload"
)

// spinSource never halts on its own: ecx wraps from 0 through 2^32
// iterations, far more guest work than any test budget, so the only ways out
// are the instruction budget or the watchdog.
const spinSource = `
.org 0x1000
_start:
	mov ecx, 0
spin:
	dec ecx
	jne spin
	hlt
`

// TestChaosPanicContained drives a deterministic injected panic through a
// serving farm and asserts the blast radius: the job fails with the panic
// captured, the implicated shared artifact is poisoned, incident bundles are
// written for both attempts (the retry demotes full → nocompile, where texec
// boundaries still exist, so the chaos schedule panics again), and the SAME
// runner goes on to serve a healthy job — the process never stops serving.
func TestChaosPanicContained(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{MaxVMs: 1, Engine: cms.DefaultConfig(), IncidentDir: dir, BreakerWindow: -1})
	v, err := f.Submit(JobSpec{Source: testSource, InjectSeed: 7, ChaosPanics: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.Submit(JobSpec{Source: testSource})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()

	got, _ := f.Job(v.ID)
	if got.Status != StatusFailed {
		t.Fatalf("chaos job status = %s (%s)", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "panic:") || !strings.Contains(got.Error, "injected panic") {
		t.Errorf("error = %q, want captured injected panic", got.Error)
	}
	if len(got.Incidents) != 2 {
		t.Fatalf("incidents = %v, want one bundle per failed attempt", got.Incidents)
	}
	for i, p := range got.Incidents {
		b, err := incident.Load(p)
		if err != nil {
			t.Fatalf("bundle %d: %v", i, err)
		}
		if b.Kind != incident.KindPanic || b.Stack == "" || b.Job != v.ID || b.Attempt != i {
			t.Errorf("bundle %d = kind %s attempt %d job %s stack %d bytes", i, b.Kind, b.Attempt, b.Job, len(b.Stack))
		}
	}

	healthy, _ := f.Job(h.ID)
	if healthy.Status != StatusDone || healthy.Result.Regs[0] != 60000 {
		t.Errorf("runner did not survive the panic: healthy job %s (%s)", healthy.Status, healthy.Error)
	}

	st := f.Stats()
	if st.Panics < 2 || st.Retries != 1 || st.Failed != 1 || st.Done != 1 {
		t.Errorf("stats = panics %d retries %d failed %d done %d", st.Panics, st.Retries, st.Failed, st.Done)
	}
	if st.Incidents != 2 {
		t.Errorf("incidents counter = %d, want 2", st.Incidents)
	}
	if st.Store.Poisons == 0 {
		t.Error("panic did not quarantine the implicated shared artifact")
	}
}

// TestRetryDemotesToInterp is the rung-demoting retry's success path: on a
// nocompile engine template the retry lands on the interpreter-only rung,
// where no translations execute, so the chaos schedule has no texec boundary
// to panic at and the demoted attempt completes the job — with full retry
// provenance in the Result.
func TestRetryDemotesToInterp(t *testing.T) {
	eng := cms.DefaultConfig()
	eng.EnableCompiledBackend = false
	f := New(Config{MaxVMs: 1, Engine: eng, BreakerWindow: -1})
	v, err := f.Submit(JobSpec{Source: testSource, InjectSeed: 7, ChaosPanics: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()

	got, _ := f.Job(v.ID)
	if got.Status != StatusDone {
		t.Fatalf("status = %s (%s), want retry to succeed on the interp rung", got.Status, got.Error)
	}
	r := got.Result
	if r.Attempts != 2 || r.Rung != "interp" {
		t.Errorf("attempts = %d rung = %q, want 2 on interp", r.Attempts, r.Rung)
	}
	if !strings.Contains(r.RetryReason, "panic:") {
		t.Errorf("retry reason = %q, want the first attempt's panic", r.RetryReason)
	}
	if r.Regs[0] != 60000 || !r.Halted {
		t.Errorf("demoted rung produced wrong guest state: eax %d halted %v", r.Regs[0], r.Halted)
	}
	st := f.Stats()
	if st.RetrySuccesses != 1 || st.Done != 1 || st.Failed != 0 {
		t.Errorf("stats = retrySuccess %d done %d failed %d", st.RetrySuccesses, st.Done, st.Failed)
	}
}

// TestDisableRetry pins the opt-out: with retries off a panicked job reports
// its first attempt's outcome directly.
func TestDisableRetry(t *testing.T) {
	eng := cms.DefaultConfig()
	eng.EnableCompiledBackend = false
	f := New(Config{MaxVMs: 1, Engine: eng, DisableRetry: true, BreakerWindow: -1})
	v, err := f.Submit(JobSpec{Source: testSource, InjectSeed: 7, ChaosPanics: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	got, _ := f.Job(v.ID)
	if got.Status != StatusFailed {
		t.Fatalf("status = %s, want failed with retries disabled", got.Status)
	}
	if st := f.Stats(); st.Retries != 0 {
		t.Errorf("retries = %d, want 0", st.Retries)
	}
}

// TestWatchdogDeadline expires a wall-clock deadline in the middle of
// translated execution: the engine must stop cooperatively at a committed
// boundary, the job must finish as StatusTimeout (terminal — no retry, the
// demoted rung is slower, not faster), and the incident bundle must replay
// bit-exactly from its retired-instruction count.
func TestWatchdogDeadline(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{MaxVMs: 2, Engine: cms.DefaultConfig(), IncidentDir: dir, BreakerWindow: -1})
	v, err := f.Submit(JobSpec{Source: spinSource, Budget: 4_000_000_000, DeadlineMs: 15})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()

	got, _ := f.Job(v.ID)
	if got.Status != StatusTimeout {
		t.Fatalf("status = %s (%s), want timeout", got.Status, got.Error)
	}
	if !strings.Contains(got.Error, "deadline of 15ms exceeded") {
		t.Errorf("error = %q", got.Error)
	}
	if got.LatencyNs <= 0 {
		t.Error("timed-out job has no latency recorded")
	}
	if len(got.Incidents) != 1 {
		t.Fatalf("incidents = %v, want exactly one", got.Incidents)
	}
	st := f.Stats()
	if st.Timeouts != 1 || st.Retries != 0 || st.Failed != 0 || st.Done != 0 {
		t.Errorf("stats = timeouts %d retries %d failed %d done %d", st.Timeouts, st.Retries, st.Failed, st.Done)
	}

	b, err := incident.Load(got.Incidents[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != incident.KindTimeout || b.Retired == 0 {
		t.Fatalf("bundle = kind %s retired %d", b.Kind, b.Retired)
	}
	// The replay contract: running solo to the recorded retired-instruction
	// count reaches the identical committed architectural state.
	if err := incident.Replay(b); err != nil {
		t.Fatalf("timeout incident did not replay: %v", err)
	}
}

// TestBreakerOpensShedsAndCloses walks the circuit breaker's full lifecycle:
// a failure storm fills the outcome window and opens it, Submit sheds load
// with ErrBreakerOpen while probe admissions slip through, and the first
// probe that succeeds closes the breaker and restores normal admission.
func TestBreakerOpensShedsAndCloses(t *testing.T) {
	f := New(Config{MaxVMs: 1, QueueDepth: 16, BreakerWindow: 4, BreakerProbe: 2, DisableRetry: true})
	defer f.Drain()
	for i := 0; i < 4; i++ {
		if _, err := f.Submit(JobSpec{Source: "not a program"}); err != nil {
			t.Fatal(err)
		}
	}
	f.Wait()
	if !f.Stats().BreakerOpen {
		t.Fatal("breaker did not open after a full window of failures")
	}

	shed, admitted := false, false
	for i := 0; i < 8 && !admitted; i++ {
		_, err := f.Submit(JobSpec{Source: testSource})
		switch {
		case errors.Is(err, ErrBreakerOpen):
			shed = true
		case err == nil:
			admitted = true
		default:
			t.Fatal(err)
		}
	}
	if !shed || !admitted {
		t.Fatalf("shed=%v admitted=%v, want load shedding with probe admissions", shed, admitted)
	}
	f.Wait()

	st := f.Stats()
	if st.BreakerOpen {
		t.Error("successful probe did not close the breaker")
	}
	if st.BreakerShed == 0 {
		t.Error("no shed submissions counted")
	}
	if _, err := f.Submit(JobSpec{Source: testSource}); err != nil {
		t.Errorf("closed breaker still rejecting: %v", err)
	}
	f.Wait()
}

// TestConcurrentDrainIdempotent races many Drain calls against each other
// and in-flight jobs: every call must return with all work finished, the
// queue must close exactly once, and admission must stay rejected after.
func TestConcurrentDrainIdempotent(t *testing.T) {
	f := New(Config{MaxVMs: 2, QueueDepth: 16})
	var ids []string
	for i := 0; i < 6; i++ {
		v, err := f.Submit(JobSpec{Source: testSource})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Drain()
		}()
	}
	wg.Wait()
	if _, err := f.Submit(JobSpec{Source: testSource}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after concurrent drains = %v, want ErrDraining", err)
	}
	for _, id := range ids {
		if v, _ := f.Job(id); v.Status != StatusDone {
			t.Errorf("%s: %s (%s) after drain", id, v.Status, v.Error)
		}
	}
}

// TestFaultMetricsExposed drives one of every failure class through a farm
// and checks the Prometheus exposition carries the new gauges.
func TestFaultMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	f := New(Config{MaxVMs: 1, Engine: cms.DefaultConfig(), IncidentDir: dir, BreakerWindow: -1})
	if _, err := f.Submit(JobSpec{Source: testSource, InjectSeed: 3, ChaosPanics: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(JobSpec{Source: spinSource, Budget: 4_000_000_000, DeadlineMs: 10}); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	var sb strings.Builder
	WriteMetrics(&sb, f)
	out := sb.String()
	for _, want := range []string{
		"cms_farm_jobs_timeout_total 1",
		"cms_farm_panics_total",
		"cms_farm_retries_total 1",
		"cms_farm_incidents_total 3",
		"cms_farm_breaker_open 0",
		"cms_farm_breaker_shed_total 0",
		"cms_farm_store_poisons_total",
		"cms_farm_store_poisoned_keys",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestChaosServing is the PR's capstone: a farm under sustained mixed load —
// healthy workloads, healthy raw-source jobs, deterministic injected panics,
// and watchdog timeouts, all interleaved across every VM slot — must keep
// every invariant at once. No job may hang or vanish, the process must keep
// serving through every failure, every failure must leave a replayable
// incident bundle, and the healthy jobs' results must stay bit-identical to
// solo runs of the same workloads. Run under -race by check.sh.
//
// The circuit breaker is disabled here on purpose: a third of the load is
// designed to fail, which would (correctly) open the breaker and shed the
// rest of the mix; its lifecycle has its own test above.
func TestChaosServing(t *testing.T) {
	const jobs = 240
	dir := t.TempDir()
	eng := cms.DefaultConfig()
	f := New(Config{MaxVMs: 8, QueueDepth: jobs + 8, Engine: eng, IncidentDir: dir, BreakerWindow: -1, StoreShards: 8})

	ew, err := workload.ByName("eqntott")
	if err != nil {
		t.Fatal(err)
	}
	solo := soloRun(t, ew, eng)

	specFor := func(i int) JobSpec {
		switch i % 4 {
		case 0:
			return JobSpec{Workload: "eqntott"}
		case 1:
			return JobSpec{Source: testSource}
		case 2:
			return JobSpec{Source: testSource, InjectSeed: uint64(1000 + i), ChaosPanics: true}
		default:
			return JobSpec{Source: spinSource, Budget: 4_000_000_000, DeadlineMs: int64(8 + i%8)}
		}
	}

	ids := make([]string, jobs)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < jobs; i += 8 {
				v, err := f.Submit(specFor(i))
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				ids[i] = v.ID
			}
		}(g)
	}
	wg.Wait()
	f.Drain()

	var done, failed, timeouts int
	for i, id := range ids {
		if id == "" {
			continue // submit already failed the test
		}
		v, ok := f.Job(id)
		if !ok {
			t.Fatalf("job %d (%s) vanished", i, id)
		}
		switch v.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		case StatusTimeout:
			timeouts++
		default:
			t.Fatalf("job %d (%s) hung in %s after Drain", i, id, v.Status)
		}
		switch i % 4 {
		case 0:
			if v.Status != StatusDone {
				t.Fatalf("healthy eqntott job %s: %s (%s)", id, v.Status, v.Error)
			}
			// Bit-identity with the solo run: same final architectural state
			// and the same full Metrics struct, chaos neighbours or not.
			diffResults(t, id+"/eqntott", solo, v.Result)
		case 1:
			if v.Status != StatusDone || v.Result.Regs[0] != 60000 {
				t.Fatalf("healthy source job %s: %s (%s)", id, v.Status, v.Error)
			}
		case 2:
			if v.Status != StatusFailed || !strings.Contains(v.Error, "panic:") {
				t.Fatalf("chaos job %s: %s (%s), want captured panic", id, v.Status, v.Error)
			}
			if len(v.Incidents) == 0 {
				t.Fatalf("chaos job %s failed without an incident bundle", id)
			}
		default:
			if v.Status != StatusTimeout || !strings.Contains(v.Error, "deadline") {
				t.Fatalf("deadline job %s: %s (%s), want timeout", id, v.Status, v.Error)
			}
			if len(v.Incidents) != 1 {
				t.Fatalf("timeout job %s: incidents = %v", id, v.Incidents)
			}
		}
		// Every failure is captured: each listed bundle exists on disk.
		for _, p := range v.Incidents {
			if _, err := os.Stat(p); err != nil {
				t.Fatalf("job %s incident missing: %v", id, err)
			}
		}
	}
	if done+failed+timeouts != jobs {
		t.Fatalf("accounted %d jobs, want %d", done+failed+timeouts, jobs)
	}

	st := f.Stats()
	if st.Done != uint64(done) || st.Failed != uint64(failed) || st.Timeouts != uint64(timeouts) {
		t.Errorf("stats disagree with job table: %+v vs %d/%d/%d", st, done, failed, timeouts)
	}
	if st.Panics == 0 || st.Retries == 0 || st.Incidents == 0 {
		t.Errorf("chaos left no trace: panics %d retries %d incidents %d", st.Panics, st.Retries, st.Incidents)
	}
	if st.Store.Poisons == 0 {
		t.Error("no shared artifact was quarantined under chaos load")
	}

	// Replayability spot-check: one bundle of each kind, re-run solo, must
	// reproduce the recorded outcome and architectural state hash exactly.
	replayed := map[string]bool{}
	for _, id := range ids {
		v, _ := f.Job(id)
		for _, p := range v.Incidents {
			b, err := incident.Load(p)
			if err != nil {
				t.Fatal(err)
			}
			if replayed[b.Kind] {
				continue
			}
			replayed[b.Kind] = true
			if err := incident.Replay(b); err != nil {
				t.Errorf("incident %s (%s) did not replay: %v", p, b.Kind, err)
			}
		}
		if len(replayed) >= 2 {
			break
		}
	}
	if !replayed[incident.KindPanic] || !replayed[incident.KindTimeout] {
		t.Errorf("replay spot-check covered %v, want both panic and timeout", replayed)
	}

	// The latency invariant: every terminal job recorded one.
	for _, id := range ids {
		if v, _ := f.Job(id); v.LatencyNs <= 0 {
			t.Errorf("job %s finished without latency", id)
		}
	}

	wd, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(wd)) != st.Incidents {
		t.Errorf("incident dir holds %d bundles, counter says %d", len(wd), st.Incidents)
	}
}
