package farm

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"cms/internal/cms"
)

// testSource is a small hot loop, cheap enough for unit tests.
const testSource = `
.org 0x1000
_start:
	mov ecx, 20000
loop:
	add eax, 3
	dec ecx
	jne loop
	hlt
`

func TestSubmitValidation(t *testing.T) {
	f := New(Config{MaxVMs: 1})
	defer f.Drain()
	if _, err := f.Submit(JobSpec{}); err == nil {
		t.Error("empty spec must be rejected")
	}
	if _, err := f.Submit(JobSpec{Workload: "eqntott", Source: testSource}); err == nil {
		t.Error("both workload and source must be rejected")
	}
	if _, err := f.Submit(JobSpec{Workload: "no-such-benchmark"}); err == nil {
		t.Error("unknown workload must be rejected")
	}
}

func TestRunSourceJob(t *testing.T) {
	f := New(Config{MaxVMs: 2})
	v, err := f.Submit(JobSpec{Source: testSource})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	got, ok := f.Job(v.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if got.Status != StatusDone {
		t.Fatalf("status = %s (%s)", got.Status, got.Error)
	}
	if !got.Result.Halted {
		t.Error("guest did not halt")
	}
	if got.Result.Regs[0] != 60000 {
		t.Errorf("eax = %d, want 60000", got.Result.Regs[0])
	}
	if got.Result.Metrics.Translations == 0 {
		t.Error("hot loop never translated")
	}
}

func TestQueueOverflow(t *testing.T) {
	// One VM, depth 2: the first job may start immediately, so between 2 and
	// 3 submissions are admitted and the rest must fail fast with
	// ErrQueueFull — Submit never blocks.
	f := New(Config{MaxVMs: 1, QueueDepth: 2})
	defer f.Drain()
	admitted, full := 0, 0
	for i := 0; i < 8; i++ {
		_, err := f.Submit(JobSpec{Source: testSource})
		switch err {
		case nil:
			admitted++
		case ErrQueueFull:
			full++
		default:
			t.Fatal(err)
		}
	}
	if full == 0 {
		t.Error("no submission was rejected for backpressure")
	}
	if admitted < 2 {
		t.Errorf("only %d admitted with queue depth 2", admitted)
	}
}

func TestDrainRejectsAndFinishes(t *testing.T) {
	f := New(Config{MaxVMs: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		v, err := f.Submit(JobSpec{Source: testSource})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	f.Drain()
	if _, err := f.Submit(JobSpec{Source: testSource}); err != ErrDraining {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}
	for _, id := range ids {
		v, _ := f.Job(id)
		if v.Status != StatusDone {
			t.Errorf("%s: status = %s after drain (%s)", id, v.Status, v.Error)
		}
	}
	// Drain is idempotent.
	f.Drain()
}

func TestFailedJobReported(t *testing.T) {
	f := New(Config{MaxVMs: 1})
	v, err := f.Submit(JobSpec{Source: "bogus instruction soup"})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	got, _ := f.Job(v.ID)
	if got.Status != StatusFailed || got.Error == "" {
		t.Errorf("status = %s, error = %q; want failed with message", got.Status, got.Error)
	}
}

// TestSharedStoreDedupAcrossVMs runs the same program twice sequentially
// (one VM slot) and asserts the second VM's translations come almost
// entirely from the shared store — the ISSUE's >90% hit-rate criterion.
func TestSharedStoreDedupAcrossVMs(t *testing.T) {
	f := New(Config{MaxVMs: 1})
	a, err := f.Submit(JobSpec{Workload: "eqntott"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Submit(JobSpec{Workload: "eqntott"})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()

	va, _ := f.Job(a.ID)
	vb, _ := f.Job(b.ID)
	if va.Status != StatusDone || vb.Status != StatusDone {
		t.Fatalf("jobs not done: %s/%s (%s %s)", va.Status, vb.Status, va.Error, vb.Error)
	}
	if va.Result.SharedHits != 0 {
		t.Errorf("first VM saw %d store hits in an empty store", va.Result.SharedHits)
	}
	total := vb.Result.SharedHits + vb.Result.SharedMisses
	if total == 0 {
		t.Fatal("second VM made no translation requests")
	}
	rate := float64(vb.Result.SharedHits) / float64(total)
	if rate <= 0.9 {
		t.Errorf("second VM hit rate = %.2f (%d/%d), want > 0.9",
			rate, vb.Result.SharedHits, total)
	}
	// Determinism: identical jobs, identical simulated outcomes.
	if va.Result.Metrics != vb.Result.Metrics {
		t.Error("identical jobs produced different Metrics")
	}
	if va.Result.Regs != vb.Result.Regs {
		t.Error("identical jobs produced different final registers")
	}
}

// TestConcurrentObserversUnderLoad is the lock-layout regression test, run
// under -race by check.sh: while a stream of jobs flows through every VM
// slot, observer goroutines hammer Stats, Jobs, Job, and WriteMetrics, and
// submitter goroutines race each other into the admission queue. The old
// single farm mutex made these serialize behind running jobs' bookkeeping
// (and Stats() raced runner updates); now none of them may block progress
// or trip the race detector.
func TestConcurrentObserversUnderLoad(t *testing.T) {
	f := New(Config{MaxVMs: 4, QueueDepth: 256})
	const jobs = 40
	var submitters, observers sync.WaitGroup
	ids := make(chan string, jobs)
	for s := 0; s < 4; s++ {
		submitters.Add(1)
		go func() {
			defer submitters.Done()
			for i := 0; i < jobs/4; i++ {
				v, err := f.Submit(JobSpec{Source: testSource})
				if err != nil {
					t.Error(err)
					return
				}
				ids <- v.ID
			}
		}()
	}
	stop := make(chan struct{})
	for o := 0; o < 3; o++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := f.Stats()
				if st.Queued < 0 || st.Active < 0 || st.Active > 4 {
					t.Errorf("implausible stats snapshot: %+v", st)
					return
				}
				for _, j := range f.Jobs() {
					if _, ok := f.Job(j.ID); !ok {
						t.Errorf("%s listed but not found", j.ID)
						return
					}
				}
				WriteMetrics(io.Discard, f)
				time.Sleep(200 * time.Microsecond) // keep the spin from starving runners on small hosts
			}
		}()
	}
	submitters.Wait()
	f.Drain()
	close(stop)
	observers.Wait()
	close(ids)

	st := f.Stats()
	if st.Done != jobs || st.Failed != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0", st.Done, st.Failed, jobs)
	}
	if st.Submitted != jobs {
		t.Errorf("submitted=%d, want %d", st.Submitted, jobs)
	}
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate job id %s under concurrent submission", id)
		}
		seen[id] = true
		v, ok := f.Job(id)
		if !ok || v.Status != StatusDone {
			t.Errorf("%s: %v %s (%s)", id, ok, v.Status, v.Error)
		}
		if v.LatencyNs <= 0 {
			t.Errorf("%s: no latency recorded on a finished job", id)
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	f := New(Config{MaxVMs: 1})
	if _, err := f.Submit(JobSpec{Workload: "eqntott"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(JobSpec{Workload: "eqntott"}); err != nil {
		t.Fatal(err)
	}
	f.Drain()
	var sb strings.Builder
	WriteMetrics(&sb, f)
	out := sb.String()
	for _, want := range []string{
		"cms_farm_vms 1",
		"cms_farm_jobs_done_total 2",
		"cms_farm_store_hits_total",
		"cms_farm_store_dedup_ratio",
		`cms_farm_job_store_hits_total{job="job-000002",workload="eqntott"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestEngineTemplateRespected checks the farm passes its engine config
// template through (here: pipelined translation) while still forcing the
// shared store in.
func TestEngineTemplateRespected(t *testing.T) {
	cfg := cms.DefaultConfig()
	cfg.PipelineWorkers = 2
	f := New(Config{MaxVMs: 1, Engine: cfg})
	v, err := f.Submit(JobSpec{Source: testSource})
	if err != nil {
		t.Fatal(err)
	}
	f.Drain()
	got, _ := f.Job(v.ID)
	if got.Status != StatusDone {
		t.Fatalf("status = %s (%s)", got.Status, got.Error)
	}
	if got.Result.Metrics.PipelineSubmits == 0 {
		t.Error("pipelined engine template was not applied")
	}
	if got.Result.SharedMisses == 0 {
		t.Error("shared store was not wired into the pipelined engine")
	}
}
