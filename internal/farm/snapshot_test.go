package farm

import (
	"testing"

	"cms/internal/cms"
	"cms/internal/incident"
	"cms/internal/workload"
)

// pickWorkload returns a suite workload long enough that a checkpoint
// request always lands before the guest halts.
func pickWorkload(t *testing.T) workload.Workload {
	t.Helper()
	for _, w := range workload.All() {
		if w.Name == "eqntott" {
			return w
		}
	}
	t.Fatal("suite lost the eqntott workload")
	return workload.Workload{}
}

// TestFarmCheckpointRestore preempts a running job into a snapshot, resumes
// the blob as a new job on the same farm (warm store), and requires the
// combined run — capture plus continuation — to be bit-identical to a solo
// uninterrupted run: architectural state, full Metrics, cache statistics.
func TestFarmCheckpointRestore(t *testing.T) {
	cfg := cms.DefaultConfig()
	w := pickWorkload(t)
	solo := soloRun(t, w, cfg)

	f := New(Config{MaxVMs: 2, Engine: cfg})
	v, err := f.Submit(JobSpec{Workload: w.Name})
	if err != nil {
		t.Fatal(err)
	}
	// The flag lands before the runner picks the job up, so the engine is
	// preempted at its first poll boundary — a few thousand retired
	// instructions in, far enough for the hot entry loop to be translated,
	// early enough that the job cannot win the race by halting first.
	cv, blob, err := f.Checkpoint(v.ID)
	if err != nil {
		t.Fatalf("checkpoint: %v (status %s)", err, cv.Status)
	}
	if cv.Status != StatusCheckpointed || cv.SnapshotBytes != len(blob) || len(blob) == 0 {
		t.Fatalf("checkpoint view: %+v (%d blob bytes)", cv, len(blob))
	}
	if got, ok := f.Snapshot(v.ID); !ok || len(got) != len(blob) {
		t.Fatalf("Snapshot accessor: ok=%v len=%d want %d", ok, len(got), len(blob))
	}

	rv, err := f.SubmitRestore(blob, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f.Wait()
	jv, _ := f.Job(rv.ID)
	if jv.Status != StatusDone {
		t.Fatalf("restored job: status %s: %s", jv.Status, jv.Error)
	}
	if !jv.Restored {
		t.Fatal("restored job not flagged Restored")
	}
	diffResults(t, w.Name+"/restored", solo, jv.Result)

	if st := f.Stats(); st.Checkpoints != 1 {
		t.Fatalf("Stats.Checkpoints = %d, want 1", st.Checkpoints)
	}
}

// TestFarmCheckpointDrainMigrate is live migration in miniature: farm A is
// drained into checkpoints, every blob is restored on a brand-new farm B
// with a cold shared store, and every migrated job must finish bit-identical
// to a solo run — rehydration on the cold store is a deterministic
// retranslation, so migration moves wall-clock cost only.
func TestFarmCheckpointDrainMigrate(t *testing.T) {
	cfg := cms.DefaultConfig()
	w := pickWorkload(t)
	solo := soloRun(t, w, cfg)

	a := New(Config{MaxVMs: 2, Engine: cfg})
	const jobs = 3
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		v, err := a.Submit(JobSpec{Workload: w.Name})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	views := a.CheckpointDrain()
	if len(views) == 0 {
		t.Fatal("CheckpointDrain preempted nothing")
	}
	if a.Stats().Checkpoints != uint64(len(views)) {
		t.Fatalf("Stats.Checkpoints = %d, want %d", a.Stats().Checkpoints, len(views))
	}

	b := New(Config{MaxVMs: 2, Engine: cfg})
	migrated := make([]string, 0, len(views))
	for _, v := range views {
		blob, ok := a.Snapshot(v.ID)
		if !ok {
			t.Fatalf("%s: checkpointed but no snapshot", v.ID)
		}
		rv, err := b.SubmitRestore(blob, JobSpec{})
		if err != nil {
			t.Fatal(err)
		}
		migrated = append(migrated, rv.ID)
	}
	b.Drain()
	for _, id := range migrated {
		jv, _ := b.Job(id)
		if jv.Status != StatusDone {
			t.Fatalf("%s: status %s: %s", id, jv.Status, jv.Error)
		}
		diffResults(t, w.Name+"/migrated/"+id, solo, jv.Result)
	}
	// Jobs that completed on A before the drain flag landed must still have
	// results; the sum of done and checkpointed covers every submission.
	done := 0
	for _, id := range ids {
		jv, _ := a.Job(id)
		switch jv.Status {
		case StatusDone:
			done++
		case StatusCheckpointed:
		default:
			t.Fatalf("%s: unexpected terminal status %s", id, jv.Status)
		}
	}
	if done+len(views) != jobs {
		t.Fatalf("done %d + checkpointed %d != %d submitted", done, len(views), jobs)
	}
}

// TestRestoredJobIncidentReplaysFromCheckpoint is the record-replay loop:
// a job is checkpointed, restored, and then dies on a guest fault. The
// incident bundle must embed the checkpoint envelope, and incident.Replay
// must reproduce the failure from the checkpoint — same error, same
// architectural state hash — without replaying the pre-checkpoint history.
func TestRestoredJobIncidentReplaysFromCheckpoint(t *testing.T) {
	const faulty = `
.org 0x1000
_start:
	mov ecx, 100000
loop:
	add eax, 1
	dec ecx
	jne loop
	mov ebx, [0x800000]
	hlt
`
	cfg := cms.DefaultConfig()
	f := New(Config{MaxVMs: 1, Engine: cfg, IncidentDir: t.TempDir()})
	v, err := f.Submit(JobSpec{Source: faulty})
	if err != nil {
		t.Fatal(err)
	}
	_, blob, err := f.Checkpoint(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := f.SubmitRestore(blob, JobSpec{})
	if err != nil {
		t.Fatal(err)
	}
	f.Wait()
	jv, _ := f.Job(rv.ID)
	if jv.Status != StatusFailed {
		t.Fatalf("restored job: status %s, want failed", jv.Status)
	}
	if len(jv.Incidents) != 1 {
		t.Fatalf("incidents: %v, want one bundle", jv.Incidents)
	}
	b, err := incident.Load(jv.Incidents[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Snapshot) == 0 {
		t.Fatal("bundle from a restored job lacks the checkpoint envelope")
	}
	if b.ImageSHA != "" {
		t.Fatal("snapshot bundle should not record an image hash")
	}
	if err := incident.Replay(b); err != nil {
		t.Fatalf("replay from checkpoint: %v", err)
	}
	f.Drain()
}

// TestSubmitRestoreValidation pins the admission errors: a spec naming an
// image, a corrupt envelope, and an injected capture without its seed.
func TestSubmitRestoreValidation(t *testing.T) {
	cfg := cms.DefaultConfig()
	f := New(Config{MaxVMs: 1, Engine: cfg})
	if _, err := f.SubmitRestore([]byte("garbage"), JobSpec{}); err == nil {
		t.Fatal("corrupt envelope admitted")
	}
	v, err := f.Submit(JobSpec{Workload: pickWorkload(t).Name})
	if err != nil {
		t.Fatal(err)
	}
	_, blob, err := f.Checkpoint(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SubmitRestore(blob, JobSpec{Workload: "eqntott"}); err == nil {
		t.Fatal("restore spec with a workload admitted")
	}
	f.Drain()
}
