package farm

import "sync/atomic"

// breaker is the farm's admission circuit breaker: a fixed ring of recent
// job outcomes, entirely atomic so the Submit hot path never takes a lock
// (the farm's lock-layout contract). When the ring is full and at least half
// its outcomes are failures or timeouts, the breaker opens and Submit sheds
// load with ErrBreakerOpen — distinct from ErrQueueFull backpressure: the
// queue may be empty, the farm is just hurting. While open, every probe-th
// submission is still admitted; the first success recorded (a probe, or a
// still-draining queued job) closes the breaker and forgives the window, so
// a transient failure storm self-heals without operator action.
//
// The ring is deliberately approximate under concurrency: slots are written
// racily relative to the open/closed decision, so the breaker may open one
// outcome late or admit one extra probe. That slack is fine for load
// shedding and buys a zero-lock Submit path.
type breaker struct {
	slots  []atomic.Uint32 // 0 = empty, 1 = ok, 2 = failed
	pos    atomic.Uint64
	open   atomic.Bool
	probes atomic.Uint64
	shed   atomic.Uint64
	probe  uint64
}

// init sizes the ring. window < 0 disables the breaker entirely.
func (b *breaker) init(window, probe int) {
	if window < 0 {
		return
	}
	b.slots = make([]atomic.Uint32, window)
	b.probe = uint64(probe)
}

// admit reports whether a submission may proceed. Closed (or disabled)
// breaker: always. Open: only every probe-th caller.
func (b *breaker) admit() bool {
	if len(b.slots) == 0 || !b.open.Load() {
		return true
	}
	if b.probes.Add(1)%b.probe == 0 {
		return true
	}
	b.shed.Add(1)
	return false
}

// record folds one terminal job outcome into the ring and re-evaluates the
// breaker state: failures can open it, any success closes it.
func (b *breaker) record(failed bool) {
	if len(b.slots) == 0 {
		return
	}
	i := b.pos.Add(1) - 1
	v := uint32(1)
	if failed {
		v = 2
	}
	b.slots[i%uint64(len(b.slots))].Store(v)
	if failed {
		full, fails := b.counts()
		if full && fails*2 >= len(b.slots) {
			b.open.Store(true)
		}
		return
	}
	if b.open.Load() {
		// Health is back: close and forgive the window, or the lingering
		// failures would re-open the breaker on the next blip.
		b.open.Store(false)
		for i := range b.slots {
			b.slots[i].Store(0)
		}
	}
}

// counts scans the ring: whether every slot holds an outcome, and how many
// are failures.
func (b *breaker) counts() (full bool, fails int) {
	full = true
	for i := range b.slots {
		switch b.slots[i].Load() {
		case 0:
			full = false
		case 2:
			fails++
		}
	}
	return full, fails
}

func (b *breaker) isOpen() bool      { return b.open.Load() }
func (b *breaker) shedCount() uint64 { return b.shed.Load() }
