package interp

// ProfileState is a serializable copy of a Profile. Branch stats are stored
// by value; restore re-boxes them.
type ProfileState struct {
	Heads     map[uint32]uint64     `json:"heads"`
	Branches  map[uint32]BranchStat `json:"branches"`
	MMIOInsns map[uint32]bool       `json:"mmio_insns"`
}

// InterpState is the serializable interpreter state: the architectural CPU,
// retirement counters, and the profile. The decoded-instruction cache is
// deliberately absent — it is a host-side accelerator keyed by page
// generations, so a restored interpreter starts cold and refills correctly
// because the bus generations are restored verbatim.
type InterpState struct {
	CPU       CPU           `json:"cpu"`
	Retired   uint64        `json:"retired"`
	Delivered uint64        `json:"delivered"`
	Profile   *ProfileState `json:"profile"`
}

// ExportState captures the interpreter.
func (ip *Interp) ExportState() *InterpState {
	s := &InterpState{
		CPU:       ip.CPU,
		Retired:   ip.Retired,
		Delivered: ip.Delivered,
	}
	if ip.Prof != nil {
		ps := &ProfileState{
			Heads:     make(map[uint32]uint64, len(ip.Prof.Heads)),
			Branches:  make(map[uint32]BranchStat, len(ip.Prof.Branches)),
			MMIOInsns: make(map[uint32]bool, len(ip.Prof.MMIOInsns)),
		}
		for a, n := range ip.Prof.Heads {
			ps.Heads[a] = n
		}
		for a, b := range ip.Prof.Branches {
			ps.Branches[a] = *b
		}
		for a := range ip.Prof.MMIOInsns {
			ps.MMIOInsns[a] = true
		}
		s.Profile = ps
	}
	return s
}

// RestoreState overwrites the interpreter with a captured state. The
// decoded-instruction cache is reset. The Profile struct is mutated in
// place when one is already wired (the translator holds the same pointer),
// so every holder observes the restored maps.
func (ip *Interp) RestoreState(s *InterpState) {
	ip.CPU = s.CPU
	ip.Retired = s.Retired
	ip.Delivered = s.Delivered
	ip.ic = icache{}
	if s.Profile != nil {
		p := ip.Prof
		if p == nil {
			p = NewProfile()
			ip.Prof = p
		}
		p.Heads = make(map[uint32]uint64, len(s.Profile.Heads))
		p.Branches = make(map[uint32]*BranchStat, len(s.Profile.Branches))
		p.MMIOInsns = make(map[uint32]bool, len(s.Profile.MMIOInsns))
		for a, n := range s.Profile.Heads {
			p.Heads[a] = n
		}
		for a, b := range s.Profile.Branches {
			bb := b
			p.Branches[a] = &bb
		}
		for a, v := range s.Profile.MMIOInsns {
			if v {
				p.MMIOInsns[a] = true
			}
		}
	}
}
