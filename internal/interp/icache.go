package interp

import (
	"cms/internal/guest"
	"cms/internal/mem"
)

// The decoded-instruction cache removes the fetch+decode work from the
// interpreter's per-step critical path. The paper's interpreter spends its
// time in "decode and dispatch"; on hot (but not yet translated) code our
// Step paid that price on every visit to the same EIP. The cache is a pure
// host-side accelerator: hits and misses execute identically, so profiles,
// costs, and architectural state are unaffected.
//
// Correctness against self-modifying code rides on the bus's per-page
// modification generations (mem.Bus.Gen): every RAM write — CPU store, DMA,
// raw image load — and every page-attribute change bumps the page's
// generation, and an entry is valid only while the generation(s) of the
// page(s) holding its bytes still match the fill-time values. That is
// strictly stronger than the CMS write-protection machinery, which only
// guards pages holding translations.

// icacheBits sizes the direct-mapped decoded-instruction cache.
const icacheBits = 12

// icacheSize is the number of entries (one per low-address slot).
const icacheSize = 1 << icacheBits

type icEntry struct {
	addr uint32 // guest EIP this slot holds (valid only if filled)
	gen  uint64 // fill-time generation of the first byte's page
	gen2 uint64 // fill-time generation of the last byte's page
	in   guest.Insn
	ok   bool
}

// icache is the decoded-instruction cache.
type icache struct {
	slots [icacheSize]icEntry
	// Hits/Misses count lookups, for reporting and tests.
	Hits   uint64
	Misses uint64
}

// lookup returns the cached decode of eip, if still valid.
func (c *icache) lookup(bus *mem.Bus, eip uint32) (guest.Insn, bool) {
	e := &c.slots[eip&(icacheSize-1)]
	if e.ok && e.addr == eip {
		first := mem.PageOf(eip)
		last := mem.PageOf(eip + e.in.Len - 1)
		if bus.Gen(first) == e.gen && (first == last || bus.Gen(last) == e.gen2) {
			c.Hits++
			return e.in, true
		}
	}
	c.Misses++
	return guest.Insn{}, false
}

// fill records a successful decode.
func (c *icache) fill(bus *mem.Bus, in guest.Insn) {
	e := &c.slots[in.Addr&(icacheSize-1)]
	first := mem.PageOf(in.Addr)
	last := mem.PageOf(in.Addr + in.Len - 1)
	*e = icEntry{addr: in.Addr, gen: bus.Gen(first), gen2: bus.Gen(last), in: in, ok: true}
}
