package interp

import "cms/internal/guest"

// The interpreter in the real CMS is native VLIW code, so interpreting one
// x86 instruction consumes a few dozen molecules (decode, dispatch, operand
// fetch, semantics, EIP update). Our interpreter runs as Go, so the
// simulator charges an equivalent molecule cost per interpreted instruction
// using this calibrated model. The constants were chosen once so that a hot
// translated loop (~2-4 molecules per guest instruction) runs roughly an
// order of magnitude faster than interpretation, matching the gap reported
// for contemporary systems, and are frozen; see DESIGN.md §6.
const (
	costBase   = 22 // fetch, decode, dispatch, EIP update
	costMem    = 6  // effective address + access + MMIO discrimination
	costMulDiv = 10
	costStack  = 6 // push/pop family
	costBranch = 4 // target computation and next-lookup
	costIO     = 12
	costSystem = 16 // INT/IRET state save/restore
)

// Cost returns the molecule cost charged for interpreting one instruction.
func Cost(in guest.Insn) uint64 {
	c := uint64(costBase)
	switch in.Op.Format() {
	case guest.FmtRM, guest.FmtMR, guest.FmtMI, guest.FmtM:
		c += costMem
	}
	switch in.Op {
	case guest.OpMUL, guest.OpDIV, guest.OpIDIV, guest.OpIMULrr, guest.OpIMULri:
		c += costMulDiv
	case guest.OpPUSHr, guest.OpPUSHi, guest.OpPUSHF, guest.OpPOPr, guest.OpPOPF:
		c += costStack
	case guest.OpJMPrel, guest.OpJMPr, guest.OpJMPm, guest.OpCALLrel, guest.OpCALLr, guest.OpRET:
		c += costBranch
	case guest.OpIN, guest.OpOUT:
		c += costIO
	case guest.OpINT, guest.OpIRET:
		c += costSystem
	}
	if _, jcc := in.Op.IsJcc(); jcc {
		c += costBranch
	}
	return c
}

// DeliveryCost is the molecule cost charged for delivering an interrupt or
// exception through the IVT (state push, vector fetch, redirect).
const DeliveryCost = 40
