package interp

import (
	"testing"

	"cms/internal/asm"
	"cms/internal/guest"
)

// TestICacheHitsOnLoops checks the decoded-instruction cache actually serves
// repeated visits to the same EIP.
func TestICacheHitsOnLoops(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 0
	mov ecx, 100
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`)
	mustHalt(t, ip, 10000)
	if got := ip.CPU.Regs[guest.EAX]; got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	hits, misses := ip.ICacheStats()
	// 100 iterations of a 3-insn loop: everything after the first pass hits.
	if hits < 290 {
		t.Errorf("icache hits = %d, want >= 290", hits)
	}
	if misses > 10 {
		t.Errorf("icache misses = %d, want <= 10", misses)
	}
}

// TestICacheGuestSMCInvalidation: a guest store that overwrites an
// already-decoded-and-cached instruction must be observed on the next
// execution of that instruction. The loop body runs once with imm 1 (and is
// cached), then the guest rewrites the imm32 to 100 and loops back through
// the same EIP; a stale cached decode would keep adding 1.
func TestICacheGuestSMCInvalidation(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 0
	mov ecx, 0
loop:
patchme:
	add eax, 1
	inc ecx
	cmp ecx, 1
	jne done_check
	mov edx, 100
	mov [patchme+2], edx
	jmp loop
done_check:
	cmp ecx, 4
	jne loop
	hlt
`)
	mustHalt(t, ip, 1000)
	// Iteration 1 adds 1, iterations 2-4 add the patched 100.
	if got := ip.CPU.Regs[guest.EAX]; got != 301 {
		t.Errorf("eax = %d, want 301 (stale decode served after guest SMC?)", got)
	}
}

// TestICacheSMCObservesNewImmediate runs a two-instruction program, then
// overwrites the cached instruction's immediate with a direct bus write
// (modeling an SMC store or DMA into code), re-enters at the same EIP, and
// asserts the interpreter executes the NEW bytes rather than the stale
// cached decode.
func TestICacheSMCObservesNewImmediate(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov eax, 111
	hlt
`)
	mustHalt(t, ip, 10)
	if got := ip.CPU.Regs[guest.EAX]; got != 111 {
		t.Fatalf("first run: eax = %d, want 111", got)
	}

	// The decode of 0x1000 is now cached. Locate its imm32 and patch it.
	var buf [16]byte
	n := plat.Bus.FetchBytes(0x1000, buf[:])
	in, err := guest.Decode(buf[:n], 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if in.ImmOff == 0 {
		t.Fatal("mov eax, imm has no locatable imm32")
	}
	plat.Bus.Write32(0x1000+in.ImmOff, 222)

	ip.CPU = NewCPU(0x1000)
	ip.CPU.Regs[guest.ESP] = 0xF0000
	mustHalt(t, ip, 10)
	if got := ip.CPU.Regs[guest.EAX]; got != 222 {
		t.Errorf("after SMC patch: eax = %d, want 222 (stale decode served?)", got)
	}
}

// TestICacheDMAInvalidation overwrites cached code wholesale via DMAWrite —
// the device path that bypasses CPU stores — and checks the new program runs.
func TestICacheDMAInvalidation(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov eax, 1
	hlt
`)
	mustHalt(t, ip, 10)

	p2, err := asm.Assemble(`
.org 0x1000
	mov eax, 42
	hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	plat.Bus.DMAWrite(p2.Org, p2.Image)

	ip.CPU = NewCPU(0x1000)
	ip.CPU.Regs[guest.ESP] = 0xF0000
	mustHalt(t, ip, 10)
	if got := ip.CPU.Regs[guest.EAX]; got != 42 {
		t.Errorf("after DMA overwrite: eax = %d, want 42", got)
	}
}
