// Package interp is the g86 interpreter: the precise, slow execution engine
// at the heart of the CMS recovery story. It decodes and executes one guest
// instruction at a time with exact architectural semantics — every fault is
// detected before any side effect, every I/O lands in program order, and
// interrupts are taken only at instruction boundaries — while optionally
// collecting the execution profiles (block heads, branch bias, MMIO-touching
// instructions) that drive the translator.
//
// After a translation rolls back, CMS re-executes the region here; the final
// states must agree bit-for-bit, which is guaranteed by sharing the flag
// helpers in package guest with the VLIW host.
package interp

import (
	"fmt"

	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/mem"
)

// CPU is the architectural guest state.
type CPU struct {
	Regs   [guest.NumRegs]uint32
	EIP    uint32
	Flags  uint32
	Halted bool
}

// NewCPU returns a reset CPU: flags hold only the always-set bit and IF.
func NewCPU(entry uint32) CPU {
	return CPU{EIP: entry, Flags: guest.FlagsAlways | guest.FlagIF}
}

// StopKind says why a Step did not simply retire an instruction.
type StopKind uint8

const (
	// StopNone: the instruction retired normally (or an exception was
	// delivered and execution continues in the handler).
	StopNone StopKind = iota
	// StopHalt: the guest executed HLT.
	StopHalt
	// StopProt: a store hit CMS-protected memory. No guest state changed;
	// the caller must resolve the protection (invalidate translations) and
	// re-execute the same instruction.
	StopProt
	// StopError: unrecoverable — an exception had no handler (IVT entry 0)
	// or delivery itself faulted. The machine is halted.
	StopError
)

// Result reports the outcome of one Step.
type Result struct {
	Stop StopKind
	// Prot is set for StopProt.
	Prot *mem.ProtHit
	// Err is set for StopError.
	Err error
	// Retired reports whether a guest instruction actually retired.
	Retired bool
	// IRQ reports that this step delivered an external interrupt instead of
	// executing an instruction.
	IRQ bool
	// Vector is the exception/interrupt vector delivered this step, or -1.
	Vector int
	// Cost is the molecule charge for this step under the interpreter cost
	// model (see cost.go).
	Cost uint64
}

// BranchStat is the interpreter's branch profile for one conditional branch.
type BranchStat struct {
	Taken    uint64
	NotTaken uint64
}

// Bias returns the probability the branch is taken.
func (b BranchStat) Bias() float64 {
	n := b.Taken + b.NotTaken
	if n == 0 {
		return 0.5
	}
	return float64(b.Taken) / float64(n)
}

// Profile accumulates the execution statistics the paper's interpreter
// gathers: execution frequency of code section heads, branch directions,
// and which instructions performed memory-mapped I/O.
type Profile struct {
	Heads     map[uint32]uint64
	Branches  map[uint32]*BranchStat
	MMIOInsns map[uint32]bool
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Heads:     make(map[uint32]uint64),
		Branches:  make(map[uint32]*BranchStat),
		MMIOInsns: make(map[uint32]bool),
	}
}

func (p *Profile) branch(addr uint32, taken bool) {
	s := p.Branches[addr]
	if s == nil {
		s = &BranchStat{}
		p.Branches[addr] = s
	}
	if taken {
		s.Taken++
	} else {
		s.NotTaken++
	}
}

// Interp executes g86 code on a bus.
type Interp struct {
	CPU CPU
	Bus *mem.Bus

	// IRQ, if non-nil, is polled at instruction boundaries.
	IRQ *dev.IRQController
	// Timer, if non-nil, advances one tick per retired instruction.
	Timer *dev.Timer
	// Prof, if non-nil, collects execution profiles.
	Prof *Profile
	// CheckProt enables CMS write-protection checks (on under CMS, off for
	// standalone reference runs).
	CheckProt bool

	// Retired counts retired guest instructions.
	Retired uint64
	// Delivered counts delivered interrupts and exceptions.
	Delivered uint64

	fetchBuf [maxInsnLen]byte
	ic       icache
}

// ICacheStats reports the decoded-instruction cache's lookup counters.
func (ip *Interp) ICacheStats() (hits, misses uint64) {
	return ip.ic.Hits, ip.ic.Misses
}

// maxInsnLen bounds the encoded length of any g86 instruction.
const maxInsnLen = 16

// New returns an interpreter over the bus with a reset CPU at entry 0.
func New(bus *mem.Bus) *Interp {
	return &Interp{CPU: NewCPU(0), Bus: bus}
}

// guestFault is an internal signal that an instruction faulted before any
// side effect; exec returns it and Step delivers the exception.
type guestFault struct {
	vec int
}

// protStop signals a CMS protection hit.
type protStop struct {
	hit *mem.ProtHit
}

// intRequest signals that the instruction was a software INT whose delivery
// Step must sequence.
type intRequest struct {
	vec int
}

// Step executes one instruction boundary: delivers a pending interrupt if
// IF allows, else decodes and executes one instruction, delivering any
// exception it raises.
func (ip *Interp) Step() Result {
	if ip.CPU.Halted {
		return Result{Stop: StopHalt, Vector: -1}
	}
	// Interrupt window: boundaries only, IF set.
	if ip.IRQ != nil && ip.CPU.Flags&guest.FlagIF != 0 {
		if line, ok := ip.IRQ.Pending(); ok {
			vec := guest.VecIRQBase + line
			res := ip.deliver(vec, ip.CPU.EIP)
			if res.Stop == StopNone {
				ip.IRQ.Ack(line)
				res.IRQ = true
				res.Vector = vec
				ip.Delivered++
				res.Cost = DeliveryCost
			}
			return res
		}
	}

	in, ff := ip.fetchDecode()
	if ff != nil {
		return ip.deliverAndCount(ff.vec, ip.CPU.EIP)
	}

	switch out := ip.exec(in).(type) {
	case nil:
		ip.retire()
		return Result{Retired: true, Vector: -1, Cost: Cost(in)}
	case guestFault:
		res := ip.deliverAndCount(out.vec, in.Addr)
		res.Cost = Cost(in) + DeliveryCost
		return res
	case protStop:
		return Result{Stop: StopProt, Prot: out.hit, Vector: -1, Cost: costBase}
	case intRequest:
		res := ip.deliverAndCount(out.vec, in.Next())
		if res.Stop != StopNone {
			return res
		}
		ip.retire()
		res.Retired = true
		res.Cost = Cost(in) + DeliveryCost
		return res
	default:
		panic("interp: impossible exec outcome")
	}
}

func (ip *Interp) retire() {
	ip.Retired++
	if ip.Timer != nil {
		ip.Timer.Advance(1)
	}
}

func (ip *Interp) deliverAndCount(vec int, retEIP uint32) Result {
	res := ip.deliver(vec, retEIP)
	if res.Stop == StopNone {
		res.Vector = vec
		ip.Delivered++
	}
	return res
}

// deliver pushes Flags and retEIP, clears IF, and vectors through the IVT.
// It mutates no state on failure.
func (ip *Interp) deliver(vec int, retEIP uint32) Result {
	entry := guest.IVTBase + 4*uint32(vec)
	if f := ip.Bus.CheckRead(entry, 4); f != nil {
		ip.CPU.Halted = true
		return Result{Stop: StopError, Err: fmt.Errorf("interp: IVT unreadable for vector %d: %w", vec, f), Vector: vec}
	}
	handler := ip.Bus.Read32(entry)
	if handler == 0 {
		ip.CPU.Halted = true
		return Result{Stop: StopError, Err: fmt.Errorf("interp: unhandled exception vector %d at eip %#x", vec, retEIP), Vector: vec}
	}
	sp := ip.CPU.Regs[guest.ESP]
	a1, a2 := sp-4, sp-8
	for _, a := range []uint32{a1, a2} {
		if f := ip.Bus.CheckWrite(a, 4); f != nil {
			ip.CPU.Halted = true
			return Result{Stop: StopError, Err: fmt.Errorf("interp: double fault: stack push failed delivering vector %d: %w", vec, f), Vector: vec}
		}
	}
	if ip.CheckProt {
		if hit := ip.Bus.CheckProt(a2, 8, mem.SrcCPU); hit != nil {
			// Deliverable only after the caller resolves protection; nothing
			// has changed, so the trigger re-occurs on re-execution.
			return Result{Stop: StopProt, Prot: hit, Vector: -1}
		}
	}
	ip.Bus.Write32(a1, ip.CPU.Flags)
	ip.Bus.Write32(a2, retEIP)
	ip.CPU.Regs[guest.ESP] = sp - 8
	ip.CPU.Flags &^= guest.FlagIF
	ip.CPU.EIP = handler
	if ip.Prof != nil {
		ip.Prof.Heads[handler]++
	}
	return Result{Vector: vec}
}

// fetchDecode fetches and decodes the instruction at EIP, consulting the
// decoded-instruction cache first. Cache validity is tied to the bus's
// per-page modification generations, so any write to the underlying bytes
// (SMC store, DMA, raw load) or mapping change forces a fresh decode.
func (ip *Interp) fetchDecode() (guest.Insn, *guestFault) {
	if in, ok := ip.ic.lookup(ip.Bus, ip.CPU.EIP); ok {
		return in, nil
	}
	n := ip.Bus.FetchBytes(ip.CPU.EIP, ip.fetchBuf[:])
	if n == 0 {
		return guest.Insn{}, &guestFault{vec: guest.VecNP}
	}
	in, err := guest.Decode(ip.fetchBuf[:n], ip.CPU.EIP)
	if err != nil {
		// Distinguish "runs off a mapped page" (#NP) from garbage (#UD).
		op := guest.Op(ip.fetchBuf[0])
		if n < maxInsnLen && op.Valid() && guest.EncodedLen(op) > uint32(n) {
			return guest.Insn{}, &guestFault{vec: guest.VecNP}
		}
		return guest.Insn{}, &guestFault{vec: guest.VecUD}
	}
	ip.ic.fill(ip.Bus, in)
	return in, nil
}

// Run steps until a stop condition or the step limit. It returns the last
// Result and the number of steps taken.
func (ip *Interp) Run(maxSteps uint64) (Result, uint64) {
	var steps uint64
	for steps < maxSteps {
		res := ip.Step()
		steps++
		if res.Stop != StopNone {
			return res, steps
		}
	}
	return Result{}, steps
}

// --- instruction execution ---------------------------------------------------

// load32 checks and performs a 32-bit load, recording MMIO profile data.
func (ip *Interp) load32(in guest.Insn, addr uint32) (uint32, any) {
	if f := ip.Bus.CheckRead(addr, 4); f != nil {
		return 0, guestFault{vec: f.Vector}
	}
	ip.noteMMIO(in, addr)
	return ip.Bus.Read32(addr), nil
}

func (ip *Interp) load8(in guest.Insn, addr uint32) (uint32, any) {
	if f := ip.Bus.CheckRead(addr, 1); f != nil {
		return 0, guestFault{vec: f.Vector}
	}
	ip.noteMMIO(in, addr)
	return uint32(ip.Bus.Read8(addr)), nil
}

// checkStore verifies a store of size bytes is permitted (guest attributes
// and CMS protection), without performing it.
func (ip *Interp) checkStore(in guest.Insn, addr uint32, size int) any {
	if f := ip.Bus.CheckWrite(addr, size); f != nil {
		return guestFault{vec: f.Vector}
	}
	if ip.CheckProt {
		if hit := ip.Bus.CheckProt(addr, size, mem.SrcCPU); hit != nil {
			return protStop{hit: hit}
		}
	}
	ip.noteMMIO(in, addr)
	return nil
}

func (ip *Interp) noteMMIO(in guest.Insn, addr uint32) {
	if ip.Prof != nil && ip.Bus.IsMMIO(addr) {
		ip.Prof.MMIOInsns[in.Addr] = true
	}
}

func (ip *Interp) jumpTo(target uint32) {
	ip.CPU.EIP = target
	if ip.Prof != nil {
		ip.Prof.Heads[target]++
	}
}

// exec executes one decoded instruction. It returns nil on normal retire,
// guestFault to raise an exception (no state has changed), or protStop.
func (ip *Interp) exec(in guest.Insn) any {
	c := &ip.CPU
	next := in.Next()
	ea := func() uint32 { return in.Mem.EffectiveAddr(&c.Regs) }

	switch in.Op {
	case guest.OpNOP:
	case guest.OpHLT:
		c.EIP = next
		c.Halted = true
		return nil
	case guest.OpCLI:
		c.Flags &^= guest.FlagIF
	case guest.OpSTI:
		c.Flags |= guest.FlagIF

	case guest.OpMOVrr:
		c.Regs[in.Dst] = c.Regs[in.Src]
	case guest.OpMOVri:
		c.Regs[in.Dst] = in.Imm
	case guest.OpMOVrm:
		v, f := ip.load32(in, ea())
		if f != nil {
			return f
		}
		c.Regs[in.Dst] = v
	case guest.OpMOVmr:
		a := ea()
		if f := ip.checkStore(in, a, 4); f != nil {
			return f
		}
		ip.Bus.Write32(a, c.Regs[in.Src])
	case guest.OpMOVmi:
		a := ea()
		if f := ip.checkStore(in, a, 4); f != nil {
			return f
		}
		ip.Bus.Write32(a, in.Imm)
	case guest.OpMOVBrm:
		v, f := ip.load8(in, ea())
		if f != nil {
			return f
		}
		c.Regs[in.Dst] = v
	case guest.OpMOVBmr:
		a := ea()
		if f := ip.checkStore(in, a, 1); f != nil {
			return f
		}
		ip.Bus.Write8(a, uint8(c.Regs[in.Src]))
	case guest.OpLEA:
		c.Regs[in.Dst] = ea()
	case guest.OpMOVSXB:
		v, f := ip.load8(in, ea())
		if f != nil {
			return f
		}
		c.Regs[in.Dst] = uint32(int32(int8(v)))

	case guest.OpADDrr, guest.OpADDri, guest.OpADDrm, guest.OpADDmr,
		guest.OpSUBrr, guest.OpSUBri, guest.OpSUBrm, guest.OpSUBmr,
		guest.OpANDrr, guest.OpANDri, guest.OpANDrm, guest.OpANDmr,
		guest.OpORrr, guest.OpORri, guest.OpORrm, guest.OpORmr,
		guest.OpXORrr, guest.OpXORri, guest.OpXORrm, guest.OpXORmr:
		if f := ip.execALU(in); f != nil {
			return f
		}

	case guest.OpCMPrr:
		_, c.Flags = guest.FlagsSub(c.Flags, c.Regs[in.Dst], c.Regs[in.Src])
	case guest.OpCMPri:
		_, c.Flags = guest.FlagsSub(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpCMPrm:
		v, f := ip.load32(in, ea())
		if f != nil {
			return f
		}
		_, c.Flags = guest.FlagsSub(c.Flags, c.Regs[in.Dst], v)
	case guest.OpCMPmi:
		v, f := ip.load32(in, ea())
		if f != nil {
			return f
		}
		_, c.Flags = guest.FlagsSub(c.Flags, v, in.Imm)
	case guest.OpTESTrr:
		c.Flags = guest.FlagsLogic(c.Flags, c.Regs[in.Dst]&c.Regs[in.Src])
	case guest.OpTESTri:
		c.Flags = guest.FlagsLogic(c.Flags, c.Regs[in.Dst]&in.Imm)
	case guest.OpADCrr:
		c.Regs[in.Dst], c.Flags = guest.FlagsAdc(c.Flags, c.Regs[in.Dst], c.Regs[in.Src])
	case guest.OpADCri:
		c.Regs[in.Dst], c.Flags = guest.FlagsAdc(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpSBBrr:
		c.Regs[in.Dst], c.Flags = guest.FlagsSbb(c.Flags, c.Regs[in.Dst], c.Regs[in.Src])
	case guest.OpSBBri:
		c.Regs[in.Dst], c.Flags = guest.FlagsSbb(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpXCHG:
		c.Regs[in.Dst], c.Regs[in.Src] = c.Regs[in.Src], c.Regs[in.Dst]
	case guest.OpCDQ:
		c.Regs[guest.EDX] = uint32(int32(c.Regs[guest.EAX]) >> 31)

	case guest.OpINC:
		c.Regs[in.Dst], c.Flags = guest.FlagsInc(c.Flags, c.Regs[in.Dst])
	case guest.OpDEC:
		c.Regs[in.Dst], c.Flags = guest.FlagsDec(c.Flags, c.Regs[in.Dst])
	case guest.OpNEG:
		c.Regs[in.Dst], c.Flags = guest.FlagsNeg(c.Flags, c.Regs[in.Dst])
	case guest.OpNOT:
		c.Regs[in.Dst] = ^c.Regs[in.Dst]

	case guest.OpSHLri:
		c.Regs[in.Dst], c.Flags = guest.FlagsShl(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpSHRri:
		c.Regs[in.Dst], c.Flags = guest.FlagsShr(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpSARri:
		c.Regs[in.Dst], c.Flags = guest.FlagsSar(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpSHLrc:
		c.Regs[in.Dst], c.Flags = guest.FlagsShl(c.Flags, c.Regs[in.Dst], c.Regs[guest.ECX])
	case guest.OpSHRrc:
		c.Regs[in.Dst], c.Flags = guest.FlagsShr(c.Flags, c.Regs[in.Dst], c.Regs[guest.ECX])
	case guest.OpSARrc:
		c.Regs[in.Dst], c.Flags = guest.FlagsSar(c.Flags, c.Regs[in.Dst], c.Regs[guest.ECX])

	case guest.OpIMULrr:
		c.Regs[in.Dst], c.Flags = guest.FlagsImul(c.Flags, c.Regs[in.Dst], c.Regs[in.Src])
	case guest.OpIMULri:
		c.Regs[in.Dst], c.Flags = guest.FlagsImul(c.Flags, c.Regs[in.Dst], in.Imm)
	case guest.OpMUL:
		var lo, hi uint32
		lo, hi, c.Flags = guest.FlagsMul(c.Flags, c.Regs[guest.EAX], c.Regs[in.Dst])
		c.Regs[guest.EAX], c.Regs[guest.EDX] = lo, hi
	case guest.OpDIV:
		q, r, ok := guest.DivU(c.Regs[guest.EDX], c.Regs[guest.EAX], c.Regs[in.Dst])
		if !ok {
			return guestFault{vec: guest.VecDE}
		}
		c.Regs[guest.EAX], c.Regs[guest.EDX] = q, r
	case guest.OpIDIV:
		q, r, ok := guest.DivS(c.Regs[guest.EDX], c.Regs[guest.EAX], c.Regs[in.Dst])
		if !ok {
			return guestFault{vec: guest.VecDE}
		}
		c.Regs[guest.EAX], c.Regs[guest.EDX] = q, r

	case guest.OpPUSHr, guest.OpPUSHi, guest.OpPUSHF:
		var v uint32
		switch in.Op {
		case guest.OpPUSHr:
			v = c.Regs[in.Dst]
		case guest.OpPUSHi:
			v = in.Imm
		default:
			v = c.Flags
		}
		a := c.Regs[guest.ESP] - 4
		if f := ip.checkStore(in, a, 4); f != nil {
			return f
		}
		ip.Bus.Write32(a, v)
		c.Regs[guest.ESP] = a
	case guest.OpPOPr:
		v, f := ip.load32(in, c.Regs[guest.ESP])
		if f != nil {
			return f
		}
		c.Regs[guest.ESP] += 4
		c.Regs[in.Dst] = v
	case guest.OpPOPF:
		v, f := ip.load32(in, c.Regs[guest.ESP])
		if f != nil {
			return f
		}
		c.Regs[guest.ESP] += 4
		c.Flags = v&(guest.ArithFlags|guest.FlagIF) | guest.FlagsAlways

	case guest.OpJMPrel:
		ip.jumpTo(in.BranchTarget())
		return nil
	case guest.OpJMPr:
		ip.jumpTo(c.Regs[in.Dst])
		return nil
	case guest.OpJMPm:
		v, f := ip.load32(in, ea())
		if f != nil {
			return f
		}
		ip.jumpTo(v)
		return nil
	case guest.OpCALLrel, guest.OpCALLr:
		a := c.Regs[guest.ESP] - 4
		if f := ip.checkStore(in, a, 4); f != nil {
			return f
		}
		target := in.BranchTarget()
		if in.Op == guest.OpCALLr {
			target = c.Regs[in.Dst]
		}
		ip.Bus.Write32(a, next)
		c.Regs[guest.ESP] = a
		ip.jumpTo(target)
		return nil
	case guest.OpRET:
		v, f := ip.load32(in, c.Regs[guest.ESP])
		if f != nil {
			return f
		}
		c.Regs[guest.ESP] += 4
		ip.jumpTo(v)
		return nil

	case guest.OpIN:
		c.Regs[in.Dst] = ip.Bus.PortRead(uint16(in.Imm))
		if ip.Prof != nil {
			ip.Prof.MMIOInsns[in.Addr] = true
		}
	case guest.OpOUT:
		ip.Bus.PortWrite(uint16(in.Imm), c.Regs[in.Src])
		if ip.Prof != nil {
			ip.Prof.MMIOInsns[in.Addr] = true
		}
	case guest.OpINT:
		// Software interrupt: delivery is sequenced by Step so that stop
		// conditions propagate and the retire is counted exactly once.
		return intRequest{vec: int(in.Imm)}
	case guest.OpIRET:
		sp := c.Regs[guest.ESP]
		eip, f := ip.load32(in, sp)
		if f != nil {
			return f
		}
		fl, f2 := ip.load32(in, sp+4)
		if f2 != nil {
			return f2
		}
		c.Regs[guest.ESP] = sp + 8
		c.Flags = fl&(guest.ArithFlags|guest.FlagIF) | guest.FlagsAlways
		ip.jumpTo(eip)
		return nil

	default:
		cond, ok := in.Op.IsJcc()
		if !ok {
			return guestFault{vec: guest.VecUD}
		}
		taken := cond.Eval(c.Flags)
		if ip.Prof != nil {
			ip.Prof.branch(in.Addr, taken)
		}
		if taken {
			ip.jumpTo(in.BranchTarget())
			return nil
		}
	}
	c.EIP = next
	return nil
}

// execALU handles the two-operand ALU family (add/sub/and/or/xor in all
// addressing forms), including the read-modify-write forms whose store is
// checked before any state changes.
func (ip *Interp) execALU(in guest.Insn) any {
	c := &ip.CPU
	kind := (in.Op - guest.OpADDrr) / 4
	form := (in.Op - guest.OpADDrr) % 4

	apply := func(a, b uint32) uint32 {
		var res uint32
		switch kind {
		case 0:
			res, c.Flags = guest.FlagsAdd(c.Flags, a, b)
		case 1:
			res, c.Flags = guest.FlagsSub(c.Flags, a, b)
		case 2:
			res = a & b
			c.Flags = guest.FlagsLogic(c.Flags, res)
		case 3:
			res = a | b
			c.Flags = guest.FlagsLogic(c.Flags, res)
		case 4:
			res = a ^ b
			c.Flags = guest.FlagsLogic(c.Flags, res)
		}
		return res
	}

	switch form {
	case 0: // rr
		c.Regs[in.Dst] = apply(c.Regs[in.Dst], c.Regs[in.Src])
	case 1: // ri
		c.Regs[in.Dst] = apply(c.Regs[in.Dst], in.Imm)
	case 2: // rm
		v, f := ip.load32(in, in.Mem.EffectiveAddr(&c.Regs))
		if f != nil {
			return f
		}
		c.Regs[in.Dst] = apply(c.Regs[in.Dst], v)
	case 3: // mr: read-modify-write
		a := in.Mem.EffectiveAddr(&c.Regs)
		// Check the write before performing the read so a protection stop
		// leaves no side effects (the read may be MMIO).
		if f := ip.checkStore(in, a, 4); f != nil {
			return f
		}
		v, f := ip.load32(in, a)
		if f != nil {
			return f
		}
		ip.Bus.Write32(a, apply(v, c.Regs[in.Src]))
	}
	return nil
}
