package interp

import (
	"strings"
	"testing"

	"cms/internal/asm"
	"cms/internal/dev"
	"cms/internal/guest"
	"cms/internal/mem"
)

// load assembles src onto a fresh platform and returns an interpreter
// positioned at the entry point with a usable stack.
func load(t *testing.T, src string) (*Interp, *dev.Platform) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	plat := dev.NewPlatform(1<<20, nil)
	plat.Bus.WriteRaw(p.Org, p.Image)
	ip := New(plat.Bus)
	ip.CPU = NewCPU(p.Entry())
	ip.CPU.Regs[guest.ESP] = 0xF0000
	ip.IRQ = plat.IRQ
	ip.Timer = plat.Timer
	return ip, plat
}

func mustHalt(t *testing.T, ip *Interp, maxSteps uint64) {
	t.Helper()
	res, steps := ip.Run(maxSteps)
	if res.Stop != StopHalt {
		t.Fatalf("run stopped with %v (err %v) after %d steps, want halt", res.Stop, res.Err, steps)
	}
}

func TestLoopSum(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 0
	mov ecx, 10
loop:
	add eax, ecx
	dec ecx
	jne loop
	hlt
`)
	mustHalt(t, ip, 1000)
	if got := ip.CPU.Regs[guest.EAX]; got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	// 2 setup + 10 iterations * 3 + hlt = 33 retired.
	if ip.Retired != 33 {
		t.Errorf("retired = %d, want 33", ip.Retired)
	}
}

func TestMemoryAndAddressing(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov ebx, 0x8000
	mov esi, 2
	mov [ebx], 0x11223344
	mov eax, [ebx]
	add [ebx], eax            ; rmw: 0x22446688
	mov edx, [ebx]
	movb [ebx+esi*2+1], edx   ; byte store of 0x88 at 0x8005
	movb edi, [ebx+5]
	lea ecx, [ebx+esi*8+0x10]
	hlt
`)
	mustHalt(t, ip, 100)
	c := ip.CPU
	if c.Regs[guest.EAX] != 0x11223344 {
		t.Errorf("eax = %#x", c.Regs[guest.EAX])
	}
	if c.Regs[guest.EDX] != 0x22446688 {
		t.Errorf("edx = %#x", c.Regs[guest.EDX])
	}
	if c.Regs[guest.EDI] != 0x88 {
		t.Errorf("edi = %#x", c.Regs[guest.EDI])
	}
	if c.Regs[guest.ECX] != 0x8000+16+0x10 {
		t.Errorf("lea = %#x", c.Regs[guest.ECX])
	}
}

func TestStackCallRet(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
_start:
	mov eax, 1
	push eax
	mov eax, 2
	call double
	pop ecx
	hlt
double:
	add eax, eax
	ret
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EAX] != 4 {
		t.Errorf("eax = %d, want 4", ip.CPU.Regs[guest.EAX])
	}
	if ip.CPU.Regs[guest.ECX] != 1 {
		t.Errorf("ecx = %d, want 1 (stack balance)", ip.CPU.Regs[guest.ECX])
	}
	if ip.CPU.Regs[guest.ESP] != 0xF0000 {
		t.Errorf("esp = %#x, want 0xF0000", ip.CPU.Regs[guest.ESP])
	}
}

func TestMulDiv(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 100000
	mov ebx, 100000
	mul ebx            ; edx:eax = 10^10
	mov ecx, 1000000
	div ecx            ; eax = 10000, edx = 0
	mov esi, eax
	mov eax, 7
	imul eax, -3
	hlt
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.ESI] != 10000 {
		t.Errorf("div result = %d", ip.CPU.Regs[guest.ESI])
	}
	if int32(ip.CPU.Regs[guest.EAX]) != -21 {
		t.Errorf("imul = %d", int32(ip.CPU.Regs[guest.EAX]))
	}
}

func TestShiftByCL(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 1
	mov ecx, 5
	shl eax, cl
	sar eax, 2
	hlt
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EAX] != 8 {
		t.Errorf("eax = %d, want 8", ip.CPU.Regs[guest.EAX])
	}
}

func TestDivideFaultHandled(t *testing.T) {
	// Vector 0 handler replaces the divisor and IRETs to retry.
	ip, _ := load(t, `
.org 0x1000
_start:
	mov [0x100], handler     ; IVT[0] (#DE)
	mov eax, 42
	mov edx, 0
	mov ebx, 0
	div ebx
	hlt
handler:
	mov ebx, 7
	iret
`)
	mustHalt(t, ip, 1000)
	if ip.CPU.Regs[guest.EAX] != 6 {
		t.Errorf("eax = %d, want 6 (42/7 after handler fix)", ip.CPU.Regs[guest.EAX])
	}
	if ip.Delivered != 1 {
		t.Errorf("delivered = %d", ip.Delivered)
	}
}

func TestUnhandledFaultStops(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 0
	div eax
`)
	res, _ := ip.Run(100)
	if res.Stop != StopError || res.Err == nil {
		t.Fatalf("res = %+v, want StopError", res)
	}
	if res.Vector != guest.VecDE {
		t.Errorf("vector = %d, want #DE", res.Vector)
	}
	if !ip.CPU.Halted {
		t.Error("machine must halt after unhandled fault")
	}
}

func TestInvalidOpcode(t *testing.T) {
	ip, plat := load(t, ".org 0x1000\n nop\n")
	plat.Bus.WriteRaw(0x1001, []byte{0xEE}) // unassigned opcode
	res, _ := ip.Run(100)
	if res.Stop != StopError || res.Vector != guest.VecUD {
		t.Fatalf("res = %+v, want unhandled #UD", res)
	}
}

func TestPageFaultOnReadOnlyWrite(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov [0x138], handler       ; IVT[#PF] (0x100 + 4*14)
	mov eax, 0xabcd
	mov [0x7000], eax          ; page 7 is RO: faults
	hlt
handler:
	mov edi, 1
	mov esp, 0xe0000           ; discard frame
	hlt
`)
	plat.Bus.SetAttr(7, mem.AttrPresent) // read-only
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EDI] != 1 {
		t.Error("#PF handler did not run")
	}
	if plat.Bus.Read32(0x7000) == 0xabcd {
		t.Error("faulting store must not land")
	}
}

func TestFetchFromUnmappedPage(t *testing.T) {
	ip, plat := load(t, ".org 0x1000\n jmp far\nfar:\n nop\n")
	// Jump somewhere unmapped instead.
	ip.CPU.EIP = 0x50000
	plat.Bus.SetAttr(0x50, 0)
	res, _ := ip.Run(10)
	if res.Stop != StopError || res.Vector != guest.VecNP {
		t.Fatalf("res = %+v, want unhandled #NP", res)
	}
}

func TestInstructionStraddlingUnmappedPage(t *testing.T) {
	ip, plat := load(t, ".org 0x1000\n nop\n")
	// Place a MOVri so its immediate runs off the end of a mapped page.
	plat.Bus.SetAttr(3, 0) // page 3 unmapped
	img := guest.Encode(nil, guest.Insn{Op: guest.OpMOVri, Dst: guest.EAX, Imm: 1})
	plat.Bus.WriteRaw(3*mem.PageSize-2, img[:2]) // opcode+reg at page 2 edge
	ip.CPU.EIP = 3*mem.PageSize - 2
	res, _ := ip.Run(10)
	if res.Stop != StopError || res.Vector != guest.VecNP {
		t.Fatalf("res = %+v, want #NP for straddling fetch", res)
	}
}

func TestSoftwareInterrupt(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
_start:
	mov [0x184], syscall       ; IVT[33] (0x100 + 4*33)
	mov eax, 5
	int 33
	hlt
syscall:
	add eax, 100
	iret
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EAX] != 105 {
		t.Errorf("eax = %d, want 105", ip.CPU.Regs[guest.EAX])
	}
	_ = plat
	// INT retires exactly once; IRET and handler body add their own.
	if ip.Delivered != 1 {
		t.Errorf("delivered = %d", ip.Delivered)
	}
}

func TestPortConsoleOutput(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov eax, 'H'
	out 0x3f8, eax
	mov eax, 'i'
	out 0x3f8, eax
	in ebx, 0x3f9
	hlt
`)
	mustHalt(t, ip, 100)
	if got := plat.Console.OutputString(); got != "Hi" {
		t.Errorf("console = %q", got)
	}
	if ip.CPU.Regs[guest.EBX] != 1 {
		t.Error("status port must read ready")
	}
}

func TestMMIOTextBuffer(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov eax, 0x41
	mov ebx, 0xB8000
	movb [ebx], eax
	mov [ebx+4], 0x42434445
	mov ecx, [ebx+4]
	hlt
`)
	mustHalt(t, ip, 100)
	txt := plat.Console.Text()
	if txt[0] != 0x41 || txt[4] != 0x45 {
		t.Errorf("text buffer: %v", txt[:8])
	}
	if ip.CPU.Regs[guest.ECX] != 0x42434445 {
		t.Errorf("MMIO readback = %#x", ip.CPU.Regs[guest.ECX])
	}
}

func TestTimerInterrupt(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
_start:
	mov [0x180], tick          ; IVT[timer] (0x100 + 4*32)
	mov eax, 50
	out 0x40, eax              ; period 50
	mov ecx, 0
	mov ebx, 0
busy:
	inc ebx
	cmp ecx, 3
	jne busy
	mov eax, 0
	out 0x40, eax              ; timer off
	hlt
tick:
	inc ecx
	iret
`)
	mustHalt(t, ip, 10000)
	if ip.CPU.Regs[guest.ECX] != 3 {
		t.Errorf("tick count = %d, want 3", ip.CPU.Regs[guest.ECX])
	}
	if ip.Delivered != 3 {
		t.Errorf("delivered = %d, want 3", ip.Delivered)
	}
}

func TestCLIMasksInterrupts(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
_start:
	mov [0x180], tick          ; IVT[timer]
	cli
	mov eax, 10
	out 0x40, eax
	mov ebx, 0
	mov ecx, 0
spin:
	inc ebx
	cmp ebx, 100
	jne spin
	sti                        ; one pending IRQ delivers here
	nop
	nop
	mov eax, 0
	out 0x40, eax
	hlt
tick:
	inc ecx
	mov eax, 0
	out 0x40, eax              ; stop further ticks
	iret
`)
	mustHalt(t, ip, 10000)
	if ip.CPU.Regs[guest.ECX] != 1 {
		t.Errorf("ticks under cli = %d, want exactly 1 after sti", ip.CPU.Regs[guest.ECX])
	}
}

func TestProtStopLeavesStateUnchanged(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	mov eax, 0x42
	mov [0x5000], eax
	hlt
`)
	ip.CheckProt = true
	plat.Bus.Protect(5)
	var res Result
	for i := 0; i < 10; i++ {
		res = ip.Step()
		if res.Stop == StopProt {
			break
		}
	}
	if res.Stop != StopProt || res.Prot == nil || res.Prot.Addr != 0x5000 {
		t.Fatalf("res = %+v, want prot stop at 0x5000", res)
	}
	eipBefore := ip.CPU.EIP
	retiredBefore := ip.Retired
	// Resolve and re-execute: the same instruction must now complete.
	plat.Bus.Unprotect(5)
	res = ip.Step()
	if !res.Retired {
		t.Fatalf("retry: %+v", res)
	}
	if ip.CPU.EIP == eipBefore || ip.Retired != retiredBefore+1 {
		t.Error("retry must advance exactly one instruction")
	}
	if plat.Bus.Read32(0x5000) != 0x42 {
		t.Error("store must land after unprotect")
	}
}

func TestPushToProtectedPageStops(t *testing.T) {
	ip, plat := load(t, `
.org 0x1000
	push eax
	hlt
`)
	ip.CheckProt = true
	ip.CPU.Regs[guest.ESP] = 0x6004
	plat.Bus.Protect(6)
	res := ip.Step()
	if res.Stop != StopProt {
		t.Fatalf("res = %+v", res)
	}
	if ip.CPU.Regs[guest.ESP] != 0x6004 {
		t.Error("ESP must be unchanged after prot stop")
	}
}

func TestProfileCollection(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
_start:
	mov ecx, 8
	mov ebx, 0xB8000
loop:
	mov eax, [ebx]        ; MMIO load
	dec ecx
	jne loop
	hlt
`)
	ip.Prof = NewProfile()
	mustHalt(t, ip, 1000)
	loopHead := uint32(0x1000 + 6 + 6) // after two 6-byte MOVri
	if got := ip.Prof.Heads[loopHead]; got != 7 {
		t.Errorf("loop head count = %d, want 7 (7 taken branches)", got)
	}
	var br *BranchStat
	for _, s := range ip.Prof.Branches {
		br = s
	}
	if br == nil || br.Taken != 7 || br.NotTaken != 1 {
		t.Errorf("branch stats = %+v", br)
	}
	if b := (BranchStat{Taken: 7, NotTaken: 1}); b.Bias() != 0.875 {
		t.Errorf("bias = %v", b.Bias())
	}
	found := false
	for addr := range ip.Prof.MMIOInsns {
		if addr == loopHead {
			found = true
		}
	}
	if !found {
		t.Errorf("MMIO insn not profiled: %v", ip.Prof.MMIOInsns)
	}
}

func TestPushfPopf(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, 1
	sub eax, 1        ; ZF
	pushf
	mov ebx, 5
	cmp ebx, 9        ; clears ZF, sets CF
	popf              ; restore ZF
	je good
	hlt
good:
	mov edi, 1
	hlt
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EDI] != 1 {
		t.Error("popf must restore ZF")
	}
}

func TestJccAllConditionsExecute(t *testing.T) {
	// Drive each condition through a taken and a not-taken path.
	for c := guest.Cond(0); c < 16; c++ {
		src := `
.org 0x1000
	mov eax, 1
	cmp eax, 1
	j` + c.String() + ` yes
	mov ebx, 2
	hlt
yes:
	mov ebx, 1
	hlt
`
		ip, _ := load(t, src)
		mustHalt(t, ip, 100)
		_, flags := guest.FlagsSub(0, 1, 1)
		want := uint32(2)
		if c.Eval(flags) {
			want = 1
		}
		if ip.CPU.Regs[guest.EBX] != want {
			t.Errorf("cond %v: ebx = %d, want %d", c, ip.CPU.Regs[guest.EBX], want)
		}
	}
}

func TestIndirectJumpTable(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
_start:
	mov esi, 1
	mov ebx, table
	jmp [ebx+esi*4]
a0:
	mov eax, 10
	hlt
a1:
	mov eax, 11
	hlt
table:
	.dd a0, a1
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EAX] != 11 {
		t.Errorf("jump table picked %d", ip.CPU.Regs[guest.EAX])
	}
}

func TestHaltedStepIsStable(t *testing.T) {
	ip, _ := load(t, ".org 0x1000\n hlt\n")
	mustHalt(t, ip, 10)
	res := ip.Step()
	if res.Stop != StopHalt {
		t.Error("stepping a halted CPU must report halt")
	}
}

func TestCostModel(t *testing.T) {
	movrr, _ := guest.Decode(guest.Encode(nil, guest.Insn{Op: guest.OpMOVrr}), 0)
	movrm, _ := guest.Decode(guest.Encode(nil, guest.Insn{Op: guest.OpMOVrm}), 0)
	div, _ := guest.Decode(guest.Encode(nil, guest.Insn{Op: guest.OpDIV}), 0)
	if Cost(movrm) <= Cost(movrr) {
		t.Error("memory forms must cost more")
	}
	if Cost(div) <= Cost(movrr) {
		t.Error("divide must cost more")
	}
	if Cost(movrr) < 10 {
		t.Error("base cost unreasonably low")
	}
}

func TestRunStepLimit(t *testing.T) {
	ip, _ := load(t, ".org 0x1000\nself:\n jmp self\n")
	res, steps := ip.Run(50)
	if res.Stop != StopNone || steps != 50 {
		t.Errorf("run = %+v after %d", res, steps)
	}
}

// The assembler error path: make sure load reports assembly problems.
func TestLoadRejectsBadSource(t *testing.T) {
	if _, err := asm.Assemble("bogus eax\n"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("err = %v", err)
	}
}

func TestExtendedInsns(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	; 64-bit add: (2^32-1) + 3 = 0x1_00000002 across eax:edx
	mov eax, 0xffffffff
	mov edx, 0
	mov ebx, 3
	mov ecx, 0
	add eax, ebx
	adc edx, ecx           ; edx = 1
	; xchg
	mov esi, 0x11
	mov edi, 0x22
	xchg esi, edi
	; movsx of a negative byte
	mov [0x8000], 0x80
	movsx ebp, [0x8000]
	hlt
`)
	mustHalt(t, ip, 100)
	c := ip.CPU
	if c.Regs[guest.EAX] != 2 || c.Regs[guest.EDX] != 1 {
		t.Errorf("64-bit add: eax=%#x edx=%#x", c.Regs[guest.EAX], c.Regs[guest.EDX])
	}
	if c.Regs[guest.ESI] != 0x22 || c.Regs[guest.EDI] != 0x11 {
		t.Errorf("xchg: esi=%#x edi=%#x", c.Regs[guest.ESI], c.Regs[guest.EDI])
	}
	if c.Regs[guest.EBP] != 0xFFFFFF80 {
		t.Errorf("movsx: ebp=%#x", c.Regs[guest.EBP])
	}
}

func TestCDQAndSignedDivide(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	mov eax, -100
	cdq                    ; edx = 0xffffffff
	mov ebx, 7
	idiv ebx               ; -100/7 = -14 rem -2
	hlt
`)
	mustHalt(t, ip, 100)
	if int32(ip.CPU.Regs[guest.EAX]) != -14 || int32(ip.CPU.Regs[guest.EDX]) != -2 {
		t.Errorf("idiv: q=%d r=%d", int32(ip.CPU.Regs[guest.EAX]), int32(ip.CPU.Regs[guest.EDX]))
	}
}

func TestSBBBorrowChain(t *testing.T) {
	ip, _ := load(t, `
.org 0x1000
	; 64-bit subtract: 0x1_00000000 - 1 = 0x0_FFFFFFFF
	mov eax, 0
	mov edx, 1
	mov ebx, 1
	mov ecx, 0
	sub eax, ebx
	sbb edx, ecx
	hlt
`)
	mustHalt(t, ip, 100)
	if ip.CPU.Regs[guest.EAX] != 0xFFFFFFFF || ip.CPU.Regs[guest.EDX] != 0 {
		t.Errorf("64-bit sub: eax=%#x edx=%#x", ip.CPU.Regs[guest.EAX], ip.CPU.Regs[guest.EDX])
	}
}

// Every assigned opcode must execute from a benign state without raising
// #UD — a completeness sweep that catches interpreter gaps when the ISA
// grows.
func TestEveryOpcodeExecutes(t *testing.T) {
	for op := 0; op < 256; op++ {
		gop := guest.Op(op)
		if !gop.Valid() {
			continue
		}
		if gop == guest.OpHLT || gop == guest.OpINT || gop == guest.OpIRET {
			continue // terminal / need handler scaffolding
		}
		in := guest.Insn{Op: gop, Dst: guest.EAX, Src: guest.EBX,
			Mem: guest.MemOperand{HasBase: true, Base: guest.EBP}}
		switch gop.Format() {
		case guest.FmtRel:
			in.Imm = 0 // branch to next
		case guest.FmtRPort, guest.FmtPortR:
			in.Imm = 0x3F8
		default:
			in.Imm = 4
		}
		plat := dev.NewPlatform(1<<20, nil)
		code := guest.Encode(nil, in)
		plat.Bus.WriteRaw(0x1000, code)
		ip := New(plat.Bus)
		ip.CPU = NewCPU(0x1000)
		ip.CPU.Regs[guest.ESP] = 0x8000
		ip.CPU.Regs[guest.EBP] = 0x9000
		ip.CPU.Regs[guest.EBX] = 2 // nonzero divisor
		ip.CPU.Regs[guest.EAX] = 8
		ip.CPU.Regs[guest.EDX] = 0
		res := ip.Step()
		if res.Stop == StopError {
			t.Errorf("%s (op %#02x): %v", gop.Name(), op, res.Err)
		}
		if gop == guest.OpJMPr {
			continue // jumped to eax's value; nothing more to check
		}
	}
}
