// Package ir defines the translator's intermediate representation: a linear
// sequence of typed operations over virtual registers, produced from a guest
// trace region and consumed by the optimizer and the VLIW scheduler.
//
// The region shape follows the paper's translations: a single-entry trace
// with side exits. There are no joins and no internal back edges, so forward
// dataflow is exact and cheap; loops execute by chaining a translation's
// exit back to its own entry.
//
// Virtual register conventions:
//   - VRegs 0..7 are the guest GPRs (live-in and live-out at every exit),
//   - VReg 8 (VFlags) is the guest EFLAGS image,
//   - temporaries start at VTemp0 and are dead at exits.
//
// The IR and the Region/exit shape are backend-neutral: the same optimized
// sequence feeds both the vliw scheduler (internal/vliw) and, after atom
// scheduling, the risc register-IR lowering (internal/risc). In particular
// the optimizer's dead-flag analysis — which renames flag defs that no exit
// observes away from VFlags so the scheduler can speculate past them — is
// exactly the property the risc backend reuses for lazy EFLAGS
// materialization: a renamed flag def becomes a deferred flag image, and
// only defs still targeting VFlags force an architectural materialization.
package ir

import (
	"fmt"
	"sort"

	"cms/internal/guest"
)

// VReg is a virtual register.
type VReg int16

const (
	// VFlags is the guest EFLAGS variable.
	VFlags VReg = 8
	// VTemp0 is the first temporary.
	VTemp0 VReg = 16
	// NoVReg marks an unused operand slot.
	NoVReg VReg = -1
)

// GuestVReg returns the virtual register bound to a guest GPR.
func GuestVReg(r guest.Reg) VReg { return VReg(r) }

// Op is an IR operation code.
type Op uint8

const (
	OpNop Op = iota

	OpConst // Dst = Imm
	OpMov   // Dst = A

	// Plain ALU (no flag effects): Dst = A <op> B, or A <op> Imm when B is
	// NoVReg.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar

	// Flag-computing ALU: additionally write VFlags with g86 semantics.
	OpAddCC
	OpSubCC
	OpAndCC
	OpOrCC
	OpXorCC
	OpShlCC
	OpShrCC
	OpSarCC
	OpIncCC
	OpDecCC
	OpNegCC
	OpImulCC
	OpAdcCC // add with carry-in
	OpSbbCC // subtract with borrow-in

	// Wide multiply / divide. Mul64: Dst = lo, Dst2 = hi, flags. Div: Dst =
	// quotient, Dst2 = remainder; A = low dividend, C = high dividend, B =
	// divisor; faults #DE.
	OpMul64
	OpDivU
	OpDivS

	// Memory. Address is A + Imm (A may be NoVReg for absolute).
	OpLd8  // Dst = zx(mem8[A+Imm])
	OpLd32 // Dst = mem32[A+Imm]
	OpSt8  // mem8[A+Imm] = B
	OpSt32 // mem32[A+Imm] = B

	// Port I/O. Imm is the port.
	OpIn  // Dst = port[Imm]
	OpOut // port[Imm] = B

	// Control. Exits index the region's exit table.
	OpExitIf  // if Cond(VFlags) leave through Exit
	OpExit    // unconditionally leave through Exit
	OpExitInd // leave through Exit with dynamic guest target A

	// OpBoundary marks a guest instruction boundary: the point before the
	// GIdx-th instruction of the region. It generates no code but carries
	// the precise-state bookkeeping.
	OpBoundary
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpAddCC: "add.cc", OpSubCC: "sub.cc", OpAndCC: "and.cc", OpOrCC: "or.cc",
	OpXorCC: "xor.cc", OpShlCC: "shl.cc", OpShrCC: "shr.cc", OpSarCC: "sar.cc",
	OpIncCC: "inc.cc", OpDecCC: "dec.cc", OpNegCC: "neg.cc", OpImulCC: "imul.cc",
	OpAdcCC: "adc.cc", OpSbbCC: "sbb.cc",
	OpMul64: "mul64", OpDivU: "divu", OpDivS: "divs",
	OpLd8: "ld8", OpLd32: "ld32", OpSt8: "st8", OpSt32: "st32",
	OpIn: "in", OpOut: "out",
	OpExitIf: "exit.if", OpExit: "exit", OpExitInd: "exit.ind",
	OpBoundary: "boundary",
}

// String returns the op mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("ir?%d", uint8(o))
}

// IsLoad reports whether o reads memory.
func (o Op) IsLoad() bool { return o == OpLd8 || o == OpLd32 }

// IsStore reports whether o writes memory.
func (o Op) IsStore() bool { return o == OpSt8 || o == OpSt32 }

// IsExit reports whether o leaves the translation.
func (o Op) IsExit() bool { return o == OpExitIf || o == OpExit || o == OpExitInd }

// SetsFlags reports whether o writes VFlags.
func (o Op) SetsFlags() bool {
	switch o {
	case OpAddCC, OpSubCC, OpAndCC, OpOrCC, OpXorCC, OpShlCC, OpShrCC,
		OpSarCC, OpIncCC, OpDecCC, OpNegCC, OpImulCC, OpMul64,
		OpAdcCC, OpSbbCC:
		return true
	}
	return false
}

// ReadsFlags reports whether o consumes the arithmetic flag bits as data
// (not merely to preserve IF): carry-chained arithmetic and conditional
// exits.
func (o Op) ReadsFlags() bool {
	switch o {
	case OpAdcCC, OpSbbCC, OpExitIf:
		return true
	}
	return false
}

// PlainOf maps a flag-computing ALU op to its plain counterpart, for dead
// flag elimination. ok is false when no plain form exists (inc/dec/neg
// become add/sub; imul/mul64 keep their value semantics elsewhere).
func PlainOf(o Op) (Op, bool) {
	switch o {
	case OpAddCC, OpIncCC:
		return OpAdd, true
	case OpSubCC, OpDecCC, OpNegCC:
		return OpSub, true
	case OpAndCC:
		return OpAnd, true
	case OpOrCC:
		return OpOr, true
	case OpXorCC:
		return OpXor, true
	case OpShlCC:
		return OpShl, true
	case OpShrCC:
		return OpShr, true
	case OpSarCC:
		return OpSar, true
	}
	return o, false
}

// Instr is one IR operation.
type Instr struct {
	Op   Op
	Dst  VReg
	Dst2 VReg // mul64 hi / div remainder
	A    VReg
	B    VReg
	C    VReg // div high dividend
	Imm  uint32
	Cond guest.Cond
	Exit int32 // exit table index for exits

	// FIn and FOut are the renamed flag-image operands of flag-reading and
	// flag-writing operations. NoVReg means the architectural VFlags (the
	// state before the rename pass runs).
	FIn  VReg
	FOut VReg

	// GIdx is the region instruction index this op belongs to.
	GIdx int32

	// Serialize marks a memory/I-O op that must be executed at a committed
	// boundary (adaptive MMIO policy, §3.4; always set for IN).
	Serialize bool
	// NoReorder pins a memory op in program order without full
	// serialization.
	NoReorder bool
	// SMCCheck marks a load emitted by the self-check machinery; its alias
	// entry must be checked by every subsequent store (§3.6.3).
	SMCCheck bool
}

// New returns an Instr of the given op with every operand slot set to
// NoVReg. Always build instructions through New: the zero value of VReg is
// guest EAX, so struct literals with unset operands silently reference it.
func New(op Op) Instr {
	return Instr{Op: op, Dst: NoVReg, Dst2: NoVReg, A: NoVReg, B: NoVReg, C: NoVReg,
		FIn: NoVReg, FOut: NoVReg, GIdx: -1}
}

// Uses appends the vregs read by the instruction to dst and returns it.
func (i *Instr) Uses(dst []VReg) []VReg {
	add := func(v VReg) {
		if v != NoVReg {
			dst = append(dst, v)
		}
	}
	fin := func() {
		if i.FIn != NoVReg {
			dst = append(dst, i.FIn)
		} else {
			dst = append(dst, VFlags)
		}
	}
	switch i.Op {
	case OpNop, OpConst, OpBoundary:
	case OpMov:
		add(i.A)
	case OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
		add(i.A)
		add(i.B)
	case OpAddCC, OpSubCC, OpAndCC, OpOrCC, OpXorCC, OpShlCC, OpShrCC, OpSarCC,
		OpImulCC, OpMul64, OpAdcCC, OpSbbCC:
		add(i.A)
		add(i.B)
		fin() // CC ops merge into the existing flag image
	case OpIncCC, OpDecCC, OpNegCC:
		add(i.A)
		fin()
	case OpDivU, OpDivS:
		add(i.A)
		add(i.B)
		add(i.C)
	case OpLd8, OpLd32:
		add(i.A)
	case OpSt8, OpSt32:
		add(i.A)
		add(i.B)
	case OpIn:
	case OpOut:
		add(i.B)
	case OpExitIf:
		fin()
	case OpExit:
	case OpExitInd:
		add(i.A)
	}
	return dst
}

// Defs appends the vregs written by the instruction to dst and returns it.
func (i *Instr) Defs(dst []VReg) []VReg {
	add := func(v VReg) {
		if v != NoVReg {
			dst = append(dst, v)
		}
	}
	fout := func() {
		if i.FOut != NoVReg {
			dst = append(dst, i.FOut)
		} else {
			dst = append(dst, VFlags)
		}
	}
	switch i.Op {
	case OpNop, OpBoundary, OpSt8, OpSt32, OpOut, OpExitIf, OpExit, OpExitInd:
	case OpMul64:
		add(i.Dst)
		add(i.Dst2)
		fout()
	case OpDivU, OpDivS:
		add(i.Dst)
		add(i.Dst2)
	default:
		add(i.Dst)
		if i.Op.SetsFlags() {
			fout()
		}
	}
	return dst
}

// ExitKind classifies a region exit.
type ExitKind uint8

const (
	// ExitJump leaves to a static guest address.
	ExitJump ExitKind = iota
	// ExitIndirect leaves to a dynamic guest address.
	ExitIndirect
	// ExitInterp leaves to a static guest address that must be interpreted
	// (used by zero-instruction translations and INT-like instructions).
	ExitInterp
	// ExitSelfCheckFail signals that the self-check found modified source
	// bytes; the runtime must revalidate or retranslate (§3.6.3).
	ExitSelfCheckFail
)

var exitKindNames = [...]string{"jump", "indirect", "interp", "selfcheck-fail"}

// String names the exit kind.
func (k ExitKind) String() string { return exitKindNames[k] }

// Fixup is a copy a side-exit stub must perform before committing: the
// renamed current value of a guest register moves back to its pinned home.
type Fixup struct {
	Guest VReg // 0..7
	Src   VReg
}

// Exit describes one way out of a region.
type Exit struct {
	Kind ExitKind
	// Target is the static guest continuation address (ExitJump/ExitInterp).
	Target uint32
	// Insns is how many guest instructions of the region have fully
	// retired when the translation leaves through this exit; the runtime
	// uses it for retired-instruction accounting (timers, metrics).
	Insns int
	// Fixups are the register-renaming repair copies the exit stub performs
	// (side exits only; see the rename pass).
	Fixups []Fixup
}

// Region is the translator's unit of work: a decoded guest trace plus its
// IR and exits.
type Region struct {
	Entry uint32
	Insns []guest.Insn
	Code  []Instr
	Exits []Exit
}

// AddExit appends an exit and returns its index.
func (r *Region) AddExit(e Exit) int32 {
	r.Exits = append(r.Exits, e)
	return int32(len(r.Exits) - 1)
}

// SrcRange is a byte range of guest code covered by a region.
type SrcRange struct {
	Addr uint32
	Len  uint32
}

// SrcRanges returns the coalesced source byte ranges of the region's
// instructions. Unrolled regions visit the same addresses repeatedly, so
// the ranges are sorted and merged: every source byte appears exactly once.
func (r *Region) SrcRanges() []SrcRange {
	return SrcRangesOf(r.Insns)
}

// SrcRangesOf coalesces the source byte ranges of an instruction list
// without requiring a lowered region (the translation pipeline captures
// source bytes before lowering happens on a worker).
func SrcRangesOf(insns []guest.Insn) []SrcRange {
	raw := make([]SrcRange, 0, len(insns))
	for _, in := range insns {
		raw = append(raw, SrcRange{Addr: in.Addr, Len: in.Len})
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].Addr < raw[j].Addr })
	var out []SrcRange
	for _, sr := range raw {
		if n := len(out); n > 0 && sr.Addr <= out[n-1].Addr+out[n-1].Len {
			if end := sr.Addr + sr.Len; end > out[n-1].Addr+out[n-1].Len {
				out[n-1].Len = end - out[n-1].Addr
			}
			continue
		}
		out = append(out, sr)
	}
	return out
}

// String renders an instruction for debugging.
func (i Instr) String() string {
	s := i.Op.String()
	if i.Dst != NoVReg && i.Dst != 0 || i.Op == OpConst || i.Op == OpMov || i.Op.IsLoad() {
		s += fmt.Sprintf(" v%d", i.Dst)
	}
	if i.A != NoVReg {
		s += fmt.Sprintf(", v%d", i.A)
	}
	if i.B != NoVReg {
		s += fmt.Sprintf(", v%d", i.B)
	}
	if i.Op == OpConst || i.Op.IsLoad() || i.Op.IsStore() || i.Op == OpIn || i.Op == OpOut {
		s += fmt.Sprintf(", imm=%#x", i.Imm)
	}
	if i.Op.IsExit() {
		s += fmt.Sprintf(" -> exit%d", i.Exit)
	}
	return s
}
