package ir

import (
	"testing"

	"cms/internal/guest"
)

func TestNewSetsAllOperandsToNoVReg(t *testing.T) {
	i := New(OpAdd)
	if i.Dst != NoVReg || i.Dst2 != NoVReg || i.A != NoVReg || i.B != NoVReg || i.C != NoVReg {
		t.Errorf("New left an operand at its zero value (guest EAX): %+v", i)
	}
	if i.GIdx != -1 {
		t.Errorf("GIdx = %d", i.GIdx)
	}
}

func TestGuestVRegMapping(t *testing.T) {
	if GuestVReg(guest.EAX) != 0 || GuestVReg(guest.EDI) != 7 {
		t.Error("guest register mapping broken")
	}
	if VFlags != 8 || VTemp0 <= VFlags {
		t.Error("vreg layout broken")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLd8.IsLoad() || !OpLd32.IsLoad() || OpSt32.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpSt8.IsStore() || !OpSt32.IsStore() || OpLd8.IsStore() {
		t.Error("IsStore wrong")
	}
	if !OpExit.IsExit() || !OpExitIf.IsExit() || !OpExitInd.IsExit() || OpMov.IsExit() {
		t.Error("IsExit wrong")
	}
	if !OpAddCC.SetsFlags() || !OpMul64.SetsFlags() || OpAdd.SetsFlags() || OpDivU.SetsFlags() {
		t.Error("SetsFlags wrong")
	}
}

func TestPlainOf(t *testing.T) {
	cases := map[Op]Op{
		OpAddCC: OpAdd, OpSubCC: OpSub, OpAndCC: OpAnd, OpOrCC: OpOr,
		OpXorCC: OpXor, OpShlCC: OpShl, OpShrCC: OpShr, OpSarCC: OpSar,
		OpIncCC: OpAdd, OpDecCC: OpSub, OpNegCC: OpSub,
	}
	for cc, want := range cases {
		if got, ok := PlainOf(cc); !ok || got != want {
			t.Errorf("PlainOf(%v) = %v, %v; want %v", cc, got, ok, want)
		}
	}
	if _, ok := PlainOf(OpImulCC); ok {
		t.Error("imul has no plain form")
	}
}

func TestUsesDefs(t *testing.T) {
	add := New(OpAddCC)
	add.Dst, add.A, add.B = 20, 21, 22
	uses := add.Uses(nil)
	if len(uses) != 3 || uses[0] != 21 || uses[1] != 22 || uses[2] != VFlags {
		t.Errorf("AddCC uses: %v", uses)
	}
	defs := add.Defs(nil)
	if len(defs) != 2 || defs[0] != 20 || defs[1] != VFlags {
		t.Errorf("AddCC defs: %v", defs)
	}

	div := New(OpDivU)
	div.Dst, div.Dst2, div.A, div.B, div.C = 16, 17, 0, 1, 2
	if d := div.Defs(nil); len(d) != 2 {
		t.Errorf("div defs: %v (flags must not be defined)", d)
	}
	if u := div.Uses(nil); len(u) != 3 {
		t.Errorf("div uses: %v", u)
	}

	st := New(OpSt32)
	st.A, st.B = 3, 4
	if d := st.Defs(nil); len(d) != 0 {
		t.Errorf("store defs: %v", d)
	}

	exitIf := New(OpExitIf)
	if u := exitIf.Uses(nil); len(u) != 1 || u[0] != VFlags {
		t.Errorf("exit.if uses: %v", u)
	}

	b := New(OpBoundary)
	if len(b.Uses(nil)) != 0 || len(b.Defs(nil)) != 0 {
		t.Error("boundary must be transparent")
	}
}

func TestAddExit(t *testing.T) {
	var r Region
	i0 := r.AddExit(Exit{Kind: ExitJump, Target: 0x100, Insns: 1})
	i1 := r.AddExit(Exit{Kind: ExitIndirect})
	if i0 != 0 || i1 != 1 || len(r.Exits) != 2 {
		t.Errorf("exit indices %d %d", i0, i1)
	}
	if ExitSelfCheckFail.String() != "selfcheck-fail" || ExitJump.String() != "jump" {
		t.Error("exit kind names")
	}
}

func TestSrcRangesMergesUnrolledDuplicates(t *testing.T) {
	mk := func(addr, ln uint32) guest.Insn { return guest.Insn{Addr: addr, Len: ln} }
	r := Region{Insns: []guest.Insn{
		// Two unrolled copies of a 3-instruction loop plus a tail.
		mk(0x100, 2), mk(0x102, 6), mk(0x108, 2),
		mk(0x100, 2), mk(0x102, 6), mk(0x108, 2),
		mk(0x200, 4),
	}}
	got := r.SrcRanges()
	want := []SrcRange{{Addr: 0x100, Len: 10}, {Addr: 0x200, Len: 4}}
	if len(got) != len(want) {
		t.Fatalf("ranges: %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("range %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSrcRangesOverlapMerge(t *testing.T) {
	mk := func(addr, ln uint32) guest.Insn { return guest.Insn{Addr: addr, Len: ln} }
	// A shorter re-decode inside a longer one must not extend the range.
	r := Region{Insns: []guest.Insn{mk(0x100, 8), mk(0x102, 2)}}
	got := r.SrcRanges()
	if len(got) != 1 || got[0] != (SrcRange{Addr: 0x100, Len: 8}) {
		t.Errorf("ranges: %+v", got)
	}
}

func TestStringForms(t *testing.T) {
	if OpAddCC.String() != "add.cc" || OpBoundary.String() != "boundary" {
		t.Error("op names")
	}
	i := New(OpLd32)
	i.Dst, i.A, i.Imm = 16, 3, 0x10
	if s := i.String(); s == "" {
		t.Error("empty String()")
	}
}
