package guest

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrDecode is wrapped by all decoding failures; a failed decode corresponds
// to the guest's #UD exception.
var ErrDecode = errors.New("invalid g86 instruction")

// Decode decodes the instruction starting at code[0], which the caller has
// fetched from guest address addr. It returns the populated Insn or an error
// wrapping ErrDecode for unassigned opcodes, bad register encodings, or a
// truncated buffer.
func Decode(code []byte, addr uint32) (Insn, error) {
	if len(code) == 0 {
		return Insn{}, fmt.Errorf("%w: empty fetch at %#x", ErrDecode, addr)
	}
	op := Op(code[0])
	if !op.Valid() {
		return Insn{}, fmt.Errorf("%w: opcode %#02x at %#x", ErrDecode, code[0], addr)
	}
	in := Insn{Addr: addr, Op: op, Len: EncodedLen(op)}
	if uint32(len(code)) < in.Len {
		return Insn{}, fmt.Errorf("%w: truncated %s at %#x", ErrDecode, op.Name(), addr)
	}
	body := code[1:in.Len]
	badReg := func(r Reg) bool { return r >= NumRegs }
	switch op.Format() {
	case FmtNone:
	case FmtR:
		in.Dst = Reg(body[0] & 0x0F)
		if badReg(in.Dst) || body[0]&0xF0 != 0 {
			return Insn{}, fmt.Errorf("%w: bad register byte at %#x", ErrDecode, addr)
		}
	case FmtRR:
		in.Dst, in.Src = Reg(body[0]>>4), Reg(body[0]&0x0F)
		if badReg(in.Dst) || badReg(in.Src) {
			return Insn{}, fmt.Errorf("%w: bad register pair at %#x", ErrDecode, addr)
		}
	case FmtRI:
		in.Dst = Reg(body[0])
		if badReg(in.Dst) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
		in.Imm = binary.LittleEndian.Uint32(body[1:])
		in.ImmOff = 2
	case FmtRI8:
		in.Dst = Reg(body[0])
		if badReg(in.Dst) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
		in.Imm = uint32(body[1])
	case FmtRM:
		in.Dst = Reg(body[0])
		if badReg(in.Dst) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
		m, ok := decodeMem(body[1:])
		if !ok {
			return Insn{}, fmt.Errorf("%w: bad memory operand at %#x", ErrDecode, addr)
		}
		in.Mem = m
	case FmtMR:
		m, ok := decodeMem(body)
		if !ok {
			return Insn{}, fmt.Errorf("%w: bad memory operand at %#x", ErrDecode, addr)
		}
		in.Mem = m
		in.Src = Reg(body[memOperandLen])
		if badReg(in.Src) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
	case FmtMI:
		m, ok := decodeMem(body)
		if !ok {
			return Insn{}, fmt.Errorf("%w: bad memory operand at %#x", ErrDecode, addr)
		}
		in.Mem = m
		in.Imm = binary.LittleEndian.Uint32(body[memOperandLen:])
		in.ImmOff = 1 + memOperandLen
	case FmtM:
		m, ok := decodeMem(body)
		if !ok {
			return Insn{}, fmt.Errorf("%w: bad memory operand at %#x", ErrDecode, addr)
		}
		in.Mem = m
	case FmtI32:
		in.Imm = binary.LittleEndian.Uint32(body)
		in.ImmOff = 1
	case FmtRel:
		in.Imm = binary.LittleEndian.Uint32(body)
		in.ImmOff = 1
	case FmtI8:
		in.Imm = uint32(body[0])
	case FmtRPort:
		in.Dst = Reg(body[0])
		if badReg(in.Dst) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
		in.Imm = uint32(binary.LittleEndian.Uint16(body[1:]))
	case FmtPortR:
		in.Imm = uint32(binary.LittleEndian.Uint16(body))
		in.Src = Reg(body[2])
		if badReg(in.Src) {
			return Insn{}, fmt.Errorf("%w: bad register at %#x", ErrDecode, addr)
		}
	}
	return in, nil
}
