package guest

import (
	"bytes"
	"testing"
)

// FuzzDecodeEncodeRoundtrip asserts the ISA codec's canonicality contract:
// any byte string the decoder accepts re-encodes to exactly the bytes it
// consumed, and re-decodes to the identical Insn. (The translator, the
// fuzzer's linker, and the SMC machinery all rely on decode→encode being
// lossless; non-canonical accepted encodings would let a guest image drift
// through a retranslation.)
func FuzzDecodeEncodeRoundtrip(f *testing.F) {
	// Seed with one real encoding per format class.
	seeds := []Insn{
		{Op: OpNOP},
		{Op: OpMOVri, Dst: EBX, Imm: 0xDEADBEEF},
		{Op: OpADDrr, Dst: EAX, Src: ESI},
		{Op: OpSHLri, Dst: ECX, Imm: 7},
		{Op: OpMOVrm, Dst: EDX, Mem: MemOperand{HasBase: true, Base: EBP, Disp: 0x1234}},
		{Op: OpMOVmr, Src: EDI, Mem: MemOperand{HasBase: true, Base: EBX, HasIndex: true, Index: ESI, ScaleLog: 2, Disp: 8}},
		{Op: OpMOVmi, Mem: MemOperand{Disp: 0x70000}, Imm: 42},
		{Op: OpJMPrel, Imm: 0xFFFFFFF0},
		{Op: OpJccBase + Op(CondNE), Imm: 16},
		{Op: OpCALLr, Dst: EBP},
		{Op: OpINT, Imm: 48},
		{Op: OpIN, Dst: EAX, Imm: 0x3F9},
		{Op: OpOUT, Imm: 0x3F8, Src: ECX},
		{Op: OpPUSHi, Imm: 0x55AA55AA},
	}
	for _, in := range seeds {
		f.Add(Encode(nil, in))
	}
	f.Add([]byte{0xFF, 0x00, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data, 0x1000)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if in.Len == 0 || int(in.Len) > len(data) {
			t.Fatalf("decoded Len %d out of range (input %d bytes)", in.Len, len(data))
		}
		enc := Encode(nil, in)
		if !bytes.Equal(enc, data[:in.Len]) {
			t.Fatalf("non-canonical encoding accepted: in=% x out=% x (%v)", data[:in.Len], enc, in)
		}
		in2, err := Decode(enc, 0x1000)
		if err != nil {
			t.Fatalf("re-decode failed: %v (bytes % x)", err, enc)
		}
		if in != in2 {
			t.Fatalf("decode/encode/decode not identity:\n first %+v\nsecond %+v", in, in2)
		}
	})
}
