package guest

import (
	"testing"
	"testing/quick"
)

func TestFlagsAdd(t *testing.T) {
	cases := []struct {
		a, b, res      uint32
		cf, of, zf, sf bool
	}{
		{1, 2, 3, false, false, false, false},
		{0xFFFFFFFF, 1, 0, true, false, true, false},
		{0x7FFFFFFF, 1, 0x80000000, false, true, false, true},
		{0x80000000, 0x80000000, 0, true, true, true, false},
		{0, 0, 0, false, false, true, false},
	}
	for _, c := range cases {
		res, f := FlagsAdd(0, c.a, c.b)
		if res != c.res {
			t.Errorf("add(%#x,%#x) = %#x, want %#x", c.a, c.b, res, c.res)
		}
		check := func(name string, bit uint32, want bool) {
			if (f&bit != 0) != want {
				t.Errorf("add(%#x,%#x): %s = %v, want %v", c.a, c.b, name, !want, want)
			}
		}
		check("CF", FlagCF, c.cf)
		check("OF", FlagOF, c.of)
		check("ZF", FlagZF, c.zf)
		check("SF", FlagSF, c.sf)
	}
}

func TestFlagsSub(t *testing.T) {
	// 5 - 7: borrow, negative.
	res, f := FlagsSub(0, 5, 7)
	if res != 0xFFFFFFFE || f&FlagCF == 0 || f&FlagSF == 0 || f&FlagZF != 0 {
		t.Errorf("sub(5,7) = %#x flags %#x", res, f)
	}
	// Equal operands: ZF, no CF.
	res, f = FlagsSub(0, 9, 9)
	if res != 0 || f&FlagZF == 0 || f&FlagCF != 0 {
		t.Errorf("sub(9,9) = %#x flags %#x", res, f)
	}
	// Signed overflow: INT_MIN - 1.
	_, f = FlagsSub(0, 0x80000000, 1)
	if f&FlagOF == 0 {
		t.Error("INT_MIN-1 must overflow")
	}
}

func TestFlagsIncDecPreserveCF(t *testing.T) {
	_, f := FlagsInc(FlagCF, 41)
	if f&FlagCF == 0 {
		t.Error("INC must preserve CF=1")
	}
	_, f = FlagsDec(0, 1)
	if f&FlagCF != 0 {
		t.Error("DEC must preserve CF=0")
	}
	if f&FlagZF == 0 {
		t.Error("DEC 1 -> ZF")
	}
	// INC 0x7FFFFFFF overflows.
	_, f = FlagsInc(0, 0x7FFFFFFF)
	if f&FlagOF == 0 {
		t.Error("INC INT_MAX must set OF")
	}
}

func TestFlagsNeg(t *testing.T) {
	res, f := FlagsNeg(0, 5)
	if res != 0xFFFFFFFB || f&FlagCF == 0 {
		t.Errorf("neg(5) = %#x flags %#x", res, f)
	}
	res, f = FlagsNeg(0, 0)
	if res != 0 || f&FlagCF != 0 || f&FlagZF == 0 {
		t.Errorf("neg(0) = %#x flags %#x", res, f)
	}
}

func TestFlagsLogic(t *testing.T) {
	f := FlagsLogic(FlagCF|FlagOF, 0)
	if f&FlagCF != 0 || f&FlagOF != 0 || f&FlagZF == 0 {
		t.Errorf("logic(0) flags %#x", f)
	}
	f = FlagsLogic(0, 0x80000000)
	if f&FlagSF == 0 {
		t.Error("logic negative must set SF")
	}
}

func TestParityFlag(t *testing.T) {
	// 0x03 has two set bits in the low byte: even parity, PF set.
	f := FlagsLogic(0, 0x03)
	if f&FlagPF == 0 {
		t.Error("PF(0x03) must be set")
	}
	// 0x01: odd parity.
	f = FlagsLogic(0, 0x01)
	if f&FlagPF != 0 {
		t.Error("PF(0x01) must be clear")
	}
	// Only the low byte counts.
	f = FlagsLogic(0, 0xFF00)
	if f&FlagPF == 0 {
		t.Error("PF considers only the low byte")
	}
}

func TestFlagsShl(t *testing.T) {
	res, f := FlagsShl(0, 0x80000001, 1)
	if res != 2 || f&FlagCF == 0 {
		t.Errorf("shl: res %#x flags %#x", res, f)
	}
	// Shift by zero leaves flags alone.
	res, f = FlagsShl(FlagZF|FlagCF, 7, 0)
	if res != 7 || f != FlagZF|FlagCF {
		t.Errorf("shl by 0: res %#x flags %#x", res, f)
	}
	// Count is taken mod 32.
	res, _ = FlagsShl(0, 1, 33)
	if res != 2 {
		t.Errorf("shl by 33 = %#x, want 2", res)
	}
}

func TestFlagsShrSar(t *testing.T) {
	res, f := FlagsShr(0, 0x80000003, 1)
	if res != 0x40000001 || f&FlagCF == 0 || f&FlagOF == 0 {
		t.Errorf("shr: res %#x flags %#x", res, f)
	}
	res, f = FlagsSar(0, 0x80000000, 4)
	if res != 0xF8000000 || f&FlagSF == 0 || f&FlagOF != 0 {
		t.Errorf("sar: res %#x flags %#x", res, f)
	}
	// SAR of a positive value behaves like SHR.
	res, _ = FlagsSar(0, 64, 3)
	if res != 8 {
		t.Errorf("sar positive = %d", res)
	}
}

func TestFlagsImul(t *testing.T) {
	res, f := FlagsImul(0, 6, 7)
	if res != 42 || f&(FlagCF|FlagOF) != 0 {
		t.Errorf("imul small: %#x flags %#x", res, f)
	}
	_, f = FlagsImul(0, 0x10000, 0x10000)
	if f&FlagCF == 0 || f&FlagOF == 0 {
		t.Error("imul overflow must set CF/OF")
	}
	res, f = FlagsImul(0, 0xFFFFFFFF, 5) // -1 * 5 = -5, fits
	if res != 0xFFFFFFFB || f&FlagCF != 0 {
		t.Errorf("imul signed: %#x flags %#x", res, f)
	}
}

func TestFlagsMul(t *testing.T) {
	lo, hi, f := FlagsMul(0, 0x10000, 0x10000)
	if lo != 0 || hi != 1 || f&FlagCF == 0 {
		t.Errorf("mul: lo %#x hi %#x flags %#x", lo, hi, f)
	}
	lo, hi, f = FlagsMul(0, 3, 4)
	if lo != 12 || hi != 0 || f&FlagCF != 0 {
		t.Errorf("mul small: lo %#x hi %#x flags %#x", lo, hi, f)
	}
}

func TestDivU(t *testing.T) {
	q, r, ok := DivU(0, 17, 5)
	if !ok || q != 3 || r != 2 {
		t.Errorf("17/5 = %d r %d ok %v", q, r, ok)
	}
	if _, _, ok := DivU(0, 1, 0); ok {
		t.Error("divide by zero must fail")
	}
	if _, _, ok := DivU(5, 0, 4); ok {
		t.Error("quotient overflow must fail")
	}
	// Largest non-overflowing case.
	q, _, ok = DivU(4, 0xFFFFFFFF, 5)
	if !ok || q != 0xFFFFFFFF {
		t.Errorf("big divide: q=%#x ok=%v", q, ok)
	}
}

func TestDivS(t *testing.T) {
	q, r, ok := DivS(0xFFFFFFFF, uint32(-17&0xFFFFFFFF), 5)
	if !ok || int32(q) != -3 || int32(r) != -2 {
		t.Errorf("-17/5 = %d r %d ok %v", int32(q), int32(r), ok)
	}
	if _, _, ok := DivS(0, 1, 0); ok {
		t.Error("idiv by zero must fail")
	}
	// INT_MIN / -1 overflows.
	if _, _, ok := DivS(0xFFFFFFFF, 0x80000000, 0xFFFFFFFF); ok {
		t.Error("INT_MIN/-1 must fail")
	}
	q, r, ok = DivS(0, 100, 7)
	if !ok || q != 14 || r != 2 {
		t.Errorf("100/7: q=%d r=%d", q, r)
	}
}

// Properties tying the flag helpers to their arithmetic meaning.
func TestFlagPropertiesQuick(t *testing.T) {
	addSub := func(a, b uint32) bool {
		res, f := FlagsAdd(0, a, b)
		if res != a+b {
			return false
		}
		if (f&FlagZF != 0) != (res == 0) {
			return false
		}
		if (f&FlagSF != 0) != (int32(res) < 0) {
			return false
		}
		if (f&FlagCF != 0) != (uint64(a)+uint64(b) > 0xFFFFFFFF) {
			return false
		}
		sres, sf := FlagsSub(0, a, b)
		if sres != a-b {
			return false
		}
		if (sf&FlagCF != 0) != (a < b) {
			return false
		}
		// OF from signed arithmetic.
		if (sf&FlagOF != 0) != (int64(int32(a))-int64(int32(b)) != int64(int32(sres))) {
			return false
		}
		return true
	}
	if err := quick.Check(addSub, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}

	// Condition codes match signed/unsigned comparison after CMP.
	cmp := func(a, b uint32) bool {
		_, f := FlagsSub(0, a, b)
		if CondB.Eval(f) != (a < b) {
			return false
		}
		if CondBE.Eval(f) != (a <= b) {
			return false
		}
		if CondL.Eval(f) != (int32(a) < int32(b)) {
			return false
		}
		if CondLE.Eval(f) != (int32(a) <= int32(b)) {
			return false
		}
		if CondE.Eval(f) != (a == b) {
			return false
		}
		return true
	}
	if err := quick.Check(cmp, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}

	// IF and the always-bit survive arithmetic.
	preserve := func(a, b uint32) bool {
		_, f := FlagsAdd(FlagIF, a, b)
		return f&FlagIF != 0 && f&FlagsAlways != 0
	}
	if err := quick.Check(preserve, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagsAdc(t *testing.T) {
	// No carry in: behaves like ADD.
	res, f := FlagsAdc(0, 5, 7)
	if res != 12 || f&FlagCF != 0 {
		t.Errorf("adc no-cin: %d flags %#x", res, f)
	}
	// Carry in adds one.
	res, f = FlagsAdc(FlagCF, 5, 7)
	if res != 13 {
		t.Errorf("adc cin: %d", res)
	}
	// Carry out through the carry-in alone: 0xFFFFFFFF + 0 + 1.
	res, f = FlagsAdc(FlagCF, 0xFFFFFFFF, 0)
	if res != 0 || f&FlagCF == 0 || f&FlagZF == 0 {
		t.Errorf("adc wrap: %#x flags %#x", res, f)
	}
	// Signed overflow via carry-in: INT_MAX + 0 + 1.
	_, f = FlagsAdc(FlagCF, 0x7FFFFFFF, 0)
	if f&FlagOF == 0 {
		t.Error("adc INT_MAX+1 must overflow")
	}
}

func TestFlagsSbb(t *testing.T) {
	res, f := FlagsSbb(0, 9, 4)
	if res != 5 || f&FlagCF != 0 {
		t.Errorf("sbb no-bin: %d flags %#x", res, f)
	}
	res, f = FlagsSbb(FlagCF, 9, 4)
	if res != 4 {
		t.Errorf("sbb bin: %d", res)
	}
	// Borrow through the borrow-in alone: 0 - 0 - 1.
	res, f = FlagsSbb(FlagCF, 0, 0)
	if res != 0xFFFFFFFF || f&FlagCF == 0 {
		t.Errorf("sbb wrap: %#x flags %#x", res, f)
	}
}

// Property: a 64-bit add decomposed into ADD + ADC agrees with native
// 64-bit arithmetic.
func TestAdcChainProperty(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi uint32) bool {
		lo, fl := FlagsAdd(0, aLo, bLo)
		hi, _ := FlagsAdc(fl, aHi, bHi)
		want := (uint64(aHi)<<32 | uint64(aLo)) + (uint64(bHi)<<32 | uint64(bLo))
		return lo == uint32(want) && hi == uint32(want>>32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: 64-bit subtract via SUB + SBB.
func TestSbbChainProperty(t *testing.T) {
	f := func(aLo, aHi, bLo, bHi uint32) bool {
		lo, fl := FlagsSub(0, aLo, bLo)
		hi, _ := FlagsSbb(fl, aHi, bHi)
		want := (uint64(aHi)<<32 | uint64(aLo)) - (uint64(bHi)<<32 | uint64(bLo))
		return lo == uint32(want) && hi == uint32(want>>32)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
